package gosensei

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"
)

// runStdout executes the launcher and returns stdout and stderr separately —
// the cross-transport contract is on stdout bytes alone.
func runStdout(t *testing.T, bin string, args ...string) (string, string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = t.TempDir()
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	return stdout.String(), stderr.String(), err
}

// TestWorldSmoke is the acceptance gate for the cross-process world: a
// 4-process oscillator -> histogram run over real TCP must be bit-identical
// to the in-process run, and so must the binary-swap compositing pipeline.
func TestWorldSmoke(t *testing.T) {
	bin := buildTool(t, "gosensei-run")
	pipelines := []struct {
		name string
		args []string
	}{
		{"histogram", []string{"-pipeline", "histogram", "-cells", "12", "-steps", "4"}},
		{"binswap", []string{"-pipeline", "binswap", "-steps", "3"}},
	}
	for _, p := range pipelines {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			base := append([]string{"-np", "4"}, p.args...)
			proc, _, err := runStdout(t, bin, append(base, "-transport", "proc")...)
			if err != nil {
				t.Fatalf("proc: %v", err)
			}
			if !strings.Contains(proc, "step=") {
				t.Fatalf("proc produced no steps:\n%s", proc)
			}
			for _, transport := range []string{"loopback", "tcp"} {
				got, stderr, err := runStdout(t, bin, append(base, "-transport", transport)...)
				if err != nil {
					t.Fatalf("%s: %v\nstderr:\n%s", transport, err, stderr)
				}
				if got != proc {
					t.Errorf("%s output diverges from proc:\n--- proc:\n%s--- %s:\n%s",
						transport, proc, transport, got)
				}
			}
		})
	}
}

// TestWorldSmokeRankkill asserts the fatal-fault contract across real
// processes: a world.rankkill schedule makes the victim process die, the
// launcher exits non-zero with the fault's distinct exit code, and the repro
// token appears on stderr so the failure can be replayed.
func TestWorldSmokeRankkill(t *testing.T) {
	bin := buildTool(t, "gosensei-run")
	const schedule = "7:world.rankkill(rank=2,op=4)"
	for _, transport := range []string{"loopback", "tcp"} {
		transport := transport
		t.Run(transport, func(t *testing.T) {
			t.Parallel()
			_, stderr, err := runStdout(t, bin,
				"-np", "4", "-transport", transport,
				"-pipeline", "histogram", "-cells", "8", "-steps", "5",
				"-faults", schedule)
			if err == nil {
				t.Fatal("fatal schedule exited zero")
			}
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("launcher did not run: %v", err)
			}
			if ee.ExitCode() != 3 {
				t.Errorf("exit code %d, want 3 (fault fired)\nstderr:\n%s", ee.ExitCode(), stderr)
			}
			if !strings.Contains(stderr, "world.rankkill(rank=2,op=4)") {
				t.Errorf("repro token missing from stderr:\n%s", stderr)
			}
		})
	}
}
