package gosensei

import (
	"os"
	"path/filepath"
	"testing"

	_ "gosensei/internal/adios"
	_ "gosensei/internal/analysis"
	_ "gosensei/internal/catalyst"
	"gosensei/internal/core"
	_ "gosensei/internal/extracts"
	_ "gosensei/internal/glean"
	_ "gosensei/internal/iosim"
	_ "gosensei/internal/libsim"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
	"gosensei/internal/oscillator"
)

// TestEverythingAtOnce is the full "write once, use everywhere" integration:
// the miniapp instrumented once, then coupled — in a single run — to every
// registered analysis and infrastructure via one XML document, the way
// configs/all-infrastructures.xml wires a production run.
func TestEverythingAtOnce(t *testing.T) {
	work := t.TempDir()
	cfgXML := `<sensei>
	  <analysis type="histogram"       array="data" bins="10"/>
	  <analysis type="autocorrelation" array="data" window="5" k-max="3"/>
	  <analysis type="index"           array="data" bins="16"/>
	  <analysis type="compress"        array="data" bits="10"/>
	  <analysis type="catalyst" array="data" image-width="48" image-height="32"
	            slice-axis="z" slice-coord="8" output-dir="` + work + `/frames"/>
	  <analysis type="libsim"   array="data" image-width="40" image-height="40" stride="2"/>
	  <analysis type="adios"    transport="bp-file" dir="` + work + `/bp"/>
	  <analysis type="glean"    ranks-per-node="2" mode="analysis" array="data" bins="8"/>
	  <analysis type="cinema"   array="data" phi-count="2" theta-count="1"
	            image-width="32" image-height="32" output-dir="` + work + `/cinema"/>
	  <analysis type="vtk-writer" dir="` + work + `/blocks" stride="2"/>
	</sensei>`

	const (
		ranks = 4
		cells = 16
		steps = 4
	)
	simCfg := oscillator.Config{
		GlobalCells: [3]int{cells, cells, cells},
		DT:          0.1,
		Steps:       steps,
		Oscillators: oscillator.DefaultDeck(cells),
	}
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		reg := metrics.NewRegistry(c.Rank())
		mem := metrics.NewTracker()
		sim, err := oscillator.NewSim(c, simCfg, mem)
		if err != nil {
			return err
		}
		bridge := core.NewBridge(c, reg, mem)
		if err := core.ConfigureFromXML(bridge, []byte(cfgXML)); err != nil {
			return err
		}
		if bridge.AnalysisCount() != 10 {
			t.Errorf("expected 10 analyses, got %d", bridge.AnalysisCount())
		}
		d := oscillator.NewDataAdaptor(sim)
		for i := 0; i < simCfg.Steps; i++ {
			if err := sim.Step(); err != nil {
				return err
			}
			d.Update()
			if _, err := bridge.Execute(d); err != nil {
				return err
			}
		}
		return bridge.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every side effect landed.
	checkCount := func(pattern string, want int) {
		t.Helper()
		files, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		if len(files) != want {
			t.Errorf("%s: %d files, want %d", pattern, len(files), want)
		}
	}
	checkCount(filepath.Join(work, "frames", "slice_*.png"), steps)
	// Libsim stride 2 over executions 0..3 -> 2 images.
	// (Catalyst stride is 1: every step.)
	checkCount(filepath.Join(work, "bp", "*.bp"), steps*ranks)
	// Cinema: steps x 1 iso x 2 phi x 1 theta images + index.json.
	checkCount(filepath.Join(work, "cinema", "*.png"), steps*2)
	if _, err := os.Stat(filepath.Join(work, "cinema", "index.json")); err != nil {
		t.Errorf("cinema index missing: %v", err)
	}
	// vtk-writer stride 2 -> 2 steps x ranks block files.
	checkCount(filepath.Join(work, "blocks", "*.blk"), 2*ranks)
}
