// Package gosensei's benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation (run the cmd/experiments binary for
// the full paper-style row output; these benches measure the underlying
// kernels and pipelines), plus ablation benchmarks for the design choices
// DESIGN.md calls out (zero-copy vs copying adaptors, binary-swap vs
// direct-send compositing, SOA vs AOS access, FlexPath queue depth, PNG
// compression levels, ghost blanking).
//
// Run:
//
//	go test -bench=. -benchmem .
package gosensei

import (
	"bytes"
	"fmt"
	"image/color"
	"image/png"
	"os"
	"sync"
	"testing"

	"gosensei/internal/adios"
	"gosensei/internal/analysis"
	"gosensei/internal/array"
	"gosensei/internal/catalyst"
	"gosensei/internal/colormap"
	"gosensei/internal/compositing"
	"gosensei/internal/core"
	"gosensei/internal/experiments"
	"gosensei/internal/extracts"
	"gosensei/internal/freeproc"
	"gosensei/internal/grid"
	"gosensei/internal/iosim"
	"gosensei/internal/leslie"
	"gosensei/internal/libsim"
	"gosensei/internal/machine"
	"gosensei/internal/mpi"
	"gosensei/internal/nyx"
	"gosensei/internal/oscillator"
	"gosensei/internal/parallel"
	"gosensei/internal/phasta"
	"gosensei/internal/render"
)

func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.RealRanks = 4
	o.RealCells = 16
	o.RealSteps = 4
	o.ImageW = 64
	o.ImageH = 36
	return o
}

// --- Figures 3/4: Original vs SENSEI Autocorrelation -----------------------

func BenchmarkFig3Original(b *testing.B) {
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunMiniapp(experiments.Original, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3SENSEIAutocorrelation(b *testing.B) {
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunMiniapp(experiments.AutocorrelationCfg, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 5/6/7: the five miniapp configurations ------------------------

func BenchmarkFig6Configurations(b *testing.B) {
	opt := benchOptions()
	for _, cfg := range []experiments.Configuration{
		experiments.Baseline, experiments.HistogramCfg, experiments.AutocorrelationCfg,
		experiments.CatalystSlice, experiments.LibsimSlice,
	} {
		cfg := cfg
		b.Run(string(cfg), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunMiniapp(cfg, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figures 8/9: FlexPath staging ------------------------------------------

func BenchmarkFig8FlexPathStaging(b *testing.B) {
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunADIOS(experiments.ADIOSHistogram, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 1 / Figure 10: write paths ---------------------------------------

func BenchmarkTable1BlockFileWrite(b *testing.B) {
	// The real write kernel behind the "VTK multi-file" path.
	img := grid.NewImageData(grid.NewExtent3D(33, 33, 33))
	img.Attributes(grid.CellData).Add(array.New[float64]("data", 1, 32*32*32))
	dir := b.TempDir()
	b.ReportAllocs()
	b.SetBytes(32 * 32 * 32 * 8)
	for i := 0; i < b.N; i++ {
		if _, err := iosim.WriteBlockFile(dir, 0, img, i, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1ModelEvaluation(b *testing.B) {
	m := iosim.NewModel(machine.Cori().IO, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.WriteTime(iosim.FilePerProcess, 45440, 123<<30)
		_ = m.WriteTime(iosim.CollectiveMPIIO, 45440, 123<<30)
	}
}

func BenchmarkFig10BaselineWithIO(b *testing.B) {
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp("", "bench-fig10-")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.RunBaselineWithIO(opt, dir); err != nil {
			b.Fatal(err)
		}
		os.RemoveAll(dir)
	}
}

// --- Figure 11: post hoc pipeline -------------------------------------------

func BenchmarkFig11PosthocHistogram(b *testing.B) {
	opt := benchOptions()
	dir, err := os.MkdirTemp("", "bench-fig11-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if _, err := experiments.RunBaselineWithIO(opt, dir); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunPosthoc(dir, opt.RealRanks, 2, experiments.ADIOSHistogram, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 12: full in situ time to solution -------------------------------

func BenchmarkFig12CatalystInSitu(b *testing.B) {
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunMiniapp(experiments.CatalystSlice, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2: PHASTA pipeline -----------------------------------------------

func BenchmarkTable2PhastaSliceStep(b *testing.B) {
	for _, size := range []struct{ w, h int }{{80, 20}, {290, 72}} {
		size := size
		b.Run(fmt.Sprintf("%dx%d", size.w, size.h), func(b *testing.B) {
			opt := benchOptions()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := experiments.RunPHASTAReal(opt, size.w, size.h, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figures 15/16: AVF-LESLIE ----------------------------------------------

func BenchmarkFig15LeslieSolverStep(b *testing.B) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		s, err := leslie.NewSolver(c, leslie.DefaultConfig(16), nil)
		if err != nil {
			return err
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := s.Step(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFig15LibsimTMLSession(b *testing.B) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		s, err := leslie.NewSolver(c, leslie.DefaultConfig(16), nil)
		if err != nil {
			return err
		}
		if err := s.Step(); err != nil {
			return err
		}
		session := libsim.TMLSession("vorticity", [3]float64{0.1, 0.3, 0.5},
			[3]float64{6.28, 6.28, 3.14})
		session.Image.Width = 128
		session.Image.Height = 128
		a := libsim.NewAdaptor(c, session, libsim.Options{})
		bridge := core.NewBridge(c, nil, nil)
		bridge.AddAnalysis("libsim", a)
		d := leslie.NewDataAdaptor(s)
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.Update()
			if _, err := bridge.Execute(d); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// --- Figure 17: Nyx ----------------------------------------------------------

func BenchmarkFig17NyxStep(b *testing.B) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		s, err := nyx.NewSim(c, nyx.DefaultConfig(16))
		if err != nil {
			return err
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := s.Step(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFig17NyxHistogram(b *testing.B) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		s, err := nyx.NewSim(c, nyx.DefaultConfig(16))
		if err != nil {
			return err
		}
		if err := s.Step(); err != nil {
			return err
		}
		h := analysis.NewHistogram(c, "dark_matter_density", grid.CellData, 10)
		d := nyx.NewDataAdaptor(s)
		d.Update()
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := h.Execute(d); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationAdaptorZeroCopyVsCopy isolates the paper's central design
// choice: wrapping simulation memory versus deep-copying it in the adaptor.
func BenchmarkAblationAdaptorZeroCopyVsCopy(b *testing.B) {
	for _, forceCopy := range []bool{false, true} {
		name := "zero-copy"
		if forceCopy {
			name = "copy"
		}
		forceCopy := forceCopy
		b.Run(name, func(b *testing.B) {
			err := mpi.Run(1, func(c *mpi.Comm) error {
				sim, err := oscillator.NewSim(c, oscillator.Config{
					GlobalCells: [3]int{32, 32, 32}, DT: 0.05, Steps: 1,
					Oscillators: oscillator.DefaultDeck(32),
				}, nil)
				if err != nil {
					return err
				}
				if err := sim.Step(); err != nil {
					return err
				}
				d := oscillator.NewDataAdaptor(sim)
				d.ForceCopy = forceCopy
				d.Update()
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					mesh, err := d.Mesh(false)
					if err != nil {
						return err
					}
					if err := d.AddArray(mesh, grid.CellData, "data"); err != nil {
						return err
					}
					if err := d.ReleaseData(); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationCompositing contrasts the two compositing algorithms the
// infrastructures use (Catalyst: binary swap; Libsim: direct send).
func BenchmarkAblationCompositing(b *testing.B) {
	for _, alg := range []compositing.Algorithm{compositing.BinarySwap, compositing.DirectSend} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			// Time b.N composite steps inside one session, the way the
			// adaptors run: mpi.Run starts once, then every step draws its
			// pack buffers and result framebuffers from the pools. The
			// release-exactly-once dance mirrors Execute (the compositor may
			// return rank 0's own buffer).
			b.ResetTimer()
			err := mpi.Run(4, func(c *mpi.Comm) error {
				fb := render.AcquireFramebuffer(256, 256)
				defer fb.Release()
				for i := 0; i < b.N; i++ {
					final, err := compositing.Composite(c, fb, 0, alg)
					if err != nil {
						return err
					}
					if final != nil && final != fb {
						final.Release()
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationSOAvsAOS measures layout-dependent access cost through
// the type-erased Array interface.
func BenchmarkAblationSOAvsAOS(b *testing.B) {
	n := 1 << 14
	aosBuf := make([]float64, n*3)
	planes := [][]float64{make([]float64, n), make([]float64, n), make([]float64, n)}
	arrays := map[string]array.Array{
		"aos": array.WrapAOS("v", 3, aosBuf),
		"soa": array.WrapSOA("v", planes...),
	}
	for name, a := range arrays {
		a := a
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var sink float64
			for i := 0; i < b.N; i++ {
				for t := 0; t < n; t++ {
					sink += a.Value(t, i%3)
				}
			}
			_ = sink
		})
	}
}

// BenchmarkAblationFlexPathQueueDepth varies the staging queue depth: depth
// 1 exposes reader backpressure; deeper queues decouple the groups at the
// price of buffering.
func BenchmarkAblationFlexPathQueueDepth(b *testing.B) {
	for _, depth := range []int{1, 4} {
		depth := depth
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fabric := adios.NewFabric(2, depth)
				var wg sync.WaitGroup
				wg.Add(2)
				var werr, eerr error
				go func() {
					defer wg.Done()
					werr = mpi.Run(2, func(c *mpi.Comm) error {
						sim, err := oscillator.NewSim(c, oscillator.Config{
							GlobalCells: [3]int{12, 12, 12}, DT: 0.05, Steps: 4,
							Oscillators: oscillator.DefaultDeck(12),
						}, nil)
						if err != nil {
							return err
						}
						w := adios.NewWriter(c, &adios.FlexPathTransport{Fabric: fabric})
						d := oscillator.NewDataAdaptor(sim)
						for s := 0; s < 4; s++ {
							if err := sim.Step(); err != nil {
								return err
							}
							d.Update()
							if _, err := w.Execute(d); err != nil {
								return err
							}
						}
						return w.Finalize()
					})
				}()
				go func() {
					defer wg.Done()
					_, eerr = adios.RunEndpoint(fabric, func(br *core.Bridge) error {
						br.AddAnalysis("histogram", analysis.NewHistogram(br.Comm, "data", grid.CellData, 8))
						return nil
					})
				}()
				wg.Wait()
				if werr != nil || eerr != nil {
					b.Fatal(werr, eerr)
				}
			}
		})
	}
}

// BenchmarkAblationPNGCompression reproduces the Table 2 PNG finding as a
// microbenchmark over the three interesting encoder settings.
func BenchmarkAblationPNGCompression(b *testing.B) {
	fb := render.NewFramebuffer(580, 145)
	err := mpi.Run(1, func(c *mpi.Comm) error {
		s, err := phasta.NewSolver(c, phasta.DefaultConfig(20))
		if err != nil {
			return err
		}
		s.Step()
		a := catalyst.NewSliceAdaptor(c, catalyst.Options{
			ArrayName: "velocity", Assoc: grid.PointData,
			Width: fb.W, Height: fb.H, SliceAxis: 2, SliceCoord: 1,
		})
		bridge := core.NewBridge(c, nil, nil)
		bridge.AddAnalysis("catalyst", a)
		d := phasta.NewDataAdaptor(s)
		d.Update()
		_, err = bridge.Execute(d)
		return err
	})
	if err != nil {
		b.Fatal(err)
	}
	levels := map[string]png.CompressionLevel{
		"default": png.DefaultCompression,
		"none":    png.NoCompression,
		"best":    png.BestCompression,
	}
	for name, lvl := range levels {
		lvl := lvl
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var buf bytes.Buffer
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if _, err := render.WritePNG(&buf, fb, render.PNGOptions{Compression: lvl}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGhostBlanking measures the histogram with and without a
// ghost array attached (the blanking branch in the inner loop).
func BenchmarkAblationGhostBlanking(b *testing.B) {
	n := 32 * 32 * 32
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i % 97)
	}
	gh := array.New[uint8](grid.GhostArrayName, 1, n)
	for i := 0; i < n; i += 16 {
		gh.Set(i, 0, 1)
	}
	cases := map[string]array.Array{"without-ghosts": nil, "with-ghosts": gh}
	for name, ghost := range cases {
		ghost := ghost
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = analysis.SerialHistogram(array.WrapAOS("data", 1, vals), ghost, 16)
			}
		})
	}
}

// BenchmarkAblationCollectives measures the simulated MPI collectives that
// every analysis leans on.
func BenchmarkAblationCollectives(b *testing.B) {
	for _, p := range []int{2, 8} {
		p := p
		b.Run(fmt.Sprintf("allreduce-p%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				err := mpi.Run(p, func(c *mpi.Comm) error {
					buf := make([]float64, 64)
					out := make([]float64, 64)
					return mpi.Allreduce(c, buf, out, mpi.OpSum)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCinemaExtractStep measures one Cinema database step (2 views x 1
// isovalue) — the §2.2.4 explorable-extract workload.
func BenchmarkCinemaExtractStep(b *testing.B) {
	dir := b.TempDir()
	err := mpi.Run(1, func(c *mpi.Comm) error {
		sim, err := oscillator.NewSim(c, oscillator.Config{
			GlobalCells: [3]int{16, 16, 16}, DT: 0.05, Steps: 1,
			Oscillators: oscillator.DefaultDeck(16),
		}, nil)
		if err != nil {
			return err
		}
		if err := sim.Step(); err != nil {
			return err
		}
		cn := extracts.New(c, extracts.Spec{
			ArrayName: "data", IsoValues: []float64{0.5},
			Phi: []float64{0, 90}, Theta: []float64{30},
			Width: 64, Height: 64, OutputDir: dir,
		})
		d := oscillator.NewDataAdaptor(sim)
		d.Update()
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cn.Execute(d); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationSENSEIVsFreeprocessing contrasts the two coupling styles
// of §2.2.5: the SENSEI zero-copy adaptor versus Freeprocessing-style write
// interception (serialize + decode, two full copies).
func BenchmarkAblationSENSEIVsFreeprocessing(b *testing.B) {
	b.Run("sensei-zero-copy", func(b *testing.B) {
		err := mpi.Run(1, func(c *mpi.Comm) error {
			sim, err := oscillator.NewSim(c, oscillator.Config{
				GlobalCells: [3]int{16, 16, 16}, DT: 0.05, Steps: 1,
				Oscillators: oscillator.DefaultDeck(16),
			}, nil)
			if err != nil {
				return err
			}
			if err := sim.Step(); err != nil {
				return err
			}
			h := analysis.NewHistogram(c, "data", grid.CellData, 8)
			d := oscillator.NewDataAdaptor(sim)
			d.Update()
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := h.Execute(d); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	})
	b.Run("freeprocessing-interception", func(b *testing.B) {
		err := mpi.Run(1, func(c *mpi.Comm) error {
			sim, err := oscillator.NewSim(c, oscillator.Config{
				GlobalCells: [3]int{16, 16, 16}, DT: 0.05, Steps: 1,
				Oscillators: oscillator.DefaultDeck(16),
			}, nil)
			if err != nil {
				return err
			}
			if err := sim.Step(); err != nil {
				return err
			}
			bridge := core.NewBridge(c, nil, nil)
			bridge.AddAnalysis("histogram", analysis.NewHistogram(c, "data", grid.CellData, 8))
			ip := freeproc.New(bridge)
			d := oscillator.NewDataAdaptor(sim)
			d.Update()
			mesh, _ := d.Mesh(false)
			if err := d.AddArray(mesh, grid.CellData, "data"); err != nil {
				return err
			}
			img := mesh.(*grid.ImageData)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := ip.NewStepWriter()
				if _, err := w.Write(adios.EncodeStep(img, i, 0)); err != nil {
					return err
				}
				if err := w.Close(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkAblationFanIn contrasts 1:1 staging with 4:2 fan-in.
func BenchmarkAblationFanIn(b *testing.B) {
	for _, readers := range []int{4, 2} {
		readers := readers
		b.Run(fmt.Sprintf("4writers-%dreaders", readers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fabric := adios.NewFabricNM(4, readers, 2)
				var wg sync.WaitGroup
				wg.Add(2)
				var werr, eerr error
				go func() {
					defer wg.Done()
					werr = mpi.Run(4, func(c *mpi.Comm) error {
						sim, err := oscillator.NewSim(c, oscillator.Config{
							GlobalCells: [3]int{12, 12, 12}, DT: 0.05, Steps: 2,
							Oscillators: oscillator.DefaultDeck(12),
						}, nil)
						if err != nil {
							return err
						}
						w := adios.NewWriter(c, &adios.FlexPathTransport{Fabric: fabric})
						d := oscillator.NewDataAdaptor(sim)
						for s := 0; s < 2; s++ {
							if err := sim.Step(); err != nil {
								return err
							}
							d.Update()
							if _, err := w.Execute(d); err != nil {
								return err
							}
						}
						return w.Finalize()
					})
				}()
				go func() {
					defer wg.Done()
					_, eerr = adios.RunEndpoint(fabric, func(br *core.Bridge) error {
						br.AddAnalysis("histogram", analysis.NewHistogram(br.Comm, "data", grid.CellData, 8))
						return nil
					})
				}()
				wg.Wait()
				if werr != nil || eerr != nil {
					b.Fatal(werr, eerr)
				}
			}
		})
	}
}

// BenchmarkVolumeRenderComposite measures the direct-volume-rendering path:
// local ray march plus ordered over-compositing across 4 ranks.
func BenchmarkVolumeRenderComposite(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(4, func(c *mpi.Comm) error {
			sim, err := oscillator.NewSim(c, oscillator.Config{
				GlobalCells: [3]int{16, 16, 16}, DT: 0.05, Steps: 2,
				Oscillators: oscillator.DefaultDeck(16),
			}, nil)
			if err != nil {
				return err
			}
			if err := sim.Step(); err != nil {
				return err
			}
			if err := sim.Step(); err != nil {
				return err
			}
			d := oscillator.NewDataAdaptor(sim)
			d.Update()
			mesh, err := d.Mesh(false)
			if err != nil {
				return err
			}
			if err := d.AddArray(mesh, grid.CellData, "data"); err != nil {
				return err
			}
			img := mesh.(*grid.ImageData)
			spec := &render.VolumeSpec{
				ArrayName: "data", Axis: 2, Lo: -0.5, Hi: 1,
				Map: colormap.Viridis(), OpacityScale: 0.3,
				DomainBounds: [6]float64{0, 16, 0, 16, 0, 16},
			}
			local, key, err := render.RayMarchLocalSized(img, spec, 64, 64)
			if err != nil {
				return err
			}
			_, err = compositing.OverComposite(c, local, key, 0)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexBuildAndQuery measures the in situ binned-index build and a
// range query against it.
func BenchmarkIndexBuildAndQuery(b *testing.B) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		sim, err := oscillator.NewSim(c, oscillator.Config{
			GlobalCells: [3]int{24, 24, 24}, DT: 0.05, Steps: 1,
			Oscillators: oscillator.DefaultDeck(24),
		}, nil)
		if err != nil {
			return err
		}
		if err := sim.Step(); err != nil {
			return err
		}
		ix := analysis.NewBinnedIndex(c, "data", grid.CellData, 32)
		d := oscillator.NewDataAdaptor(sim)
		d.Update()
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ix.Execute(d); err != nil {
				return err
			}
			if _, _, err := ix.CountAbove(0.5); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// --- Intra-rank parallelism (this PR's perf targets) ------------------------

// kernelBenchScene renders the standard isosurface scene used by the raster
// and PNG benchmarks: one opaque 1920x1080 (or given size) frame.
func kernelBenchScene(b *testing.B, w, h int) (*render.TriMesh, *render.Camera, *render.Framebuffer) {
	b.Helper()
	n := 33
	img := grid.NewImageData(grid.NewExtent3D(n, n, n))
	vals := make([]float64, n*n*n)
	idx := 0
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				dx, dy, dz := float64(i-n/2), float64(j-n/2), float64(k-n/2)
				vals[idx] = dx*dx + dy*dy + dz*dz
				idx++
			}
		}
	}
	img.Attributes(grid.PointData).Add(array.WrapAOS("r2", 1, vals))
	mesh, err := render.Isosurface(img, "r2", 100, "")
	if err != nil {
		b.Fatal(err)
	}
	cam := render.DefaultCamera([6]float64{0, float64(n - 1), 0, float64(n - 1), 0, float64(n - 1)})
	fb := render.NewFramebuffer(w, h)
	return mesh, cam, fb
}

// BenchmarkFig3OscillatorKernel times the O(m·N³) oscillator field update —
// the compute side of every figure's miniapp runs — serial versus the k-slab
// parallel path at the process thread budget.
func BenchmarkFig3OscillatorKernel(b *testing.B) {
	for _, mode := range []struct {
		name    string
		threads int
	}{{"serial", 1}, {"auto", 0}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			err := mpi.Run(1, func(c *mpi.Comm) error {
				sim, err := oscillator.NewSim(c, oscillator.Config{
					GlobalCells: [3]int{48, 48, 48}, DT: 0.05, Steps: b.N + 1,
					Oscillators: oscillator.DefaultDeck(48),
					Threads:     mode.threads,
				}, nil)
				if err != nil {
					return err
				}
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := sim.Step(); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkRasterizeMesh times RenderMeshWorkers over the standard scene at
// 1 worker versus the process budget (stripe-parallel z-buffered raster).
func BenchmarkRasterizeMesh(b *testing.B) {
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"auto", 0}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			mesh, cam, fb := kernelBenchScene(b, 640, 360)
			cm := colormap.Viridis()
			shade := func(s float64) color.RGBA { return cm.Pseudocolor(s, 0, 200) }
			workers := mode.workers
			if workers == 0 {
				workers = parallel.Workers(0, 1)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fb.Clear(color.RGBA{})
				render.RenderMeshWorkers(fb, cam, mesh, shade, workers)
			}
		})
	}
}

// BenchmarkTab2PNGEncode1080p times the paper's Table 2 bottleneck — PNG
// serialization of a full-HD composited frame on rank 0 — for the serial
// stdlib path (modeled paper behavior) and the stripe-parallel encoder.
func BenchmarkTab2PNGEncode1080p(b *testing.B) {
	mesh, cam, fb := kernelBenchScene(b, 1920, 1080)
	cm := colormap.Viridis()
	render.RenderMesh(fb, cam, mesh, func(s float64) color.RGBA { return cm.Pseudocolor(s, 0, 200) })
	fb.FillBackground(color.RGBA{R: 18, G: 18, B: 24, A: 255})
	for _, mode := range []struct {
		name string
		opts render.PNGOptions
	}{
		{"serial", render.PNGOptions{}},
		{"serial-nocompress", render.PNGOptions{Compression: png.NoCompression}},
		{"parallel", render.PNGOptions{Parallel: true}},
		{"parallel-nocompress", render.PNGOptions{Parallel: true, Compression: png.NoCompression}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var buf bytes.Buffer
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if _, err := render.WritePNG(&buf, fb, mode.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHistogramBinning isolates the per-sample binning loop whose
// division was replaced by a precomputed inverse width and multiply-compare
// clamp.
func BenchmarkHistogramBinning(b *testing.B) {
	n := 1 << 18
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%977) / 3.0
	}
	a := array.WrapAOS("data", 1, vals)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := analysis.SerialHistogram(a, nil, 64)
		if res.Total() != int64(n) {
			b.Fatal("bad count")
		}
	}
}
