// Command live-load drives a wall of wire viewers into one live hub — the
// fan-out-scale load generator behind BENCH_9.json and the `make check`
// smoke. It publishes a paced frame sequence while thousands of concurrent
// viewers (loopback pipes or real TCP sockets) attach, and verifies the
// scale contract: the publish path never stalls behind viewers, every fast
// viewer converges on the final frame, and slow viewers — whose socket
// reads are artificially delayed — are credit-gated into skip-to-newest
// instead of building a backlog.
//
// Examples:
//
//	live-load -viewers 2000 -frames 60
//	live-load -viewers 500 -network tcp -slow 0.2 -json
//	live-load -viewers 200 -frames 20 -check
//
// With -dial it skips the built-in hub and publisher and instead attaches
// the viewer wall to an already-running live server (for example
// `endpoint -live host:port`), reporting what the viewers observed:
//
//	live-load -dial 127.0.0.1:9920 -viewers 50 -network tcp
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"gosensei/internal/fabric"
	"gosensei/internal/live"
)

// slowConn delays every socket read, modeling a viewer on a congested link:
// its releases stop flowing, so the server must credit-gate it rather than
// let it wedge a pusher on the write deadline.
type slowConn struct {
	fabric.Conn
	delay time.Duration
}

func (c *slowConn) Read(p []byte) (int, error) {
	time.Sleep(c.delay)
	return c.Conn.Read(p)
}

type viewerStats struct {
	received  uint64
	lastStep  int
	converged bool
}

type report struct {
	Network       string  `json:"network"`
	Viewers       int     `json:"viewers"`
	SlowViewers   int     `json:"slow_viewers"`
	Frames        int     `json:"frames"`
	PNGBytes      int     `json:"png_bytes"`
	Credits       int     `json:"credits"`
	AttachMS      float64 `json:"attach_ms"`
	PublishP50US  float64 `json:"publish_p50_us"`
	PublishMaxUS  float64 `json:"publish_max_us"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	Delivered     uint64  `json:"frames_delivered"`
	DeliveredPerS float64 `json:"frames_delivered_per_sec"`
	FastMinRecv   uint64  `json:"fast_min_received"`
	SlowMinRecv   uint64  `json:"slow_min_received"`
	SlowMaxRecv   uint64  `json:"slow_max_received"`
	HeapMB        float64 `json:"heap_mb"`
	Converged     int     `json:"viewers_converged"`
}

func main() {
	var (
		viewers  = flag.Int("viewers", 2000, "concurrent wire viewers")
		network  = flag.String("network", "loopback", "fabric network: loopback or tcp")
		frames   = flag.Int("frames", 60, "frames to publish")
		pngBytes = flag.Int("png", 16<<10, "payload bytes per frame")
		credits  = flag.Int("credits", 2, "per-viewer credit budget")
		slow     = flag.Float64("slow", 0.1, "fraction of viewers with delayed socket reads")
		pace     = flag.Duration("pace", 5*time.Millisecond, "delay between publishes")
		check    = flag.Bool("check", false, "enforce the scale contract; nonzero exit on violation")
		asJSON   = flag.Bool("json", false, "print the report as JSON")
		dial     = flag.String("dial", "", "attach to an existing live server at this address instead of hosting one")
	)
	flag.Parse()
	if *dial != "" {
		runDial(*dial, *network, *viewers)
		return
	}

	addr := fmt.Sprintf("live-load-%d", os.Getpid())
	if *network == "tcp" {
		addr = "127.0.0.1:0"
	}
	lis, err := fabric.Listen(*network, addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	hub := live.NewHub()
	defer hub.Close()
	srv := live.ServeWith(lis, hub, live.ServeOptions{Credits: *credits})
	defer func() { _ = srv.Close() }()
	dialAddr := addr
	if *network == "tcp" {
		dialAddr = srv.Addr()
	}

	nSlow := int(float64(*viewers) * *slow)
	payload := make([]byte, *pngBytes)
	for i := range payload {
		payload[i] = byte(i * 131)
	}
	finalStep := *frames - 1

	// Attach every viewer before the first publish. Slow viewers get a
	// read-delayed conn; their pump still runs, just late.
	attachStart := time.Now()
	vs := make([]*live.Viewer, *viewers)
	var dialWG sync.WaitGroup
	dialErr := make(chan error, 1)
	for i := 0; i < *viewers; i++ {
		dialWG.Add(1)
		go func(i int) {
			defer dialWG.Done()
			opts := live.ViewerOptions{}
			if i < nSlow {
				// Several publish intervals per socket read: the viewer
				// cannot keep up, so the server must skip it to newest.
				opts.WrapConn = func(c fabric.Conn) fabric.Conn {
					return &slowConn{Conn: c, delay: 4 * *pace}
				}
			}
			v, err := live.DialViewerWith(*network, dialAddr, opts)
			if err != nil {
				select {
				case dialErr <- fmt.Errorf("viewer %d: %w", i, err):
				default:
				}
				return
			}
			vs[i] = v
		}(i)
	}
	dialWG.Wait()
	select {
	case err := <-dialErr:
		fatalf("dial: %v", err)
	default:
	}
	attachMS := float64(time.Since(attachStart).Microseconds()) / 1000

	// Each viewer consumes through the public newest-wins API and records
	// what it saw; the consumer goroutine exits once the final step lands
	// or the stream dies.
	stats := make([]viewerStats, *viewers)
	var consumeWG sync.WaitGroup
	for i, v := range vs {
		consumeWG.Add(1)
		go func(i int, v *live.Viewer) {
			defer consumeWG.Done()
			st := &stats[i]
			st.lastStep = -1
			for {
				f, ok := v.Next(30 * time.Second)
				if !ok {
					return
				}
				st.received++
				st.lastStep = f.Step
				if f.Step >= finalStep {
					st.converged = true
					return
				}
			}
		}(i, v)
	}

	// Publish the paced sequence, timing each publish call: this is the
	// simulation's side of the contract — flat, viewer-independent cost.
	publishUS := make([]float64, 0, *frames)
	runStart := time.Now()
	for step := 0; step < *frames; step++ {
		t0 := time.Now()
		hub.Publish(live.Frame{Step: step, Width: 64, Height: 64, PNG: payload})
		publishUS = append(publishUS, float64(time.Since(t0).Microseconds()))
		time.Sleep(*pace)
	}
	consumeWG.Wait()
	elapsedMS := float64(time.Since(runStart).Microseconds()) / 1000
	for _, v := range vs {
		_ = v.Close()
	}

	sort.Float64s(publishUS)
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	r := report{
		Network: *network, Viewers: *viewers, SlowViewers: nSlow,
		Frames: *frames, PNGBytes: *pngBytes, Credits: *credits,
		AttachMS:     attachMS,
		PublishP50US: publishUS[len(publishUS)/2],
		PublishMaxUS: publishUS[len(publishUS)-1],
		ElapsedMS:    elapsedMS,
		HeapMB:       float64(mem.HeapAlloc) / (1 << 20),
	}
	r.FastMinRecv = ^uint64(0)
	r.SlowMinRecv = ^uint64(0)
	for i := range stats {
		st := &stats[i]
		r.Delivered += st.received
		if st.converged {
			r.Converged++
		}
		if i < nSlow {
			r.SlowMinRecv = min(r.SlowMinRecv, st.received)
			r.SlowMaxRecv = max(r.SlowMaxRecv, st.received)
		} else {
			r.FastMinRecv = min(r.FastMinRecv, st.received)
		}
	}
	if nSlow == 0 {
		r.SlowMinRecv, r.SlowMaxRecv = 0, 0
	}
	if *viewers == nSlow {
		r.FastMinRecv = 0
	}
	r.DeliveredPerS = float64(r.Delivered) / (elapsedMS / 1000)

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fatalf("encode: %v", err)
		}
	} else {
		fmt.Printf("live-load %s: %d viewers (%d slow) x %d frames (%dB): publish p50 %.0fus max %.0fus, %d delivered (%.0f/s), converged %d/%d, heap %.1f MB\n",
			r.Network, r.Viewers, r.SlowViewers, r.Frames, r.PNGBytes,
			r.PublishP50US, r.PublishMaxUS, r.Delivered, r.DeliveredPerS,
			r.Converged, r.Viewers, r.HeapMB)
	}

	if *check {
		// The scale contract. Publish must not stall behind viewers: the
		// slowest publish stays far under the 10s write deadline a wedged
		// pusher would impose (1s is generous for a pointer swap + wakeups
		// on a loaded 1-CPU host).
		if r.PublishMaxUS > 1e6 {
			fatalf("check: publish stalled: max %.0fus", r.PublishMaxUS)
		}
		// Every viewer — fast or slow — eventually converges on the final
		// frame: slow viewers skip, they do not fall off or wedge.
		if r.Converged != r.Viewers {
			fatalf("check: only %d/%d viewers saw the final frame", r.Converged, r.Viewers)
		}
		// Slow viewers actually skipped: credit gating kept their delivery
		// count under the full sequence. (Equality would mean the server
		// queued a backlog for them instead.)
		if nSlow > 0 && *frames >= 20 && r.SlowMaxRecv >= uint64(*frames) {
			fatalf("check: slow viewers received %d of %d frames — no skip-to-newest", r.SlowMaxRecv, *frames)
		}
	}
}

// runDial is the client-only mode: attach viewers to a server someone else
// is running, consume newest-wins until the stream ends, and report. The
// first viewer steers once, proving the command path end to end.
func runDial(addr, network string, viewers int) {
	vs := make([]*live.Viewer, 0, viewers)
	for i := 0; i < viewers; i++ {
		v, err := live.DialViewer(network, addr)
		if err != nil {
			fatalf("dial %s: %v", addr, err)
		}
		defer func() { _ = v.Close() }()
		vs = append(vs, v)
	}
	var wg sync.WaitGroup
	received := make([]uint64, len(vs))
	lastStep := make([]int, len(vs))
	for i, v := range vs {
		wg.Add(1)
		go func(i int, v *live.Viewer) {
			defer wg.Done()
			lastStep[i] = -1
			for {
				f, ok := v.Next(10 * time.Second)
				if !ok {
					return
				}
				if f.Step < lastStep[i] {
					fatalf("viewer %d: steps went backwards (%d after %d)", i, f.Step, lastStep[i])
				}
				received[i]++
				lastStep[i] = f.Step
				if received[i] == 1 && i == 0 {
					if err := v.Steer("jet-amplitude", 2.5); err != nil {
						fatalf("steer: %v", err)
					}
				}
			}
		}(i, v)
	}
	wg.Wait()
	var total uint64
	minRecv, maxStep := ^uint64(0), -1
	for i := range vs {
		total += received[i]
		minRecv = min(minRecv, received[i])
		maxStep = max(maxStep, lastStep[i])
	}
	fmt.Printf("live-load dial %s: %d viewers, %d frames total (min %d per viewer), newest step %d, steer sent\n",
		addr, len(vs), total, minRecv, maxStep)
	if total == 0 {
		fatalf("no frames received from %s", addr)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "live-load: "+format+"\n", args...)
	os.Exit(1)
}
