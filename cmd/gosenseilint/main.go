// Command gosenseilint runs the repo's static-analysis suite (package
// internal/lint) over the module and reports invariant violations in
// `file:line: [rule] message` form.
//
// Usage:
//
//	gosenseilint [-C dir] [-json] [-stats] [-rule-stats]
//
// Exit status is 0 when the tree is clean, 1 when findings exist, and 2 on
// driver errors. The same suite runs inside `go test ./internal/lint/...`,
// so CI enforcement does not depend on this binary; it exists for ad-hoc
// runs and editor integration.
package main

import (
	"flag"
	"fmt"
	"os"

	"gosensei/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "module directory (or any subdirectory of it)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	stats := flag.Bool("stats", false, "print scan statistics to stderr")
	ruleStats := flag.Bool("rule-stats", false, "emit a per-rule findings/suppressions JSON summary instead of the findings list")
	flag.Parse()

	res, err := lint.RunModule(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gosenseilint: %v\n", err)
		os.Exit(2)
	}
	switch {
	case *ruleStats:
		// Findings still fail the run; they go to stderr so the stats JSON
		// stays parseable on stdout.
		if werr := lint.WriteText(os.Stderr, res.Diagnostics); werr != nil {
			fmt.Fprintf(os.Stderr, "gosenseilint: %v\n", werr)
			os.Exit(2)
		}
		err = lint.WriteRuleStats(os.Stdout, res)
	case *jsonOut:
		err = lint.WriteJSON(os.Stdout, res.Diagnostics)
	default:
		err = lint.WriteText(os.Stdout, res.Diagnostics)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gosenseilint: %v\n", err)
		os.Exit(2)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "gosenseilint: %d packages, %d files, %d findings (%d suppressed) in %s\n",
			res.Packages, res.Files, len(res.Diagnostics), res.Suppressed, res.Elapsed.Round(1e6))
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}
