// Command gosenseilint runs the repo's static-analysis suite (package
// internal/lint) over the module and reports invariant violations in
// `file:line: [rule] message` form.
//
// Usage:
//
//	gosenseilint [-C dir] [-json] [-stats]
//
// Exit status is 0 when the tree is clean, 1 when findings exist, and 2 on
// driver errors. The same suite runs inside `go test ./internal/lint/...`,
// so CI enforcement does not depend on this binary; it exists for ad-hoc
// runs and editor integration.
package main

import (
	"flag"
	"fmt"
	"os"

	"gosensei/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "module directory (or any subdirectory of it)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	stats := flag.Bool("stats", false, "print scan statistics to stderr")
	flag.Parse()

	res, err := lint.RunModule(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gosenseilint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		err = lint.WriteJSON(os.Stdout, res.Diagnostics)
	} else {
		err = lint.WriteText(os.Stdout, res.Diagnostics)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gosenseilint: %v\n", err)
		os.Exit(2)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "gosenseilint: %d packages, %d files, %d findings (%d suppressed) in %s\n",
			res.Packages, res.Files, len(res.Diagnostics), res.Suppressed, res.Elapsed.Round(1e6))
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}
