// Command oscillator runs the miniapplication of the paper's §3.3 with a
// SENSEI analysis configuration, mirroring the original miniapp's command
// line: an oscillator input deck, grid/time parameters, and an XML analysis
// configuration selecting any of the registered analyses and
// infrastructures (histogram, autocorrelation, catalyst, libsim, adios,
// glean).
//
// With -route auto the bridge additionally carries an adaptive histogram
// analysis whose backend (in situ vs post hoc file replay) is re-decided
// every step by internal/route against the declared -budget-* ceilings; the
// router's decision log prints at exit.
//
// Examples:
//
//	oscillator -ranks 8 -cells 32 -steps 20 \
//	    -config configs/histogram.xml -deck decks/sample.osc
//	oscillator -ranks 4 -steps 12 -route auto \
//	    -budget-step 0.01 -budget-storage 1048576
package main

import (
	"flag"
	"fmt"
	"os"

	_ "gosensei/internal/adios"
	"gosensei/internal/analysis"
	_ "gosensei/internal/catalyst"
	"gosensei/internal/core"
	_ "gosensei/internal/extracts"
	"gosensei/internal/faultline"
	_ "gosensei/internal/glean"
	"gosensei/internal/grid"
	"gosensei/internal/iosim"
	_ "gosensei/internal/libsim"
	"gosensei/internal/machine"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
	"gosensei/internal/oscillator"
	"gosensei/internal/parallel"
	"gosensei/internal/perfmodel"
	"gosensei/internal/route"
)

func main() {
	var (
		ranks   = flag.Int("ranks", 4, "world size (simulated MPI ranks)")
		cells   = flag.Int("cells", 32, "global cells per axis")
		steps   = flag.Int("steps", 20, "time steps")
		dt      = flag.Float64("dt", 0.05, "time resolution")
		sync    = flag.Bool("sync", false, "barrier after every step")
		deck    = flag.String("deck", "", "oscillator input deck (default: built-in three-source deck)")
		config  = flag.String("config", "", "SENSEI analysis configuration XML")
		threads = flag.Int("threads", 0, "process thread budget shared across ranks (0 = GOMAXPROCS)")
		verbose = flag.Bool("v", false, "print per-rank timing summary")
		faults  = flag.String("faults", "", "fault-injection schedule <seed:spec> (see internal/faultline)")

		routeMode  = flag.String("route", "", "backend routing policy: \"auto\" adds an adaptively routed histogram analysis")
		routeBins  = flag.Int("route-bins", 16, "histogram bins for the routed analysis")
		budgetStep = flag.Float64("budget-step", 0, "routing budget: max seconds per analysis step (0 = unlimited)")
		budgetWire = flag.Int64("budget-wire", 0, "routing budget: max wire bytes per step (0 = unlimited)")
		budgetStor = flag.Int64("budget-storage", 0, "routing budget: max storage bytes per step (0 = unlimited)")
	)
	flag.Parse()
	if *threads > 0 {
		parallel.SetThreads(*threads)
	}

	var frun *faultline.Run
	var opts []mpi.Option
	if *faults != "" {
		sched, err := faultline.Parse(*faults)
		if err != nil {
			fatal(err)
		}
		frun = sched.Start()
		if p := frun.NewMPIPlan(); p != nil {
			opts = append(opts, mpi.WithFaults(p))
		}
		if p := frun.IOPlan(); p != nil {
			iosim.SetFaults(p)
		}
	}

	var configDoc []byte
	if *config != "" {
		doc, err := os.ReadFile(*config)
		if err != nil {
			fatal(err)
		}
		configDoc = doc
	}

	if *routeMode != "" && *routeMode != "auto" {
		fatal(fmt.Errorf("unknown -route policy %q (want \"auto\")", *routeMode))
	}
	var routeDir string
	if *routeMode == "auto" {
		dir, err := os.MkdirTemp("", "oscillator-route-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		routeDir = dir
	}
	var routerLog string

	err := mpi.Run(*ranks, func(c *mpi.Comm) error {
		var oscs []oscillator.Oscillator
		var err error
		if *deck != "" {
			var f *os.File
			if c.Rank() == 0 {
				f, err = os.Open(*deck)
				if err != nil {
					return err
				}
				defer f.Close()
			}
			if f != nil {
				oscs, err = oscillator.BroadcastDeck(c, f)
			} else {
				oscs, err = oscillator.BroadcastDeck(c, nil)
			}
			if err != nil {
				return err
			}
		} else {
			oscs = oscillator.DefaultDeck(float64(*cells))
		}
		cfg := oscillator.Config{
			GlobalCells: [3]int{*cells, *cells, *cells},
			DT:          *dt,
			Steps:       *steps,
			Sync:        *sync,
			Oscillators: oscs,
		}
		reg := metrics.NewRegistry(c.Rank())
		mem := metrics.NewTracker()
		sim, err := oscillator.NewSim(c, cfg, mem)
		if err != nil {
			return err
		}
		bridge := core.NewBridge(c, reg, mem)
		if configDoc != nil {
			if err := core.ConfigureFromXML(bridge, configDoc); err != nil {
				return err
			}
		}
		var router *route.Router
		if *routeMode == "auto" {
			cellsPerRank := cfg.GlobalCells[0] * cfg.GlobalCells[1] * cfg.GlobalCells[2] / c.Size()
			if c.Rank() == 0 {
				prior := perfmodel.RoutePrior(perfmodel.New(machine.Cori(), perfmodel.DefaultCalibration()),
					c.Size(), cellsPerRank, *routeBins)
				router = route.New(route.Config{
					Budget: route.Budget{
						MaxStepSeconds:  *budgetStep,
						MaxWireBytes:    *budgetWire,
						MaxStorageBytes: *budgetStor,
					},
					Eligible: []route.Backend{route.InSitu, route.PostHoc},
					Start:    route.InSitu,
				}, prior)
			}
			replay := iosim.NewHistogramReplay(c, routeDir, "data", grid.CellData, *routeBins)
			rt := core.NewRouted(c, router, &core.WallMeter{Storage: func() int64 { return replay.BytesWritten }})
			rt.SetRoute(route.InSitu, analysis.NewHistogram(c, "data", grid.CellData, *routeBins))
			rt.SetRoute(route.PostHoc, replay)
			bridge.AddAnalysis("routed-histogram", rt)
		}
		adaptor := oscillator.NewDataAdaptor(sim)
		total := reg.Timer("total")
		total.Start()
		for i := 0; i < cfg.Steps; i++ {
			if err := sim.Step(); err != nil {
				return err
			}
			adaptor.Update()
			cont, err := bridge.Execute(adaptor)
			if err != nil {
				return err
			}
			if !cont {
				break
			}
		}
		if err := bridge.Finalize(); err != nil {
			return err
		}
		total.Stop()

		tot, err := metrics.Summarize(c, reg, "total")
		if err != nil {
			return err
		}
		hw, err := metrics.SumHighWater(c, mem)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if router != nil {
				routerLog = route.FormatDecisions(router.Decisions())
			}
			fmt.Printf("oscillator: %d ranks, %d^3 cells, %d steps, %d analyses\n",
				c.Size(), *cells, *steps, bridge.AnalysisCount())
			fmt.Printf("time to solution: %s (max over ranks)\n", metrics.FormatSeconds(tot.Max))
			fmt.Printf("memory high-water (sum over ranks): %s\n", metrics.FormatBytes(hw))
			if *verbose {
				for _, name := range reg.TimerNames() {
					t := reg.Timer(name)
					fmt.Printf("  %-28s total %-12s calls %d\n", name,
						metrics.FormatSeconds(t.Total().Seconds()), t.Count())
				}
			}
		}
		return nil
	}, opts...)
	if routerLog != "" {
		fmt.Printf("route: decision log\n%s\n", routerLog)
	}
	if frun != nil {
		// Printed before the error check so a fatal schedule still leaves
		// its replay trace.
		fmt.Printf("faultline: schedule %s\n", *faults)
		for _, l := range frun.TraceLines() {
			fmt.Printf("faultline: fired %s\n", l)
		}
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oscillator:", err)
	os.Exit(1)
}
