// Command endpoint demonstrates the paper's §4.1.4 two-executable
// ADIOS/FlexPath deployment: a simulation (writer) group and an analysis
// (endpoint) group connected by the staging transport, 1:1 paired like the
// paper's hyperthread co-scheduling on Cori.
//
// In the original, writer and endpoint are two separate binaries connected
// over the interconnect; FlexPath even allows reconnecting a recompiled
// endpoint mid-run. Here the fabric is in-process, so this command launches
// both groups as two concurrent "executables" in one process — the code on
// each side is exactly what two separate binaries would run.
//
// Example:
//
//	endpoint -ranks 8 -steps 20 -workload catalyst-slice -outdir ./frames
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"gosensei/internal/adios"
	"gosensei/internal/analysis"
	"gosensei/internal/catalyst"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
	"gosensei/internal/oscillator"
)

func main() {
	var (
		ranks    = flag.Int("ranks", 4, "writer (and endpoint) group size")
		cells    = flag.Int("cells", 32, "global cells per axis")
		steps    = flag.Int("steps", 10, "time steps")
		depth    = flag.Int("queue-depth", 1, "FlexPath staging queue depth")
		workload = flag.String("workload", "histogram", "histogram | autocorrelation | catalyst-slice")
		outdir   = flag.String("outdir", "", "image output directory (catalyst-slice)")
		bins     = flag.Int("bins", 10, "histogram bins")
		window   = flag.Int("window", 10, "autocorrelation window")
	)
	flag.Parse()

	fabric := adios.NewFabric(*ranks, *depth)
	simCfg := oscillator.Config{
		GlobalCells: [3]int{*cells, *cells, *cells},
		DT:          0.05,
		Steps:       *steps,
		Oscillators: oscillator.DefaultDeck(float64(*cells)),
	}

	var wg sync.WaitGroup
	var writerErr, endpointErr error
	var res *adios.EndpointResult
	var hist *analysis.Histogram

	wg.Add(2)
	go func() { // the "simulation executable"
		defer wg.Done()
		writerErr = mpi.Run(*ranks, func(c *mpi.Comm) error {
			sim, err := oscillator.NewSim(c, simCfg, nil)
			if err != nil {
				return err
			}
			w := adios.NewWriter(c, &adios.FlexPathTransport{Fabric: fabric})
			b := core.NewBridge(c, nil, nil)
			b.AddAnalysis("adios", w)
			d := oscillator.NewDataAdaptor(sim)
			for i := 0; i < simCfg.Steps; i++ {
				if err := sim.Step(); err != nil {
					return err
				}
				d.Update()
				if _, err := b.Execute(d); err != nil {
					return err
				}
			}
			return b.Finalize()
		})
	}()
	go func() { // the "endpoint executable"
		defer wg.Done()
		res, endpointErr = adios.RunEndpoint(fabric, func(b *core.Bridge) error {
			switch *workload {
			case "histogram":
				h := analysis.NewHistogram(b.Comm, "data", grid.CellData, *bins)
				if b.Comm.Rank() == 0 {
					hist = h
				}
				b.AddAnalysis("histogram", h)
			case "autocorrelation":
				b.AddAnalysis("autocorrelation",
					analysis.NewAutocorrelation(b.Comm, "data", grid.CellData, *window, 3))
			case "catalyst-slice":
				a := catalyst.NewSliceAdaptor(b.Comm, catalyst.Options{
					ArrayName: "data", Assoc: grid.CellData,
					Width: 480, Height: 270,
					SliceAxis: 2, SliceCoord: float64(*cells) / 2,
					OutputDir: *outdir,
				})
				a.Registry = b.Registry
				b.AddAnalysis("catalyst", a)
			default:
				return fmt.Errorf("unknown workload %q", *workload)
			}
			return nil
		})
	}()
	wg.Wait()
	if writerErr != nil {
		fatal(writerErr)
	}
	if endpointErr != nil {
		fatal(endpointErr)
	}

	fmt.Printf("flexpath: %d writer/%d endpoint ranks, %d steps staged, workload %s\n",
		*ranks, *ranks, res.Steps, *workload)
	reg := res.Registries[0]
	fmt.Printf("endpoint init: %s, decode total: %s\n",
		metrics.FormatSeconds(reg.Timer("endpoint::initialize").Total().Seconds()),
		metrics.FormatSeconds(reg.Timer("endpoint::decode").Total().Seconds()))
	if hist != nil && hist.Last != nil {
		fmt.Printf("final histogram (step %d, range [%.3f, %.3f]):\n", hist.Last.Step, hist.Last.Min, hist.Last.Max)
		for i, c := range hist.Last.Counts {
			lo, hi := hist.Last.Bin(i)
			fmt.Printf("  [%8.3f, %8.3f) %d\n", lo, hi, c)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "endpoint:", err)
	os.Exit(1)
}
