// Command endpoint demonstrates the paper's §4.1.4 two-executable
// ADIOS/FlexPath deployment: a simulation (writer) group and an analysis
// (endpoint) group connected by the staging transport, 1:1 paired like the
// paper's hyperthread co-scheduling on Cori.
//
// In the original, writer and endpoint are two separate binaries connected
// over the interconnect; FlexPath even allows reconnecting a recompiled
// endpoint mid-run. This command supports both deployments:
//
//   - Default: both groups run as two concurrent "executables" in one
//     process, staged over the in-process loopback wire.
//   - Two processes: start the analysis side with -listen host:port, then
//     the simulation side with -connect host:port. The groups talk real
//     TCP — framed, checksummed, credit flow controlled — and produce the
//     same analysis output as the in-process run.
//
// The two-process deployment survives an endpoint restart mid-run: writers
// buffer unacknowledged steps (bounded by -queue-depth), redial with
// backoff inside -retry-window, and retransmit. -kill-after simulates the
// failure for testing.
//
// Examples:
//
//	endpoint -ranks 8 -steps 20 -workload catalyst-slice -outdir ./frames
//	endpoint -listen 127.0.0.1:9917 -ranks 4 -steps 10        # terminal 1
//	endpoint -connect 127.0.0.1:9917 -ranks 4 -steps 10       # terminal 2
//
// The endpoint can negotiate bandwidth reduction with protocol-v2 writers:
// -codec delta XOR-deltas each step against the previous one and DEFLATEs
// the result, and -extract histogram:data:10 ships only per-writer histogram
// partials instead of full containers. Either way the analysis output stays
// bit-identical to raw staging; the "data bytes ... logical / ... wire" line
// in the fabric summary shows what the negotiation bought.
//
//	endpoint -listen 127.0.0.1:9917 -codec delta -extract histogram:data:10
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"gosensei/internal/adios"
	"gosensei/internal/analysis"
	"gosensei/internal/catalyst"
	"gosensei/internal/core"
	"gosensei/internal/fabric"
	"gosensei/internal/faultline"
	"gosensei/internal/grid"
	"gosensei/internal/live"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
	"gosensei/internal/oscillator"
)

// options carries the parsed flags to the mode runners.
type options struct {
	ranks, cells, steps, depth int
	workload, outdir           string
	bins, window               int
	listen, connect            string
	killAfter                  int
	retryWindow                time.Duration
	faults                     string
	frun                       *faultline.Run
	codec, extract             string
	codecs                     []uint8 // endpoint preference order
	codecMask                  uint32  // writer-side offer (-connect)
	extractSpec                *fabric.ExtractSpec
	live                       string
	liveHub                    *live.Hub
	liveSrv                    *live.Server
}

func main() {
	var o options
	flag.IntVar(&o.ranks, "ranks", 4, "writer (and endpoint) group size")
	flag.IntVar(&o.cells, "cells", 32, "global cells per axis")
	flag.IntVar(&o.steps, "steps", 10, "time steps")
	flag.IntVar(&o.depth, "queue-depth", 1, "FlexPath staging queue depth")
	flag.StringVar(&o.workload, "workload", "histogram", "histogram | autocorrelation | catalyst-slice")
	flag.StringVar(&o.outdir, "outdir", "", "image output directory (catalyst-slice)")
	flag.IntVar(&o.bins, "bins", 10, "histogram bins")
	flag.IntVar(&o.window, "window", 10, "autocorrelation window")
	flag.StringVar(&o.listen, "listen", "", "run only the endpoint group, serving TCP on host:port")
	flag.StringVar(&o.connect, "connect", "", "run only the writer group, staging to a -listen endpoint")
	flag.IntVar(&o.killAfter, "kill-after", 0, "with -listen: exit(3) after this many executed steps (failure injection)")
	flag.DurationVar(&o.retryWindow, "retry-window", 15*time.Second, "with -connect: how long writers ride out a dead endpoint")
	flag.StringVar(&o.faults, "faults", "", "fault-injection schedule <seed:spec> applied to the writer group (see internal/faultline)")
	flag.StringVar(&o.codec, "codec", "", "wire codec preference, comma separated: raw | flate | delta (default raw; with -connect, the set offered to the endpoint)")
	flag.StringVar(&o.extract, "extract", "", "ship a reduced product instead of full containers: histogram:<array>:<bins> | slice:<axis>:<coord>:<array>")
	flag.StringVar(&o.live, "live", "", "with -workload catalyst-slice: serve rendered frames to live wire viewers on tcp host:port")
	flag.Parse()

	if o.codec != "" {
		codecs, mask, err := parseCodecList(o.codec)
		if err != nil {
			fatal(err)
		}
		o.codecs, o.codecMask = codecs, mask
	}
	if o.extract != "" {
		if o.connect != "" {
			fatal(fmt.Errorf("-extract is an endpoint preference; use it with -listen or in local mode"))
		}
		spec, err := parseExtractSpec(o.extract)
		if err != nil {
			fatal(err)
		}
		if spec.Kind == fabric.ExtractHistogram {
			if o.workload != "histogram" {
				fatal(fmt.Errorf("-extract histogram requires -workload histogram (a shipped histogram cannot feed %q)", o.workload))
			}
			if int(spec.Bins) != o.bins {
				fatal(fmt.Errorf("-extract histogram bins (%d) must match -bins (%d): writers bin remotely with the analysis geometry", spec.Bins, o.bins))
			}
		}
		o.extractSpec = spec
	}

	if o.live != "" {
		// The live hub hangs off the analysis side's catalyst adaptor —
		// the paper's "connect the ParaView GUI to the running endpoint".
		if o.workload != "catalyst-slice" {
			fatal(fmt.Errorf("-live requires -workload catalyst-slice (only the slice adaptor renders frames)"))
		}
		if o.connect != "" {
			fatal(fmt.Errorf("-live is served by the analysis side; use it with -listen or in local mode"))
		}
		lis, err := fabric.Listen("tcp", o.live)
		if err != nil {
			fatal(err)
		}
		o.liveHub = live.NewHub()
		o.liveSrv = live.Serve(lis, o.liveHub)
		fmt.Printf("live: serving viewers on %s\n", o.liveSrv.Addr())
	}

	if o.faults != "" {
		if o.listen != "" {
			fatal(fmt.Errorf("-faults applies to the writer side; use it with -connect or in local mode"))
		}
		sched, err := faultline.Parse(o.faults)
		if err != nil {
			fatal(err)
		}
		o.frun = sched.Start()
	}

	switch {
	case o.listen != "" && o.connect != "":
		fatal(fmt.Errorf("-listen and -connect are mutually exclusive"))
	case o.listen != "":
		runListen(o)
	case o.connect != "":
		runConnect(o)
	default:
		runLocal(o)
	}
	if o.liveSrv != nil {
		if err := o.liveSrv.Close(); err != nil {
			fatal(err)
		}
		o.liveHub.Close()
	}
}

// parseCodecList turns "delta,flate" into the endpoint preference order and
// the equivalent writer-side capability mask.
func parseCodecList(s string) ([]uint8, uint32, error) {
	var ids []uint8
	var mask uint32
	for _, name := range strings.Split(s, ",") {
		id, err := fabric.ParseCodec(strings.TrimSpace(name))
		if err != nil {
			return nil, 0, err
		}
		ids = append(ids, id)
		mask |= 1 << id
	}
	return ids, mask, nil
}

// parseExtractSpec turns the -extract flag into the negotiated wire spec.
// Extracts are computed over cell data, matching every built-in workload.
func parseExtractSpec(s string) (*fabric.ExtractSpec, error) {
	parts := strings.Split(s, ":")
	bad := func() error {
		return fmt.Errorf("bad -extract %q: want histogram:<array>:<bins> or slice:<axis>:<coord>:<array>", s)
	}
	switch parts[0] {
	case "histogram":
		if len(parts) != 3 {
			return nil, bad()
		}
		bins, err := strconv.Atoi(parts[2])
		if err != nil || bins <= 0 {
			return nil, bad()
		}
		return &fabric.ExtractSpec{
			Kind:  fabric.ExtractHistogram,
			Assoc: uint8(grid.CellData),
			Bins:  uint32(bins),
			Array: parts[1],
		}, nil
	case "slice":
		if len(parts) != 4 {
			return nil, bad()
		}
		axis, err := strconv.Atoi(parts[1])
		if err != nil || axis < 0 || axis > 2 {
			return nil, bad()
		}
		coord, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, bad()
		}
		return &fabric.ExtractSpec{
			Kind:  fabric.ExtractSlice,
			Assoc: uint8(grid.CellData),
			Axis:  uint32(axis),
			Coord: coord,
			Array: parts[3],
		}, nil
	}
	return nil, bad()
}

// fabricOptions renders the endpoint-side codec/extract flags as fabric
// creation options for the local and listen modes.
func fabricOptions(o options) []adios.FabricOption {
	var opts []adios.FabricOption
	if len(o.codecs) > 0 {
		opts = append(opts, adios.WithCodecs(o.codecs...))
	}
	if o.extractSpec != nil {
		opts = append(opts, adios.WithExtract(*o.extractSpec))
	}
	return opts
}

// simConfig builds the oscillator deck shared by every mode.
func simConfig(o options) oscillator.Config {
	return oscillator.Config{
		GlobalCells: [3]int{o.cells, o.cells, o.cells},
		DT:          0.05,
		Steps:       o.steps,
		Oscillators: oscillator.DefaultDeck(float64(o.cells)),
	}
}

// runWriters drives the simulation group over any staging transport.
func runWriters(o options, t adios.Transport) error {
	simCfg := simConfig(o)
	var opts []mpi.Option
	if o.frun != nil {
		if p := o.frun.NewMPIPlan(); p != nil {
			opts = append(opts, mpi.WithFaults(p))
		}
	}
	return mpi.Run(o.ranks, func(c *mpi.Comm) error {
		sim, err := oscillator.NewSim(c, simCfg, nil)
		if err != nil {
			return err
		}
		w := adios.NewWriter(c, t)
		b := core.NewBridge(c, nil, nil)
		b.AddAnalysis("adios", w)
		d := oscillator.NewDataAdaptor(sim)
		for i := 0; i < simCfg.Steps; i++ {
			if err := sim.Step(); err != nil {
				return err
			}
			d.Update()
			if _, err := b.Execute(d); err != nil {
				return err
			}
		}
		return b.Finalize()
	}, opts...)
}

// workloadConfigure returns the endpoint bridge configuration for the
// selected analysis; hist receives rank 0's histogram for the final report.
func workloadConfigure(o options, hist **analysis.Histogram) func(b *core.Bridge) error {
	return func(b *core.Bridge) error {
		switch o.workload {
		case "histogram":
			h := analysis.NewHistogram(b.Comm, "data", grid.CellData, o.bins)
			if b.Comm.Rank() == 0 {
				*hist = h
			}
			b.AddAnalysis("histogram", h)
		case "autocorrelation":
			b.AddAnalysis("autocorrelation",
				analysis.NewAutocorrelation(b.Comm, "data", grid.CellData, o.window, 3))
		case "catalyst-slice":
			a := catalyst.NewSliceAdaptor(b.Comm, catalyst.Options{
				ArrayName: "data", Assoc: grid.CellData,
				Width: 480, Height: 270,
				SliceAxis: 2, SliceCoord: float64(o.cells) / 2,
				OutputDir: o.outdir,
				Hub:       o.liveHub,
			})
			a.Registry = b.Registry
			b.AddAnalysis("catalyst", a)
		default:
			return fmt.Errorf("unknown workload %q", o.workload)
		}
		// Failure injection: die after the configured number of executed
		// steps, before RunEndpoint releases them — the writers must
		// retransmit to a restarted endpoint.
		if o.killAfter > 0 {
			b.AddAnalysis("failure-injection", &killer{after: o.killAfter})
		}
		return nil
	}
}

// killer is the failure-injection analysis: it rides after the real
// workload in the bridge, so the step's analysis ran but its credits were
// not yet released when the process dies.
type killer struct{ after, seen int }

// Execute implements core.AnalysisAdaptor.
func (k *killer) Execute(core.DataAdaptor) (bool, error) {
	k.seen++
	if k.seen >= k.after {
		fmt.Printf("endpoint: injected failure after %d steps\n", k.seen)
		os.Exit(3)
	}
	return true, nil
}

// Finalize implements core.AnalysisAdaptor.
func (k *killer) Finalize() error { return nil }

// report prints the endpoint-side summary shared by the local and listen
// modes. The histogram block is printed last so byte-for-byte comparisons
// across deployment modes can anchor on it.
func report(o options, f *adios.Fabric, res *adios.EndpointResult, hist *analysis.Histogram) {
	fmt.Printf("flexpath: %d writer/%d endpoint ranks, %d steps staged, workload %s\n",
		o.ranks, o.ranks, res.Steps, o.workload)
	reg := res.Registries[0]
	fmt.Printf("endpoint init: %s, decode total: %s\n",
		metrics.FormatSeconds(reg.Timer("endpoint::initialize").Total().Seconds()),
		metrics.FormatSeconds(reg.Timer("endpoint::decode").Total().Seconds()))
	// The bytes-on-wire odometer: logical vs wire data bytes shows what the
	// negotiated codec or extract bought.
	fmt.Printf("fabric: %s\n", f.Stats().Summary())
	if o.liveHub != nil {
		fmt.Printf("live: %d frames published, %d viewers attached at exit\n",
			o.liveHub.Frames(), o.liveHub.Viewers())
	}
	if hist != nil && hist.Last != nil {
		fmt.Printf("final histogram (step %d, range [%.3f, %.3f]):\n", hist.Last.Step, hist.Last.Min, hist.Last.Max)
		for i, c := range hist.Last.Counts {
			lo, hi := hist.Last.Bin(i)
			fmt.Printf("  [%8.3f, %8.3f) %d\n", lo, hi, c)
		}
	}
}

// runLocal runs both groups in one process over the loopback wire — the
// original single-binary demonstration.
func runLocal(o options) {
	fab := adios.NewFabric(o.ranks, o.depth, fabricOptions(o)...)
	if o.frun != nil {
		if fp := o.frun.FabricPlan(); fp != nil {
			fab.SetConnWrapper(fp.WrapConn)
		}
	}

	var wg sync.WaitGroup
	var writerErr, endpointErr error
	var res *adios.EndpointResult
	var hist *analysis.Histogram

	wg.Add(2)
	go func() { // the "simulation executable"
		defer wg.Done()
		writerErr = runWriters(o, &adios.FlexPathTransport{Fabric: fab})
	}()
	go func() { // the "endpoint executable"
		defer wg.Done()
		res, endpointErr = adios.RunEndpoint(fab, workloadConfigure(o, &hist))
	}()
	wg.Wait()
	reportFaults(o)
	if writerErr != nil {
		fatal(writerErr)
	}
	if endpointErr != nil {
		fatal(endpointErr)
	}
	report(o, fab, res, hist)
}

// reportFaults prints which injected faults actually fired; it runs before
// any error check so a fatal schedule still leaves its replay trace.
func reportFaults(o options) {
	if o.frun == nil {
		return
	}
	fmt.Printf("faultline: schedule %s\n", o.faults)
	for _, l := range o.frun.TraceLines() {
		fmt.Printf("faultline: fired %s\n", l)
	}
}

// runListen is the analysis executable of the two-process deployment: it
// serves the staging fabric on TCP and consumes until every writer's EOS.
func runListen(o options) {
	f, err := adios.ListenFabric("tcp", o.listen, o.ranks, o.ranks, o.depth, fabricOptions(o)...)
	if err != nil {
		fatal(err)
	}
	// The bound address (the OS picks the port for ":0") — the writer
	// process and the smoke tests parse this line.
	fmt.Printf("fabric: listening on %s\n", f.Addr())
	var hist *analysis.Histogram
	res, err := adios.RunEndpoint(f, workloadConfigure(o, &hist))
	if err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	report(o, f, res, hist)
}

// runConnect is the simulation executable of the two-process deployment:
// the writer group stages every step to the -listen endpoint over TCP.
func runConnect(o options) {
	wo := adios.WireOptions{
		Network: "tcp", Addr: o.connect,
		Writers: o.ranks, Readers: o.ranks, Depth: o.depth,
		RetryWindow: o.retryWindow,
		Codecs:      o.codecMask,
	}
	if o.frun != nil {
		if fp := o.frun.FabricPlan(); fp != nil {
			wo.WrapConn = fp.WrapConn
		}
	}
	t, err := adios.DialWire(wo)
	if err != nil {
		fatal(err)
	}
	err = runWriters(o, t)
	reportFaults(o)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("writer: %d ranks staged %d steps to %s over tcp\n", o.ranks, o.steps, o.connect)
	fmt.Printf("wire: %s\n", t.Stats().Summary())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "endpoint:", err)
	os.Exit(1)
}
