// Command posthoc is the traditional analysis path: it reads simulation
// output previously written to storage (by cmd/oscillator with an adios
// bp-file configuration, or by the Fig. 10 harness) and runs an analysis on
// a reduced set of ranks, printing the read/process/write cost split that
// the paper's Fig. 11 reports.
//
// Example:
//
//	posthoc -dir /tmp/run1 -writers 8 -readers 2 -workload histogram
package main

import (
	"flag"
	"fmt"
	"os"

	"gosensei/internal/experiments"
	"gosensei/internal/metrics"
)

func main() {
	var (
		dir      = flag.String("dir", "", "directory holding stepNNNNN_rankNNNNN.blk files")
		writers  = flag.Int("writers", 4, "rank count of the producing run")
		readers  = flag.Int("readers", 1, "rank count for this analysis (the paper uses 10% of writers)")
		workload = flag.String("workload", "histogram", "histogram | autocorrelation | catalyst-slice")
		cells    = flag.Int("cells", 24, "global cell edge of the producing run")
		bins     = flag.Int("bins", 10, "histogram bins")
		window   = flag.Int("window", 10, "autocorrelation window")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "posthoc: -dir is required")
		os.Exit(2)
	}
	opt := experiments.DefaultOptions()
	opt.RealCells = *cells
	opt.Bins = *bins
	opt.Window = *window

	r, err := experiments.RunPosthoc(*dir, *writers, *readers, experiments.ADIOSWorkload(*workload), opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "posthoc:", err)
		os.Exit(1)
	}
	fmt.Printf("post hoc %s over %s (%d writers -> %d readers)\n", *workload, *dir, *writers, *readers)
	fmt.Printf("  read:    %s\n", metrics.FormatSeconds(r.Read))
	fmt.Printf("  process: %s\n", metrics.FormatSeconds(r.Process))
	fmt.Printf("  write:   %s\n", metrics.FormatSeconds(r.Write))
}
