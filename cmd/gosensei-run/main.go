// Command gosensei-run is the N-process launcher: the mpiexec of this
// repository. It assembles a cross-process MPI world (internal/world) and
// runs one of the built-in pipelines on it, with three interchangeable
// transports:
//
//	-transport=proc      goroutine ranks in this process (mpi.Run; no wire)
//	-transport=loopback  one process, ranks meshed over in-process pipes
//	-transport=tcp       N worker processes meshed over real sockets,
//	                     spawned by re-executing this binary
//
// Pipeline output goes to stdout from rank 0 only, so the bytes a run
// produces are comparable across transports — `gosensei-run -np 4
// -transport=tcp` must be bit-identical to `-transport=proc`, which is the
// contract the world-smoke suite enforces. Diagnostics, fault traces, and
// per-rank chatter go to stderr.
//
// Fault injection: -faults takes a faultline schedule. A fatal fault
// (mpi.crash, world.rankkill) makes the affected rank die and the launcher
// exit non-zero after printing the fired fault's repro token to stderr.
//
// Example:
//
//	gosensei-run -np 4 -transport=tcp -pipeline=histogram -cells 16 -steps 5
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"gosensei/internal/analysis"
	"gosensei/internal/compositing"
	"gosensei/internal/faultline"
	"gosensei/internal/grid"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
	"gosensei/internal/oscillator"
	"gosensei/internal/render"
	"gosensei/internal/world"
)

// exitFault is the exit code of a rank killed by a fatal injected fault,
// distinct from ordinary failure so the launcher (and the smoke tests) can
// tell "the schedule fired" from "something broke".
const exitFault = 3

// workerEnv is the environment variable that flips this binary into worker
// mode; its value is the worker's rank. The remaining placement comes from
// the GOSENSEI_WORLD_* variables set by the launcher.
const workerEnv = "GOSENSEI_WORLD_RANK"

type params struct {
	np        int
	transport string
	pipeline  string
	cells     int
	steps     int
	bins      int
	faults    string
	verbose   bool
}

func main() {
	var p params
	flag.IntVar(&p.np, "np", 4, "world size (number of ranks)")
	flag.StringVar(&p.transport, "transport", "proc", "rank transport: proc, loopback, or tcp")
	flag.StringVar(&p.pipeline, "pipeline", "histogram", "pipeline: histogram or binswap")
	flag.IntVar(&p.cells, "cells", 16, "global cells per axis (histogram)")
	flag.IntVar(&p.steps, "steps", 5, "time steps")
	flag.IntVar(&p.bins, "bins", 10, "histogram bins")
	flag.StringVar(&p.faults, "faults", "", "fault-injection schedule <seed:spec> (see internal/faultline)")
	flag.BoolVar(&p.verbose, "v", false, "per-rank diagnostics on stderr")
	flag.Parse()

	if p.np <= 0 {
		fatal(fmt.Errorf("world size must be positive, got -np %d", p.np))
	}
	if p.pipeline != "histogram" && p.pipeline != "binswap" {
		fatal(fmt.Errorf("unknown pipeline %q (want histogram or binswap)", p.pipeline))
	}
	if p.faults != "" {
		if _, err := faultline.Parse(p.faults); err != nil {
			fatal(err)
		}
	}

	if rankStr := os.Getenv(workerEnv); rankStr != "" {
		os.Exit(workerMain(rankStr, p))
	}

	switch p.transport {
	case "proc":
		os.Exit(runProc(p))
	case "loopback":
		os.Exit(runLoopback(p))
	case "tcp":
		os.Exit(runTCP(p))
	default:
		fatal(fmt.Errorf("unknown transport %q (want proc, loopback, or tcp)", p.transport))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gosensei-run:", err)
	os.Exit(1)
}

// faultRun starts the schedule (nil for a fault-free run).
func faultRun(p params) *faultline.Run {
	if p.faults == "" {
		return nil
	}
	sched, err := faultline.Parse(p.faults)
	if err != nil {
		fatal(err) // unreachable: validated in main
	}
	return sched.Start()
}

// exitFor classifies a pipeline error: fired fatal faults exit with
// exitFault, anything else with 1.
func exitFor(err error) int {
	if err == nil {
		return 0
	}
	fmt.Fprintln(os.Stderr, "gosensei-run:", err)
	if strings.Contains(err.Error(), "faultline:") {
		return exitFault
	}
	return 1
}

// runProc runs the pipeline on goroutine ranks — the zero-cost in-process
// transport the rest of the repository uses.
func runProc(p params) int {
	frun := faultRun(p)
	var opts []mpi.Option
	if mp := frun.NewMPIPlan(); mp != nil {
		opts = append(opts, mpi.WithFaults(mp))
	}
	err := mpi.Run(p.np, func(c *mpi.Comm) error {
		return runPipeline(c, p, os.Stdout)
	}, opts...)
	printTrace(frun)
	return exitFor(err)
}

// runLoopback runs the pipeline on a cross-process-shaped world whose ranks
// all live in this process, meshed over in-process pipes — the full wire
// path (envelopes, frames, registry handshake) without sockets.
func runLoopback(p params) int {
	frun := faultRun(p)
	cfg := world.Config{
		Network: "loopback",
		ID:      uint64(os.Getpid()),
		Epoch:   1,
		Faults:  frun.NewMPIPlan(),
	}
	if wp := frun.NewWorldPlan(); wp != nil {
		cfg.Hook = wp
	}
	errs := world.Launch(p.np, cfg, func(c *mpi.Comm) error {
		return runPipeline(c, p, os.Stdout)
	})
	printTrace(frun)
	code := 0
	for rank, err := range errs {
		if err == nil {
			continue
		}
		fmt.Fprintf(os.Stderr, "gosensei-run: rank %d: %v\n", rank, err)
		if c := exitFor0(err); code == 0 || c == exitFault {
			code = c
		}
	}
	return code
}

// exitFor0 classifies without printing (runLoopback prints per rank).
func exitFor0(err error) int {
	if strings.Contains(err.Error(), "faultline:") {
		return exitFault
	}
	return 1
}

// printTrace writes the fired-fault multiset to stderr (replay evidence).
func printTrace(frun *faultline.Run) {
	for _, l := range frun.TraceLines() {
		fmt.Fprintf(os.Stderr, "faultline: fired %s\n", l)
	}
}

// runTCP spawns one worker process per rank, hosts the registry, forwards
// rank 0's stdout, and propagates the first failing exit code.
func runTCP(p params) int {
	reg, err := world.NewRegistry("tcp", "127.0.0.1:0", uint64(os.Getpid()), 1, p.np)
	if err != nil {
		fatal(err)
	}
	served := make(chan error, 1)
	go func() {
		_, err := reg.Serve()
		served <- err
	}()

	exe, err := os.Executable()
	if err != nil {
		fatal(fmt.Errorf("locate own binary: %w", err))
	}
	args := []string{
		"-np", strconv.Itoa(p.np),
		"-transport", "tcp",
		"-pipeline", p.pipeline,
		"-cells", strconv.Itoa(p.cells),
		"-steps", strconv.Itoa(p.steps),
		"-bins", strconv.Itoa(p.bins),
		"-faults", p.faults,
	}
	if p.verbose {
		args = append(args, "-v")
	}
	cmds := make([]*exec.Cmd, p.np)
	for rank := 0; rank < p.np; rank++ {
		cmd := exec.Command(exe, args...)
		cmd.Env = append(os.Environ(),
			workerEnv+"="+strconv.Itoa(rank),
			"GOSENSEI_WORLD_SIZE="+strconv.Itoa(p.np),
			"GOSENSEI_WORLD_ID="+strconv.Itoa(os.Getpid()),
			"GOSENSEI_WORLD_EPOCH=1",
			"GOSENSEI_WORLD_REGISTRY="+reg.Addr(),
		)
		// Only rank 0 owns stdout: that is what keeps a tcp run's output
		// bit-identical to a proc run. Everything else is diagnostics.
		if rank == 0 {
			cmd.Stdout = os.Stdout
		} else {
			cmd.Stdout = os.Stderr
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			_ = reg.Close()
			fatal(fmt.Errorf("spawn rank %d: %w", rank, err))
		}
		cmds[rank] = cmd
	}

	code := 0
	for rank, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			c := 1
			if ee, ok := err.(*exec.ExitError); ok {
				c = ee.ExitCode()
			}
			fmt.Fprintf(os.Stderr, "gosensei-run: rank %d exited with code %d\n", rank, c)
			if code == 0 || c == exitFault {
				code = c
			}
		}
	}
	_ = reg.Close() // unblocks Serve if the world never assembled
	if err := <-served; err != nil && code == 0 {
		fmt.Fprintln(os.Stderr, "gosensei-run: registry:", err)
		code = 1
	}
	return code
}

// workerMain is one rank of a tcp world: join, run the pipeline, say
// goodbye. A fatal injected fault surfaces as exitFault plus the repro token
// on stderr.
func workerMain(rankStr string, p params) int {
	rank, err := strconv.Atoi(rankStr)
	if err != nil {
		fatal(fmt.Errorf("bad %s=%q: %w", workerEnv, rankStr, err))
	}
	size := envInt("GOSENSEI_WORLD_SIZE")
	id := envInt("GOSENSEI_WORLD_ID")
	epoch := envInt("GOSENSEI_WORLD_EPOCH")
	registry := os.Getenv("GOSENSEI_WORLD_REGISTRY")

	frun := faultRun(p)
	cfg := world.Config{
		Network:  "tcp",
		Registry: registry,
		ID:       uint64(id),
		Epoch:    uint32(epoch),
		Rank:     rank,
		Size:     size,
		Faults:   frun.NewMPIPlan(),
	}
	if wp := frun.NewWorldPlan(); wp != nil {
		cfg.Hook = wp
	}
	w, err := world.Join(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gosensei-run: rank %d: %v\n", rank, err)
		return 1
	}
	err = w.Run(func(c *mpi.Comm) error {
		return runPipeline(c, p, os.Stdout)
	})
	if cerr := w.Close(); cerr != nil && err == nil {
		err = cerr
	}
	printTrace(frun)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gosensei-run: rank %d: %v\n", rank, err)
		return exitFor0(err)
	}
	if p.verbose {
		fmt.Fprintf(os.Stderr, "gosensei-run: rank %d done\n", rank)
	}
	return 0
}

func envInt(name string) int {
	v, err := strconv.Atoi(os.Getenv(name))
	if err != nil {
		fatal(fmt.Errorf("bad %s=%q: %w", name, os.Getenv(name), err))
	}
	return v
}

// runPipeline dispatches to the selected pipeline. Only rank 0 writes to
// out, and every write is deterministic in (np, pipeline parameters) alone —
// transport must never show through.
func runPipeline(c *mpi.Comm, p params, out io.Writer) error {
	switch p.pipeline {
	case "histogram":
		return runHistogram(c, p, out)
	case "binswap":
		return runBinswap(c, p, out)
	}
	return fmt.Errorf("unknown pipeline %q", p.pipeline)
}

// runHistogram is the paper's canonical in situ pair: the oscillator miniapp
// producing a cell field, a global histogram consuming it every step.
func runHistogram(c *mpi.Comm, p params, out io.Writer) error {
	cfg := oscillator.Config{
		GlobalCells: [3]int{p.cells, p.cells, p.cells},
		DT:          0.05,
		Steps:       p.steps,
		Oscillators: oscillator.DefaultDeck(float64(p.cells)),
	}
	sim, err := oscillator.NewSim(c, cfg, metrics.NewTracker())
	if err != nil {
		return err
	}
	ad := oscillator.NewDataAdaptor(sim)
	h := analysis.NewHistogram(c, "data", grid.CellData, p.bins)
	for i := 0; i < p.steps; i++ {
		if err := sim.Step(); err != nil {
			return err
		}
		ad.Update()
		mesh, err := ad.Mesh(false)
		if err != nil {
			return err
		}
		if err := ad.AddArray(mesh, grid.CellData, "data"); err != nil {
			return err
		}
		res, err := h.Compute(sim.StepIndex(), mesh)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Fprintf(out, "step=%d min=%.17g max=%.17g counts=%v\n", res.Step, res.Min, res.Max, res.Counts)
		}
		if err := ad.ReleaseData(); err != nil {
			return err
		}
	}
	return nil
}

// runBinswap composites procedurally rendered per-rank framebuffers with
// binary swap and prints a digest of the final image — the paper's
// image-order rendering workload without the full catalyst stack.
func runBinswap(c *mpi.Comm, p params, out io.Writer) error {
	const w, h = 64, 64
	for step := 0; step < p.steps; step++ {
		fb := render.AcquireFramebuffer(w, h)
		paint(fb, c.Rank(), step)
		final, err := compositing.Composite(c, fb, 0, compositing.BinarySwap)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && final != nil {
			sum := sha256.Sum256(final.Color)
			fmt.Fprintf(out, "step=%d image=%x\n", step, sum[:8])
		}
		// At P=1 the composite is fb itself; release each buffer exactly once.
		if final != nil && final != fb {
			final.Release()
		}
		fb.Release()
	}
	return nil
}

// paint fills a framebuffer with a deterministic function of (rank, step,
// pixel): each rank owns an interleaved set of depths, so the composite
// mixes contributions from every rank.
func paint(fb *render.Framebuffer, rank, step int) {
	for i := 0; i < fb.W*fb.H; i++ {
		v := uint32(i*2654435761) ^ uint32(rank*40503) ^ uint32(step*9176)
		fb.Color[i*4+0] = uint8(v)
		fb.Color[i*4+1] = uint8(v >> 8)
		fb.Color[i*4+2] = uint8(v >> 16)
		fb.Color[i*4+3] = 255
		fb.Depth[i] = float32((v>>24)^uint32(rank*5)) / 256
	}
}
