// Command experiments regenerates every table and figure of the paper's
// evaluation section. Each experiment prints rows labeled "real" (executed
// at goroutine scale in this process) and "model" (extrapolated to the
// paper's core counts with the calibrated performance model).
//
// Examples:
//
//	experiments -list
//	experiments -run fig6
//	experiments -run all -ranks 8 -cells 32 -steps 10 -calibrate
package main

import (
	"flag"
	"fmt"
	"os"

	"gosensei/internal/experiments"
	"gosensei/internal/parallel"
	"gosensei/internal/perfmodel"
)

func main() {
	var (
		run       = flag.String("run", "all", "experiment id (see -list) or \"all\"")
		list      = flag.Bool("list", false, "list experiments and exit")
		ranks     = flag.Int("ranks", 4, "ranks for the executed rows")
		cells     = flag.Int("cells", 24, "global cell edge for the executed rows")
		steps     = flag.Int("steps", 8, "time steps for the executed rows")
		imageW    = flag.Int("image-width", 96, "executed-row image width")
		imageH    = flag.Int("image-height", 54, "executed-row image height")
		calibrate = flag.Bool("calibrate", true, "measure kernel costs on this host for the model rows")
		seed      = flag.Int64("seed", 1, "I/O variability seed")
		threads   = flag.Int("threads", 0, "process thread budget shared across ranks (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *threads > 0 {
		parallel.SetThreads(*threads)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %-16s %s\n", e.ID, e.Artifact, e.Summary)
		}
		return
	}

	opt := experiments.DefaultOptions()
	opt.RealRanks = *ranks
	opt.RealCells = *cells
	opt.RealSteps = *steps
	opt.ImageW = *imageW
	opt.ImageH = *imageH
	opt.Seed = *seed
	if *calibrate {
		opt.Calibration = perfmodel.Calibrate()
	}

	var selected []experiments.Experiment
	if *run == "all" {
		selected = experiments.All()
	} else {
		e, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		selected = []experiments.Experiment{e}
	}

	for _, e := range selected {
		tab, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(tab.String())
	}
}
