// Command experiments regenerates every table and figure of the paper's
// evaluation section. Each experiment prints rows labeled "real" (executed
// at goroutine scale in this process) and "model" (extrapolated to the
// paper's core counts with the calibrated performance model).
//
// Examples:
//
//	experiments -list
//	experiments -run fig6
//	experiments -run all -ranks 8 -cells 32 -steps 10 -calibrate
//	experiments -route auto -shift -check
package main

import (
	"flag"
	"fmt"
	"os"

	"gosensei/internal/experiments"
	"gosensei/internal/parallel"
	"gosensei/internal/perfmodel"
	"gosensei/internal/route"
)

func main() {
	var (
		run       = flag.String("run", "all", "experiment id (see -list) or \"all\"")
		list      = flag.Bool("list", false, "list experiments and exit")
		ranks     = flag.Int("ranks", 4, "ranks for the executed rows")
		cells     = flag.Int("cells", 24, "global cell edge for the executed rows")
		steps     = flag.Int("steps", 8, "time steps for the executed rows")
		imageW    = flag.Int("image-width", 96, "executed-row image width")
		imageH    = flag.Int("image-height", 54, "executed-row image height")
		calibrate = flag.Bool("calibrate", true, "measure kernel costs on this host for the model rows")
		seed      = flag.Int64("seed", 1, "I/O variability seed")
		threads   = flag.Int("threads", 0, "process thread budget shared across ranks (0 = GOMAXPROCS)")
		routeMode = flag.String("route", "", "backend routing policy: \"auto\" for the adaptive router")
		shift     = flag.Bool("shift", false, "run the mid-run workload-shift routing experiment (requires -route auto)")
		check     = flag.Bool("check", false, "with -shift: exit nonzero unless the router switched, finished with zero post-switch budget violations, and beat every static backend")
	)
	flag.Parse()
	if *threads > 0 {
		parallel.SetThreads(*threads)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %-16s %s\n", e.ID, e.Artifact, e.Summary)
		}
		return
	}

	opt := experiments.DefaultOptions()
	opt.RealRanks = *ranks
	opt.RealCells = *cells
	opt.RealSteps = *steps
	opt.ImageW = *imageW
	opt.ImageH = *imageH
	opt.Seed = *seed
	if *calibrate {
		opt.Calibration = perfmodel.Calibrate()
	}

	if *shift {
		if *routeMode != "auto" {
			fmt.Fprintln(os.Stderr, "experiments: -shift requires -route auto")
			os.Exit(2)
		}
		runShift(opt, *check)
		return
	}
	if *routeMode != "" && *routeMode != "auto" {
		fmt.Fprintf(os.Stderr, "experiments: unknown -route policy %q (want \"auto\")\n", *routeMode)
		os.Exit(2)
	}

	var selected []experiments.Experiment
	if *run == "all" {
		selected = experiments.All()
	} else {
		e, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		selected = []experiments.Experiment{e}
	}

	for _, e := range selected {
		tab, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(tab.String())
	}
}

// runShift runs the workload-shift routing experiment, prints its table, and
// with check enforces the smoke-test acceptance: the router must switch, must
// finish with zero post-switch budget violations, and must strictly beat
// every static backend on total violations.
func runShift(opt experiments.Options, check bool) {
	tab, err := experiments.RouteShiftTable(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: routeshift:", err)
		os.Exit(1)
	}
	fmt.Println(tab.String())
	if !check {
		return
	}
	res, err := experiments.RouteShift(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: routeshift:", err)
		os.Exit(1)
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "experiments: routeshift check failed: "+format+"\n", args...)
		fmt.Fprintln(os.Stderr, route.FormatDecisions(res.Decisions))
		os.Exit(1)
	}
	if res.Switches < 1 {
		fail("router never switched")
	}
	if res.PostSwitchViolations != 0 {
		fail("%d budget violations after the first switch", res.PostSwitchViolations)
	}
	if !res.BeatsAllStatic() {
		fail("router total %d does not strictly beat statics %v", res.RouterViolations, res.StaticViolations)
	}
	fmt.Printf("routeshift check ok: %d switch(es) at %v, router %d violations vs statics %v, 0 post-switch\n",
		res.Switches, res.SwitchSteps, res.RouterViolations, res.StaticViolations)
}
