package gosensei

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one cmd into a shared temp dir (cached per test run).
func buildTool(t *testing.T, name string) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = t.TempDir() // keep outputs out of the repo
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCmdOscillatorSmoke(t *testing.T) {
	bin := buildTool(t, "oscillator")
	out := run(t, bin, "-ranks", "2", "-cells", "12", "-steps", "3")
	if !strings.Contains(out, "time to solution") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	// With a config and a deck from the repository.
	wd, _ := os.Getwd()
	out = run(t, bin, "-ranks", "2", "-cells", "32", "-steps", "3",
		"-deck", filepath.Join(wd, "decks", "sample.osc"),
		"-config", filepath.Join(wd, "configs", "histogram.xml"), "-v")
	if !strings.Contains(out, "1 analyses") {
		t.Fatalf("config not applied:\n%s", out)
	}
	if !strings.Contains(out, "analysis::histogram") {
		t.Fatalf("histogram timer missing:\n%s", out)
	}
}

func TestCmdExperimentsSmoke(t *testing.T) {
	bin := buildTool(t, "experiments")
	out := run(t, bin, "-list")
	for _, id := range []string{"fig3", "tab1", "tab2", "fig17", "abl-zerocopy"} {
		if !strings.Contains(out, id) {
			t.Fatalf("experiment %s missing from -list:\n%s", id, out)
		}
	}
	out = run(t, bin, "-run", "tab1", "-calibrate=false")
	if !strings.Contains(out, "vtk-io") || !strings.Contains(out, "mpi-io") {
		t.Fatalf("tab1 output wrong:\n%s", out)
	}
}

func TestCmdEndpointSmoke(t *testing.T) {
	bin := buildTool(t, "endpoint")
	out := run(t, bin, "-ranks", "2", "-cells", "12", "-steps", "3", "-workload", "histogram")
	if !strings.Contains(out, "3 steps staged") {
		t.Fatalf("staging count wrong:\n%s", out)
	}
	if !strings.Contains(out, "final histogram") {
		t.Fatalf("histogram missing:\n%s", out)
	}
}

func TestCmdPosthocSmoke(t *testing.T) {
	osc := buildTool(t, "oscillator")
	ph := buildTool(t, "posthoc")
	work := t.TempDir()
	// Produce step files with the vtk-writer analysis.
	cfg := filepath.Join(work, "writer.xml")
	if err := os.WriteFile(cfg, []byte(`<sensei><analysis type="vtk-writer" dir="`+work+`/out"/></sensei>`), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(osc, "-ranks", "2", "-cells", "12", "-steps", "3", "-config", cfg)
	cmd.Dir = work
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("producer: %v\n%s", err, out)
	}
	out := run(t, ph, "-dir", work+"/out", "-writers", "2", "-readers", "1", "-workload", "histogram", "-cells", "12")
	if !strings.Contains(out, "read:") || !strings.Contains(out, "process:") {
		t.Fatalf("posthoc output wrong:\n%s", out)
	}
}
