package gosensei

import (
	"bufio"
	"errors"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTool compiles one cmd into a shared temp dir (cached per test run).
func buildTool(t *testing.T, name string) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = t.TempDir() // keep outputs out of the repo
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCmdOscillatorSmoke(t *testing.T) {
	bin := buildTool(t, "oscillator")
	out := run(t, bin, "-ranks", "2", "-cells", "12", "-steps", "3")
	if !strings.Contains(out, "time to solution") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	// With a config and a deck from the repository.
	wd, _ := os.Getwd()
	out = run(t, bin, "-ranks", "2", "-cells", "32", "-steps", "3",
		"-deck", filepath.Join(wd, "decks", "sample.osc"),
		"-config", filepath.Join(wd, "configs", "histogram.xml"), "-v")
	if !strings.Contains(out, "1 analyses") {
		t.Fatalf("config not applied:\n%s", out)
	}
	if !strings.Contains(out, "analysis::histogram") {
		t.Fatalf("histogram timer missing:\n%s", out)
	}
}

func TestCmdExperimentsSmoke(t *testing.T) {
	bin := buildTool(t, "experiments")
	out := run(t, bin, "-list")
	for _, id := range []string{"fig3", "tab1", "tab2", "fig17", "abl-zerocopy"} {
		if !strings.Contains(out, id) {
			t.Fatalf("experiment %s missing from -list:\n%s", id, out)
		}
	}
	out = run(t, bin, "-run", "tab1", "-calibrate=false")
	if !strings.Contains(out, "vtk-io") || !strings.Contains(out, "mpi-io") {
		t.Fatalf("tab1 output wrong:\n%s", out)
	}
}

func TestCmdEndpointSmoke(t *testing.T) {
	bin := buildTool(t, "endpoint")
	out := run(t, bin, "-ranks", "2", "-cells", "12", "-steps", "3", "-workload", "histogram")
	if !strings.Contains(out, "3 steps staged") {
		t.Fatalf("staging count wrong:\n%s", out)
	}
	if !strings.Contains(out, "final histogram") {
		t.Fatalf("histogram missing:\n%s", out)
	}
}

// startListener launches an endpoint process with -listen 127.0.0.1:0 (or
// a fixed addr), parses the bound address from its stdout, and returns the
// command, the address, and a channel that yields the full output when the
// process exits.
func startListener(t *testing.T, bin, addr string, extra ...string) (*exec.Cmd, string, <-chan string) {
	t.Helper()
	args := append([]string{"-listen", addr}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Dir = t.TempDir()
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("start listener: %v", err)
	}
	r := bufio.NewReader(stdout)
	line, err := r.ReadString('\n')
	if err != nil {
		_ = cmd.Process.Kill()
		t.Fatalf("read listen line: %v (got %q)", err, line)
	}
	const marker = "fabric: listening on "
	if !strings.HasPrefix(line, marker) {
		_ = cmd.Process.Kill()
		t.Fatalf("unexpected first line %q", line)
	}
	bound := strings.TrimSpace(strings.TrimPrefix(line, marker))
	out := make(chan string, 1)
	go func() {
		rest, _ := io.ReadAll(r)
		_ = cmd.Wait()
		out <- line + string(rest)
	}()
	return cmd, bound, out
}

// histogramBlock extracts output from "final histogram" onward — the
// deployment-independent part of the endpoint report (timings above it
// differ run to run).
func histogramBlock(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "final histogram")
	if i < 0 {
		t.Fatalf("no final histogram in output:\n%s", out)
	}
	return out[i:]
}

// TestCmdEndpointTwoProcessTCP runs the writer and endpoint groups as two
// real OS processes over TCP and requires the analysis output to be
// byte-identical to the in-process loopback run — the §4.1.4 deployment
// with the wire underneath.
func TestCmdEndpointTwoProcessTCP(t *testing.T) {
	bin := buildTool(t, "endpoint")
	shape := []string{"-ranks", "2", "-cells", "12", "-steps", "3", "-workload", "histogram", "-queue-depth", "2"}

	inProc := run(t, bin, shape...)

	_, addr, out := startListener(t, bin, "127.0.0.1:0", shape...)
	writer := run(t, bin, append([]string{"-connect", addr}, shape...)...)
	if !strings.Contains(writer, "staged 3 steps") {
		t.Fatalf("writer output wrong:\n%s", writer)
	}
	var epOut string
	select {
	case epOut = <-out:
	case <-time.After(60 * time.Second):
		t.Fatalf("endpoint process did not exit")
	}
	if got, want := histogramBlock(t, epOut), histogramBlock(t, inProc); got != want {
		t.Fatalf("two-process histogram differs from in-process:\n--- tcp ---\n%s--- loopback ---\n%s", got, want)
	}
}

// TestCmdEndpointReconnect kills the endpoint process mid-run, restarts it
// on the same port, and requires the writers to ride the outage out —
// retransmitting unacknowledged steps — with the final histogram identical
// to an undisturbed run.
func TestCmdEndpointReconnect(t *testing.T) {
	bin := buildTool(t, "endpoint")
	shape := []string{"-ranks", "2", "-cells", "12", "-steps", "4", "-workload", "histogram", "-queue-depth", "2"}

	clean := run(t, bin, shape...)

	doomed, addr, doomedOut := startListener(t, bin, "127.0.0.1:0",
		append([]string{"-kill-after", "2"}, shape...)...)
	writerDone := make(chan string, 1)
	writerErr := make(chan error, 1)
	go func() {
		cmd := exec.Command(bin, append([]string{"-connect", addr, "-retry-window", "60s"}, shape...)...)
		cmd.Dir = t.TempDir()
		o, err := cmd.CombinedOutput()
		writerDone <- string(o)
		writerErr <- err
	}()

	// Wait for the injected failure, then restart the endpoint on the SAME
	// port while the writer process is mid-run.
	select {
	case o := <-doomedOut:
		if !strings.Contains(o, "injected failure") {
			t.Fatalf("first endpoint did not fail as injected:\n%s", o)
		}
	case <-time.After(60 * time.Second):
		_ = doomed.Process.Kill()
		t.Fatalf("first endpoint never exited")
	}
	_, _, out2 := startListener(t, bin, addr, shape...)

	wo := <-writerDone
	if err := <-writerErr; err != nil {
		t.Fatalf("writer did not survive the endpoint restart: %v\n%s", err, wo)
	}
	if !strings.Contains(wo, "reconnects 2") {
		t.Fatalf("writer reported no reconnects:\n%s", wo)
	}
	var epOut string
	select {
	case epOut = <-out2:
	case <-time.After(60 * time.Second):
		t.Fatalf("restarted endpoint never exited")
	}
	if got, want := histogramBlock(t, epOut), histogramBlock(t, clean); got != want {
		t.Fatalf("post-reconnect histogram differs from clean run:\n--- reconnect ---\n%s--- clean ---\n%s", got, want)
	}
}

// TestCmdEndpointRetryWindowExpires is the complement of the reconnect
// test: the endpoint dies mid-run and is never restarted, so the writer's
// -retry-window must expire and the process must fail with a diagnostic
// rather than hang.
func TestCmdEndpointRetryWindowExpires(t *testing.T) {
	bin := buildTool(t, "endpoint")
	// One writer rank: a second rank would outlive the failure blocked in
	// the next advance collective until the mpi recv timeout.
	shape := []string{"-ranks", "1", "-cells", "12", "-steps", "4", "-workload", "histogram", "-queue-depth", "2"}

	doomed, addr, doomedOut := startListener(t, bin, "127.0.0.1:0",
		append([]string{"-kill-after", "2"}, shape...)...)
	writerDone := make(chan string, 1)
	writerErr := make(chan error, 1)
	go func() {
		cmd := exec.Command(bin, append([]string{"-connect", addr, "-retry-window", "2s"}, shape...)...)
		cmd.Dir = t.TempDir()
		o, err := cmd.CombinedOutput()
		writerDone <- string(o)
		writerErr <- err
	}()

	select {
	case o := <-doomedOut:
		if !strings.Contains(o, "injected failure") {
			t.Fatalf("endpoint did not fail as injected:\n%s", o)
		}
	case <-time.After(60 * time.Second):
		_ = doomed.Process.Kill()
		t.Fatalf("endpoint never exited")
	}
	// No restart: the writer must give up within the window.
	wo := <-writerDone
	err := <-writerErr
	if err == nil {
		t.Fatalf("writer succeeded with no endpoint to reach:\n%s", wo)
	}
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() == 0 {
		t.Fatalf("writer did not exit non-zero: %v\n%s", err, wo)
	}
	if !strings.Contains(wo, "could not reach") {
		t.Fatalf("writer failure lacks the retry-window diagnostic:\n%s", wo)
	}
}

func TestCmdPosthocSmoke(t *testing.T) {
	osc := buildTool(t, "oscillator")
	ph := buildTool(t, "posthoc")
	work := t.TempDir()
	// Produce step files with the vtk-writer analysis.
	cfg := filepath.Join(work, "writer.xml")
	if err := os.WriteFile(cfg, []byte(`<sensei><analysis type="vtk-writer" dir="`+work+`/out"/></sensei>`), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(osc, "-ranks", "2", "-cells", "12", "-steps", "3", "-config", cfg)
	cmd.Dir = work
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("producer: %v\n%s", err, out)
	}
	out := run(t, ph, "-dir", work+"/out", "-writers", "2", "-readers", "1", "-workload", "histogram", "-cells", "12")
	if !strings.Contains(out, "read:") || !strings.Contains(out, "process:") {
		t.Fatalf("posthoc output wrong:\n%s", out)
	}
}
