// Package gosensei is a pure-Go, standard-library-only reproduction of the
// SC16 paper "Performance Analysis, Design Considerations, and Applications
// of Extreme-scale In Situ Infrastructures" (Ayachit et al.,
// DOI 10.1109/SC.2016.78).
//
// The repository root holds the benchmark harness (one testing.B benchmark
// per paper table and figure, plus design-choice ablations) and the
// everything-at-once integration test. The implementation lives under
// internal/ — see DESIGN.md for the full inventory, EXPERIMENTS.md for
// paper-versus-measured results, and README.md for a tour:
//
//   - internal/core is the paper's contribution, the SENSEI generic data
//     interface (DataAdaptor / AnalysisAdaptor / Bridge);
//   - internal/mpi, internal/array, internal/grid are the HPC substrate
//     (message passing, zero-copy data model, meshes);
//   - internal/catalyst, internal/libsim, internal/adios, internal/glean are
//     the four in situ infrastructures the interface bridges;
//   - internal/oscillator, internal/phasta, internal/leslie, internal/nyx
//     are the miniapp and the three science-application proxies;
//   - internal/experiments regenerates every table and figure, combining
//     real goroutine-scale execution with a calibrated at-scale model.
//
// Entry points: cmd/oscillator, cmd/experiments, cmd/endpoint, cmd/posthoc,
// and the runnable programs under examples/.
package gosensei
