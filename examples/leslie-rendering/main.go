// LESLIE rendering: the paper's §4.2.2 workflow — the temporally evolving
// mixing layer solved by the finite-volume proxy, visualized through
// SENSEI/Libsim with a VisIt-style session file (3 vorticity isosurfaces +
// 3 slice planes) executed every 5th step, exactly the cadence of the Titan
// runs. The produced frames show the layer rolling up (Fig. 14's
// evolution).
//
// Run:
//
//	go run ./examples/leslie-rendering
//
// Frames land in ./leslie-frames/.
package main

import (
	"fmt"
	"log"
	"os"

	"gosensei/internal/core"
	"gosensei/internal/leslie"
	"gosensei/internal/libsim"
	"gosensei/internal/mpi"
)

// sessionXML is what VisIt would save from its GUI: the visualization
// described as data, not code.
const sessionXML = `<session>
  <image width="480" height="480"/>
  <plot type="isosurface" array="vorticity" value="0.15" color-by="vorticity" colormap="viridis"/>
  <plot type="isosurface" array="vorticity" value="0.35" color-by="vorticity" colormap="viridis"/>
  <plot type="isosurface" array="vorticity" value="0.55" color-by="vorticity" colormap="viridis"/>
  <plot type="slice" array="vorticity" axis="x" coord="6.28" colormap="viridis"/>
  <plot type="slice" array="vorticity" axis="y" coord="6.28" colormap="viridis"/>
  <plot type="slice" array="vorticity" axis="z" coord="3.14" colormap="viridis"/>
</session>`

func main() {
	const (
		ranks = 4
		cells = 24
		steps = 25
	)
	// Write the session file to disk so every rank performs the real
	// configuration-file check the paper measured at init.
	sessionPath := "leslie-session.xml"
	if err := os.WriteFile(sessionPath, []byte(sessionXML), 0o644); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(sessionPath)

	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		solver, err := leslie.NewSolver(c, leslie.DefaultConfig(cells), nil)
		if err != nil {
			return err
		}
		session, err := libsim.LoadSession(sessionPath)
		if err != nil {
			return err
		}
		viz := libsim.NewAdaptor(c, session, libsim.Options{
			OutputDir:   "leslie-frames",
			Stride:      5,
			SessionPath: sessionPath,
		})
		bridge := core.NewBridge(c, nil, nil)
		bridge.AddAnalysis("libsim", viz)

		d := leslie.NewDataAdaptor(solver)
		for i := 0; i < steps; i++ {
			if err := solver.Step(); err != nil {
				return err
			}
			d.Update()
			if _, err := bridge.Execute(d); err != nil {
				return err
			}
		}
		if err := bridge.Finalize(); err != nil {
			return err
		}
		mass, err := solver.TotalMass()
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("TML: %d steps to t=%.3f, total mass %.6f (conserved)\n",
				steps, solver.Time(), mass)
			fmt.Printf("%d frames in leslie-frames/ (Libsim fired every 5th step)\n", viz.ImagesWritten())
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
