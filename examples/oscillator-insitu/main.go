// Oscillator in situ: the paper's miniapp instrumented once and coupled to
// three analyses at once through a SENSEI XML configuration — a histogram,
// the temporal autocorrelation, and a Catalyst slice rendering that writes
// PNG frames. This is the "write once, use everywhere" workflow of Fig. 1.
//
// Run:
//
//	go run ./examples/oscillator-insitu
//
// Frames land in ./oscillator-frames/.
package main

import (
	"fmt"
	"log"

	_ "gosensei/internal/analysis" // histogram + autocorrelation factories
	_ "gosensei/internal/catalyst" // catalyst factory
	"gosensei/internal/core"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
	"gosensei/internal/oscillator"
)

const config = `<sensei>
  <analysis type="histogram" array="data" association="cell" bins="12"/>
  <analysis type="autocorrelation" array="data" window="8" k-max="3"/>
  <analysis type="catalyst" array="data" association="cell"
            image-width="320" image-height="320"
            slice-axis="z" slice-coord="16" colormap="viridis"
            output-dir="oscillator-frames"/>
</sensei>`

func main() {
	const (
		ranks = 4
		cells = 32
		steps = 12
	)
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		cfg := oscillator.Config{
			GlobalCells: [3]int{cells, cells, cells},
			DT:          0.05,
			Steps:       steps,
			Oscillators: oscillator.DefaultDeck(cells),
		}
		reg := metrics.NewRegistry(c.Rank())
		mem := metrics.NewTracker()
		sim, err := oscillator.NewSim(c, cfg, mem)
		if err != nil {
			return err
		}
		bridge := core.NewBridge(c, reg, mem)
		if err := core.ConfigureFromXML(bridge, []byte(config)); err != nil {
			return err
		}
		d := oscillator.NewDataAdaptor(sim)
		for i := 0; i < cfg.Steps; i++ {
			if err := sim.Step(); err != nil {
				return err
			}
			d.Update()
			if _, err := bridge.Execute(d); err != nil {
				return err
			}
		}
		if err := bridge.Finalize(); err != nil {
			return err
		}
		hw, err := metrics.SumHighWater(c, mem)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("ran %d steps on %d ranks with %d in situ analyses\n",
				steps, ranks, bridge.AnalysisCount())
			fmt.Printf("frames written to oscillator-frames/\n")
			fmt.Printf("memory high-water (sum over ranks): %s\n", metrics.FormatBytes(hw))
			for _, name := range reg.TimerNames() {
				if len(name) > 10 && name[:10] == "analysis::" {
					fmt.Printf("  %-28s %s total\n", name,
						metrics.FormatSeconds(reg.Timer(name).Total().Seconds()))
				}
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
