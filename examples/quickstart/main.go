// Quickstart: instrument a simulation with the SENSEI generic data
// interface in about sixty lines.
//
// A "simulation" here is a single array that heats up over time. The three
// SENSEI pieces appear in order: a DataAdaptor mapping simulation memory
// onto the data model (zero-copy), a Bridge assembling the workflow, and an
// analysis (the histogram) consuming data through the interface.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gosensei/internal/analysis"
	"gosensei/internal/array"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/mpi"
)

// heatSim is the simulation: one cell-centered field on an 8x8x8 block.
type heatSim struct {
	temp []float64
	step int
}

func (h *heatSim) advance() {
	for i := range h.temp {
		h.temp[i] += float64(i%7) * 0.1 // "physics"
	}
	h.step++
}

// adaptor is the SENSEI data adaptor: it wraps the simulation's buffer
// without copying.
type adaptor struct {
	core.BaseDataAdaptor
	sim *heatSim
}

func (a *adaptor) Mesh(structureOnly bool) (grid.Dataset, error) {
	return grid.NewImageData(grid.NewExtent3D(9, 9, 9)), nil // 8^3 cells
}

func (a *adaptor) AddArray(mesh grid.Dataset, assoc grid.Association, name string) error {
	if assoc != grid.CellData || name != "temperature" {
		return fmt.Errorf("no %s array %q", assoc, name)
	}
	// Zero-copy: the analysis sees live simulation memory.
	mesh.Attributes(assoc).Add(array.WrapAOS(name, 1, a.sim.temp))
	return nil
}

func (a *adaptor) ArrayNames(assoc grid.Association) ([]string, error) {
	return []string{"temperature"}, nil
}

func (a *adaptor) ReleaseData() error { return nil }

func main() {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		sim := &heatSim{temp: make([]float64, 8*8*8)}
		bridge := core.NewBridge(c, nil, nil)
		hist := analysis.NewHistogram(c, "temperature", grid.CellData, 6)
		bridge.AddAnalysis("histogram", hist)

		d := &adaptor{sim: sim}
		for step := 0; step < 5; step++ {
			sim.advance()
			d.SetStep(sim.step, float64(sim.step)*0.1)
			if _, err := bridge.Execute(d); err != nil {
				return err
			}
		}
		if err := bridge.Finalize(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("temperature histogram after %d steps (range [%.1f, %.1f]):\n",
				sim.step, hist.Last.Min, hist.Last.Max)
			for i, count := range hist.Last.Counts {
				lo, hi := hist.Last.Bin(i)
				fmt.Printf("  [%6.2f, %6.2f)  %4d  %s\n", lo, hi, count, bar(count))
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

func bar(n int64) string {
	s := ""
	for i := int64(0); i < n/8; i++ {
		s += "#"
	}
	return s
}
