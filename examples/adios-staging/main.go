// ADIOS staging: the paper's §4.1.4 configuration — the miniapp coupled to
// an analysis endpoint through the FlexPath-like staging transport, writer
// and endpoint groups running concurrently as the paper's two executables
// did (1:1 paired, queue depth 1 so the writer feels reader backpressure).
// The endpoint runs both a histogram and the autocorrelation; the writer
// reports the adios::advance / adios::analysis split of Fig. 8.
//
// Run:
//
//	go run ./examples/adios-staging
//
// This example stages over the in-process loopback wire. For the paper's
// literal deployment — writer and endpoint as two OS processes speaking
// the same staging protocol over TCP — use cmd/endpoint:
//
//	go run ./cmd/endpoint -listen 127.0.0.1:9917 -ranks 4 -steps 10   # terminal 1
//	go run ./cmd/endpoint -connect 127.0.0.1:9917 -ranks 4 -steps 10  # terminal 2
//
// The analysis output is byte-identical to the in-process run, and the
// -listen process can be killed and restarted on the same port mid-run:
// writers hold unreleased steps, redial with backoff, and retransmit.
package main

import (
	"fmt"
	"log"
	"sync"

	"gosensei/internal/adios"
	"gosensei/internal/analysis"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
	"gosensei/internal/oscillator"
)

func main() {
	const (
		ranks = 4
		cells = 24
		steps = 10
	)
	fabric := adios.NewFabric(ranks, 1)
	cfg := oscillator.Config{
		GlobalCells: [3]int{cells, cells, cells},
		DT:          0.05,
		Steps:       steps,
		Oscillators: oscillator.DefaultDeck(cells),
	}

	var wg sync.WaitGroup
	var writerErr, endpointErr error
	var res *adios.EndpointResult
	var hist *analysis.Histogram
	var auto *analysis.Autocorrelation
	writerReg := metrics.NewRegistry(0)

	wg.Add(2)
	go func() { // simulation executable
		defer wg.Done()
		writerErr = mpi.Run(ranks, func(c *mpi.Comm) error {
			sim, err := oscillator.NewSim(c, cfg, nil)
			if err != nil {
				return err
			}
			w := adios.NewWriter(c, &adios.FlexPathTransport{Fabric: fabric})
			if c.Rank() == 0 {
				w.Registry = writerReg
			}
			b := core.NewBridge(c, nil, nil)
			b.AddAnalysis("adios", w)
			d := oscillator.NewDataAdaptor(sim)
			for i := 0; i < cfg.Steps; i++ {
				if err := sim.Step(); err != nil {
					return err
				}
				d.Update()
				if _, err := b.Execute(d); err != nil {
					return err
				}
			}
			return b.Finalize()
		})
	}()
	go func() { // endpoint executable
		defer wg.Done()
		res, endpointErr = adios.RunEndpoint(fabric, func(b *core.Bridge) error {
			h := analysis.NewHistogram(b.Comm, "data", grid.CellData, 10)
			a := analysis.NewAutocorrelation(b.Comm, "data", grid.CellData, 5, 3)
			if b.Comm.Rank() == 0 {
				hist, auto = h, a
			}
			b.AddAnalysis("histogram", h)
			b.AddAnalysis("autocorrelation", a)
			return nil
		})
	}()
	wg.Wait()
	if writerErr != nil {
		log.Fatal("writer:", writerErr)
	}
	if endpointErr != nil {
		log.Fatal("endpoint:", endpointErr)
	}

	fmt.Printf("staged %d steps through FlexPath (%d writer + %d endpoint ranks)\n",
		res.Steps, ranks, ranks)
	fmt.Printf("writer rank 0: adios::advance %s, adios::analysis %s (non-zero-copy + backpressure)\n",
		metrics.FormatSeconds(writerReg.Timer("adios::advance").Total().Seconds()),
		metrics.FormatSeconds(writerReg.Timer("adios::analysis").Total().Seconds()))
	if hist != nil && hist.Last != nil {
		fmt.Printf("endpoint histogram: %d values in [%.3f, %.3f]\n",
			hist.Last.Total(), hist.Last.Min, hist.Last.Max)
	}
	if auto != nil && len(auto.Top) > 0 && len(auto.Top[0]) > 0 {
		fmt.Printf("endpoint autocorrelation: top delay-1 correlation %.4f at rank %d cell %d\n",
			auto.Top[0][0].Value, auto.Top[0][0].Rank, auto.Top[0][0].Cell)
	}
}
