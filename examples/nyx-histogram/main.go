// Nyx histogram: the paper's §4.2.3 workflow — the particle-mesh cosmology
// proxy with SENSEI computing a density histogram and a Catalyst slice every
// step. The paper's point: plot files are normally written only every 100th
// step (I/O is too slow for more), so features jump between outputs
// (Fig. 18); in situ imagery at every step restores temporal resolution for
// nearly nothing.
//
// Run:
//
//	go run ./examples/nyx-histogram
//
// Frames land in ./nyx-frames/.
package main

import (
	"fmt"
	"log"

	"gosensei/internal/analysis"
	"gosensei/internal/catalyst"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/mpi"
	"gosensei/internal/nyx"
)

func main() {
	const (
		ranks = 4
		cells = 24
		steps = 8
	)
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		sim, err := nyx.NewSim(c, nyx.DefaultConfig(cells))
		if err != nil {
			return err
		}
		bridge := core.NewBridge(c, nil, nil)
		hist := analysis.NewHistogram(c, "dark_matter_density", grid.CellData, 10)
		bridge.AddAnalysis("histogram", hist)
		slice := catalyst.NewSliceAdaptor(c, catalyst.Options{
			ArrayName: "dark_matter_density", Assoc: grid.CellData,
			Width: 256, Height: 256,
			SliceAxis: 2, SliceCoord: 0.5,
			OutputDir: "nyx-frames",
			Map:       nil, // cool-warm default
		})
		bridge.AddAnalysis("catalyst", slice)

		d := nyx.NewDataAdaptor(sim)
		for i := 0; i < steps; i++ {
			if err := sim.Step(); err != nil {
				return err
			}
			d.Update()
			if _, err := bridge.Execute(d); err != nil {
				return err
			}
		}
		if err := bridge.Finalize(); err != nil {
			return err
		}
		np, err := sim.GlobalParticles()
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("PM run: %d particles, %d^3 mesh, %d steps (ghost cells blanked in analyses)\n",
				np, cells, steps)
			fmt.Printf("density histogram at step %d (range [%.2f, %.2f], mean density 1):\n",
				hist.Last.Step, hist.Last.Min, hist.Last.Max)
			for i, count := range hist.Last.Counts {
				lo, hi := hist.Last.Bin(i)
				fmt.Printf("  [%7.2f, %7.2f)  %d\n", lo, hi, count)
			}
			fmt.Printf("%d density slices in nyx-frames/\n", slice.ImagesWritten())
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
