// PHASTA slice: the paper's §4.2.1 workflow at example scale — the
// unstructured-mesh flow proxy (synthetic jet in crossflow) rendered as a
// velocity-magnitude pseudocolored slice through SENSEI/Catalyst, with
// images every other step (as the Mira runs produced), plus the live
// steering loop the paper closes: mid-run the jet is retuned and the effect
// is visible in the subsequent frames (Fig. 13's scenario).
//
// Run:
//
//	go run ./examples/phasta-slice
//
// Frames land in ./phasta-frames/.
package main

import (
	"fmt"
	"log"

	"gosensei/internal/catalyst"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/mpi"
	"gosensei/internal/phasta"
)

func main() {
	const (
		ranks = 4
		steps = 16
	)
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		solver, err := phasta.NewSolver(c, phasta.DefaultConfig(26))
		if err != nil {
			return err
		}
		slice := catalyst.NewSliceAdaptor(c, catalyst.Options{
			ArrayName: "velocity", Assoc: grid.PointData,
			Width: 400, Height: 100, // the paper's 800x200, halved
			SliceAxis: 2, SliceCoord: solver.Cfg.Domain[2] / 2,
			OutputDir: "phasta-frames",
			Stride:    2,
		})
		bridge := core.NewBridge(c, nil, nil)
		bridge.AddAnalysis("catalyst", slice)

		d := phasta.NewDataAdaptor(solver)
		for i := 0; i < steps; i++ {
			solver.Step()
			// The steering loop: halfway through, an engineer looking at the
			// frames doubles the jet amplitude and drops its frequency.
			if i == steps/2 {
				solver.SetJet(1.6, 1.5)
				if c.Rank() == 0 {
					fmt.Println("steering: jet retuned to amplitude 1.6, frequency 1.5")
				}
			}
			d.Update()
			if _, err := bridge.Execute(d); err != nil {
				return err
			}
			if v, err := solver.MaxJetVelocity(); err == nil && c.Rank() == 0 {
				fmt.Printf("step %2d: max jet velocity %.3f\n", i+1, v)
			}
		}
		if err := bridge.Finalize(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("%d frames in phasta-frames/ (%d tets across %d ranks)\n",
				slice.ImagesWritten(), solver.NumTets()*ranks, ranks)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
