// Live steering: the interactive-connection loop the paper demonstrates
// with PHASTA on Mira — "SENSEI provides live, reconfigurable data analytics
// from an ongoing simulation ... visual feedback ... can be manipulated to
// interactively determine the combination that provide[s] the most
// improvement".
//
// Here a "viewer" goroutine attaches to a live.Hub, watches the Catalyst
// frames streaming out of the running jet-in-crossflow proxy, and pushes
// steering commands (retuning the synthetic jet) that the simulation drains
// and broadcasts each step. Detach and reattach at will, as FlexPath's
// dynamic connections allow.
//
// Run:
//
//	go run ./examples/live-steering
package main

import (
	"fmt"
	"log"
	"sync"

	"gosensei/internal/catalyst"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/live"
	"gosensei/internal/mpi"
	"gosensei/internal/phasta"
)

func main() {
	const (
		ranks = 4
		steps = 12
	)
	hub := live.NewHub()

	// The viewer: an engineer at a workstation, here a goroutine. It
	// watches frames and, after seeing a few, retunes the jet.
	var viewer sync.WaitGroup
	viewer.Add(1)
	go func() {
		defer viewer.Done()
		sub := hub.SubscribeRef()
		defer sub.Cancel()
		seen := 0
		for {
			// Next blocks for the next frame, newest wins if the viewer
			// lags, and returns nil once the hub closes — so the viewer
			// always terminates with the simulation, frames dropped or not.
			ref := sub.Next()
			if ref == nil {
				return
			}
			seen++
			fmt.Printf("viewer: frame for step %d (%d bytes PNG)\n", ref.Step(), len(ref.PNG()))
			ref.Release()
			if seen == 3 {
				fmt.Println("viewer: steering -> jet amplitude 1.8, frequency 1.2")
				hub.SendCommand("jet-amplitude", 1.8)
				hub.SendCommand("jet-frequency", 1.2)
			}
		}
	}()

	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		solver, err := phasta.NewSolver(c, phasta.DefaultConfig(18))
		if err != nil {
			return err
		}
		slice := catalyst.NewSliceAdaptor(c, catalyst.Options{
			ArrayName: "velocity", Assoc: grid.PointData,
			Width: 200, Height: 50,
			SliceAxis: 2, SliceCoord: solver.Cfg.Domain[2] / 2,
			Hub:       hub,
			OutputDir: "live-frames",
		})
		bridge := core.NewBridge(c, nil, nil)
		bridge.AddAnalysis("catalyst", slice)
		d := phasta.NewDataAdaptor(solver)
		for i := 0; i < steps; i++ {
			solver.Step()
			// Drain viewer commands on rank 0 and broadcast to all ranks so
			// the steering applies identically everywhere.
			var amp, freq []float64
			if c.Rank() == 0 {
				for _, cmd := range hub.DrainCommands() {
					switch cmd.Name {
					case "jet-amplitude":
						amp = []float64{cmd.Value}
					case "jet-frequency":
						freq = []float64{cmd.Value}
					}
				}
			}
			flags := []int64{int64(len(amp)), int64(len(freq))}
			if err := mpi.Bcast(c, flags, 0); err != nil {
				return err
			}
			if flags[0] > 0 {
				if c.Rank() != 0 {
					amp = make([]float64, 1)
				}
				if err := mpi.Bcast(c, amp, 0); err != nil {
					return err
				}
				solver.SetJet(amp[0], solver.Cfg.JetFrequency)
			}
			if flags[1] > 0 {
				if c.Rank() != 0 {
					freq = make([]float64, 1)
				}
				if err := mpi.Bcast(c, freq, 0); err != nil {
					return err
				}
				solver.SetJet(solver.Cfg.JetAmplitude, freq[0])
			}
			d.Update()
			if _, err := bridge.Execute(d); err != nil {
				return err
			}
		}
		if err := bridge.Finalize(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("simulation done: final jet amplitude %.2f, frequency %.2f\n",
				solver.Cfg.JetAmplitude, solver.Cfg.JetFrequency)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	hub.Close() // simulation over: detach the viewer
	viewer.Wait()
	fmt.Printf("hub delivered %d frames; images also in live-frames/\n", hub.Frames())
}
