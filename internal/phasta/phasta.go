// Package phasta implements the PHASTA proxy of this reproduction: an
// unstructured tetrahedral-mesh flow solver standing in for the stabilized
// finite element Navier-Stokes code of the paper's §4.2.1, which ran at up
// to 1,048,576 MPI ranks on Mira with SENSEI/Catalyst slice rendering.
//
// Substitution note (see DESIGN.md): PHASTA solves implicit FEM
// Navier-Stokes; this proxy evolves a nodal velocity field on a tetrahedral
// mesh — an analytic crossflow plus a synthetic jet whose frequency and
// amplitude can be retuned mid-run (the paper's live flow-control steering
// scenario) — followed by mesh-topology smoothing sweeps that cost O(nodes)
// per step like a real solver's matrix work. The properties the paper
// measures are preserved: Fortran-style separate coordinate arrays mapped
// zero-copy via SOA, interleaved field arrays mapped zero-copy via AOS, and
// connectivity rebuilt as a full copy on every in situ access.
package phasta

import (
	"fmt"
	"math"

	"gosensei/internal/mpi"
)

// Config describes the proxy problem: flow over a flat domain with a
// synthetic jet at the bottom wall (the tail-rudder assembly's flow-control
// jet, reduced to its measurable essence).
type Config struct {
	// GlobalPoints is the structured generating grid per axis; the tet mesh
	// has 6 tets per generated hex.
	GlobalPoints [3]int
	// Domain is the physical size.
	Domain [3]float64
	// Crossflow is the freestream x velocity.
	Crossflow float64
	// JetCenter is the jet position on the bottom wall (x, z).
	JetCenter [2]float64
	// JetRadius is the jet footprint radius.
	JetRadius float64
	// JetAmplitude and JetFrequency drive the jet; both are retunable
	// mid-run via Solver.SetJet (live steering).
	JetAmplitude float64
	JetFrequency float64
	// SmoothingSweeps is the per-step relaxation count (solver cost).
	SmoothingSweeps int
	// DT is the time step.
	DT float64
}

// DefaultConfig returns a small version of the vertical-tail problem.
func DefaultConfig(pts int) Config {
	return Config{
		GlobalPoints:    [3]int{pts, pts/2 + 2, pts/2 + 2},
		Domain:          [3]float64{4, 2, 2},
		Crossflow:       1.0,
		JetCenter:       [2]float64{1.0, 1.0},
		JetRadius:       0.3,
		JetAmplitude:    0.8,
		JetFrequency:    3.0,
		SmoothingSweeps: 2,
		DT:              0.02,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	for ax := 0; ax < 3; ax++ {
		if c.GlobalPoints[ax] < 2 {
			return fmt.Errorf("phasta: axis %d needs >= 2 points, got %d", ax, c.GlobalPoints[ax])
		}
	}
	if c.DT <= 0 {
		return fmt.Errorf("phasta: dt must be positive")
	}
	if c.JetRadius <= 0 {
		return fmt.Errorf("phasta: jet radius must be positive")
	}
	if c.SmoothingSweeps < 0 {
		return fmt.Errorf("phasta: smoothing sweeps must be non-negative")
	}
	return nil
}

// Solver is the per-rank state: a slab (along x) of the generated tet mesh
// with Fortran-style separate nodal coordinate arrays and an interleaved
// velocity array.
type Solver struct {
	Comm *mpi.Comm
	Cfg  Config

	// Coordinate planes, SOA like PHASTA's Fortran arrays.
	X, Y, Z []float64
	// Vel is interleaved (u, v, w) per node, AOS.
	Vel []float64

	// npts is the local point counts per axis (slab along x, including the
	// shared interface plane on the high side except for the last rank).
	npts [3]int
	offX int // global index of the first local x plane

	step int
	time float64
}

// NewSolver builds the rank's slab and initial field.
func NewSolver(c *mpi.Comm, cfg Config) (*Solver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Slab decomposition along x over generating cells: rank r owns cell
	// planes [lo, hi), and points [lo, hi] (sharing the interface point).
	cellsX := cfg.GlobalPoints[0] - 1
	if cellsX < c.Size() {
		return nil, fmt.Errorf("phasta: %d x-cells cannot feed %d ranks", cellsX, c.Size())
	}
	base := cellsX / c.Size()
	rem := cellsX % c.Size()
	lo := c.Rank()*base + min(c.Rank(), rem)
	n := base
	if c.Rank() < rem {
		n++
	}
	s := &Solver{
		Comm: c,
		Cfg:  cfg,
		npts: [3]int{n + 1, cfg.GlobalPoints[1], cfg.GlobalPoints[2]},
		offX: lo,
	}
	np := s.npts[0] * s.npts[1] * s.npts[2]
	s.X = make([]float64, np)
	s.Y = make([]float64, np)
	s.Z = make([]float64, np)
	s.Vel = make([]float64, np*3)
	dx := [3]float64{
		cfg.Domain[0] / float64(cfg.GlobalPoints[0]-1),
		cfg.Domain[1] / float64(cfg.GlobalPoints[1]-1),
		cfg.Domain[2] / float64(cfg.GlobalPoints[2]-1),
	}
	idx := 0
	for k := 0; k < s.npts[2]; k++ {
		for j := 0; j < s.npts[1]; j++ {
			for i := 0; i < s.npts[0]; i++ {
				s.X[idx] = float64(s.offX+i) * dx[0]
				s.Y[idx] = float64(j) * dx[1]
				s.Z[idx] = float64(k) * dx[2]
				idx++
			}
		}
	}
	s.evaluateField()
	return s, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// NumPoints returns the local node count.
func (s *Solver) NumPoints() int { return len(s.X) }

// NumTets returns the local tetrahedron count.
func (s *Solver) NumTets() int {
	return (s.npts[0] - 1) * (s.npts[1] - 1) * (s.npts[2] - 1) * 6
}

// StepIndex returns the completed step count.
func (s *Solver) StepIndex() int { return s.step }

// Time returns the simulation time.
func (s *Solver) Time() float64 { return s.time }

// SetJet retunes the synthetic jet mid-run — the live steering loop the
// paper's PHASTA study closes with SENSEI imagery.
func (s *Solver) SetJet(amplitude, frequency float64) {
	s.Cfg.JetAmplitude = amplitude
	s.Cfg.JetFrequency = frequency
}

// evaluateField fills the velocity with the crossflow + jet solution at the
// current time: a boundary-layer-profiled freestream plus a pulsed vertical
// jet whose plume bends downstream.
func (s *Solver) evaluateField() {
	cfg := s.Cfg
	pulse := math.Max(0, math.Sin(2*math.Pi*cfg.JetFrequency*s.time))
	for p := 0; p < s.NumPoints(); p++ {
		x, y, z := s.X[p], s.Y[p], s.Z[p]
		// Boundary layer: u grows from the wall with a 1/7th-power-ish ramp.
		h := y / cfg.Domain[1]
		u := cfg.Crossflow * math.Pow(math.Max(h, 0), 0.25)
		// Jet plume: Gaussian footprint advected downstream as it rises.
		bend := y * cfg.Crossflow * 0.8
		dx := x - (cfg.JetCenter[0] + bend)
		dz := z - cfg.JetCenter[1]
		r2 := (dx*dx + dz*dz) / (cfg.JetRadius * cfg.JetRadius)
		jet := cfg.JetAmplitude * pulse * math.Exp(-r2) * math.Exp(-y/cfg.Domain[1]*1.5)
		v := jet
		w := 0.15 * jet * math.Sin(2*math.Pi*z/cfg.Domain[2])
		s.Vel[p*3+0] = u + 0.3*jet // the jet locally accelerates the stream
		s.Vel[p*3+1] = v
		s.Vel[p*3+2] = w
	}
}

// Step advances the solver: re-evaluate the driven field at t+dt, then run
// the smoothing sweeps that stand in for the implicit solve.
func (s *Solver) Step() {
	s.time += s.Cfg.DT
	s.evaluateField()
	for sweep := 0; sweep < s.Cfg.SmoothingSweeps; sweep++ {
		s.smooth()
	}
	s.step++
}

// smooth runs one Jacobi-style relaxation over the structured node topology
// (the generating grid's 6-neighborhood), costing O(nodes) like a matrix
// application.
func (s *Solver) smooth() {
	nx, ny, nz := s.npts[0], s.npts[1], s.npts[2]
	stride := [3]int{1, nx, nx * ny}
	next := make([]float64, len(s.Vel))
	copy(next, s.Vel)
	for k := 1; k < nz-1; k++ {
		for j := 1; j < ny-1; j++ {
			for i := 1; i < nx-1; i++ {
				id := k*nx*ny + j*nx + i
				for c := 0; c < 3; c++ {
					sum := 0.0
					for _, st := range stride {
						sum += s.Vel[(id-st)*3+c] + s.Vel[(id+st)*3+c]
					}
					next[id*3+c] = 0.5*s.Vel[id*3+c] + 0.5*sum/6
				}
			}
		}
	}
	s.Vel = next
}

// BuildConnectivity constructs the tetrahedral connectivity — a full copy,
// rebuilt on every call, matching the paper's description of the PHASTA
// data adaptor ("the VTK grid connectivity is a full copy ... constructed
// as needed").
func (s *Solver) BuildConnectivity() []int64 {
	nx, ny, nz := s.npts[0], s.npts[1], s.npts[2]
	conn := make([]int64, 0, s.NumTets()*4)
	node := func(i, j, k int) int64 { return int64(k*nx*ny + j*nx + i) }
	// 6-tet decomposition of each generated hex (shared main diagonal).
	tets := [6][4][3]int{
		{{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {1, 1, 1}},
		{{0, 0, 0}, {1, 0, 0}, {1, 1, 1}, {1, 0, 1}},
		{{0, 0, 0}, {1, 0, 1}, {1, 1, 1}, {0, 0, 1}},
		{{0, 0, 0}, {1, 1, 0}, {0, 1, 0}, {1, 1, 1}},
		{{0, 0, 0}, {0, 1, 0}, {0, 1, 1}, {1, 1, 1}},
		{{0, 0, 0}, {0, 1, 1}, {0, 0, 1}, {1, 1, 1}},
	}
	for k := 0; k < nz-1; k++ {
		for j := 0; j < ny-1; j++ {
			for i := 0; i < nx-1; i++ {
				for _, t := range tets {
					for _, v := range t {
						conn = append(conn, node(i+v[0], j+v[1], k+v[2]))
					}
				}
			}
		}
	}
	return conn
}

// MaxJetVelocity returns the global maximum vertical velocity — a cheap
// scalar the steering loop watches.
func (s *Solver) MaxJetVelocity() (float64, error) {
	local := 0.0
	for p := 0; p < s.NumPoints(); p++ {
		if v := s.Vel[p*3+1]; v > local {
			local = v
		}
	}
	out := make([]float64, 1)
	if err := mpi.Allreduce(s.Comm, []float64{local}, out, mpi.OpMax); err != nil {
		return 0, err
	}
	return out[0], nil
}
