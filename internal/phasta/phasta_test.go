package phasta

import (
	"math"
	"testing"

	"gosensei/internal/catalyst"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(8)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.DT = 0
	if err := bad.Validate(); err == nil {
		t.Error("dt=0 accepted")
	}
	bad = good
	bad.GlobalPoints[1] = 1
	if err := bad.Validate(); err == nil {
		t.Error("degenerate axis accepted")
	}
	bad = good
	bad.JetRadius = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero jet radius accepted")
	}
}

func TestMeshCountsTile(t *testing.T) {
	cfg := DefaultConfig(13)
	wantTets := (cfg.GlobalPoints[0] - 1) * (cfg.GlobalPoints[1] - 1) * (cfg.GlobalPoints[2] - 1) * 6
	for _, n := range []int{1, 2, 3, 4} {
		total := 0
		err := mpi.Run(n, func(c *mpi.Comm) error {
			s, err := NewSolver(c, cfg)
			if err != nil {
				return err
			}
			out := make([]int64, 1)
			if err := mpi.Allreduce(c, []int64{int64(s.NumTets())}, out, mpi.OpSum); err != nil {
				return err
			}
			if c.Rank() == 0 {
				total = int(out[0])
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if total != wantTets {
			t.Fatalf("n=%d: tets=%d want %d", n, total, wantTets)
		}
	}
}

func TestConnectivityValid(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		s, err := NewSolver(c, DefaultConfig(6))
		if err != nil {
			return err
		}
		conn := s.BuildConnectivity()
		if len(conn) != s.NumTets()*4 {
			t.Fatalf("conn len=%d want %d", len(conn), s.NumTets()*4)
		}
		np := int64(s.NumPoints())
		seen := make([]bool, np)
		for _, id := range conn {
			if id < 0 || id >= np {
				t.Fatalf("node id %d out of range", id)
			}
			seen[id] = true
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("node %d unused", i)
			}
		}
		// Every tet must have positive volume under a consistent orientation
		// check: nondegenerate at least.
		for ti := 0; ti < s.NumTets(); ti++ {
			var p [4][3]float64
			for v := 0; v < 4; v++ {
				id := conn[ti*4+v]
				p[v] = [3]float64{s.X[id], s.Y[id], s.Z[id]}
			}
			vol := tetVolume(p)
			if math.Abs(vol) < 1e-12 {
				t.Fatalf("degenerate tet %d", ti)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func tetVolume(p [4][3]float64) float64 {
	var a, b, c [3]float64
	for i := 0; i < 3; i++ {
		a[i] = p[1][i] - p[0][i]
		b[i] = p[2][i] - p[0][i]
		c[i] = p[3][i] - p[0][i]
	}
	return (a[0]*(b[1]*c[2]-b[2]*c[1]) - a[1]*(b[0]*c[2]-b[2]*c[0]) + a[2]*(b[0]*c[1]-b[1]*c[0])) / 6
}

func TestHexVolumeCovered(t *testing.T) {
	// The 6 tets of each hex must fill it exactly: total |volume| equals the
	// domain volume.
	err := mpi.Run(1, func(c *mpi.Comm) error {
		cfg := DefaultConfig(5)
		s, err := NewSolver(c, cfg)
		if err != nil {
			return err
		}
		conn := s.BuildConnectivity()
		total := 0.0
		for ti := 0; ti < s.NumTets(); ti++ {
			var p [4][3]float64
			for v := 0; v < 4; v++ {
				id := conn[ti*4+v]
				p[v] = [3]float64{s.X[id], s.Y[id], s.Z[id]}
			}
			total += math.Abs(tetVolume(p))
		}
		want := cfg.Domain[0] * cfg.Domain[1] * cfg.Domain[2]
		if math.Abs(total-want)/want > 1e-9 {
			t.Fatalf("tet volumes sum to %v, domain is %v", total, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestJetPulsesAndSteers(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		cfg := DefaultConfig(10)
		s, err := NewSolver(c, cfg)
		if err != nil {
			return err
		}
		peak := 0.0
		for i := 0; i < 20; i++ {
			s.Step()
			v, err := s.MaxJetVelocity()
			if err != nil {
				return err
			}
			peak = math.Max(peak, v)
		}
		if peak <= 0.1 {
			t.Errorf("jet never fired: peak=%v", peak)
		}
		// Steering: kill the jet and the vertical velocity collapses.
		s.SetJet(0, cfg.JetFrequency)
		s.Step()
		v, err := s.MaxJetVelocity()
		if err != nil {
			return err
		}
		if c.Rank() == 0 && v > peak/10 {
			t.Errorf("steering ineffective: v=%v after amplitude 0 (peak %v)", v, peak)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAdaptorZeroCopySemantics(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		mem := metrics.NewTracker()
		s, err := NewSolver(c, DefaultConfig(6))
		if err != nil {
			return err
		}
		s.Step()
		d := NewDataAdaptor(s)
		d.Memory = mem
		d.Update()
		mesh, err := d.Mesh(false)
		if err != nil {
			return err
		}
		if err := d.AddArray(mesh, grid.PointData, "velocity"); err != nil {
			return err
		}
		g := mesh.(*grid.UnstructuredGrid)
		// Coordinates are zero-copy SOA: mutating the solver's plane shows
		// through the mesh.
		s.X[0] = -42
		if g.Points.Value(0, 0) != -42 {
			t.Error("coordinates copied, want zero-copy")
		}
		// Velocity is zero-copy AOS.
		s.Vel[4] = 99.5
		vel := g.Attributes(grid.PointData).Get("velocity")
		if vel.Value(1, 1) != 99.5 {
			t.Error("velocity copied, want zero-copy")
		}
		// Connectivity is a tracked full copy, dropped on release.
		if mem.Named("phasta/connectivity") == 0 {
			t.Error("connectivity copy not accounted")
		}
		if err := d.ReleaseData(); err != nil {
			return err
		}
		if mem.Current() != 0 {
			t.Errorf("connectivity leaked: %d", mem.Current())
		}
		// Unknown arrays rejected.
		mesh2, _ := d.Mesh(false)
		if err := d.AddArray(mesh2, grid.PointData, "pressure"); err == nil {
			t.Error("unknown array accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWithCatalystSlice(t *testing.T) {
	// The Table 2 pipeline at miniature scale: PHASTA proxy + SENSEI +
	// Catalyst slice of velocity magnitude on the unstructured mesh.
	dir := t.TempDir()
	err := mpi.Run(2, func(c *mpi.Comm) error {
		s, err := NewSolver(c, DefaultConfig(10))
		if err != nil {
			return err
		}
		a := catalyst.NewSliceAdaptor(c, catalyst.Options{
			ArrayName: "velocity", Assoc: grid.PointData,
			Width: 80, Height: 20, // the paper's 800x200, scaled by 10
			SliceAxis: 2, SliceCoord: 1.0,
			OutputDir: dir,
		})
		b := core.NewBridge(c, nil, nil)
		b.AddAnalysis("catalyst", a)
		d := NewDataAdaptor(s)
		for i := 0; i < 4; i += 2 { // images every other step, as the runs did
			s.Step()
			s.Step()
			d.Update()
			if _, err := b.Execute(d); err != nil {
				return err
			}
		}
		if c.Rank() == 0 && a.ImagesWritten() != 2 {
			t.Errorf("images=%d", a.ImagesWritten())
		}
		return b.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
}
