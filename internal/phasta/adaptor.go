package phasta

import (
	"fmt"

	"gosensei/internal/array"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/metrics"
)

// DataAdaptor maps the PHASTA proxy onto the SENSEI data model exactly as
// the paper describes the real instrumentation: "the data adaptor uses VTK's
// zero-copy ability to map the nodal coordinates and field variables while
// the VTK grid connectivity is a full copy. The grid and fields are
// constructed as needed but the pointers to the PHASTA grid data structures
// are passed every time in situ is accessed."
type DataAdaptor struct {
	core.BaseDataAdaptor
	S *Solver
	// Memory, when set, accounts for the connectivity copy.
	Memory *metrics.Tracker

	mesh *grid.UnstructuredGrid
}

// NewDataAdaptor wraps a solver.
func NewDataAdaptor(s *Solver) *DataAdaptor { return &DataAdaptor{S: s} }

// Update points the adaptor at the solver's current step.
func (d *DataAdaptor) Update() { d.SetStep(d.S.StepIndex(), d.S.Time()) }

// Mesh implements core.DataAdaptor. Points wrap the solver's SOA coordinate
// planes zero-copy; connectivity is rebuilt as a full copy on each fresh
// mesh request.
func (d *DataAdaptor) Mesh(structureOnly bool) (grid.Dataset, error) {
	if d.mesh == nil {
		pts := array.WrapSOA("coordinates", d.S.X, d.S.Y, d.S.Z)
		conn := d.S.BuildConnectivity()
		if d.Memory != nil {
			d.Memory.Alloc("phasta/connectivity", int64(len(conn))*8)
		}
		d.mesh = grid.NewUnstructuredGrid(pts, grid.CellTetrahedron, conn)
	}
	return d.mesh, nil
}

// AddArray implements core.DataAdaptor: the nodal velocity wraps the
// solver's interleaved buffer zero-copy (AOS).
func (d *DataAdaptor) AddArray(mesh grid.Dataset, assoc grid.Association, name string) error {
	if assoc != grid.PointData || name != "velocity" {
		return fmt.Errorf("phasta: no %s array %q (only point array \"velocity\")", assoc, name)
	}
	g, ok := mesh.(*grid.UnstructuredGrid)
	if !ok {
		return fmt.Errorf("phasta: mesh is %T", mesh)
	}
	g.Attributes(grid.PointData).Add(array.WrapAOS(name, 3, d.S.Vel))
	return nil
}

// ArrayNames implements core.DataAdaptor.
func (d *DataAdaptor) ArrayNames(assoc grid.Association) ([]string, error) {
	if assoc == grid.PointData {
		return []string{"velocity"}, nil
	}
	return nil, nil
}

// ReleaseData implements core.DataAdaptor: drops the connectivity copy; the
// next access reconstructs it.
func (d *DataAdaptor) ReleaseData() error {
	d.mesh = nil
	if d.Memory != nil {
		d.Memory.FreeAll("phasta/connectivity")
	}
	return nil
}
