package libsim

import (
	"image/png"
	"os"
	"path/filepath"
	"testing"

	"gosensei/internal/core"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
	"gosensei/internal/oscillator"
)

func TestParseSession(t *testing.T) {
	doc := []byte(`<session>
		<image width="320" height="200"/>
		<plot type="slice" array="data" axis="z" coord="8" colormap="viridis"/>
		<plot type="isosurface" array="data" value="0.4" color-by="data"/>
	</session>`)
	s, err := ParseSession(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Plots) != 2 || s.Image.Width != 320 || s.Image.Height != 200 {
		t.Fatalf("session=%+v", s)
	}
	if s.Plots[0].Coord != 8 || s.Plots[1].Value != 0.4 {
		t.Fatalf("plots=%+v", s.Plots)
	}
}

func TestParseSessionDefaultsAndErrors(t *testing.T) {
	s, err := ParseSession([]byte(`<session><plot type="slice" array="d"/></session>`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Image.Width != 1600 || s.Image.Height != 1600 {
		t.Fatalf("default image size %dx%d, paper uses 1600x1600", s.Image.Width, s.Image.Height)
	}
	for name, doc := range map[string]string{
		"no plots":    `<session></session>`,
		"bad type":    `<session><plot type="streamline" array="d"/></session>`,
		"missing arr": `<session><plot type="slice"/></session>`,
		"not xml":     `<session`,
	} {
		if _, err := ParseSession([]byte(doc)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLoadSessionFromDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "viz.session")
	if err := os.WriteFile(path, []byte(`<session><plot type="slice" array="data" axis="z" coord="4"/></session>`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSession(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Plots) != 1 {
		t.Fatal("plot lost")
	}
	if _, err := LoadSession(filepath.Join(dir, "missing.session")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestTMLSessionShape(t *testing.T) {
	s := TMLSession("vorticity", [3]float64{0.2, 0.4, 0.6}, [3]float64{1, 2, 3})
	iso, slice := 0, 0
	for _, p := range s.Plots {
		switch p.Type {
		case "isosurface":
			iso++
		case "slice":
			slice++
		}
	}
	if iso != 3 || slice != 3 {
		t.Fatalf("TML session should have 3 isosurfaces and 3 slices, got %d/%d", iso, slice)
	}
}

func runWithLibsim(t *testing.T, nRanks, steps, stride int, dir string) []*metrics.Registry {
	t.Helper()
	cfg := oscillator.Config{
		GlobalCells: [3]int{12, 12, 12},
		DT:          0.1,
		Steps:       steps,
		Oscillators: oscillator.DefaultDeck(12),
	}
	regs := make([]*metrics.Registry, nRanks)
	err := mpi.Run(nRanks, func(c *mpi.Comm) error {
		reg := metrics.NewRegistry(c.Rank())
		regs[c.Rank()] = reg
		s, err := oscillator.NewSim(c, cfg, nil)
		if err != nil {
			return err
		}
		session := &Session{
			Plots: []Plot{
				{Type: "slice", Array: "data", Axis: "z", Coord: 6},
				{Type: "isosurface", Array: "data", Value: 0.3, Colormap: "viridis"},
			},
			Image: ImageConfig{Width: 48, Height: 48},
		}
		a := NewAdaptor(c, session, Options{OutputDir: dir, Stride: stride})
		a.Registry = reg
		b := core.NewBridge(c, reg, nil)
		b.AddAnalysis("libsim", a)
		d := oscillator.NewDataAdaptor(s)
		for i := 0; i < cfg.Steps; i++ {
			if err := s.Step(); err != nil {
				return err
			}
			d.Update()
			if _, err := b.Execute(d); err != nil {
				return err
			}
		}
		return b.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	return regs
}

func TestAdaptorRendersAndWrites(t *testing.T) {
	dir := t.TempDir()
	runWithLibsim(t, 3, 2, 1, dir)
	files, _ := filepath.Glob(filepath.Join(dir, "visit_*.png"))
	if len(files) != 2 {
		t.Fatalf("expected 2 images, got %v", files)
	}
}

func TestAdaptorStrideEveryFive(t *testing.T) {
	// The AVF-LESLIE configuration: Libsim analysis every 5 invocations.
	dir := t.TempDir()
	regs := runWithLibsim(t, 2, 10, 5, dir)
	files, _ := filepath.Glob(filepath.Join(dir, "visit_*.png"))
	if len(files) != 2 {
		t.Fatalf("stride 5 over 10 steps should write 2 images, got %d", len(files))
	}
	// 4/5 of the invocations must be cheap skips.
	skips := len(regs[0].EventsNamed("libsim::skip"))
	if skips != 8 {
		t.Fatalf("skips=%d want 8", skips)
	}
}

func TestAdaptorTimersPresent(t *testing.T) {
	regs := runWithLibsim(t, 2, 1, 1, "")
	names := regs[0].TimerNames()
	want := map[string]bool{"libsim::initialize": false, "libsim::render": false, "libsim::composite": false, "libsim::png": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("missing %s in %v", k, names)
		}
	}
	// Non-root ranks render and composite but never encode.
	for _, n := range regs[1].TimerNames() {
		if n == "libsim::png" {
			t.Error("non-root rank encoded a PNG")
		}
	}
}

func TestInitializeChecksSessionFile(t *testing.T) {
	a := NewAdaptor(nil, DefaultSliceSession("data", 0), Options{SessionPath: "/nonexistent/session.xml"})
	if err := a.Initialize(); err == nil {
		t.Fatal("missing session file not detected")
	}
	dir := t.TempDir()
	p := filepath.Join(dir, "s.xml")
	if err := os.WriteFile(p, []byte("<session/>"), 0o644); err != nil {
		t.Fatal(err)
	}
	a2 := NewAdaptor(nil, DefaultSliceSession("data", 0), Options{SessionPath: p})
	if err := a2.Initialize(); err != nil {
		t.Fatal(err)
	}
}

func TestFactoryFromXML(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		b := core.NewBridge(c, nil, nil)
		doc := []byte(`<sensei>
			<analysis type="libsim" array="data" image-width="32" image-height="32" stride="5"/>
		</sensei>`)
		if err := core.ConfigureFromXML(b, doc); err != nil {
			return err
		}
		if b.AnalysisCount() != 1 {
			t.Error("libsim factory not registered")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVolumeSession(t *testing.T) {
	dir := t.TempDir()
	cfg := oscillator.Config{
		GlobalCells: [3]int{12, 12, 12},
		DT:          0.1,
		Steps:       2,
		Oscillators: oscillator.DefaultDeck(12),
	}
	err := mpi.Run(3, func(c *mpi.Comm) error {
		s, err := oscillator.NewSim(c, cfg, nil)
		if err != nil {
			return err
		}
		session, err := ParseSession([]byte(
			`<session><image width="40" height="40"/>` +
				`<plot type="volume" array="data" axis="z" opacity="0.15" colormap="viridis"/></session>`))
		if err != nil {
			return err
		}
		a := NewAdaptor(c, session, Options{OutputDir: dir})
		b := core.NewBridge(c, nil, nil)
		b.AddAnalysis("libsim", a)
		d := oscillator.NewDataAdaptor(s)
		for i := 0; i < cfg.Steps; i++ {
			if err := s.Step(); err != nil {
				return err
			}
			d.Update()
			if _, err := b.Execute(d); err != nil {
				return err
			}
		}
		return b.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "visit_*.png"))
	if len(files) != 2 {
		t.Fatalf("volume session wrote %d images, want 2", len(files))
	}
	// The image must show structure (the oscillator blobs), not a constant.
	// The first frame is step 1 at t=0, where every oscillator amplitude is
	// zero (a fully transparent volume), so inspect the second frame.
	f, err := os.Open(files[len(files)-1])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	img, err := png.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	colors := map[[3]uint32]bool{}
	for y := 0; y < 40; y += 4 {
		for x := 0; x < 40; x += 4 {
			r, g, bl, _ := img.At(x, y).RGBA()
			colors[[3]uint32{r, g, bl}] = true
		}
	}
	if len(colors) < 3 {
		t.Fatalf("volume image too uniform: %d distinct sample colors", len(colors))
	}
}

func TestVolumeMustBeOnlyPlot(t *testing.T) {
	_, err := ParseSession([]byte(
		`<session><plot type="volume" array="data"/><plot type="slice" array="data"/></session>`))
	if err == nil {
		t.Fatal("mixed volume session accepted")
	}
}
