// Package libsim implements the VisIt-Libsim-flavored in situ infrastructure
// of this reproduction. Visualizations are described by XML session files
// (VisIt saves these from its GUI); the adaptor parses the session on every
// rank at initialization — reproducing the per-rank configuration-file
// checks behind the paper's ~3.5 s Libsim init at 45K cores — then renders
// the configured plots (pseudocolor slices and isosurfaces), composites with
// a direct-send tree, and writes a PNG from rank 0 (default image
// 1600x1600, per the paper).
package libsim

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"image/color"
	"io"
	"os"
	"path/filepath"

	"gosensei/internal/colormap"
	"gosensei/internal/compositing"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/live"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
	"gosensei/internal/parallel"
	"gosensei/internal/render"
)

func init() {
	core.RegisterFactory("libsim", func(attrs core.Attrs, env *core.Env) (core.AnalysisAdaptor, error) {
		path := attrs.String("session", "")
		var (
			session *Session
			err     error
		)
		if path != "" {
			session, err = LoadSession(path)
			if err != nil {
				return nil, err
			}
		} else {
			// A minimal default session: one z slice of "data".
			session = DefaultSliceSession(attrs.String("array", "data"), 0)
		}
		if w, werr := attrs.Int("image-width", 0); werr == nil && w > 0 {
			session.Image.Width = w
		}
		if h, herr := attrs.Int("image-height", 0); herr == nil && h > 0 {
			session.Image.Height = h
		}
		stride, err := attrs.Int("stride", 1)
		if err != nil {
			return nil, err
		}
		a := NewAdaptor(env.Comm, session, Options{
			OutputDir:   attrs.String("output-dir", ""),
			Stride:      stride,
			SessionPath: path,
			ParallelPNG: attrs.Bool("parallel-png", false),
		})
		if t, terr := attrs.Int("threads", 0); terr == nil && t > 0 {
			a.Opts.Workers = t
		}
		a.Registry = env.Registry
		a.Memory = env.Memory
		return a, nil
	})
}

// Session is a parsed VisIt-style session file.
type Session struct {
	XMLName xml.Name    `xml:"session"`
	Plots   []Plot      `xml:"plot"`
	Image   ImageConfig `xml:"image"`
}

// Plot is one visualization layer.
type Plot struct {
	// Type is "slice" (pseudocolor plane) or "isosurface".
	Type  string `xml:"type,attr"`
	Array string `xml:"array,attr"`
	// Association is "cell" or "point" (default cell; isosurfaces convert).
	Association string `xml:"association,attr"`
	// Slice parameters.
	Axis  string  `xml:"axis,attr"`
	Coord float64 `xml:"coord,attr"`
	// Isosurface parameters.
	Value   float64 `xml:"value,attr"`
	ColorBy string  `xml:"color-by,attr"`
	// Volume parameters: per-unit-length opacity of the normalized scalar.
	Opacity float64 `xml:"opacity,attr"`
	// Colormap preset name.
	Colormap string `xml:"colormap,attr"`
}

// ImageConfig sets the output image size.
type ImageConfig struct {
	Width  int `xml:"width,attr"`
	Height int `xml:"height,attr"`
}

// ParseSession parses session XML.
func ParseSession(doc []byte) (*Session, error) {
	var s Session
	if err := xml.Unmarshal(doc, &s); err != nil {
		return nil, fmt.Errorf("libsim: parse session: %w", err)
	}
	if len(s.Plots) == 0 {
		return nil, fmt.Errorf("libsim: session has no plots")
	}
	if s.Image.Width <= 0 {
		s.Image.Width = 1600
	}
	if s.Image.Height <= 0 {
		s.Image.Height = 1600
	}
	volumes := 0
	for i, p := range s.Plots {
		switch p.Type {
		case "slice", "isosurface":
		case "volume":
			volumes++
		default:
			return nil, fmt.Errorf("libsim: plot %d has unknown type %q", i, p.Type)
		}
		if p.Array == "" {
			return nil, fmt.Errorf("libsim: plot %d missing array", i)
		}
	}
	// Volume rendering uses ordered over-compositing, which cannot be merged
	// with depth-composited geometry in one image; a volume plot must be the
	// session's only plot.
	if volumes > 0 && len(s.Plots) > 1 {
		return nil, fmt.Errorf("libsim: a volume plot must be the session's only plot")
	}
	return &s, nil
}

// LoadSession reads and parses a session file from disk.
func LoadSession(path string) (*Session, error) {
	doc, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("libsim: %w", err)
	}
	return ParseSession(doc)
}

// DefaultSliceSession builds a one-plot session slicing the named array.
func DefaultSliceSession(arrayName string, coord float64) *Session {
	return &Session{
		Plots: []Plot{{Type: "slice", Array: arrayName, Axis: "z", Coord: coord}},
		Image: ImageConfig{Width: 1600, Height: 1600},
	}
}

// TMLSession reproduces the AVF-LESLIE visualization: three isosurfaces and
// three slice planes of vorticity magnitude.
func TMLSession(array string, isoValues [3]float64, sliceCoords [3]float64) *Session {
	s := &Session{Image: ImageConfig{Width: 1600, Height: 1600}}
	axes := [3]string{"x", "y", "z"}
	for i := 0; i < 3; i++ {
		s.Plots = append(s.Plots, Plot{
			Type: "isosurface", Array: array,
			Value: isoValues[i], ColorBy: array, Colormap: "viridis",
		})
	}
	for i := 0; i < 3; i++ {
		s.Plots = append(s.Plots, Plot{
			Type: "slice", Array: array,
			Axis: axes[i], Coord: sliceCoords[i], Colormap: "viridis",
		})
	}
	return s
}

// Options configures the adaptor.
type Options struct {
	// OutputDir receives visit_NNNNN.png from rank 0; empty discards.
	OutputDir string
	// Stride runs the visualization every Stride-th invocation; the
	// AVF-LESLIE runs used 5.
	Stride int
	// SessionPath, when set, is stat'ed by every rank during initialization
	// (the per-rank config check the paper measured).
	SessionPath string
	// Hub, when set, receives every composited frame for live viewers (the
	// VisIt live-connection capability).
	Hub *live.Hub
	// Workers requests intra-rank parallelism for the render and encode
	// stages; 0 derives it from the process thread budget divided by the
	// communicator size. Output is bit-identical at any worker count.
	Workers int
	// ParallelPNG selects the stripe-parallel PNG encoder on rank 0; off
	// reproduces the paper's serial rank-0 encode.
	ParallelPNG bool
}

// Adaptor is the Libsim analysis adaptor.
type Adaptor struct {
	Comm     *mpi.Comm
	Session  *Session
	Opts     Options
	Registry *metrics.Registry
	Memory   *metrics.Tracker

	initialized bool
	imagesOut   int
	execIndex   int
}

// NewAdaptor builds the adaptor.
func NewAdaptor(c *mpi.Comm, session *Session, opts Options) *Adaptor {
	if opts.Stride <= 0 {
		opts.Stride = 1
	}
	return &Adaptor{Comm: c, Session: session, Opts: opts}
}

// ImagesWritten reports how many images rank 0 produced.
func (a *Adaptor) ImagesWritten() int { return a.imagesOut }

// workers resolves the intra-rank worker count against the process thread
// budget, so goroutine-ranks times workers stays bounded under mpi.Run.
func (a *Adaptor) workers() int {
	ranks := 1
	if a.Comm != nil {
		ranks = a.Comm.Size()
	}
	return parallel.Workers(a.Opts.Workers, ranks)
}

func (a *Adaptor) reg() *metrics.Registry {
	if a.Registry == nil {
		a.Registry = metrics.NewRegistry(0)
	}
	return a.Registry
}

// Initialize performs the per-rank startup work: the configuration-file
// check (a real stat per rank) and framebuffer accounting.
func (a *Adaptor) Initialize() error {
	if a.Opts.SessionPath != "" {
		// Every rank checks the session file — the access pattern whose
		// metadata cost the paper observed growing with processor count.
		if _, err := os.Stat(a.Opts.SessionPath); err != nil {
			return fmt.Errorf("libsim: session check: %w", err)
		}
	}
	if a.Memory != nil {
		fbBytes := int64(a.Session.Image.Width) * int64(a.Session.Image.Height) * 8
		a.Memory.Alloc("libsim/framebuffer", fbBytes)
	}
	a.initialized = true
	return nil
}

// Execute implements core.AnalysisAdaptor.
func (a *Adaptor) Execute(d core.DataAdaptor) (bool, error) {
	step := d.TimeStep()
	if !a.initialized {
		var err error
		a.reg().Time("libsim::initialize", step, func() { err = a.Initialize() })
		if err != nil {
			return false, err
		}
	}
	idx := a.execIndex
	a.execIndex++
	if idx%a.Opts.Stride != 0 {
		// Off-stride steps still pass through SENSEI (cheap), like
		// AVF-LESLIE's 4-out-of-5 low-cost invocations.
		a.reg().Log("libsim::skip", step, 0)
		return true, nil
	}
	if len(a.Session.Plots) == 1 && a.Session.Plots[0].Type == "volume" {
		return a.executeVolume(d, step)
	}
	fb := render.AcquireFramebuffer(a.Session.Image.Width, a.Session.Image.Height)
	var err error
	a.reg().Time("libsim::render", step, func() { err = a.renderPlots(d, fb) })
	if err != nil {
		fb.Release()
		return false, err
	}
	var final *render.Framebuffer
	a.reg().Time("libsim::composite", step, func() {
		final, err = compositing.Composite(a.Comm, fb, 0, compositing.DirectSend)
	})
	if err != nil {
		fb.Release()
		return false, err
	}
	if final != nil {
		err = a.writeImage(final, step)
	}
	// DirectSend returns rank 0's own buffer as the final image; release each
	// underlying framebuffer exactly once.
	if final != nil && final != fb {
		final.Release()
	}
	fb.Release()
	return true, err
}

// executeVolume runs the direct-volume-rendering path: axis-aligned ray
// marching per rank, then strict front-to-back over-compositing across the
// rank order along the view axis.
func (a *Adaptor) executeVolume(d core.DataAdaptor, step int) (bool, error) {
	p := a.Session.Plots[0]
	mesh, err := core.FetchArray(d, grid.CellData, p.Array)
	if err != nil {
		return false, err
	}
	img, ok := mesh.(*grid.ImageData)
	if !ok {
		return false, fmt.Errorf("libsim: volume rendering needs structured data, got %v", mesh.Kind())
	}
	cm, err := colormap.ByName(p.Colormap)
	if err != nil {
		return false, err
	}
	lo, hi, bounds, err := a.globalRange(img, grid.CellData, p.Array)
	if err != nil {
		return false, err
	}
	axis := map[string]int{"x": 0, "y": 1, "z": 2}[p.Axis]
	opacity := p.Opacity
	if opacity <= 0 {
		opacity = 3
	}
	spec := &render.VolumeSpec{
		ArrayName: p.Array, Axis: axis, Lo: lo, Hi: hi,
		Map: cm, OpacityScale: opacity, DomainBounds: bounds,
		Workers: a.workers(),
	}
	var (
		local    *render.AlphaImage
		orderKey int
	)
	a.reg().Time("libsim::render", step, func() {
		local, orderKey, err = render.RayMarchLocalSized(img, spec, a.Session.Image.Width, a.Session.Image.Height)
	})
	if err != nil {
		return false, err
	}
	var final *render.AlphaImage
	a.reg().Time("libsim::composite", step, func() {
		final, err = compositing.OverComposite(a.Comm, local, orderKey, 0)
	})
	if err != nil {
		return false, err
	}
	if final != nil {
		fb := final.ToFramebuffer(0.05, 0.05, 0.08)
		return true, a.writeImage(fb, step)
	}
	return true, nil
}

// renderPlots draws every plot of the session into the local framebuffer.
func (a *Adaptor) renderPlots(d core.DataAdaptor, fb *render.Framebuffer) error {
	for i, p := range a.Session.Plots {
		assoc := grid.CellData
		if p.Association == "point" {
			assoc = grid.PointData
		}
		mesh, err := core.FetchArray(d, assoc, p.Array)
		if err != nil {
			return fmt.Errorf("plot %d: %w", i, err)
		}
		img, ok := mesh.(*grid.ImageData)
		if !ok {
			return fmt.Errorf("plot %d: libsim supports structured data, got %v", i, mesh.Kind())
		}
		cm, err := colormap.ByName(p.Colormap)
		if err != nil {
			return fmt.Errorf("plot %d: %w", i, err)
		}
		lo, hi, bounds, err := a.globalRange(img, assoc, p.Array)
		if err != nil {
			return err
		}
		switch p.Type {
		case "slice":
			axis := map[string]int{"x": 0, "y": 1, "z": 2}[p.Axis]
			spec := &render.SliceSpec{
				Plane: render.AxisPlane(axis, p.Coord), ArrayName: p.Array,
				Assoc: assoc, Lo: lo, Hi: hi, Map: cm, DomainBounds: bounds,
				Workers: a.workers(),
			}
			if err := a.renderSlice3D(fb, img, spec, bounds); err != nil {
				return fmt.Errorf("plot %d: %w", i, err)
			}
		case "isosurface":
			name := p.Array
			if assoc == grid.CellData {
				if err := render.CellToPointScalars(img, name); err != nil {
					return fmt.Errorf("plot %d: %w", i, err)
				}
			}
			tris, err := render.IsosurfaceWorkers(img, name, p.Value, p.ColorBy, a.workers())
			if err != nil {
				return fmt.Errorf("plot %d: %w", i, err)
			}
			cam := render.DefaultCamera(bounds)
			render.RenderMeshWorkers(fb, cam, tris, func(s float64) color.RGBA {
				return cm.Pseudocolor(s, lo, hi)
			}, a.workers())
		}
	}
	return nil
}

// renderSlice3D rasterizes a slice plane as geometry in the 3D scene (so it
// composes with isosurfaces in the same image, as the TML visualization
// does): the plane rectangle is triangulated and textured by sampling.
func (a *Adaptor) renderSlice3D(fb *render.Framebuffer, img *grid.ImageData, spec *render.SliceSpec, bounds [6]float64) error {
	cam := render.DefaultCamera(bounds)
	// Sample the slice on a coarse grid of quads in the plane, each
	// pseudocolored by the local data where this rank owns the sample.
	const n = 96
	u, v := spec.Plane.Basis()
	// Project domain corners into the plane to get the window (reusing the
	// spec's own logic via a tiny local recomputation).
	b := spec.DomainBounds
	umin, umax, vmin, vmax := planeWindow(spec.Plane, u, v, b)
	du := (umax - umin) / n
	dv := (vmax - vmin) / n
	lb := img.Bounds()
	cm := spec.Map
	for jj := 0; jj < n; jj++ {
		for ii := 0; ii < n; ii++ {
			c0 := spec.Plane.Origin.Add(u.Scale(umin + float64(ii)*du)).Add(v.Scale(vmin + float64(jj)*dv))
			cc := c0.Add(u.Scale(du / 2)).Add(v.Scale(dv / 2))
			// Only the owning rank draws this sample cell.
			if cc[0] < lb[0] || cc[0] >= lb[1] || cc[1] < lb[2] || cc[1] >= lb[3] || cc[2] < lb[4] || cc[2] >= lb[5] {
				continue
			}
			val, ok := sampleAt(img, spec, cc)
			if !ok {
				continue
			}
			col := cm.Pseudocolor(val, spec.Lo, spec.Hi)
			p1 := c0.Add(u.Scale(du))
			p2 := c0.Add(u.Scale(du)).Add(v.Scale(dv))
			p3 := c0.Add(v.Scale(dv))
			quad := [4]render.Vec3{c0, p1, p2, p3}
			var vtx [4]render.Vertex
			for k, p := range quad {
				px, py, depth := cam.Project(p, fb.W, fb.H)
				vtx[k] = render.Vertex{X: px, Y: py, Depth: depth}
			}
			flat := func(float64) color.RGBA { return col }
			render.RasterizeTriangle(fb, vtx[0], vtx[1], vtx[2], flat)
			render.RasterizeTriangle(fb, vtx[0], vtx[2], vtx[3], flat)
		}
	}
	return nil
}

func planeWindow(pl render.Plane, u, v render.Vec3, b [6]float64) (umin, umax, vmin, vmax float64) {
	umin, vmin = 1e300, 1e300
	umax, vmax = -1e300, -1e300
	for ci := 0; ci < 8; ci++ {
		p := render.Vec3{b[ci&1], b[2+(ci>>1)&1], b[4+(ci>>2)&1]}
		rel := p.Sub(pl.Origin)
		pu, pv := rel.Dot(u), rel.Dot(v)
		if pu < umin {
			umin = pu
		}
		if pu > umax {
			umax = pu
		}
		if pv < vmin {
			vmin = pv
		}
		if pv > vmax {
			vmax = pv
		}
	}
	return
}

// sampleAt fetches the scalar at a world point from the local block.
func sampleAt(img *grid.ImageData, spec *render.SliceSpec, w render.Vec3) (float64, bool) {
	arr := img.Attributes(spec.Assoc).Get(spec.ArrayName)
	if arr == nil {
		return 0, false
	}
	fi := (w[0] - img.Origin[0]) / img.Spacing[0]
	fj := (w[1] - img.Origin[1]) / img.Spacing[1]
	fk := (w[2] - img.Origin[2]) / img.Spacing[2]
	ext := img.Extent
	if spec.Assoc == grid.CellData {
		cx, cy, cz := ext.CellDims()
		ci, cj, ck := int(fi)-ext[0], int(fj)-ext[2], int(fk)-ext[4]
		if ci < 0 || ci >= cx || cj < 0 || cj >= cy || ck < 0 || ck >= cz {
			return 0, false
		}
		return arr.Value(ck*cx*cy+cj*cx+ci, 0), true
	}
	nx, ny, nz := ext.Dims()
	i, j, k := int(fi+0.5)-ext[0], int(fj+0.5)-ext[2], int(fk+0.5)-ext[4]
	if i < 0 || i >= nx || j < 0 || j >= ny || k < 0 || k >= nz {
		return 0, false
	}
	return arr.Value(k*nx*ny+j*nx+i, 0), true
}

// globalRange agrees on scalar range and domain bounds across ranks.
func (a *Adaptor) globalRange(img *grid.ImageData, assoc grid.Association, name string) (lo, hi float64, bounds [6]float64, err error) {
	arr := img.Attributes(assoc).Get(name)
	if arr == nil {
		return 0, 0, bounds, fmt.Errorf("libsim: mesh lacks %s array %q", assoc, name)
	}
	l, h := arr.Range(0)
	lb := img.Bounds()
	recvLo := []float64{l, lb[0], lb[2], lb[4]}
	recvHi := []float64{h, lb[1], lb[3], lb[5]}
	if a.Comm != nil {
		// One fused min/max round for the scalar range and the bounds.
		if err := mpi.AllreduceMinMax(a.Comm, recvLo, recvHi); err != nil {
			return 0, 0, bounds, err
		}
	}
	bounds = [6]float64{recvLo[1], recvHi[1], recvLo[2], recvHi[2], recvLo[3], recvHi[3]}
	return recvLo[0], recvHi[0], bounds, nil
}

// writeImage serializes the composited image on rank 0 and delivers it to
// the output directory and/or attached live viewers.
func (a *Adaptor) writeImage(final *render.Framebuffer, step int) error {
	final.FillBackground(color.RGBA{R: 12, G: 12, B: 16, A: 255})
	var w io.Writer = io.Discard
	var buf *bytes.Buffer
	var file *os.File
	if a.Opts.Hub != nil {
		buf = &bytes.Buffer{}
		w = buf
	} else if a.Opts.OutputDir != "" {
		if err := os.MkdirAll(a.Opts.OutputDir, 0o755); err != nil {
			return fmt.Errorf("libsim: %w", err)
		}
		f, err := os.Create(filepath.Join(a.Opts.OutputDir, fmt.Sprintf("visit_%05d.png", step)))
		if err != nil {
			return fmt.Errorf("libsim: %w", err)
		}
		file = f
		w = f
	}
	var err error
	a.reg().Time("libsim::png", step, func() {
		_, err = render.WritePNG(w, final, render.PNGOptions{
			Parallel: a.Opts.ParallelPNG,
			Workers:  a.workers(),
		})
	})
	if err != nil {
		if file != nil {
			_ = file.Close() // the encode error wins
		}
		return err
	}
	// Close is where a buffered write failure finally surfaces; dropping it
	// would let the I/O-cost experiments count bytes that never landed.
	if file != nil {
		if err := file.Close(); err != nil {
			return fmt.Errorf("libsim: %w", err)
		}
	}
	if buf != nil {
		a.Opts.Hub.Publish(live.Frame{Step: step, Width: final.W, Height: final.H, PNG: buf.Bytes()})
		if a.Opts.OutputDir != "" {
			if err := os.MkdirAll(a.Opts.OutputDir, 0o755); err != nil {
				return fmt.Errorf("libsim: %w", err)
			}
			path := filepath.Join(a.Opts.OutputDir, fmt.Sprintf("visit_%05d.png", step))
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				return fmt.Errorf("libsim: %w", err)
			}
		}
	}
	a.imagesOut++
	return nil
}

// Finalize implements core.AnalysisAdaptor.
func (a *Adaptor) Finalize() error {
	if a.Memory != nil {
		a.Memory.FreeAll("libsim/framebuffer")
	}
	return nil
}
