// Package machine describes the HPC platforms of the SC16 SENSEI paper as
// parameter sets for the performance model: core counts and speeds,
// per-node memory, interconnect latency/bandwidth, and the parallel
// filesystem's aggregate characteristics.
//
// Numbers come from the paper's own platform descriptions (Cori Phase I:
// 1,630 nodes x 2 x 16-core 2.3 GHz Haswell, 128 GB/node, Aries dragonfly,
// 30 PB Lustre at >700 GB/s) and public system documentation for Mira
// (BG/Q) and Titan. They parameterize extrapolation only; all small-scale
// results in this repository are genuinely executed.
package machine

// IOSystem models a parallel filesystem attached to a machine.
type IOSystem struct {
	// OSTs is the number of object storage targets.
	OSTs int
	// OSTBandwidth is the sustained bandwidth of one OST, bytes/s.
	OSTBandwidth float64
	// MetadataOpSeconds is the effective serialized cost of one file-create
	// at the metadata server.
	MetadataOpSeconds float64
	// CollectiveBandwidth is the sustained aggregate bandwidth achieved by a
	// well-formed collective (MPI-IO) write with recommended striping; this
	// is far below peak, as the paper's Table 1 observes.
	CollectiveBandwidth float64
	// FilePerProcessBandwidth is the sustained aggregate bandwidth of
	// file-per-process writes once metadata costs are paid.
	FilePerProcessBandwidth float64
	// ReadBandwidth is the sustained aggregate read bandwidth available to a
	// post hoc job (which shares the filesystem with other tenants).
	ReadBandwidth float64
	// ReadSigma is the log-normal sigma of read-time variability — the
	// "significant variability in read times on the NERSC Lustre system"
	// of Fig. 11.
	ReadSigma float64
	// BurstBufferBandwidth is the aggregate bandwidth of the machine's
	// burst buffer tier (0 = none). The paper's conclusion points at
	// "burst buffers on Cori, to achieve accelerated staging operations";
	// this field supports that future-work extension.
	BurstBufferBandwidth float64
}

// Machine is one platform parameter set.
type Machine struct {
	Name         string
	Nodes        int
	CoresPerNode int
	// RanksPerCore reflects hardware threading use (PHASTA ran 4 ranks/core
	// on Mira's BG/Q).
	RanksPerCore int
	MemPerNodeGB float64
	// CoreGFLOPS is the sustained per-core floating-point rate for
	// stencil-ish workloads (not peak).
	CoreGFLOPS float64
	// ScalarSlowdown is the extra factor serial, branchy code (zlib, PNG
	// filtering) pays on this machine's cores relative to the calibration
	// host — large on in-order cores like BG/Q's. Anchored to the paper's
	// measured PNG-dominated in situ steps (Table 2, Fig. 16).
	ScalarSlowdown float64
	// NetLatencySeconds is the one-way small-message latency.
	NetLatencySeconds float64
	// NetBandwidth is the per-link injection bandwidth, bytes/s.
	NetBandwidth float64
	IO           IOSystem
}

// TotalCores returns the machine's core count.
func (m Machine) TotalCores() int { return m.Nodes * m.CoresPerNode }

// Cori returns the Cori Phase I (NERSC Cray XC40, Haswell) model used for
// the miniapplication and Nyx studies.
func Cori() Machine {
	return Machine{
		Name:              "cori-p1",
		Nodes:             1630,
		CoresPerNode:      32,
		RanksPerCore:      1,
		MemPerNodeGB:      128,
		CoreGFLOPS:        4.0,
		ScalarSlowdown:    1.2,
		NetLatencySeconds: 1.3e-6,
		NetBandwidth:      8e9,
		IO: IOSystem{
			OSTs:                    248,
			OSTBandwidth:            3e9,
			MetadataOpSeconds:       45e-6,
			CollectiveBandwidth:     5.4e9,
			FilePerProcessBandwidth: 17e9,
			ReadBandwidth:           4.5e9,
			ReadSigma:               0.35,
			BurstBufferBandwidth:    140e9, // Cori Phase I DataWarp
		},
	}
}

// Mira returns the Mira (ALCF BG/Q) model used for the PHASTA runs.
func Mira() Machine {
	return Machine{
		Name:              "mira",
		Nodes:             49152,
		CoresPerNode:      16,
		RanksPerCore:      4, // PHASTA's preferred configuration
		MemPerNodeGB:      16,
		CoreGFLOPS:        1.6,
		ScalarSlowdown:    10, // in-order 0.8 GHz/thread BG/Q cores on serial zlib
		NetLatencySeconds: 2.2e-6,
		NetBandwidth:      2e9,
		IO: IOSystem{
			OSTs:                    384,
			OSTBandwidth:            0.6e9,
			MetadataOpSeconds:       80e-6,
			CollectiveBandwidth:     60e9,
			FilePerProcessBandwidth: 120e9,
			ReadBandwidth:           30e9,
			ReadSigma:               0.3,
		},
	}
}

// Titan returns the Titan (OLCF Cray XK7) model used for the AVF-LESLIE
// runs.
func Titan() Machine {
	return Machine{
		Name:              "titan",
		Nodes:             18688,
		CoresPerNode:      16,
		RanksPerCore:      1,
		MemPerNodeGB:      32,
		CoreGFLOPS:        2.2,
		ScalarSlowdown:    6, // shared-frontend Bulldozer integer cores on serial zlib
		NetLatencySeconds: 1.5e-6,
		NetBandwidth:      5e9,
		IO: IOSystem{
			OSTs:                    1008,
			OSTBandwidth:            1e9,
			MetadataOpSeconds:       60e-6,
			CollectiveBandwidth:     100e9,
			FilePerProcessBandwidth: 240e9,
			ReadBandwidth:           50e9,
			ReadSigma:               0.3,
		},
	}
}

// Local returns a model of the machine the tests actually run on; the
// experiment harnesses use it for the "real" (executed) rows.
func Local() Machine {
	return Machine{
		Name:              "local",
		Nodes:             1,
		CoresPerNode:      8,
		RanksPerCore:      1,
		MemPerNodeGB:      16,
		CoreGFLOPS:        8,
		ScalarSlowdown:    1,
		NetLatencySeconds: 2e-7, // channel hop
		NetBandwidth:      8e9,
		IO: IOSystem{
			OSTs:                    1,
			OSTBandwidth:            1e9,
			MetadataOpSeconds:       20e-6,
			CollectiveBandwidth:     1e9,
			FilePerProcessBandwidth: 1.5e9,
			ReadBandwidth:           2e9,
			ReadSigma:               0.1,
		},
	}
}

// ByName returns a platform model by name.
func ByName(name string) (Machine, bool) {
	switch name {
	case "cori", "cori-p1":
		return Cori(), true
	case "mira":
		return Mira(), true
	case "titan":
		return Titan(), true
	case "local":
		return Local(), true
	}
	return Machine{}, false
}
