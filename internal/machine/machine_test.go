package machine

import "testing"

func TestPresets(t *testing.T) {
	cori := Cori()
	if cori.TotalCores() != 1630*32 {
		t.Fatalf("cori cores=%d", cori.TotalCores())
	}
	if cori.MemPerNodeGB != 128 {
		t.Fatalf("cori mem=%v", cori.MemPerNodeGB)
	}
	mira := Mira()
	if mira.RanksPerCore != 4 {
		t.Fatalf("mira ranks/core=%d (PHASTA runs 4)", mira.RanksPerCore)
	}
	// Mira supports the paper's 1M-rank run: 16384 nodes x 16 cores x 4.
	if mira.TotalCores()*mira.RanksPerCore < 1048576 {
		t.Fatal("mira cannot host 1M ranks")
	}
	titan := Titan()
	if titan.CoresPerNode != 16 {
		t.Fatalf("titan cores/node=%d", titan.CoresPerNode)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"cori", "cori-p1", "mira", "titan", "local"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("summit"); ok {
		t.Error("unknown machine resolved")
	}
}

func TestSanityOfRates(t *testing.T) {
	for _, m := range []Machine{Cori(), Mira(), Titan(), Local()} {
		if m.CoreGFLOPS <= 0 || m.NetBandwidth <= 0 || m.NetLatencySeconds <= 0 {
			t.Errorf("%s: non-positive rates", m.Name)
		}
		if m.IO.CollectiveBandwidth <= 0 || m.IO.FilePerProcessBandwidth < m.IO.CollectiveBandwidth {
			t.Errorf("%s: file-per-process should outrun collective MPI-IO (Table 1)", m.Name)
		}
		if m.IO.ReadSigma < 0 || m.IO.MetadataOpSeconds <= 0 {
			t.Errorf("%s: bad IO params", m.Name)
		}
	}
}
