package extracts

import (
	"image/png"
	"os"
	"path/filepath"
	"testing"

	"gosensei/internal/core"
	"gosensei/internal/mpi"
	"gosensei/internal/oscillator"
)

func runCinema(t *testing.T, nRanks, steps int, spec Spec) *Index {
	t.Helper()
	cfg := oscillator.Config{
		GlobalCells: [3]int{12, 12, 12},
		DT:          0.1,
		Steps:       steps,
		Oscillators: oscillator.DefaultDeck(12),
	}
	err := mpi.Run(nRanks, func(c *mpi.Comm) error {
		s, err := oscillator.NewSim(c, cfg, nil)
		if err != nil {
			return err
		}
		cn := New(c, spec)
		b := core.NewBridge(c, nil, nil)
		b.AddAnalysis("cinema", cn)
		d := oscillator.NewDataAdaptor(s)
		for i := 0; i < cfg.Steps; i++ {
			if err := s.Step(); err != nil {
				return err
			}
			d.Update()
			if _, err := b.Execute(d); err != nil {
				return err
			}
		}
		return b.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := LoadIndex(spec.OutputDir)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func baseSpec(dir string) Spec {
	return Spec{
		ArrayName: "data",
		IsoValues: []float64{0.4, 0.7},
		Phi:       []float64{0, 90},
		Theta:     []float64{30},
		Width:     48,
		Height:    48,
		OutputDir: dir,
	}
}

func TestCinemaStoreComplete(t *testing.T) {
	dir := t.TempDir()
	steps := 2
	ix := runCinema(t, 2, steps, baseSpec(dir))
	// 2 steps x 2 isos x 2 phis x 1 theta = 8 images.
	want := steps * 2 * 2 * 1
	if len(ix.Entries) != want {
		t.Fatalf("entries=%d want %d", len(ix.Entries), want)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.png"))
	if len(files) != want {
		t.Fatalf("images=%d want %d", len(files), want)
	}
	// Every image decodes at the declared size.
	f, err := os.Open(filepath.Join(dir, ix.Entries[0].File))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	img, err := png.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 48 || img.Bounds().Dy() != 48 {
		t.Fatalf("image bounds %v", img.Bounds())
	}
}

func TestCinemaLookup(t *testing.T) {
	dir := t.TempDir()
	ix := runCinema(t, 1, 2, baseSpec(dir))
	e, ok := ix.Lookup(2, 0.7, 90, 30)
	if !ok {
		t.Fatalf("entry not found; have %+v", ix.Entries)
	}
	if e.File == "" || e.Step != 2 {
		t.Fatalf("entry=%+v", e)
	}
	if _, ok := ix.Lookup(99, 0.7, 90, 30); ok {
		t.Fatal("phantom entry")
	}
}

func TestCinemaStride(t *testing.T) {
	dir := t.TempDir()
	spec := baseSpec(dir)
	spec.Stride = 2
	spec.IsoValues = []float64{0.5}
	spec.Phi = []float64{0}
	ix := runCinema(t, 1, 4, spec)
	// Executions 0 and 2 fire -> 2 images.
	if len(ix.Entries) != 2 {
		t.Fatalf("entries=%d want 2", len(ix.Entries))
	}
}

func TestSpecValidate(t *testing.T) {
	good := baseSpec("x")
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string]func(*Spec){
		"no array":   func(s *Spec) { s.ArrayName = "" },
		"no isos":    func(s *Spec) { s.IsoValues = nil },
		"bad iso":    func(s *Spec) { s.IsoValues = []float64{1.5} },
		"no phi":     func(s *Spec) { s.Phi = nil },
		"bad size":   func(s *Spec) { s.Width = 0 },
		"no out dir": func(s *Spec) { s.OutputDir = "" },
	} {
		bad := baseSpec("x")
		mut(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestOrbitAngles(t *testing.T) {
	a := orbit(4, 0, 360)
	if len(a) != 4 || a[0] != 0 || a[1] != 90 || a[3] != 270 {
		t.Fatalf("orbit=%v", a)
	}
	if got := orbit(0, 0, 360); len(got) != 1 {
		t.Fatalf("orbit(0)=%v", got)
	}
}

func TestFactoryRegistered(t *testing.T) {
	dir := t.TempDir()
	err := mpi.Run(1, func(c *mpi.Comm) error {
		b := core.NewBridge(c, nil, nil)
		doc := []byte(`<sensei><analysis type="cinema" array="data" phi-count="2" theta-count="1"
			image-width="32" image-height="32" output-dir="` + dir + `"/></sensei>`)
		if err := core.ConfigureFromXML(b, doc); err != nil {
			return err
		}
		if b.AnalysisCount() != 1 {
			t.Error("cinema factory missing")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadIndexMissing(t *testing.T) {
	if _, err := LoadIndex(t.TempDir()); err == nil {
		t.Fatal("missing index accepted")
	}
}
