package extracts

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"gosensei/internal/array"
	"gosensei/internal/grid"
)

func TestHistogramExtractRoundTrip(t *testing.T) {
	p := &HistogramPartial{Step: 42, Time: 1.75, Min: -3.5, Max: 9.25,
		Counts: []int64{0, 7, 1 << 40, 3}}
	data := AppendHistogramExtract(nil, p)
	if !IsExtract(data) || ExtractKind(data) != KindHistogram {
		t.Fatalf("sniff failed: isExtract=%v kind=%d", IsExtract(data), ExtractKind(data))
	}
	got, err := DecodeHistogramExtract(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip: %+v != %+v", got, p)
	}
}

// TestHistogramExtractProperty: seeded quick.Check that every shape of
// partial survives the wire bit-identically, including NaN-free extreme
// floats and zero counts.
func TestHistogramExtractProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(23))}
	f := func(step int32, time, lo, hi float64, raw []int64) bool {
		if len(raw) == 0 {
			raw = []int64{0}
		}
		if len(raw) > maxExtractBins {
			raw = raw[:maxExtractBins]
		}
		p := &HistogramPartial{Step: int(step), Time: time, Min: lo, Max: hi, Counts: raw}
		got, err := DecodeHistogramExtract(AppendHistogramExtract(nil, p))
		if err != nil {
			return false
		}
		// Compare by bits so NaN times/ranges still round-trip.
		if got.Step != p.Step ||
			math.Float64bits(got.Time) != math.Float64bits(p.Time) ||
			math.Float64bits(got.Min) != math.Float64bits(p.Min) ||
			math.Float64bits(got.Max) != math.Float64bits(p.Max) {
			return false
		}
		return reflect.DeepEqual(got.Counts, p.Counts)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramExtractRejectsCorruption(t *testing.T) {
	valid := AppendHistogramExtract(nil, &HistogramPartial{Counts: []int64{1, 2, 3}})
	cases := map[string]func([]byte) []byte{
		"bad magic":   func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"bad version": func(b []byte) []byte { b[4] = 99; return b },
		"bad kind":    func(b []byte) []byte { b[8] = 77; return b },
		"zero bins":   func(b []byte) []byte { b[41], b[42], b[43], b[44] = 0, 0, 0, 0; return b },
		"huge bins":   func(b []byte) []byte { b[41], b[42], b[43], b[44] = 0xFF, 0xFF, 0xFF, 0xFF; return b },
		"truncated":   func(b []byte) []byte { return b[:len(b)-5] },
		"oversized":   func(b []byte) []byte { return append(b, 0) },
		"header only": func(b []byte) []byte { return b[:extractHeaderSize-1] },
	}
	for name, mutate := range cases {
		b := mutate(append([]byte(nil), valid...))
		if _, err := DecodeHistogramExtract(b); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := DecodeHistogramExtract(valid); err != nil {
		t.Fatalf("pristine container rejected: %v", err)
	}
}

func TestEmptyExtractRoundTrip(t *testing.T) {
	data := AppendEmptyExtract(nil, 13, 6.5)
	if ExtractKind(data) != KindEmpty {
		t.Fatalf("kind=%d", ExtractKind(data))
	}
	step, tm, err := DecodeEmptyExtract(data)
	if err != nil || step != 13 || tm != 6.5 {
		t.Fatalf("step=%d time=%v err=%v", step, tm, err)
	}
	if _, _, err := DecodeEmptyExtract(data[:10]); err == nil {
		t.Fatal("truncated marker accepted")
	}
	// A histogram container is not an empty marker and vice versa.
	hist := AppendHistogramExtract(nil, &HistogramPartial{Counts: []int64{1}})
	if _, _, err := DecodeEmptyExtract(hist); err == nil {
		t.Fatal("histogram container accepted as empty marker")
	}
	if _, err := DecodeHistogramExtract(data); err == nil {
		t.Fatal("empty marker accepted as histogram")
	}
}

// sliceTestImage builds a 4x3x2-cell block offset from the global origin,
// with cell and point arrays whose values encode the global index — so a
// slice's values prove which elements were copied.
func sliceTestImage() *grid.ImageData {
	img := grid.NewImageData(grid.Extent{2, 6, 1, 4, 0, 2})
	img.Origin = [3]float64{0, 0, 0}
	img.Spacing = [3]float64{0.5, 1, 2}
	cx, cy, cz := img.Extent.CellDims()
	cvals := make([]float64, cx*cy*cz)
	for i := range cvals {
		cvals[i] = float64(i)
	}
	img.Attributes(grid.CellData).Add(array.WrapAOS("data", 1, cvals))
	nx, ny, nz := img.Dims()
	pvals := make([]float64, nx*ny*nz*2)
	for i := range pvals {
		pvals[i] = float64(i) * 0.25
	}
	img.Attributes(grid.PointData).Add(array.WrapAOS("uv", 2, pvals))
	return img
}

func TestSlicePlane(t *testing.T) {
	img := sliceTestImage()
	// World x of cell layer i=3 spans [1.5, 2.0) (origin 0, spacing 0.5).
	slab := SlicePlane(img, 0, 1.6)
	if slab == nil {
		t.Fatal("plane through the block returned nil")
	}
	if slab.Extent != (grid.Extent{3, 4, 1, 4, 0, 2}) {
		t.Fatalf("slab extent %v", slab.Extent)
	}
	if slab.Origin != img.Origin || slab.Spacing != img.Spacing {
		t.Fatal("geometry lost")
	}
	// Cell values: source cell (i=1 local, j, k) of a 4x3x2 cell block.
	a := slab.Attributes(grid.CellData).Get("data")
	if a == nil || a.Tuples() != 1*3*2 {
		t.Fatalf("cell slab wrong: %+v", a)
	}
	idx := 0
	for k := 0; k < 2; k++ {
		for j := 0; j < 3; j++ {
			want := float64(1 + 4*(j+3*k))
			if got := a.Value(idx, 0); got != want {
				t.Fatalf("cell (%d,%d): got %v want %v", j, k, got, want)
			}
			idx++
		}
	}
	// Point values: the slab keeps the two bounding point planes i=3,4
	// (local 1,2) of the 5x4x3 point block, both components.
	uv := slab.Attributes(grid.PointData).Get("uv")
	if uv == nil || uv.Components() != 2 || uv.Tuples() != 2*4*3 {
		t.Fatalf("point slab wrong: %+v", uv)
	}
	idx = 0
	for k := 0; k < 3; k++ {
		for j := 0; j < 4; j++ {
			for i := 1; i <= 2; i++ {
				src := i + 5*(j+4*k)
				for c := 0; c < 2; c++ {
					want := float64(src*2+c) * 0.25
					if got := uv.Value(idx, c); got != want {
						t.Fatalf("point (%d,%d,%d) comp %d: got %v want %v", i, j, k, c, got, want)
					}
				}
				idx++
			}
		}
	}

	// Planes outside the block miss: this block owns x cells [2,5], i.e.
	// world x [1.0, 3.0).
	if SlicePlane(img, 0, 0.5) != nil || SlicePlane(img, 0, 3.5) != nil {
		t.Fatal("plane outside the block did not miss")
	}
	if SlicePlane(img, 7, 0) != nil {
		t.Fatal("invalid axis accepted")
	}
	// A hit on another axis: z cell layers are [0,1], world z [0,4).
	if s := SlicePlane(img, 2, 3.9); s == nil || s.Extent != (grid.Extent{2, 6, 1, 4, 1, 2}) {
		t.Fatalf("z slice: %+v", s)
	}
}

// FuzzExtractSniff hammers the endpoint's payload-sniffing decoders with
// arbitrary bytes: whatever arrives, kind classification and both extract
// decoders must return errors on garbage — never panic — and the histogram
// decoder must not allocate past what a plausible header describes.
func FuzzExtractSniff(f *testing.F) {
	f.Add(AppendHistogramExtract(nil, &HistogramPartial{Step: 3, Time: 0.5, Min: -1, Max: 1,
		Counts: []int64{5, 0, 9}}))
	f.Add(AppendEmptyExtract(nil, 8, 2.5))
	corrupt := AppendHistogramExtract(nil, &HistogramPartial{Counts: []int64{1, 2}})
	corrupt[41] = 0xEE
	f.Add(corrupt)
	f.Add([]byte("GOEX"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		kind := ExtractKind(data)
		p, err := DecodeHistogramExtract(data)
		if err == nil {
			if kind != KindHistogram {
				t.Fatalf("decoded a container ExtractKind classified as %d", kind)
			}
			if 8*len(p.Counts) > len(data) {
				t.Fatalf("decoded %d bins from %d bytes", len(p.Counts), len(data))
			}
		}
		if _, _, err := DecodeEmptyExtract(data); err == nil && kind != KindEmpty {
			t.Fatalf("empty marker decoded from kind %d", kind)
		}
	})
}
