package extracts

import (
	"encoding/binary"
	"fmt"
	"math"

	"gosensei/internal/array"
	"gosensei/internal/grid"
)

// Extract shipping, the third rung of PR 6's bandwidth-reduction ladder:
// when the staging handshake negotiates that the endpoint only needs a
// reduced product, the writer ships that product instead of the full BP
// container — the Catalyst-ADIOS2 hybrid's "reduce before the wire". Two
// products are supported:
//
//   - a histogram partial: the writer's local bin counts over the globally
//     agreed [min, max] range (agreed by an allreduce over the WRITER
//     group, so every partial bins against identical edges and the
//     endpoint's merge — exact int64 sums plus exact float min/max — is
//     bit-identical to binning the full data);
//   - a plane slice: a one-cell-thick sub-block, which is just a thin BP
//     container and flows through the normal staged-decode path.
//
// Histogram partials travel in a "GOEX" container so an endpoint can sniff
// extract vs BP payloads by magic.

const (
	// extractMagic spells GOEX in the same style as the adios BP magic.
	extractMagic   = 0x47_4F_45_58
	extractVersion = 1

	// KindHistogram tags a histogram-partial container.
	KindHistogram = 1
	// KindEmpty tags a header-only container from a writer with nothing to
	// contribute this step (e.g. the slice plane misses its block); the
	// endpoint records the writer as heard-from without a data block.
	KindEmpty = 2

	// extractHeaderSize: magic, version, kind, step, time, min, max, bins.
	extractHeaderSize = 4 + 4 + 1 + 8 + 8 + 8 + 8 + 4

	// maxExtractBins bounds decode allocation against corrupt headers.
	maxExtractBins = 1 << 20
)

// HistogramPartial is one writer's share of a global histogram: local
// counts over the globally agreed range.
type HistogramPartial struct {
	Step     int
	Time     float64
	Min, Max float64
	Counts   []int64
}

// IsExtract reports whether data begins with the extract magic.
func IsExtract(data []byte) bool {
	return len(data) >= 4 && binary.LittleEndian.Uint32(data) == extractMagic
}

// ExtractKind returns the kind tag of an extract container, or 0 when data
// is not a well-formed extract header.
func ExtractKind(data []byte) uint8 {
	if !IsExtract(data) || len(data) < extractHeaderSize {
		return 0
	}
	if binary.LittleEndian.Uint32(data[4:8]) != extractVersion {
		return 0
	}
	return data[8]
}

// AppendEmptyExtract serializes the header-only "nothing this step" marker.
func AppendEmptyExtract(dst []byte, step int, time float64) []byte {
	le := binary.LittleEndian
	var buf [extractHeaderSize]byte
	le.PutUint32(buf[0:4], extractMagic)
	le.PutUint32(buf[4:8], extractVersion)
	buf[8] = KindEmpty
	le.PutUint64(buf[9:17], uint64(int64(step)))
	le.PutUint64(buf[17:25], math.Float64bits(time))
	return append(dst, buf[:]...)
}

// DecodeEmptyExtract reverses AppendEmptyExtract.
func DecodeEmptyExtract(data []byte) (step int, time float64, err error) {
	if len(data) != extractHeaderSize || ExtractKind(data) != KindEmpty {
		return 0, 0, fmt.Errorf("extracts: not an empty marker (%d bytes)", len(data))
	}
	le := binary.LittleEndian
	return int(int64(le.Uint64(data[9:17]))), math.Float64frombits(le.Uint64(data[17:25])), nil
}

// AppendHistogramExtract serializes a histogram partial into a GOEX
// container, appended to dst.
func AppendHistogramExtract(dst []byte, p *HistogramPartial) []byte {
	le := binary.LittleEndian
	base := len(dst)
	size := extractHeaderSize + 8*len(p.Counts)
	if cap(dst)-base < size {
		grown := make([]byte, base, base+size)
		copy(grown, dst)
		dst = grown
	}
	buf := dst[base : base+size]
	dst = dst[:base+size]
	le.PutUint32(buf[0:4], extractMagic)
	le.PutUint32(buf[4:8], extractVersion)
	buf[8] = KindHistogram
	le.PutUint64(buf[9:17], uint64(int64(p.Step)))
	le.PutUint64(buf[17:25], math.Float64bits(p.Time))
	le.PutUint64(buf[25:33], math.Float64bits(p.Min))
	le.PutUint64(buf[33:41], math.Float64bits(p.Max))
	le.PutUint32(buf[41:45], uint32(len(p.Counts)))
	off := extractHeaderSize
	for _, c := range p.Counts {
		le.PutUint64(buf[off:], uint64(c))
		off += 8
	}
	return dst
}

// DecodeHistogramExtract reverses AppendHistogramExtract. Corrupt inputs
// return errors without over-allocating: the bin count is validated against
// both a hard bound and the bytes actually present before any allocation.
func DecodeHistogramExtract(data []byte) (*HistogramPartial, error) {
	le := binary.LittleEndian
	if len(data) < extractHeaderSize {
		return nil, fmt.Errorf("extracts: container %d bytes, want >= %d", len(data), extractHeaderSize)
	}
	if m := le.Uint32(data[0:4]); m != extractMagic {
		return nil, fmt.Errorf("extracts: bad magic %#x", m)
	}
	if v := le.Uint32(data[4:8]); v != extractVersion {
		return nil, fmt.Errorf("extracts: unsupported version %d", v)
	}
	if k := data[8]; k != KindHistogram {
		return nil, fmt.Errorf("extracts: unsupported kind %d", k)
	}
	bins := int(le.Uint32(data[41:45]))
	if bins <= 0 || bins > maxExtractBins {
		return nil, fmt.Errorf("extracts: implausible bin count %d", bins)
	}
	if len(data) != extractHeaderSize+8*bins {
		return nil, fmt.Errorf("extracts: container %d bytes, want %d for %d bins", len(data), extractHeaderSize+8*bins, bins)
	}
	p := &HistogramPartial{
		Step:   int(int64(le.Uint64(data[9:17]))),
		Time:   math.Float64frombits(le.Uint64(data[17:25])),
		Min:    math.Float64frombits(le.Uint64(data[25:33])),
		Max:    math.Float64frombits(le.Uint64(data[33:41])),
		Counts: make([]int64, bins),
	}
	off := extractHeaderSize
	for i := range p.Counts {
		p.Counts[i] = int64(le.Uint64(data[off:]))
		off += 8
	}
	return p, nil
}

// SlicePlane extracts the one-cell-thick slab of img normal to axis
// (0=x, 1=y, 2=z) containing world coordinate coord, preserving the block's
// global indexing, origin, and spacing. It returns nil when the plane
// misses this block — in a multi-writer run only the blocks the plane cuts
// through ship anything.
func SlicePlane(img *grid.ImageData, axis int, coord float64) *grid.ImageData {
	if axis < 0 || axis > 2 {
		return nil
	}
	e := img.Extent
	spacing := img.Spacing[axis]
	if spacing == 0 {
		spacing = 1
	}
	// The cell layer whose slab [origin + c*spacing, origin + (c+1)*spacing)
	// contains the coordinate.
	c := int(math.Floor((coord - img.Origin[axis]) / spacing))
	loCell, hiCell := e[2*axis], e[2*axis+1]-1
	if hiCell < loCell {
		hiCell = loCell // degenerate axis: one cell layer
	}
	if c < loCell || c > hiCell {
		return nil
	}

	sub := e
	sub[2*axis] = c
	sub[2*axis+1] = c + 1
	if sub[2*axis+1] > e[2*axis+1] {
		sub[2*axis+1] = e[2*axis+1] // degenerate source axis stays degenerate
	}
	out := grid.NewImageData(sub)
	out.Origin = img.Origin
	out.Spacing = img.Spacing

	copyAttrs(out, img, grid.PointData, sub, e, pointDims(e), pointDims(sub))
	copyAttrs(out, img, grid.CellData, sub, e, cellDims(e), cellDims(sub))
	return out
}

func pointDims(e grid.Extent) [3]int {
	nx, ny, nz := e.Dims()
	return [3]int{nx, ny, nz}
}

func cellDims(e grid.Extent) [3]int {
	cx, cy, cz := e.CellDims()
	return [3]int{cx, cy, cz}
}

// copyAttrs copies the sub-extent's tuples of every attribute array from
// src to dst, in the x-fastest layout the rest of the codebase uses. For
// cell data the dims are cell dims (one less than points per
// non-degenerate axis) and indices address cell layers.
func copyAttrs(dst, src *grid.ImageData, assoc grid.Association, sub, full grid.Extent, fullDims, subDims [3]int) {
	lo := [3]int{full[0], full[2], full[4]}
	slo := [3]int{sub[0], sub[2], sub[4]}
	fd := src.Attributes(assoc)
	for ai := 0; ai < fd.Len(); ai++ {
		a := fd.At(ai)
		comps := a.Components()
		vals := make([]float64, subDims[0]*subDims[1]*subDims[2]*comps)
		di := 0
		for k := 0; k < subDims[2]; k++ {
			for j := 0; j < subDims[1]; j++ {
				for i := 0; i < subDims[0]; i++ {
					gi := slo[0] - lo[0] + i
					gj := slo[1] - lo[1] + j
					gk := slo[2] - lo[2] + k
					si := gi + fullDims[0]*(gj+fullDims[1]*gk)
					for cc := 0; cc < comps; cc++ {
						vals[di] = a.Value(si, cc)
						di++
					}
				}
			}
		}
		dst.Attributes(assoc).Add(array.WrapAOS(a.Name(), comps, vals))
	}
}
