// Package extracts implements the "explorable data products" direction the
// SC16 SENSEI paper surveys in §2.2.4 (Globus 1995; Ye 2013; Ahrens 2014's
// Cinema): instead of one fixed view, the in situ step renders a database of
// images over a sweep of camera angles and isovalues, plus a JSON index, so
// that *post hoc* exploration — changing viewpoint or contour level — needs
// only the tiny extract store, never the full-resolution data.
//
// The paper notes these methods "will be run in situ, most likely using one
// of the infrastructures we study"; accordingly the Cinema writer here is an
// ordinary core.AnalysisAdaptor sharing the same rendering and compositing
// substrate as the Catalyst and Libsim adaptors.
package extracts

import (
	"encoding/json"
	"fmt"
	"image/color"
	"math"
	"os"
	"path/filepath"

	"gosensei/internal/colormap"
	"gosensei/internal/compositing"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
	"gosensei/internal/render"
)

func init() {
	core.RegisterFactory("cinema", func(attrs core.Attrs, env *core.Env) (core.AnalysisAdaptor, error) {
		w, err := attrs.Int("image-width", 256)
		if err != nil {
			return nil, err
		}
		h, err := attrs.Int("image-height", 256)
		if err != nil {
			return nil, err
		}
		nPhi, err := attrs.Int("phi-count", 4)
		if err != nil {
			return nil, err
		}
		nTheta, err := attrs.Int("theta-count", 2)
		if err != nil {
			return nil, err
		}
		iso, err := attrs.Float("iso", 0.5)
		if err != nil {
			return nil, err
		}
		cm, err := colormap.ByName(attrs.String("colormap", "viridis"))
		if err != nil {
			return nil, err
		}
		spec := Spec{
			ArrayName: attrs.String("array", "data"),
			IsoValues: []float64{iso},
			Phi:       orbit(nPhi, 0, 360),
			Theta:     orbit(nTheta, 15, 75),
			Width:     w,
			Height:    h,
			OutputDir: attrs.String("output-dir", "cinema-store"),
			Map:       cm,
		}
		a := New(env.Comm, spec)
		a.Registry = env.Registry
		return a, nil
	})
}

// orbit returns n angles evenly spread over [lo, hi) degrees.
func orbit(n int, lo, hi float64) []float64 {
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	return out
}

// Spec describes one Cinema-style extract database.
type Spec struct {
	// ArrayName is the cell scalar to contour (converted to points).
	ArrayName string
	// IsoValues are the contour levels in NORMALIZED [0, 1] data range;
	// every step maps them onto that step's global [min, max].
	IsoValues []float64
	// Phi are azimuth angles in degrees; Theta are elevations.
	Phi, Theta []float64
	// Width, Height size every image.
	Width, Height int
	// OutputDir receives the store: images plus index.json.
	OutputDir string
	// Map colors the surfaces by the contoured scalar.
	Map *colormap.Map
	// Stride runs the extract every Stride-th step.
	Stride int
}

// Validate checks the spec.
func (s *Spec) Validate() error {
	if s.ArrayName == "" {
		return fmt.Errorf("extracts: array name required")
	}
	if len(s.IsoValues) == 0 || len(s.Phi) == 0 || len(s.Theta) == 0 {
		return fmt.Errorf("extracts: need at least one isovalue, phi, and theta")
	}
	for _, v := range s.IsoValues {
		if v < 0 || v > 1 {
			return fmt.Errorf("extracts: isovalue %v outside normalized [0,1]", v)
		}
	}
	if s.Width <= 0 || s.Height <= 0 {
		return fmt.Errorf("extracts: invalid image size %dx%d", s.Width, s.Height)
	}
	if s.OutputDir == "" {
		return fmt.Errorf("extracts: output dir required")
	}
	return nil
}

// Entry is one image of the database.
type Entry struct {
	File  string  `json:"file"`
	Step  int     `json:"step"`
	Time  float64 `json:"time"`
	Iso   float64 `json:"iso"`
	Phi   float64 `json:"phi"`
	Theta float64 `json:"theta"`
}

// Index is the store's machine-readable catalog (the role of Cinema's
// info.json): the swept parameters and every image keyed by them.
type Index struct {
	Array   string    `json:"array"`
	Width   int       `json:"width"`
	Height  int       `json:"height"`
	Isos    []float64 `json:"isos"`
	Phis    []float64 `json:"phis"`
	Thetas  []float64 `json:"thetas"`
	Entries []Entry   `json:"entries"`
}

// Lookup finds the entry for exact (step, iso, phi, theta), if present.
func (ix *Index) Lookup(step int, iso, phi, theta float64) (Entry, bool) {
	for _, e := range ix.Entries {
		if e.Step == step && e.Iso == iso && e.Phi == phi && e.Theta == theta {
			return e, true
		}
	}
	return Entry{}, false
}

// Cinema is the extract-writing analysis adaptor.
type Cinema struct {
	Comm     *mpi.Comm
	Spec     Spec
	Registry *metrics.Registry

	index     Index
	execIndex int
}

// New builds the adaptor; the spec is validated at first Execute.
func New(c *mpi.Comm, spec Spec) *Cinema {
	if spec.Stride <= 0 {
		spec.Stride = 1
	}
	if spec.Map == nil {
		spec.Map = colormap.Viridis()
	}
	return &Cinema{Comm: c, Spec: spec}
}

// ImageCount reports the database size so far (rank 0).
func (cn *Cinema) ImageCount() int { return len(cn.index.Entries) }

func (cn *Cinema) reg() *metrics.Registry {
	if cn.Registry == nil {
		cn.Registry = metrics.NewRegistry(0)
	}
	return cn.Registry
}

// Execute implements core.AnalysisAdaptor: for every (iso, phi, theta)
// combination, extract the isosurface, render from the orbit camera,
// composite, and store the image from rank 0.
func (cn *Cinema) Execute(d core.DataAdaptor) (bool, error) {
	if err := cn.Spec.Validate(); err != nil {
		return false, err
	}
	idx := cn.execIndex
	cn.execIndex++
	if idx%cn.Spec.Stride != 0 {
		return true, nil
	}
	step := d.TimeStep()
	mesh, err := core.FetchArray(d, grid.CellData, cn.Spec.ArrayName)
	if err != nil {
		return false, err
	}
	img, ok := mesh.(*grid.ImageData)
	if !ok {
		return false, fmt.Errorf("extracts: cinema supports structured data, got %v", mesh.Kind())
	}
	// Shared scalar range and bounds.
	lo, hi, bounds, err := cn.globalRange(img)
	if err != nil {
		return false, err
	}
	if err := render.CellToPointScalars(img, cn.Spec.ArrayName); err != nil {
		return false, err
	}
	center := render.Vec3{
		(bounds[0] + bounds[1]) / 2, (bounds[2] + bounds[3]) / 2, (bounds[4] + bounds[5]) / 2,
	}
	diag := render.Vec3{bounds[1] - bounds[0], bounds[3] - bounds[2], bounds[5] - bounds[4]}.Norm()
	if diag == 0 {
		diag = 1
	}
	for _, isoN := range cn.Spec.IsoValues {
		iso := lo + isoN*(hi-lo)
		tris, err := render.Isosurface(img, cn.Spec.ArrayName, iso, "")
		if err != nil {
			return false, err
		}
		for _, phi := range cn.Spec.Phi {
			for _, theta := range cn.Spec.Theta {
				fb := render.NewFramebuffer(cn.Spec.Width, cn.Spec.Height)
				cam, err := orbitCamera(center, diag, phi, theta)
				if err != nil {
					return false, err
				}
				cm := cn.Spec.Map
				render.RenderMesh(fb, cam, tris, func(s float64) color.RGBA {
					return cm.Pseudocolor(s, lo, hi)
				})
				var final *render.Framebuffer
				cn.reg().Time("cinema::composite", step, func() {
					final, err = compositing.Composite(cn.Comm, fb, 0, compositing.BinarySwap)
				})
				if err != nil {
					return false, err
				}
				if final == nil {
					continue // not rank 0
				}
				if err := cn.store(final, step, d.Time(), isoN, phi, theta); err != nil {
					return false, err
				}
			}
		}
	}
	return true, nil
}

// orbitCamera places the eye on a sphere around the domain.
func orbitCamera(center render.Vec3, diag, phiDeg, thetaDeg float64) (*render.Camera, error) {
	phi := phiDeg * math.Pi / 180
	theta := thetaDeg * math.Pi / 180
	dir := render.Vec3{
		math.Cos(theta) * math.Cos(phi),
		math.Sin(theta),
		math.Cos(theta) * math.Sin(phi),
	}
	eye := center.Add(dir.Scale(diag * 2))
	up := render.Vec3{0, 1, 0}
	if math.Abs(dir[1]) > 0.99 {
		up = render.Vec3{1, 0, 0}
	}
	return render.NewCamera(eye, center, up, diag*1.2)
}

func (cn *Cinema) globalRange(img *grid.ImageData) (lo, hi float64, bounds [6]float64, err error) {
	arr := img.Attributes(grid.CellData).Get(cn.Spec.ArrayName)
	if arr == nil {
		return 0, 0, bounds, fmt.Errorf("extracts: mesh lacks cell array %q", cn.Spec.ArrayName)
	}
	l, h := arr.Range(0)
	lb := img.Bounds()
	recvLo := []float64{l, lb[0], lb[2], lb[4]}
	recvHi := []float64{h, lb[1], lb[3], lb[5]}
	if cn.Comm != nil {
		// One fused min/max round for the scalar range and the bounds.
		if err := mpi.AllreduceMinMax(cn.Comm, recvLo, recvHi); err != nil {
			return 0, 0, bounds, err
		}
	}
	bounds = [6]float64{recvLo[1], recvHi[1], recvLo[2], recvHi[2], recvLo[3], recvHi[3]}
	return recvLo[0], recvHi[0], bounds, nil
}

// store writes one image and records its index entry (rank 0 only).
func (cn *Cinema) store(final *render.Framebuffer, step int, time, iso, phi, theta float64) error {
	final.FillBackground(color.RGBA{R: 10, G: 10, B: 14, A: 255})
	if err := os.MkdirAll(cn.Spec.OutputDir, 0o755); err != nil {
		return fmt.Errorf("extracts: %w", err)
	}
	name := fmt.Sprintf("s%05d_i%.3f_p%06.1f_t%05.1f.png", step, iso, phi, theta)
	f, err := os.Create(filepath.Join(cn.Spec.OutputDir, name))
	if err != nil {
		return fmt.Errorf("extracts: %w", err)
	}
	var werr error
	cn.reg().Time("cinema::png", step, func() {
		_, werr = render.WritePNG(f, final, render.PNGOptions{})
	})
	if werr != nil {
		_ = f.Close() // the encode error wins
		return werr
	}
	// Close surfaces buffered write failures; the cinema index must not
	// record a frame whose bytes never landed.
	if err := f.Close(); err != nil {
		return fmt.Errorf("extracts: %w", err)
	}
	cn.index.Entries = append(cn.index.Entries, Entry{
		File: name, Step: step, Time: time, Iso: iso, Phi: phi, Theta: theta,
	})
	return nil
}

// Finalize implements core.AnalysisAdaptor: rank 0 writes index.json.
func (cn *Cinema) Finalize() error {
	if cn.Comm != nil && cn.Comm.Rank() != 0 {
		return nil
	}
	if len(cn.index.Entries) == 0 {
		return nil
	}
	cn.index.Array = cn.Spec.ArrayName
	cn.index.Width = cn.Spec.Width
	cn.index.Height = cn.Spec.Height
	cn.index.Isos = cn.Spec.IsoValues
	cn.index.Phis = cn.Spec.Phi
	cn.index.Thetas = cn.Spec.Theta
	doc, err := json.MarshalIndent(&cn.index, "", "  ")
	if err != nil {
		return fmt.Errorf("extracts: %w", err)
	}
	return os.WriteFile(filepath.Join(cn.Spec.OutputDir, "index.json"), doc, 0o644)
}

// LoadIndex reads a store's catalog for post hoc exploration.
func LoadIndex(dir string) (*Index, error) {
	doc, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		return nil, fmt.Errorf("extracts: %w", err)
	}
	var ix Index
	if err := json.Unmarshal(doc, &ix); err != nil {
		return nil, fmt.Errorf("extracts: parse index: %w", err)
	}
	return &ix, nil
}
