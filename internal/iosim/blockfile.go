package iosim

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gosensei/internal/array"
	"gosensei/internal/grid"
)

// blockHeader is the self-describing metadata of one block file.
type blockHeader struct {
	Magic   string
	Version int
	Extent  grid.Extent
	Origin  [3]float64
	Spacing [3]float64
	Step    int
	Time    float64
}

const (
	blockMagic   = "gosensei-block"
	blockVersion = 1
)

// blockArray is the serialized form of one attribute array.
type blockArray struct {
	Name   string
	Assoc  int // grid.Association
	Comps  int
	Values []float64 // AOS order
}

// blockFile is the gob payload: the real "VTK multi-file" format of this
// reproduction. Every rank writes one blockFile per step.
type blockFile struct {
	Header blockHeader
	Arrays []blockArray
}

// BlockPath names the file for one (step, rank) pair under dir.
func BlockPath(dir string, step, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("step%05d_rank%05d.blk", step, rank))
}

// WriteBlock serializes an image-data block with all its attributes.
func WriteBlock(w io.Writer, img *grid.ImageData, step int, time float64) error {
	bf := blockFile{
		Header: blockHeader{
			Magic:   blockMagic,
			Version: blockVersion,
			Extent:  img.Extent,
			Origin:  img.Origin,
			Spacing: img.Spacing,
			Step:    step,
			Time:    time,
		},
	}
	for _, assoc := range []grid.Association{grid.PointData, grid.CellData} {
		fd := img.Attributes(assoc)
		for i := 0; i < fd.Len(); i++ {
			a := fd.At(i)
			ba := blockArray{Name: a.Name(), Assoc: int(assoc), Comps: a.Components()}
			ba.Values = make([]float64, a.Tuples()*a.Components())
			for t := 0; t < a.Tuples(); t++ {
				for c := 0; c < a.Components(); c++ {
					ba.Values[t*a.Components()+c] = a.Value(t, c)
				}
			}
			bf.Arrays = append(bf.Arrays, ba)
		}
	}
	return gob.NewEncoder(w).Encode(&bf)
}

// ReadBlock deserializes a block file back into image data.
func ReadBlock(r io.Reader) (*grid.ImageData, int, float64, error) {
	var bf blockFile
	if err := gob.NewDecoder(r).Decode(&bf); err != nil {
		return nil, 0, 0, fmt.Errorf("iosim: decode block: %w", err)
	}
	if bf.Header.Magic != blockMagic {
		return nil, 0, 0, fmt.Errorf("iosim: not a block file (magic %q)", bf.Header.Magic)
	}
	if bf.Header.Version != blockVersion {
		return nil, 0, 0, fmt.Errorf("iosim: unsupported block version %d", bf.Header.Version)
	}
	img := grid.NewImageData(bf.Header.Extent)
	img.Origin = bf.Header.Origin
	img.Spacing = bf.Header.Spacing
	for _, ba := range bf.Arrays {
		a := array.WrapAOS(ba.Name, ba.Comps, ba.Values)
		img.Attributes(grid.Association(ba.Assoc)).Add(a)
	}
	return img, bf.Header.Step, bf.Header.Time, nil
}

// WriteBlockFile writes a block to its canonical path, creating dir.
// Injected failures (ENOSPC, fsync spikes — see SetFaults) are retried up to
// maxBlockAttempts times before the error is surfaced; real filesystem
// errors surface immediately.
func WriteBlockFile(dir string, rank int, img *grid.ImageData, step int, time float64) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("iosim: %w", err)
	}
	path := BlockPath(dir, step, rank)
	var lastErr error
	for attempt := 0; attempt < maxBlockAttempts; attempt++ {
		if fi := currentFaults(); fi != nil {
			act := fi.BlockWrite(rank)
			if act.Delay > 0 {
				sleepFor(act.Delay)
			}
			if act.ENOSPC {
				lastErr = fmt.Errorf("iosim: write %s: %w", path, ErrNoSpace)
				continue
			}
		}
		return writeBlockFileOnce(path, img, step, time)
	}
	return 0, fmt.Errorf("iosim: giving up on %s after %d attempts: %w", path, maxBlockAttempts, lastErr)
}

// writeBlockFileOnce is one un-retried write of the block file.
func writeBlockFileOnce(path string, img *grid.ImageData, step int, time float64) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("iosim: %w", err)
	}
	if err := WriteBlock(f, img, step, time); err != nil {
		_ = f.Close() // the write error wins
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return 0, err
	}
	// Close surfaces buffered write failures; the paper's I/O-cost numbers
	// count these bytes, so a lost block must be an error, not a guess.
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("iosim: %w", err)
	}
	return st.Size(), nil
}

// ReadBlockFile reads the block for one (step, rank) pair. An injected
// short read (the attempt sees a truncated stream) is retried up to
// maxBlockAttempts times; real errors surface immediately.
func ReadBlockFile(dir string, step, rank int) (*grid.ImageData, int, float64, error) {
	path := BlockPath(dir, step, rank)
	var lastErr error
	for attempt := 0; attempt < maxBlockAttempts; attempt++ {
		var act FaultAction
		if fi := currentFaults(); fi != nil {
			act = fi.BlockRead(rank)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("iosim: %w", err)
		}
		if act.ShortRead {
			// Serve this attempt from half the file: the gob stream ends
			// mid-value and the decode error drives the retry.
			st, serr := f.Stat()
			if serr != nil {
				_ = f.Close()
				return nil, 0, 0, fmt.Errorf("iosim: %w", serr)
			}
			_, _, _, derr := ReadBlock(io.LimitReader(f, st.Size()/2))
			_ = f.Close()
			if derr == nil {
				derr = fmt.Errorf("iosim: short read of %s decoded cleanly", path)
			}
			lastErr = fmt.Errorf("iosim: injected short read of %s: %w", path, derr)
			continue
		}
		img, st, tm, err := ReadBlock(f)
		_ = f.Close()
		return img, st, tm, err
	}
	return nil, 0, 0, fmt.Errorf("iosim: giving up on %s after %d attempts: %w", path, maxBlockAttempts, lastErr)
}

// ListSteps scans dir and returns the sorted distinct step indices present.
func ListSteps(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("iosim: %w", err)
	}
	seen := map[int]bool{}
	for _, e := range entries {
		var step, rank int
		if _, err := fmt.Sscanf(e.Name(), "step%05d_rank%05d.blk", &step, &rank); err == nil {
			seen[step] = true
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// RanksOf returns the sorted rank indices present for a step.
func RanksOf(dir string, step int) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("iosim: %w", err)
	}
	var out []int
	for _, e := range entries {
		var s, rank int
		if _, err := fmt.Sscanf(e.Name(), "step%05d_rank%05d.blk", &s, &rank); err == nil && s == step {
			out = append(out, rank)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}
