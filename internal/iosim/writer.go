package iosim

import (
	"fmt"

	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
)

func init() {
	core.RegisterFactory("vtk-writer", func(attrs core.Attrs, env *core.Env) (core.AnalysisAdaptor, error) {
		dir := attrs.String("dir", "")
		if dir == "" {
			return nil, fmt.Errorf("iosim: vtk-writer needs a dir attribute")
		}
		stride, err := attrs.Int("stride", 1)
		if err != nil {
			return nil, err
		}
		w := NewBlockWriter(env.Comm, dir)
		w.Stride = stride
		w.Registry = env.Registry
		return w, nil
	})
}

// BlockWriter is the "VTK multi-file I/O" path as a SENSEI analysis
// adaptor: every rank writes its block to its own file each (strided) step
// — the traditional post hoc producer, configurable from the same XML as
// any in situ analysis. cmd/posthoc consumes its output.
type BlockWriter struct {
	Comm *mpi.Comm
	Dir  string
	// Stride writes every Stride-th step.
	Stride   int
	Registry *metrics.Registry

	execIndex    int
	BytesWritten int64
	StepsWritten int
}

// NewBlockWriter builds a writer into dir.
func NewBlockWriter(c *mpi.Comm, dir string) *BlockWriter {
	return &BlockWriter{Comm: c, Dir: dir, Stride: 1}
}

func (w *BlockWriter) reg() *metrics.Registry {
	if w.Registry == nil {
		rank := 0
		if w.Comm != nil {
			rank = w.Comm.Rank()
		}
		w.Registry = metrics.NewRegistry(rank)
	}
	return w.Registry
}

// Execute implements core.AnalysisAdaptor: attach every available array and
// write the block file.
func (w *BlockWriter) Execute(d core.DataAdaptor) (bool, error) {
	idx := w.execIndex
	w.execIndex++
	if w.Stride > 1 && idx%w.Stride != 0 {
		return true, nil
	}
	mesh, err := d.Mesh(false)
	if err != nil {
		return false, err
	}
	for _, assoc := range []grid.Association{grid.PointData, grid.CellData} {
		names, err := d.ArrayNames(assoc)
		if err != nil {
			return false, err
		}
		for _, n := range names {
			if err := d.AddArray(mesh, assoc, n); err != nil {
				return false, err
			}
		}
	}
	img, ok := mesh.(*grid.ImageData)
	if !ok {
		return false, fmt.Errorf("iosim: vtk-writer supports structured data, got %v", mesh.Kind())
	}
	rank := 0
	if w.Comm != nil {
		rank = w.Comm.Rank()
	}
	var n int64
	w.reg().Time("vtkio::write", d.TimeStep(), func() {
		n, err = WriteBlockFile(w.Dir, rank, img, d.TimeStep(), d.Time())
	})
	if err != nil {
		return false, err
	}
	w.BytesWritten += n
	w.StepsWritten++
	return true, nil
}

// Finalize implements core.AnalysisAdaptor.
func (w *BlockWriter) Finalize() error { return nil }
