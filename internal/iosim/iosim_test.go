package iosim

import (
	"bytes"
	"math"
	"testing"

	"gosensei/internal/array"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/machine"
	"gosensei/internal/mpi"
	"gosensei/internal/oscillator"
)

const gib = int64(1) << 30

func TestModelTable1Shapes(t *testing.T) {
	// Table 1: at every scale, file-per-process ("VTK I/O") beats collective
	// MPI-IO, and both grow with data size.
	m := NewModel(machine.Cori().IO, 1)
	cases := []struct {
		writers int
		bytes   int64
	}{
		{812, 2 * gib},
		{6496, 16 * gib},
		{45440, 123 * gib},
	}
	var prevFPP, prevMPI float64
	for _, tc := range cases {
		fpp := m.WriteTime(FilePerProcess, tc.writers, tc.bytes)
		mpiio := m.WriteTime(CollectiveMPIIO, tc.writers, tc.bytes)
		if fpp >= mpiio {
			t.Errorf("writers=%d: file-per-process (%.2fs) should beat MPI-IO (%.2fs)", tc.writers, fpp, mpiio)
		}
		if fpp <= prevFPP || mpiio <= prevMPI {
			t.Errorf("writers=%d: write time should grow with size", tc.writers)
		}
		prevFPP, prevMPI = fpp, mpiio
	}
	// Magnitude check against the paper's 45K row (9.05 s and 22.87 s): our
	// model should land within a factor of two.
	fpp := m.WriteTime(FilePerProcess, 45440, 123*gib)
	mpiio := m.WriteTime(CollectiveMPIIO, 45440, 123*gib)
	if fpp < 4.5 || fpp > 18 {
		t.Errorf("45K FPP write %.2fs not within 2x of the paper's 9.05s", fpp)
	}
	if mpiio < 11 || mpiio > 46 {
		t.Errorf("45K MPI-IO write %.2fs not within 2x of the paper's 22.87s", mpiio)
	}
}

func TestModelDeterministicPerSeed(t *testing.T) {
	a := NewModel(machine.Cori().IO, 42)
	b := NewModel(machine.Cori().IO, 42)
	for i := 0; i < 5; i++ {
		if a.ReadTime(100, gib) != b.ReadTime(100, gib) {
			t.Fatal("same seed, different timings")
		}
	}
	c := NewModel(machine.Cori().IO, 43)
	same := true
	a2 := NewModel(machine.Cori().IO, 42)
	for i := 0; i < 5; i++ {
		if a2.ReadTime(100, gib) != c.ReadTime(100, gib) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical noise")
	}
}

func TestReadVariability(t *testing.T) {
	// Fig. 11: reads show significant variability. The log-normal spread
	// over repeated reads must exceed a few percent.
	m := NewModel(machine.Cori().IO, 7)
	var lo, hi float64 = math.Inf(1), 0
	for i := 0; i < 40; i++ {
		v := m.ReadTime(4545, 123*gib)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi/lo < 1.3 {
		t.Fatalf("read variability too small: %.2fx", hi/lo)
	}
}

func TestPlotfileWriteGrowsWithVars(t *testing.T) {
	m := NewModel(machine.Cori().IO, 1)
	one := m.PlotfileWriteTime(512, 4*gib, 1)
	eight := m.PlotfileWriteTime(512, 4*gib, 8)
	if eight < 6*one {
		t.Fatalf("8 variables (%.1fs) should cost ~8x one (%.1fs)", eight, one)
	}
}

func buildBlock() *grid.ImageData {
	img := grid.NewImageData(grid.Extent{2, 5, 0, 3, 1, 2})
	img.Origin = [3]float64{0.5, 0, -1}
	img.Spacing = [3]float64{1, 2, 1}
	nc := img.NumberOfCells()
	vals := make([]float64, nc)
	for i := range vals {
		vals[i] = float64(i) * 1.5
	}
	img.Attributes(grid.CellData).Add(array.WrapAOS("data", 1, vals))
	np := img.NumberOfPoints()
	pvals := make([]float64, np*3)
	for i := range pvals {
		pvals[i] = -float64(i)
	}
	img.Attributes(grid.PointData).Add(array.WrapAOS("velocity", 3, pvals))
	return img
}

func TestBlockRoundTrip(t *testing.T) {
	img := buildBlock()
	var buf bytes.Buffer
	if err := WriteBlock(&buf, img, 7, 0.35); err != nil {
		t.Fatal(err)
	}
	got, step, tm, err := ReadBlock(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if step != 7 || tm != 0.35 {
		t.Fatalf("step=%d time=%v", step, tm)
	}
	if got.Extent != img.Extent || got.Origin != img.Origin || got.Spacing != img.Spacing {
		t.Fatal("geometry lost")
	}
	a := got.Attributes(grid.CellData).Get("data")
	if a == nil || a.Tuples() != img.NumberOfCells() {
		t.Fatal("cell data lost")
	}
	for i := 0; i < a.Tuples(); i++ {
		if a.Value(i, 0) != float64(i)*1.5 {
			t.Fatalf("cell %d = %v", i, a.Value(i, 0))
		}
	}
	v := got.Attributes(grid.PointData).Get("velocity")
	if v == nil || v.Components() != 3 {
		t.Fatal("point data lost")
	}
	if v.Value(1, 2) != -5 {
		t.Fatalf("velocity(1,2)=%v", v.Value(1, 2))
	}
}

func TestReadBlockRejectsGarbage(t *testing.T) {
	if _, _, _, err := ReadBlock(bytes.NewReader([]byte("not a block"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestBlockFilesOnDisk(t *testing.T) {
	dir := t.TempDir()
	img := buildBlock()
	n, err := WriteBlockFile(dir, 3, img, 12, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("zero-size file")
	}
	if _, err := WriteBlockFile(dir, 4, img, 12, 1.2); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteBlockFile(dir, 3, img, 13, 1.3); err != nil {
		t.Fatal(err)
	}
	got, step, _, err := ReadBlockFile(dir, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if step != 12 || got.NumberOfCells() != img.NumberOfCells() {
		t.Fatal("round trip via disk failed")
	}
	steps, err := ListSteps(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 || steps[0] != 12 || steps[1] != 13 {
		t.Fatalf("steps=%v", steps)
	}
	ranks, err := RanksOf(dir, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 2 || ranks[0] != 3 || ranks[1] != 4 {
		t.Fatalf("ranks=%v", ranks)
	}
	if _, _, _, err := ReadBlockFile(dir, 99, 0); err == nil {
		t.Fatal("missing file read succeeded")
	}
}

func TestPatternString(t *testing.T) {
	if FilePerProcess.String() != "vtk-multi-file" || CollectiveMPIIO.String() != "mpi-io-collective" {
		t.Fatal("pattern names wrong")
	}
}

func TestBlockWriterAdaptor(t *testing.T) {
	dir := t.TempDir()
	cfg := oscillator.Config{
		GlobalCells: [3]int{8, 8, 8}, DT: 0.1, Steps: 4,
		Oscillators: oscillator.DefaultDeck(8),
	}
	err := mpi.Run(2, func(c *mpi.Comm) error {
		s, err := oscillator.NewSim(c, cfg, nil)
		if err != nil {
			return err
		}
		b := core.NewBridge(c, nil, nil)
		doc := []byte(`<sensei><analysis type="vtk-writer" dir="` + dir + `" stride="2"/></sensei>`)
		if err := core.ConfigureFromXML(b, doc); err != nil {
			return err
		}
		d := oscillator.NewDataAdaptor(s)
		for i := 0; i < cfg.Steps; i++ {
			if err := s.Step(); err != nil {
				return err
			}
			d.Update()
			if _, err := b.Execute(d); err != nil {
				return err
			}
		}
		return b.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	steps, err := ListSteps(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Stride 2 over execute-indexes 0..3 -> steps 1 and 3 written.
	if len(steps) != 2 {
		t.Fatalf("steps=%v", steps)
	}
	ranks, err := RanksOf(dir, steps[0])
	if err != nil || len(ranks) != 2 {
		t.Fatalf("ranks=%v err=%v", ranks, err)
	}
	// Files round-trip through the post hoc reader.
	img, _, _, err := ReadBlockFile(dir, steps[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if img.Attributes(grid.CellData).Get("data") == nil {
		t.Fatal("written block lacks the data array")
	}
}

func TestBurstBufferAcceleratesWrites(t *testing.T) {
	// The paper's future-work scenario: staging to Cori's burst buffer must
	// beat both filesystem paths by a wide margin at 45K scale.
	m := NewModel(machine.Cori().IO, 3)
	bb, ok := m.BurstBufferWriteTime(45440, 123*gib)
	if !ok {
		t.Fatal("Cori model should expose a burst buffer")
	}
	fpp := m.WriteTime(FilePerProcess, 45440, 123*gib)
	if bb >= fpp/5 {
		t.Fatalf("burst buffer write %.2fs should be >=5x faster than Lustre FPP %.2fs", bb, fpp)
	}
	// Machines without the tier report absence.
	if _, ok := NewModel(machine.Mira().IO, 1).BurstBufferWriteTime(100, gib); ok {
		t.Fatal("Mira has no burst buffer")
	}
}
