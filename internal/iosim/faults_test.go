package iosim

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// scriptedIO fails scripted write/read attempts, keyed by cumulative
// per-rank attempt counters — a miniature of internal/faultline's IOPlan,
// local to this package so the injection seam is tested where it lives.
type scriptedIO struct {
	mu          sync.Mutex
	writes      map[int]int
	reads       map[int]int
	failWrites  func(rank, attempt int) FaultAction
	failReads   func(rank, attempt int) FaultAction
	writeEvents int
	readEvents  int
}

func (s *scriptedIO) BlockWrite(rank int) FaultAction {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writes == nil {
		s.writes = map[int]int{}
	}
	s.writes[rank]++
	s.writeEvents++
	if s.failWrites == nil {
		return FaultAction{}
	}
	return s.failWrites(rank, s.writes[rank])
}

func (s *scriptedIO) BlockRead(rank int) FaultAction {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reads == nil {
		s.reads = map[int]int{}
	}
	s.reads[rank]++
	s.readEvents++
	if s.failReads == nil {
		return FaultAction{}
	}
	return s.failReads(rank, s.reads[rank])
}

func TestWriteBlockFileRetriesInjectedENOSPC(t *testing.T) {
	dir := t.TempDir()
	inj := &scriptedIO{failWrites: func(rank, attempt int) FaultAction {
		// Attempts 1 and 2 hit a full OST; attempt 3 lands.
		return FaultAction{ENOSPC: attempt <= 2}
	}}
	prev := SetFaults(inj)
	defer SetFaults(prev)

	img := buildBlock()
	size, err := WriteBlockFile(dir, 0, img, 3, 0.5)
	if err != nil {
		t.Fatalf("write with 2 injected failures must succeed: %v", err)
	}
	if size <= 0 {
		t.Fatalf("size = %d", size)
	}
	if inj.writes[0] != 3 {
		t.Fatalf("attempts = %d, want 3", inj.writes[0])
	}
	// The landed block must be byte-for-byte readable.
	got, step, tm, err := ReadBlockFile(dir, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if step != 3 || tm != 0.5 || got.Extent != img.Extent {
		t.Fatalf("round trip lost data: step=%d time=%v", step, tm)
	}
}

func TestWriteBlockFileGivesUpAfterBudget(t *testing.T) {
	dir := t.TempDir()
	inj := &scriptedIO{failWrites: func(rank, attempt int) FaultAction {
		return FaultAction{ENOSPC: true}
	}}
	prev := SetFaults(inj)
	defer SetFaults(prev)

	_, err := WriteBlockFile(dir, 1, buildBlock(), 0, 0)
	if err == nil || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace after exhausted budget, got %v", err)
	}
	if !strings.Contains(err.Error(), "after 4 attempts") {
		t.Fatalf("error must name the attempt budget: %v", err)
	}
	if inj.writes[1] != maxBlockAttempts {
		t.Fatalf("attempts = %d, want %d", inj.writes[1], maxBlockAttempts)
	}
}

func TestReadBlockFileRetriesInjectedShortRead(t *testing.T) {
	dir := t.TempDir()
	img := buildBlock()
	if _, err := WriteBlockFile(dir, 2, img, 1, 0.25); err != nil {
		t.Fatal(err)
	}
	inj := &scriptedIO{failReads: func(rank, attempt int) FaultAction {
		return FaultAction{ShortRead: attempt == 1}
	}}
	prev := SetFaults(inj)
	defer SetFaults(prev)

	got, step, tm, err := ReadBlockFile(dir, 1, 2)
	if err != nil {
		t.Fatalf("read with 1 injected short read must succeed: %v", err)
	}
	if step != 1 || tm != 0.25 || got.Extent != img.Extent {
		t.Fatalf("round trip lost data: step=%d time=%v", step, tm)
	}
	if inj.reads[2] != 2 {
		t.Fatalf("attempts = %d, want 2", inj.reads[2])
	}
}

func TestWriteBlockFileFsyncDelay(t *testing.T) {
	dir := t.TempDir()
	inj := &scriptedIO{failWrites: func(rank, attempt int) FaultAction {
		return FaultAction{Delay: 20 * time.Millisecond}
	}}
	prev := SetFaults(inj)
	defer SetFaults(prev)

	start := time.Now()
	if _, err := WriteBlockFile(dir, 0, buildBlock(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("fsync spike not applied: %v", el)
	}
}

func TestNoInjectorMeansNoFaultCalls(t *testing.T) {
	prev := SetFaults(nil)
	defer SetFaults(prev)
	dir := t.TempDir()
	if _, err := WriteBlockFile(dir, 0, buildBlock(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadBlockFile(dir, 0, 0); err != nil {
		t.Fatal(err)
	}
}
