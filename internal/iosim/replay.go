package iosim

import (
	"fmt"

	"gosensei/internal/analysis"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/mpi"
)

// HistogramReplay is the post hoc route for a routed histogram analysis:
// Execute writes every rank's block to Dir (the traditional file-per-process
// producer, same format as BlockWriter) and immediately replays the step —
// rank 0 reads all blocks back and computes the histogram serially — so a
// routed pipeline's analysis output stays complete no matter which steps the
// router sent through storage. The serial replay is bit-identical to the in
// situ histogram because min/max and int64 count reductions are exact and
// the binning kernel is shared (the property posthocRun's metamorphic suite
// already pins).
type HistogramReplay struct {
	Comm *mpi.Comm
	Dir  string
	// ArrayName, Assoc, Bins mirror analysis.NewHistogram's parameters.
	ArrayName string
	Assoc     grid.Association
	Bins      int

	// Results accumulates the replayed per-step results (rank 0 only).
	Results []*analysis.HistogramResult
	// Last is the most recent replayed result (rank 0 only).
	Last *analysis.HistogramResult
	// BytesWritten is the cumulative storage odometer: the total bytes all
	// ranks wrote, identical on every rank (it is agreed collectively), so
	// a StepMeter can difference it for per-step storage cost.
	BytesWritten int64
	// StepsWritten counts replayed steps.
	StepsWritten int
}

// NewHistogramReplay builds the post hoc route writing into dir.
func NewHistogramReplay(c *mpi.Comm, dir, array string, assoc grid.Association, bins int) *HistogramReplay {
	return &HistogramReplay{Comm: c, Dir: dir, ArrayName: array, Assoc: assoc, Bins: bins}
}

// Execute implements core.AnalysisAdaptor: write this rank's block, agree on
// the step's storage bytes (which doubles as the write barrier), then replay
// the step serially on rank 0.
func (r *HistogramReplay) Execute(d core.DataAdaptor) (bool, error) {
	mesh, err := core.FetchArray(d, r.Assoc, r.ArrayName)
	if err != nil {
		return false, err
	}
	img, ok := mesh.(*grid.ImageData)
	if !ok {
		return false, fmt.Errorf("iosim: histogram replay supports structured data, got %v", mesh.Kind())
	}
	rank, size := 0, 1
	if r.Comm != nil {
		rank, size = r.Comm.Rank(), r.Comm.Size()
	}
	n, err := WriteBlockFile(r.Dir, rank, img, d.TimeStep(), d.Time())
	if err != nil {
		return false, err
	}
	total := n
	if r.Comm != nil && size > 1 {
		// The sum-reduce both totals the step's bytes and guarantees every
		// rank's block is on disk before the read-back below.
		recv := make([]int64, 1)
		if err := mpi.Allreduce(r.Comm, []int64{n}, recv, mpi.OpSum); err != nil {
			return false, err
		}
		total = recv[0]
	}
	r.BytesWritten += total
	r.StepsWritten++

	if rank == 0 {
		mb := &grid.MultiBlock{}
		for rk := 0; rk < size; rk++ {
			blk, _, _, err := ReadBlockFile(r.Dir, d.TimeStep(), rk)
			if err != nil {
				return false, fmt.Errorf("iosim: replay step %d rank %d: %w", d.TimeStep(), rk, err)
			}
			mb.Blocks = append(mb.Blocks, blk)
		}
		h := analysis.NewHistogram(nil, r.ArrayName, r.Assoc, r.Bins)
		res, err := h.Compute(d.TimeStep(), mb)
		if err != nil {
			return false, err
		}
		r.Last = res
		r.Results = append(r.Results, res)
	}
	return true, nil
}

// Finalize implements core.AnalysisAdaptor.
func (r *HistogramReplay) Finalize() error { return nil }
