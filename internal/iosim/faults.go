package iosim

import (
	"errors"
	"sync"
	"time"
)

// ErrNoSpace is the error injected write attempts fail with — the ENOSPC a
// full OST returns on a real parallel filesystem.
var ErrNoSpace = errors.New("iosim: injected ENOSPC (no space left on device)")

// FaultAction is what the injector decides for one block-file attempt; the
// zero value is "no fault".
type FaultAction struct {
	// ENOSPC fails a write attempt before any byte reaches the filesystem.
	ENOSPC bool
	// ShortRead truncates a read attempt mid-stream (the file itself stays
	// intact — only this attempt sees half of it).
	ShortRead bool
	// Delay stalls the attempt first: an fsync latency spike.
	Delay time.Duration
}

// FaultInjector is consulted once per block-file attempt, keyed by the block
// rank. Implementations must be safe for concurrent use (ranks write in
// parallel); see internal/faultline.
type FaultInjector interface {
	BlockWrite(rank int) FaultAction
	BlockRead(rank int) FaultAction
}

// faultsMu guards the process-wide injector. Block-file traffic is a few
// calls per rank per step, so a mutex-guarded pointer read is free at this
// granularity and keeps the disabled path allocation-free.
var (
	faultsMu sync.Mutex
	faults   FaultInjector
)

// SetFaults installs (or, with nil, clears) the process-wide block-file
// fault injector and returns the previous one; callers restore it when their
// run ends.
func SetFaults(fi FaultInjector) FaultInjector {
	faultsMu.Lock()
	prev := faults
	faults = fi
	faultsMu.Unlock()
	return prev
}

func currentFaults() FaultInjector {
	faultsMu.Lock()
	fi := faults
	faultsMu.Unlock()
	return fi
}

// sleepFor stalls an attempt; a named helper because the block-file
// functions shadow the time package with their simulation-time parameter.
func sleepFor(d time.Duration) { time.Sleep(d) }

// maxBlockAttempts bounds the retry loop around one block-file operation.
// Injected failures burn attempts; a schedule that keeps consecutive
// failures below the budget is tolerated by contract (the block lands and
// the analysis output is unchanged), one that exhausts it is a hard error.
const maxBlockAttempts = 4
