// Package iosim provides the storage layer of the reproduction: a
// performance model of a Lustre-class parallel filesystem (for the paper's
// at-scale I/O numbers) and a real, self-describing block file format (for
// the post hoc pipeline actually executed in tests and examples).
//
// Substitution note (see DESIGN.md): the paper measured writes/reads on
// NERSC's 30 PB Lustre system. No such system exists here, so at-scale
// timings come from a first-order model — metadata serialization plus
// bandwidth sharing with seeded log-normal variability — while the file
// format and the post hoc read-process-write pipeline are real code paths
// exercised end to end on small data.
package iosim

import (
	"math"
	"math/rand"

	"gosensei/internal/machine"
)

// Pattern selects a write strategy.
type Pattern int

// Write patterns, matching the paper's Table 1 comparison.
const (
	// FilePerProcess is the "VTK multi-file" path: every rank writes its own
	// file. Fast streaming, but pays a serialized metadata cost per file.
	FilePerProcess Pattern = iota
	// CollectiveMPIIO is the "vanilla MPI collective I/O" path
	// (MPI_File_write_all on a subarray view with recommended striping):
	// a single shared file at the filesystem's collective bandwidth.
	CollectiveMPIIO
)

func (p Pattern) String() string {
	if p == FilePerProcess {
		return "vtk-multi-file"
	}
	return "mpi-io-collective"
}

// Model predicts I/O times for a machine's filesystem. Variability is
// deterministic per (seed, operation index).
type Model struct {
	IO machine.IOSystem
	// Seed drives the variability stream; runs with equal seeds reproduce
	// identical "noise".
	Seed int64

	op  int64
	rng *rand.Rand
}

// NewModel builds a model over a machine's I/O system.
func NewModel(io machine.IOSystem, seed int64) *Model {
	return &Model{IO: io, Seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// jitter returns a multiplicative log-normal factor with the given sigma.
func (m *Model) jitter(sigma float64) float64 {
	m.op++
	if sigma <= 0 {
		return 1
	}
	return math.Exp(m.rng.NormFloat64()*sigma - sigma*sigma/2)
}

// WriteTime predicts one write of totalBytes from nWriters ranks.
func (m *Model) WriteTime(p Pattern, nWriters int, totalBytes int64) float64 {
	switch p {
	case FilePerProcess:
		// Metadata: file creates serialize at the MDS.
		meta := float64(nWriters) * m.IO.MetadataOpSeconds
		// Transfer: aggregate streaming bandwidth, but OSTs saturate; with
		// few writers the job cannot drive the full rate.
		bw := math.Min(m.IO.FilePerProcessBandwidth, float64(nWriters)*m.IO.OSTBandwidth/4)
		t := meta + float64(totalBytes)/bw
		return t * m.jitter(0.08)
	case CollectiveMPIIO:
		// Two-phase I/O: an aggregation exchange (cheap relative to disk)
		// then the shared-file write at collective bandwidth.
		agg := float64(totalBytes) / (8e9 * math.Sqrt(float64(nWriters))) // network shuffle
		t := agg + float64(totalBytes)/m.IO.CollectiveBandwidth
		return t * m.jitter(0.08)
	}
	panic("iosim: unknown pattern")
}

// ReadTime predicts a post hoc read of totalBytes by nReaders ranks.
// Post hoc jobs are small (the paper uses 10% of the write cores) and share
// the filesystem with other tenants, so variability is high.
func (m *Model) ReadTime(nReaders int, totalBytes int64) float64 {
	bw := math.Min(m.IO.ReadBandwidth, float64(nReaders)*m.IO.OSTBandwidth/2)
	t := float64(nReaders)*m.IO.MetadataOpSeconds + float64(totalBytes)/bw
	return t * m.jitter(m.IO.ReadSigma)
}

// PlotfileWriteTime predicts writing a multi-variable plot file, the Nyx
// §4.2.3 workload: nVars full-resolution fields of gridBytes each, written
// collectively.
func (m *Model) PlotfileWriteTime(nWriters int, gridBytes int64, nVars int) float64 {
	return m.WriteTime(CollectiveMPIIO, nWriters, gridBytes*int64(nVars))
}

// BurstBufferWriteTime predicts one step written to the machine's burst
// buffer tier instead of the parallel filesystem — the "accelerated staging
// operations" the paper's conclusion anticipates. The application blocks
// only for the absorb phase; the tier drains to the filesystem
// asynchronously. Returns an error-free zero when no burst buffer exists.
func (m *Model) BurstBufferWriteTime(nWriters int, totalBytes int64) (float64, bool) {
	if m.IO.BurstBufferBandwidth <= 0 {
		return 0, false
	}
	// SSD-tier absorb: near-line-rate streaming, negligible metadata.
	t := float64(totalBytes)/m.IO.BurstBufferBandwidth + float64(nWriters)*1e-6
	return t * m.jitter(0.03), true
}
