package analysis

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
)

func init() {
	core.RegisterFactory("compress", func(attrs core.Attrs, env *core.Env) (core.AnalysisAdaptor, error) {
		bits, err := attrs.Int("bits", 12)
		if err != nil {
			return nil, err
		}
		assoc := grid.CellData
		if attrs.String("association", "cell") == "point" {
			assoc = grid.PointData
		}
		c := NewCompression(env.Comm, attrs.String("array", "data"), assoc, bits)
		c.Memory = env.Memory
		return c, nil
	})
}

// CompressionResult summarizes one compressed step (valid on rank 0).
type CompressionResult struct {
	Step int
	// RawBytes and CompressedBytes are global sums.
	RawBytes        int64
	CompressedBytes int64
	// MaxError is the global maximum absolute reconstruction error.
	MaxError float64
	// Ratio is RawBytes / CompressedBytes.
	Ratio float64
}

// Compression is the "compression" member of the paper's SDMAV operation
// list: an in situ, error-bounded reduction of one scalar field. Each rank
// quantizes its local values to Bits bits over the global range (giving a
// hard error bound of half a quantization step) and deflates the quantized
// stream; the compressed extract — not the field — is what a post hoc
// workflow would store.
type Compression struct {
	Comm      *mpi.Comm
	ArrayName string
	Assoc     grid.Association
	// Bits per value after quantization (1..32).
	Bits int
	// Memory, when set, accounts for the compressed buffer.
	Memory *metrics.Tracker

	// Last holds the most recent result (rank 0; every rank when Comm nil).
	Last *CompressionResult
	// KeepPayload retains the last compressed payload for decompression
	// (tests and extract writers); off by default to stay memory-light.
	KeepPayload bool
	payload     []byte
	lo, hi      float64
	n           int
}

// NewCompression builds the analysis.
func NewCompression(c *mpi.Comm, name string, assoc grid.Association, bits int) *Compression {
	if bits < 1 || bits > 32 {
		panic(fmt.Sprintf("analysis: compression bits must be in [1,32], got %d", bits))
	}
	return &Compression{Comm: c, ArrayName: name, Assoc: assoc, Bits: bits}
}

// ErrorBound returns the guaranteed maximum absolute error for a given
// global range.
func (cp *Compression) ErrorBound(lo, hi float64) float64 {
	levels := float64(uint64(1)<<cp.Bits - 1)
	if levels == 0 {
		return hi - lo
	}
	return (hi - lo) / levels / 2
}

// Execute implements core.AnalysisAdaptor.
func (cp *Compression) Execute(d core.DataAdaptor) (bool, error) {
	mesh, err := core.FetchArray(d, cp.Assoc, cp.ArrayName)
	if err != nil {
		return false, err
	}
	sources, err := ScalarSources(mesh, cp.Assoc, cp.ArrayName)
	if err != nil {
		return false, fmt.Errorf("analysis: compression: %w", err)
	}
	// Global range (one fused min/max reduction, like the histogram).
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, src := range sources {
		for i := 0; i < src.Values.Tuples(); i++ {
			v := src.Values.Value(i, 0)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if cp.Comm != nil {
		gLo, gHi := []float64{lo}, []float64{hi}
		if err := mpi.AllreduceMinMax(cp.Comm, gLo, gHi); err != nil {
			return false, err
		}
		lo, hi = gLo[0], gHi[0]
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 0
	}

	// Quantize to Bits bits and measure the true reconstruction error.
	levels := uint64(1)<<cp.Bits - 1
	span := hi - lo
	maxErr := 0.0
	var quant bytes.Buffer
	scratch := make([]byte, 4)
	n := 0
	for _, src := range sources {
		for i := 0; i < src.Values.Tuples(); i++ {
			v := src.Values.Value(i, 0)
			var q uint64
			if span > 0 {
				q = uint64(math.Round((v - lo) / span * float64(levels)))
			}
			recon := lo
			if levels > 0 {
				recon = lo + float64(q)/float64(levels)*span
			}
			if e := math.Abs(recon - v); e > maxErr {
				maxErr = e
			}
			binary.LittleEndian.PutUint32(scratch, uint32(q))
			quant.Write(scratch[:4]) // byte-aligned storage; deflate removes the slack
			n++
		}
	}
	var compressed bytes.Buffer
	zw := zlib.NewWriter(&compressed)
	if _, err := zw.Write(quant.Bytes()); err != nil {
		return false, err
	}
	if err := zw.Close(); err != nil {
		return false, err
	}
	if cp.Memory != nil {
		cp.Memory.FreeAll("compress/payload")
		cp.Memory.Alloc("compress/payload", int64(compressed.Len()))
	}
	if cp.KeepPayload {
		cp.payload = compressed.Bytes()
		cp.lo, cp.hi, cp.n = lo, hi, n
	}

	raw := int64(n) * 8
	comp := int64(compressed.Len())
	res := &CompressionResult{Step: d.TimeStep(), RawBytes: raw, CompressedBytes: comp, MaxError: maxErr}
	if cp.Comm != nil {
		out := make([]int64, 2)
		if err := mpi.Allreduce(cp.Comm, []int64{raw, comp}, out, mpi.OpSum); err != nil {
			return false, err
		}
		res.RawBytes, res.CompressedBytes = out[0], out[1]
		e := make([]float64, 1)
		if err := mpi.Allreduce(cp.Comm, []float64{maxErr}, e, mpi.OpMax); err != nil {
			return false, err
		}
		res.MaxError = e[0]
	}
	if res.CompressedBytes > 0 {
		res.Ratio = float64(res.RawBytes) / float64(res.CompressedBytes)
	}
	if cp.Comm == nil || cp.Comm.Rank() == 0 {
		cp.Last = res
	}
	return true, nil
}

// Decompress reconstructs the local values of the last kept payload.
func (cp *Compression) Decompress() ([]float64, error) {
	if cp.payload == nil {
		return nil, fmt.Errorf("analysis: compression: no payload kept (set KeepPayload)")
	}
	zr, err := zlib.NewReader(bytes.NewReader(cp.payload))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	levels := uint64(1)<<cp.Bits - 1
	span := cp.hi - cp.lo
	out := make([]float64, cp.n)
	buf := make([]byte, 4)
	for i := range out {
		if _, err := io.ReadFull(zr, buf); err != nil {
			return nil, err
		}
		q := uint64(binary.LittleEndian.Uint32(buf))
		out[i] = cp.lo
		if levels > 0 {
			out[i] = cp.lo + float64(q)/float64(levels)*span
		}
	}
	return out, nil
}

// Finalize implements core.AnalysisAdaptor.
func (cp *Compression) Finalize() error {
	if cp.Memory != nil {
		cp.Memory.FreeAll("compress/payload")
	}
	return nil
}
