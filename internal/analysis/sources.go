package analysis

import (
	"fmt"

	"gosensei/internal/array"
	"gosensei/internal/grid"
)

// ScalarSource is one (values, ghost) pair an analysis iterates. Ghost is
// nil when the dataset carries no vtkGhostLevels array.
type ScalarSource struct {
	Values array.Array
	Ghost  array.Array
}

// ScalarSources resolves the named array (plus any ghost array) from a
// dataset, flattening MultiBlock collections into one source per local
// block. Analyses written against this helper work identically on a single
// block, a fan-in staged MultiBlock, or a post hoc merged container.
func ScalarSources(mesh grid.Dataset, assoc grid.Association, name string) ([]ScalarSource, error) {
	if mb, ok := mesh.(*grid.MultiBlock); ok {
		var out []ScalarSource
		for _, b := range mb.Blocks {
			if b == nil {
				continue
			}
			sub, err := ScalarSources(b, assoc, name)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("no block has %s array %q", assoc, name)
		}
		return out, nil
	}
	a := mesh.Attributes(assoc).Get(name)
	if a == nil {
		return nil, fmt.Errorf("mesh has no %s array %q", assoc, name)
	}
	return []ScalarSource{{Values: a, Ghost: mesh.Attributes(assoc).Get(grid.GhostArrayName)}}, nil
}

// TotalTuples sums the tuple counts over sources.
func TotalTuples(sources []ScalarSource) int {
	n := 0
	for _, s := range sources {
		n += s.Values.Tuples()
	}
	return n
}
