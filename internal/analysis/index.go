package analysis

import (
	"fmt"
	"math"

	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
)

func init() {
	core.RegisterFactory("index", func(attrs core.Attrs, env *core.Env) (core.AnalysisAdaptor, error) {
		bins, err := attrs.Int("bins", 32)
		if err != nil {
			return nil, err
		}
		assoc := grid.CellData
		if attrs.String("association", "cell") == "point" {
			assoc = grid.PointData
		}
		ix := NewBinnedIndex(env.Comm, attrs.String("array", "data"), assoc, bins)
		ix.Memory = env.Memory
		return ix, nil
	})
}

// BinnedIndex is an in situ indexing method in the FastBit tradition: while
// the data is still in memory, each rank builds a binned bitmap index of one
// scalar — per bin, a bitmap of the local elements whose value falls in the
// bin — so that *post hoc* range queries ("which cells exceed t?") touch
// only the bins straddling the threshold instead of rescanning the field.
// Indexing is one of the SDMAV operations the paper's terminology section
// lists alongside visualization and compression.
//
// The index for the most recent step is kept; Query answers selection
// cardinality and can enumerate local element ids exactly.
type BinnedIndex struct {
	Comm      *mpi.Comm
	ArrayName string
	Assoc     grid.Association
	Bins      int
	// Memory, when set, accounts for the bitmaps.
	Memory *metrics.Tracker

	// Per-step state (local).
	lo, hi  float64
	bitmaps [][]uint64 // bins x ceil(n/64)
	n       int
	step    int
	built   bool
}

// NewBinnedIndex builds the analysis over the named array.
func NewBinnedIndex(c *mpi.Comm, name string, assoc grid.Association, bins int) *BinnedIndex {
	if bins <= 0 {
		panic(fmt.Sprintf("analysis: index bins must be positive, got %d", bins))
	}
	return &BinnedIndex{Comm: c, ArrayName: name, Assoc: assoc, Bins: bins}
}

// Execute implements core.AnalysisAdaptor: rebuild the index for the step.
func (ix *BinnedIndex) Execute(d core.DataAdaptor) (bool, error) {
	mesh, err := core.FetchArray(d, ix.Assoc, ix.ArrayName)
	if err != nil {
		return false, err
	}
	sources, err := ScalarSources(mesh, ix.Assoc, ix.ArrayName)
	if err != nil {
		return false, fmt.Errorf("analysis: index: %w", err)
	}
	// Global range via the usual two reductions.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, src := range sources {
		for i := 0; i < src.Values.Tuples(); i++ {
			if src.Ghost != nil && src.Ghost.Value(i, 0) != 0 {
				continue
			}
			v := src.Values.Value(i, 0)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if ix.Comm != nil {
		gLo, gHi := []float64{lo}, []float64{hi}
		if err := mpi.AllreduceMinMax(ix.Comm, gLo, gHi); err != nil {
			return false, err
		}
		lo, hi = gLo[0], gHi[0]
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 0
	}

	n := TotalTuples(sources)
	words := (n + 63) / 64
	if ix.Memory != nil && ix.built {
		ix.Memory.FreeAll("index/bitmaps")
	}
	ix.bitmaps = make([][]uint64, ix.Bins)
	for b := range ix.bitmaps {
		ix.bitmaps[b] = make([]uint64, words)
	}
	if ix.Memory != nil {
		ix.Memory.Alloc("index/bitmaps", int64(ix.Bins)*int64(words)*8)
	}
	width := (hi - lo) / float64(ix.Bins)
	pos := 0
	for _, src := range sources {
		for i := 0; i < src.Values.Tuples(); i++ {
			idx := pos
			pos++
			if src.Ghost != nil && src.Ghost.Value(i, 0) != 0 {
				continue // ghosts never set a bit: queries see each cell once
			}
			b := 0
			if width > 0 {
				b = int((src.Values.Value(i, 0) - lo) / width)
				if b >= ix.Bins {
					b = ix.Bins - 1
				}
				if b < 0 {
					b = 0
				}
			}
			ix.bitmaps[b][idx/64] |= 1 << (idx % 64)
		}
	}
	ix.lo, ix.hi, ix.n, ix.step, ix.built = lo, hi, n, d.TimeStep(), true
	return true, nil
}

// popcount sums the set bits of a bitmap.
func popcount(bm []uint64) int64 {
	var n int64
	for _, w := range bm {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// binOf returns the bin containing value v.
func (ix *BinnedIndex) binOf(v float64) int {
	if ix.hi <= ix.lo {
		return 0
	}
	b := int((v - ix.lo) / (ix.hi - ix.lo) * float64(ix.Bins))
	if b < 0 {
		b = 0
	}
	if b >= ix.Bins {
		b = ix.Bins - 1
	}
	return b
}

// CountAbove answers the global range query "how many elements exceed t"
// using the index: whole bins above the threshold bin are counted by bitmap
// popcount; only the single straddling bin would need a candidate check, so
// the result is reported as [lower, upper] bounds, FastBit-style. A global
// sum reduces the local bounds; valid on every rank.
func (ix *BinnedIndex) CountAbove(t float64) (lower, upper int64, err error) {
	if !ix.built {
		return 0, 0, fmt.Errorf("analysis: index: no step indexed yet")
	}
	tb := ix.binOf(t)
	var lowerL, upperL int64
	for b := tb + 1; b < ix.Bins; b++ {
		c := popcount(ix.bitmaps[b])
		lowerL += c
		upperL += c
	}
	upperL += popcount(ix.bitmaps[tb]) // the straddling bin: candidates
	if ix.Comm == nil {
		return lowerL, upperL, nil
	}
	out := make([]int64, 2)
	if err := mpi.Allreduce(ix.Comm, []int64{lowerL, upperL}, out, mpi.OpSum); err != nil {
		return 0, 0, err
	}
	return out[0], out[1], nil
}

// LocalSelection enumerates the local element ids in bins fully above t
// (the guaranteed hits of CountAbove's lower bound).
func (ix *BinnedIndex) LocalSelection(t float64) []int {
	if !ix.built {
		return nil
	}
	var out []int
	tb := ix.binOf(t)
	for b := tb + 1; b < ix.Bins; b++ {
		for wi, w := range ix.bitmaps[b] {
			for ; w != 0; w &= w - 1 {
				bit := trailingZeros(w)
				out = append(out, wi*64+bit)
			}
		}
	}
	return out
}

func trailingZeros(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}

// IndexBytes reports the local index size — the "explorable extract" the
// post hoc side would store instead of the field itself.
func (ix *BinnedIndex) IndexBytes() int64 {
	if !ix.built {
		return 0
	}
	return int64(ix.Bins) * int64((ix.n+63)/64) * 8
}

// Finalize implements core.AnalysisAdaptor.
func (ix *BinnedIndex) Finalize() error {
	if ix.Memory != nil && ix.built {
		ix.Memory.FreeAll("index/bitmaps")
	}
	return nil
}
