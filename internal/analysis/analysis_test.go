package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gosensei/internal/array"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
	"gosensei/internal/oscillator"
)

// meshAdaptor serves a pre-built mesh through the SENSEI interface.
type meshAdaptor struct {
	core.BaseDataAdaptor
	mesh grid.Dataset
}

func (m *meshAdaptor) Mesh(bool) (grid.Dataset, error) { return m.mesh, nil }
func (m *meshAdaptor) AddArray(mesh grid.Dataset, assoc grid.Association, name string) error {
	if mesh.Attributes(assoc).Get(name) == nil {
		return errNoArray
	}
	return nil
}
func (m *meshAdaptor) ArrayNames(assoc grid.Association) ([]string, error) {
	return m.mesh.Attributes(assoc).Names(), nil
}
func (m *meshAdaptor) ReleaseData() error { return nil }

var errNoArray = errString("no such array")

type errString string

func (e errString) Error() string { return string(e) }

func cellMesh(values []float64) *grid.ImageData {
	n := len(values)
	mesh := grid.NewImageData(grid.Extent{0, n, 0, 1, 0, 1}) // n cells in a row
	mesh.Attributes(grid.CellData).Add(array.WrapAOS("data", 1, values))
	return mesh
}

func TestSerialHistogramUniform(t *testing.T) {
	vals := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	res := SerialHistogram(array.WrapAOS("data", 1, vals), nil, 5)
	if res.Min != 0 || res.Max != 9 {
		t.Fatalf("range [%v %v]", res.Min, res.Max)
	}
	for i, c := range res.Counts {
		if c != 2 {
			t.Fatalf("bin %d = %d, counts=%v", i, c, res.Counts)
		}
	}
	if res.Total() != 10 {
		t.Fatalf("total=%d", res.Total())
	}
	lo, hi := res.Bin(0)
	if lo != 0 || math.Abs(hi-1.8) > 1e-12 {
		t.Fatalf("bin0=[%v %v]", lo, hi)
	}
}

func TestSerialHistogramConstantData(t *testing.T) {
	res := SerialHistogram(array.WrapAOS("data", 1, []float64{3, 3, 3}), nil, 4)
	if res.Min != 3 || res.Max != 3 {
		t.Fatalf("range [%v %v]", res.Min, res.Max)
	}
	if res.Counts[0] != 3 || res.Total() != 3 {
		t.Fatalf("counts=%v", res.Counts)
	}
}

func TestHistogramGhostsExcluded(t *testing.T) {
	vals := array.WrapAOS("data", 1, []float64{1, 2, 100})
	ghost := array.WrapAOS(grid.GhostArrayName, 1, []float64{0, 0, 1})
	g8 := array.New[uint8](grid.GhostArrayName, 1, 3)
	for i := 0; i < 3; i++ {
		g8.SetValue(i, 0, ghost.Value(i, 0))
	}
	res := SerialHistogram(vals, g8, 2)
	if res.Max != 2 {
		t.Fatalf("ghost value included: max=%v", res.Max)
	}
	if res.Total() != 2 {
		t.Fatalf("total=%d", res.Total())
	}
}

func TestParallelHistogramMatchesSerial(t *testing.T) {
	// Property: the parallel histogram over a partitioned vector equals the
	// serial histogram over the whole vector.
	f := func(seed int64, nRanksRaw uint8) bool {
		nRanks := int(nRanksRaw%4) + 1
		total := 24
		vals := make([]float64, total)
		x := seed
		for i := range vals {
			x = x*6364136223846793005 + 1442695040888963407
			vals[i] = float64(x%1000) / 10
		}
		want := SerialHistogram(array.WrapAOS("data", 1, vals), nil, 8)
		got := make([]int64, 8)
		var gotMin, gotMax float64
		err := mpi.Run(nRanks, func(c *mpi.Comm) error {
			per := total / nRanks
			lo := c.Rank() * per
			hi := lo + per
			if c.Rank() == nRanks-1 {
				hi = total
			}
			mesh := cellMesh(vals[lo:hi])
			h := NewHistogram(c, "data", grid.CellData, 8)
			res, err := h.Compute(0, mesh)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				copy(got, res.Counts)
				gotMin, gotMax = res.Min, res.Max
			}
			return nil
		})
		if err != nil {
			return false
		}
		if gotMin != want.Min || gotMax != want.Max {
			return false
		}
		for i := range got {
			if got[i] != want.Counts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(19))}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramExecuteViaAdaptor(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		vals := []float64{float64(c.Rank()), float64(c.Rank()) + 0.5}
		d := &meshAdaptor{mesh: cellMesh(vals)}
		d.SetStep(3, 0.3)
		h := NewHistogram(c, "data", grid.CellData, 4)
		cont, err := h.Execute(d)
		if err != nil || !cont {
			return err
		}
		if c.Rank() == 0 {
			if h.Last == nil || h.Last.Step != 3 || h.Last.Min != 0 || h.Last.Max != 1.5 {
				t.Errorf("last=%+v", h.Last)
			}
			if h.Last.Total() != 4 {
				t.Errorf("total=%d", h.Last.Total())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMissingArray(t *testing.T) {
	h := NewHistogram(nil, "absent", grid.CellData, 4)
	d := &meshAdaptor{mesh: cellMesh([]float64{1})}
	if _, err := h.Execute(d); err == nil {
		t.Fatal("expected error")
	}
}

func TestHistogramMemoryTracked(t *testing.T) {
	mem := metrics.NewTracker()
	h := NewHistogram(nil, "data", grid.CellData, 16)
	h.Memory = mem
	if _, err := h.Compute(0, cellMesh([]float64{1, 2})); err != nil {
		t.Fatal(err)
	}
	if mem.HighWater() != 16*8 {
		t.Fatalf("high water=%d", mem.HighWater())
	}
	if mem.Current() != 0 {
		t.Fatalf("bins leaked: %d", mem.Current())
	}
}

func TestAutocorrelationSerialKnownSignal(t *testing.T) {
	// Single cell with signal 1, 2, 3, 4:
	// delay 1: 2*1 + 3*2 + 4*3 = 20
	// delay 2: 3*1 + 4*2 = 11
	ac := NewAutocorrelation(nil, "data", grid.CellData, 2, 1)
	for step, v := range []float64{1, 2, 3, 4} {
		mesh := cellMesh([]float64{v})
		d := &meshAdaptor{mesh: mesh}
		d.SetStep(step, float64(step))
		if _, err := ac.Execute(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := ac.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := ac.Top[0][0].Value; got != 20 {
		t.Fatalf("delay-1 corr=%v", got)
	}
	if got := ac.Top[1][0].Value; got != 11 {
		t.Fatalf("delay-2 corr=%v", got)
	}
}

func TestAutocorrelationFindsPeriodicCenter(t *testing.T) {
	// The paper: for periodic oscillators, the top-k reduction identifies
	// the oscillator centers. Run the miniapp with one periodic oscillator
	// and check the winning cell is the center cell.
	cfg := oscillator.Config{
		GlobalCells: [3]int{9, 9, 9},
		DT:          0.05,
		Steps:       30,
		Oscillators: []oscillator.Oscillator{{
			Kind:   oscillator.Periodic,
			Center: [3]float64{4.5, 4.5, 4.5}, // center of cell (4,4,4)
			Radius: 2,
			Omega0: 6.28,
		}},
	}
	err := mpi.Run(1, func(c *mpi.Comm) error {
		s, err := oscillator.NewSim(c, cfg, nil)
		if err != nil {
			return err
		}
		d := oscillator.NewDataAdaptor(s)
		ac := NewAutocorrelation(c, "data", grid.CellData, 5, 1)
		for i := 0; i < cfg.Steps; i++ {
			if err := s.Step(); err != nil {
				return err
			}
			d.Update()
			if _, err := ac.Execute(d); err != nil {
				return err
			}
			_ = d.ReleaseData()
		}
		if err := ac.Finalize(); err != nil {
			return err
		}
		wantCell := 4*9*9 + 4*9 + 4
		for delay := range ac.Top {
			if got := ac.Top[delay][0].Cell; got != wantCell {
				t.Errorf("delay %d: top cell %d, want center %d", delay+1, got, wantCell)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAutocorrelationParallelMergesTopK(t *testing.T) {
	err := mpi.Run(3, func(c *mpi.Comm) error {
		// Rank r's single cell has constant signal r+1; after 3 steps the
		// delay-1 correlation is 2*(r+1)^2. Top-2 must come from ranks 2,1.
		ac := NewAutocorrelation(c, "data", grid.CellData, 1, 2)
		v := float64(c.Rank() + 1)
		for step := 0; step < 3; step++ {
			d := &meshAdaptor{mesh: cellMesh([]float64{v})}
			d.SetStep(step, 0)
			if _, err := ac.Execute(d); err != nil {
				return err
			}
		}
		if err := ac.Finalize(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			top := ac.Top[0]
			if len(top) != 2 || top[0].Rank != 2 || top[0].Value != 18 || top[1].Rank != 1 || top[1].Value != 8 {
				t.Errorf("top=%v", top)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAutocorrelationMemoryAccounting(t *testing.T) {
	mem := metrics.NewTracker()
	ac := NewAutocorrelation(nil, "data", grid.CellData, 4, 1)
	ac.Memory = mem
	d := &meshAdaptor{mesh: cellMesh(make([]float64, 10))}
	if _, err := ac.Execute(d); err != nil {
		t.Fatal(err)
	}
	want := int64(2 * 4 * 10 * 8)
	if mem.Current() != want {
		t.Fatalf("tracked=%d want %d", mem.Current(), want)
	}
	if ac.BufferBytes() != want {
		t.Fatalf("BufferBytes=%d", ac.BufferBytes())
	}
	ac.FreeBuffers()
	if mem.Current() != 0 {
		t.Fatalf("leak: %d", mem.Current())
	}
}

func TestAutocorrelationRejectsShapeChange(t *testing.T) {
	ac := NewAutocorrelation(nil, "data", grid.CellData, 2, 1)
	d1 := &meshAdaptor{mesh: cellMesh([]float64{1, 2})}
	if _, err := ac.Execute(d1); err != nil {
		t.Fatal(err)
	}
	d2 := &meshAdaptor{mesh: cellMesh([]float64{1})}
	if _, err := ac.Execute(d2); err == nil {
		t.Fatal("expected shape-change error")
	}
}

func TestAutocorrelationFinalizeWithoutExecute(t *testing.T) {
	ac := NewAutocorrelation(nil, "data", grid.CellData, 2, 1)
	if err := ac.Finalize(); err != nil {
		t.Fatal(err)
	}
	if ac.Top != nil {
		t.Fatal("unexpected results")
	}
}

func TestTopK(t *testing.T) {
	v := []float64{3, 9, 1, 7, 5}
	top := topK(v, 3, 2)
	if len(top) != 3 || top[0].Value != 9 || top[1].Value != 7 || top[2].Value != 5 {
		t.Fatalf("top=%v", top)
	}
	if top[0].Cell != 1 || top[0].Rank != 2 {
		t.Fatalf("metadata=%v", top[0])
	}
	// k larger than data.
	top = topK([]float64{2, 1}, 5, 0)
	if len(top) != 2 || top[0].Value != 2 {
		t.Fatalf("top=%v", top)
	}
}

func TestFactoriesRegistered(t *testing.T) {
	b := core.NewBridge(nil, nil, nil)
	doc := []byte(`<sensei>
		<analysis type="histogram" array="data" bins="8"/>
		<analysis type="autocorrelation" array="data" window="4" k-max="2"/>
	</sensei>`)
	if err := core.ConfigureFromXML(b, doc); err != nil {
		t.Fatal(err)
	}
	if b.AnalysisCount() != 2 {
		t.Fatalf("count=%d", b.AnalysisCount())
	}
}

func TestCompressionRatioAndErrorBound(t *testing.T) {
	// A smooth field compresses well; reconstruction stays within the
	// guaranteed bound.
	n := 4096
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Sin(float64(i) / 100)
	}
	cp := NewCompression(nil, "data", grid.CellData, 12)
	cp.KeepPayload = true
	d := &meshAdaptor{mesh: cellMesh(vals)}
	d.SetStep(3, 0.3)
	if _, err := cp.Execute(d); err != nil {
		t.Fatal(err)
	}
	r := cp.Last
	if r == nil || r.Step != 3 {
		t.Fatalf("result=%+v", r)
	}
	if r.Ratio < 2 {
		t.Fatalf("smooth field ratio %.2f too low", r.Ratio)
	}
	bound := cp.ErrorBound(-1, 1)
	if r.MaxError > bound+1e-15 {
		t.Fatalf("max error %v exceeds bound %v", r.MaxError, bound)
	}
	// Decompression honors the same bound against the original.
	back, err := cp.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != n {
		t.Fatalf("decompressed %d values", len(back))
	}
	for i := range back {
		if math.Abs(back[i]-vals[i]) > bound+1e-15 {
			t.Fatalf("value %d: error %v > bound %v", i, math.Abs(back[i]-vals[i]), bound)
		}
	}
}

func TestCompressionMoreBitsLessError(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i%97) * 1.37
	}
	errAt := func(bits int) float64 {
		cp := NewCompression(nil, "data", grid.CellData, bits)
		d := &meshAdaptor{mesh: cellMesh(vals)}
		if _, err := cp.Execute(d); err != nil {
			t.Fatal(err)
		}
		return cp.Last.MaxError
	}
	e4, e8, e16 := errAt(4), errAt(8), errAt(16)
	if !(e4 > e8 && e8 > e16) {
		t.Fatalf("error not decreasing with bits: %v %v %v", e4, e8, e16)
	}
}

func TestCompressionParallelAggregates(t *testing.T) {
	err := mpi.Run(3, func(c *mpi.Comm) error {
		vals := make([]float64, 100)
		for i := range vals {
			vals[i] = float64(c.Rank())
		}
		cp := NewCompression(c, "data", grid.CellData, 8)
		d := &meshAdaptor{mesh: cellMesh(vals)}
		if _, err := cp.Execute(d); err != nil {
			return err
		}
		if c.Rank() == 0 {
			if cp.Last.RawBytes != 3*100*8 {
				t.Errorf("raw=%d", cp.Last.RawBytes)
			}
			if cp.Last.CompressedBytes <= 0 || cp.Last.Ratio <= 1 {
				t.Errorf("result=%+v", cp.Last)
			}
			// Constant-per-rank data reconstructs exactly (values hit
			// quantization levels 0, mid, max... within bound anyway).
			if cp.Last.MaxError > cp.ErrorBound(0, 2) {
				t.Errorf("error=%v", cp.Last.MaxError)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompressionConstantField(t *testing.T) {
	cp := NewCompression(nil, "data", grid.CellData, 8)
	d := &meshAdaptor{mesh: cellMesh([]float64{5, 5, 5, 5})}
	if _, err := cp.Execute(d); err != nil {
		t.Fatal(err)
	}
	if cp.Last.MaxError != 0 {
		t.Fatalf("constant field error=%v", cp.Last.MaxError)
	}
}

func TestCompressionFactory(t *testing.T) {
	b := core.NewBridge(nil, nil, nil)
	if err := core.ConfigureFromXML(b, []byte(`<sensei><analysis type="compress" array="data" bits="10"/></sensei>`)); err != nil {
		t.Fatal(err)
	}
	if b.AnalysisCount() != 1 {
		t.Fatal("compress factory missing")
	}
}

func TestCompressionMemoryTracked(t *testing.T) {
	mem := metrics.NewTracker()
	cp := NewCompression(nil, "data", grid.CellData, 8)
	cp.Memory = mem
	d := &meshAdaptor{mesh: cellMesh(make([]float64, 256))}
	if _, err := cp.Execute(d); err != nil {
		t.Fatal(err)
	}
	if mem.Current() <= 0 {
		t.Fatal("payload not tracked")
	}
	if err := cp.Finalize(); err != nil {
		t.Fatal(err)
	}
	if mem.Current() != 0 {
		t.Fatal("payload leaked")
	}
}
