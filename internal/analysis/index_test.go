package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gosensei/internal/array"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
)

func indexOver(t *testing.T, vals []float64, bins int) *BinnedIndex {
	t.Helper()
	ix := NewBinnedIndex(nil, "data", grid.CellData, bins)
	d := &meshAdaptor{mesh: cellMesh(vals)}
	d.SetStep(1, 0.1)
	if _, err := ix.Execute(d); err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestIndexCountBoundsBracketTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.Float64() * 100
	}
	ix := indexOver(t, vals, 16)
	for _, thr := range []float64{-5, 0, 12.5, 50, 99, 105} {
		truth := int64(0)
		for _, v := range vals {
			if v > thr {
				truth++
			}
		}
		lower, upper, err := ix.CountAbove(thr)
		if err != nil {
			t.Fatal(err)
		}
		if truth < lower || truth > upper {
			t.Fatalf("t=%v: truth %d outside index bounds [%d, %d]", thr, truth, lower, upper)
		}
	}
}

func TestIndexBoundsProperty(t *testing.T) {
	f := func(seed int64, binsRaw uint8) bool {
		bins := int(binsRaw%30) + 2
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 10
		}
		ix := NewBinnedIndex(nil, "data", grid.CellData, bins)
		d := &meshAdaptor{mesh: cellMesh(vals)}
		if _, err := ix.Execute(d); err != nil {
			return false
		}
		thr := rng.NormFloat64() * 10
		truth := int64(0)
		for _, v := range vals {
			if v > thr {
				truth++
			}
		}
		lower, upper, err := ix.CountAbove(thr)
		if err != nil {
			return false
		}
		return truth >= lower && truth <= upper && lower >= 0 && upper <= int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(20))}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexLocalSelectionAreTrueHits(t *testing.T) {
	vals := []float64{1, 9, 3, 8, 2, 7}
	ix := indexOver(t, vals, 4)
	// Bins over [1,9]: width 2. Threshold 5 -> bin 2; guaranteed hits are
	// bins 3: values in [7,9].
	sel := ix.LocalSelection(5)
	for _, id := range sel {
		if vals[id] <= 5 {
			t.Fatalf("selection id %d has value %v <= threshold", id, vals[id])
		}
	}
	if len(sel) == 0 {
		t.Fatal("no guaranteed hits found")
	}
}

func TestIndexParallelCounts(t *testing.T) {
	err := mpi.Run(3, func(c *mpi.Comm) error {
		// Rank r holds values r*10 .. r*10+4.
		vals := make([]float64, 5)
		for i := range vals {
			vals[i] = float64(c.Rank()*10 + i)
		}
		ix := NewBinnedIndex(c, "data", grid.CellData, 8)
		d := &meshAdaptor{mesh: cellMesh(vals)}
		if _, err := ix.Execute(d); err != nil {
			return err
		}
		lower, upper, err := ix.CountAbove(9.5)
		if err != nil {
			return err
		}
		// Truth: ranks 1 and 2 contribute all 10 values > 9.5.
		if lower > 10 || upper < 10 {
			t.Errorf("rank %d: bounds [%d, %d] exclude truth 10", c.Rank(), lower, upper)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndexGhostsExcluded(t *testing.T) {
	mesh := cellMesh([]float64{1, 2, 100})
	gh := array.New[uint8](grid.GhostArrayName, 1, 3)
	gh.Set(2, 0, 1)
	mesh.Attributes(grid.CellData).Add(gh)
	ix := NewBinnedIndex(nil, "data", grid.CellData, 4)
	d := &meshAdaptor{mesh: mesh}
	if _, err := ix.Execute(d); err != nil {
		t.Fatal(err)
	}
	// Ghosts set no bits: at most the one non-ghost candidate (value 2, in
	// the straddling top bin) can appear in the upper bound. If the ghost's
	// 100 leaked in, upper would be 2.
	lower, upper, err := ix.CountAbove(50)
	if err != nil {
		t.Fatal(err)
	}
	if lower != 0 || upper > 1 {
		t.Fatalf("ghost cell leaked into the index: bounds [%d, %d]", lower, upper)
	}
}

func TestIndexMemoryAndRebuild(t *testing.T) {
	mem := metrics.NewTracker()
	ix := NewBinnedIndex(nil, "data", grid.CellData, 8)
	ix.Memory = mem
	d := &meshAdaptor{mesh: cellMesh(make([]float64, 100))}
	if _, err := ix.Execute(d); err != nil {
		t.Fatal(err)
	}
	want := int64(8 * ((100 + 63) / 64) * 8)
	if mem.Current() != want {
		t.Fatalf("tracked=%d want %d", mem.Current(), want)
	}
	if ix.IndexBytes() != want {
		t.Fatalf("IndexBytes=%d", ix.IndexBytes())
	}
	// Rebuilding replaces, not accumulates.
	if _, err := ix.Execute(d); err != nil {
		t.Fatal(err)
	}
	if mem.Current() != want {
		t.Fatalf("rebuild leaked: %d", mem.Current())
	}
	if err := ix.Finalize(); err != nil {
		t.Fatal(err)
	}
	if mem.Current() != 0 {
		t.Fatalf("finalize leaked: %d", mem.Current())
	}
}

func TestIndexQueryBeforeBuild(t *testing.T) {
	ix := NewBinnedIndex(nil, "data", grid.CellData, 4)
	if _, _, err := ix.CountAbove(0); err == nil {
		t.Fatal("query before build accepted")
	}
	if ix.LocalSelection(0) != nil {
		t.Fatal("selection before build")
	}
}

func TestIndexFactory(t *testing.T) {
	b := core.NewBridge(nil, nil, nil)
	doc := []byte(`<sensei><analysis type="index" array="data" bins="16"/></sensei>`)
	if err := core.ConfigureFromXML(b, doc); err != nil {
		t.Fatal(err)
	}
	if b.AnalysisCount() != 1 {
		t.Fatal("index factory missing")
	}
}
