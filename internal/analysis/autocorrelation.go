package analysis

import (
	"fmt"
	"sort"

	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
)

func init() {
	core.RegisterFactory("autocorrelation", func(attrs core.Attrs, env *core.Env) (core.AnalysisAdaptor, error) {
		window, err := attrs.Int("window", 10)
		if err != nil {
			return nil, err
		}
		k, err := attrs.Int("k-max", 3)
		if err != nil {
			return nil, err
		}
		assoc := grid.CellData
		if attrs.String("association", "cell") == "point" {
			assoc = grid.PointData
		}
		a := NewAutocorrelation(env.Comm, attrs.String("array", "data"), assoc, window, k)
		a.Memory = env.Memory
		return a, nil
	})
}

// Corr is one autocorrelation extremum: the accumulated correlation of a
// cell with itself at a fixed delay, plus where the cell lives.
type Corr struct {
	Value float64
	Rank  int // world rank owning the cell
	Cell  int // local linear cell index
}

// Autocorrelation is the paper's prototypical time-dependent analysis. For a
// per-cell signal f and integer delays t' in [1, Window], it accumulates
// sum_t f(t)·f(t−t') in a per-cell running-correlation window, feeding from a
// circular buffer of the last Window steps. Both buffers are O(Window·N³)
// per rank — the reason the paper's post hoc autocorrelation runs needed
// twice the nodes. Finalize performs a global reduction to find the top-K
// correlations for every delay; for periodic oscillators these identify the
// oscillator centers.
type Autocorrelation struct {
	Comm      *mpi.Comm
	ArrayName string
	Assoc     grid.Association
	Window    int
	K         int
	// Memory, when set, accounts for the circular buffers.
	Memory *metrics.Tracker

	cells int         // local cell count, fixed after first step
	buf   [][]float64 // circular history: Window slices of length cells
	corr  [][]float64 // running correlations: Window slices (delay d+1)
	head  int         // next write position in buf
	steps int         // number of steps consumed

	// Top holds, per delay d (index d-1), the global top-K correlations in
	// descending order. Valid on rank 0 after Finalize.
	Top [][]Corr
}

// NewAutocorrelation builds the analysis for the named array.
func NewAutocorrelation(c *mpi.Comm, name string, assoc grid.Association, window, k int) *Autocorrelation {
	if window <= 0 || k <= 0 {
		panic(fmt.Sprintf("analysis: autocorrelation window=%d k=%d must be positive", window, k))
	}
	return &Autocorrelation{Comm: c, ArrayName: name, Assoc: assoc, Window: window, K: k}
}

// Execute implements core.AnalysisAdaptor.
func (ac *Autocorrelation) Execute(d core.DataAdaptor) (bool, error) {
	mesh, err := core.FetchArray(d, ac.Assoc, ac.ArrayName)
	if err != nil {
		return false, err
	}
	sources, err := ScalarSources(mesh, ac.Assoc, ac.ArrayName)
	if err != nil {
		return false, fmt.Errorf("analysis: autocorrelation: %w", err)
	}
	for _, src := range sources {
		if src.Values.Components() != 1 {
			return false, fmt.Errorf("analysis: autocorrelation needs a scalar array, %q has %d components", ac.ArrayName, src.Values.Components())
		}
	}
	n := TotalTuples(sources)
	if ac.buf == nil {
		ac.allocate(n)
	} else if n != ac.cells {
		return false, fmt.Errorf("analysis: autocorrelation: cell count changed from %d to %d", ac.cells, n)
	}

	// Update running correlations against the circular history, oldest
	// delays limited by how many steps we have seen. The cell index runs
	// over the concatenation of sources (stable across steps: block order
	// is fixed by the adaptor).
	maxDelay := ac.steps
	if maxDelay > ac.Window {
		maxDelay = ac.Window
	}
	for delay := 1; delay <= maxDelay; delay++ {
		hist := ac.buf[(ac.head-delay+ac.Window*2)%ac.Window]
		dst := ac.corr[delay-1]
		off := 0
		for _, src := range sources {
			for i := 0; i < src.Values.Tuples(); i++ {
				dst[off+i] += src.Values.Value(i, 0) * hist[off+i]
			}
			off += src.Values.Tuples()
		}
	}
	// Push the new values into the circular buffer.
	slot := ac.buf[ac.head]
	off := 0
	for _, src := range sources {
		for i := 0; i < src.Values.Tuples(); i++ {
			slot[off+i] = src.Values.Value(i, 0)
		}
		off += src.Values.Tuples()
	}
	ac.head = (ac.head + 1) % ac.Window
	ac.steps++
	return true, nil
}

func (ac *Autocorrelation) allocate(n int) {
	ac.cells = n
	ac.buf = make([][]float64, ac.Window)
	ac.corr = make([][]float64, ac.Window)
	for i := 0; i < ac.Window; i++ {
		ac.buf[i] = make([]float64, n)
		ac.corr[i] = make([]float64, n)
	}
	if ac.Memory != nil {
		ac.Memory.Alloc("autocorrelation/history", int64(ac.Window)*int64(n)*8)
		ac.Memory.Alloc("autocorrelation/correlations", int64(ac.Window)*int64(n)*8)
	}
}

// Finalize implements core.AnalysisAdaptor: every rank finds its local top-K
// per delay; the tuples are gathered to rank 0 and merged. This global
// reduction is the non-negligible finalization cost visible in the paper's
// one-time-cost figure (Fig. 5).
func (ac *Autocorrelation) Finalize() error {
	if ac.buf == nil {
		return nil // never executed
	}
	ac.Top = make([][]Corr, ac.Window)
	rank := 0
	if ac.Comm != nil {
		rank = ac.Comm.WorldRank()
	}
	for delay := 1; delay <= ac.Window; delay++ {
		local := topK(ac.corr[delay-1], ac.K, rank)
		merged := local
		if ac.Comm != nil {
			flat := make([]float64, 0, len(local)*3)
			for _, c := range local {
				flat = append(flat, c.Value, float64(c.Rank), float64(c.Cell))
			}
			parts, err := mpi.Gatherv(ac.Comm, flat, 0)
			if err != nil {
				return fmt.Errorf("analysis: autocorrelation finalize: %w", err)
			}
			if ac.Comm.Rank() == 0 {
				merged = merged[:0]
				for _, p := range parts {
					for i := 0; i+2 < len(p); i += 3 {
						merged = append(merged, Corr{Value: p[i], Rank: int(p[i+1]), Cell: int(p[i+2])})
					}
				}
				sort.Slice(merged, func(i, j int) bool { return merged[i].Value > merged[j].Value })
				if len(merged) > ac.K {
					merged = merged[:ac.K]
				}
			} else {
				merged = nil
			}
		}
		ac.Top[delay-1] = merged
	}
	return nil
}

// topK returns the k largest values of v (descending) tagged with rank/index.
func topK(v []float64, k int, rank int) []Corr {
	if k > len(v) {
		k = len(v)
	}
	out := make([]Corr, 0, k)
	for i, x := range v {
		if len(out) < k {
			out = append(out, Corr{Value: x, Rank: rank, Cell: i})
			if len(out) == k {
				sort.Slice(out, func(a, b int) bool { return out[a].Value > out[b].Value })
			}
			continue
		}
		if x > out[k-1].Value {
			out[k-1] = Corr{Value: x, Rank: rank, Cell: i}
			for j := k - 1; j > 0 && out[j].Value > out[j-1].Value; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
	}
	if len(out) < k {
		sort.Slice(out, func(a, b int) bool { return out[a].Value > out[b].Value })
	}
	return out
}

// BufferBytes returns the tracked size of the analysis's two windows,
// O(2·Window·cells) once allocated.
func (ac *Autocorrelation) BufferBytes() int64 {
	if ac.buf == nil {
		return 0
	}
	return 2 * int64(ac.Window) * int64(ac.cells) * 8
}

// FreeBuffers releases the tracked memory (after Finalize).
func (ac *Autocorrelation) FreeBuffers() {
	if ac.Memory != nil {
		ac.Memory.FreeAll("autocorrelation/history")
		ac.Memory.FreeAll("autocorrelation/correlations")
	}
	ac.buf, ac.corr = nil, nil
}
