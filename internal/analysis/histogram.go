// Package analysis implements the in situ analysis methods the SC16 SENSEI
// paper couples to the oscillator miniapp and the science codes: a parallel
// histogram (the simple, memory-light method) and a temporal autocorrelation
// (the time-dependent method that must cache a window of past steps).
//
// Both are written purely against core.DataAdaptor, so the same code runs
// directly in situ, behind Catalyst/Libsim wrappers, or at the far end of an
// ADIOS staging transport — the paper's "write once, use anywhere" property.
package analysis

import (
	"fmt"
	"math"

	"gosensei/internal/array"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
)

func init() {
	core.RegisterFactory("histogram", func(attrs core.Attrs, env *core.Env) (core.AnalysisAdaptor, error) {
		bins, err := attrs.Int("bins", 10)
		if err != nil {
			return nil, err
		}
		assoc := grid.CellData
		if attrs.String("association", "cell") == "point" {
			assoc = grid.PointData
		}
		h := NewHistogram(env.Comm, attrs.String("array", "data"), assoc, bins)
		h.Memory = env.Memory
		return h, nil
	})
}

// HistogramResult is the outcome of one histogram execution, valid on rank 0.
type HistogramResult struct {
	Step   int
	Min    float64
	Max    float64
	Counts []int64
}

// Bin returns the inclusive value range of bin i.
func (r *HistogramResult) Bin(i int) (lo, hi float64) {
	w := (r.Max - r.Min) / float64(len(r.Counts))
	return r.Min + float64(i)*w, r.Min + float64(i+1)*w
}

// Total returns the number of counted elements.
func (r *HistogramResult) Total() int64 {
	var n int64
	for _, c := range r.Counts {
		n += c
	}
	return n
}

// Histogram computes a global histogram of one mesh array per step: two
// allreduce operations establish the global [min, max], each rank bins its
// local (non-ghost) values, and the bins are reduced to rank 0. The only
// extra storage is proportional to the bin count, as the paper notes.
type Histogram struct {
	Comm      *mpi.Comm
	ArrayName string
	Assoc     grid.Association
	Bins      int
	// Memory, when set, accounts for the bin storage.
	Memory *metrics.Tracker

	// Last holds the most recent result (rank 0 only).
	Last *HistogramResult
}

// NewHistogram builds a histogram analysis over the named array.
func NewHistogram(c *mpi.Comm, name string, assoc grid.Association, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("analysis: histogram bins must be positive, got %d", bins))
	}
	return &Histogram{Comm: c, ArrayName: name, Assoc: assoc, Bins: bins}
}

// StagedHistogramSource is implemented by data adaptors that carry a
// pre-binned histogram partial instead of (or alongside) mesh data — the in
// transit extract-shipping path, where writers bin against the globally
// agreed range before the wire and the endpoint only merges. The adaptor
// reports ok only when its partial matches the requested array, association,
// and bin count.
type StagedHistogramSource interface {
	StagedHistogram(name string, assoc grid.Association, bins int) (min, max float64, counts []int64, ok bool)
}

// Execute implements core.AnalysisAdaptor.
func (h *Histogram) Execute(d core.DataAdaptor) (bool, error) {
	// An adaptor staging a matching pre-binned partial short-circuits the
	// mesh walk: the writers already agreed on the global range (allreduce
	// over the writer group) and binned with the same kernel, so merging
	// partials is bit-identical to binning the full data here.
	if sh, ok := d.(StagedHistogramSource); ok {
		if lo, hi, counts, ok := sh.StagedHistogram(h.ArrayName, h.Assoc, h.Bins); ok {
			res, err := h.mergeStaged(d.TimeStep(), lo, hi, counts)
			if err != nil {
				return false, err
			}
			if h.Comm == nil || h.Comm.Rank() == 0 {
				h.Last = res
			}
			return true, nil
		}
	}
	mesh, err := core.FetchArray(d, h.Assoc, h.ArrayName)
	if err != nil {
		return false, err
	}
	res, err := h.Compute(d.TimeStep(), mesh)
	if err != nil {
		return false, err
	}
	if h.Comm == nil || h.Comm.Rank() == 0 {
		h.Last = res
	}
	return true, nil
}

// mergeStaged finishes a histogram from pre-binned partials: the same two
// reductions Compute performs (min/max agreement, count sum to root), over
// exact operations, so the result matches the full-data path bit for bit.
func (h *Histogram) mergeStaged(step int, lo, hi float64, counts []int64) (*HistogramResult, error) {
	if h.Comm != nil {
		gLo, gHi := []float64{lo}, []float64{hi}
		if err := mpi.AllreduceMinMax(h.Comm, gLo, gHi); err != nil {
			return nil, err
		}
		lo, hi = gLo[0], gHi[0]
		global := make([]int64, len(counts))
		if err := mpi.Reduce(h.Comm, counts, global, mpi.OpSum, 0); err != nil {
			return nil, err
		}
		counts = global
	}
	return &HistogramResult{Step: step, Min: lo, Max: hi, Counts: counts}, nil
}

// Compute runs the histogram over an already-populated mesh (a single
// dataset or a MultiBlock, as delivered by fan-in staging endpoints). It is
// exposed separately so post hoc and in transit paths can reuse it. The
// result is valid on rank 0 (and on every rank when Comm is nil, the serial
// case).
func (h *Histogram) Compute(step int, mesh grid.Dataset) (*HistogramResult, error) {
	lo, hi, err := h.GlobalRange(mesh)
	if err != nil {
		return nil, err
	}
	counts, err := h.PartialCounts(mesh, lo, hi)
	if err != nil {
		return nil, err
	}
	// Reduce histograms to the root.
	if h.Comm != nil {
		global := make([]int64, h.Bins)
		if err := mpi.Reduce(h.Comm, counts, global, mpi.OpSum, 0); err != nil {
			return nil, err
		}
		counts = global
	}
	return &HistogramResult{Step: step, Min: lo, Max: hi, Counts: counts}, nil
}

// GlobalRange computes the [min, max] of the target array over all ranks of
// Comm, skipping ghost values. Exposed separately so the in transit
// extract path can agree on bin edges across the writer group before
// binning — the agreement is an exact min/max reduction, which is what
// makes writer-side binning bit-identical to endpoint-side binning.
func (h *Histogram) GlobalRange(mesh grid.Dataset) (lo, hi float64, err error) {
	sources, err := ScalarSources(mesh, h.Assoc, h.ArrayName)
	if err != nil {
		return 0, 0, fmt.Errorf("analysis: histogram: %w", err)
	}
	// Local extrema over non-ghost values.
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, src := range sources {
		n := src.Values.Tuples()
		for i := 0; i < n; i++ {
			if src.Ghost != nil && src.Ghost.Value(i, 0) != 0 {
				continue
			}
			v := src.Values.Value(i, 0)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	// One fused global reduction covers both the min and the max (one
	// collective round per step instead of two).
	if h.Comm != nil {
		gLo, gHi := []float64{lo}, []float64{hi}
		if err := mpi.AllreduceMinMax(h.Comm, gLo, gHi); err != nil {
			return 0, 0, err
		}
		lo, hi = gLo[0], gHi[0]
	}
	if math.IsInf(lo, 1) { // no non-ghost data anywhere
		lo, hi = 0, 0
	}
	return lo, hi, nil
}

// PartialCounts bins this rank's non-ghost values against the given global
// range, with no reduction: the caller either sums the partials itself (the
// extract-shipping endpoint) or reduces them to the root (Compute). Every
// path bins with this one kernel, so counts agree bit for bit wherever the
// binning runs.
func (h *Histogram) PartialCounts(mesh grid.Dataset, lo, hi float64) ([]int64, error) {
	sources, err := ScalarSources(mesh, h.Assoc, h.ArrayName)
	if err != nil {
		return nil, fmt.Errorf("analysis: histogram: %w", err)
	}
	counts := make([]int64, h.Bins)
	if h.Memory != nil {
		h.Memory.Alloc("histogram/bins", int64(h.Bins)*8)
		defer h.Memory.FreeAll("histogram/bins")
	}
	// One division up front: the inner loop bins by multiply-compare, which
	// replaces a per-sample divide (the histogram inner loop runs once per
	// cell per step, so the constant factor matters at miniapp scale).
	width := (hi - lo) / float64(h.Bins)
	invWidth := 0.0
	if width > 0 {
		invWidth = 1 / width
	}
	maxBin := h.Bins - 1
	for _, src := range sources {
		n := src.Values.Tuples()
		for i := 0; i < n; i++ {
			if src.Ghost != nil && src.Ghost.Value(i, 0) != 0 {
				continue
			}
			v := src.Values.Value(i, 0)
			b := 0
			if invWidth > 0 {
				b = int((v - lo) * invWidth)
				if b > maxBin {
					b = maxBin
				}
				if b < 0 {
					b = 0
				}
			}
			counts[b]++
		}
	}
	return counts, nil
}

// Finalize implements core.AnalysisAdaptor; the histogram holds no state.
func (h *Histogram) Finalize() error { return nil }

// SerialHistogram bins the values of one array without any communication;
// it is the reference the parallel path is tested against and the kernel the
// post hoc tool uses.
func SerialHistogram(a array.Array, ghost array.Array, bins int) *HistogramResult {
	h := &Histogram{ArrayName: a.Name(), Assoc: grid.CellData, Bins: bins}
	mesh := grid.NewImageData(grid.NewExtent3D(2, 2, 2)) // container only
	a2 := a.Clone()
	a2.SetName(h.ArrayName)
	mesh.Attributes(grid.CellData).Add(a2)
	if ghost != nil {
		g2 := ghost.Clone()
		g2.SetName(grid.GhostArrayName)
		mesh.Attributes(grid.CellData).Add(g2)
	}
	res, err := h.Compute(0, mesh)
	if err != nil {
		panic(err) // cannot happen: array is attached above
	}
	return res
}
