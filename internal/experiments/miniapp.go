package experiments

import (
	"fmt"

	"gosensei/internal/compositing"
	"gosensei/internal/metrics"
)

const oscillatorsInDeck = 3 // DefaultDeck's source count

// paperDeckOscillators sizes the modeled runs' oscillator deck. The paper
// never states its deck, but Fig. 10's write/simulation ratios (writes have
// "little impact" at 1K, ~4x at 6K, ~20x at 45K, with the write times of
// Table 1) imply a simulation cost near 0.17 s/step per rank; with the
// measured per-cell evaluation cost that corresponds to roughly ten sources.
const paperDeckOscillators = 10

// Fig3 reproduces Figure 3: time to solution for the Original
// (subroutine-called autocorrelation) versus the SENSEI Autocorrelation
// configuration, weak scaling over the paper's 1K/6K/45K points. The
// finding: no measurable difference — the generic interface is zero-copy
// and adds nothing.
func Fig3(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Fig. 3 — time to solution, Original vs SENSEI Autocorrelation (weak scaling)",
		Columns: []string{"row", "cores", "original", "sensei-autocorrelation", "delta"},
	}
	// Real rows: execute both configurations.
	orig, err := RunMiniapp(Original, opt)
	if err != nil {
		return nil, err
	}
	sensei, err := RunMiniapp(AutocorrelationCfg, opt)
	if err != nil {
		return nil, err
	}
	delta := (sensei.Total - orig.Total) / orig.Total * 100
	t.AddRow("real", fmt.Sprintf("%d", opt.RealRanks), fmtS(orig.Total), fmtS(sensei.Total), fmt.Sprintf("%+.1f%%", delta))

	// Model rows: at scale both configurations run the identical kernels;
	// the SENSEI side adds only the (measured-to-be-negligible) bridge call.
	cori, _, _ := models(opt)
	for _, s := range PaperScales() {
		sim := cori.OscillatorStepTime(s.CellsPerRank, paperDeckOscillators)
		ac := cori.AutocorrelationStepTime(s.CellsPerRank, opt.Window)
		fin := cori.AutocorrelationFinalizeTime(s.Cores, opt.Window, opt.KMax)
		steps := float64(opt.RealSteps)
		origT := steps*(sim+ac) + fin
		senseiT := origT // zero-copy: identical data path
		t.AddRow("model/"+s.Label, fmt.Sprintf("%d", s.Cores), fmtS(origT), fmtS(senseiT), "+0.0%")
	}
	t.AddNote("paper: 'no measurable difference between the two configurations' (zero-copy interface)")
	return t, nil
}

// Fig4 reproduces Figure 4: memory footprint (sum of per-rank high-water
// marks) for the same two configurations.
func Fig4(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Fig. 4 — memory footprint, Original vs SENSEI Autocorrelation",
		Columns: []string{"row", "cores", "original", "sensei-autocorrelation"},
	}
	orig, err := RunMiniapp(Original, opt)
	if err != nil {
		return nil, err
	}
	sensei, err := RunMiniapp(AutocorrelationCfg, opt)
	if err != nil {
		return nil, err
	}
	t.AddRow("real", fmt.Sprintf("%d", opt.RealRanks), fmtB(orig.MemHighWater), fmtB(sensei.MemHighWater))
	for _, s := range PaperScales() {
		perRank := int64(s.CellsPerRank)*8 + 2*int64(opt.Window)*int64(s.CellsPerRank)*8
		total := perRank * int64(s.Cores)
		t.AddRow("model/"+s.Label, fmt.Sprintf("%d", s.Cores), fmtB(total), fmtB(total))
	}
	t.AddNote("both configurations hold the grid plus two O(window x N^3) autocorrelation buffers")
	return t, nil
}

// Fig5 reproduces Figure 5: one-time costs — simulation initialize,
// analysis initialize, and finalize — for the five SENSEI-enabled
// configurations. The paper's callouts: Libsim's per-rank config check
// reaches ~3.5 s at 45K, and the autocorrelation finalize reduction is the
// only non-negligible finalize.
func Fig5(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Fig. 5 — one-time costs (sim init / analysis init / finalize)",
		Columns: []string{"row", "config", "sim-init", "analysis-init", "finalize"},
	}
	for _, cfg := range []Configuration{Baseline, HistogramCfg, AutocorrelationCfg, CatalystSlice, LibsimSlice} {
		r, err := RunMiniapp(cfg, opt)
		if err != nil {
			return nil, fmt.Errorf("config %s: %w", cfg, err)
		}
		t.AddRow("real", string(cfg), fmtS(r.SimInit), fmtS(r.AnalysisInit), fmtS(r.Finalize))
	}
	cori, _, _ := models(opt)
	for _, s := range PaperScales() {
		for _, cfg := range []Configuration{Baseline, HistogramCfg, AutocorrelationCfg, CatalystSlice, LibsimSlice} {
			var anInit, fin float64
			switch cfg {
			case AutocorrelationCfg:
				fin = cori.AutocorrelationFinalizeTime(s.Cores, opt.Window, opt.KMax)
			case CatalystSlice:
				anInit = cori.CatalystInitTime(s.Cores)
			case LibsimSlice:
				anInit = cori.LibsimInitTime(s.Cores)
			}
			t.AddRow("model/"+s.Label, string(cfg), fmtS(1e-4), fmtS(anInit), fmtS(fin))
		}
	}
	t.AddNote("Libsim analysis-init grows with rank count (per-rank configuration file checks)")
	return t, nil
}

// Fig6 reproduces Figure 6: per-time-step costs, simulation versus
// analysis, for the five configurations. The simulation term weak-scales
// nearly perfectly; slice rendering carries the compositing and (on rank 0)
// PNG cost.
func Fig6(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Fig. 6 — per-time-step costs (simulation vs analysis)",
		Columns: []string{"row", "config", "simulation/step", "analysis/step"},
	}
	for _, cfg := range []Configuration{Baseline, HistogramCfg, AutocorrelationCfg, CatalystSlice, LibsimSlice} {
		r, err := RunMiniapp(cfg, opt)
		if err != nil {
			return nil, fmt.Errorf("config %s: %w", cfg, err)
		}
		t.AddRow("real", string(cfg), fmtS(r.SimPerStep), fmtS(r.AnalysisPer))
	}
	cori, _, _ := models(opt)
	for _, s := range PaperScales() {
		sim := cori.OscillatorStepTime(s.CellsPerRank, paperDeckOscillators)
		for _, cfg := range []Configuration{Baseline, HistogramCfg, AutocorrelationCfg, CatalystSlice, LibsimSlice} {
			var an float64
			switch cfg {
			case Baseline:
				an = 1e-6 // the bridge call with no analyses
			case HistogramCfg:
				an = cori.HistogramStepTime(s.Cores, s.CellsPerRank, opt.Bins)
			case AutocorrelationCfg:
				an = cori.AutocorrelationStepTime(s.CellsPerRank, opt.Window)
			case CatalystSlice:
				an = cori.SliceRenderStepTime(compositing.BinarySwap, s.Cores, 1920, 1080, sliceIntersectFraction(s.Cores))
			case LibsimSlice:
				an = cori.SliceRenderStepTime(compositing.DirectSend, s.Cores, 1600, 1600, sliceIntersectFraction(s.Cores))
			}
			t.AddRow("model/"+s.Label, string(cfg), fmtS(sim), fmtS(an))
		}
	}
	t.AddNote("Catalyst renders 1920x1080 via binary swap; Libsim 1600x1600 via direct send")
	return t, nil
}

// sliceIntersectFraction estimates the fraction of ranks whose block meets
// an axis-aligned plane under a near-cubic decomposition: one process layer
// out of the axis's process count.
func sliceIntersectFraction(cores int) float64 {
	// With a px x py x pz near-cubic grid, one z layer intersects: 1/pz.
	pz := 1
	for pz*pz*pz <= cores {
		pz++
	}
	return 1 / float64(pz-1)
}

// Fig7 reproduces Figure 7: startup executable footprint versus high-water
// memory for each configuration (summed over ranks).
func Fig7(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Fig. 7 — memory: startup footprint vs high-water mark",
		Columns: []string{"row", "config", "startup", "high-water"},
	}
	for _, cfg := range []Configuration{Baseline, HistogramCfg, AutocorrelationCfg, CatalystSlice, LibsimSlice} {
		r, err := RunMiniapp(cfg, opt)
		if err != nil {
			return nil, fmt.Errorf("config %s: %w", cfg, err)
		}
		t.AddRow("real", string(cfg), fmtB(r.MemStartup), fmtB(r.MemHighWater))
	}
	for _, s := range PaperScales() {
		grid := int64(s.CellsPerRank) * 8
		for _, cfg := range []Configuration{Baseline, HistogramCfg, AutocorrelationCfg, CatalystSlice, LibsimSlice} {
			high := grid
			switch cfg {
			case HistogramCfg:
				high += int64(opt.Bins) * 8
			case AutocorrelationCfg:
				high += 2 * int64(opt.Window) * int64(s.CellsPerRank) * 8
			case CatalystSlice:
				high += 1920*1080*8 + 87<<20 // framebuffer + rendering Edition
			case LibsimSlice:
				high += 1600 * 1600 * 8 // framebuffer (VisIt linked dynamically)
			}
			t.AddRow("model/"+s.Label, string(cfg), fmtB(grid*int64(s.Cores)), fmtB(high*int64(s.Cores)))
		}
	}
	t.AddNote("high-water is the sum across ranks, so it grows with scale for all phases")
	return t, nil
}
