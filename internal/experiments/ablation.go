package experiments

import (
	"fmt"

	"gosensei/internal/grid"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
	"gosensei/internal/oscillator"
)

// ZeroCopyAblation quantifies the paper's central design decision as a
// table: the per-step cost and tracked memory of accessing the simulation
// data through (a) the zero-copy SENSEI adaptor and (b) a deep-copying
// adaptor, at several per-rank grid sizes.
func ZeroCopyAblation(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Ablation — zero-copy vs copying data adaptor",
		Columns: []string{"row", "cells/rank", "mode", "access/step", "extra memory"},
	}
	for _, edge := range []int{16, 24, 32} {
		for _, forceCopy := range []bool{false, true} {
			mode := "zero-copy"
			if forceCopy {
				mode = "copy"
			}
			var perStep float64
			var extra int64
			err := mpi.Run(1, func(c *mpi.Comm) error {
				sim, err := oscillator.NewSim(c, oscillator.Config{
					GlobalCells: [3]int{edge, edge, edge}, DT: 0.05, Steps: 1,
					Oscillators: oscillator.DefaultDeck(float64(edge)),
				}, nil)
				if err != nil {
					return err
				}
				if err := sim.Step(); err != nil {
					return err
				}
				mem := metrics.NewTracker()
				d := oscillator.NewDataAdaptor(sim)
				d.ForceCopy = forceCopy
				d.Memory = mem
				d.Update()
				reg := metrics.NewRegistry(0)
				const reps = 50
				reg.Time("access", 0, func() {
					for i := 0; i < reps; i++ {
						mesh, err := d.Mesh(false)
						if err != nil {
							panic(err)
						}
						if err := d.AddArray(mesh, grid.CellData, "data"); err != nil {
							panic(err)
						}
						if i == 0 {
							extra = mem.Named("adaptor/copy")
						}
						if err := d.ReleaseData(); err != nil {
							panic(err)
						}
					}
				})
				perStep = reg.Timer("access").Total().Seconds() / reps
				return nil
			})
			if err != nil {
				return nil, err
			}
			t.AddRow("real", fmt.Sprintf("%d^3", edge), mode, fmtS(perStep), fmtB(extra))
		}
	}
	t.AddNote("zero-copy wraps the simulation buffer (0 extra bytes); copy pays allocation + memcpy per access")
	return t, nil
}
