package experiments

import (
	"fmt"
	"sync"

	"gosensei/internal/adios"
	"gosensei/internal/analysis"
	"gosensei/internal/catalyst"
	"gosensei/internal/compositing"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
	"gosensei/internal/oscillator"
)

// ADIOSWorkload selects the endpoint analysis of the §4.1.4 study.
type ADIOSWorkload string

// The FlexPath endpoint workloads.
const (
	ADIOSHistogram       ADIOSWorkload = "histogram"
	ADIOSAutocorrelation ADIOSWorkload = "autocorrelation"
	ADIOSCatalystSlice   ADIOSWorkload = "catalyst-slice"
)

// ADIOSTimings aggregates one staged run: the writer side (adios::advance
// and adios::analysis of Fig. 8) and the endpoint side (init + per-step
// analysis of Fig. 9).
type ADIOSTimings struct {
	Workload        ADIOSWorkload
	AdvancePerStep  float64
	TransferPerStep float64 // adios::analysis on the writer
	EndpointInit    float64
	EndpointPerStep float64
	WriterTotal     float64
}

// RunADIOS executes the miniapp through the FlexPath transport with the
// chosen endpoint workload, writer and endpoint as two concurrent groups
// 1:1 paired (the paper's hyperthread co-scheduling).
func RunADIOS(w ADIOSWorkload, opt Options) (*ADIOSTimings, error) {
	simCfg := oscillator.Config{
		GlobalCells: [3]int{opt.RealCells, opt.RealCells, opt.RealCells},
		DT:          0.05,
		Steps:       opt.RealSteps,
		Oscillators: oscillator.DefaultDeck(float64(opt.RealCells)),
	}
	fabric := adios.NewFabric(opt.RealRanks, 1)
	out := &ADIOSTimings{Workload: w}

	var wg sync.WaitGroup
	var writerErr, endpointErr error
	var endpointRes *adios.EndpointResult
	writerRegs := make([]*metrics.Registry, opt.RealRanks)

	wg.Add(2)
	go func() {
		defer wg.Done()
		writerErr = mpi.Run(opt.RealRanks, func(c *mpi.Comm) error {
			reg := metrics.NewRegistry(c.Rank())
			writerRegs[c.Rank()] = reg
			sim, err := oscillator.NewSim(c, simCfg, nil)
			if err != nil {
				return err
			}
			writer := adios.NewWriter(c, &adios.FlexPathTransport{Fabric: fabric})
			writer.Registry = reg
			b := core.NewBridge(c, reg, nil)
			b.AddAnalysis("adios", writer)
			d := oscillator.NewDataAdaptor(sim)
			total := reg.Timer("writer::total")
			total.Start()
			for i := 0; i < simCfg.Steps; i++ {
				if err := sim.Step(); err != nil {
					return err
				}
				d.Update()
				if _, err := b.Execute(d); err != nil {
					return err
				}
			}
			if err := b.Finalize(); err != nil {
				return err
			}
			total.Stop()
			return nil
		})
	}()
	go func() {
		defer wg.Done()
		endpointRes, endpointErr = adios.RunEndpoint(fabric, func(b *core.Bridge) error {
			switch w {
			case ADIOSHistogram:
				b.AddAnalysis("histogram", analysis.NewHistogram(b.Comm, "data", grid.CellData, opt.Bins))
			case ADIOSAutocorrelation:
				b.AddAnalysis("autocorrelation", analysis.NewAutocorrelation(b.Comm, "data", grid.CellData, opt.Window, opt.KMax))
			case ADIOSCatalystSlice:
				a := catalyst.NewSliceAdaptor(b.Comm, catalyst.Options{
					ArrayName: "data", Assoc: grid.CellData,
					Width: opt.ImageW, Height: opt.ImageH,
					SliceAxis: 2, SliceCoord: float64(opt.RealCells) / 2,
				})
				a.Registry = b.Registry
				b.AddAnalysis("catalyst", a)
			default:
				return fmt.Errorf("experiments: unknown ADIOS workload %q", w)
			}
			return nil
		})
	}()
	wg.Wait()
	if writerErr != nil {
		return nil, fmt.Errorf("writer: %w", writerErr)
	}
	if endpointErr != nil {
		return nil, fmt.Errorf("endpoint: %w", endpointErr)
	}

	steps := float64(opt.RealSteps)
	maxOver := func(regs []*metrics.Registry, name string) float64 {
		m := 0.0
		for _, r := range regs {
			if r == nil {
				continue
			}
			if v := r.Timer(name).Total().Seconds(); v > m {
				m = v
			}
		}
		return m
	}
	out.AdvancePerStep = maxOver(writerRegs, "adios::advance") / steps
	out.TransferPerStep = maxOver(writerRegs, "adios::analysis") / steps
	out.WriterTotal = maxOver(writerRegs, "writer::total")
	out.EndpointInit = maxOver(endpointRes.Registries, "endpoint::initialize")
	perStep := maxOver(endpointRes.Registries, "endpoint::decode")
	for _, r := range endpointRes.Registries {
		for _, n := range r.TimerNames() {
			if len(n) > 10 && n[:10] == "analysis::" {
				v := r.Timer(n).Total().Seconds()
				if v/steps > 0 {
					perStep += v
				}
				break
			}
		}
	}
	out.EndpointPerStep = perStep / steps
	return out, nil
}

// Fig8 reproduces Figure 8: the writer-side costs of the FlexPath coupling —
// per-step adios::advance (metadata) and adios::analysis (transfer +
// blocking) — for the histogram endpoint.
func Fig8(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Fig. 8 — ADIOS/FlexPath writer costs (histogram endpoint)",
		Columns: []string{"row", "cores", "adios::advance/step", "adios::analysis/step"},
	}
	r, err := RunADIOS(ADIOSHistogram, opt)
	if err != nil {
		return nil, err
	}
	t.AddRow("real", fmt.Sprintf("%d", opt.RealRanks), fmtS(r.AdvancePerStep), fmtS(r.TransferPerStep))
	cori, _, _ := models(opt)
	for _, s := range PaperScales() {
		adv := cori.ADIOSAdvanceTime(s.Cores)
		xfer := cori.ADIOSTransferTime(int64(s.CellsPerRank) * 8)
		t.AddRow("model/"+s.Label, fmt.Sprintf("%d", s.Cores), fmtS(adv), fmtS(xfer))
	}
	t.AddNote("adios::analysis includes the non-zero-copy buffer and blocking while the reader catches up")
	return t, nil
}

// Fig9 reproduces Figure 9: the endpoint-side timings for the three staged
// workloads, including the reader-initialization pathology the paper saw on
// Cori (an order of magnitude worse than Titan).
func Fig9(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Fig. 9 — ADIOS/FlexPath endpoint timings",
		Columns: []string{"row", "workload", "endpoint-init", "analysis/step"},
	}
	for _, w := range []ADIOSWorkload{ADIOSHistogram, ADIOSAutocorrelation, ADIOSCatalystSlice} {
		r, err := RunADIOS(w, opt)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", w, err)
		}
		t.AddRow("real", string(w), fmtS(r.EndpointInit), fmtS(r.EndpointPerStep))
	}
	cori, _, titan := models(opt)
	for _, s := range PaperScales() {
		for _, w := range []ADIOSWorkload{ADIOSHistogram, ADIOSAutocorrelation, ADIOSCatalystSlice} {
			var an float64
			switch w {
			case ADIOSHistogram:
				an = cori.HistogramStepTime(s.Cores, s.CellsPerRank, opt.Bins)
			case ADIOSAutocorrelation:
				an = cori.AutocorrelationStepTime(s.CellsPerRank, opt.Window)
			case ADIOSCatalystSlice:
				an = cori.SliceRenderStepTime(compositing.BinarySwap, s.Cores, 1920, 1080, sliceIntersectFraction(s.Cores))
			}
			an += cori.ADIOSTransferTime(int64(s.CellsPerRank) * 8) // decode side
			t.AddRow("model/cori/"+s.Label, string(w), fmtS(cori.FlexPathEndpointInitTime(s.Cores)), fmtS(an))
		}
	}
	// The Titan comparison row the paper highlights.
	s := PaperScales()[0]
	t.AddRow("model/titan/1K", string(ADIOSHistogram),
		fmtS(titan.FlexPathEndpointInitTime(s.Cores)),
		fmtS(titan.HistogramStepTime(s.Cores, s.CellsPerRank, opt.Bins)))
	t.AddNote("reader init on Cori is ~10x Titan (OS jitter from hyperthread co-allocation + shared interconnect)")
	return t, nil
}
