package experiments

import (
	"fmt"

	"gosensei/internal/metrics"
)

// Experiment binds a paper artifact to its harness.
type Experiment struct {
	// ID is the short handle used on the command line (e.g. "fig3").
	ID string
	// Artifact names the paper table/figure.
	Artifact string
	// Summary states what the artifact shows.
	Summary string
	// Run produces the table.
	Run func(Options) (*metrics.Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig3", "Figure 3", "time to solution, Original vs SENSEI Autocorrelation", Fig3},
		{"fig4", "Figure 4", "memory footprint, Original vs SENSEI Autocorrelation", Fig4},
		{"fig5", "Figure 5", "one-time costs per configuration", Fig5},
		{"fig6", "Figure 6", "per-time-step costs per configuration", Fig6},
		{"fig7", "Figure 7", "startup footprint vs high-water memory", Fig7},
		{"fig8", "Figure 8", "ADIOS/FlexPath writer costs", Fig8},
		{"fig9", "Figure 9", "ADIOS/FlexPath endpoint timings", Fig9},
		{"tab1", "Table 1", "VTK multi-file vs MPI-IO write times", Table1},
		{"fig10", "Figure 10", "Baseline vs Baseline+I/O per-step breakdown", Fig10},
		{"fig11", "Figure 11", "post hoc read/process/write at 10% cores", Fig11},
		{"fig12", "Figure 12", "in situ time to solution, weak scaling", Fig12},
		{"tab2", "Table 2", "PHASTA IS1/IS2/IS3 in situ costs", Table2},
		{"tab2png", "Table 2 ablation", "PNG compression on vs off", Table2PNG},
		{"fig15", "Figure 15", "AVF-LESLIE strong scaling with Libsim", Fig15},
		{"fig16", "Figure 16", "per-iteration SENSEI cost, Libsim every 5 steps", Fig16},
		{"fig17", "Figure 17", "Nyx solver vs histogram/slice analysis", Fig17},
		{"nyxio", "§4.2.3", "Nyx plot-file writes and executable size", NyxPosthoc},
		{"abl-zerocopy", "§3.2 design choice", "zero-copy vs copying data adaptor", ZeroCopyAblation},
		{"routeshift", "§5 adaptive routing", "router vs static backends under a mid-run workload shift", RouteShiftTable},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
