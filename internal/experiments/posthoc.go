package experiments

import (
	"fmt"
	"os"

	"gosensei/internal/analysis"
	"gosensei/internal/colormap"
	"gosensei/internal/compositing"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/iosim"
	"gosensei/internal/machine"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
	"gosensei/internal/oscillator"
	"gosensei/internal/render"
)

// WriteRunResult summarizes a Baseline+I/O run.
type WriteRunResult struct {
	SimPerStep   float64
	WritePerStep float64
	Init         float64
	Finalize     float64
	BytesPerStep int64
	Dir          string
}

// RunBaselineWithIO executes the miniapp with SENSEI enabled and a real
// file-per-rank write every step (the paper's Baseline+I/O configuration of
// Fig. 10). dir receives step files consumed by RunPosthoc.
func RunBaselineWithIO(opt Options, dir string) (*WriteRunResult, error) {
	simCfg := oscillator.Config{
		GlobalCells: [3]int{opt.RealCells, opt.RealCells, opt.RealCells},
		DT:          0.05,
		Steps:       opt.RealSteps,
		Oscillators: oscillator.DefaultDeck(float64(opt.RealCells)),
	}
	out := &WriteRunResult{Dir: dir}
	err := mpi.Run(opt.RealRanks, func(c *mpi.Comm) error {
		reg := metrics.NewRegistry(c.Rank())
		var sim *oscillator.Sim
		var err error
		reg.Time("init", 0, func() { sim, err = oscillator.NewSim(c, simCfg, nil) })
		if err != nil {
			return err
		}
		d := oscillator.NewDataAdaptor(sim)
		var bytes int64
		for i := 0; i < simCfg.Steps; i++ {
			reg.Time("sim", i, func() { err = sim.Step() })
			if err != nil {
				return err
			}
			d.Update()
			reg.Time("write", i, func() {
				mesh, merr := d.Mesh(false)
				if merr != nil {
					err = merr
					return
				}
				if merr := d.AddArray(mesh, grid.CellData, "data"); merr != nil {
					err = merr
					return
				}
				n, werr := iosim.WriteBlockFile(dir, c.Rank(), mesh.(*grid.ImageData), sim.StepIndex(), sim.Time())
				if werr != nil {
					err = werr
					return
				}
				bytes += n
			})
			if err != nil {
				return err
			}
			_ = d.ReleaseData()
		}
		reg.Time("finalize", simCfg.Steps, func() {})
		simS, err := metrics.Summarize(c, reg, "sim")
		if err != nil {
			return err
		}
		writeS, err := metrics.Summarize(c, reg, "write")
		if err != nil {
			return err
		}
		initS, err := metrics.Summarize(c, reg, "init")
		if err != nil {
			return err
		}
		total := make([]int64, 1)
		if err := mpi.Allreduce(c, []int64{bytes}, total, mpi.OpSum); err != nil {
			return err
		}
		if c.Rank() == 0 {
			steps := float64(simCfg.Steps)
			out.SimPerStep = simS.Max / steps
			out.WritePerStep = writeS.Max / steps
			out.Init = initS.Max
			out.BytesPerStep = total[0] / int64(simCfg.Steps)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PosthocTimings is one post hoc pipeline execution: read, process, write.
type PosthocTimings struct {
	Workload ADIOSWorkload // same workload names as the staging study
	Read     float64
	Process  float64
	Write    float64
}

// RunPosthoc replays the stored steps through an analysis using a reduced
// reader group (the paper uses 10% of the write cores), reporting the
// read/process/write split of Fig. 11.
func RunPosthoc(dir string, writeRanks, readRanks int, w ADIOSWorkload, opt Options) (*PosthocTimings, error) {
	if readRanks < 1 {
		readRanks = 1
	}
	steps, err := iosim.ListSteps(dir)
	if err != nil {
		return nil, err
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("experiments: no steps under %s", dir)
	}
	out := &PosthocTimings{Workload: w}
	err = mpi.Run(readRanks, func(c *mpi.Comm) error {
		reg := metrics.NewRegistry(c.Rank())
		var ac *analysis.Autocorrelation
		if w == ADIOSAutocorrelation {
			ac = analysis.NewAutocorrelation(c, "data", grid.CellData, opt.Window, opt.KMax)
		}
		for _, step := range steps {
			// Each reader loads its share of the writers' blocks.
			var blocks []*grid.ImageData
			var rerr error
			reg.Time("read", step, func() {
				for r := c.Rank(); r < writeRanks; r += readRanks {
					img, _, _, e := iosim.ReadBlockFile(dir, step, r)
					if e != nil {
						rerr = e
						return
					}
					blocks = append(blocks, img)
				}
			})
			if rerr != nil {
				return rerr
			}
			reg.Time("process", step, func() {
				switch w {
				case ADIOSHistogram:
					h := analysis.NewHistogram(c, "data", grid.CellData, opt.Bins)
					merged := mergeBlocks(blocks)
					_, rerr = h.Compute(step, merged)
				case ADIOSAutocorrelation:
					merged := mergeBlocks(blocks)
					da := &stagedMesh{mesh: merged}
					da.SetStep(step, 0)
					_, rerr = ac.Execute(da)
				case ADIOSCatalystSlice:
					fb := render.NewFramebuffer(opt.ImageW, opt.ImageH)
					for _, b := range blocks {
						spec := &render.SliceSpec{
							Plane:     render.AxisPlane(2, float64(opt.RealCells)/2),
							ArrayName: "data",
							Assoc:     grid.CellData,
							Lo:        -3, Hi: 3,
							Map:          colormap.CoolWarm(),
							DomainBounds: [6]float64{0, float64(opt.RealCells), 0, float64(opt.RealCells), 0, float64(opt.RealCells)},
						}
						if e := render.ResampleImageSlice(fb, b, spec); e != nil {
							rerr = e
							return
						}
					}
					final, e := compositing.Composite(c, fb, 0, compositing.BinarySwap)
					if e != nil {
						rerr = e
						return
					}
					if final != nil {
						reg.Time("write", step, func() {
							_, rerr = render.WritePNG(discard{}, final, render.PNGOptions{})
						})
					}
				}
			})
			if rerr != nil {
				return rerr
			}
		}
		if ac != nil {
			reg.Time("write", len(steps), func() { _ = ac.Finalize() })
		}
		read, err := metrics.Summarize(c, reg, "read")
		if err != nil {
			return err
		}
		proc, err := metrics.Summarize(c, reg, "process")
		if err != nil {
			return err
		}
		wr, err := metrics.Summarize(c, reg, "write")
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out.Read = read.Max
			out.Process = proc.Max
			out.Write = wr.Max
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// discard is an io.Writer sink for benchmark-mode image writes.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// stagedMesh adapts an in-memory mesh for analyses that take DataAdaptors.
type stagedMesh struct {
	core.BaseDataAdaptor
	mesh grid.Dataset
}

func (s *stagedMesh) Mesh(bool) (grid.Dataset, error) { return s.mesh, nil }
func (s *stagedMesh) AddArray(mesh grid.Dataset, assoc grid.Association, name string) error {
	if mesh.Attributes(assoc).Get(name) == nil {
		return fmt.Errorf("no %s array %q", assoc, name)
	}
	return nil
}
func (s *stagedMesh) ArrayNames(assoc grid.Association) ([]string, error) {
	return s.mesh.Attributes(assoc).Names(), nil
}
func (s *stagedMesh) ReleaseData() error { return nil }

// mergeBlocks concatenates the "data" cell arrays of several blocks into one
// flat container (post hoc analyses see the union of their blocks).
func mergeBlocks(blocks []*grid.ImageData) grid.Dataset {
	var vals []float64
	for _, b := range blocks {
		a := b.Attributes(grid.CellData).Get("data")
		if a == nil {
			continue
		}
		for i := 0; i < a.Tuples(); i++ {
			vals = append(vals, a.Value(i, 0))
		}
	}
	img := grid.NewImageData(grid.Extent{0, len(vals), 0, 1, 0, 1})
	img.Attributes(grid.CellData).Add(wrapData(vals))
	return img
}

// Table1 reproduces Table 1: one-step write cost, file-per-process "VTK
// I/O" versus collective MPI-IO, at the paper's three scales (2/16/123 GB).
func Table1(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Table 1 — one-step write: VTK multi-file vs MPI-IO (Cori Lustre model)",
		Columns: []string{"row", "cores", "size", "vtk-io", "mpi-io"},
	}
	m := iosim.NewModel(machine.Cori().IO, opt.Seed)
	for _, s := range PaperScales() {
		bytes := s.StepBytes()
		fpp := m.WriteTime(iosim.FilePerProcess, s.Cores, bytes)
		col := m.WriteTime(iosim.CollectiveMPIIO, s.Cores, bytes)
		t.AddRow("model/"+s.Label, fmt.Sprintf("%d", s.Cores), fmtB(bytes), fmtS(fpp), fmtS(col))
	}
	t.AddNote("paper: 0.12/0.67/9.05 s (VTK I/O) vs 0.40/3.17/22.87 s (MPI-IO)")
	return t, nil
}

// Fig10 reproduces Figure 10: Baseline vs Baseline+I/O per-step breakdown.
// The real rows perform actual per-rank file writes; the model rows show
// the write/sim ratio exploding with scale (~0.1x at 1K, ~4x at 6K, ~20x at
// 45K).
func Fig10(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Fig. 10 — Baseline vs Baseline+I/O (per-step breakdown)",
		Columns: []string{"row", "cores", "sim/step", "write/step", "write/sim"},
	}
	dir, err := os.MkdirTemp("", "gosensei-fig10-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	r, err := RunBaselineWithIO(opt, dir)
	if err != nil {
		return nil, err
	}
	t.AddRow("real", fmt.Sprintf("%d", opt.RealRanks), fmtS(r.SimPerStep), fmtS(r.WritePerStep),
		fmt.Sprintf("%.2fx", r.WritePerStep/r.SimPerStep))
	cori, _, _ := models(opt)
	m := iosim.NewModel(machine.Cori().IO, opt.Seed)
	for _, s := range PaperScales() {
		sim := cori.OscillatorStepTime(s.CellsPerRank, paperDeckOscillators)
		write := m.WriteTime(iosim.FilePerProcess, s.Cores, s.StepBytes())
		t.AddRow("model/"+s.Label, fmt.Sprintf("%d", s.Cores), fmtS(sim), fmtS(write), fmt.Sprintf("%.1fx", write/sim))
	}
	// The paper's future-work scenario: the same 45K write absorbed by
	// Cori's burst buffer tier instead of Lustre.
	s45 := PaperScales()[2]
	if bb, ok := m.BurstBufferWriteTime(s45.Cores, s45.StepBytes()); ok {
		sim := cori.OscillatorStepTime(s45.CellsPerRank, paperDeckOscillators)
		t.AddRow("model/45K+burst-buffer", fmt.Sprintf("%d", s45.Cores), fmtS(sim), fmtS(bb), fmt.Sprintf("%.1fx", bb/sim))
	}
	t.AddNote("paper: writes cost ~4x the simulation at 6K and ~20x at 45K cores")
	t.AddNote("burst-buffer row: the conclusion's 'accelerated staging operations' scenario")
	return t, nil
}

// Fig11 reproduces Figure 11: post hoc read/process/write at 10% of the
// write cores, with the read-time variability of a shared Lustre system.
func Fig11(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Fig. 11 — post hoc analysis at 10% of write cores (read/process/write)",
		Columns: []string{"row", "workload", "cores", "read", "process", "write"},
	}
	dir, err := os.MkdirTemp("", "gosensei-fig11-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if _, err := RunBaselineWithIO(opt, dir); err != nil {
		return nil, err
	}
	readRanks := opt.RealRanks / 2 // scaled-down stand-in for the 10% rule
	if readRanks < 1 {
		readRanks = 1
	}
	for _, w := range []ADIOSWorkload{ADIOSHistogram, ADIOSAutocorrelation, ADIOSCatalystSlice} {
		r, err := RunPosthoc(dir, opt.RealRanks, readRanks, w, opt)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", w, err)
		}
		t.AddRow("real", string(w), fmt.Sprintf("%d", readRanks), fmtS(r.Read), fmtS(r.Process), fmtS(r.Write))
	}
	cori, _, _ := models(opt)
	m := iosim.NewModel(machine.Cori().IO, opt.Seed)
	for _, s := range PaperScales() {
		readers := s.Cores / 10
		totalBytes := s.StepBytes() * int64(opt.RealSteps)
		read := m.ReadTime(readers, totalBytes)
		for _, w := range []ADIOSWorkload{ADIOSHistogram, ADIOSAutocorrelation, ADIOSCatalystSlice} {
			// Processing at 10x the per-core data (10% of the cores).
			cells := s.CellsPerRank * 10
			var proc, wr float64
			switch w {
			case ADIOSHistogram:
				proc = float64(opt.RealSteps) * cori.HistogramStepTime(readers, cells, opt.Bins)
			case ADIOSAutocorrelation:
				proc = float64(opt.RealSteps) * cori.AutocorrelationStepTime(cells, opt.Window)
				wr = cori.AutocorrelationFinalizeTime(readers, opt.Window, opt.KMax)
			case ADIOSCatalystSlice:
				proc = float64(opt.RealSteps) * cori.SliceRenderStepTime(compositing.BinarySwap, readers, 1920, 1080, sliceIntersectFraction(readers))
				wr = float64(opt.RealSteps) * cori.PNGTime(1920*1080, false)
			}
			t.AddRow("model/"+s.Label, string(w), fmt.Sprintf("%d", readers), fmtS(read), fmtS(proc), fmtS(wr))
		}
	}
	t.AddNote("reads are 5-10x the miniapp cost and highly variable; autocorrelation needed 2x the nodes for its step cache")
	return t, nil
}

// Fig12 reproduces Figure 12: overall time to solution for the in situ
// configurations, the weak-scaling bar chart the paper contrasts with the
// post hoc write+read costs.
func Fig12(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Fig. 12 — in situ time to solution (weak scaling)",
		Columns: []string{"row", "config", "total"},
	}
	for _, cfg := range AllConfigurations() {
		r, err := RunMiniapp(cfg, opt)
		if err != nil {
			return nil, fmt.Errorf("config %s: %w", cfg, err)
		}
		t.AddRow("real", string(cfg), fmtS(r.Total))
	}
	cori, _, _ := models(opt)
	m := iosim.NewModel(machine.Cori().IO, opt.Seed)
	steps := float64(opt.RealSteps)
	for _, s := range PaperScales() {
		sim := cori.OscillatorStepTime(s.CellsPerRank, paperDeckOscillators)
		rows := []struct {
			cfg Configuration
			an  float64
			one float64
		}{
			{Original, cori.AutocorrelationStepTime(s.CellsPerRank, opt.Window), cori.AutocorrelationFinalizeTime(s.Cores, opt.Window, opt.KMax)},
			{Baseline, 1e-6, 0},
			{HistogramCfg, cori.HistogramStepTime(s.Cores, s.CellsPerRank, opt.Bins), 0},
			{AutocorrelationCfg, cori.AutocorrelationStepTime(s.CellsPerRank, opt.Window), cori.AutocorrelationFinalizeTime(s.Cores, opt.Window, opt.KMax)},
			{CatalystSlice, cori.SliceRenderStepTime(compositing.BinarySwap, s.Cores, 1920, 1080, sliceIntersectFraction(s.Cores)), cori.CatalystInitTime(s.Cores)},
			{LibsimSlice, cori.SliceRenderStepTime(compositing.DirectSend, s.Cores, 1600, 1600, sliceIntersectFraction(s.Cores)), cori.LibsimInitTime(s.Cores)},
		}
		for _, r := range rows {
			t.AddRow("model/"+s.Label, string(r.cfg), fmtS(steps*(sim+r.an)+r.one))
		}
		// The post hoc comparison the paper makes in prose: 100 steps of
		// writes alone dwarf any in situ configuration.
		write := m.WriteTime(iosim.FilePerProcess, s.Cores, s.StepBytes())
		t.AddRow("model/"+s.Label, "post-hoc-writes-only", fmtS(steps*(sim+write)))
	}
	t.AddNote("paper: ~9 s/write x 100 steps at 45K is far longer than any in situ configuration")
	return t, nil
}
