package experiments

import (
	"fmt"

	"gosensei/internal/machine"
	"gosensei/internal/metrics"
	"gosensei/internal/perfmodel"
	"gosensei/internal/route"
)

// RouteShiftResult is the workload-shift experiment's scorecard: the
// adaptive router against every static backend choice on total budget
// violations, plus the evidence (switch steps, decision log) the smoke
// check asserts on.
type RouteShiftResult struct {
	// Steps driven and the step at which the workload shifts.
	Steps, Shift int
	// Budget the run was scored against.
	Budget route.Budget
	// RouterViolations is the adaptive router's total budget violations.
	RouterViolations int
	// StaticViolations is each static backend's total.
	StaticViolations [route.NumBackends]int
	// Switches and SwitchSteps describe the router's backend changes.
	Switches    int
	SwitchSteps []int
	// PostSwitchViolations counts router violations at steps after the
	// first switch (the smoke check requires zero).
	PostSwitchViolations int
	// Decisions is the router's full decision log.
	Decisions []route.Decision
}

// BeatsAllStatic reports whether the router's total is strictly lower than
// every static backend's.
func (r *RouteShiftResult) BeatsAllStatic() bool {
	for _, v := range r.StaticViolations {
		if r.RouterViolations >= v {
			return false
		}
	}
	return true
}

// RouteShift runs the mid-run workload-shift experiment of the adaptive
// routing study. The scenario, all costs derived from the performance model:
//
// Phase A (steps 0..Shift-1): the analysis consumes the full simulation
// array. In situ fits the latency budget; shipping the full array in
// transit busts the wire cap; writing it post hoc busts the storage cap.
// The model's priors say exactly this, so the router starts in situ.
//
// Phase B (steps Shift..): the workload shifts — the simulation's in situ
// analysis balloons to 5x its latency (busting the latency cap), while the
// analysis renegotiates to a small extract, an 8x smaller wire footprint
// that now fits the wire cap. The renegotiation is declared, so the prior
// adapter re-predicts in transit's wire bytes from the model; the latency
// balloon is NOT declared and must be discovered through observation. The
// router eats one detection-lag violation, force-switches, and finishes
// with zero post-switch violations — strictly fewer in total than any
// static choice.
func RouteShift(opt Options) (*RouteShiftResult, error) {
	const steps, shift, extractShrink = 20, 10, 8

	m := perfmodel.New(machine.Cori(), opt.Calibration)
	cellsPerRank := opt.RealCells * opt.RealCells * opt.RealCells
	base := perfmodel.RoutePrior(m, opt.RealRanks, cellsPerRank, opt.Bins)

	tIS := base[route.InSitu].Seconds
	wireFull := base[route.InTransit].WireBytes
	storFull := base[route.PostHoc].StorageBytes
	if tIS <= 0 || wireFull <= 0 || storFull <= 0 {
		return nil, fmt.Errorf("routeshift: degenerate model prior %+v", base)
	}

	budget := route.Budget{
		MaxStepSeconds:  2 * tIS,
		MaxWireBytes:    wireFull / 2,
		MaxStorageBytes: storFull / 2,
	}
	// Off-critical-path latencies are pinned as multiples of the in situ
	// base so the scenario's feasibility invariants — and therefore the
	// decision schedule — hold at every problem size; the byte footprints
	// are the model's own. (At tiny CI sizes the raw modeled advance
	// handshake would dwarf the in situ step and no backend would ever be
	// latency-feasible, which would test nothing.)
	phaseA := [route.NumBackends]route.Estimate{
		route.InSitu:    {Seconds: tIS},
		route.InTransit: {Seconds: 1.2 * tIS, WireBytes: wireFull},
		route.PostHoc:   {Seconds: 0.6 * tIS, StorageBytes: storFull},
	}
	phaseB := phaseA
	phaseB[route.InSitu].Seconds = 5 * tIS
	phaseB[route.InTransit].WireBytes = wireFull / extractShrink
	costs := func(step int, b route.Backend) route.Estimate {
		if step < shift {
			return phaseA[b]
		}
		return phaseB[b]
	}

	newRouter := func() *route.Router {
		return route.New(route.Config{
			Budget:       budget,
			Eligible:     []route.Backend{route.InSitu, route.InTransit, route.PostHoc},
			Start:        route.InSitu,
			MinDwell:     4,
			SwitchMargin: 0.2,
			Alpha:        0.5,
			PriorWeight:  4,
		}, phaseA)
	}

	res := &RouteShiftResult{Steps: steps, Shift: shift, Budget: budget}

	// Adaptive run. The loop mirrors routetest.Drive plus the prior-adapter
	// call at the declared renegotiation.
	r := newRouter()
	for step := 0; step < steps; step++ {
		if step == shift {
			// The extract renegotiation is declared: re-predict the wire
			// footprint from the model. The in situ balloon is not.
			p := phaseA[route.InTransit]
			p.WireBytes = wireFull / extractShrink
			r.SetPrior(route.InTransit, p)
		}
		d := r.Decide(step)
		cost := costs(step, d.Backend)
		r.Observe(step, d.Backend, cost)
		res.RouterViolations += budget.Violations(cost)
	}
	res.Decisions = r.Decisions()
	res.Switches = r.Switches()
	for _, d := range res.Decisions {
		if d.Switched {
			res.SwitchSteps = append(res.SwitchSteps, d.Step)
		}
	}
	if len(res.SwitchSteps) > 0 {
		first := res.SwitchSteps[0]
		for _, d := range res.Decisions {
			if d.Step >= first {
				res.PostSwitchViolations += budget.Violations(costs(d.Step, d.Backend))
			}
		}
	}

	// Static baselines.
	for b := route.Backend(0); b < route.NumBackends; b++ {
		for step := 0; step < steps; step++ {
			res.StaticViolations[b] += budget.Violations(costs(step, b))
		}
	}
	return res, nil
}

// RouteShiftTable renders the experiment as a paper-style table.
func RouteShiftTable(opt Options) (*metrics.Table, error) {
	res, err := RouteShift(opt)
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:   "Adaptive routing under a mid-run workload shift (modeled costs, Cori)",
		Columns: []string{"policy", "kind", "violations", "switches", "notes"},
	}
	names := [route.NumBackends]string{"static insitu", "static intransit", "static posthoc"}
	for b := route.Backend(0); b < route.NumBackends; b++ {
		t.AddRow(names[b], "model", fmt.Sprintf("%d", res.StaticViolations[b]), "0", "")
	}
	t.AddRow("router (auto)", "model", fmt.Sprintf("%d", res.RouterViolations),
		fmt.Sprintf("%d", res.Switches), fmt.Sprintf("switch at %v, %d post-switch violations", res.SwitchSteps, res.PostSwitchViolations))
	t.AddNote("budget: step<=%.3gs wire<=%dB storage<=%dB; workload shifts at step %d of %d",
		res.Budget.MaxStepSeconds, res.Budget.MaxWireBytes, res.Budget.MaxStorageBytes, res.Shift, res.Steps)
	t.AddNote("decision log:")
	for _, d := range res.Decisions {
		t.AddNote("  %s", d.String())
	}
	return t, nil
}
