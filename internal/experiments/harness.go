// Package experiments contains one harness per table and figure of the SC16
// SENSEI paper's evaluation. Each harness produces a metrics.Table whose
// rows come in two flavors:
//
//   - "real" rows are fully executed in this process at goroutine scale
//     (every code path — simulation, SENSEI, analyses, infrastructures,
//     compositing, PNG encoding — actually runs);
//   - "model" rows extrapolate to the paper's core counts (812 / 6,496 /
//     45,440 on Cori; up to 1,048,576 ranks on Mira) using the calibrated
//     performance model (package perfmodel) and the filesystem model
//     (package iosim).
//
// The paper's qualitative findings are asserted by this package's tests:
// SENSEI overhead is negligible, in situ beats post hoc, image size (not
// concurrency) drives rendering cost, and so on.
package experiments

import (
	"fmt"

	"gosensei/internal/analysis"
	"gosensei/internal/array"
	"gosensei/internal/catalyst"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/libsim"
	"gosensei/internal/machine"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
	"gosensei/internal/oscillator"
	"gosensei/internal/perfmodel"
)

// Configuration names the miniapp test configurations of §4.1.1.
type Configuration string

// The paper's miniapp configurations.
const (
	// Original couples the analysis by direct subroutine call, no SENSEI.
	Original Configuration = "original"
	// Baseline enables the SENSEI interface with no analysis.
	Baseline Configuration = "baseline"
	// Histogram runs the SENSEI histogram without any infrastructure.
	HistogramCfg Configuration = "histogram"
	// Autocorrelation runs the SENSEI autocorrelation directly.
	AutocorrelationCfg Configuration = "autocorrelation"
	// CatalystSlice renders a pseudocolored slice through Catalyst.
	CatalystSlice Configuration = "catalyst-slice"
	// LibsimSlice renders a pseudocolored slice through Libsim.
	LibsimSlice Configuration = "libsim-slice"
)

// AllConfigurations lists the miniapp configurations in paper order.
func AllConfigurations() []Configuration {
	return []Configuration{Original, Baseline, HistogramCfg, AutocorrelationCfg, CatalystSlice, LibsimSlice}
}

// Options tunes the harnesses. The defaults are small enough for CI; the
// cmd/experiments binary raises them.
type Options struct {
	// RealRanks is the goroutine-scale world size for the executed rows.
	RealRanks int
	// RealCells is the global cell edge for the executed rows.
	RealCells int
	// RealSteps is the time step count for the executed rows.
	RealSteps int
	// Window and KMax configure the autocorrelation.
	Window, KMax int
	// Bins configures the histogram.
	Bins int
	// ImageW, ImageH size the executed slice renders (the model rows always
	// use the paper's 1920x1080 and 1600x1600).
	ImageW, ImageH int
	// Calibration feeds the performance model; use perfmodel.Calibrate()
	// for measured rows or DefaultCalibration for deterministic output.
	Calibration perfmodel.Calibration
	// Seed drives the iosim variability stream.
	Seed int64
	// Threads requests intra-rank parallelism in the executed miniapp
	// pipelines (0 means the process thread budget divided across ranks).
	// Results are bit-identical at any setting.
	Threads int
}

// DefaultOptions returns CI-friendly settings.
func DefaultOptions() Options {
	return Options{
		RealRanks:   4,
		RealCells:   24,
		RealSteps:   8,
		Window:      10,
		KMax:        3,
		Bins:        10,
		ImageW:      96,
		ImageH:      54,
		Calibration: perfmodel.DefaultCalibration(),
		Seed:        1,
	}
}

// Scale is one weak-scaling point of the paper's Cori study.
type Scale struct {
	Label string
	Cores int
	// CellsPerRank is the per-core subgrid volume (degrees of freedom). The
	// paper holds it flat from 1K to 6K and adds ~100K DoF per core at 45K
	// (an operational node limit forced the originally planned 50K-core
	// work onto 45,440 cores).
	CellsPerRank int
}

// PaperScales returns the 1K/6K/45K weak-scaling points; per-rank cell
// counts derive from the paper's reported per-step output sizes (2 GB at
// 812 cores, 16 GB at 6,496, 123 GB at 45,440, at 8 bytes per cell).
func PaperScales() []Scale {
	return []Scale{
		{Label: "1K", Cores: 812, CellsPerRank: 330000},
		{Label: "6K", Cores: 6496, CellsPerRank: 330000},
		{Label: "45K", Cores: 45440, CellsPerRank: 430000},
	}
}

// StepBytes returns one time step's output size at a scale.
func (s Scale) StepBytes() int64 { return int64(s.Cores) * int64(s.CellsPerRank) * 8 }

// MiniappTimings aggregates one executed run.
type MiniappTimings struct {
	Config Configuration
	Ranks  int
	// Seconds, aggregated as the max over ranks (the paper's wall-clock
	// perspective) except Sum* fields.
	SimInit      float64
	AnalysisInit float64
	SimPerStep   float64 // mean per step
	AnalysisPer  float64 // mean per step
	Finalize     float64
	Total        float64
	// Memory, summed over ranks (the paper's metric).
	MemStartup   int64
	MemHighWater int64
	// ImagesWritten counts rendered outputs (slice configurations).
	ImagesWritten int
}

// RunMiniapp executes one configuration for real and aggregates its
// instrumentation.
func RunMiniapp(cfg Configuration, opt Options) (*MiniappTimings, error) {
	simCfg := oscillator.Config{
		GlobalCells: [3]int{opt.RealCells, opt.RealCells, opt.RealCells},
		DT:          0.05,
		Steps:       opt.RealSteps,
		Oscillators: oscillator.DefaultDeck(float64(opt.RealCells)),
		Threads:     opt.Threads,
	}
	out := &MiniappTimings{Config: cfg, Ranks: opt.RealRanks}
	var images int

	err := mpi.Run(opt.RealRanks, func(c *mpi.Comm) error {
		reg := metrics.NewRegistry(c.Rank())
		mem := metrics.NewTracker()

		var sim *oscillator.Sim
		var err error
		reg.Time("sim::initialize", 0, func() {
			sim, err = oscillator.NewSim(c, simCfg, mem)
		})
		if err != nil {
			return err
		}
		memStartup := mem.Current()

		// Assemble the analysis side.
		bridge := core.NewBridge(c, reg, mem)
		var direct *analysis.Autocorrelation // Original: subroutine-called
		var catalystA *catalyst.SliceAdaptor
		var libsimA *libsim.Adaptor
		reg.Time("analysis::initialize", 0, func() {
			switch cfg {
			case Original:
				direct = analysis.NewAutocorrelation(c, "data", grid.CellData, opt.Window, opt.KMax)
				direct.Memory = mem
			case Baseline:
				// SENSEI enabled, nothing registered.
			case HistogramCfg:
				h := analysis.NewHistogram(c, "data", grid.CellData, opt.Bins)
				h.Memory = mem
				bridge.AddAnalysis("histogram", h)
			case AutocorrelationCfg:
				a := analysis.NewAutocorrelation(c, "data", grid.CellData, opt.Window, opt.KMax)
				a.Memory = mem
				bridge.AddAnalysis("autocorrelation", a)
			case CatalystSlice:
				catalystA = catalyst.NewSliceAdaptor(c, catalyst.Options{
					ArrayName: "data", Assoc: grid.CellData,
					Width: opt.ImageW, Height: opt.ImageH,
					SliceAxis: 2, SliceCoord: float64(opt.RealCells) / 2,
					Workers: opt.Threads,
				})
				catalystA.Registry = reg
				catalystA.Memory = mem
				err = catalystA.Initialize()
				bridge.AddAnalysis("catalyst", catalystA)
			case LibsimSlice:
				session := libsim.DefaultSliceSession("data", float64(opt.RealCells)/2)
				session.Image.Width = opt.ImageW
				session.Image.Height = opt.ImageH
				libsimA = libsim.NewAdaptor(c, session, libsim.Options{Workers: opt.Threads})
				libsimA.Registry = reg
				libsimA.Memory = mem
				err = libsimA.Initialize()
				bridge.AddAnalysis("libsim", libsimA)
			default:
				err = fmt.Errorf("experiments: unknown configuration %q", cfg)
			}
		})
		if err != nil {
			return err
		}

		adaptor := oscillator.NewDataAdaptor(sim)
		total := reg.Timer("total")
		total.Start()
		for i := 0; i < simCfg.Steps; i++ {
			reg.Time("sim::step", i, func() { err = sim.Step() })
			if err != nil {
				return err
			}
			switch cfg {
			case Original:
				// Direct subroutine coupling: same analysis, no SENSEI.
				adaptor.Update()
				reg.Time("analysis::step", i, func() {
					_, err = direct.Execute(adaptor)
				})
			case Baseline:
				// SENSEI invoked with nothing registered: the interface's
				// own (near-zero) overhead.
				adaptor.Update()
				reg.Time("analysis::step", i, func() {
					_, err = bridge.Execute(adaptor)
				})
			default:
				adaptor.Update()
				reg.Time("analysis::step", i, func() {
					_, err = bridge.Execute(adaptor)
				})
			}
			if err != nil {
				return err
			}
		}
		reg.Time("finalize", simCfg.Steps, func() {
			if cfg == Original {
				err = direct.Finalize()
			} else {
				err = bridge.Finalize()
			}
		})
		if err != nil {
			return err
		}
		total.Stop()

		// Aggregate across ranks.
		agg := func(name string) (metrics.RankSummary, error) {
			return metrics.Summarize(c, reg, name)
		}
		simInit, err := agg("sim::initialize")
		if err != nil {
			return err
		}
		anInit, err := agg("analysis::initialize")
		if err != nil {
			return err
		}
		simStep, err := agg("sim::step")
		if err != nil {
			return err
		}
		anStep, err := agg("analysis::step")
		if err != nil {
			return err
		}
		fin, err := agg("finalize")
		if err != nil {
			return err
		}
		tot, err := agg("total")
		if err != nil {
			return err
		}
		hw, err := metrics.SumHighWater(c, mem)
		if err != nil {
			return err
		}
		startup := make([]int64, 1)
		if err := mpi.Allreduce(c, []int64{memStartup}, startup, mpi.OpSum); err != nil {
			return err
		}
		if c.Rank() == 0 {
			steps := float64(simCfg.Steps)
			out.SimInit = simInit.Max
			out.AnalysisInit = anInit.Max
			out.SimPerStep = simStep.Max / steps
			out.AnalysisPer = anStep.Max / steps
			out.Finalize = fin.Max
			out.Total = tot.Max
			out.MemStartup = startup[0]
			out.MemHighWater = hw
			if catalystA != nil {
				images = catalystA.ImagesWritten()
			}
			if libsimA != nil {
				images = libsimA.ImagesWritten()
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.ImagesWritten = images
	return out, nil
}

// models builds per-machine performance models from the options.
func models(opt Options) (cori, mira, titan *perfmodel.Model) {
	return perfmodel.New(machine.Cori(), opt.Calibration),
		perfmodel.New(machine.Mira(), opt.Calibration),
		perfmodel.New(machine.Titan(), opt.Calibration)
}

// fmtS renders seconds compactly for table cells.
func fmtS(s float64) string { return metrics.FormatSeconds(s) }

// fmtB renders bytes compactly for table cells.
func fmtB(b int64) string { return metrics.FormatBytes(b) }

// wrapData wraps scalars as a cell array named "data".
func wrapData(vals []float64) array.Array {
	return array.WrapAOS("data", 1, vals)
}
