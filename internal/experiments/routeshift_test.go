package experiments

import (
	"strings"
	"testing"

	"gosensei/internal/perfmodel"
	"gosensei/internal/route"
)

func TestRouteShiftBeatsEveryStatic(t *testing.T) {
	res, err := RouteShift(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches < 1 {
		t.Fatalf("router never switched:\n%s", route.FormatDecisions(res.Decisions))
	}
	if !res.BeatsAllStatic() {
		t.Fatalf("router (%d violations) does not strictly beat statics %v:\n%s",
			res.RouterViolations, res.StaticViolations, route.FormatDecisions(res.Decisions))
	}
	if res.PostSwitchViolations != 0 {
		t.Fatalf("%d post-switch violations:\n%s", res.PostSwitchViolations, route.FormatDecisions(res.Decisions))
	}
	// The scenario is modeled, so the exact schedule is pinned: one forced
	// budget switch one step after the shift (the detection-lag violation).
	if len(res.SwitchSteps) != 1 || res.SwitchSteps[0] != res.Shift+1 {
		t.Fatalf("switch steps = %v, want [%d]:\n%s", res.SwitchSteps, res.Shift+1, route.FormatDecisions(res.Decisions))
	}
	if res.RouterViolations != 1 {
		t.Fatalf("router violations = %d, want exactly the 1 detection-lag step", res.RouterViolations)
	}
}

func TestRouteShiftDeterministic(t *testing.T) {
	opt := DefaultOptions()
	a, err := RouteShift(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RouteShift(opt)
	if err != nil {
		t.Fatal(err)
	}
	if route.FormatDecisions(a.Decisions) != route.FormatDecisions(b.Decisions) {
		t.Fatal("workload-shift decision log not reproducible")
	}
	// Under go test, Calibrate is guarded, so even a "calibrated" run is
	// deterministic and must match the default-calibration run exactly.
	opt.Calibration = perfmodel.Calibrate()
	c, err := RouteShift(opt)
	if err != nil {
		t.Fatal(err)
	}
	if route.FormatDecisions(a.Decisions) != route.FormatDecisions(c.Decisions) {
		t.Fatal("guarded calibration changed the decision log under go test")
	}
}

func TestRouteShiftTableRenders(t *testing.T) {
	tab, err := RouteShiftTable(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"router (auto)", "static insitu", "static intransit", "static posthoc", "decision log:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
