package experiments

import (
	"fmt"

	"gosensei/internal/analysis"
	"gosensei/internal/catalyst"
	"gosensei/internal/compositing"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/iosim"
	"gosensei/internal/leslie"
	"gosensei/internal/libsim"
	"gosensei/internal/machine"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
	"gosensei/internal/nyx"
	"gosensei/internal/phasta"
)

// PHASTARun mirrors one row of Table 2.
type PHASTARun struct {
	Label  string
	Ranks  int
	ImageW int
	ImageH int
	Steps  int
	// SolverSecPerStep is PHASTA's measured per-step solver cost on Mira,
	// derived from the paper's Table 2 (total minus in situ time). The
	// solver is the paper's substrate, not its contribution, so we take it
	// as a workload parameter; our model supplies the in situ columns.
	// IS1 runs 64 ranks/core-node (slower per rank); IS3's grid is larger.
	SolverSecPerStep float64
	// Stride: images every other time step, as all paper runs did.
}

// PaperPHASTARuns returns the IS1/IS2/IS3 configurations.
func PaperPHASTARuns() []PHASTARun {
	return []PHASTARun{
		{Label: "IS1", Ranks: 262144, ImageW: 800, ImageH: 200, Steps: 120, SolverSecPerStep: 8.0},
		{Label: "IS2", Ranks: 262144, ImageW: 2900, ImageH: 725, Steps: 120, SolverSecPerStep: 5.4},
		{Label: "IS3", Ranks: 1048576, ImageW: 2900, ImageH: 725, Steps: 30, SolverSecPerStep: 18.9},
	}
}

// RunPHASTAReal executes the PHASTA proxy with Catalyst slice imaging every
// other step and returns (one-time, in-situ-per-executed-step, total).
func RunPHASTAReal(opt Options, imgW, imgH int, skipPNGCompression bool) (oneTime, perStep, total float64, err error) {
	steps := opt.RealSteps
	err = mpi.Run(opt.RealRanks, func(c *mpi.Comm) error {
		reg := metrics.NewRegistry(c.Rank())
		s, err := phasta.NewSolver(c, phasta.DefaultConfig(4*opt.RealRanks+6))
		if err != nil {
			return err
		}
		a := catalyst.NewSliceAdaptor(c, catalyst.Options{
			ArrayName: "velocity", Assoc: grid.PointData,
			Width: imgW, Height: imgH,
			SliceAxis: 2, SliceCoord: s.Cfg.Domain[2] / 2,
			SkipCompression: skipPNGCompression,
			Stride:          2, // images every other step
		})
		a.Registry = reg
		b := core.NewBridge(c, reg, nil)
		b.AddAnalysis("catalyst", a)
		d := phasta.NewDataAdaptor(s)
		tot := reg.Timer("total")
		tot.Start()
		for i := 0; i < steps; i++ {
			reg.Time("solver", i, func() { s.Step() })
			d.Update()
			reg.Time("insitu", i, func() { _, err = b.Execute(d) })
			if err != nil {
				return err
			}
		}
		if err := b.Finalize(); err != nil {
			return err
		}
		tot.Stop()
		one, err := metrics.Summarize(c, reg, "catalyst::initialize")
		if err != nil {
			return err
		}
		per, err := metrics.Summarize(c, reg, "insitu")
		if err != nil {
			return err
		}
		tt, err := metrics.Summarize(c, reg, "total")
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			oneTime = one.Max
			perStep = per.Max / float64((steps+1)/2) // executed every other step
			total = tt.Max
		}
		return nil
	})
	return oneTime, perStep, total, err
}

// Table2 reproduces Table 2: PHASTA execution times for IS1/IS2/IS3. The
// shape to reproduce: image size (IS1 vs IS2) moves the in situ cost far
// more than rank count or problem size (IS2 vs IS3); the percent-in-situ
// column lands near 8.2% / 33% / 13%.
func Table2(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Table 2 — PHASTA execution times (seconds)",
		Columns: []string{"row", "run", "one-time", "insitu/step", "total", "% insitu"},
	}
	// Real rows at miniature scale: small vs large image, same mesh.
	smallOne, smallPer, smallTot, err := RunPHASTAReal(opt, 80, 20, false)
	if err != nil {
		return nil, err
	}
	bigOne, bigPer, bigTot, err := RunPHASTAReal(opt, 290, 72, false)
	if err != nil {
		return nil, err
	}
	t.AddRow("real", "small-image(80x20)", fmtS(smallOne), fmtS(smallPer), fmtS(smallTot),
		fmt.Sprintf("%.1f", pct(smallPer*float64((opt.RealSteps+1)/2), smallTot)))
	t.AddRow("real", "large-image(290x72)", fmtS(bigOne), fmtS(bigPer), fmtS(bigTot),
		fmt.Sprintf("%.1f", pct(bigPer*float64((opt.RealSteps+1)/2), bigTot)))

	// Model rows: the solver per-step cost is the paper's substrate (taken
	// as a workload parameter, see PHASTARun); the in situ columns — the
	// paper's actual finding — come from our rendering pipeline model.
	_, mira, _ := models(opt)
	for _, r := range PaperPHASTARuns() {
		oneTime := mira.CatalystInitTime(r.Ranks) + 1.5 // + pipeline setup on BG/Q
		inSitu := mira.SliceRenderStepTime(compositing.BinarySwap, r.Ranks, r.ImageW, r.ImageH, 0.02)
		images := float64(r.Steps / 2)
		total := float64(r.Steps)*r.SolverSecPerStep + images*inSitu + oneTime
		t.AddRow("model/"+r.Label, fmt.Sprintf("%s@%dranks %dx%d", r.Label, r.Ranks, r.ImageW, r.ImageH),
			fmtS(oneTime), fmtS(inSitu), fmtS(total), fmt.Sprintf("%.1f", pct(images*inSitu+oneTime, total)))
	}
	t.AddNote("paper: IS1 8.2%%, IS2 33%%, IS3 13%% — image size, not scale, drives the in situ cost")
	return t, nil
}

// leslieSecPerCellTitan anchors the AVF-LESLIE solver cost: reactive
// multi-species finite-volume steps cost ~60 us/cell on Titan (inferred from
// the paper's per-iteration solver times at 65K cores on the 1025^3 grid).
const leslieSecPerCellTitan = 60e-6

func pct(part, whole float64) float64 {
	if whole <= 0 {
		return 0
	}
	return part / whole * 100
}

// Table2PNG reproduces the §4.2.1 ablation: on an 8-process toy problem the
// per-step in situ time fell from 4.03 s to 0.518 s when the (serial,
// rank-0) zlib compression of the PNG was skipped.
func Table2PNG(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Table 2 ablation — PNG zlib compression on vs off (8-rank toy)",
		Columns: []string{"row", "png-compression", "insitu/step"},
	}
	o := opt
	o.RealRanks = 8
	_, with, _, err := RunPHASTAReal(o, 580, 145, false)
	if err != nil {
		return nil, err
	}
	_, without, _, err := RunPHASTAReal(o, 580, 145, true)
	if err != nil {
		return nil, err
	}
	t.AddRow("real", "on", fmtS(with))
	t.AddRow("real", "off", fmtS(without))
	_, mira, _ := models(opt)
	t.AddRow("model", "on", fmtS(mira.PNGTime(2900*725, false)))
	t.AddRow("model", "off", fmtS(mira.PNGTime(2900*725, true)))
	t.AddNote("paper: 4.03 s -> 0.518 s on the toy problem when skipping compression")
	return t, nil
}

// LESLIETimings is one AVF-LESLIE strong-scaling point.
type LESLIETimings struct {
	SolverPerStep float64
	InsituPerCall float64 // when the Libsim pipeline actually fires
	SenseiPerSkip float64 // the cheap 4-out-of-5 invocations
}

// RunLESLIEReal executes the TML proxy with the 3-isosurface + 3-slice
// session every 5th step.
func RunLESLIEReal(opt Options, ranks int) (*LESLIETimings, []metrics.Event, error) {
	out := &LESLIETimings{}
	var events []metrics.Event
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		reg := metrics.NewRegistry(c.Rank())
		s, err := leslie.NewSolver(c, leslie.DefaultConfig(opt.RealCells), nil)
		if err != nil {
			return err
		}
		session := libsim.TMLSession("vorticity",
			[3]float64{0.1, 0.3, 0.5},
			[3]float64{s.Cfg.Domain[0] / 2, s.Cfg.Domain[1] / 2, s.Cfg.Domain[2] / 2})
		session.Image.Width = opt.ImageW
		session.Image.Height = opt.ImageH
		a := libsim.NewAdaptor(c, session, libsim.Options{Stride: 5})
		a.Registry = reg
		b := core.NewBridge(c, reg, nil)
		b.AddAnalysis("libsim", a)
		d := leslie.NewDataAdaptor(s)
		for i := 0; i < opt.RealSteps; i++ {
			reg.Time("avf_timestep", i, func() { err = s.Step() })
			if err != nil {
				return err
			}
			d.Update()
			reg.Time("avf_insitu::analyze", i, func() { _, err = b.Execute(d) })
			if err != nil {
				return err
			}
		}
		if err := b.Finalize(); err != nil {
			return err
		}
		solver, err := metrics.Summarize(c, reg, "avf_timestep")
		if err != nil {
			return err
		}
		insitu, err := metrics.Summarize(c, reg, "avf_insitu::analyze")
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			steps := float64(opt.RealSteps)
			fires := float64((opt.RealSteps + 4) / 5)
			out.SolverPerStep = solver.Max / steps
			// Attribute the in situ total to the firing steps.
			out.InsituPerCall = insitu.Max / fires
			out.SenseiPerSkip = insitu.Min / steps
			events = reg.EventsNamed("avf_insitu::analyze")
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, events, nil
}

// Fig15 reproduces Figure 15: AVF-LESLIE strong scaling on the 1025^3 TML,
// solver time vs in situ analysis time, 8K-131K cores. The finding: the
// complex visualization (3 isosurfaces + 3 slices at 1600^2) quickly costs
// more per firing step than the solver.
func Fig15(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Fig. 15 — AVF-LESLIE strong scaling (1025^3 TML, Libsim every 5 steps)",
		Columns: []string{"row", "cores", "avf_timestep", "avf_insitu::analyze"},
	}
	for _, ranks := range []int{2, 4, 8} {
		r, _, err := RunLESLIEReal(opt, ranks)
		if err != nil {
			return nil, err
		}
		t.AddRow("real", fmt.Sprintf("%d", ranks), fmtS(r.SolverPerStep), fmtS(r.InsituPerCall))
	}
	_, _, titan := models(opt)
	const totalCells = 1025 * 1025 * 1025
	for _, cores := range []int{8192, 16384, 32768, 65536, 131072} {
		cells := totalCells / cores
		// AVF-LESLIE integrates reactive multi-species NS: ~60 us per cell
		// per step on Titan (anchored to the paper's reported solver times;
		// chemistry dominates, so this is far above our proxy's Euler cost).
		solver := float64(cells) * leslieSecPerCellTitan
		// Six render passes (3 iso + 3 slices) into one 1600^2 image plus a
		// direct-send composite: the per-firing-step analysis cost.
		iso := 3 * float64(cells) * 40e-9 * (opt.Calibration.LocalGFLOPS / machine.Titan().CoreGFLOPS)
		render := titan.SliceRenderStepTime(compositing.DirectSend, cores, 1600, 1600, 3*sliceIntersectFraction(cores))
		t.AddRow("model/"+fmt.Sprintf("%dK", cores/1024), fmt.Sprintf("%d", cores), fmtS(solver), fmtS(iso+render))
	}
	t.AddNote("paper: analysis exceeded the solver per firing step; ~1-1.5 s/step added on average over 100 steps")
	return t, nil
}

// Fig16 reproduces Figure 16: the per-iteration SENSEI cost at 65K cores —
// a low baseline (<0.5 s data-adaptor overhead) with 7-8 s spikes every 5th
// iteration when the Libsim pipeline fires.
func Fig16(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Fig. 16 — per-iteration SENSEI cost (Libsim fires every 5 steps)",
		Columns: []string{"row", "step", "seconds", "fired"},
	}
	_, events, err := RunLESLIEReal(opt, 4)
	if err != nil {
		return nil, err
	}
	for _, e := range events {
		fired := "-"
		if e.Step%5 == 0 {
			fired = "libsim"
		}
		t.AddRow("real", fmt.Sprintf("%d", e.Step), fmtS(e.Seconds), fired)
	}
	_, _, titan := models(opt)
	const cores = 65536
	cells := 1025 * 1025 * 1025 / cores
	adaptor := float64(cells) * 8e-9 * (opt.Calibration.LocalGFLOPS / machine.Titan().CoreGFLOPS) * 800 // vorticity + slice exposure over the full block
	fire := titan.SliceRenderStepTime(compositing.DirectSend, cores, 1600, 1600, 3*sliceIntersectFraction(cores)) +
		3*float64(cells)*40e-9*(opt.Calibration.LocalGFLOPS/machine.Titan().CoreGFLOPS)
	for step := 0; step < 10; step++ {
		v := adaptor
		fired := "-"
		if step%5 == 0 {
			v += fire
			fired = "libsim"
		}
		t.AddRow("model/65K", fmt.Sprintf("%d", step), fmtS(v), fired)
	}
	t.AddNote("paper: ~0.5 s SENSEI overhead, 7-8 s when Libsim renders")
	return t, nil
}

// NyxScale is one Fig. 17 configuration.
type NyxScale struct {
	Label string
	Cores int
	Grid  int
}

// PaperNyxScales returns the paper's three Nyx runs.
func PaperNyxScales() []NyxScale {
	return []NyxScale{
		{Label: "1024^3", Cores: 512, Grid: 1024},
		{Label: "2048^3", Cores: 4096, Grid: 2048},
		{Label: "4096^3", Cores: 32768, Grid: 4096},
	}
}

// RunNyxReal executes the PM proxy under the three Fig. 17 configurations:
// baseline (no SENSEI), histogram, slice.
func RunNyxReal(opt Options, workload string) (solverPerStep, analysisPerStep float64, err error) {
	err = mpi.Run(opt.RealRanks, func(c *mpi.Comm) error {
		reg := metrics.NewRegistry(c.Rank())
		s, err := nyx.NewSim(c, nyx.DefaultConfig(opt.RealCells))
		if err != nil {
			return err
		}
		b := core.NewBridge(c, reg, nil)
		switch workload {
		case "baseline":
		case "histogram":
			b.AddAnalysis("histogram", analysis.NewHistogram(c, "dark_matter_density", grid.CellData, opt.Bins))
		case "slice":
			a := catalyst.NewSliceAdaptor(c, catalyst.Options{
				ArrayName: "dark_matter_density", Assoc: grid.CellData,
				Width: opt.ImageW, Height: opt.ImageH,
				SliceAxis: 2, SliceCoord: 0.5,
			})
			a.Registry = reg
			b.AddAnalysis("catalyst", a)
		default:
			return fmt.Errorf("experiments: unknown nyx workload %q", workload)
		}
		d := nyx.NewDataAdaptor(s)
		for i := 0; i < opt.RealSteps; i++ {
			reg.Time("solver", i, func() { err = s.Step() })
			if err != nil {
				return err
			}
			if workload != "baseline" {
				d.Update()
				reg.Time("analysis", i, func() { _, err = b.Execute(d) })
				if err != nil {
					return err
				}
			}
		}
		if err := b.Finalize(); err != nil {
			return err
		}
		sv, err := metrics.Summarize(c, reg, "solver")
		if err != nil {
			return err
		}
		an, err := metrics.Summarize(c, reg, "analysis")
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			solverPerStep = sv.Max / float64(opt.RealSteps)
			analysisPerStep = an.Max / float64(opt.RealSteps)
		}
		return nil
	})
	return solverPerStep, analysisPerStep, err
}

// Fig17 reproduces Figure 17: Nyx per-step solution time versus histogram
// and slice analysis time. The finding: analysis is negligible — under a
// second against minutes-long steps, smaller than run-to-run variation.
func Fig17(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Fig. 17 — Nyx: solver vs in situ analysis per step",
		Columns: []string{"row", "scale", "cores", "solver/step", "histogram/step", "slice/step"},
	}
	base, _, err := RunNyxReal(opt, "baseline")
	if err != nil {
		return nil, err
	}
	_, hist, err := RunNyxReal(opt, "histogram")
	if err != nil {
		return nil, err
	}
	_, slice, err := RunNyxReal(opt, "slice")
	if err != nil {
		return nil, err
	}
	t.AddRow("real", fmt.Sprintf("%d^3", opt.RealCells), fmt.Sprintf("%d", opt.RealRanks),
		fmtS(base), fmtS(hist), fmtS(slice))

	cori, _, _ := models(opt)
	for _, s := range PaperNyxScales() {
		cells := s.Grid * s.Grid * s.Grid / s.Cores
		// Nyx steps are heavy: hydro + gravity + particles, ~8000 flops per
		// cell per step (anchored to the paper's 45-135 min for 40 steps).
		solver := float64(cells) * 8000 * 1e-9 * (opt.Calibration.LocalGFLOPS / machine.Cori().CoreGFLOPS)
		hist := cori.HistogramStepTime(s.Cores, cells, opt.Bins)
		slice := cori.SliceRenderStepTime(compositing.BinarySwap, s.Cores, 1920, 1080, sliceIntersectFraction(s.Cores))
		t.AddRow("model/"+s.Label, s.Label, fmt.Sprintf("%d", s.Cores), fmtS(solver), fmtS(hist), fmtS(slice))
	}
	t.AddNote("paper: both analyses take under a second per step; total difference is below run-to-run variation")
	return t, nil
}

// NyxPosthoc reproduces the §4.2.3 post hoc numbers: plot-file write times
// (17/80/312 s for eight variables) and the executable-size overhead
// (68 MB -> 109 MB with SENSEI+Catalyst linked in).
func NyxPosthoc(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:   "Nyx §4.2.3 — plot-file writes and executable size",
		Columns: []string{"row", "scale", "plotfile-write", "exe-baseline", "exe-with-sensei"},
	}
	m := iosim.NewModel(machine.Cori().IO, opt.Seed)
	for _, s := range PaperNyxScales() {
		gridBytes := int64(s.Grid) * int64(s.Grid) * int64(s.Grid) * 8
		w := m.PlotfileWriteTime(s.Cores, gridBytes, 8)
		t.AddRow("model/"+s.Label, s.Label, fmtS(w), fmtB(68<<20), fmtB(109<<20))
	}
	t.AddNote("paper: ~17/80/312 s per plot file; every skipped plot file amortizes the in situ instrumentation")
	return t, nil
}
