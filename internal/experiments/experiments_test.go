package experiments

import (
	"os"
	"strings"
	"testing"

	"gosensei/internal/compositing"
	"gosensei/internal/iosim"
	"gosensei/internal/machine"
	"gosensei/internal/perfmodel"
)

func testOptions() Options {
	o := DefaultOptions()
	o.RealRanks = 4
	o.RealCells = 16
	o.RealSteps = 6
	o.ImageW = 48
	o.ImageH = 32
	return o
}

func TestAllExperimentsProduceTables(t *testing.T) {
	opt := testOptions()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(opt)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			s := tab.String()
			// Ablation tables are real-rows-only; everything else carries
			// model rows, and all but the pure-model I/O tables carry real
			// rows.
			if e.ID != "abl-zerocopy" && !strings.Contains(s, "model") {
				t.Errorf("%s: no model rows in\n%s", e.ID, s)
			}
			// routeshift is a modeled control-loop study with no executed rows.
			if e.ID != "tab1" && e.ID != "nyxio" && e.ID != "routeshift" && !strings.Contains(s, "real") {
				t.Errorf("%s: no real rows in\n%s", e.ID, s)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig3"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunMiniappAllConfigurations(t *testing.T) {
	opt := testOptions()
	for _, cfg := range AllConfigurations() {
		r, err := RunMiniapp(cfg, opt)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if r.Total <= 0 || r.SimPerStep <= 0 {
			t.Errorf("%s: degenerate timings %+v", cfg, r)
		}
		if r.MemHighWater <= 0 {
			t.Errorf("%s: no memory tracked", cfg)
		}
		switch cfg {
		case CatalystSlice, LibsimSlice:
			if r.ImagesWritten != opt.RealSteps {
				t.Errorf("%s: images=%d want %d", cfg, r.ImagesWritten, opt.RealSteps)
			}
		}
	}
}

func TestSENSEIOverheadNegligible(t *testing.T) {
	// The Fig. 3 claim, asserted on real executions: Original (subroutine
	// call) and SENSEI Autocorrelation differ by far less than 2x (they run
	// identical kernels; only the interface differs). Generous bound because
	// CI timing is noisy at millisecond scale.
	opt := testOptions()
	opt.RealCells = 24
	orig, err := RunMiniapp(Original, opt)
	if err != nil {
		t.Fatal(err)
	}
	sensei, err := RunMiniapp(AutocorrelationCfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	ratio := sensei.Total / orig.Total
	if ratio > 1.8 || ratio < 0.55 {
		t.Fatalf("SENSEI overhead out of bounds: ratio=%.2f (orig %.4fs, sensei %.4fs)",
			ratio, orig.Total, sensei.Total)
	}
	// And identical memory accounting: zero-copy means the same buffers.
	if orig.MemHighWater != sensei.MemHighWater {
		t.Fatalf("memory differs: %d vs %d", orig.MemHighWater, sensei.MemHighWater)
	}
}

func TestBaselineCheaperThanAnalyses(t *testing.T) {
	opt := testOptions()
	base, err := RunMiniapp(Baseline, opt)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := RunMiniapp(AutocorrelationCfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if base.AnalysisPer > auto.AnalysisPer {
		t.Fatalf("baseline bridge call (%.6fs) costs more than autocorrelation (%.6fs)",
			base.AnalysisPer, auto.AnalysisPer)
	}
	if base.MemHighWater >= auto.MemHighWater {
		t.Fatal("autocorrelation windows should raise the high-water mark")
	}
}

func TestWriteDominatesAtScaleModel(t *testing.T) {
	// Fig. 10's shape: write/sim per-step ratio ~0.1x at 1K, >2x at 6K,
	// >10x at 45K.
	opt := testOptions()
	cori := perfmodel.New(machine.Cori(), opt.Calibration)
	m := iosim.NewModel(machine.Cori().IO, 1)
	ratios := make([]float64, 0, 3)
	for _, s := range PaperScales() {
		sim := cori.OscillatorStepTime(s.CellsPerRank, paperDeckOscillators)
		write := m.WriteTime(iosim.FilePerProcess, s.Cores, s.StepBytes())
		ratios = append(ratios, write/sim)
	}
	if ratios[0] > 1.5 {
		t.Errorf("1K write/sim ratio too high: %.2f (paper: little impact)", ratios[0])
	}
	if ratios[1] < 3 || ratios[1] > 12 {
		t.Errorf("6K write/sim ratio off: %.2f (paper ~4x)", ratios[1])
	}
	if ratios[2] < 15 {
		t.Errorf("45K write/sim ratio too low: %.2f (paper ~20x)", ratios[2])
	}
	if !(ratios[0] < ratios[1] && ratios[1] < ratios[2]) {
		t.Errorf("ratios not increasing: %v", ratios)
	}
}

func TestRealPosthocPipeline(t *testing.T) {
	opt := testOptions()
	dir, err := os.MkdirTemp("", "gosensei-posthoc-test-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	w, err := RunBaselineWithIO(opt, dir)
	if err != nil {
		t.Fatal(err)
	}
	if w.WritePerStep <= 0 || w.BytesPerStep <= 0 {
		t.Fatalf("write run degenerate: %+v", w)
	}
	for _, wl := range []ADIOSWorkload{ADIOSHistogram, ADIOSAutocorrelation, ADIOSCatalystSlice} {
		r, err := RunPosthoc(dir, opt.RealRanks, 2, wl, opt)
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if r.Read <= 0 || r.Process <= 0 {
			t.Errorf("%s: degenerate posthoc timings %+v", wl, r)
		}
	}
}

func TestADIOSStagingDeliversAllSteps(t *testing.T) {
	opt := testOptions()
	r, err := RunADIOS(ADIOSHistogram, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.AdvancePerStep < 0 || r.TransferPerStep <= 0 {
		t.Fatalf("writer timings degenerate: %+v", r)
	}
	if r.EndpointInit <= 0 || r.EndpointPerStep <= 0 {
		t.Fatalf("endpoint timings degenerate: %+v", r)
	}
}

func TestTable2ImageSizeDrivesRealCost(t *testing.T) {
	opt := testOptions()
	opt.RealSteps = 4
	_, smallPer, _, err := RunPHASTAReal(opt, 60, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	_, bigPer, _, err := RunPHASTAReal(opt, 480, 128, false)
	if err != nil {
		t.Fatal(err)
	}
	if bigPer <= smallPer {
		t.Fatalf("64x more pixels should cost more: small=%.5fs big=%.5fs", smallPer, bigPer)
	}
}

func TestPNGAblationReal(t *testing.T) {
	opt := testOptions()
	opt.RealSteps = 4
	opt.RealRanks = 2
	_, with, _, err := RunPHASTAReal(opt, 600, 300, false)
	if err != nil {
		t.Fatal(err)
	}
	_, without, _, err := RunPHASTAReal(opt, 600, 300, true)
	if err != nil {
		t.Fatal(err)
	}
	// Compression must not be cheaper than skipping it (the paper saw ~8x;
	// at this miniature scale we only demand the direction).
	if with < without*0.8 {
		t.Fatalf("skipping compression should not slow things: with=%.5fs without=%.5fs", with, without)
	}
}

func TestLESLIESpikesEveryFifthStep(t *testing.T) {
	opt := testOptions()
	opt.RealSteps = 10
	_, events, err := RunLESLIEReal(opt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 10 {
		t.Fatalf("events=%d", len(events))
	}
	var fire, skip float64
	var nf, ns int
	for _, e := range events {
		if e.Step%5 == 0 {
			fire += e.Seconds
			nf++
		} else {
			skip += e.Seconds
			ns++
		}
	}
	if nf == 0 || ns == 0 {
		t.Fatal("bad partition")
	}
	if fire/float64(nf) <= skip/float64(ns) {
		t.Fatalf("firing steps (%.5fs avg) should dwarf skips (%.5fs avg)",
			fire/float64(nf), skip/float64(ns))
	}
}

func TestNyxAnalysisNegligibleReal(t *testing.T) {
	// Fig. 17's claim on real executions: the PM solver step costs far more
	// than a histogram of the density field.
	opt := testOptions()
	opt.RealCells = 16
	opt.RealSteps = 3
	solver, _, err := RunNyxReal(opt, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	_, hist, err := RunNyxReal(opt, "histogram")
	if err != nil {
		t.Fatal(err)
	}
	if hist > solver {
		t.Fatalf("histogram (%.5fs) should be cheaper than a PM step (%.5fs)", hist, solver)
	}
}

func TestInSituBeatsPosthocAtScaleModel(t *testing.T) {
	// The paper's headline comparison: at 45K, 100 steps of in situ
	// histogram beat 100 steps of writes alone.
	opt := testOptions()
	cori := perfmodel.New(machine.Cori(), opt.Calibration)
	m := iosim.NewModel(machine.Cori().IO, 1)
	s := PaperScales()[2]
	steps := 100.0
	sim := cori.OscillatorStepTime(s.CellsPerRank, paperDeckOscillators)
	inSitu := steps * (sim + cori.HistogramStepTime(s.Cores, s.CellsPerRank, opt.Bins))
	postHocWrites := steps * (sim + m.WriteTime(iosim.FilePerProcess, s.Cores, s.StepBytes()))
	if inSitu >= postHocWrites/3 {
		t.Fatalf("in situ (%.0fs) should be far below post hoc writes (%.0fs)", inSitu, postHocWrites)
	}
	// Even the most expensive in situ configuration (Libsim 1600^2) wins.
	libsim := steps * (sim + cori.SliceRenderStepTime(compositing.DirectSend, s.Cores, 1600, 1600, sliceIntersectFraction(s.Cores)))
	if libsim >= postHocWrites {
		t.Fatalf("libsim in situ (%.0fs) should beat post hoc writes (%.0fs)", libsim, postHocWrites)
	}
}

func TestSliceIntersectFraction(t *testing.T) {
	f := sliceIntersectFraction(4096) // 16^3
	if f <= 0 || f > 0.2 {
		t.Fatalf("fraction=%v", f)
	}
	if sliceIntersectFraction(8) != 0.5 {
		t.Fatalf("8 ranks (2x2x2) should give 1/2, got %v", sliceIntersectFraction(8))
	}
}

func TestFig6AnalysisOrderingModel(t *testing.T) {
	// Fig. 6's per-step cost ordering at every paper scale:
	// baseline < histogram < autocorrelation < catalyst < libsim.
	opt := testOptions()
	cori := perfmodel.New(machine.Cori(), opt.Calibration)
	for _, s := range PaperScales() {
		hist := cori.HistogramStepTime(s.Cores, s.CellsPerRank, opt.Bins)
		auto := cori.AutocorrelationStepTime(s.CellsPerRank, opt.Window)
		cat := cori.SliceRenderStepTime(compositing.BinarySwap, s.Cores, 1920, 1080, sliceIntersectFraction(s.Cores))
		lib := cori.SliceRenderStepTime(compositing.DirectSend, s.Cores, 1600, 1600, sliceIntersectFraction(s.Cores))
		if !(hist < auto && auto < cat && cat < lib) {
			t.Errorf("%s: ordering broken: hist=%.4f auto=%.4f catalyst=%.4f libsim=%.4f",
				s.Label, hist, auto, cat, lib)
		}
		// The simulation term dwarfs the light analyses (weak-scaling story).
		sim := cori.OscillatorStepTime(s.CellsPerRank, paperDeckOscillators)
		if hist > sim/10 {
			t.Errorf("%s: histogram (%.4f) should be <10%% of sim (%.4f)", s.Label, hist, sim)
		}
	}
}

func TestFig5LibsimInitLinearity(t *testing.T) {
	// Fig. 5's callout: Libsim init grows ~linearly with rank count while
	// Catalyst init stays flat.
	opt := testOptions()
	cori := perfmodel.New(machine.Cori(), opt.Calibration)
	scales := PaperScales()
	l1 := cori.LibsimInitTime(scales[0].Cores)
	l45 := cori.LibsimInitTime(scales[2].Cores)
	ratio := l45 / l1
	rankRatio := float64(scales[2].Cores) / float64(scales[0].Cores)
	if ratio < rankRatio*0.8 || ratio > rankRatio*1.2 {
		t.Errorf("libsim init growth %.1fx, rank growth %.1fx", ratio, rankRatio)
	}
	c1 := cori.CatalystInitTime(scales[0].Cores)
	c45 := cori.CatalystInitTime(scales[2].Cores)
	if c45 > 3*c1 {
		t.Errorf("catalyst init should stay near-flat: %.4f -> %.4f", c1, c45)
	}
}
