package freeproc

import (
	"testing"

	"gosensei/internal/adios"
	"gosensei/internal/analysis"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
	"gosensei/internal/oscillator"
)

func TestInterceptionAnalyzesWrites(t *testing.T) {
	cfg := oscillator.Config{
		GlobalCells: [3]int{8, 8, 8},
		DT:          0.1,
		Steps:       3,
		Oscillators: oscillator.DefaultDeck(8),
	}
	err := mpi.Run(2, func(c *mpi.Comm) error {
		sim, err := oscillator.NewSim(c, cfg, nil)
		if err != nil {
			return err
		}
		b := core.NewBridge(c, nil, nil)
		h := analysis.NewHistogram(c, "data", grid.CellData, 8)
		b.AddAnalysis("histogram", h)
		ip := New(b)

		d := oscillator.NewDataAdaptor(sim)
		for i := 0; i < cfg.Steps; i++ {
			if err := sim.Step(); err != nil {
				return err
			}
			// The simulation's normal output path: serialize the step and
			// write it to "a file" — which is the interposer.
			d.Update()
			mesh, err := d.Mesh(false)
			if err != nil {
				return err
			}
			if err := d.AddArray(mesh, grid.CellData, "data"); err != nil {
				return err
			}
			w := ip.NewStepWriter()
			payload := adios.EncodeStep(mesh.(*grid.ImageData), sim.StepIndex(), sim.Time())
			if _, err := w.Write(payload); err != nil {
				return err
			}
			if err := w.Close(); err != nil {
				return err
			}
			_ = d.ReleaseData()
		}
		if err := ip.Finalize(); err != nil {
			return err
		}
		if ip.Steps() != cfg.Steps {
			t.Errorf("intercepted %d steps, want %d", ip.Steps(), cfg.Steps)
		}
		if c.Rank() == 0 {
			if h.Last == nil || h.Last.Total() != 8*8*8/2 {
				// Each rank intercepts only its own block; histogram still
				// reduces globally: total is the full grid.
				if h.Last == nil || h.Last.Total() != 8*8*8 {
					t.Errorf("histogram=%+v", h.Last)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInterceptionPaysTwoCopies(t *testing.T) {
	// The §2.2.5 criticism, quantified: the interposer's tracked high-water
	// mark covers the captured file bytes plus the decoded dataset — versus
	// zero for the SENSEI zero-copy adaptor.
	err := mpi.Run(1, func(c *mpi.Comm) error {
		sim, err := oscillator.NewSim(c, oscillator.Config{
			GlobalCells: [3]int{8, 8, 8}, DT: 0.1, Steps: 1,
			Oscillators: oscillator.DefaultDeck(8),
		}, nil)
		if err != nil {
			return err
		}
		if err := sim.Step(); err != nil {
			return err
		}
		mem := metrics.NewTracker()
		b := core.NewBridge(c, nil, nil)
		b.AddAnalysis("histogram", analysis.NewHistogram(c, "data", grid.CellData, 4))
		ip := New(b)
		ip.Memory = mem

		d := oscillator.NewDataAdaptor(sim)
		d.Update()
		mesh, _ := d.Mesh(false)
		if err := d.AddArray(mesh, grid.CellData, "data"); err != nil {
			return err
		}
		w := ip.NewStepWriter()
		payload := adios.EncodeStep(mesh.(*grid.ImageData), 1, 0.1)
		if _, err := w.Write(payload); err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		dataBytes := int64(8 * 8 * 8 * 8)
		if mem.HighWater() < 2*dataBytes {
			t.Errorf("interception high water %d, want >= 2x data (%d): both copies must be real",
				mem.HighWater(), 2*dataBytes)
		}
		if mem.Current() != 0 {
			t.Errorf("interception buffers leaked: %d", mem.Current())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInterceptionRejectsGarbage(t *testing.T) {
	b := core.NewBridge(nil, nil, nil)
	ip := New(b)
	w := ip.NewStepWriter()
	if _, err := w.Write([]byte("definitely not a step file")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("garbage write accepted")
	}
	if ip.Steps() != 0 {
		t.Fatal("garbage counted as a step")
	}
}
