// Package freeproc implements a Freeprocessing-style coupling (Fogal et al.
// 2014), one of the alternative simplified interfaces the SC16 SENSEI paper
// surveys in §2.2.5: instead of instrumenting the simulation, the library
// intercepts "the results being written to disk and us[es] that to
// construct the grids and fields".
//
// The paper's criticism — which this package exists to make measurable — is
// that interception "has the potential for multiple data copies: the
// simulation may make an initial data copy to prepare it for a specific
// file format and then another data copy from the file format to the in
// situ processing engine". Both copies are real here and registered with
// the memory tracker, so the benchmark suite can put the SENSEI zero-copy
// adaptor and the interposer side by side.
package freeproc

import (
	"bytes"
	"fmt"

	"gosensei/internal/adios"
	"gosensei/internal/core"
	"gosensei/internal/metrics"
)

// Interposer captures a simulation's file writes and feeds the
// reconstructed datasets to a SENSEI bridge. The simulation keeps calling
// its ordinary "write a step file" routine; it never sees the bridge.
type Interposer struct {
	Bridge *core.Bridge
	// Memory, when set, accounts for the two interception copies.
	Memory *metrics.Tracker

	steps int
}

// New builds an interposer over a bridge.
func New(b *core.Bridge) *Interposer { return &Interposer{Bridge: b} }

// Steps reports how many intercepted writes were analyzed.
func (ip *Interposer) Steps() int { return ip.steps }

// StepWriter is the io.Writer the simulation's output routine writes its
// serialized step into; Close reconstructs the dataset and runs the bridge.
type StepWriter struct {
	ip  *Interposer
	buf bytes.Buffer
}

// NewStepWriter starts intercepting one step file.
func (ip *Interposer) NewStepWriter() *StepWriter {
	return &StepWriter{ip: ip}
}

// Write implements io.Writer: the bytes the simulation produced for the
// file format — interception copy #1.
func (w *StepWriter) Write(p []byte) (int, error) {
	n, err := w.buf.Write(p)
	if err == nil && w.ip.Memory != nil {
		w.ip.Memory.Alloc("freeproc/capture", int64(n))
	}
	return n, err
}

// Close ends the intercepted write: the captured file-format bytes are
// decoded back into a dataset — interception copy #2 — and handed to the
// bridge as a staged step.
func (w *StepWriter) Close() error {
	defer func() {
		if w.ip.Memory != nil {
			w.ip.Memory.FreeAll("freeproc/capture")
			w.ip.Memory.FreeAll("freeproc/decoded")
		}
	}()
	img, step, tm, err := adios.DecodeStep(w.buf.Bytes())
	if err != nil {
		return fmt.Errorf("freeproc: intercepted write is not a recognized step file: %w", err)
	}
	if w.ip.Memory != nil {
		w.ip.Memory.Alloc("freeproc/decoded", img.ByteSize())
	}
	da := &adios.StagedDataAdaptor{Data: img}
	da.SetStep(step, tm)
	if _, err := w.ip.Bridge.Execute(da); err != nil {
		return err
	}
	w.ip.steps++
	return nil
}

// Finalize finalizes the bridge once the simulation stops writing.
func (ip *Interposer) Finalize() error { return ip.Bridge.Finalize() }
