// Transport: the seam that lets a Comm span OS processes.
//
// The in-process runtime delivers a message by appending it to the
// destination rank's mailbox — a function call. A distributed world replaces
// that function call with a wire hop: the sending rank serializes the
// message into an Envelope, hands it to the world's Transport, and the
// receiving process calls World.Deliver to append it to the (single) mailbox
// it hosts. Everything above this seam — tag matching, collectives, fault
// injection, traffic odometers — is unchanged, which is the point: the
// binomial/ring/Rabenseifner algorithms in collectives.go run their real
// communication schedules across TCP without knowing it.
//
// The fast path stays fast: an in-process world has a nil Transport, and the
// send path tests one pointer before taking the exact pre-transport route.
//
// Payload encoding is by element type: pointer-free ("POD") element types —
// every numeric type and structs/arrays thereof, which covers all hot-path
// traffic — are shipped as their raw in-memory bytes; anything with pointers
// (strings, nested slices) falls back to encoding/gob. Raw bytes are only
// exchanged between ranks of one world, which a launcher builds from the
// same executable on the same machine, so layout and endianness agree by
// construction; the element type name travels in the envelope and is checked
// on decode, mirroring the in-process type assertion.
package mpi

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"
	"time"
	"unsafe"
)

// Transport carries envelopes to ranks hosted by other processes. Send must
// be safe for concurrent use by the local rank's goroutines; ordering must
// be preserved per destination (MPI's non-overtaking guarantee relies on
// it). Implementations live outside this package (internal/world).
type Transport interface {
	// Send ships one envelope to the process hosting env.WDst. The envelope
	// and its Data are owned by the transport for the duration of the call
	// only; implementations must not retain them after returning.
	Send(env *Envelope) error
	// Close releases the transport's resources.
	Close() error
}

// Envelope is one point-to-point message in wire form: the routing identity
// (world ranks), the matching identity (communicator rank, tag, context),
// the fault-injection markers the in-process path carries in its message
// struct, and the serialized payload.
type Envelope struct {
	WSrc int // sender's world rank
	WDst int // destination world rank
	Src  int // sender's rank within the communicator
	Tag  int
	Ctx  int
	// Seq and Reorder mirror message.seq / SendFault.Reorder: the per-edge
	// dedup sequence and the queue-jump flag, so injected faults behave
	// identically on both transports.
	Seq     uint64
	Reorder bool
	Kind    uint8  // payloadRaw or payloadGob
	Elem    string // element type name, checked on decode
	Count   int    // element count
	Data    []byte
}

// Payload encodings.
const (
	payloadRaw uint8 = iota // raw in-memory bytes of a pointer-free element slice
	payloadGob              // encoding/gob fallback for pointerful element types
)

// envelope wire layout (little-endian):
//
//	wsrc u32 | wdst u32 | src u32 | tag u64 | ctx u64 | seq u64 |
//	flags u8 | kind u8 | elemLen u16 | count u64 | elem | data
const envelopeHeaderLen = 4 + 4 + 4 + 8 + 8 + 8 + 1 + 1 + 2 + 8

const envFlagReorder uint8 = 1 << 0

// AppendEnvelope appends the wire encoding of e to dst and returns the
// extended slice. The destination buffer is reusable across sends, keeping
// the steady-state wire path allocation-free for raw payloads.
func AppendEnvelope(dst []byte, e *Envelope) []byte {
	var b [envelopeHeaderLen]byte
	le := binary.LittleEndian
	le.PutUint32(b[0:4], uint32(e.WSrc))
	le.PutUint32(b[4:8], uint32(e.WDst))
	le.PutUint32(b[8:12], uint32(e.Src))
	le.PutUint64(b[12:20], uint64(int64(e.Tag)))
	le.PutUint64(b[20:28], uint64(int64(e.Ctx)))
	le.PutUint64(b[28:36], e.Seq)
	if e.Reorder {
		b[36] = envFlagReorder
	}
	b[37] = e.Kind
	le.PutUint16(b[38:40], uint16(len(e.Elem)))
	le.PutUint64(b[40:48], uint64(int64(e.Count)))
	dst = append(dst, b[:]...)
	dst = append(dst, e.Elem...)
	return append(dst, e.Data...)
}

// DecodeEnvelope reverses AppendEnvelope. Data is copied out of p, so the
// envelope stays valid after the caller's read buffer is reused (frame
// readers recycle their payload buffer between frames).
func DecodeEnvelope(p []byte) (Envelope, error) {
	if len(p) < envelopeHeaderLen {
		return Envelope{}, fmt.Errorf("mpi: envelope %d bytes, want >= %d", len(p), envelopeHeaderLen)
	}
	le := binary.LittleEndian
	e := Envelope{
		WSrc:    int(int32(le.Uint32(p[0:4]))),
		WDst:    int(int32(le.Uint32(p[4:8]))),
		Src:     int(int32(le.Uint32(p[8:12]))),
		Tag:     int(int64(le.Uint64(p[12:20]))),
		Ctx:     int(int64(le.Uint64(p[20:28]))),
		Seq:     le.Uint64(p[28:36]),
		Reorder: p[36]&envFlagReorder != 0,
		Kind:    p[37],
		Count:   int(int64(le.Uint64(p[40:48]))),
	}
	elemLen := int(le.Uint16(p[38:40]))
	if len(p) < envelopeHeaderLen+elemLen {
		return Envelope{}, fmt.Errorf("mpi: envelope truncated in element name (%d bytes, need %d)", len(p), envelopeHeaderLen+elemLen)
	}
	e.Elem = string(p[envelopeHeaderLen : envelopeHeaderLen+elemLen])
	data := p[envelopeHeaderLen+elemLen:]
	e.Data = make([]byte, len(data))
	copy(e.Data, data)
	return e, nil
}

// NewWorld assembles one process's share of a distributed world: the local
// process hosts exactly rank `rank` of `size`, and every other rank is
// reached through t. The returned Comm is the world communicator handle for
// the hosted rank; incoming envelopes are injected with World.Deliver and a
// peer failure is surfaced with World.Fail. Options are the same ones Run
// accepts (WithRecvTimeout, WithFaults).
func NewWorld(rank, size int, t Transport, opts ...Option) (*World, *Comm) {
	if size <= 0 || rank < 0 || rank >= size {
		panic(fmt.Sprintf("mpi: invalid world rank %d of %d", rank, size))
	}
	w := &World{
		size:        size,
		boxes:       make([]*mailbox, size),
		traffic:     make([]trafficCounters, size),
		recvTimeout: DefaultRecvTimeout,
		remote:      t,
	}
	w.boxes[rank] = &mailbox{}
	for _, o := range opts {
		o(w)
	}
	group := make([]int, size)
	for i := range group {
		group[i] = i
	}
	return w, &Comm{world: w, rank: rank, size: size, group: group, ctx: 0}
}

// Deliver injects an envelope received from the transport into the hosted
// rank's mailbox — the receiving half of a remote send. Faulted envelopes
// (Seq > 0) take the dedup/reorder path exactly like local injected sends.
func (w *World) Deliver(e *Envelope) error {
	if e.WDst < 0 || e.WDst >= len(w.boxes) || w.boxes[e.WDst] == nil {
		return fmt.Errorf("mpi: envelope for world rank %d, which this process does not host", e.WDst)
	}
	msg := message{src: e.Src, tag: e.Tag, ctx: e.Ctx, payload: e, seq: e.Seq, wsrc: e.WSrc}
	box := w.boxes[e.WDst]
	if e.Seq > 0 || e.Reorder {
		box.putFaulty(msg, e.Reorder)
	} else {
		box.put(msg)
	}
	return nil
}

// Fail poisons every locally hosted mailbox: blocked and future receives
// return err immediately instead of waiting out the deadlock timeout. The
// world package calls this when a peer connection dies, turning a remote
// rank crash into a fast, attributable collective failure.
func (w *World) Fail(err error) {
	for _, b := range w.boxes {
		if b != nil {
			b.poison(err)
		}
	}
}

// remoteDst validates dest and returns its world rank when it is hosted by
// another process, or -1 when local delivery applies. In-process worlds
// answer -1 after a single nil check.
func (c *Comm) remoteDst(dest int) int {
	if dest < 0 || dest >= c.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d (size %d)", dest, c.size))
	}
	w := c.world
	if w.remote == nil {
		return -1
	}
	wd := c.group[dest]
	if w.boxes[wd] != nil {
		return -1
	}
	return wd
}

// sendRemote ships an envelope through the world's transport, applying the
// same fault-injection actions as the local faulty path: crash panics the
// rank, stall/delay sleep the sender, dup sends the envelope twice (the
// receiver's seq high-water mark drops the copy), reorder travels as an
// envelope flag. A transport error panics the rank — its peer is gone and
// the collective in flight cannot complete; Run-style recovery turns the
// panic into the rank's error.
func (c *Comm) sendRemote(env *Envelope) {
	w := c.world
	if w.faults != nil {
		f := w.faults.BeforeSend(env.WSrc, env.WDst, env.Tag)
		if f.Crash != "" {
			panic(f.Crash)
		}
		if f.Stall > 0 {
			time.Sleep(f.Stall)
		}
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
		env.Seq = f.Seq
		env.Reorder = f.Reorder
		transportSend(w, env)
		if f.Dup {
			dup := *env
			dup.Reorder = false
			transportSend(w, &dup)
		}
		return
	}
	transportSend(w, env)
}

func transportSend(w *World, env *Envelope) {
	if err := w.remote.Send(env); err != nil {
		panic(fmt.Sprintf("mpi: transport send to world rank %d failed: %v", env.WDst, err))
	}
}

// buildEnvelope serializes data into a wire envelope addressed to wdst.
func buildEnvelope[T any](c *Comm, wdst, tag int, data []T) *Envelope {
	kind, payload := encodePayload(data)
	return &Envelope{
		WSrc:  c.group[c.rank],
		WDst:  wdst,
		Src:   c.rank,
		Tag:   tag,
		Ctx:   c.ctx,
		Kind:  kind,
		Elem:  elemName[T](),
		Count: len(data),
		Data:  payload,
	}
}

// elemName returns the stable name of T used for cross-process type checks.
func elemName[T any]() string {
	return reflect.TypeOf((*T)(nil)).Elem().String()
}

// podCache memoizes the pointer-free check per element type.
var podCache sync.Map // reflect.Type -> bool

// isPOD reports whether values of t contain no pointers, making the raw
// byte-view encoding faithful.
func isPOD(t reflect.Type) bool {
	if v, ok := podCache.Load(t); ok {
		return v.(bool)
	}
	pod := computePOD(t)
	podCache.Store(t, pod)
	return pod
}

func computePOD(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return computePOD(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !computePOD(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// encodePayload serializes an element slice: raw bytes for pointer-free
// element types, gob otherwise. The raw encoding ALIASES data — no copy —
// which is safe because Transport.Send completes the wire write before
// returning and may not retain the envelope; the receiver copies out of its
// read buffer in DecodeEnvelope. A gob failure is a programming error (an
// unencodable type reached a remote send) and panics, matching the send
// path's no-error signature.
func encodePayload[T any](data []T) (uint8, []byte) {
	et := reflect.TypeOf((*T)(nil)).Elem()
	if isPOD(et) {
		if len(data) == 0 {
			return payloadRaw, nil
		}
		return payloadRaw, unsafe.Slice((*byte)(unsafe.Pointer(&data[0])), len(data)*int(et.Size()))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(data); err != nil {
		panic(fmt.Sprintf("mpi: cannot encode %s payload for transport: %v", et, err))
	}
	return payloadGob, buf.Bytes()
}

// decodePayloadInto deserializes an envelope's payload into dst, which must
// have length e.Count. The element type is checked against the envelope so a
// cross-process type mismatch fails like the in-process type assertion.
func decodePayloadInto[T any](e *Envelope, dst []T) error {
	if want := elemName[T](); e.Elem != want {
		return fmt.Errorf("mpi: recv type mismatch: envelope from world rank %d tag %d holds []%s, want []%s", e.WSrc, e.Tag, e.Elem, want)
	}
	if len(dst) != e.Count {
		return fmt.Errorf("mpi: envelope count %d does not fit buffer of %d", e.Count, len(dst))
	}
	switch e.Kind {
	case payloadRaw:
		size := sizeOf[T]()
		if len(e.Data) != e.Count*size {
			return fmt.Errorf("mpi: raw envelope carries %d bytes for %d x %d-byte elements", len(e.Data), e.Count, size)
		}
		if e.Count > 0 {
			view := unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), len(e.Data))
			copy(view, e.Data)
		}
		return nil
	case payloadGob:
		var tmp []T
		if err := gob.NewDecoder(bytes.NewReader(e.Data)).Decode(&tmp); err != nil {
			return fmt.Errorf("mpi: gob envelope decode: %w", err)
		}
		if len(tmp) != e.Count {
			return fmt.Errorf("mpi: gob envelope decoded %d elements, header says %d", len(tmp), e.Count)
		}
		copy(dst, tmp)
		return nil
	default:
		return fmt.Errorf("mpi: unknown envelope payload kind %d", e.Kind)
	}
}

// decodePayload deserializes an envelope's payload into a fresh slice.
func decodePayload[T any](e *Envelope) ([]T, error) {
	out := make([]T, e.Count)
	if err := decodePayloadInto(e, out); err != nil {
		return nil, err
	}
	return out, nil
}
