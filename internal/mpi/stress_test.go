package mpi

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestStressRandomExchange floods the runtime with randomized point-to-point
// traffic: every rank sends a deterministic pseudo-random number of messages
// with random tags to random peers, then receives exactly what it is owed.
// Ordering per (src, dst, tag) must be FIFO.
func TestStressRandomExchange(t *testing.T) {
	const (
		n        = 8
		perRank  = 200
		tagSpace = 5
	)
	// Precompute the traffic matrix deterministically so every rank knows
	// what to expect: plan[src][dst][tag] = count.
	plan := make([][][]int, n)
	rng := rand.New(rand.NewSource(99))
	for src := range plan {
		plan[src] = make([][]int, n)
		for dst := range plan[src] {
			plan[src][dst] = make([]int, tagSpace)
		}
		for m := 0; m < perRank; m++ {
			dst := rng.Intn(n)
			tag := rng.Intn(tagSpace)
			plan[src][dst][tag]++
		}
	}
	err := Run(n, func(c *Comm) error {
		// Send phase: seq numbers per (dst, tag) stream to verify FIFO.
		seq := map[[2]int]int64{}
		myPlan := plan[c.Rank()]
		for dst := 0; dst < n; dst++ {
			for tag := 0; tag < tagSpace; tag++ {
				for k := 0; k < myPlan[dst][tag]; k++ {
					key := [2]int{dst, tag}
					Send(c, dst, tag, []int64{seq[key]})
					seq[key]++
				}
			}
		}
		// Receive phase: drain everything owed to me, checking stream order.
		next := map[[2]int]int64{}
		for src := 0; src < n; src++ {
			for tag := 0; tag < tagSpace; tag++ {
				owed := plan[src][c.Rank()][tag]
				for k := 0; k < owed; k++ {
					data, from, err := Recv[int64](c, src, tag)
					if err != nil {
						return err
					}
					key := [2]int{from, tag}
					if data[0] != next[key] {
						return fmt.Errorf("rank %d: stream (%d,%d) got seq %d want %d",
							c.Rank(), from, tag, data[0], next[key])
					}
					next[key]++
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStressCollectiveSequences runs a long mixed sequence of collectives to
// shake out any cross-collective tag interference.
func TestStressCollectiveSequences(t *testing.T) {
	const n = 6
	err := Run(n, func(c *Comm) error {
		for round := 0; round < 30; round++ {
			v := []float64{float64(c.Rank() + round)}
			sum := make([]float64, 1)
			if err := Allreduce(c, v, sum, OpSum); err != nil {
				return err
			}
			want := float64(n*(n-1)/2 + n*round)
			if sum[0] != want {
				return fmt.Errorf("round %d: sum=%v want %v", round, sum[0], want)
			}
			buf := []int64{int64(round)}
			if c.Rank() != round%n {
				buf[0] = -1
			}
			if err := Bcast(c, buf, round%n); err != nil {
				return err
			}
			if buf[0] != int64(round) {
				return fmt.Errorf("round %d: bcast=%v", round, buf[0])
			}
			if round%7 == 0 {
				if err := c.Barrier(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSplitNested exercises communicator splits of splits with traffic on
// every level simultaneously.
func TestSplitNested(t *testing.T) {
	err := Run(8, func(c *Comm) error {
		half, err := c.Split(c.Rank()/4, c.Rank())
		if err != nil {
			return err
		}
		quarter, err := half.Split(half.Rank()/2, half.Rank())
		if err != nil {
			return err
		}
		// Sum world ranks within each quarter: quarters are {0,1},{2,3},...
		got := make([]int64, 1)
		if err := Allreduce(quarter, []int64{int64(c.Rank())}, got, OpSum); err != nil {
			return err
		}
		base := (c.Rank() / 2) * 2
		want := int64(base + base + 1)
		if got[0] != want {
			return fmt.Errorf("rank %d: quarter sum %d want %d", c.Rank(), got[0], want)
		}
		// And the world is still usable.
		tot := make([]int64, 1)
		if err := Allreduce(c, []int64{1}, tot, OpSum); err != nil {
			return err
		}
		if tot[0] != 8 {
			return fmt.Errorf("world damaged: %d", tot[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGatherScatterInverse: scatter then gather reproduces the original
// partition, for random part sizes.
func TestGatherScatterInverse(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		rng := rand.New(rand.NewSource(seed))
		parts := make([][]float64, n)
		for i := range parts {
			parts[i] = make([]float64, rng.Intn(5)+1)
			for j := range parts[i] {
				parts[i][j] = rng.Float64()
			}
		}
		ok := true
		err := Run(n, func(c *Comm) error {
			var in [][]float64
			if c.Rank() == 0 {
				in = parts
			}
			mine, err := Scatter(c, in, 0)
			if err != nil {
				return err
			}
			back, err := Gatherv(c, mine, 0)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				for i := range parts {
					if len(back[i]) != len(parts[i]) {
						return fmt.Errorf("len mismatch")
					}
					for j := range parts[i] {
						if back[i][j] != parts[i][j] {
							return fmt.Errorf("value mismatch")
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Fatal(err)
	}
}
