package mpi

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// scriptedInjector is a minimal FaultInjector for exercising the hook
// without importing internal/faultline (which imports this package): it
// keeps the per-edge sequence numbers the dedup path needs and delegates the
// decision to a closure.
type scriptedInjector struct {
	mu     sync.Mutex
	edges  map[[2]int]uint64
	decide func(src, dst, tag int, seq uint64) SendFault
}

func newScriptedInjector(decide func(src, dst, tag int, seq uint64) SendFault) *scriptedInjector {
	return &scriptedInjector{edges: map[[2]int]uint64{}, decide: decide}
}

func (s *scriptedInjector) BeforeSend(src, dst, tag int) SendFault {
	s.mu.Lock()
	s.edges[[2]int{src, dst}]++
	seq := s.edges[[2]int{src, dst}]
	s.mu.Unlock()
	f := s.decide(src, dst, tag, seq)
	f.Seq = seq
	return f
}

// TestFaultsDupDelivered exercises the dedup high-water mark: with every
// message duplicated, a tag-ordered exchange must still deliver each payload
// exactly once, in order.
func TestFaultsDupDelivered(t *testing.T) {
	inj := newScriptedInjector(func(src, dst, tag int, seq uint64) SendFault {
		return SendFault{Dup: true}
	})
	err := Run(2, func(c *Comm) error {
		const n = 10
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				Send(c, 1, 7, []int{i})
			}
			// A second tag stream interleaved on the same edge.
			for i := 0; i < n; i++ {
				Send(c, 1, 8, []int{100 + i})
			}
			return nil
		}
		for i := 0; i < n; i++ {
			got, _, err := Recv[int](c, 0, 7)
			if err != nil {
				return err
			}
			if got[0] != i {
				return fmt.Errorf("tag 7 msg %d: got %d", i, got[0])
			}
		}
		for i := 0; i < n; i++ {
			got, _, err := Recv[int](c, 0, 8)
			if err != nil {
				return err
			}
			if got[0] != 100+i {
				return fmt.Errorf("tag 8 msg %d: got %d", i, got[0])
			}
		}
		// The mailbox must now be empty: a surviving duplicate would match
		// this wildcard receive instead of timing out.
		if _, _, err := Recv[int](c, AnySource, AnyTag); err == nil {
			return fmt.Errorf("duplicate message survived dedup")
		}
		return nil
	}, WithFaults(inj), WithRecvTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
}

// TestFaultsReorderKeepsSameSourceFIFO pins the non-overtaking guarantee:
// a reordered message may jump ahead of other senders' queued messages but
// never ahead of an earlier message from its own sender and communicator.
func TestFaultsReorderKeepsSameSourceFIFO(t *testing.T) {
	inj := newScriptedInjector(func(src, dst, tag int, seq uint64) SendFault {
		return SendFault{Reorder: src == 1} // every message from rank 1 jumps the queue
	})
	err := Run(3, func(c *Comm) error {
		const n = 8
		switch c.Rank() {
		case 1, 2:
			if err := c.Barrier(); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				Send(c, 0, 7, []int{c.Rank()*1000 + i})
			}
			return nil
		default:
			if err := c.Barrier(); err != nil {
				return err
			}
			last := map[int]int{1: -1, 2: -1}
			for i := 0; i < 2*n; i++ {
				got, src, err := Recv[int](c, AnySource, 7)
				if err != nil {
					return err
				}
				v := got[0] - src*1000
				if v <= last[src] {
					return fmt.Errorf("source %d overtaken: saw %d after %d", src, v, last[src])
				}
				last[src] = v
			}
			return nil
		}
	}, WithFaults(inj), WithRecvTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
}

// TestPutFaultyReorderPlacement drives the mailbox directly: the reordered
// message lands ahead of other sources but behind its own source's queue.
func TestPutFaultyReorderPlacement(t *testing.T) {
	mk := func(wsrc int, seq uint64) message {
		return message{src: wsrc, tag: 1, ctx: 0, wsrc: wsrc, seq: seq, payload: []int{int(seq)}}
	}
	box := &mailbox{}
	box.putFaulty(mk(2, 1), false)
	box.putFaulty(mk(1, 1), false)
	box.putFaulty(mk(3, 1), false)
	// Reordered message from source 2 jumps sources 1 and 3 but stays
	// behind source 2's earlier message.
	box.putFaulty(mk(2, 2), true)
	wantSrc := []int{2, 2, 1, 3}
	wantSeq := []uint64{1, 2, 1, 1}
	if len(box.pending) != 4 {
		t.Fatalf("pending = %d messages, want 4", len(box.pending))
	}
	for i := range wantSrc {
		if box.pending[i].wsrc != wantSrc[i] || box.pending[i].seq != wantSeq[i] {
			t.Errorf("pending[%d] = src %d seq %d, want src %d seq %d",
				i, box.pending[i].wsrc, box.pending[i].seq, wantSrc[i], wantSeq[i])
		}
	}
	// With no same-source message pending, a reordered message goes first.
	box2 := &mailbox{}
	box2.putFaulty(mk(1, 1), false)
	box2.putFaulty(mk(3, 1), false)
	box2.putFaulty(mk(2, 1), true)
	if box2.pending[0].wsrc != 2 {
		t.Errorf("reordered head = src %d, want 2", box2.pending[0].wsrc)
	}
	// Duplicate seqs are dropped regardless of reorder.
	box2.putFaulty(mk(2, 1), false)
	box2.putFaulty(mk(2, 1), true)
	if len(box2.pending) != 3 {
		t.Errorf("duplicates not dropped: %d pending", len(box2.pending))
	}
}

// TestFaultsCrashSurfacesAsRunError pins fail-stop semantics: the crashing
// rank's panic is recovered into the Run error, deterministically.
func TestFaultsCrashSurfacesAsRunError(t *testing.T) {
	inj := newScriptedInjector(func(src, dst, tag int, seq uint64) SendFault {
		if src == 0 && seq == 2 {
			return SendFault{Crash: "faultline: injected crash (test)"}
		}
		return SendFault{}
	})
	err := Run(2, func(c *Comm) error {
		for i := 0; i < 3; i++ {
			if c.Rank() == 0 {
				Send(c, 1, 7, []int{i})
			} else {
				if _, _, err := Recv[int](c, 0, 7); err != nil {
					return err
				}
			}
		}
		return nil
	}, WithFaults(inj), WithRecvTimeout(300*time.Millisecond))
	if err == nil || !strings.Contains(err.Error(), "injected crash") {
		t.Fatalf("want injected-crash error, got %v", err)
	}
}

// TestFaultsCollectivesBitIdentical is the in-package metamorphic check: a
// world where messages are duplicated, reordered, delayed, and stalled must
// produce element-identical collective results to a clean world.
func TestFaultsCollectivesBitIdentical(t *testing.T) {
	const p = 4
	run := func(opts ...Option) ([][]float64, error) {
		out := make([][]float64, p)
		err := Run(p, func(c *Comm) error {
			in := make([]float64, 257)
			for i := range in {
				in[i] = float64(c.Rank()*1000+i) * 0.375
			}
			sum := make([]float64, len(in))
			if err := Allreduce(c, in, sum, OpSum); err != nil {
				return err
			}
			bc := make([]float64, 33)
			if c.Rank() == 1 {
				copy(bc, sum[:33])
			}
			if err := Bcast(c, bc, 1); err != nil {
				return err
			}
			ag, err := Allgather(c, []float64{sum[0], float64(c.Rank())})
			if err != nil {
				return err
			}
			sub, err := c.Split(c.Rank()%2, c.Rank())
			if err != nil {
				return err
			}
			sub2 := make([]float64, 9)
			if err := Allreduce(sub, sum[:9], sub2, OpMax); err != nil {
				return err
			}
			res := append(append(append([]float64{}, sum...), bc...), ag...)
			out[c.Rank()] = append(res, sub2...)
			return nil
		}, opts...)
		return out, err
	}

	clean, err := run()
	if err != nil {
		t.Fatal(err)
	}
	inj := newScriptedInjector(func(src, dst, tag int, seq uint64) SendFault {
		f := SendFault{}
		switch seq % 4 {
		case 0:
			f.Dup = true
		case 1:
			f.Reorder = true
		case 2:
			if src == 2 {
				f.Delay = time.Millisecond
			}
		}
		return f
	})
	faulty, err := run(WithFaults(inj), WithRecvTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	for r := range clean {
		if len(clean[r]) != len(faulty[r]) {
			t.Fatalf("rank %d: length %d vs %d", r, len(clean[r]), len(faulty[r]))
		}
		for i := range clean[r] {
			if clean[r][i] != faulty[r][i] {
				t.Fatalf("rank %d elem %d: clean %v faulty %v", r, i, clean[r][i], faulty[r][i])
			}
		}
	}
}
