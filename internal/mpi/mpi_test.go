package mpi

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			Send(c, 1, 7, []float64{1, 2, 3})
			return nil
		}
		data, src, err := Recv[float64](c, 0, 7)
		if err != nil {
			return err
		}
		if src != 0 || len(data) != 3 || data[2] != 3 {
			return fmt.Errorf("bad recv: src=%d data=%v", src, data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []int64{42}
			Send(c, 1, 0, buf)
			buf[0] = 99 // must not affect the message
			c.Barrier()
			return nil
		}
		c.Barrier()
		data, _, err := Recv[int64](c, 0, 0)
		if err != nil {
			return err
		}
		if data[0] != 42 {
			return fmt.Errorf("send did not copy: got %d", data[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagMatching(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			Send(c, 1, 5, []int{5})
			Send(c, 1, 3, []int{3})
			return nil
		}
		// Receive tag 3 first even though tag 5 was sent first.
		d3, _, err := Recv[int](c, 0, 3)
		if err != nil {
			return err
		}
		d5, _, err := Recv[int](c, 0, 5)
		if err != nil {
			return err
		}
		if d3[0] != 3 || d5[0] != 5 {
			return fmt.Errorf("tag matching broken: %v %v", d3, d5)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySourceAnyTag(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() != 0 {
			Send(c, 0, c.Rank()*10, []int{c.Rank()})
			return nil
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			data, src, err := Recv[int](c, AnySource, AnyTag)
			if err != nil {
				return err
			}
			if data[0] != src {
				return fmt.Errorf("payload %d != src %d", data[0], src)
			}
			seen[src] = true
		}
		if !seen[1] || !seen[2] {
			return fmt.Errorf("missing sources: %v", seen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTypeMismatch(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			Send(c, 1, 0, []float64{1})
			return nil
		}
		_, _, err := Recv[int32](c, 0, 0)
		if err == nil {
			return fmt.Errorf("expected type mismatch error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockTimeout(t *testing.T) {
	start := time.Now()
	err := Run(1, func(c *Comm) error {
		_, _, err := Recv[int](c, 0, 0)
		return err
	}, WithRecvTimeout(50*time.Millisecond))
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout took too long")
	}
}

func TestRunPanicRecovered(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestBarrierOrdering(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		var before, after atomic.Int64
		err := Run(n, func(c *Comm) error {
			before.Add(1)
			if err := c.Barrier(); err != nil {
				return err
			}
			if got := before.Load(); got != int64(n) {
				return fmt.Errorf("barrier released with only %d/%d ranks entered", got, n)
			}
			after.Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if after.Load() != int64(n) {
			t.Fatalf("n=%d: %d ranks finished", n, after.Load())
		}
	}
}

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		for root := 0; root < n; root++ {
			err := Run(n, func(c *Comm) error {
				buf := make([]float64, 4)
				if c.Rank() == root {
					for i := range buf {
						buf[i] = float64(root*100 + i)
					}
				}
				if err := Bcast(c, buf, root); err != nil {
					return err
				}
				for i := range buf {
					if buf[i] != float64(root*100+i) {
						return fmt.Errorf("rank %d: buf=%v", c.Rank(), buf)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
		}
	}
}

func TestReduceOps(t *testing.T) {
	n := 6
	cases := []struct {
		op   Op
		want float64
	}{
		{OpSum, 0 + 1 + 2 + 3 + 4 + 5},
		{OpMin, 0},
		{OpMax, 5},
		{OpProd, 0},
	}
	for _, tc := range cases {
		for root := 0; root < n; root += 3 {
			err := Run(n, func(c *Comm) error {
				send := []float64{float64(c.Rank())}
				recv := make([]float64, 1)
				if err := Reduce(c, send, recv, tc.op, root); err != nil {
					return err
				}
				if c.Rank() == root && recv[0] != tc.want {
					return fmt.Errorf("op %v: got %v want %v", tc.op, recv[0], tc.want)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("op=%v root=%d: %v", tc.op, root, err)
			}
		}
	}
}

func TestAllreduceMatchesSerial(t *testing.T) {
	n, m := 7, 9
	rng := rand.New(rand.NewSource(1))
	inputs := make([][]float64, n)
	want := make([]float64, m)
	for r := range inputs {
		inputs[r] = make([]float64, m)
		for i := range inputs[r] {
			inputs[r][i] = rng.Float64()*10 - 5
			want[i] += inputs[r][i]
		}
	}
	err := Run(n, func(c *Comm) error {
		recv := make([]float64, m)
		if err := Allreduce(c, inputs[c.Rank()], recv, OpSum); err != nil {
			return err
		}
		for i := range recv {
			if diff := recv[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
				return fmt.Errorf("rank %d idx %d: got %v want %v", c.Rank(), i, recv[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceQuickProperty(t *testing.T) {
	// Property: allreduce(min) over random per-rank int64 vectors equals the
	// serial minimum, for arbitrary world sizes 1..8 and vector lengths 1..16.
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%8) + 1
		m := int(mRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		inputs := make([][]int64, n)
		want := make([]int64, m)
		for i := range want {
			want[i] = 1 << 62
		}
		for r := range inputs {
			inputs[r] = make([]int64, m)
			for i := range inputs[r] {
				inputs[r][i] = rng.Int63n(2001) - 1000
				if inputs[r][i] < want[i] {
					want[i] = inputs[r][i]
				}
			}
		}
		ok := true
		err := Run(n, func(c *Comm) error {
			recv := make([]int64, m)
			if err := Allreduce(c, inputs[c.Rank()], recv, OpMin); err != nil {
				return err
			}
			for i := range recv {
				if recv[i] != want[i] {
					return fmt.Errorf("mismatch")
				}
			}
			return nil
		})
		if err != nil {
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(22))}); err != nil {
		t.Fatal(err)
	}
}

func TestGatherOrdered(t *testing.T) {
	n := 5
	err := Run(n, func(c *Comm) error {
		parts, err := Gather(c, []int{c.Rank(), c.Rank() * 2}, 2)
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if parts != nil {
				return fmt.Errorf("non-root got parts")
			}
			return nil
		}
		for i, p := range parts {
			if p[0] != i || p[1] != i*2 {
				return fmt.Errorf("part %d = %v", i, p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherVariableLengths(t *testing.T) {
	n := 4
	err := Run(n, func(c *Comm) error {
		// Rank r contributes r+1 copies of r.
		send := make([]int, c.Rank()+1)
		for i := range send {
			send[i] = c.Rank()
		}
		all, err := Allgather(c, send)
		if err != nil {
			return err
		}
		want := []int{0, 1, 1, 2, 2, 2, 3, 3, 3, 3}
		if len(all) != len(want) {
			return fmt.Errorf("len=%d", len(all))
		}
		for i := range want {
			if all[i] != want[i] {
				return fmt.Errorf("all=%v", all)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	n := 4
	err := Run(n, func(c *Comm) error {
		var parts [][]float32
		if c.Rank() == 1 {
			parts = make([][]float32, n)
			for i := range parts {
				parts[i] = []float32{float32(i) * 1.5}
			}
		}
		mine, err := Scatter(c, parts, 1)
		if err != nil {
			return err
		}
		if mine[0] != float32(c.Rank())*1.5 {
			return fmt.Errorf("rank %d got %v", c.Rank(), mine)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanInclusive(t *testing.T) {
	n := 6
	err := Run(n, func(c *Comm) error {
		recv := make([]int64, 1)
		if err := Scan(c, []int64{int64(c.Rank() + 1)}, recv, OpSum); err != nil {
			return err
		}
		want := int64((c.Rank() + 1) * (c.Rank() + 2) / 2)
		if recv[0] != want {
			return fmt.Errorf("rank %d: got %d want %d", c.Rank(), recv[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	n := 4
	err := Run(n, func(c *Comm) error {
		parts := make([][]int, n)
		for i := range parts {
			parts[i] = []int{c.Rank()*10 + i}
		}
		got, err := Alltoall(c, parts)
		if err != nil {
			return err
		}
		for i := range got {
			if got[i][0] != i*10+c.Rank() {
				return fmt.Errorf("rank %d got %v", c.Rank(), got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitColors(t *testing.T) {
	n := 8
	err := Run(n, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 4 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		if sub.Rank() != c.Rank()/2 {
			return fmt.Errorf("world %d -> sub %d", c.Rank(), sub.Rank())
		}
		// Traffic in sub must not leak across colors.
		recv := make([]int64, 1)
		if err := Allreduce(sub, []int64{int64(c.Rank())}, recv, OpSum); err != nil {
			return err
		}
		want := int64(0 + 2 + 4 + 6)
		if c.Rank()%2 == 1 {
			want = 1 + 3 + 5 + 7
		}
		if recv[0] != want {
			return fmt.Errorf("rank %d: sub sum %d want %d", c.Rank(), recv[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyReordering(t *testing.T) {
	n := 4
	err := Run(n, func(c *Comm) error {
		// All one color; keys reverse the order.
		sub, err := c.Split(0, n-c.Rank())
		if err != nil {
			return err
		}
		if sub.Rank() != n-1-c.Rank() {
			return fmt.Errorf("world %d -> sub %d", c.Rank(), sub.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvExchange(t *testing.T) {
	n := 4
	err := Run(n, func(c *Comm) error {
		right := (c.Rank() + 1) % n
		left := (c.Rank() - 1 + n) % n
		got, err := SendRecv(c, right, 1, []int{c.Rank()}, left, 1)
		if err != nil {
			return err
		}
		if got[0] != left {
			return fmt.Errorf("rank %d got %v want %d", c.Rank(), got, left)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldRank(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		sub, err := c.Split(c.Rank()/3, 0)
		if err != nil {
			return err
		}
		if sub.WorldRank() != c.Rank() {
			return fmt.Errorf("world rank lost: %d vs %d", sub.WorldRank(), c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsNonPositive(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("expected error for n=0")
	}
}
