// Tests for the scale-aware collective algorithms: element-identity against
// simple reference implementations, non-power-of-two communicators obtained
// through Split, non-zero roots, the fused min/max round-halving, and the
// bottleneck-rank byte reduction of the long-vector Allreduce.
package mpi

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// refReduce folds rank vectors serially in rank order — the reference the
// tree algorithms must match. Integer ops and min/max must match exactly;
// float sums are compared with a tolerance because tree association differs.
func refReduce(op Op, vecs [][]float64) []float64 {
	out := append([]float64(nil), vecs[0]...)
	split := len(out) / 2
	for _, v := range vecs[1:] {
		for i := range out {
			switch op {
			case OpSum:
				out[i] += v[i]
			case OpProd:
				out[i] *= v[i]
			case OpMin:
				if v[i] < out[i] {
					out[i] = v[i]
				}
			case OpMax:
				if v[i] > out[i] {
					out[i] = v[i]
				}
			case OpMinMax:
				if i < split {
					if v[i] < out[i] {
						out[i] = v[i]
					}
				} else if v[i] > out[i] {
					out[i] = v[i]
				}
			}
		}
	}
	return out
}

func almostEqual(a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("length %d != %d", len(a), len(b))
	}
	for i := range a {
		diff := math.Abs(a[i] - b[i])
		scale := math.Max(math.Abs(a[i]), math.Abs(b[i]))
		if diff > 1e-9*math.Max(scale, 1) {
			return fmt.Errorf("element %d: %g != %g", i, a[i], b[i])
		}
	}
	return nil
}

// TestAllreduceAllAlgorithmsMatchReference drives both the recursive-doubling
// and Rabenseifner paths (the element count straddles allreduceLongMin) at
// power-of-two and non-power-of-two sizes, for every op.
func TestAllreduceAllAlgorithmsMatchReference(t *testing.T) {
	sizes := []int{1, 2, 3, 4, 5, 7, 8}
	counts := []int{1, 2, 16, 1024, 4096} // 4096 float64 = 32KiB -> Rabenseifner
	ops := []Op{OpSum, OpMin, OpMax, OpProd, OpMinMax}
	for _, p := range sizes {
		for _, n := range counts {
			for _, op := range ops {
				if op == OpMinMax && n%2 != 0 {
					continue
				}
				rng := rand.New(rand.NewSource(int64(p*1000 + n + int(op))))
				vecs := make([][]float64, p)
				for r := range vecs {
					vecs[r] = make([]float64, n)
					for i := range vecs[r] {
						vecs[r][i] = rng.Float64()*2 - 1
						if op == OpProd {
							vecs[r][i] = 1 + rng.Float64()*0.01
						}
					}
				}
				want := refReduce(op, vecs)
				err := Run(p, func(c *Comm) error {
					recv := make([]float64, n)
					if err := Allreduce(c, vecs[c.Rank()], recv, op); err != nil {
						return err
					}
					if op == OpSum || op == OpProd {
						return almostEqual(recv, want)
					}
					for i := range recv {
						if recv[i] != want[i] {
							return fmt.Errorf("rank %d element %d: %g != %g", c.Rank(), i, recv[i], want[i])
						}
					}
					return nil
				})
				if err != nil {
					t.Fatalf("p=%d n=%d op=%v: %v", p, n, op, err)
				}
			}
		}
	}
}

// TestAllreduceIntExactAcrossAlgorithms: integer reductions must be exact on
// every path, including the Rabenseifner fold for non-power-of-two sizes.
func TestAllreduceIntExactAcrossAlgorithms(t *testing.T) {
	for _, p := range []int{3, 5, 7, 8} {
		for _, n := range []int{8, 2048} { // straddles allreduceLongMin for int64
			want := make([]int64, n)
			vecs := make([][]int64, p)
			rng := rand.New(rand.NewSource(int64(p*100 + n)))
			for r := range vecs {
				vecs[r] = make([]int64, n)
				for i := range vecs[r] {
					vecs[r][i] = int64(rng.Intn(1000) - 500)
					want[i] += vecs[r][i]
				}
			}
			err := Run(p, func(c *Comm) error {
				recv := make([]int64, n)
				if err := Allreduce(c, vecs[c.Rank()], recv, OpSum); err != nil {
					return err
				}
				for i := range recv {
					if recv[i] != want[i] {
						return fmt.Errorf("rank %d element %d: %d != %d", c.Rank(), i, recv[i], want[i])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d n=%d: %v", p, n, err)
			}
		}
	}
}

// TestCollectivesOnSplitSubcommunicators runs the full collective set on
// Split-derived sub-communicators of sizes 3, 5, and 7 with non-zero roots.
// Sub-communicators exercise the group-indirection (comm rank != world rank)
// and context-isolation paths of every algorithm.
func TestCollectivesOnSplitSubcommunicators(t *testing.T) {
	world := 3 + 5 + 7
	err := Run(world, func(c *Comm) error {
		// Color by band: ranks [0,3) -> size 3, [3,8) -> size 5, [8,15) -> size 7.
		var color int
		switch {
		case c.Rank() < 3:
			color = 0
		case c.Rank() < 8:
			color = 1
		default:
			color = 2
		}
		sub, err := c.Split(color, -c.Rank()) // reversed key: sub rank != world order
		if err != nil {
			return err
		}
		p := sub.Size()
		root := p - 1 // non-zero root everywhere

		// Bcast, small and pipelined-large.
		for _, n := range []int{5, 20000} { // 20000 float64 = 156KiB > bcastSegBytes
			buf := make([]float64, n)
			if sub.Rank() == root {
				for i := range buf {
					buf[i] = float64(color*1000000 + i)
				}
			}
			if err := Bcast(sub, buf, root); err != nil {
				return err
			}
			for i := range buf {
				if buf[i] != float64(color*1000000+i) {
					return fmt.Errorf("bcast: color %d sub-rank %d element %d: got %g", color, sub.Rank(), i, buf[i])
				}
			}
		}

		// Reduce to a non-zero root.
		send := []int64{int64(sub.Rank() + 1), int64(sub.Rank() * 2)}
		recv := make([]int64, 2)
		if err := Reduce(sub, send, recv, OpSum, root); err != nil {
			return err
		}
		if sub.Rank() == root {
			wantA := int64(p * (p + 1) / 2)
			wantB := int64(p * (p - 1))
			if recv[0] != wantA || recv[1] != wantB {
				return fmt.Errorf("reduce: color %d got %v want [%d %d]", color, recv, wantA, wantB)
			}
		}

		// Gather (equal lengths) to a non-zero root.
		parts, err := Gather(sub, []int32{int32(sub.Rank()), int32(color)}, root)
		if err != nil {
			return err
		}
		if sub.Rank() == root {
			for r := 0; r < p; r++ {
				if parts[r][0] != int32(r) || parts[r][1] != int32(color) {
					return fmt.Errorf("gather: color %d rank %d part %v", color, r, parts[r])
				}
			}
		} else if parts != nil {
			return fmt.Errorf("gather: non-root got non-nil result")
		}

		// Gatherv (variable lengths) to a non-zero root.
		mine := make([]int64, sub.Rank()+1)
		for i := range mine {
			mine[i] = int64(sub.Rank()*100 + i)
		}
		vparts, err := Gatherv(sub, mine, root)
		if err != nil {
			return err
		}
		if sub.Rank() == root {
			for r := 0; r < p; r++ {
				if len(vparts[r]) != r+1 {
					return fmt.Errorf("gatherv: color %d rank %d len %d", color, r, len(vparts[r]))
				}
				for i, v := range vparts[r] {
					if v != int64(r*100+i) {
						return fmt.Errorf("gatherv: color %d rank %d element %d: %d", color, r, i, v)
					}
				}
			}
		}

		// Scatter variable-length parts from a non-zero root.
		var sparts [][]float32
		if sub.Rank() == root {
			sparts = make([][]float32, p)
			for r := range sparts {
				sparts[r] = make([]float32, r+2)
				for i := range sparts[r] {
					sparts[r][i] = float32(r) + float32(i)/10
				}
			}
		}
		got, err := Scatter(sub, sparts, root)
		if err != nil {
			return err
		}
		if len(got) != sub.Rank()+2 {
			return fmt.Errorf("scatter: color %d sub-rank %d len %d", color, sub.Rank(), len(got))
		}
		for i, v := range got {
			if v != float32(sub.Rank())+float32(i)/10 {
				return fmt.Errorf("scatter: color %d sub-rank %d element %d: %g", color, sub.Rank(), i, v)
			}
		}

		// Allgather / Allgatherv with variable lengths.
		flat, err := Allgather(sub, mine)
		if err != nil {
			return err
		}
		wantLen := 0
		for r := 0; r < p; r++ {
			wantLen += r + 1
		}
		if len(flat) != wantLen {
			return fmt.Errorf("allgather: color %d len %d want %d", color, len(flat), wantLen)
		}
		aparts, err := Allgatherv(sub, mine)
		if err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			if len(aparts[r]) != r+1 || aparts[r][0] != int64(r*100) {
				return fmt.Errorf("allgatherv: color %d rank %d part %v", color, r, aparts[r])
			}
		}

		// Alltoall.
		out := make([][]int32, p)
		for r := range out {
			out[r] = []int32{int32(sub.Rank()*100 + r)}
		}
		in, err := Alltoall(sub, out)
		if err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			if in[r][0] != int32(r*100+sub.Rank()) {
				return fmt.Errorf("alltoall: color %d from %d got %d", color, r, in[r][0])
			}
		}

		// Fused min/max on the sub-communicator.
		lo := []float64{float64(sub.Rank())}
		hi := []float64{float64(sub.Rank())}
		if err := AllreduceMinMax(sub, lo, hi); err != nil {
			return err
		}
		if lo[0] != 0 || hi[0] != float64(p-1) {
			return fmt.Errorf("minmax: color %d got [%g %g] want [0 %d]", color, lo[0], hi[0], p-1)
		}
		return sub.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGatherRejectsUnequalLengths: Gather now enforces equal contributions
// and points callers at Gatherv.
func TestGatherRejectsUnequalLengths(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		data := make([]int, c.Rank()+1)
		_, err := Gather(c, data, 0)
		return err
	})
	if err == nil {
		t.Fatal("expected unequal-length error")
	}
}

// TestFusedMinMaxHalvesRounds asserts the satellite claim with the traffic
// odometers: one fused OpMinMax allreduce sends exactly half the messages of
// the separate min + max pair at a power-of-two size.
func TestFusedMinMaxHalvesRounds(t *testing.T) {
	const p = 8
	var pairMsgs, fusedMsgs int64
	err := Run(p, func(c *Comm) error {
		lo, hi := []float64{float64(c.Rank())}, []float64{float64(-c.Rank())}
		g := make([]float64, 1)

		before := c.TrafficStats()
		if err := Allreduce(c, lo, g, OpMin); err != nil {
			return err
		}
		if err := Allreduce(c, hi, g, OpMax); err != nil {
			return err
		}
		mid := c.TrafficStats()
		if err := AllreduceMinMax(c, lo, hi); err != nil {
			return err
		}
		after := c.TrafficStats()
		if c.Rank() == 0 {
			pairMsgs = mid.SentMsgs - before.SentMsgs
			fusedMsgs = after.SentMsgs - mid.SentMsgs
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fusedMsgs*2 != pairMsgs {
		t.Fatalf("fused %d msgs, pair %d msgs: want exactly half", fusedMsgs, pairMsgs)
	}
}

// TestAllreduceBottleneckBytes is the acceptance-criteria check: for a
// >=256KiB payload at P=16, the bytes moved through the most-loaded rank by
// the new Allreduce must be at most half those of the reduce+bcast baseline
// (which this package still exposes as Reduce and Bcast).
func TestAllreduceBottleneckBytes(t *testing.T) {
	const (
		p = 16
		n = 32768 // float64 -> 256KiB
	)
	baseDelta := make([]int64, p)
	newDelta := make([]int64, p)
	err := Run(p, func(c *Comm) error {
		send := make([]float64, n)
		recv := make([]float64, n)
		for i := range send {
			send[i] = float64(c.Rank()*n + i)
		}

		before := c.TrafficStats()
		if err := Reduce(c, send, recv, OpSum, 0); err != nil {
			return err
		}
		if err := Bcast(c, recv, 0); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		mid := c.TrafficStats()
		if err := Allreduce(c, send, recv, OpSum); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		after := c.TrafficStats()
		baseDelta[c.Rank()] = (mid.SentBytes - before.SentBytes) + (mid.RecvBytes - before.RecvBytes)
		newDelta[c.Rank()] = (after.SentBytes - mid.SentBytes) + (after.RecvBytes - mid.RecvBytes)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var baseMax, newMax int64
	for r := 0; r < p; r++ {
		if baseDelta[r] > baseMax {
			baseMax = baseDelta[r]
		}
		if newDelta[r] > newMax {
			newMax = newDelta[r]
		}
	}
	t.Logf("bottleneck-rank bytes: reduce+bcast %d, allreduce %d (%.2fx)", baseMax, newMax, float64(baseMax)/float64(newMax))
	if baseMax < 2*newMax {
		t.Fatalf("bottleneck bytes not halved: baseline %d, new %d", baseMax, newMax)
	}
}

// TestCollectiveResultsDoNotAliasPools: results handed to callers must stay
// intact when later collectives recycle internal buffers.
func TestCollectiveResultsDoNotAliasPools(t *testing.T) {
	const p = 5
	err := Run(p, func(c *Comm) error {
		first, err := Allgather(c, []int64{int64(c.Rank()) * 11})
		if err != nil {
			return err
		}
		snapshot := append([]int64(nil), first...)
		// Churn the pools with more collectives of the same element type.
		for iter := 0; iter < 10; iter++ {
			if _, err := Allgather(c, []int64{int64(iter)}); err != nil {
				return err
			}
			g := make([]int64, 1)
			if err := Allreduce(c, []int64{int64(iter)}, g, OpSum); err != nil {
				return err
			}
		}
		for i := range first {
			if first[i] != snapshot[i] {
				return fmt.Errorf("result mutated at %d: %d != %d", i, first[i], snapshot[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestScatterGatherPropertyNonPow2 is the quick property test across random
// sizes, roots, and part lengths: Scatter then Gatherv must reproduce the
// root's partition exactly.
func TestScatterGatherPropertyNonPow2(t *testing.T) {
	f := func(seed int64, nRaw, rootRaw uint8) bool {
		p := int(nRaw%7) + 2 // 2..8
		root := int(rootRaw) % p
		rng := rand.New(rand.NewSource(seed))
		parts := make([][]float64, p)
		for i := range parts {
			parts[i] = make([]float64, rng.Intn(6))
			for j := range parts[i] {
				parts[i][j] = rng.NormFloat64()
			}
		}
		err := Run(p, func(c *Comm) error {
			var in [][]float64
			if c.Rank() == root {
				in = parts
			}
			mine, err := Scatter(c, in, root)
			if err != nil {
				return err
			}
			back, err := Gatherv(c, mine, root)
			if err != nil {
				return err
			}
			if c.Rank() == root {
				for r := range parts {
					if len(back[r]) != len(parts[r]) {
						return fmt.Errorf("rank %d length %d != %d", r, len(back[r]), len(parts[r]))
					}
					for j := range parts[r] {
						if back[r][j] != parts[r][j] {
							return fmt.Errorf("rank %d element %d mismatch", r, j)
						}
					}
				}
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}

// TestAllgatherPropertyMatchesReference: ring allgather must equal the
// rank-ordered concatenation for random lengths and sizes.
func TestAllgatherPropertyMatchesReference(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		p := int(nRaw%7) + 2
		rng := rand.New(rand.NewSource(seed))
		vecs := make([][]int32, p)
		var want []int32
		for r := range vecs {
			vecs[r] = make([]int32, rng.Intn(5))
			for i := range vecs[r] {
				vecs[r][i] = rng.Int31()
			}
			want = append(want, vecs[r]...)
		}
		err := Run(p, func(c *Comm) error {
			got, err := Allgather(c, vecs[c.Rank()])
			if err != nil {
				return err
			}
			if len(got) != len(want) {
				return fmt.Errorf("length %d != %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("element %d mismatch", i)
				}
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(18))}); err != nil {
		t.Fatal(err)
	}
}

// TestOpMinMaxOddLengthRejected: the fused op requires an even vector.
func TestOpMinMaxOddLengthRejected(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		recv := make([]float64, 3)
		return Allreduce(c, []float64{1, 2, 3}, recv, OpMinMax)
	})
	if err == nil {
		t.Fatal("expected odd-length OpMinMax error")
	}
}
