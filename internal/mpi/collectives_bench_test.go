// BenchmarkCollectives sweeps the collective engine across communicator
// sizes P in {4, 16, 64} and payload sizes {8B, 4KiB, 256KiB, 4MiB},
// comparing the scale-aware algorithms against the naive shapes this PR
// replaced (reduce+bcast Allreduce, gather+double-bcast Allgather), which
// are preserved below as legacy* functions at both the algorithm and the
// allocation level (fresh buffer + copying Send per tree hop). Results are
// recorded in BENCH_4.json.
package mpi

import (
	"fmt"
	"testing"
)

// legacyApply is the old unchunked elementwise apply.
func legacyApply[T Number](op Op, dst, src []T) {
	applyRange(op, dst, src, 0, -1)
}

// legacyBcast is the pre-PR broadcast: unsegmented binomial tree with a
// copying Send (one fresh allocation per child per hop).
func legacyBcast[T any](c *Comm, buf []T, root int) error {
	if c.size == 1 {
		return nil
	}
	vrank := (c.rank - root + c.size) % c.size
	if vrank != 0 {
		mask := 1
		for mask <= vrank {
			mask <<= 1
		}
		mask >>= 1
		parent := ((vrank - mask) + root) % c.size
		data, _, err := Recv[T](c, parent, tagBcast)
		if err != nil {
			return err
		}
		copy(buf, data)
	}
	mask := 1
	for mask <= vrank {
		mask <<= 1
	}
	for ; mask < c.size; mask <<= 1 {
		child := vrank + mask
		if child < c.size {
			Send(c, (child+root)%c.size, tagBcast, buf)
		}
	}
	return nil
}

// legacyReduce is the pre-PR reduce: binomial tree, fresh accumulator, and
// a copying Send on the hop to the parent.
func legacyReduce[T Number](c *Comm, send []T, recv []T, op Op, root int) error {
	acc := make([]T, len(send))
	copy(acc, send)
	vrank := (c.rank - root + c.size) % c.size
	mask := 1
	for mask < c.size {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % c.size
			Send(c, parent, tagReduce, acc)
			break
		}
		vchild := vrank | mask
		if vchild < c.size {
			data, _, err := Recv[T](c, (vchild+root)%c.size, tagReduce)
			if err != nil {
				return err
			}
			legacyApply(op, acc, data)
		}
		mask <<= 1
	}
	if c.rank == root {
		copy(recv, acc)
	}
	return nil
}

// legacyAllreduce is the pre-PR allreduce: reduce to rank 0, then broadcast.
func legacyAllreduce[T Number](c *Comm, send []T, recv []T, op Op) error {
	if err := legacyReduce(c, send, recv, op, 0); err != nil {
		return err
	}
	return legacyBcast(c, recv, 0)
}

// legacyAllgather is the pre-PR allgather: linear gather onto rank 0, then
// two whole-payload broadcasts (lengths, then the flat concatenation).
func legacyAllgather[T any](c *Comm, send []T) ([]T, error) {
	var parts [][]T
	if c.rank != 0 {
		Send(c, 0, tagGather, send)
	} else {
		parts = make([][]T, c.size)
		cp := make([]T, len(send))
		copy(cp, send)
		parts[0] = cp
		for i := 1; i < c.size; i++ {
			data, _, err := Recv[T](c, i, tagGather)
			if err != nil {
				return nil, err
			}
			parts[i] = data
		}
	}
	var flat []T
	lens := make([]int64, c.size)
	if c.rank == 0 {
		for i, p := range parts {
			lens[i] = int64(len(p))
			flat = append(flat, p...)
		}
	}
	if err := legacyBcast(c, lens, 0); err != nil {
		return nil, err
	}
	total := 0
	for _, l := range lens {
		total += int(l)
	}
	if c.rank != 0 {
		flat = make([]T, total)
	}
	if err := legacyBcast(c, flat, 0); err != nil {
		return nil, err
	}
	return flat, nil
}

var benchSizes = []struct {
	name  string
	bytes int
}{
	{"8B", 8},
	{"4KiB", 4 << 10},
	{"256KiB", 256 << 10},
	{"4MiB", 4 << 20},
}

var benchRanks = []int{4, 16, 64}

// benchWorld runs body b.N times on every rank of a fresh world and reports
// per-op allocations across all ranks.
func benchWorld(b *testing.B, p int, body func(c *Comm, send, recv []float64) error, n int) {
	b.ReportAllocs()
	err := Run(p, func(c *Comm) error {
		send := make([]float64, n)
		recv := make([]float64, n)
		for i := range send {
			send[i] = float64(c.Rank()*n + i)
		}
		for iter := 0; iter < b.N; iter++ {
			if err := body(c, send, recv); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(n * 8))
}

func BenchmarkCollectives(b *testing.B) {
	for _, p := range benchRanks {
		for _, sz := range benchSizes {
			n := sz.bytes / 8
			tag := fmt.Sprintf("p=%d/%s", p, sz.name)
			b.Run("allreduce/"+tag, func(b *testing.B) {
				benchWorld(b, p, func(c *Comm, send, recv []float64) error {
					return Allreduce(c, send, recv, OpSum)
				}, n)
			})
			b.Run("allreduce-legacy/"+tag, func(b *testing.B) {
				benchWorld(b, p, func(c *Comm, send, recv []float64) error {
					return legacyAllreduce(c, send, recv, OpSum)
				}, n)
			})
			b.Run("bcast/"+tag, func(b *testing.B) {
				benchWorld(b, p, func(c *Comm, send, recv []float64) error {
					return Bcast(c, send, 0)
				}, n)
			})
			b.Run("bcast-legacy/"+tag, func(b *testing.B) {
				benchWorld(b, p, func(c *Comm, send, recv []float64) error {
					return legacyBcast(c, send, 0)
				}, n)
			})
			// Allgather payloads are per-rank blocks: divide so the result,
			// not the contribution, has the target size.
			an := n / p
			if an == 0 {
				an = 1
			}
			b.Run("allgather/"+tag, func(b *testing.B) {
				benchWorld(b, p, func(c *Comm, send, recv []float64) error {
					_, err := Allgather(c, send[:an])
					return err
				}, n)
			})
			b.Run("allgather-legacy/"+tag, func(b *testing.B) {
				benchWorld(b, p, func(c *Comm, send, recv []float64) error {
					_, err := legacyAllgather(c, send[:an])
					return err
				}, n)
			})
		}
	}
}

// BenchmarkFusedMinMax measures the satellite claim directly: the fused
// OpMinMax round against the separate min + max pair every analysis step
// used to issue.
func BenchmarkFusedMinMax(b *testing.B) {
	const p = 16
	b.Run("pair", func(b *testing.B) {
		benchWorld(b, p, func(c *Comm, send, recv []float64) error {
			if err := Allreduce(c, send[:1], recv[:1], OpMin); err != nil {
				return err
			}
			return Allreduce(c, send[:1], recv[:1], OpMax)
		}, 1)
	})
	b.Run("fused", func(b *testing.B) {
		benchWorld(b, p, func(c *Comm, send, recv []float64) error {
			lo, hi := recv[:1], send[:1]
			return AllreduceMinMax(c, lo, hi)
		}, 1)
	})
}
