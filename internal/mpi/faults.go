package mpi

import "time"

// SendFault describes the injected actions for one point-to-point message;
// the zero value is "no fault". It is produced per send by a FaultInjector.
type SendFault struct {
	// Seq is the 1-based per-(src,dst)-edge message index the injector
	// assigned. The receiving mailbox uses it to drop duplicated messages
	// (Dup) exactly once; 0 disables the dedup tracking.
	Seq uint64
	// Delay and Stall sleep the sender before delivery (per-edge message
	// latency and per-rank compute jitter respectively — they differ only
	// in how the injector indexes them).
	Delay, Stall time.Duration
	// Dup delivers the message twice; the duplicate is discarded by the
	// mailbox's seq high-water mark, exercising the dedup path.
	Dup bool
	// Reorder lets the message jump ahead of messages from other senders
	// queued at the destination — never ahead of an earlier message from
	// the same sender and communicator, preserving MPI's non-overtaking
	// guarantee.
	Reorder bool
	// Crash, when non-empty, panics the sending rank with this message
	// (recovered by Run into a per-rank error): a fail-stop rank death at a
	// deterministic point.
	Crash string
}

// FaultInjector is consulted once per message on the faulty send path. Ranks
// are world ranks (injection identity must not depend on communicator
// splits). Implementations must be safe for concurrent use; outside this
// package see internal/faultline.
type FaultInjector interface {
	BeforeSend(src, dst, tag int) SendFault
}

// WithFaults installs a fault injector into the world. Every send then takes
// the faulty path; without this option the send path does not change — a
// single nil pointer test — so the injector costs nothing when disabled.
func WithFaults(fi FaultInjector) Option {
	return func(w *World) { w.faults = fi }
}

// sendFaulty is the injected counterpart of send, kept out of line so the
// fault-free path stays tiny.
func (c *Comm) sendFaulty(dest, tag int, payload any) {
	wsrc, wdst := c.group[c.rank], c.group[dest]
	f := c.world.faults.BeforeSend(wsrc, wdst, tag)
	if f.Crash != "" {
		panic(f.Crash)
	}
	if f.Stall > 0 {
		time.Sleep(f.Stall)
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	msg := message{src: c.rank, tag: tag, ctx: c.ctx, payload: payload, seq: f.Seq, wsrc: wsrc}
	box := c.world.boxes[wdst]
	box.putFaulty(msg, f.Reorder)
	if f.Dup {
		box.putFaulty(msg, false)
	}
}

// putFaulty delivers a message from the injected send path: duplicates
// (same per-edge seq from the same sender world rank) are dropped via a
// high-water mark, and a reordered message is inserted ahead of other
// senders' queued messages but never ahead of an earlier message from its
// own (sender, communicator) stream.
func (m *mailbox) putFaulty(msg message, reorder bool) {
	m.mu.Lock()
	if msg.seq > 0 {
		if m.high == nil {
			m.high = make(map[int]uint64)
		}
		if msg.seq <= m.high[msg.wsrc] {
			m.mu.Unlock()
			return // duplicate delivery: already seen this edge seq
		}
		m.high[msg.wsrc] = msg.seq
	}
	pos := len(m.pending)
	if reorder {
		// Find the insertion point: just after the last queued message from
		// the same sender and communicator (non-overtaking), ahead of
		// everything else.
		pos = 0
		for i := len(m.pending) - 1; i >= 0; i-- {
			if m.pending[i].wsrc == msg.wsrc && m.pending[i].ctx == msg.ctx {
				pos = i + 1
				break
			}
		}
	}
	m.pending = append(m.pending, message{})
	copy(m.pending[pos+1:], m.pending[pos:])
	m.pending[pos] = msg
	for _, w := range m.waiters {
		select {
		case w <- struct{}{}:
		default:
		}
	}
	m.waiters = m.waiters[:0]
	m.mu.Unlock()
}
