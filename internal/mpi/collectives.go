package mpi

import "fmt"

// Number constrains the element types usable with arithmetic reductions.
type Number interface {
	~int | ~int32 | ~int64 | ~uint8 | ~uint32 | ~uint64 | ~float32 | ~float64
}

// Op identifies a reduction operation.
type Op int

// Reduction operations supported by Reduce, Allreduce, and Scan.
const (
	OpSum Op = iota
	OpMin
	OpMax
	OpProd
)

func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpProd:
		return "prod"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

func apply[T Number](op Op, dst, src []T) {
	switch op {
	case OpSum:
		for i := range dst {
			dst[i] += src[i]
		}
	case OpMin:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	case OpMax:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	case OpProd:
		for i := range dst {
			dst[i] *= src[i]
		}
	default:
		panic("mpi: unknown reduction op " + op.String())
	}
}

// Reserved tag space for collectives; user point-to-point tags should stay
// below collTagBase.
const (
	collTagBase = 1 << 28
	tagBarrier  = collTagBase + iota
	tagBcast
	tagReduce
	tagGather
	tagScatter
	tagScan
	tagAlltoall
	tagAllgather
)

// Barrier blocks until every rank in the communicator has entered it.
// Implemented as a binomial-tree reduce-to-zero followed by a broadcast, so
// its communication cost is O(log P) rounds like a real MPI barrier.
func (c *Comm) Barrier() error {
	// Reduce an empty token up the tree.
	mask := 1
	for mask < c.size {
		partner := c.rank ^ mask
		if c.rank&mask != 0 {
			Send(c, partner, tagBarrier, []byte{1})
			break
		}
		if partner < c.size {
			if _, _, err := Recv[byte](c, partner, tagBarrier); err != nil {
				return fmt.Errorf("barrier (up, rank %d): %w", c.rank, err)
			}
		}
		mask <<= 1
	}
	// Broadcast release down the tree.
	return Bcast(c, []byte{1}, 0)
}

// Bcast broadcasts buf from root to all ranks using a binomial tree.
// On non-root ranks buf is overwritten; all ranks must pass equal lengths.
func Bcast[T any](c *Comm, buf []T, root int) error {
	if c.size == 1 {
		return nil
	}
	// Work in a rank space where root is 0.
	vrank := (c.rank - root + c.size) % c.size
	if vrank != 0 {
		// Receive from parent.
		mask := 1
		for mask <= vrank {
			mask <<= 1
		}
		mask >>= 1
		parent := ((vrank - mask) + root) % c.size
		data, _, err := Recv[T](c, parent, tagBcast)
		if err != nil {
			return fmt.Errorf("bcast (rank %d from %d): %w", c.rank, parent, err)
		}
		if len(data) != len(buf) {
			return fmt.Errorf("bcast: length mismatch on rank %d: have %d want %d", c.rank, len(buf), len(data))
		}
		copy(buf, data)
	}
	// Forward to children.
	mask := 1
	for mask <= vrank {
		mask <<= 1
	}
	for ; mask < c.size; mask <<= 1 {
		child := vrank + mask
		if child < c.size {
			Send(c, (child+root)%c.size, tagBcast, buf)
		}
	}
	return nil
}

// Reduce combines send buffers from all ranks element-wise with op, leaving
// the result in recv on root. recv may be nil on non-root ranks. send and
// recv must not alias.
func Reduce[T Number](c *Comm, send []T, recv []T, op Op, root int) error {
	acc := make([]T, len(send))
	copy(acc, send)
	vrank := (c.rank - root + c.size) % c.size
	mask := 1
	for mask < c.size {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % c.size
			Send(c, parent, tagReduce, acc)
			break
		}
		vchild := vrank | mask
		if vchild < c.size {
			data, _, err := Recv[T](c, (vchild+root)%c.size, tagReduce)
			if err != nil {
				return fmt.Errorf("reduce (rank %d): %w", c.rank, err)
			}
			if len(data) != len(acc) {
				return fmt.Errorf("reduce: length mismatch on rank %d: have %d got %d", c.rank, len(acc), len(data))
			}
			apply(op, acc, data)
		}
		mask <<= 1
	}
	if c.rank == root {
		if len(recv) != len(send) {
			return fmt.Errorf("reduce: root recv length %d != send length %d", len(recv), len(send))
		}
		copy(recv, acc)
	}
	return nil
}

// Allreduce combines send buffers element-wise with op and leaves the result
// in recv on every rank.
func Allreduce[T Number](c *Comm, send []T, recv []T, op Op) error {
	if len(recv) != len(send) {
		return fmt.Errorf("allreduce: recv length %d != send length %d", len(recv), len(send))
	}
	if err := Reduce(c, send, recv, op, 0); err != nil {
		return err
	}
	return Bcast(c, recv, 0)
}

// Gather collects equal-length contributions from every rank onto root,
// ordered by rank. Non-root ranks receive nil.
func Gather[T any](c *Comm, send []T, root int) ([][]T, error) {
	if c.rank != root {
		Send(c, root, tagGather, send)
		return nil, nil
	}
	out := make([][]T, c.size)
	cp := make([]T, len(send))
	copy(cp, send)
	out[root] = cp
	for i := 0; i < c.size; i++ {
		if i == root {
			continue
		}
		data, _, err := Recv[T](c, i, tagGather)
		if err != nil {
			return nil, fmt.Errorf("gather (root %d from %d): %w", root, i, err)
		}
		out[i] = data
	}
	return out, nil
}

// Allgather collects each rank's contribution (which may vary in length)
// and returns the concatenation, ordered by rank, on every rank.
func Allgather[T any](c *Comm, send []T) ([]T, error) {
	parts, err := Gather(c, send, 0)
	if err != nil {
		return nil, err
	}
	var flat []T
	lens := make([]int64, c.size)
	if c.rank == 0 {
		for i, p := range parts {
			lens[i] = int64(len(p))
			flat = append(flat, p...)
		}
	}
	if err := Bcast(c, lens, 0); err != nil {
		return nil, err
	}
	total := 0
	for _, l := range lens {
		total += int(l)
	}
	if c.rank != 0 {
		flat = make([]T, total)
	}
	if err := Bcast(c, flat, 0); err != nil {
		return nil, err
	}
	return flat, nil
}

// Scatter distributes parts[i] from root to rank i. parts is read on root
// only; every rank returns its own part.
func Scatter[T any](c *Comm, parts [][]T, root int) ([]T, error) {
	if c.rank == root {
		if len(parts) != c.size {
			return nil, fmt.Errorf("scatter: need %d parts, got %d", c.size, len(parts))
		}
		for i := 0; i < c.size; i++ {
			if i == root {
				continue
			}
			Send(c, i, tagScatter, parts[i])
		}
		cp := make([]T, len(parts[root]))
		copy(cp, parts[root])
		return cp, nil
	}
	data, _, err := Recv[T](c, root, tagScatter)
	if err != nil {
		return nil, fmt.Errorf("scatter (rank %d): %w", c.rank, err)
	}
	return data, nil
}

// Scan computes an inclusive prefix reduction over ranks: rank r receives
// op(send_0, ..., send_r). Implemented linearly along the rank order.
func Scan[T Number](c *Comm, send []T, recv []T, op Op) error {
	if len(recv) != len(send) {
		return fmt.Errorf("scan: recv length %d != send length %d", len(recv), len(send))
	}
	copy(recv, send)
	if c.rank > 0 {
		data, _, err := Recv[T](c, c.rank-1, tagScan)
		if err != nil {
			return fmt.Errorf("scan (rank %d): %w", c.rank, err)
		}
		apply(op, recv, data)
	}
	if c.rank < c.size-1 {
		Send(c, c.rank+1, tagScan, recv)
	}
	return nil
}

// Alltoall exchanges parts[i] with rank i on every rank; the returned slice
// holds, at index i, what rank i sent to the caller.
func Alltoall[T any](c *Comm, parts [][]T) ([][]T, error) {
	if len(parts) != c.size {
		return nil, fmt.Errorf("alltoall: need %d parts, got %d", c.size, len(parts))
	}
	out := make([][]T, c.size)
	cp := make([]T, len(parts[c.rank]))
	copy(cp, parts[c.rank])
	out[c.rank] = cp
	// Pairwise exchange: in round k, exchange with rank^k ordering to avoid
	// flooding a single mailbox.
	for i := 0; i < c.size; i++ {
		if i == c.rank {
			continue
		}
		Send(c, i, tagAlltoall, parts[i])
	}
	for i := 0; i < c.size; i++ {
		if i == c.rank {
			continue
		}
		data, _, err := Recv[T](c, i, tagAlltoall)
		if err != nil {
			return nil, fmt.Errorf("alltoall (rank %d from %d): %w", c.rank, i, err)
		}
		out[i] = data
	}
	return out, nil
}
