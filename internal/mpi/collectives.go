// Collective operations with MPICH-style size-based algorithm selection.
//
// Every collective here used to be the naive textbook shape: Allreduce was
// reduce-then-broadcast, Allgather concatenated on rank 0 and broadcast the
// whole flat buffer twice, Gather/Scatter were linear root floods, and every
// tree hop allocated a fresh message. The paper's scaling story (Figs. 3-7)
// is driven by exactly these costs — global min/max reductions feed every
// analysis method and gather/allgather feed compositing and I/O — so this
// file now selects algorithms by message size the way real MPI
// implementations do:
//
//   - Allreduce: recursive doubling for short vectors (latency-bound),
//     Rabenseifner (recursive-halving reduce-scatter + recursive-doubling
//     allgather) for long ones. The bottleneck rank moves ~2n bytes instead
//     of the 2n·log P of reduce+bcast.
//   - Allgather/Allgatherv: a ring — P-1 rounds of neighbor exchanges, each
//     rank forwarding the block it just received — replacing the old
//     root-gather plus two whole-buffer broadcasts.
//   - Gather/Gatherv/Scatter: binomial trees (log P rounds at the root
//     instead of P-1 point-to-point messages).
//   - Bcast: binomial for short payloads, segmented and pipelined down the
//     same tree for long ones so deep trees stream rather than
//     store-and-forward.
//   - Alltoall: true round-ordered pairwise exchange — in round r every rank
//     sends to (rank+r) mod P and receives from (rank-r) mod P, so each
//     mailbox sees exactly one message per round.
//
// The data path is allocation-free at steady state: internal tree hops ship
// pooled buffers as *[]T — a pointer is boxed into the message interface and
// into sync.Pool without allocating, so the same header object circulates
// between ranks forever — and reduction application is chunked through
// internal/parallel.For for large buffers. Buffers handed to callers are
// always fresh or fully owned; pooled memory never escapes.
package mpi

import (
	"fmt"
	"reflect"
	"sync"
	"unsafe"

	"gosensei/internal/parallel"
)

// Number constrains the element types usable with arithmetic reductions.
type Number interface {
	~int | ~int32 | ~int64 | ~uint8 | ~uint32 | ~uint64 | ~float32 | ~float64
}

// Op identifies a reduction operation.
type Op int

// Reduction operations supported by Reduce, Allreduce, and Scan. OpMinMax is
// the fused range operation: the first half of the vector is combined with
// min and the second half with max, so the ubiquitous "global [lo, hi]"
// pattern costs one collective round instead of two.
const (
	OpSum Op = iota
	OpMin
	OpMax
	OpProd
	OpMinMax
)

func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpProd:
		return "prod"
	case OpMinMax:
		return "minmax"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Algorithm-selection thresholds, in payload bytes. The crossover points
// follow the MPICH defaults in spirit: latency-bound algorithms below,
// bandwidth-frugal ones above.
const (
	// allreduceLongMin is the payload size above which Allreduce switches
	// from recursive doubling to Rabenseifner.
	allreduceLongMin = 8 << 10
	// bcastSegBytes is both the pipeline-segment size and the threshold
	// above which Bcast streams segments down the binomial tree.
	bcastSegBytes = 64 << 10
	// applyGrain is the parallel-for chunk size (in elements) for reduction
	// application; buffers at least two grains long fan out across the
	// rank's thread budget.
	applyGrain = 16 << 10
)

// sizeOf reports the in-memory size of one element of type T.
func sizeOf[T any]() int {
	var z T
	return int(unsafe.Sizeof(z))
}

// bufPools recycles message and accumulator buffers per element type. The
// pooled unit is a *[]T header object: pointers box into sync.Pool and into
// the message payload interface without allocating, so once a buffer exists
// it circulates between ranks — drawn by a sender, shipped through a
// mailbox, returned by the receiver — with zero allocations per hop.
var bufPools sync.Map // reflect.Type (*T) -> *sync.Pool of *[]T

func poolFor[T any]() *sync.Pool {
	key := reflect.TypeOf((*T)(nil))
	if p, ok := bufPools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := bufPools.LoadOrStore(key, &sync.Pool{})
	return p.(*sync.Pool)
}

// getBuf returns a pooled buffer resized to length n with arbitrary
// contents. Callers must fully overwrite it before reading. Capacities are
// rounded up to a power of two so that buffers cycling through differently
// sized windows (Rabenseifner halves, Bcast segments) converge onto a small
// set of size classes instead of reallocating on every mismatch.
func getBuf[T any](n int) *[]T {
	if v := poolFor[T]().Get(); v != nil {
		ptr := v.(*[]T)
		if cap(*ptr) >= n {
			*ptr = (*ptr)[:n]
		} else {
			*ptr = make([]T, n, roundUpPow2(n))
		}
		return ptr
	}
	s := make([]T, n, roundUpPow2(n))
	return &s
}

func roundUpPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// putBuf returns a buffer to the pool. Only buffers obtained from getBuf or
// received from an internal hop may be put; slices handed to callers are
// theirs and must never come back here.
func putBuf[T any](ptr *[]T) {
	poolFor[T]().Put(ptr)
}

// sendBuf ships a pooled buffer to dest on a reserved collective tag,
// transferring ownership: the receiver returns it to the pool (or keeps
// recycling it). The pointer payload makes the in-process hop
// allocation-free. A remote destination gets the buffer's bytes on the wire
// instead, and the buffer goes straight back to the local pool — ownership
// "transfers" to the copy in flight.
func sendBuf[T any](c *Comm, dest, tag int, ptr *[]T) {
	countSent[T](c, len(*ptr))
	if wd := c.remoteDst(dest); wd >= 0 {
		c.sendRemote(buildEnvelope(c, wd, tag, *ptr))
		putBuf(ptr)
		return
	}
	c.send(dest, tag, ptr)
}

// recvBuf receives a pooled buffer shipped with sendBuf. The caller owns the
// buffer until it putBufs it onward. A wire envelope decodes into a pooled
// buffer, so the collectives' steady-state allocation profile holds on both
// transports.
func recvBuf[T any](c *Comm, src, tag int) (*[]T, error) {
	msg, err := c.recv(src, tag)
	if err != nil {
		return nil, err
	}
	if env, ok := msg.payload.(*Envelope); ok {
		ptr := getBuf[T](env.Count)
		if derr := decodePayloadInto(env, *ptr); derr != nil {
			putBuf(ptr)
			return nil, derr
		}
		countRecv[T](c, env.Count)
		return ptr, nil
	}
	ptr, ok := msg.payload.(*[]T)
	if !ok {
		return nil, fmt.Errorf("mpi: collective payload mismatch: message from rank %d tag %d holds %T", msg.src, msg.tag, msg.payload)
	}
	countRecv[T](c, len(*ptr))
	return ptr, nil
}

// sendRecvBuf exchanges pooled buffers with partner on one tag.
func sendRecvBuf[T any](c *Comm, partner, tag int, ptr *[]T) (*[]T, error) {
	sendBuf(c, partner, tag, ptr)
	return recvBuf[T](c, partner, tag)
}

// applyRange combines src into dst element-wise. off is the global index of
// dst[0] within the full reduction vector and split the OpMinMax boundary:
// global indices below split reduce with min, the rest with max. Both are
// ignored by the scalar ops.
func applyRange[T Number](op Op, dst, src []T, off, split int) {
	switch op {
	case OpSum:
		for i := range dst {
			dst[i] += src[i]
		}
	case OpMin:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	case OpMax:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	case OpProd:
		for i := range dst {
			dst[i] *= src[i]
		}
	case OpMinMax:
		b := split - off
		if b < 0 {
			b = 0
		}
		if b > len(dst) {
			b = len(dst)
		}
		for i := 0; i < b; i++ {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
		for i := b; i < len(dst); i++ {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	default:
		panic("mpi: unknown reduction op " + op.String())
	}
}

// apply chunks applyRange through the rank's parallel worker budget when the
// buffer is long enough to amortize the fan-out. Chunk boundaries depend
// only on the length, and the operation is element-wise, so results are
// bit-identical at any worker count.
func apply[T Number](c *Comm, op Op, dst, src []T, off, split int) {
	if len(dst) >= 2*applyGrain {
		if w := parallel.Budget(c.world.size); w > 1 {
			parallel.For(w, len(dst), applyGrain, func(lo, hi int) {
				applyRange(op, dst[lo:hi], src[lo:hi], off+lo, split)
			})
			return
		}
	}
	applyRange(op, dst, src, off, split)
}

// opSplit validates an op against a vector length and returns the OpMinMax
// boundary (-1 for the scalar ops).
func opSplit(coll string, op Op, n int) (int, error) {
	if op != OpMinMax {
		return -1, nil
	}
	if n%2 != 0 {
		return 0, fmt.Errorf("mpi: %s: OpMinMax needs an even-length vector, got %d", coll, n)
	}
	return n / 2, nil
}

// Reserved tag space for collectives; user point-to-point tags must stay
// below collTagBase (gosenseilint's mpi-tag-hygiene rule enforces this).
const (
	collTagBase = 1 << 28
	tagBarrier  = collTagBase + iota
	tagBcast
	tagReduce
	tagGather
	tagGatherLen
	tagScatter
	tagScatterLen
	tagScan
	tagAlltoall
	tagAllgather
	tagAllreduce
)

// largestPow2 returns the largest power of two <= n (n >= 1).
func largestPow2(n int) int {
	pow := 1
	for pow*2 <= n {
		pow *= 2
	}
	return pow
}

// Barrier blocks until every rank in the communicator has entered it.
// Implemented as a binomial-tree reduce-to-zero followed by a broadcast, so
// its communication cost is O(log P) rounds like a real MPI barrier.
func (c *Comm) Barrier() error {
	// Reduce a token up the tree.
	mask := 1
	for mask < c.size {
		partner := c.rank ^ mask
		if c.rank&mask != 0 {
			tok := getBuf[byte](1)
			sendBuf(c, partner, tagBarrier, tok)
			break
		}
		if partner < c.size {
			tok, err := recvBuf[byte](c, partner, tagBarrier)
			if err != nil {
				return fmt.Errorf("barrier (up, rank %d): %w", c.rank, err)
			}
			putBuf(tok)
		}
		mask <<= 1
	}
	// Broadcast release down the tree.
	rel := getBuf[byte](1)
	defer putBuf(rel)
	return Bcast(c, *rel, 0)
}

// binomialParentChildren computes, for the binomial broadcast tree rooted at
// virtual rank 0, vrank's parent (-1 for the root) and the first child mask:
// the children are vrank+mask for mask doubling while vrank+mask < size.
func binomialParentChildren(vrank int) (parent, childMask int) {
	mask := 1
	for mask <= vrank {
		mask <<= 1
	}
	parent = -1
	if vrank != 0 {
		parent = vrank - mask>>1
	}
	return parent, mask
}

// Bcast broadcasts buf from root to all ranks over a binomial tree. Long
// payloads are cut into segments pipelined down the tree: a rank forwards
// segment k to its children before receiving segment k+1, so the cost is
// O(log P + S) segment times instead of O(log P · S). On non-root ranks buf
// is overwritten; all ranks must pass equal lengths.
func Bcast[T any](c *Comm, buf []T, root int) error {
	if c.size == 1 || len(buf) == 0 {
		return nil
	}
	segElems := len(buf)
	if total := len(buf) * sizeOf[T](); total > bcastSegBytes {
		segElems = bcastSegBytes / sizeOf[T]()
		if segElems < 1 {
			segElems = 1
		}
	}
	vrank := (c.rank - root + c.size) % c.size
	parent, childMask := binomialParentChildren(vrank)
	for off := 0; off < len(buf); off += segElems {
		end := off + segElems
		if end > len(buf) {
			end = len(buf)
		}
		seg := buf[off:end]
		if parent >= 0 {
			data, err := recvBuf[T](c, (parent+root)%c.size, tagBcast)
			if err != nil {
				return fmt.Errorf("bcast (rank %d from %d): %w", c.rank, (parent+root)%c.size, err)
			}
			if len(*data) != len(seg) {
				return fmt.Errorf("bcast: length mismatch on rank %d: have %d want %d", c.rank, len(seg), len(*data))
			}
			copy(seg, *data)
			putBuf(data)
		}
		for mask := childMask; vrank+mask < c.size; mask <<= 1 {
			msg := getBuf[T](len(seg))
			copy(*msg, seg)
			sendBuf(c, (vrank+mask+root)%c.size, tagBcast, msg)
		}
	}
	return nil
}

// Reduce combines send buffers from all ranks element-wise with op, leaving
// the result in recv on root. recv may be nil on non-root ranks. send and
// recv must not alias.
func Reduce[T Number](c *Comm, send []T, recv []T, op Op, root int) error {
	split, err := opSplit("reduce", op, len(send))
	if err != nil {
		return err
	}
	if c.rank == root && len(recv) != len(send) {
		return fmt.Errorf("reduce: root recv length %d != send length %d", len(recv), len(send))
	}
	acc := getBuf[T](len(send))
	copy(*acc, send)
	vrank := (c.rank - root + c.size) % c.size
	for mask := 1; mask < c.size; mask <<= 1 {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % c.size
			sendBuf(c, parent, tagReduce, acc)
			return nil
		}
		vchild := vrank | mask
		if vchild < c.size {
			data, err := recvBuf[T](c, (vchild+root)%c.size, tagReduce)
			if err != nil {
				return fmt.Errorf("reduce (rank %d): %w", c.rank, err)
			}
			if len(*data) != len(*acc) {
				return fmt.Errorf("reduce: length mismatch on rank %d: have %d got %d", c.rank, len(*acc), len(*data))
			}
			apply(c, op, *acc, *data, 0, split)
			putBuf(data)
		}
	}
	copy(recv, *acc)
	putBuf(acc)
	return nil
}

// Allreduce combines send buffers element-wise with op and leaves the result
// in recv on every rank. Short vectors use recursive doubling (log P rounds
// of whole-vector exchanges); long vectors use Rabenseifner's algorithm — a
// recursive-halving reduce-scatter followed by a recursive-doubling
// allgather — which cuts the bytes through the bottleneck rank from
// ~2n·log P to ~2n. Results are bit-identical across ranks and across both
// algorithms for integer and min/max reductions; floating-point sums may
// differ from a serial reduction in the last ulp because the combination
// tree is balanced rather than linear, as in any real MPI.
func Allreduce[T Number](c *Comm, send []T, recv []T, op Op) error {
	if len(recv) != len(send) {
		return fmt.Errorf("allreduce: recv length %d != send length %d", len(recv), len(send))
	}
	split, err := opSplit("allreduce", op, len(send))
	if err != nil {
		return err
	}
	if c.size == 1 {
		copy(recv, send)
		return nil
	}
	pow := largestPow2(c.size)
	if len(send)*sizeOf[T]() <= allreduceLongMin || len(send) < 2*pow {
		return allreduceRecDouble(c, send, recv, op, split, pow)
	}
	return allreduceRabenseifner(c, send, recv, op, split, pow)
}

// AllreduceMinMax fuses the global-minimum of lo and global-maximum of hi
// into one collective round, in place: on return lo holds the element-wise
// minima and hi the maxima across all ranks. lo and hi must have the same
// length on every rank. This is the fused path for the "global [min, max]"
// pattern that precedes every histogram, index, compression, and rendering
// step.
func AllreduceMinMax[T Number](c *Comm, lo, hi []T) error {
	if len(lo) != len(hi) {
		return fmt.Errorf("allreduce-minmax: lo length %d != hi length %d", len(lo), len(hi))
	}
	if c.size == 1 {
		return nil
	}
	n := len(lo)
	send := getBuf[T](2 * n)
	recv := getBuf[T](2 * n)
	copy((*send)[:n], lo)
	copy((*send)[n:], hi)
	err := Allreduce(c, *send, *recv, OpMinMax)
	if err == nil {
		copy(lo, (*recv)[:n])
		copy(hi, (*recv)[n:])
	}
	putBuf(send)
	putBuf(recv)
	return err
}

// foldReal maps a power-of-two group rank back to a communicator rank: the
// first 2*rem communicator ranks fold pairwise (the even member retires
// until the unfold), the rest map one-to-one.
func foldReal(grank, rem int) int {
	if grank < rem {
		return grank*2 + 1
	}
	return grank + rem
}

// foldIn performs the pre-step onto the largest embedded power-of-two group:
// even folded ranks send their working vector to their odd partner, which
// reduces it. Returns the caller's group rank, or -1 if it folded out.
func foldIn[T Number](c *Comm, work []T, op Op, split, rem int) (int, error) {
	switch {
	case c.rank < 2*rem && c.rank%2 == 0:
		msg := getBuf[T](len(work))
		copy(*msg, work)
		sendBuf(c, c.rank+1, tagAllreduce, msg)
		return -1, nil
	case c.rank < 2*rem:
		data, err := recvBuf[T](c, c.rank-1, tagAllreduce)
		if err != nil {
			return 0, fmt.Errorf("allreduce fold (rank %d): %w", c.rank, err)
		}
		if len(*data) != len(work) {
			return 0, fmt.Errorf("allreduce fold: length mismatch on rank %d: have %d got %d", c.rank, len(work), len(*data))
		}
		apply(c, op, work, *data, 0, split)
		putBuf(data)
		return c.rank / 2, nil
	default:
		return c.rank - rem, nil
	}
}

// foldOut performs the post-step: odd partners ship the finished vector back
// to the even ranks that folded out.
func foldOut[T Number](c *Comm, work []T, rem int) error {
	if c.rank >= 2*rem {
		return nil
	}
	if c.rank%2 == 0 {
		data, err := recvBuf[T](c, c.rank+1, tagAllreduce)
		if err != nil {
			return fmt.Errorf("allreduce unfold (rank %d): %w", c.rank, err)
		}
		copy(work, *data)
		putBuf(data)
		return nil
	}
	msg := getBuf[T](len(work))
	copy(*msg, work)
	sendBuf(c, c.rank-1, tagAllreduce, msg)
	return nil
}

// allreduceRecDouble is the short-vector algorithm: after folding to a
// power-of-two group, log P rounds in which partners exchange whole vectors
// and reduce. Latency-optimal; every rank moves n·log P bytes.
func allreduceRecDouble[T Number](c *Comm, send, recv []T, op Op, split, pow int) error {
	copy(recv, send)
	rem := c.size - pow
	grank, err := foldIn(c, recv, op, split, rem)
	if err != nil {
		return err
	}
	if grank >= 0 {
		for mask := 1; mask < pow; mask <<= 1 {
			partner := foldReal(grank^mask, rem)
			msg := getBuf[T](len(recv))
			copy(*msg, recv)
			data, err := sendRecvBuf(c, partner, tagAllreduce, msg)
			if err != nil {
				return fmt.Errorf("allreduce (rank %d <-> %d): %w", c.rank, partner, err)
			}
			if len(*data) != len(recv) {
				return fmt.Errorf("allreduce: length mismatch on rank %d: have %d got %d", c.rank, len(recv), len(*data))
			}
			apply(c, op, recv, *data, 0, split)
			putBuf(data)
		}
	}
	return foldOut(c, recv, rem)
}

// allreduceRabenseifner is the long-vector algorithm: a recursive-halving
// reduce-scatter leaves each group rank with a fully reduced 1/P window,
// then the exchanges replay in reverse as a recursive-doubling allgather.
// Every group rank sends and receives ~2n(P-1)/P bytes — the bandwidth
// optimum — versus the 2n·log P that the root of a reduce+bcast moves.
func allreduceRabenseifner[T Number](c *Comm, send, recv []T, op Op, split, pow int) error {
	copy(recv, send)
	rem := c.size - pow
	grank, err := foldIn(c, recv, op, split, rem)
	if err != nil {
		return err
	}
	if grank >= 0 {
		n := len(recv)
		lo, hi := 0, n
		type window struct{ lo, hi int }
		var wins [64]window
		rounds := 0
		// Reduce-scatter by recursive halving: each round trades away half
		// of the current window and reduces the kept half.
		for mask := 1; mask < pow; mask <<= 1 {
			partner := foldReal(grank^mask, rem)
			mid := lo + (hi-lo)/2
			var sendLo, sendHi, keepLo, keepHi int
			if grank&mask == 0 {
				sendLo, sendHi, keepLo, keepHi = mid, hi, lo, mid
			} else {
				sendLo, sendHi, keepLo, keepHi = lo, mid, mid, hi
			}
			msg := getBuf[T](sendHi - sendLo)
			copy(*msg, recv[sendLo:sendHi])
			data, err := sendRecvBuf(c, partner, tagAllreduce, msg)
			if err != nil {
				return fmt.Errorf("allreduce reduce-scatter (rank %d <-> %d): %w", c.rank, partner, err)
			}
			if len(*data) != keepHi-keepLo {
				return fmt.Errorf("allreduce reduce-scatter: length mismatch on rank %d: have %d got %d", c.rank, keepHi-keepLo, len(*data))
			}
			apply(c, op, recv[keepLo:keepHi], *data, keepLo, split)
			putBuf(data)
			wins[rounds] = window{keepLo, keepHi}
			rounds++
			lo, hi = keepLo, keepHi
		}
		// Allgather by replaying the halvings in reverse: partners exchange
		// their finished windows, doubling the owned range each round.
		for i := rounds - 1; i >= 0; i-- {
			partner := foldReal(grank^(1<<i), rem)
			pLo, pHi := 0, n
			if i > 0 {
				pLo, pHi = wins[i-1].lo, wins[i-1].hi
			}
			msg := getBuf[T](hi - lo)
			copy(*msg, recv[lo:hi])
			data, err := sendRecvBuf(c, partner, tagAllreduce, msg)
			if err != nil {
				return fmt.Errorf("allreduce allgather (rank %d <-> %d): %w", c.rank, partner, err)
			}
			if lo == pLo { // partner holds the upper sibling window
				if len(*data) != pHi-hi {
					return fmt.Errorf("allreduce allgather: length mismatch on rank %d: have %d got %d", c.rank, pHi-hi, len(*data))
				}
				copy(recv[hi:pHi], *data)
			} else {
				if len(*data) != lo-pLo {
					return fmt.Errorf("allreduce allgather: length mismatch on rank %d: have %d got %d", c.rank, lo-pLo, len(*data))
				}
				copy(recv[pLo:lo], *data)
			}
			putBuf(data)
			lo, hi = pLo, pHi
		}
	}
	return foldOut(c, recv, rem)
}

// subtreeSpan returns the number of virtual ranks in vrank's subtree within
// the contiguous-subtree binomial tree (parent = clear lowest set bit): the
// subtree of v is the vrank range [v, v+span).
func subtreeSpan(vrank, size int) int {
	if vrank == 0 {
		return size
	}
	span := vrank & -vrank
	if vrank+span > size {
		span = size - vrank
	}
	return span
}

// Gather collects equal-length contributions from every rank onto root over
// a binomial tree, ordered by rank. Non-root ranks receive nil. Ranks must
// contribute equal lengths; use Gatherv for variable-length contributions.
func Gather[T any](c *Comm, send []T, root int) ([][]T, error) {
	m := len(send)
	if c.size == 1 {
		cp := make([]T, m)
		copy(cp, send)
		return [][]T{cp}, nil
	}
	vrank := (c.rank - root + c.size) % c.size
	span := subtreeSpan(vrank, c.size)
	var acc []T
	var accPtr *[]T
	if vrank == 0 {
		acc = make([]T, span*m) // becomes the caller-owned result
	} else {
		accPtr = getBuf[T](span * m)
		acc = *accPtr
	}
	copy(acc[:m], send)
	for mask := 1; mask < c.size; mask <<= 1 {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % c.size
			sendBuf(c, parent, tagGather, accPtr)
			return nil, nil
		}
		vchild := vrank | mask
		if vchild < c.size {
			cspan := subtreeSpan(vchild, c.size)
			data, err := recvBuf[T](c, (vchild+root)%c.size, tagGather)
			if err != nil {
				return nil, fmt.Errorf("gather (rank %d from %d): %w", c.rank, (vchild+root)%c.size, err)
			}
			if len(*data) != cspan*m {
				return nil, fmt.Errorf("gather: unequal contribution lengths (rank %d: subtree of %d sent %d elements, want %d·%d); use Gatherv for variable lengths", c.rank, (vchild+root)%c.size, len(*data), cspan, m)
			}
			copy(acc[(vchild-vrank)*m:], *data)
			putBuf(data)
		}
	}
	out := make([][]T, c.size)
	for v := 0; v < c.size; v++ {
		out[(v+root)%c.size] = acc[v*m : (v+1)*m : (v+1)*m]
	}
	return out, nil
}

// Gatherv collects variable-length contributions from every rank onto root
// over a binomial tree, ordered by rank. Non-root ranks receive nil. Each
// tree hop ships a per-rank length header alongside the concatenated
// payload, so the root reassembles exact per-rank slices in log P rounds —
// this replaces the linear per-rank Send/Recv floods call sites used before
// it existed.
func Gatherv[T any](c *Comm, send []T, root int) ([][]T, error) {
	if c.size == 1 {
		cp := make([]T, len(send))
		copy(cp, send)
		return [][]T{cp}, nil
	}
	vrank := (c.rank - root + c.size) % c.size
	span := subtreeSpan(vrank, c.size)
	lens := getBuf[int64](span)
	(*lens)[0] = int64(len(send))
	acc := getBuf[T](len(send))
	copy(*acc, send)
	for mask := 1; mask < c.size; mask <<= 1 {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % c.size
			sendBuf(c, parent, tagGatherLen, lens)
			sendBuf(c, parent, tagGather, acc)
			return nil, nil
		}
		vchild := vrank | mask
		if vchild < c.size {
			cspan := subtreeSpan(vchild, c.size)
			src := (vchild + root) % c.size
			clens, err := recvBuf[int64](c, src, tagGatherLen)
			if err != nil {
				return nil, fmt.Errorf("gatherv (rank %d from %d): %w", c.rank, src, err)
			}
			data, err := recvBuf[T](c, src, tagGather)
			if err != nil {
				return nil, fmt.Errorf("gatherv (rank %d from %d): %w", c.rank, src, err)
			}
			var want int64
			for _, l := range *clens {
				want += l
			}
			if len(*clens) != cspan || int64(len(*data)) != want {
				return nil, fmt.Errorf("gatherv: inconsistent header from rank %d (lens %d/%d, data %d/%d)", src, len(*clens), cspan, len(*data), want)
			}
			copy((*lens)[vchild-vrank:], *clens)
			*acc = append(*acc, *data...)
			putBuf(clens)
			putBuf(data)
		}
	}
	// Root: carve caller-owned per-rank slices out of one fresh allocation.
	flat := make([]T, len(*acc))
	copy(flat, *acc)
	putBuf(acc)
	out := make([][]T, c.size)
	off := 0
	for v := 0; v < c.size; v++ {
		l := int((*lens)[v])
		out[(v+root)%c.size] = flat[off : off+l : off+l]
		off += l
	}
	putBuf(lens)
	return out, nil
}

// Allgather collects each rank's contribution (which may vary in length)
// and returns the concatenation, ordered by rank, on every rank. Implemented
// as a ring: in each of P-1 rounds a rank forwards to its right neighbor the
// block it received in the previous round, so every rank moves ~total bytes
// instead of the root-centric gather+rebroadcast this replaces.
func Allgather[T any](c *Comm, send []T) ([]T, error) {
	flat, lens, err := allgatherRing(c, send)
	if err != nil {
		return nil, err
	}
	putBuf(lens)
	return flat, nil
}

// Allgatherv is Allgather returning per-rank slices instead of a flat
// concatenation; the slices are views into one contiguous allocation, in
// rank order, on every rank.
func Allgatherv[T any](c *Comm, send []T) ([][]T, error) {
	flat, lens, err := allgatherRing(c, send)
	if err != nil {
		return nil, err
	}
	out := make([][]T, c.size)
	off := 0
	for r, l := range *lens {
		out[r] = flat[off : off+int(l) : off+int(l)]
		off += int(l)
	}
	putBuf(lens)
	return out, nil
}

func allgatherRing[T any](c *Comm, send []T) ([]T, *[]int64, error) {
	p := c.size
	if p == 1 {
		cp := make([]T, len(send))
		copy(cp, send)
		lens := getBuf[int64](1)
		(*lens)[0] = int64(len(send))
		return cp, lens, nil
	}
	blockPtrs := getBuf[*[]T](p)
	blocks := *blockPtrs
	for i := range blocks {
		blocks[i] = nil
	}
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	for r := 0; r < p-1; r++ {
		// Forward a copy of the block received last round (round 0: my own
		// contribution); the original stays for the final assembly.
		out := send
		if r > 0 {
			out = *blocks[(c.rank-r+p)%p]
		}
		msg := getBuf[T](len(out))
		copy(*msg, out)
		sendBuf(c, right, tagAllgather, msg)
		data, err := recvBuf[T](c, left, tagAllgather)
		if err != nil {
			putBuf(blockPtrs)
			return nil, nil, fmt.Errorf("allgather ring (rank %d round %d): %w", c.rank, r, err)
		}
		blocks[(c.rank-r-1+p)%p] = data
	}
	total := len(send)
	lens := getBuf[int64](p)
	for r := range blocks {
		if r == c.rank {
			(*lens)[r] = int64(len(send))
			continue
		}
		(*lens)[r] = int64(len(*blocks[r]))
		total += len(*blocks[r])
	}
	flat := make([]T, total)
	off := 0
	for r := range blocks {
		if r == c.rank {
			off += copy(flat[off:], send)
			continue
		}
		off += copy(flat[off:], *blocks[r])
		putBuf(blocks[r])
	}
	putBuf(blockPtrs)
	return flat, lens, nil
}

// Scatter distributes parts[i] from root to rank i over a binomial tree:
// the root ships each child the concatenated block for that child's whole
// subtree (with a length header), and interior ranks peel off their part
// and forward the rest. parts is read on root only; every rank returns its
// own part. Parts may vary in length (MPI_Scatterv semantics).
func Scatter[T any](c *Comm, parts [][]T, root int) ([]T, error) {
	p := c.size
	if c.rank == root && len(parts) != p {
		return nil, fmt.Errorf("scatter: need %d parts, got %d", p, len(parts))
	}
	if p == 1 {
		cp := make([]T, len(parts[root]))
		copy(cp, parts[root])
		return cp, nil
	}
	vrank := (c.rank - root + p) % p
	span := subtreeSpan(vrank, p)
	var lens *[]int64
	var flat *[]T
	if vrank == 0 {
		lens = getBuf[int64](p)
		total := 0
		for v := 0; v < p; v++ {
			(*lens)[v] = int64(len(parts[(v+root)%p]))
			total += len(parts[(v+root)%p])
		}
		flat = getBuf[T](total)
		off := 0
		for v := 0; v < p; v++ {
			off += copy((*flat)[off:], parts[(v+root)%p])
		}
	} else {
		// Parent in the contiguous-subtree convention (same tree as Gather):
		// clear the lowest set bit of vrank.
		parent := vrank &^ (vrank & -vrank)
		src := (parent + root) % p
		var err error
		lens, err = recvBuf[int64](c, src, tagScatterLen)
		if err != nil {
			return nil, fmt.Errorf("scatter (rank %d from %d): %w", c.rank, src, err)
		}
		flat, err = recvBuf[T](c, src, tagScatter)
		if err != nil {
			return nil, fmt.Errorf("scatter (rank %d from %d): %w", c.rank, src, err)
		}
		var want int64
		for _, l := range *lens {
			want += l
		}
		if len(*lens) != span || int64(len(*flat)) != want {
			return nil, fmt.Errorf("scatter: inconsistent block on rank %d (lens %d/%d, data %d/%d)", c.rank, len(*lens), span, len(*flat), want)
		}
	}
	// Prefix offsets of each subtree vrank's part within my block.
	offs := getBuf[int64](span + 1)
	(*offs)[0] = 0
	for i := 0; i < span; i++ {
		(*offs)[i+1] = (*offs)[i] + (*lens)[i]
	}
	// Children in the contiguous-subtree convention: vrank+mask for each
	// mask below vrank's lowest set bit (all masks for the root), so each
	// child's subtree is the contiguous vrank range [vchild, vchild+cspan).
	childLimit := p
	if vrank != 0 {
		childLimit = vrank & -vrank
	}
	for mask := 1; mask < childLimit && vrank+mask < p; mask <<= 1 {
		vchild := vrank + mask
		cspan := subtreeSpan(vchild, p)
		i0 := vchild - vrank
		clens := getBuf[int64](cspan)
		copy(*clens, (*lens)[i0:i0+cspan])
		cdata := getBuf[T](int((*offs)[i0+cspan] - (*offs)[i0]))
		copy(*cdata, (*flat)[(*offs)[i0]:(*offs)[i0+cspan]])
		dst := (vchild + root) % p
		sendBuf(c, dst, tagScatterLen, clens)
		sendBuf(c, dst, tagScatter, cdata)
	}
	out := make([]T, (*lens)[0])
	copy(out, (*flat)[:(*lens)[0]])
	putBuf(offs)
	putBuf(lens)
	putBuf(flat)
	return out, nil
}

// Scan computes an inclusive prefix reduction over ranks: rank r receives
// op(send_0, ..., send_r). Implemented linearly along the rank order.
func Scan[T Number](c *Comm, send []T, recv []T, op Op) error {
	if len(recv) != len(send) {
		return fmt.Errorf("scan: recv length %d != send length %d", len(recv), len(send))
	}
	split, err := opSplit("scan", op, len(send))
	if err != nil {
		return err
	}
	copy(recv, send)
	if c.rank > 0 {
		data, err := recvBuf[T](c, c.rank-1, tagScan)
		if err != nil {
			return fmt.Errorf("scan (rank %d): %w", c.rank, err)
		}
		apply(c, op, recv, *data, 0, split)
		putBuf(data)
	}
	if c.rank < c.size-1 {
		msg := getBuf[T](len(recv))
		copy(*msg, recv)
		sendBuf(c, c.rank+1, tagScan, msg)
	}
	return nil
}

// Alltoall exchanges parts[i] with rank i on every rank; the returned slice
// holds, at index i, what rank i sent to the caller. Pairwise exchange in
// P-1 rounds: in round r every rank sends to (rank+r) mod P and receives
// from (rank-r) mod P — the sends of each round form a permutation, so no
// mailbox is ever flooded with more than one message per round.
func Alltoall[T any](c *Comm, parts [][]T) ([][]T, error) {
	p := c.size
	if len(parts) != p {
		return nil, fmt.Errorf("alltoall: need %d parts, got %d", p, len(parts))
	}
	out := make([][]T, p)
	cp := make([]T, len(parts[c.rank]))
	copy(cp, parts[c.rank])
	out[c.rank] = cp
	for r := 1; r < p; r++ {
		to := (c.rank + r) % p
		from := (c.rank - r + p) % p
		msg := getBuf[T](len(parts[to]))
		copy(*msg, parts[to])
		sendBuf(c, to, tagAlltoall, msg)
		data, err := recvBuf[T](c, from, tagAlltoall)
		if err != nil {
			return nil, fmt.Errorf("alltoall (rank %d round %d from %d): %w", c.rank, r, from, err)
		}
		// The result is caller-owned: copy out and recycle the hop buffer.
		part := make([]T, len(*data))
		copy(part, *data)
		putBuf(data)
		out[from] = part
	}
	return out, nil
}
