// Package mpi provides an in-process message-passing runtime modeled on MPI.
//
// Ranks are goroutines launched by Run; each rank receives a *Comm handle
// through which it performs point-to-point communication (Send/Recv with tag
// matching) and collective operations (Barrier, Bcast, Reduce, Allreduce,
// Gather, Gatherv, Scatter, Allgather, Allgatherv, Scan, Alltoall).
// Communicators can be split into sub-communicators with Split, mirroring
// MPI_Comm_split.
//
// The package exists because this repository reproduces an HPC paper
// (SC16 SENSEI) whose software stack is built on MPI, and Go has no MPI
// bindings in the standard library. The collectives select algorithms by
// message size the way MPICH does — recursive doubling and Rabenseifner for
// Allreduce, ring for Allgather, binomial trees for Bcast/Gather/Scatter,
// round-ordered pairwise exchange for Alltoall — so that their communication
// step counts and per-rank byte volumes, which drive the scaling behavior
// the paper measures, match real MPI implementations. Per-rank traffic
// odometers (TrafficStats) expose those volumes for tests and benchmarks.
//
// Message payloads are copied on Send and copied again into the receiver's
// buffer, preserving message-passing semantics: after a Send returns, the
// sender may freely reuse its buffer. SendOwned transfers ownership instead
// of copying; collectives use it with pooled buffers on internal tree hops
// so steady-state reductions do not allocate.
package mpi

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Wildcard values for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// DefaultRecvTimeout bounds how long a Recv waits before the runtime declares
// a deadlock. It is deliberately generous; tests that exercise deadlock
// detection shrink it via World options.
const DefaultRecvTimeout = 120 * time.Second

// message is a single in-flight point-to-point message. seq and wsrc are
// only set on the fault-injection path (see faults.go): seq is the per-edge
// delivery sequence used to discard injected duplicates, wsrc the sender's
// world rank keying that tracking.
type message struct {
	src     int // rank of sender within the communicator
	tag     int
	ctx     int // communicator context id
	payload any // copied slice
	seq     uint64
	wsrc    int
}

// mailbox holds pending messages for one world rank. high is the per-sender
// dedup high-water mark, allocated lazily by the fault-injection path and
// nil on every fault-free run. dead, once set by poison, fails every
// receive that finds no queued match — the distributed world's fast path
// from "peer process died" to "collective errors out".
type mailbox struct {
	mu      sync.Mutex
	pending []message
	waiters []chan struct{}
	high    map[int]uint64
	dead    error
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.pending = append(m.pending, msg)
	// Signal under the lock: the sends are non-blocking (cap-1 token
	// channels), and truncating rather than nil-ing keeps the waiters
	// backing array alive so blocked receives never re-grow it.
	for _, w := range m.waiters {
		select {
		case w <- struct{}{}:
		default: // already signaled; one token is enough to trigger a rescan
		}
	}
	m.waiters = m.waiters[:0]
	m.mu.Unlock()
}

// waiterPool recycles wakeup channels across blocking receives. A waiter is
// a capacity-1 token channel rather than a close-once channel so it can be
// reused: put delivers at most one token, and getWaiter drains any stale
// token left by a timed-out wait. A stale registration firing into a reused
// channel only causes a harmless rescan.
var waiterPool sync.Pool

func getWaiter() chan struct{} {
	if v := waiterPool.Get(); v != nil {
		w := v.(chan struct{})
		select {
		case <-w:
		default:
		}
		return w
	}
	return make(chan struct{}, 1)
}

// take removes and returns the first message matching (src, tag, ctx).
// It blocks until a match arrives, the mailbox is poisoned, or the timeout
// elapses. Messages queued before the poison still deliver; only a receive
// that would otherwise wait fails fast.
func (m *mailbox) take(src, tag, ctx int, timeout time.Duration) (message, error) {
	deadline := time.Now().Add(timeout)
	for {
		m.mu.Lock()
		for i, msg := range m.pending {
			if msg.ctx != ctx {
				continue
			}
			if src != AnySource && msg.src != src {
				continue
			}
			if tag != AnyTag && msg.tag != tag {
				continue
			}
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			m.mu.Unlock()
			return msg, nil
		}
		if m.dead != nil {
			err := m.dead
			m.mu.Unlock()
			return message{}, err
		}
		w := getWaiter()
		m.waiters = append(m.waiters, w)
		m.mu.Unlock()

		remain := time.Until(deadline)
		if remain <= 0 {
			return message{}, fmt.Errorf("mpi: recv timeout (possible deadlock) waiting for src=%d tag=%d ctx=%d", src, tag, ctx)
		}
		t := getTimer(remain)
		select {
		case <-w:
			putTimer(t)
			waiterPool.Put(w) // token consumed; channel is clean
		case <-t.C:
			timerPool.Put(t) // fired: C is drained, safe to recycle as-is
			waiterPool.Put(w)
			return message{}, fmt.Errorf("mpi: recv timeout (possible deadlock) waiting for src=%d tag=%d ctx=%d", src, tag, ctx)
		}
	}
}

// poison marks the mailbox dead and wakes every blocked receive. The first
// error sticks; later poisons are no-ops so the most specific failure (the
// one observed first) is what receives report.
func (m *mailbox) poison(err error) {
	m.mu.Lock()
	if m.dead == nil {
		m.dead = err
	}
	for _, w := range m.waiters {
		select {
		case w <- struct{}{}:
		default:
		}
	}
	m.waiters = m.waiters[:0]
	m.mu.Unlock()
}

// timerPool recycles deadlock-detection timers across blocking receives;
// every blocked take would otherwise allocate a fresh timer, a measurable
// per-message cost in tight compositing exchanges.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if v := timerPool.Get(); v != nil {
		t := v.(*time.Timer)
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// putTimer returns a timer that has NOT fired; it stops it and drains a
// concurrent fire so the next Reset starts from a clean channel.
func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// World owns one process's share of a communicator universe. For Run it is
// the whole world: every rank's mailbox lives in boxes. For a distributed
// world built with NewWorld, only the locally hosted rank's mailbox is
// non-nil and remote carries envelopes to the rest; a nil remote is the
// single pointer test that keeps the in-process send path at its
// pre-transport cost.
type World struct {
	size        int
	boxes       []*mailbox
	traffic     []trafficCounters
	recvTimeout time.Duration
	faults      FaultInjector
	remote      Transport
}

// Traffic is a snapshot of one rank's point-to-point odometers. Collectives
// are built from the same Send/Recv primitives, so their internal hops are
// counted too; tests and benchmarks use before/after deltas to compare the
// byte volume through a rank under different collective algorithms.
type Traffic struct {
	SentBytes int64
	RecvBytes int64
	SentMsgs  int64
	RecvMsgs  int64
}

// trafficCounters is the mutable, per-world-rank form of Traffic. Padded so
// adjacent ranks' counters do not share a cache line; each rank only ever
// bumps its own.
type trafficCounters struct {
	sentBytes atomic.Int64
	recvBytes atomic.Int64
	sentMsgs  atomic.Int64
	recvMsgs  atomic.Int64
	_         [4]int64
}

// TrafficStats returns the calling rank's cumulative traffic odometers.
func (c *Comm) TrafficStats() Traffic {
	t := &c.world.traffic[c.group[c.rank]]
	return Traffic{
		SentBytes: t.sentBytes.Load(),
		RecvBytes: t.recvBytes.Load(),
		SentMsgs:  t.sentMsgs.Load(),
		RecvMsgs:  t.recvMsgs.Load(),
	}
}

func countSent[T any](c *Comm, n int) {
	t := &c.world.traffic[c.group[c.rank]]
	t.sentBytes.Add(int64(n) * int64(sizeOf[T]()))
	t.sentMsgs.Add(1)
}

func countRecv[T any](c *Comm, n int) {
	t := &c.world.traffic[c.group[c.rank]]
	t.recvBytes.Add(int64(n) * int64(sizeOf[T]()))
	t.recvMsgs.Add(1)
}

// Option configures a World created by Run.
type Option func(*World)

// WithRecvTimeout overrides the deadlock-detection timeout for receives.
func WithRecvTimeout(d time.Duration) Option {
	return func(w *World) { w.recvTimeout = d }
}

// Comm is a communicator: a rank's handle onto a group of ranks.
// The zero value is not usable; Comms are obtained from Run and Split.
type Comm struct {
	world *World
	rank  int   // rank within this communicator
	size  int   // size of this communicator
	group []int // communicator rank -> world rank
	ctx   int   // context id isolating this communicator's traffic
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.size }

// WorldRank returns the caller's rank in the world communicator.
func (c *Comm) WorldRank() int { return c.group[c.rank] }

// Run executes f on n concurrent ranks and waits for all of them.
// Each rank receives a distinct *Comm with ranks 0..n-1. The returned error
// is the first error returned (or panic raised) by any rank.
func Run(n int, f func(c *Comm) error, opts ...Option) error {
	if n <= 0 {
		return fmt.Errorf("mpi: world size must be positive, got %d", n)
	}
	w := &World{size: n, boxes: make([]*mailbox, n), traffic: make([]trafficCounters, n), recvTimeout: DefaultRecvTimeout}
	for i := range w.boxes {
		w.boxes[i] = &mailbox{}
	}
	for _, o := range opts {
		o(w)
	}
	group := make([]int, n)
	for i := range group {
		group[i] = i
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v\n%s", rank, p, debug.Stack())
				}
			}()
			c := &Comm{world: w, rank: rank, size: n, group: group, ctx: 0}
			errs[rank] = f(c)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// send delivers a payload (already copied) to dest within this communicator.
func (c *Comm) send(dest, tag int, payload any) {
	if dest < 0 || dest >= c.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d (size %d)", dest, c.size))
	}
	if c.world.faults != nil {
		c.sendFaulty(dest, tag, payload)
		return
	}
	c.world.boxes[c.group[dest]].put(message{src: c.rank, tag: tag, ctx: c.ctx, payload: payload})
}

func (c *Comm) recv(src, tag int) (message, error) {
	if src != AnySource && (src < 0 || src >= c.size) {
		return message{}, fmt.Errorf("mpi: recv from invalid rank %d (size %d)", src, c.size)
	}
	return c.world.boxes[c.group[c.rank]].take(src, tag, c.ctx, c.world.recvTimeout)
}

// Send transmits a copy of data to dest with the given tag.
func Send[T any](c *Comm, dest, tag int, data []T) {
	countSent[T](c, len(data))
	if wd := c.remoteDst(dest); wd >= 0 {
		c.sendRemote(buildEnvelope(c, wd, tag, data))
		return
	}
	cp := make([]T, len(data))
	copy(cp, data)
	c.send(dest, tag, cp)
}

// SendOwned transmits data to dest without copying, transferring ownership
// of the slice to the receiver; the sender must not touch data after the
// call. Because ranks share one address space, this is the zero-copy fast
// path for pipelines that recycle message buffers through a process-wide
// pool: the sender drains a buffer from the pool, SendOwned hands it to the
// receiver, and the receiver returns it to the pool when done. Use Send when
// the sender needs to keep its buffer.
func SendOwned[T any](c *Comm, dest, tag int, data []T) {
	countSent[T](c, len(data))
	if wd := c.remoteDst(dest); wd >= 0 {
		c.sendRemote(buildEnvelope(c, wd, tag, data))
		return
	}
	c.send(dest, tag, data)
}

// SendRecvOwned is SendRecv with SendOwned's ownership transfer applied to
// the outgoing buffer. The received slice is owned by the caller.
func SendRecvOwned[T any](c *Comm, dest, sendTag int, data []T, src, recvTag int) ([]T, error) {
	SendOwned(c, dest, sendTag, data)
	got, _, err := Recv[T](c, src, recvTag)
	return got, err
}

// Recv blocks until a message with matching source and tag arrives and
// returns its payload together with the actual source rank.
// src may be AnySource and tag may be AnyTag.
func Recv[T any](c *Comm, src, tag int) ([]T, int, error) {
	msg, err := c.recv(src, tag)
	if err != nil {
		return nil, -1, err
	}
	if env, ok := msg.payload.(*Envelope); ok {
		data, derr := decodePayload[T](env)
		if derr != nil {
			return nil, msg.src, derr
		}
		countRecv[T](c, len(data))
		return data, msg.src, nil
	}
	data, ok := msg.payload.([]T)
	if !ok {
		return nil, msg.src, fmt.Errorf("mpi: recv type mismatch: message from rank %d tag %d holds %T", msg.src, msg.tag, msg.payload)
	}
	countRecv[T](c, len(data))
	return data, msg.src, nil
}

// SendRecv performs a simultaneous send and receive, as MPI_Sendrecv.
func SendRecv[T any](c *Comm, dest, sendTag int, data []T, src, recvTag int) ([]T, error) {
	Send(c, dest, sendTag, data)
	got, _, err := Recv[T](c, src, recvTag)
	return got, err
}

// Split partitions the communicator into disjoint sub-communicators, one per
// distinct color, as MPI_Comm_split. Ranks within a sub-communicator are
// ordered by (key, old rank). Every rank of c must call Split.
func (c *Comm) Split(color, key int) (*Comm, error) {
	type ck struct{ Color, Key, Rank int }
	mine := []ck{{color, key, c.rank}}
	all, err := Allgather(c, mine)
	if err != nil {
		return nil, err
	}
	// Deterministic new context id, derived identically on every rank — and,
	// because the inputs are the collectively gathered (color, key) table,
	// identically in every process of a distributed world: contexts form a
	// tree rooted at the world context 0, and the child communicator for the
	// i-th distinct color (sorted) of a parent with context p gets
	// p*(worldSize+1) + i + 1. Uniqueness is by induction on the tree: two
	// children of one parent differ in i; children of different parents
	// sharing a rank have parents sharing that rank, whose contexts differ,
	// and i+1 <= worldSize keeps the mapping injective. No counter, no
	// broadcast — the same Split call yields the same context on every
	// transport.
	colors := map[int]bool{}
	for _, e := range all {
		colors[e.Color] = true
	}
	sorted := sortedKeys(colors)
	ctxOf := map[int]int{}
	for i, col := range sorted {
		ctxOf[col] = c.ctx*(c.world.size+1) + i + 1
	}
	// Build my group: members with my color, sorted by (key, rank).
	var members []ck
	for _, e := range all {
		if e.Color == color {
			members = append(members, e)
		}
	}
	for i := 1; i < len(members); i++ {
		for j := i; j > 0; j-- {
			a, b := members[j-1], members[j]
			if b.Key < a.Key || (b.Key == a.Key && b.Rank < a.Rank) {
				members[j-1], members[j] = b, a
			} else {
				break
			}
		}
	}
	group := make([]int, len(members))
	myNew := -1
	for i, e := range members {
		group[i] = c.group[e.Rank]
		if e.Rank == c.rank {
			myNew = i
		}
	}
	return &Comm{world: c.world, rank: myNew, size: len(members), group: group, ctx: ctxOf[color]}, nil
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
