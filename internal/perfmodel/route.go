package perfmodel

import (
	"gosensei/internal/route"
)

// RoutePrior derives the route scheduler's per-backend prior estimates from
// the model, for a histogram-style analysis over p ranks with cellsPerRank
// cells of 8 bytes each. This is the paper's cost comparison folded into
// three numbers per route: what one step costs in critical-path seconds,
// wire bytes, and storage bytes before any observation has been made.
func RoutePrior(m *Model, p, cellsPerRank, bins int) [route.NumBackends]route.Estimate {
	bytesPerRank := int64(cellsPerRank) * 8
	totalBytes := bytesPerRank * int64(p)

	var prior [route.NumBackends]route.Estimate

	// In situ: the analysis runs inside the step; no bytes leave the node.
	prior[route.InSitu] = route.Estimate{
		Seconds: m.HistogramStepTime(p, cellsPerRank, bins),
	}

	// In transit: the step pays the advance handshake plus the data ship;
	// every rank's array crosses the staging fabric. The analysis itself
	// runs on the endpoint, off the simulation's critical path.
	prior[route.InTransit] = route.Estimate{
		Seconds:   m.ADIOSAdvanceTime(p) + m.ADIOSTransferTime(bytesPerRank),
		WireBytes: totalBytes,
	}

	// Post hoc: a file-per-process write now, analysis deferred to a replay.
	// The critical path pays one metadata op and the aggregate write; every
	// rank's block lands on storage.
	writeBW := m.M.IO.FilePerProcessBandwidth
	var writeSeconds float64
	if writeBW > 0 {
		writeSeconds = float64(totalBytes) / writeBW
	}
	prior[route.PostHoc] = route.Estimate{
		Seconds:      m.M.IO.MetadataOpSeconds + writeSeconds,
		StorageBytes: totalBytes,
	}

	return prior
}
