package perfmodel

import (
	"testing"

	"gosensei/internal/compositing"
	"gosensei/internal/machine"
)

func coriModel() *Model { return New(machine.Cori(), DefaultCalibration()) }

func TestCalibratePositive(t *testing.T) {
	c := Calibrate()
	if c.OscNsPerCellOsc <= 0 || c.HistNsPerCell <= 0 || c.AutoNsPerCellDelay <= 0 ||
		c.PNGNsPerPixel <= 0 || c.PNGNsPerPixelRaw <= 0 || c.SliceNsPerPixel <= 0 {
		t.Fatalf("non-positive calibration: %+v", c)
	}
	// Compression must cost more than no compression.
	if c.PNGNsPerPixel <= c.PNGNsPerPixelRaw {
		t.Fatalf("png compressed (%v) should exceed raw (%v)", c.PNGNsPerPixel, c.PNGNsPerPixelRaw)
	}
}

func TestCollectivesScaleLogarithmically(t *testing.T) {
	m := coriModel()
	t1k := m.AllreduceTime(1024, 8)
	t1m := m.AllreduceTime(1<<20, 8)
	// 2^10 -> 2^20 ranks doubles the rounds, not 1024x.
	if t1m > 3*t1k {
		t.Fatalf("allreduce not logarithmic: %v vs %v", t1k, t1m)
	}
	if m.ReduceTime(1, 8) != 0 || m.BarrierTime(1) != 0 {
		t.Fatal("single rank collectives should be free")
	}
}

func TestOscillatorWeakScalingFlat(t *testing.T) {
	// Weak scaling: per-rank cost is independent of p — the paper's
	// "nearly perfect weak-scaling runtime performance" for the simulation.
	m := coriModel()
	a := m.OscillatorStepTime(64*64*64, 3)
	if a <= 0 {
		t.Fatal("non-positive step time")
	}
	// Doubling cells doubles time.
	b := m.OscillatorStepTime(2*64*64*64, 3)
	if b < 1.9*a || b > 2.1*a {
		t.Fatalf("not linear in cells: %v vs %v", a, b)
	}
}

func TestHistogramCheaperThanAutocorrelation(t *testing.T) {
	m := coriModel()
	cells := 100 * 100 * 100
	h := m.HistogramStepTime(812, cells, 10)
	a := m.AutocorrelationStepTime(cells, 10)
	if h >= a {
		t.Fatalf("histogram (%v) should be cheaper than window-10 autocorrelation (%v)", h, a)
	}
}

func TestImageSizeDrivesSliceCost(t *testing.T) {
	// Table 2's surprise: in situ cost tracks image size, not concurrency.
	m := New(machine.Mira(), DefaultCalibration())
	small := m.SliceRenderStepTime(compositing.BinarySwap, 262144, 800, 200, 0.05)
	big262k := m.SliceRenderStepTime(compositing.BinarySwap, 262144, 2900, 725, 0.05)
	big1m := m.SliceRenderStepTime(compositing.BinarySwap, 1048576, 2900, 725, 0.05)
	if big262k < 3*small {
		t.Fatalf("bigger image should dominate: %v vs %v", big262k, small)
	}
	// Same image at 4x the ranks changes little (the paper's IS2 vs IS3).
	if big1m > 1.5*big262k || big1m < big262k/1.5 {
		t.Fatalf("rank count should matter little: %v vs %v", big1m, big262k)
	}
}

func TestPNGCompressionAblation(t *testing.T) {
	// §4.2.1: skipping compression cut 4.03s to 0.518s (~8x) on the toy
	// problem. Require at least a 3x separation from the model.
	m := coriModel()
	with := m.PNGTime(2900*725, false)
	without := m.PNGTime(2900*725, true)
	if with < 3*without {
		t.Fatalf("compression ablation too weak: %v vs %v", with, without)
	}
}

func TestLibsimInitGrowsLinearly(t *testing.T) {
	// Fig. 5: Libsim's per-rank config check cost ~3.5s at 45K cores.
	m := coriModel()
	t45k := m.LibsimInitTime(45440)
	if t45k < 1 || t45k > 6 {
		t.Fatalf("libsim init at 45K = %vs, want ~3.5s scale", t45k)
	}
	if got := m.LibsimInitTime(812); got >= t45k/10 {
		t.Fatalf("init should grow ~linearly: %v vs %v", got, t45k)
	}
	// Catalyst init stays small.
	if ci := m.CatalystInitTime(45440); ci > 0.5 {
		t.Fatalf("catalyst init too big: %v", ci)
	}
}

func TestCompositeCosts(t *testing.T) {
	m := coriModel()
	px := 1920 * 1080
	bs := m.CompositeTime(compositing.BinarySwap, 45440, px)
	ds := m.CompositeTime(compositing.DirectSend, 45440, px)
	if bs <= 0 || ds <= 0 {
		t.Fatal("non-positive composite cost")
	}
	// Direct send ships full images each round; binary swap halves them.
	if ds <= bs {
		t.Fatalf("direct send (%v) should cost more than binary swap (%v)", ds, bs)
	}
	if m.CompositeTime(compositing.BinarySwap, 1, px) != 0 {
		t.Fatal("single rank compositing should be free")
	}
}

func TestFlexPathEndpointInitCoriVsTitan(t *testing.T) {
	// §4.1.4: Titan's reader init was an order of magnitude lower than Cori.
	cori := New(machine.Cori(), DefaultCalibration())
	titan := New(machine.Titan(), DefaultCalibration())
	c := cori.FlexPathEndpointInitTime(812)
	ti := titan.FlexPathEndpointInitTime(812)
	if c < 8*ti {
		t.Fatalf("cori init %v should be ~10x titan %v", c, ti)
	}
}

func TestADIOSTransferIncludesCopy(t *testing.T) {
	m := coriModel()
	small := m.ADIOSTransferTime(1 << 10)
	big := m.ADIOSTransferTime(64 << 20)
	if big <= small {
		t.Fatal("transfer should grow with payload")
	}
}

func TestAutocorrelationFinalizeGrowsWithRanks(t *testing.T) {
	m := coriModel()
	small := m.AutocorrelationFinalizeTime(812, 10, 3)
	large := m.AutocorrelationFinalizeTime(45440, 10, 3)
	if large <= small {
		t.Fatal("finalize gather should grow with rank count")
	}
}
