package perfmodel

import (
	"testing"

	"gosensei/internal/machine"
	"gosensei/internal/route"
)

// TestCalibrateGuardedUnderGoTest pins the tier-1 determinism contract:
// inside a `go test` binary Calibrate must return DefaultCalibration without
// measuring anything, and the measurement counter must stay zero no matter
// how many times it is called.
func TestCalibrateGuardedUnderGoTest(t *testing.T) {
	if !noCalibrate() {
		t.Fatal("noCalibrate() must be true inside go test")
	}
	before := Calibrations()
	for i := 0; i < 3; i++ {
		if got, want := Calibrate(), DefaultCalibration(); got != want {
			t.Fatalf("Calibrate under go test = %+v, want DefaultCalibration %+v", got, want)
		}
	}
	if got := Calibrations(); got != before || got != 0 {
		t.Fatalf("Calibrations = %d, want 0 (calibration ran under go test)", got)
	}
}

func TestNoCalibrateEnvGuard(t *testing.T) {
	t.Setenv("GOSENSEI_NO_CALIBRATE", "1")
	if !noCalibrate() {
		t.Fatal("GOSENSEI_NO_CALIBRATE must disable calibration")
	}
}

func TestRoutePriorShape(t *testing.T) {
	m := New(machine.Cori(), DefaultCalibration())
	const p, cells, bins = 16, 64 * 64 * 64, 32
	prior := RoutePrior(m, p, cells, bins)

	total := int64(p) * int64(cells) * 8
	is := prior[route.InSitu]
	it := prior[route.InTransit]
	ph := prior[route.PostHoc]

	if is.Seconds <= 0 || it.Seconds <= 0 || ph.Seconds <= 0 {
		t.Fatalf("non-positive prior seconds: %+v", prior)
	}
	if is.WireBytes != 0 || is.StorageBytes != 0 {
		t.Fatalf("in situ prior must move no bytes: %+v", is)
	}
	if it.WireBytes != total || it.StorageBytes != 0 {
		t.Fatalf("in transit prior wire bytes = %d, want %d: %+v", it.WireBytes, total, it)
	}
	if ph.StorageBytes != total || ph.WireBytes != 0 {
		t.Fatalf("post hoc prior storage bytes = %d, want %d: %+v", ph.StorageBytes, total, ph)
	}
	// The prior is deterministic: two computations are identical.
	if prior != RoutePrior(m, p, cells, bins) {
		t.Fatal("RoutePrior not deterministic")
	}
}
