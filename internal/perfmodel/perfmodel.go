// Package perfmodel predicts at-scale costs for the experiment harnesses.
//
// The reproduction runs every code path for real at goroutine scale (tens to
// hundreds of ranks). The paper's headline numbers, however, come from 812
// to 1,048,576 MPI ranks — far beyond a single process. This package closes
// the gap with a first-order analytic model:
//
//   - compute terms come from *measured* per-element kernel costs
//     (Calibrate actually times the kernels in this process) scaled by the
//     target machine's per-core speed;
//   - communication terms come from the collective algorithms' round counts
//     (binomial trees, binary swap) and the machine's latency/bandwidth;
//   - I/O terms come from the iosim filesystem model.
//
// Every modeled table row in the experiment output is labeled "model"; rows
// labeled "real" were executed.
package perfmodel

import (
	"bytes"
	"image/color"
	"image/png"
	"math"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"gosensei/internal/compositing"
	"gosensei/internal/machine"
	"gosensei/internal/oscillator"
	"gosensei/internal/render"
)

// Calibration holds measured per-element kernel costs on the *local* host,
// in nanoseconds.
type Calibration struct {
	// OscNsPerCellOsc is the oscillator evaluation cost per cell per
	// oscillator.
	OscNsPerCellOsc float64
	// HistNsPerCell is the histogram binning cost per cell.
	HistNsPerCell float64
	// AutoNsPerCellDelay is the autocorrelation update cost per cell per
	// active delay.
	AutoNsPerCellDelay float64
	// SliceNsPerPixel is the slice resampling cost per framebuffer pixel.
	SliceNsPerPixel float64
	// PNGNsPerPixel is the PNG encode cost per pixel at default compression.
	PNGNsPerPixel float64
	// PNGNsPerPixelRaw is the PNG encode cost per pixel with compression off.
	PNGNsPerPixelRaw float64
	// LocalGFLOPS estimates this host's sustained per-core rate, anchoring
	// the cross-machine scale factor.
	LocalGFLOPS float64
}

// DefaultCalibration returns conservative constants for use when measuring
// is undesirable (e.g. deterministic tests).
func DefaultCalibration() Calibration {
	return Calibration{
		OscNsPerCellOsc:    25,
		HistNsPerCell:      4,
		AutoNsPerCellDelay: 2.5,
		SliceNsPerPixel:    30,
		PNGNsPerPixel:      120,
		PNGNsPerPixelRaw:   15,
		LocalGFLOPS:        8,
	}
}

// calibrations counts how many times Calibrate actually measured (as opposed
// to returning DefaultCalibration via the guard).
var calibrations atomic.Int64

// Calibrations returns how many times Calibrate has measured kernels in this
// process. Tier-1 tests assert it stays zero: deterministic tests must see
// only DefaultCalibration.
func Calibrations() int64 { return calibrations.Load() }

// noCalibrate reports whether measurement is disabled: explicitly via the
// GOSENSEI_NO_CALIBRATE environment variable, or implicitly because the
// process is a `go test` binary. Previously deterministic tests avoided
// Calibrate only by convention; the guard makes wall-clock-seeded constants
// unreachable from tier 1.
func noCalibrate() bool {
	return os.Getenv("GOSENSEI_NO_CALIBRATE") != "" || testing.Testing()
}

// Calibrate measures the kernel costs on this host. It runs for a few
// milliseconds. Under `go test` or GOSENSEI_NO_CALIBRATE it returns
// DefaultCalibration without measuring, so modeled numbers in tests never
// depend on host timing.
func Calibrate() Calibration {
	if noCalibrate() {
		return DefaultCalibration()
	}
	calibrations.Add(1)
	c := DefaultCalibration()

	// Oscillator evaluation.
	osc := oscillator.DefaultDeck(32)
	n := 16
	cells := n * n * n
	start := time.Now()
	sink := 0.0
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				for _, o := range osc {
					sink += o.Evaluate(float64(i), float64(j), float64(k), 0.5)
				}
			}
		}
	}
	c.OscNsPerCellOsc = float64(time.Since(start).Nanoseconds()) / float64(cells*len(osc))

	// Histogram binning.
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = sink + float64(i%1000)
	}
	binCounts := make([]int64, 32)
	start = time.Now()
	w := 1000.0 / 32
	for _, v := range vals {
		b := int(v / w)
		if b < 0 {
			b = 0
		}
		if b > 31 {
			b = 31
		}
		binCounts[b]++
	}
	c.HistNsPerCell = float64(time.Since(start).Nanoseconds()) / float64(len(vals))

	// Autocorrelation update (one delay).
	hist := make([]float64, len(vals))
	corr := make([]float64, len(vals))
	start = time.Now()
	for i := range vals {
		corr[i] += vals[i] * hist[i]
	}
	c.AutoNsPerCellDelay = float64(time.Since(start).Nanoseconds()) / float64(len(vals))

	// PNG encode, both compression levels, on a structured test card.
	fb := render.NewFramebuffer(256, 256)
	for y := 0; y < 256; y++ {
		for x := 0; x < 256; x++ {
			fb.Set(x, y, color.RGBA{uint8(x), uint8(y), uint8(x ^ y), 255}, 0)
		}
	}
	var buf bytes.Buffer
	start = time.Now()
	_, _ = render.WritePNG(&buf, fb, render.PNGOptions{Compression: png.DefaultCompression})
	c.PNGNsPerPixel = float64(time.Since(start).Nanoseconds()) / float64(fb.Pixels())
	buf.Reset()
	start = time.Now()
	_, _ = render.WritePNG(&buf, fb, render.PNGOptions{Compression: png.NoCompression})
	c.PNGNsPerPixelRaw = float64(time.Since(start).Nanoseconds()) / float64(fb.Pixels())

	// Slice resampling: approximate with the measured histogram-scale cost
	// of the arithmetic per pixel (a handful of flops plus a cell lookup).
	c.SliceNsPerPixel = 6 * c.HistNsPerCell

	return c
}

// Model predicts costs on one target machine using a local calibration.
type Model struct {
	M machine.Machine
	C Calibration
}

// New builds a model for a machine with the given calibration.
func New(m machine.Machine, c Calibration) *Model {
	return &Model{M: m, C: c}
}

// scale converts a locally measured kernel time to the target machine.
func (m *Model) scale() float64 {
	return m.C.LocalGFLOPS / m.M.CoreGFLOPS
}

// rounds returns ceil(log2 p).
func rounds(p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p)))
}

// PointToPoint returns the cost of moving one message of the given size.
func (m *Model) PointToPoint(bytes int64) float64 {
	return m.M.NetLatencySeconds + float64(bytes)/m.M.NetBandwidth
}

// ReduceTime predicts a binomial-tree reduction of payload bytes over p ranks.
func (m *Model) ReduceTime(p int, bytes int64) float64 {
	return rounds(p) * m.PointToPoint(bytes)
}

// BcastTime predicts a binomial-tree broadcast.
func (m *Model) BcastTime(p int, bytes int64) float64 {
	return rounds(p) * m.PointToPoint(bytes)
}

// AllreduceTime predicts reduce + broadcast.
func (m *Model) AllreduceTime(p int, bytes int64) float64 {
	return m.ReduceTime(p, bytes) + m.BcastTime(p, bytes)
}

// BarrierTime predicts a barrier (reduce + broadcast of an empty token).
func (m *Model) BarrierTime(p int) float64 {
	return 2 * rounds(p) * m.M.NetLatencySeconds
}

// OscillatorStepTime predicts one miniapp step: cells × oscillators × the
// measured evaluation cost.
func (m *Model) OscillatorStepTime(cellsPerRank, nOscillators int) float64 {
	return float64(cellsPerRank) * float64(nOscillators) * m.C.OscNsPerCellOsc * 1e-9 * m.scale()
}

// HistogramStepTime predicts one histogram execution: local binning plus two
// scalar allreduces plus the bin reduction.
func (m *Model) HistogramStepTime(p, cellsPerRank, bins int) float64 {
	local := float64(cellsPerRank) * m.C.HistNsPerCell * 1e-9 * m.scale() * 2 // min/max scan + binning
	comm := 2*m.AllreduceTime(p, 8) + m.ReduceTime(p, int64(bins)*8)
	return local + comm
}

// AutocorrelationStepTime predicts one autocorrelation update with the given
// window (all delays active in steady state).
func (m *Model) AutocorrelationStepTime(cellsPerRank, window int) float64 {
	return float64(cellsPerRank) * float64(window) * m.C.AutoNsPerCellDelay * 1e-9 * m.scale()
}

// AutocorrelationFinalizeTime predicts the end-of-run top-k reduction: a
// gather of k tuples per delay per rank to the root, which the root merges.
// This is the visible finalize cost in the paper's Fig. 5.
func (m *Model) AutocorrelationFinalizeTime(p, window, k int) float64 {
	tupleBytes := int64(24) // value + rank + cell
	perRank := int64(window*k) * tupleBytes
	// Gather to root: root receives p-1 messages.
	comm := float64(p-1)*m.M.NetLatencySeconds + float64(perRank)*float64(p-1)/m.M.NetBandwidth
	merge := float64(p*window*k) * 50e-9 * m.scale()
	return comm + merge
}

// SliceExtractTime predicts the per-rank slice resample for ranks whose
// domain intersects the plane.
func (m *Model) SliceExtractTime(pixels int) float64 {
	return float64(pixels) * m.C.SliceNsPerPixel * 1e-9 * m.scale()
}

// CompositeTime predicts image compositing over p ranks.
func (m *Model) CompositeTime(alg compositing.Algorithm, p, pixels int) float64 {
	if p <= 1 {
		return 0
	}
	const bytesPerPixel = 8 // RGBA8 + float32 depth
	img := float64(pixels) * bytesPerPixel
	r := rounds(p)
	switch alg {
	case compositing.BinarySwap:
		// Exchanged region halves every round: ~2×(img/2 + img/4 + ...)
		// then the stripe gather assembles one full image at the root.
		swap := r*m.M.NetLatencySeconds + 2*img*(1-math.Pow(0.5, r))/m.M.NetBandwidth
		// The stripe gather is itself tree-structured (a gatherv), so its
		// latency term is logarithmic; one full image crosses the root link.
		gather := r*m.M.NetLatencySeconds + img/m.M.NetBandwidth
		return swap + gather
	case compositing.DirectSend:
		// Binomial tree: log2(p) rounds of full-image messages plus the
		// merge arithmetic at each level.
		merge := float64(pixels) * 2e-9 * m.scale()
		return r * (m.PointToPoint(int64(img)) + merge)
	}
	return 0
}

// PNGTime predicts the serial PNG encode on rank 0 — the bottleneck the
// paper's PHASTA study isolates.
func (m *Model) PNGTime(pixels int, skipCompression bool) float64 {
	ns := m.C.PNGNsPerPixel
	if skipCompression {
		ns = m.C.PNGNsPerPixelRaw
	}
	slow := m.M.ScalarSlowdown
	if slow <= 0 {
		slow = 1
	}
	return float64(pixels) * ns * 1e-9 * m.scale() * slow
}

// SliceRenderStepTime predicts a full Catalyst/Libsim-style slice step:
// extraction on the intersecting ranks, compositing, and the PNG write.
// intersectFrac is the fraction of ranks whose domain meets the plane.
func (m *Model) SliceRenderStepTime(alg compositing.Algorithm, p, width, height int, intersectFrac float64) float64 {
	pixels := width * height
	extract := m.SliceExtractTime(int(float64(pixels) * clamp01(intersectFrac)))
	return extract + m.CompositeTime(alg, p, pixels) + m.PNGTime(pixels, false)
}

// LibsimInitTime predicts Libsim's one-time initialization: the per-rank
// configuration-file checks hit the metadata server once per rank, which
// serializes — the paper's ~3.5 s at 45K cores ("can be removed with very
// little effort", but present in the measured release).
func (m *Model) LibsimInitTime(p int) float64 {
	return float64(p) * m.M.IO.MetadataOpSeconds
}

// CatalystInitTime predicts Catalyst's one-time initialization: pipeline
// construction plus one small broadcast.
func (m *Model) CatalystInitTime(p int) float64 {
	return 5e-3*m.scale() + m.BcastTime(p, 4<<10)
}

// ADIOSAdvanceTime predicts the adios::advance metadata exchange between the
// writer group and the endpoint group.
func (m *Model) ADIOSAdvanceTime(p int) float64 {
	return 2*rounds(p)*m.M.NetLatencySeconds + 2e-4
}

// ADIOSTransferTime predicts the adios::analysis data ship for bytes of
// payload per rank: FlexPath is not zero-copy, so a buffer copy is included.
func (m *Model) ADIOSTransferTime(bytesPerRank int64) float64 {
	copyCost := float64(bytesPerRank) * 0.15e-9 * m.scale()
	return copyCost + m.PointToPoint(bytesPerRank)
}

// FlexPathEndpointInitTime predicts the endpoint/reader initialization: on
// Cori the paper observed an order of magnitude worse than Titan due to OS
// jitter from hyperthread co-allocation plus interconnect sharing; modeled
// as a per-rank connection handshake serialized through the reader.
func (m *Model) FlexPathEndpointInitTime(p int) float64 {
	perConn := 1.5e-4
	if m.M.Name == "titan" {
		perConn = 1.5e-5
	}
	return float64(p) * perConn
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
