package core

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"gosensei/internal/mpi"
	"gosensei/internal/route"
	"gosensei/internal/route/routetest"
)

// failingAnalysis errors on the steps in failAt.
type failingAnalysis struct {
	recordingAnalysis
	failAt map[int]bool
}

func (f *failingAnalysis) Execute(d DataAdaptor) (bool, error) {
	if f.failAt[d.TimeStep()] {
		return false, errors.New("backend down")
	}
	return f.recordingAnalysis.Execute(d)
}

// scripted builds a ScriptMeter over flat per-backend costs.
func scripted(rank int, costs [route.NumBackends]route.Estimate) *routetest.ScriptMeter {
	return &routetest.ScriptMeter{
		Rank:  rank,
		Costs: func(_ int, b route.Backend) route.Estimate { return costs[b] },
	}
}

func TestRoutedDispatchesPerDecision(t *testing.T) {
	// Post hoc is predicted far cheaper, so the first decision routes there
	// and the steady scripted costs keep it there.
	prior := [route.NumBackends]route.Estimate{
		route.InSitu:  {Seconds: 1.0},
		route.PostHoc: {Seconds: 0.1},
	}
	r := route.New(route.Config{
		Eligible: []route.Backend{route.InSitu, route.PostHoc},
		Start:    route.InSitu,
	}, prior)
	rt := NewRouted(nil, r, scripted(0, prior))
	insitu := &recordingAnalysis{}
	posthoc := &recordingAnalysis{}
	rt.SetRoute(route.InSitu, insitu)
	rt.SetRoute(route.PostHoc, posthoc)

	d := newFakeAdaptor()
	for step := 0; step < 5; step++ {
		d.SetStep(step, 0)
		if cont, err := rt.Execute(d); err != nil || !cont {
			t.Fatalf("step %d: cont=%v err=%v", step, cont, err)
		}
	}
	if len(insitu.executed) != 0 {
		t.Fatalf("in situ ran %v despite cheaper post hoc", insitu.executed)
	}
	if want := []int{0, 1, 2, 3, 4}; !reflect.DeepEqual(posthoc.executed, want) {
		t.Fatalf("post hoc executed %v, want %v", posthoc.executed, want)
	}
	if r.Switches() != 0 {
		t.Fatalf("steady costs produced %d switches:\n%s", r.Switches(), route.FormatDecisions(r.Decisions()))
	}
}

func TestRoutedFallsBackAndQuarantines(t *testing.T) {
	// In transit is predicted cheapest but its adaptor dies at step 2: the
	// step must be re-run on the in situ fallback (no analysis lost), the
	// failure quarantines the route, and the next decision is a forced
	// switch.
	prior := [route.NumBackends]route.Estimate{
		route.InSitu:    {Seconds: 1.0},
		route.InTransit: {Seconds: 0.1},
	}
	r := route.New(route.Config{
		Eligible:      []route.Backend{route.InSitu, route.InTransit},
		Start:         route.InTransit,
		ProbeInterval: 100,
	}, prior)
	rt := NewRouted(nil, r, scripted(0, prior))
	insitu := &recordingAnalysis{}
	intransit := &failingAnalysis{failAt: map[int]bool{2: true}}
	rt.SetRoute(route.InSitu, insitu)
	rt.SetRoute(route.InTransit, intransit)

	d := newFakeAdaptor()
	for step := 0; step < 6; step++ {
		d.SetStep(step, 0)
		if cont, err := rt.Execute(d); err != nil || !cont {
			t.Fatalf("step %d: cont=%v err=%v", step, cont, err)
		}
	}
	// Step 2 fell back in situ; steps 3+ are forced onto in situ by the
	// quarantine. No step is missing from the union.
	if want := []int{2, 3, 4, 5}; !reflect.DeepEqual(insitu.executed, want) {
		t.Fatalf("in situ executed %v, want %v\n%s", insitu.executed, want, route.FormatDecisions(r.Decisions()))
	}
	if want := []int{0, 1}; !reflect.DeepEqual(intransit.recordingAnalysis.executed, want) {
		t.Fatalf("in transit executed %v, want %v", intransit.recordingAnalysis.executed, want)
	}
	var forced *route.Decision
	for i := range r.Decisions() {
		if d := r.Decisions()[i]; d.Switched {
			forced = &r.Decisions()[i]
		}
	}
	if forced == nil || !forced.Forced || forced.Step != 3 || forced.Reason != "failed" {
		t.Fatalf("expected forced failover at step 3, got %+v\n%s", forced, route.FormatDecisions(r.Decisions()))
	}
}

func TestRoutedErrorsWhenFallbackMissing(t *testing.T) {
	prior := [route.NumBackends]route.Estimate{route.InTransit: {Seconds: 0.1}}
	r := route.New(route.Config{Eligible: []route.Backend{route.InTransit}, Start: route.InTransit}, prior)
	rt := NewRouted(nil, r, scripted(0, prior))
	rt.SetRoute(route.InTransit, &failingAnalysis{failAt: map[int]bool{0: true}})
	d := newFakeAdaptor()
	d.SetStep(0, 0)
	if _, err := rt.Execute(d); err == nil {
		t.Fatal("expected an error with no fallback route")
	}
}

func TestRoutedFinalizesEveryRoute(t *testing.T) {
	// An in transit writer must deliver its EOS even if the router never
	// picked it, so Finalize must reach every registered route.
	prior := [route.NumBackends]route.Estimate{route.InSitu: {Seconds: 0.1}}
	r := route.New(route.Config{Eligible: []route.Backend{route.InSitu}}, prior)
	rt := NewRouted(nil, r, scripted(0, prior))
	all := [route.NumBackends]*recordingAnalysis{{}, {}, {}}
	for b := route.Backend(0); b < route.NumBackends; b++ {
		rt.SetRoute(b, all[b])
	}
	if err := rt.Finalize(); err != nil {
		t.Fatal(err)
	}
	for b, a := range all {
		if !a.finalized {
			t.Errorf("route %v not finalized", route.Backend(b))
		}
	}
}

// TestRoutedMultiRankConsistency runs the routed dispatcher across 4 ranks:
// rank 0 decides and broadcasts, so every rank must execute the identical
// backend sequence even when only rank 0 sees the scripted byte costs — and
// a mid-run cost shift must carry all ranks through the same forced switch.
func TestRoutedMultiRankConsistency(t *testing.T) {
	const ranks, steps, shift = 4, 10, 5
	phaseA := [route.NumBackends]route.Estimate{
		route.InSitu:    {Seconds: 0.5},
		route.InTransit: {Seconds: 1.0, WireBytes: 1 << 20},
	}
	phaseB := [route.NumBackends]route.Estimate{
		route.InSitu:    {Seconds: 3.0},
		route.InTransit: {Seconds: 1.0, WireBytes: 1 << 20},
	}
	costs := func(step int, b route.Backend) route.Estimate {
		if step < shift {
			return phaseA[b]
		}
		return phaseB[b]
	}

	var mu sync.Mutex
	ran := make([][]string, ranks)
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		var r *route.Router
		if c.Rank() == 0 {
			r = route.New(route.Config{
				Budget:   route.Budget{MaxStepSeconds: 2.0},
				Eligible: []route.Backend{route.InSitu, route.InTransit},
				Start:    route.InSitu,
				Alpha:    1, // track the shift immediately
			}, phaseA)
		}
		rt := NewRouted(c, r, &routetest.ScriptMeter{Rank: c.Rank(), Costs: costs})
		record := func(b route.Backend) AnalysisAdaptor {
			return funcAnalysis(func(d DataAdaptor) (bool, error) {
				mu.Lock()
				ran[c.Rank()] = append(ran[c.Rank()], fmt.Sprintf("%d:%v", d.TimeStep(), b))
				mu.Unlock()
				return true, nil
			})
		}
		rt.SetRoute(route.InSitu, record(route.InSitu))
		rt.SetRoute(route.InTransit, record(route.InTransit))

		d := newFakeAdaptor()
		for step := 0; step < steps; step++ {
			d.SetStep(step, 0)
			if cont, err := rt.Execute(d); err != nil || !cont {
				return fmt.Errorf("rank %d step %d: cont=%v err=%v", c.Rank(), step, cont, err)
			}
		}
		if c.Rank() == 0 {
			if r.Switches() < 1 {
				return fmt.Errorf("no switch after the shift:\n%s", route.FormatDecisions(r.Decisions()))
			}
			if got := r.Current(); got != route.InTransit {
				return fmt.Errorf("final backend %v, want intransit", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rk := 1; rk < ranks; rk++ {
		if !reflect.DeepEqual(ran[rk], ran[0]) {
			t.Fatalf("rank %d diverged from rank 0:\nrank0: %v\nrank%d: %v", rk, ran[0], rk, ran[rk])
		}
	}
}

// funcAnalysis adapts a function to AnalysisAdaptor.
type funcAnalysis func(DataAdaptor) (bool, error)

func (f funcAnalysis) Execute(d DataAdaptor) (bool, error) { return f(d) }
func (f funcAnalysis) Finalize() error                     { return nil }
