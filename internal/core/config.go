package core

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
)

// Env is the per-rank environment handed to analysis factories: the
// communicator and the rank's instrumentation sinks.
type Env struct {
	Comm     *mpi.Comm
	Registry *metrics.Registry
	Memory   *metrics.Tracker
}

// Factory builds an analysis adaptor from XML attributes. Factories are
// registered by the packages implementing analyses and infrastructures
// (histogram, autocorrelation, catalyst, libsim, adios, glean) from their
// init functions, mirroring how SENSEI's ConfigurableAnalysis dispatches on
// the "type" attribute.
type Factory func(attrs Attrs, env *Env) (AnalysisAdaptor, error)

var (
	factoryMu sync.RWMutex
	factories = map[string]Factory{}
)

// RegisterFactory makes a factory available under the given analysis type.
// Registering a duplicate type panics: it is always a programming error.
func RegisterFactory(typ string, f Factory) {
	factoryMu.Lock()
	defer factoryMu.Unlock()
	if _, dup := factories[typ]; dup {
		panic(fmt.Sprintf("core: duplicate analysis factory %q", typ))
	}
	factories[typ] = f
}

// FactoryTypes lists the registered analysis types, sorted.
func FactoryTypes() []string {
	factoryMu.RLock()
	defer factoryMu.RUnlock()
	out := make([]string, 0, len(factories))
	for t := range factories {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func lookupFactory(typ string) (Factory, bool) {
	factoryMu.RLock()
	defer factoryMu.RUnlock()
	f, ok := factories[typ]
	return f, ok
}

// Attrs holds one analysis element's XML attributes.
type Attrs map[string]string

// String returns the attribute value or the default if absent.
func (a Attrs) String(key, def string) string {
	if v, ok := a[key]; ok {
		return v
	}
	return def
}

// Int returns the attribute parsed as an int or the default if absent.
func (a Attrs) Int(key string, def int) (int, error) {
	v, ok := a[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("attribute %q: %w", key, err)
	}
	return n, nil
}

// Float returns the attribute parsed as a float64 or the default if absent.
func (a Attrs) Float(key string, def float64) (float64, error) {
	v, ok := a[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("attribute %q: %w", key, err)
	}
	return f, nil
}

// Bool returns the attribute parsed as a boolean ("1", "true", "yes" are
// true) or the default if absent.
func (a Attrs) Bool(key string, def bool) bool {
	v, ok := a[key]
	if !ok {
		return def
	}
	switch strings.ToLower(v) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}

// xmlConfig mirrors the SENSEI configurable-analysis XML schema:
//
//	<sensei>
//	  <analysis type="histogram" array="data" association="cell" bins="10"/>
//	  <analysis type="catalyst" image-width="1920" image-height="1080"/>
//	</sensei>
type xmlConfig struct {
	XMLName  xml.Name      `xml:"sensei"`
	Analyses []xmlAnalysis `xml:"analysis"`
}

type xmlAnalysis struct {
	Attrs []xml.Attr `xml:",any,attr"`
}

// ConfigureFromXML parses a SENSEI configuration document and registers the
// described analyses on the bridge. Analyses with enabled="0" are skipped.
// Each analysis is timed under its type name (plus an optional name
// attribute for disambiguation).
func ConfigureFromXML(b *Bridge, doc []byte) error {
	var cfg xmlConfig
	if err := xml.Unmarshal(doc, &cfg); err != nil {
		return fmt.Errorf("core: parse sensei config: %w", err)
	}
	env := &Env{Comm: b.Comm, Registry: b.Registry, Memory: b.Memory}
	for i, an := range cfg.Analyses {
		attrs := Attrs{}
		for _, a := range an.Attrs {
			attrs[a.Name.Local] = a.Value
		}
		typ := attrs.String("type", "")
		if typ == "" {
			return fmt.Errorf("core: analysis element %d missing type attribute", i)
		}
		if !attrs.Bool("enabled", true) {
			continue
		}
		f, ok := lookupFactory(typ)
		if !ok {
			return fmt.Errorf("core: unknown analysis type %q (registered: %s)", typ, strings.Join(FactoryTypes(), ", "))
		}
		a, err := f(attrs, env)
		if err != nil {
			return fmt.Errorf("core: build analysis %q: %w", typ, err)
		}
		label := typ
		if n := attrs.String("name", ""); n != "" {
			label = typ + ":" + n
		}
		b.AddAnalysis(label, a)
	}
	return nil
}
