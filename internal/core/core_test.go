package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"gosensei/internal/array"
	"gosensei/internal/grid"
	"gosensei/internal/metrics"
)

// fakeAdaptor is a minimal DataAdaptor over a 2x2x2 image grid.
type fakeAdaptor struct {
	BaseDataAdaptor
	data     []float64
	released int
	meshErr  error
}

func newFakeAdaptor() *fakeAdaptor {
	return &fakeAdaptor{data: []float64{1, 2, 3, 4, 5, 6, 7, 8}}
}

func (f *fakeAdaptor) Mesh(structureOnly bool) (grid.Dataset, error) {
	if f.meshErr != nil {
		return nil, f.meshErr
	}
	return grid.NewImageData(grid.NewExtent3D(2, 2, 2)), nil
}

func (f *fakeAdaptor) AddArray(mesh grid.Dataset, assoc grid.Association, name string) error {
	if name != "data" {
		return fmt.Errorf("no array %q", name)
	}
	mesh.Attributes(assoc).Add(array.WrapAOS(name, 1, f.data))
	return nil
}

func (f *fakeAdaptor) ArrayNames(assoc grid.Association) ([]string, error) {
	return []string{"data"}, nil
}

func (f *fakeAdaptor) ReleaseData() error { f.released++; return nil }

// recordingAnalysis records Execute/Finalize calls.
type recordingAnalysis struct {
	executed  []int
	finalized bool
	stopAt    int
	execErr   error
}

func (r *recordingAnalysis) Execute(d DataAdaptor) (bool, error) {
	r.executed = append(r.executed, d.TimeStep())
	if r.execErr != nil {
		return true, r.execErr
	}
	if r.stopAt > 0 && d.TimeStep() >= r.stopAt {
		return false, nil
	}
	return true, nil
}

func (r *recordingAnalysis) Finalize() error { r.finalized = true; return nil }

func TestBridgeExecutesAllAnalyses(t *testing.T) {
	b := NewBridge(nil, nil, nil)
	a1 := &recordingAnalysis{}
	a2 := &recordingAnalysis{}
	b.AddAnalysis("one", a1)
	b.AddAnalysis("two", a2)
	d := newFakeAdaptor()
	for step := 0; step < 3; step++ {
		d.SetStep(step, float64(step)*0.1)
		cont, err := b.Execute(d)
		if err != nil || !cont {
			t.Fatalf("step %d: cont=%v err=%v", step, cont, err)
		}
	}
	if len(a1.executed) != 3 || len(a2.executed) != 3 {
		t.Fatalf("executions: %v %v", a1.executed, a2.executed)
	}
	if d.released != 3 {
		t.Fatalf("ReleaseData called %d times", d.released)
	}
	if b.AnalysisCount() != 2 {
		t.Fatalf("count=%d", b.AnalysisCount())
	}
}

func TestBridgeTimingEvents(t *testing.T) {
	b := NewBridge(nil, nil, nil)
	b.AddAnalysis("hist", &recordingAnalysis{})
	d := newFakeAdaptor()
	d.SetStep(5, 0.5)
	if _, err := b.Execute(d); err != nil {
		t.Fatal(err)
	}
	evs := b.Registry.EventsNamed("analysis::hist")
	if len(evs) != 1 || evs[0].Step != 5 {
		t.Fatalf("events=%v", evs)
	}
	if len(b.Registry.EventsNamed("sensei::execute-step")) != 1 {
		t.Fatal("missing execute-step event")
	}
}

func TestBridgeStopRequest(t *testing.T) {
	b := NewBridge(nil, nil, nil)
	b.AddAnalysis("stopper", &recordingAnalysis{stopAt: 2})
	d := newFakeAdaptor()
	d.SetStep(2, 0.2)
	cont, err := b.Execute(d)
	if err != nil {
		t.Fatal(err)
	}
	if cont || !b.Stopped() {
		t.Fatal("stop not propagated")
	}
}

func TestBridgeErrorWrapped(t *testing.T) {
	b := NewBridge(nil, nil, nil)
	sentinel := errors.New("kaput")
	b.AddAnalysis("bad", &recordingAnalysis{execErr: sentinel})
	ok := &recordingAnalysis{}
	b.AddAnalysis("good", ok)
	d := newFakeAdaptor()
	d.SetStep(1, 0.1)
	_, err := b.Execute(d)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err=%v", err)
	}
	// Later analyses still ran.
	if len(ok.executed) != 1 {
		t.Fatal("subsequent analysis skipped after error")
	}
}

func TestBridgeFinalize(t *testing.T) {
	b := NewBridge(nil, nil, nil)
	a := &recordingAnalysis{}
	b.AddAnalysis("a", a)
	if err := b.Finalize(); err != nil {
		t.Fatal(err)
	}
	if !a.finalized {
		t.Fatal("finalize not called")
	}
	if b.Registry.Timer("sensei::finalize").Count() != 1 {
		t.Fatal("finalize not timed")
	}
}

func TestFetchArray(t *testing.T) {
	d := newFakeAdaptor()
	mesh, err := FetchArray(d, grid.CellData, "data")
	if err != nil {
		t.Fatal(err)
	}
	a := mesh.Attributes(grid.CellData).Get("data")
	if a == nil || a.Tuples() != 8 {
		t.Fatal("array not attached")
	}
	if _, err := FetchArray(d, grid.CellData, "missing"); err == nil {
		t.Fatal("expected error for missing array")
	}
	d.meshErr = errors.New("no mesh")
	if _, err := FetchArray(d, grid.CellData, "data"); err == nil {
		t.Fatal("expected mesh error")
	}
}

func TestAttrsParsing(t *testing.T) {
	a := Attrs{"bins": "32", "width": "2.5", "enabled": "0", "name": "x"}
	if v := a.String("name", "d"); v != "x" {
		t.Fatalf("string=%q", v)
	}
	if v := a.String("absent", "d"); v != "d" {
		t.Fatalf("default=%q", v)
	}
	if n, err := a.Int("bins", 1); err != nil || n != 32 {
		t.Fatalf("int=%d err=%v", n, err)
	}
	if n, err := a.Int("absent", 7); err != nil || n != 7 {
		t.Fatalf("int default=%d err=%v", n, err)
	}
	if _, err := a.Int("name", 0); err == nil {
		t.Fatal("expected int parse error")
	}
	if f, err := a.Float("width", 0); err != nil || f != 2.5 {
		t.Fatalf("float=%v err=%v", f, err)
	}
	if a.Bool("enabled", true) {
		t.Fatal("enabled=0 parsed as true")
	}
	if !a.Bool("absent", true) {
		t.Fatal("bool default wrong")
	}
}

func TestConfigureFromXML(t *testing.T) {
	RegisterFactory("test-recording", func(attrs Attrs, env *Env) (AnalysisAdaptor, error) {
		if attrs.String("array", "") != "data" {
			return nil, fmt.Errorf("bad attrs")
		}
		return &recordingAnalysis{}, nil
	})
	b := NewBridge(nil, nil, nil)
	doc := []byte(`<sensei>
		<analysis type="test-recording" array="data" name="first"/>
		<analysis type="test-recording" array="data" enabled="0"/>
	</sensei>`)
	if err := ConfigureFromXML(b, doc); err != nil {
		t.Fatal(err)
	}
	if b.AnalysisCount() != 1 {
		t.Fatalf("count=%d (disabled analysis not skipped?)", b.AnalysisCount())
	}
}

func TestConfigureFromXMLUnknownType(t *testing.T) {
	b := NewBridge(nil, nil, nil)
	err := ConfigureFromXML(b, []byte(`<sensei><analysis type="nope"/></sensei>`))
	if err == nil || !strings.Contains(err.Error(), "unknown analysis type") {
		t.Fatalf("err=%v", err)
	}
}

func TestConfigureFromXMLMissingType(t *testing.T) {
	b := NewBridge(nil, nil, nil)
	if err := ConfigureFromXML(b, []byte(`<sensei><analysis array="d"/></sensei>`)); err == nil {
		t.Fatal("expected error")
	}
}

func TestConfigureFromXMLBadDocument(t *testing.T) {
	b := NewBridge(nil, nil, nil)
	if err := ConfigureFromXML(b, []byte(`<not xml`)); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestRegisterFactoryDuplicatePanics(t *testing.T) {
	RegisterFactory("test-dup", func(Attrs, *Env) (AnalysisAdaptor, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RegisterFactory("test-dup", func(Attrs, *Env) (AnalysisAdaptor, error) { return nil, nil })
}

func TestFactoryTypesSorted(t *testing.T) {
	RegisterFactory("test-zzz", func(Attrs, *Env) (AnalysisAdaptor, error) { return nil, nil })
	RegisterFactory("test-aaa", func(Attrs, *Env) (AnalysisAdaptor, error) { return nil, nil })
	types := FactoryTypes()
	for i := 1; i < len(types); i++ {
		if types[i-1] >= types[i] {
			t.Fatalf("not sorted: %v", types)
		}
	}
}

func TestNewBridgeDefaults(t *testing.T) {
	b := NewBridge(nil, nil, nil)
	if b.Registry == nil || b.Memory == nil {
		t.Fatal("defaults not created")
	}
	reg := metrics.NewRegistry(3)
	mem := metrics.NewTracker()
	b2 := NewBridge(nil, reg, mem)
	if b2.Registry != reg || b2.Memory != mem {
		t.Fatal("provided sinks not used")
	}
}

func TestEveryNStride(t *testing.T) {
	inner := &recordingAnalysis{}
	s := EveryN(3, inner)
	d := newFakeAdaptor()
	for step := 0; step < 7; step++ {
		d.SetStep(step, 0)
		if _, err := s.Execute(d); err != nil {
			t.Fatal(err)
		}
	}
	if len(inner.executed) != 3 { // steps 0, 3, 6
		t.Fatalf("executed=%v", inner.executed)
	}
	if inner.executed[1] != 3 {
		t.Fatalf("executed=%v", inner.executed)
	}
	if s.Executions() != 3 {
		t.Fatalf("Executions=%d", s.Executions())
	}
	if err := s.Finalize(); err != nil || !inner.finalized {
		t.Fatal("finalize not forwarded")
	}
}

func TestEveryNDegenerate(t *testing.T) {
	inner := &recordingAnalysis{}
	s := EveryN(0, inner) // clamps to 1
	d := newFakeAdaptor()
	for step := 0; step < 3; step++ {
		d.SetStep(step, 0)
		if _, err := s.Execute(d); err != nil {
			t.Fatal(err)
		}
	}
	if len(inner.executed) != 3 {
		t.Fatalf("executed=%v", inner.executed)
	}
}
