// Package core implements the paper's primary contribution: the SENSEI
// generic data interface.
//
// The interface decouples three roles so each can vary independently:
//
//   - The simulation implements a DataAdaptor that lazily maps its native
//     data structures onto the shared data model (packages grid and array),
//     using zero-copy wrapping wherever layouts permit.
//   - Analyses and in situ infrastructures implement AnalysisAdaptor and pull
//     data through the DataAdaptor, never from the simulation directly.
//   - The Bridge is the thin glue the simulation calls once per time step; it
//     hands the data adaptor to every registered analysis adaptor and keeps
//     the timing/memory instrumentation the paper's experiments report.
//
// Because infrastructures (Catalyst, Libsim, ADIOS, GLEAN) are themselves
// just AnalysisAdaptors, a simulation instrumented once can use any of them —
// the paper's "write once, use anywhere" property — and an analysis written
// against DataAdaptor runs unmodified in situ, in transit, or post hoc.
package core

import (
	"fmt"

	"gosensei/internal/grid"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
)

// DataAdaptor is the simulation-side half of the SENSEI interface. The
// adaptor is expected to be lazy: Mesh and AddArray should construct or wrap
// data only when called, so that an instrumented simulation with no enabled
// analyses pays (almost) nothing.
type DataAdaptor interface {
	// Mesh returns the simulation's current mesh. With structureOnly set the
	// adaptor may omit point coordinates and connectivity, returning only
	// metadata-bearing structure (used by analyses that only need extents).
	Mesh(structureOnly bool) (grid.Dataset, error)
	// AddArray attaches the named simulation array to the mesh, wrapping
	// simulation memory zero-copy when the layout allows.
	AddArray(mesh grid.Dataset, assoc grid.Association, name string) error
	// ArrayNames lists the arrays the simulation can provide.
	ArrayNames(assoc grid.Association) ([]string, error)
	// TimeStep returns the current simulation step index.
	TimeStep() int
	// Time returns the current simulation time.
	Time() float64
	// ReleaseData drops references to the simulation's per-step data; it is
	// called by the bridge after all analyses ran.
	ReleaseData() error
}

// AnalysisAdaptor is the analysis-side half of the interface. Execute is
// called once per bridged time step; the return value reports whether the
// simulation should continue (false requests an orderly stop, e.g. from an
// interactive steering endpoint).
type AnalysisAdaptor interface {
	Execute(d DataAdaptor) (bool, error)
	Finalize() error
}

// BaseDataAdaptor carries the step/time bookkeeping every data adaptor
// needs; concrete adaptors embed it.
type BaseDataAdaptor struct {
	Step int
	T    float64
}

// SetStep records the current step and time; the simulation's bridge calls
// this before Execute.
func (b *BaseDataAdaptor) SetStep(step int, t float64) { b.Step = step; b.T = t }

// TimeStep implements part of DataAdaptor.
func (b *BaseDataAdaptor) TimeStep() int { return b.Step }

// Time implements part of DataAdaptor.
func (b *BaseDataAdaptor) Time() float64 { return b.T }

// namedAnalysis pairs an adaptor with the label used in timing events.
type namedAnalysis struct {
	name string
	a    AnalysisAdaptor
}

// Bridge assembles the in situ workflow: one data adaptor per simulation,
// any number of analysis adaptors. It is the only object the simulation's
// time-stepping loop touches.
type Bridge struct {
	Comm     *mpi.Comm
	Registry *metrics.Registry
	Memory   *metrics.Tracker

	analyses  []namedAnalysis
	execCount int
	stopped   bool
}

// NewBridge creates a bridge for one rank. registry and memory may be nil,
// in which case fresh instances are created.
func NewBridge(comm *mpi.Comm, registry *metrics.Registry, memory *metrics.Tracker) *Bridge {
	if registry == nil {
		rank := 0
		if comm != nil {
			rank = comm.Rank()
		}
		registry = metrics.NewRegistry(rank)
	}
	if memory == nil {
		memory = metrics.NewTracker()
	}
	return &Bridge{Comm: comm, Registry: registry, Memory: memory}
}

// AddAnalysis registers an analysis adaptor under a timing label.
func (b *Bridge) AddAnalysis(name string, a AnalysisAdaptor) {
	b.analyses = append(b.analyses, namedAnalysis{name, a})
}

// AnalysisCount returns the number of registered analyses.
func (b *Bridge) AnalysisCount() int { return len(b.analyses) }

// Stopped reports whether any analysis requested an orderly stop.
func (b *Bridge) Stopped() bool { return b.stopped }

// Execute passes the current simulation state to every registered analysis.
// Per-analysis wall time is logged as "analysis::<name>"; the total for the
// step as "sensei::execute". It returns false when any analysis requests a
// stop.
func (b *Bridge) Execute(d DataAdaptor) (bool, error) {
	step := d.TimeStep()
	total := b.Registry.Timer("sensei::execute")
	total.Start()
	cont := true
	var firstErr error
	for _, na := range b.analyses {
		var (
			ok  bool
			err error
		)
		b.Registry.Time("analysis::"+na.name, step, func() {
			ok, err = na.a.Execute(d)
		})
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("analysis %q at step %d: %w", na.name, step, err)
		}
		if !ok {
			cont = false
		}
	}
	d1 := total.Stop()
	b.Registry.Log("sensei::execute-step", step, d1.Seconds())
	b.execCount++
	if !cont {
		b.stopped = true
	}
	if err := d.ReleaseData(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("release data at step %d: %w", step, err)
	}
	return cont, firstErr
}

// Finalize finalizes every analysis (in registration order), logging the
// wall time as "sensei::finalize".
func (b *Bridge) Finalize() error {
	var firstErr error
	b.Registry.Time("sensei::finalize", b.execCount, func() {
		for _, na := range b.analyses {
			if err := na.a.Finalize(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("finalize %q: %w", na.name, err)
			}
		}
	})
	return firstErr
}

// FetchArray is a convenience for analyses: it obtains the mesh and attaches
// the named array, returning both. Most concrete analyses start with this.
func FetchArray(d DataAdaptor, assoc grid.Association, name string) (grid.Dataset, error) {
	mesh, err := d.Mesh(false)
	if err != nil {
		return nil, fmt.Errorf("fetch mesh: %w", err)
	}
	if err := d.AddArray(mesh, assoc, name); err != nil {
		return nil, fmt.Errorf("fetch array %q: %w", name, err)
	}
	return mesh, nil
}

// Strided wraps an analysis so it executes only every n-th bridge step,
// finalizing normally. Catalyst and Libsim carry their own stride options;
// this decorator gives the same cadence control to any analysis (the
// AVF-LESLIE pattern of invoking an expensive pipeline one step in five).
type Strided struct {
	N     int
	Inner AnalysisAdaptor
	calls int
}

// EveryN wraps a in a Strided executing every n-th step (n < 1 acts as 1).
func EveryN(n int, a AnalysisAdaptor) *Strided {
	if n < 1 {
		n = 1
	}
	return &Strided{N: n, Inner: a}
}

// Execute implements AnalysisAdaptor.
func (s *Strided) Execute(d DataAdaptor) (bool, error) {
	idx := s.calls
	s.calls++
	if idx%s.N != 0 {
		return true, nil
	}
	return s.Inner.Execute(d)
}

// Finalize implements AnalysisAdaptor.
func (s *Strided) Finalize() error { return s.Inner.Finalize() }

// Executions reports how many times the inner analysis actually ran.
func (s *Strided) Executions() int { return (s.calls + s.N - 1) / s.N }
