package core

import (
	"fmt"
	"time"

	"gosensei/internal/mpi"
	"gosensei/internal/route"
)

// StepMeter measures the cost of one routed dispatch: it runs fn and returns
// the estimate the router should learn from. The production WallMeter reads
// the wall clock and byte odometers; tests substitute routetest.ScriptMeter
// so routing decisions are a pure function of the step counter.
type StepMeter interface {
	Measure(step int, b route.Backend, fn func() error) (route.Estimate, error)
}

// WallMeter is the production StepMeter: wall-clock latency plus deltas of
// the wire and storage odometers (either may be nil for "no such cost").
type WallMeter struct {
	// Wire returns the staging fabric's cumulative bytes-on-wire odometer
	// (fabric.Stats.DataBytesWire), nil if no fabric is in play.
	Wire func() int64
	// Storage returns the cumulative bytes written to storage, nil if none.
	Storage func() int64
}

// Measure implements StepMeter.
func (m *WallMeter) Measure(step int, b route.Backend, fn func() error) (route.Estimate, error) {
	var w0, s0 int64
	if m.Wire != nil {
		w0 = m.Wire()
	}
	if m.Storage != nil {
		s0 = m.Storage()
	}
	start := time.Now()
	err := fn()
	e := route.Estimate{Seconds: time.Since(start).Seconds()}
	if m.Wire != nil {
		e.WireBytes = m.Wire() - w0
	}
	if m.Storage != nil {
		e.StorageBytes = m.Storage() - s0
	}
	return e, err
}

// Routed is the router seam in the SENSEI interface: an AnalysisAdaptor that
// re-dispatches each bridged step to one of up to three route adaptors — the
// same analysis running in situ, in transit, or post hoc — as chosen by a
// route.Router. Because infrastructures are themselves AnalysisAdaptors, the
// routes are ordinary adaptors (e.g. the analysis itself, an adios.Writer,
// an iosim replay writer) and the simulation keeps calling one Bridge.
//
// Collective contract: every rank constructs a Routed with the same routes;
// rank 0 owns the Router and broadcasts each decision, so all ranks always
// dispatch the same backend (a rank-divergent route would deadlock the
// collectives inside the routes). Observed costs are agreed before they feed
// the router — latency is max-reduced (the step is as slow as its slowest
// rank), bytes ride the same max-reduce because they are counted on the
// odometer-owning rank — so the decision stream is identical no matter which
// rank's clock jitters.
type Routed struct {
	comm     *mpi.Comm
	router   *route.Router // non-nil on rank 0 only
	meter    StepMeter
	fallback route.Backend

	routes [route.NumBackends]AnalysisAdaptor
	// DecisionHook, when set on rank 0, observes each broadcast decision.
	DecisionHook func(route.Decision)
}

// NewRouted builds the routed dispatcher. router must be non-nil on rank 0
// and is ignored on other ranks; meter must be non-nil. comm may be nil for
// single-process use. The fallback backend (used when a dispatch fails) is
// InSitu.
func NewRouted(comm *mpi.Comm, router *route.Router, meter StepMeter) *Routed {
	rt := &Routed{comm: comm, router: router, meter: meter, fallback: route.InSitu}
	if (comm == nil || comm.Rank() == 0) && router == nil {
		panic("core: NewRouted needs a router on rank 0")
	}
	return rt
}

// SetRoute installs the adaptor dispatched when the router picks b.
func (rt *Routed) SetRoute(b route.Backend, a AnalysisAdaptor) {
	rt.routes[b] = a
}

// Route returns the adaptor registered for b (nil if none).
func (rt *Routed) Route(b route.Backend) AnalysisAdaptor { return rt.routes[b] }

func (rt *Routed) root() bool { return rt.comm == nil || rt.comm.Rank() == 0 }

// decide picks the step's backend on rank 0 and broadcasts it.
func (rt *Routed) decide(step int) (route.Backend, error) {
	var choice int64
	if rt.root() {
		d := rt.router.Decide(step)
		choice = int64(d.Backend)
		if rt.DecisionHook != nil {
			rt.DecisionHook(d)
		}
	}
	if rt.comm != nil && rt.comm.Size() > 1 {
		buf := []int64{choice}
		if err := mpi.Bcast(rt.comm, buf, 0); err != nil {
			return 0, fmt.Errorf("route: broadcast decision: %w", err)
		}
		choice = buf[0]
	}
	return route.Backend(choice), nil
}

// agree reconciles per-rank outcomes into one collective truth: the step's
// latency is the slowest rank's, its bytes are the sum over ranks, and error
// and stop flags are sticky across ranks.
func (rt *Routed) agree(e route.Estimate, failed, stop bool) (route.Estimate, bool, bool, error) {
	if rt.comm == nil || rt.comm.Size() <= 1 {
		return e, failed, stop, nil
	}
	send := []float64{e.Seconds, float64(e.WireBytes), float64(e.StorageBytes), 0, 0}
	if failed {
		send[3] = 1
	}
	if stop {
		send[4] = 1
	}
	// One max-reduce carries everything: bytes are counted only on the rank
	// that owns the odometer (the fabric and block writers count globally),
	// so max doubles as "the counting rank's value"; flags are 0/1.
	recv := make([]float64, len(send))
	if err := mpi.Allreduce(rt.comm, send, recv, mpi.OpMax); err != nil {
		return e, failed, stop, fmt.Errorf("route: agree step cost: %w", err)
	}
	out := route.Estimate{Seconds: recv[0], WireBytes: int64(recv[1]), StorageBytes: int64(recv[2])}
	return out, recv[3] != 0, recv[4] != 0, nil
}

// Execute implements AnalysisAdaptor: decide, dispatch, agree, learn.
func (rt *Routed) Execute(d DataAdaptor) (bool, error) {
	step := d.TimeStep()
	b, err := rt.decide(step)
	if err != nil {
		return false, err
	}
	executed := b
	cont := true
	runErr := func() error {
		a := rt.routes[b]
		if a == nil {
			return fmt.Errorf("route: no adaptor for backend %v", b)
		}
		var execErr error
		cont, execErr = a.Execute(d)
		return execErr
	}
	est, dispatchErr := rt.meter.Measure(step, b, runErr)

	est, failed, stopped, aerr := rt.agree(est, dispatchErr != nil, !cont)
	if aerr != nil {
		return false, aerr
	}

	if failed {
		// Graceful degradation: quarantine the route and redo the step on
		// the fallback so no step's analysis is lost. The fallback cost is
		// what the router learns for the fallback backend.
		if rt.root() {
			rt.router.ReportFailure(step, b)
		}
		if b != rt.fallback && rt.routes[rt.fallback] != nil {
			executed = rt.fallback
			cont = true
			fe, ferr := rt.meter.Measure(step, executed, func() error {
				var execErr error
				cont, execErr = rt.routes[executed].Execute(d)
				return execErr
			})
			fe, ffailed, fstopped, aerr2 := rt.agree(fe, ferr != nil, !cont)
			if aerr2 != nil {
				return false, aerr2
			}
			if ffailed {
				return false, fmt.Errorf("route: step %d failed on %v and fallback %v", step, b, executed)
			}
			est, stopped = fe, fstopped
		} else {
			return false, fmt.Errorf("route: step %d failed on %v with no fallback", step, b)
		}
	}

	if rt.root() {
		rt.router.Observe(step, executed, est)
	}
	return !stopped, nil
}

// Finalize implements AnalysisAdaptor: every registered route is finalized,
// executed or not — an in transit writer must still close its stream (EOS)
// even if the router never picked it.
func (rt *Routed) Finalize() error {
	var firstErr error
	for b := route.Backend(0); b < route.NumBackends; b++ {
		if rt.routes[b] == nil {
			continue
		}
		if err := rt.routes[b].Finalize(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("route: finalize %v: %w", b, err)
		}
	}
	return firstErr
}
