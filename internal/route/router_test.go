package route_test

import (
	"testing"

	"gosensei/internal/route"
	"gosensei/internal/route/routetest"
)

func TestBackendNames(t *testing.T) {
	for b := route.Backend(0); b < route.NumBackends; b++ {
		got, err := route.ParseBackend(b.String())
		if err != nil || got != b {
			t.Fatalf("ParseBackend(%q) = %v, %v; want %v", b.String(), got, err, b)
		}
	}
	if _, err := route.ParseBackend("carrier-pigeon"); err == nil {
		t.Fatalf("ParseBackend accepted junk")
	}
	if s := route.Backend(99).String(); s != "backend(99)" {
		t.Fatalf("out-of-range String = %q", s)
	}
}

func TestBudgetScoring(t *testing.T) {
	b := route.Budget{MaxStepSeconds: 1, MaxWireBytes: 100, MaxStorageBytes: 10}
	cases := []struct {
		name string
		e    route.Estimate
		viol int
		over float64
	}{
		{"within", route.Estimate{Seconds: 1, WireBytes: 100, StorageBytes: 10}, 0, 0},
		{"latency", route.Estimate{Seconds: 2}, 1, 1},
		{"wire", route.Estimate{WireBytes: 150}, 1, 0.5},
		{"all", route.Estimate{Seconds: 2, WireBytes: 200, StorageBytes: 20}, 3, 3},
		{"zero", route.Estimate{}, 0, 0},
	}
	for _, c := range cases {
		if got := b.Violations(c.e); got != c.viol {
			t.Errorf("%s: Violations = %d, want %d", c.name, got, c.viol)
		}
		if got := b.Overage(c.e); got != c.over {
			t.Errorf("%s: Overage = %g, want %g", c.name, got, c.over)
		}
		if got := b.Feasible(c.e); got != (c.viol == 0) {
			t.Errorf("%s: Feasible = %v", c.name, got)
		}
	}
	var unlimited route.Budget
	if !unlimited.Feasible(route.Estimate{Seconds: 1e9, WireBytes: 1 << 60}) {
		t.Fatalf("zero budget must be unlimited")
	}
}

func TestPredictBlendsPriorAndPosterior(t *testing.T) {
	prior := [route.NumBackends]route.Estimate{
		route.InSitu: {Seconds: 2},
	}
	r := route.New(route.Config{Eligible: []route.Backend{route.InSitu}, PriorWeight: 4, Alpha: 0.3}, prior)

	if got := r.Predict(route.InSitu); got != prior[route.InSitu] {
		t.Fatalf("unobserved Predict = %+v, want prior %+v", got, prior[route.InSitu])
	}
	r.Observe(0, route.InSitu, route.Estimate{Seconds: 1})
	// One observation: w = 4/5, pred = 0.8*2 + 0.2*1 = 1.8.
	if got := r.Predict(route.InSitu).Seconds; got != 0.8*2+0.2*1 {
		t.Fatalf("blended Predict = %g, want %g", got, 0.8*2+0.2*1)
	}
	// Posterior equal to prior is an exact fixed point.
	r2 := route.New(route.Config{Eligible: []route.Backend{route.InSitu}}, prior)
	for step := 0; step < 5; step++ {
		r2.Observe(step, route.InSitu, route.Estimate{Seconds: 2})
	}
	if got := r2.Predict(route.InSitu).Seconds; got != 2 {
		t.Fatalf("steady-cost Predict = %g, want exactly 2", got)
	}
}

// flat is shorthand for a constant per-backend cost table.
func flat(insitu, intransit, posthoc route.Estimate) [route.NumBackends]route.Estimate {
	return [route.NumBackends]route.Estimate{
		route.InSitu:    insitu,
		route.InTransit: intransit,
		route.PostHoc:   posthoc,
	}
}

// sec is an Estimate with only a latency cost.
func sec(s float64) route.Estimate { return route.Estimate{Seconds: s} }

// TestTransitions is the table-driven transition suite: every scripted trace
// pins the switch schedule (which steps, which backends, which reasons) of a
// fresh router, plus budget/fallback tallies. All traces are pure functions
// of the step counter, so each case is exactly reproducible.
func TestTransitions(t *testing.T) {
	two := []route.Backend{route.InSitu, route.InTransit}
	ip := []route.Backend{route.InSitu, route.PostHoc}

	type switchWant struct {
		step   int
		to     route.Backend
		forced bool
		reason string
	}
	cases := []struct {
		name       string
		cfg        route.Config
		prior      [route.NumBackends]route.Estimate
		trace      routetest.Trace
		wantSwitch []switchWant
		wantViol   int
		wantFall   int
		wantEnd    route.Backend
	}{
		{
			// The prior says posthoc is cheap; reality says it is 5x the
			// in situ cost. The blended prediction crosses the 20% margin
			// after one observation, but the dwell clock (started by the
			// first decision at step 0) holds the router until step 4.
			name:  "dwell expiry",
			cfg:   route.Config{Eligible: ip, Start: route.InSitu, MinDwell: 4, SwitchMargin: 0.2, PriorWeight: 4},
			prior: flat(sec(1.0), route.Estimate{}, sec(0.5)),
			trace: routetest.Trace{
				Steps: 8,
				Costs: routetest.FlatCosts(flat(sec(1.0), route.Estimate{}, sec(5.0))),
			},
			wantSwitch: []switchWant{{step: 4, to: route.InSitu, forced: false, reason: "cheapest"}},
			wantEnd:    route.InSitu,
		},
		{
			// The challenger is predicted 10% cheaper forever — inside the
			// 20% margin, so the router must never switch.
			name:  "sub-margin win ignored",
			cfg:   route.Config{Eligible: two, Start: route.InSitu, MinDwell: 2, SwitchMargin: 0.2},
			prior: flat(sec(1.0), sec(0.9), route.Estimate{}),
			trace: routetest.Trace{
				Steps: 12,
				Costs: routetest.FlatCosts(flat(sec(1.0), sec(0.9), route.Estimate{})),
			},
			wantSwitch: nil,
			wantEnd:    route.InSitu,
		},
		{
			// Workload shift at step 5: the in situ cost balloons past the
			// latency cap. The EWMA needs two violating observations before
			// the blended prediction crosses the cap, then the router must
			// switch immediately — MinDwell of 100 proves the switch is
			// forced, not voluntary.
			name:  "budget violation forces switch",
			cfg:   route.Config{Budget: route.Budget{MaxStepSeconds: 1.5}, Eligible: two, Start: route.InSitu, MinDwell: 100, SwitchMargin: 0.2, Alpha: 0.3, PriorWeight: 4},
			prior: flat(sec(1.0), sec(1.4), route.Estimate{}),
			trace: routetest.Trace{
				Steps: 12,
				Costs: routetest.PhasedCosts([]int{5},
					flat(sec(1.0), sec(1.4), route.Estimate{}),
					flat(sec(3.0), sec(1.4), route.Estimate{})),
			},
			wantSwitch: []switchWant{{step: 7, to: route.InTransit, forced: true, reason: "budget"}},
			wantViol:   2, // detection lag: steps 5 and 6 ran hot before the posterior caught up
			wantEnd:    route.InTransit,
		},
		{
			// The in transit endpoint dies for steps 3..5. Step 3's dispatch
			// fails and falls back in situ; step 4 is a forced switch off the
			// quarantined backend; the quarantine expires at step 7 and the
			// router probes its way back to the cheaper route.
			name:  "endpoint loss falls back and recovers",
			cfg:   route.Config{Eligible: two, Start: route.InSitu, MinDwell: 2, SwitchMargin: 0.2, ProbeInterval: 4, PriorWeight: 4},
			prior: flat(sec(1.0), sec(0.5), route.Estimate{}),
			trace: routetest.Trace{
				Steps: 12,
				Costs: routetest.FlatCosts(flat(sec(1.0), sec(0.5), route.Estimate{})),
				Down: func(step int, b route.Backend) bool {
					return b == route.InTransit && step >= 3 && step <= 5
				},
			},
			wantSwitch: []switchWant{
				{step: 4, to: route.InSitu, forced: true, reason: "failed"},
				{step: 7, to: route.InTransit, forced: false, reason: "cheapest"},
			},
			wantFall: 1,
			wantEnd:  route.InTransit,
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := route.New(c.cfg, c.prior)
			res := routetest.Drive(r, c.trace)

			var switches []switchWant
			for _, d := range res.Decisions {
				if d.Switched {
					switches = append(switches, switchWant{step: d.Step, to: d.Backend, forced: d.Forced, reason: d.Reason})
				}
			}
			if len(switches) != len(c.wantSwitch) {
				t.Fatalf("switches = %+v, want %+v\ndecision log:\n%s", switches, c.wantSwitch, route.FormatDecisions(res.Decisions))
			}
			for i, w := range c.wantSwitch {
				if switches[i] != w {
					t.Errorf("switch[%d] = %+v, want %+v\ndecision log:\n%s", i, switches[i], w, route.FormatDecisions(res.Decisions))
				}
			}
			if res.Violations != c.wantViol {
				t.Errorf("violations = %d, want %d\n%s", res.Violations, c.wantViol, res.String())
			}
			if res.Fallbacks != c.wantFall {
				t.Errorf("fallbacks = %d, want %d\n%s", res.Fallbacks, c.wantFall, res.String())
			}
			if got := r.Current(); got != c.wantEnd {
				t.Errorf("final backend = %v, want %v", got, c.wantEnd)
			}

			// Replayability: a fresh router on the same trace must emit a
			// bit-identical decision log.
			r2 := route.New(c.cfg, c.prior)
			res2 := routetest.Drive(r2, c.trace)
			if a, b := route.FormatDecisions(res.Decisions), route.FormatDecisions(res2.Decisions); a != b {
				t.Errorf("replay diverged:\nfirst:\n%s\nsecond:\n%s", a, b)
			}
		})
	}
}

// TestAdversarialOscillationDoesNotFlap scripts a trace where the cheapest
// backend alternates every step — the worst case for a naive greedy
// scheduler. The dwell window must cap the switch rate at one per MinDwell
// steps, and consecutive switches must be at least MinDwell apart.
func TestAdversarialOscillationDoesNotFlap(t *testing.T) {
	const steps, dwell = 40, 4
	cfg := route.Config{
		Eligible:     []route.Backend{route.InSitu, route.PostHoc},
		Start:        route.InSitu,
		MinDwell:     dwell,
		SwitchMargin: 0.2,
		Alpha:        0.5,
		PriorWeight:  1,
	}
	prior := flat(sec(1.0), route.Estimate{}, sec(1.0))
	tr := routetest.Trace{
		Steps: steps,
		Costs: func(step int, b route.Backend) route.Estimate {
			cheap := route.InSitu
			if step%2 == 1 {
				cheap = route.PostHoc
			}
			if b == cheap {
				return sec(0.2)
			}
			return sec(2.0)
		},
	}
	res := routetest.Drive(route.New(cfg, prior), tr)

	if max := steps/dwell + 1; res.Switches > max {
		t.Fatalf("flapped: %d switches over %d steps (max %d)\n%s",
			res.Switches, steps, max, route.FormatDecisions(res.Decisions))
	}
	ss := res.SwitchSteps()
	for i := 1; i < len(ss); i++ {
		if ss[i]-ss[i-1] < dwell {
			t.Fatalf("switches at steps %d and %d violate MinDwell=%d\n%s",
				ss[i-1], ss[i], dwell, route.FormatDecisions(res.Decisions))
		}
	}
}

// TestEqualCostsNeverSwitch: with identical predictions everywhere, ties
// break toward the incumbent, so the route must stay put.
func TestEqualCostsNeverSwitch(t *testing.T) {
	cfg := route.Config{Eligible: []route.Backend{route.InSitu, route.InTransit, route.PostHoc}, Start: route.InTransit}
	prior := flat(sec(1.0), sec(1.0), sec(1.0))
	tr := routetest.Trace{Steps: 20, Costs: routetest.FlatCosts(prior)}
	res := routetest.Drive(route.New(cfg, prior), tr)
	if res.Switches != 0 {
		t.Fatalf("equal costs switched %d times:\n%s", res.Switches, route.FormatDecisions(res.Decisions))
	}
	for _, b := range res.Executed() {
		if b != route.InTransit {
			t.Fatalf("left the starting backend:\n%s", res.String())
		}
	}
}

// TestNothingFeasibleRidesLeastOverage: when every backend busts the budget,
// the router parks on the least-overage one instead of flapping.
func TestNothingFeasibleRidesLeastOverage(t *testing.T) {
	cfg := route.Config{
		Budget:   route.Budget{MaxStepSeconds: 0.1},
		Eligible: []route.Backend{route.InSitu, route.PostHoc},
		Start:    route.InSitu,
	}
	prior := flat(sec(1.0), route.Estimate{}, sec(0.5))
	tr := routetest.Trace{Steps: 10, Costs: routetest.FlatCosts(prior)}
	res := routetest.Drive(route.New(cfg, prior), tr)
	// posthoc (0.5s) has the smaller overage; the router moves there once
	// and stays.
	if res.Switches > 1 {
		t.Fatalf("flapped under infeasible budget: %d switches\n%s", res.Switches, route.FormatDecisions(res.Decisions))
	}
	if got := res.Executed()[len(res.Outcomes)-1]; got != route.PostHoc {
		t.Fatalf("final backend = %v, want posthoc (least overage)\n%s", got, route.FormatDecisions(res.Decisions))
	}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	cfg := route.Config{}.Normalize()
	if len(cfg.Eligible) != 1 || cfg.Eligible[0] != route.InSitu {
		t.Errorf("default Eligible = %v", cfg.Eligible)
	}
	if cfg.MinDwell != 4 || cfg.SwitchMargin != 0.2 || cfg.PriorWeight != 4 || cfg.ProbeInterval != 8 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestStartBackendMustBeEligible(t *testing.T) {
	r := route.New(route.Config{Eligible: []route.Backend{route.PostHoc}, Start: route.InTransit}, [route.NumBackends]route.Estimate{})
	if got := r.Current(); got != route.PostHoc {
		t.Fatalf("ineligible Start kept: %v", got)
	}
}
