package route

import (
	"fmt"

	"gosensei/internal/metrics"
)

// Config tunes the router. The zero value routes everything in situ with no
// budget; Normalize fills defaults.
type Config struct {
	// Budget declares the per-step ceilings routes are scored against.
	Budget Budget
	// Eligible lists the backends the router may choose. Empty means
	// in situ only.
	Eligible []Backend
	// Start is the backend of step 0 (before any observations).
	Start Backend
	// MinDwell is the minimum number of steps between voluntary switches.
	// Forced switches (budget violation, failure) ignore it. Default 4.
	MinDwell int
	// SwitchMargin is the fractional predicted win a challenger must show
	// over the incumbent before a voluntary switch (0.2 = 20%). Default 0.2.
	SwitchMargin float64
	// Alpha is the EWMA weight of the newest observation (0 = default 0.3).
	Alpha float64
	// PriorWeight is the pseudo-count of the perfmodel prior: the blend is
	// w = PriorWeight/(PriorWeight+observations), so after PriorWeight
	// observations the prior and the posterior weigh equally. Default 4.
	PriorWeight float64
	// ProbeInterval is how many steps a failed backend stays quarantined
	// before the router considers it again. Default 8.
	ProbeInterval int
}

// Normalize returns cfg with defaults filled in.
func (cfg Config) Normalize() Config {
	if len(cfg.Eligible) == 0 {
		cfg.Eligible = []Backend{InSitu}
	}
	if cfg.MinDwell <= 0 {
		cfg.MinDwell = 4
	}
	if cfg.SwitchMargin <= 0 {
		cfg.SwitchMargin = 0.2
	}
	if cfg.PriorWeight <= 0 {
		cfg.PriorWeight = 4
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 8
	}
	return cfg
}

// Router picks a backend for each analysis step. It is a deterministic state
// machine: identical configs fed identical step/observation sequences emit
// identical decision logs (the property the faultline replay tests pin).
// A Router serves one rank's decision loop and is not safe for concurrent
// use; in an MPI run, rank 0 decides and broadcasts (see core.Routed).
type Router struct {
	cfg   Config
	prior [NumBackends]Estimate

	// Posterior state, per backend. Arrays, not maps: decision order must
	// never depend on map iteration.
	seconds [NumBackends]metrics.EWMA
	wire    [NumBackends]metrics.EWMA
	storage [NumBackends]metrics.EWMA
	obs     [NumBackends]int

	// failedAt[b] is the step of b's most recent reported failure, -1 if
	// none. A failed backend is quarantined for ProbeInterval steps.
	failedAt [NumBackends]int

	current    Backend
	lastSwitch int
	decided    bool
	decisions  []Decision
	switches   int
}

// New builds a router from cfg and per-backend prior estimates (typically
// perfmodel.RoutePrior; a zero prior means "assumed free until observed").
func New(cfg Config, prior [NumBackends]Estimate) *Router {
	cfg = cfg.Normalize()
	r := &Router{cfg: cfg, prior: prior, current: cfg.Start}
	if !r.eligible(r.current) {
		r.current = cfg.Eligible[0]
	}
	for b := range r.failedAt {
		r.failedAt[b] = -1
	}
	for b := range r.seconds {
		r.seconds[b].Alpha = cfg.Alpha
		r.wire[b].Alpha = cfg.Alpha
		r.storage[b].Alpha = cfg.Alpha
	}
	return r
}

func (r *Router) eligible(b Backend) bool {
	for _, e := range r.cfg.Eligible {
		if e == b {
			return true
		}
	}
	return false
}

// quarantined reports whether b is inside its post-failure probe window.
func (r *Router) quarantined(b Backend, step int) bool {
	return r.failedAt[b] >= 0 && step-r.failedAt[b] < r.cfg.ProbeInterval
}

// Predict returns the blended prior/posterior estimate for b:
// w·prior + (1−w)·posterior with w = PriorWeight/(PriorWeight+observations).
// With no observations it is exactly the prior; the prior's pull fades as
// evidence accumulates.
func (r *Router) Predict(b Backend) Estimate {
	n := float64(r.obs[b])
	if n == 0 {
		return r.prior[b]
	}
	w := r.cfg.PriorWeight / (r.cfg.PriorWeight + n)
	blend := func(prior, post float64) float64 {
		if prior == post { // exact fixed point, same rationale as EWMA.Observe
			return post
		}
		return w*prior + (1-w)*post
	}
	return Estimate{
		Seconds:      blend(r.prior[b].Seconds, r.seconds[b].Value()),
		WireBytes:    int64(blend(float64(r.prior[b].WireBytes), r.wire[b].Value())),
		StorageBytes: int64(blend(float64(r.prior[b].StorageBytes), r.storage[b].Value())),
	}
}

// SetPrior replaces b's prior estimate — the prior-adapter hook. When the
// workload declares a change the model can re-predict without waiting for
// observations (a renegotiated extract shrinks the shipped array, a new
// analysis configuration changes the compute), the caller recomputes the
// perfmodel prior and installs it here; it takes effect at the next Decide,
// still blended against whatever posterior evidence has accumulated.
func (r *Router) SetPrior(b Backend, e Estimate) {
	if b < 0 || b >= NumBackends {
		return
	}
	r.prior[b] = e
}

// Observe folds a measured step cost for b into the posterior and lifts any
// failure quarantine (a successful step is proof of life).
func (r *Router) Observe(step int, b Backend, e Estimate) {
	if b < 0 || b >= NumBackends {
		return
	}
	r.seconds[b].Observe(e.Seconds)
	r.wire[b].Observe(float64(e.WireBytes))
	r.storage[b].Observe(float64(e.StorageBytes))
	r.obs[b]++
	r.failedAt[b] = -1
}

// ReportFailure quarantines b for ProbeInterval steps starting at step. If b
// is the current backend, the next Decide is a forced switch.
func (r *Router) ReportFailure(step int, b Backend) {
	if b < 0 || b >= NumBackends {
		return
	}
	r.failedAt[b] = step
}

// Decide routes one step. Steps must be presented in nondecreasing order.
//
// The control loop, in priority order:
//  1. forced: the incumbent is quarantined (failure) or its prediction
//     violates the budget while a feasible alternative exists — switch to
//     the cheapest feasible backend immediately, dwell clock ignored;
//  2. dwell: fewer than MinDwell steps since the last switch — hold;
//  3. margin: the cheapest feasible challenger must beat the incumbent's
//     predicted latency by SwitchMargin, otherwise hold;
//  4. nothing feasible anywhere: hold the least-overage backend (switching
//     there is forced if it isn't the incumbent).
func (r *Router) Decide(step int) Decision {
	var pred [NumBackends]Estimate
	for b := Backend(0); b < NumBackends; b++ {
		pred[b] = r.Predict(b)
	}

	// Candidates: eligible and not quarantined. The incumbent is considered
	// separately so a fully-quarantined world still routes somewhere.
	best, bestOK := r.cheapestFeasible(pred, step)
	incumbent := r.current
	incumbentDown := r.quarantined(incumbent, step)
	incumbentOver := !r.cfg.Budget.Feasible(pred[incumbent])

	choice := incumbent
	reason := "hold"
	forced := false

	switch {
	case incumbentDown:
		forced = true
		reason = "failed"
		if bestOK {
			choice = best
		} else {
			choice = r.leastOverage(pred, step, incumbent)
		}
	case incumbentOver && bestOK && best != incumbent:
		forced = true
		reason = "budget"
		choice = best
	case incumbentOver && !bestOK:
		// Nothing feasible: ride the least-overage backend.
		lo := r.leastOverage(pred, step, NumBackends)
		if lo != incumbent {
			forced = true
			reason = "overage"
			choice = lo
		} else {
			reason = "overage"
		}
	case bestOK && best != incumbent:
		// Voluntary switch: dwell + margin hysteresis.
		if r.decided && step-r.lastSwitch < r.cfg.MinDwell {
			reason = "dwell"
		} else if pred[best].Seconds < pred[incumbent].Seconds*(1-r.cfg.SwitchMargin) {
			reason = "cheapest"
			choice = best
		} else {
			reason = "margin"
		}
	}

	switched := r.decided && choice != r.current
	if !r.decided {
		r.decided = true
		r.lastSwitch = step
	}
	if switched {
		r.switches++
		r.lastSwitch = step
	}
	r.current = choice
	d := Decision{
		Step:      step,
		Backend:   choice,
		Switched:  switched,
		Forced:    forced && switched,
		Reason:    reason,
		Predicted: pred,
	}
	r.decisions = append(r.decisions, d)
	return d
}

// cheapestFeasible returns the eligible, unquarantined backend with the
// lowest predicted latency that fits the budget. Ties break toward the
// incumbent, then toward the lower backend index (deterministic).
func (r *Router) cheapestFeasible(pred [NumBackends]Estimate, step int) (Backend, bool) {
	found := false
	var best Backend
	for b := Backend(0); b < NumBackends; b++ {
		if !r.eligible(b) || r.quarantined(b, step) || !r.cfg.Budget.Feasible(pred[b]) {
			continue
		}
		if !found || better(pred[b], pred[best], b == r.current, best == r.current) {
			best = b
			found = true
		}
	}
	return best, found
}

// leastOverage returns the eligible backend minimizing budget overage;
// prefer is favored on ties (pass NumBackends for no preference).
// Quarantined backends are skipped unless everything is quarantined.
func (r *Router) leastOverage(pred [NumBackends]Estimate, step int, prefer Backend) Backend {
	pick := func(skipQuarantined bool) (Backend, bool) {
		found := false
		var best Backend
		var bestOver float64
		for b := Backend(0); b < NumBackends; b++ {
			if !r.eligible(b) || (skipQuarantined && r.quarantined(b, step)) {
				continue
			}
			over := r.cfg.Budget.Overage(pred[b])
			if !found || over < bestOver || (over == bestOver && b == prefer) {
				best, bestOver, found = b, over, true
			}
		}
		return best, found
	}
	if b, ok := pick(true); ok {
		return b
	}
	b, _ := pick(false)
	return b
}

// better reports whether a's estimate beats b's for the cheapest-feasible
// scan: strictly lower latency wins; equal latency keeps the incumbent.
func better(a, b Estimate, aIsCurrent, bIsCurrent bool) bool {
	if a.Seconds != b.Seconds {
		return a.Seconds < b.Seconds
	}
	return aIsCurrent && !bIsCurrent
}

// Current returns the backend the router last decided (Start before any
// Decide).
func (r *Router) Current() Backend { return r.current }

// Switches returns the number of backend changes decided so far.
func (r *Router) Switches() int { return r.switches }

// Decisions returns the full decision log, one entry per Decide call.
func (r *Router) Decisions() []Decision { return r.decisions }

// Budget returns the configured budget (for harnesses scoring outcomes).
func (r *Router) Budget() Budget { return r.cfg.Budget }

// Eligible returns the configured eligible backends.
func (r *Router) Eligible() []Backend { return append([]Backend(nil), r.cfg.Eligible...) }

// DebugState renders a short summary of the router's posterior state.
func (r *Router) DebugState() string {
	s := ""
	for b := Backend(0); b < NumBackends; b++ {
		s += fmt.Sprintf("%s: obs=%d pred=%+v failedAt=%d\n", b, r.obs[b], r.Predict(b), r.failedAt[b])
	}
	return s
}
