// Package routetest is the deterministic harness for the route scheduler:
// scripted cost traces and a fake-clock driver that walk a route.Router
// through synthetic workloads so every transition — dwell expiry, hysteresis
// margin, budget-forced switch, endpoint loss, recovery, flap storms — is
// pinned by table-driven tests. Nothing here reads a wall clock; costs are
// functions of (step, backend), so a trace replays bit-identically.
package routetest

import (
	"fmt"
	"strings"

	"gosensei/internal/route"
)

// Trace is a scripted workload: per-(step, backend) costs and outages.
type Trace struct {
	// Steps is the number of simulation steps to drive.
	Steps int
	// Costs returns the true cost of running step on b. It must be a pure
	// function of its arguments.
	Costs func(step int, b route.Backend) route.Estimate
	// Down reports whether b is unreachable at step (nil = never down).
	// Dispatching to a down backend costs nothing, fails, and falls back
	// to Fallback for the step.
	Down func(step int, b route.Backend) bool
	// Fallback is the backend a failed dispatch retries on (default InSitu).
	Fallback route.Backend
}

// StepOutcome records what actually happened on one driven step.
type StepOutcome struct {
	// Step index.
	Step int
	// Decided is the backend the router picked.
	Decided route.Backend
	// Executed is the backend that actually ran (differs from Decided when
	// the dispatch failed and fell back).
	Executed route.Backend
	// FellBack is set when Decided was down and Fallback ran instead.
	FellBack bool
	// Cost is the true cost paid (the executed backend's trace cost).
	Cost route.Estimate
	// Violations is how many budget dimensions Cost exceeded.
	Violations int
}

// Result summarizes a driven trace.
type Result struct {
	// Outcomes, one per step.
	Outcomes []StepOutcome
	// Decisions is the router's decision log for the run.
	Decisions []route.Decision
	// Switches is the router's switch count.
	Switches int
	// Fallbacks counts steps where the decided backend was down.
	Fallbacks int
	// Violations is the total budget-dimension violations over the run.
	Violations int
}

// ViolationsAfter sums budget violations over steps >= s.
func (r Result) ViolationsAfter(s int) int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Step >= s {
			n += o.Violations
		}
	}
	return n
}

// Executed returns the executed-backend sequence, one entry per step.
func (r Result) Executed() []route.Backend {
	out := make([]route.Backend, len(r.Outcomes))
	for i, o := range r.Outcomes {
		out[i] = o.Executed
	}
	return out
}

// SwitchSteps returns the steps at which the router switched backends.
func (r Result) SwitchSteps() []int {
	var out []int
	for _, d := range r.Decisions {
		if d.Switched {
			out = append(out, d.Step)
		}
	}
	return out
}

// String renders the outcome log, one line per step.
func (r Result) String() string {
	var b strings.Builder
	for _, o := range r.Outcomes {
		mark := " "
		if o.FellBack {
			mark = "!"
		}
		fmt.Fprintf(&b, "step=%-4d ran=%-9s%s cost=%.3gs/%dB/%dB viol=%d\n",
			o.Step, o.Executed, mark, o.Cost.Seconds, o.Cost.WireBytes, o.Cost.StorageBytes, o.Violations)
	}
	return b.String()
}

// Drive walks r through the trace: each step it asks the router to decide,
// executes (or fails over) against the scripted costs, feeds the observation
// back, and scores the true cost against the router's budget. The loop is
// the synchronous single-rank mirror of core.Routed's dispatch.
func Drive(r *route.Router, tr Trace) Result {
	budget := r.Budget()
	var res Result
	for step := 0; step < tr.Steps; step++ {
		d := r.Decide(step)
		o := StepOutcome{Step: step, Decided: d.Backend, Executed: d.Backend}
		if tr.Down != nil && tr.Down(step, d.Backend) {
			// Dispatch failed: quarantine the backend and fall back.
			r.ReportFailure(step, d.Backend)
			o.FellBack = true
			o.Executed = tr.Fallback
			res.Fallbacks++
		}
		o.Cost = tr.Costs(step, o.Executed)
		o.Violations = budget.Violations(o.Cost)
		r.Observe(step, o.Executed, o.Cost)
		res.Violations += o.Violations
		res.Outcomes = append(res.Outcomes, o)
	}
	res.Decisions = r.Decisions()
	res.Switches = r.Switches()
	return res
}

// DriveStatic scores a fixed backend against the trace under the given
// budget — the "every static choice" baseline routers must beat. Outages
// follow the same fallback rule as Drive.
func DriveStatic(b route.Backend, budget route.Budget, tr Trace) Result {
	var res Result
	for step := 0; step < tr.Steps; step++ {
		o := StepOutcome{Step: step, Decided: b, Executed: b}
		if tr.Down != nil && tr.Down(step, b) {
			o.FellBack = true
			o.Executed = tr.Fallback
			res.Fallbacks++
		}
		o.Cost = tr.Costs(step, o.Executed)
		o.Violations = budget.Violations(o.Cost)
		res.Violations += o.Violations
		res.Outcomes = append(res.Outcomes, o)
	}
	return res
}

// FlatCosts builds a Costs function from constant per-backend estimates.
func FlatCosts(costs [route.NumBackends]route.Estimate) func(int, route.Backend) route.Estimate {
	return func(_ int, b route.Backend) route.Estimate { return costs[b] }
}

// PhasedCosts builds a Costs function that switches cost tables at given
// step boundaries: phases[i] applies while step < bounds[i]; the last phase
// applies forever. len(bounds) must be len(phases)-1.
func PhasedCosts(bounds []int, phases ...[route.NumBackends]route.Estimate) func(int, route.Backend) route.Estimate {
	if len(bounds) != len(phases)-1 {
		panic("routetest: PhasedCosts wants len(bounds) == len(phases)-1")
	}
	return func(step int, b route.Backend) route.Estimate {
		for i, bound := range bounds {
			if step < bound {
				return phases[i][b]
			}
		}
		return phases[len(phases)-1][b]
	}
}

// ScriptMeter is a scripted implementation of core.Routed's StepMeter seam:
// instead of timing fn against the wall clock and odometers, it runs fn and
// reports the trace cost for (step, backend). Every rank reports the same
// scripted latency and rank 0 reports the bytes (others zero), so the
// max-reduction core.Routed agrees costs with reproduces the scripted
// estimate exactly on every rank.
type ScriptMeter struct {
	// Costs is the scripted cost function (required).
	Costs func(step int, b route.Backend) route.Estimate
	// Rank of the caller in its communicator.
	Rank int
}

// Measure runs fn and returns the scripted estimate for (step, b).
func (m *ScriptMeter) Measure(step int, b route.Backend, fn func() error) (route.Estimate, error) {
	err := fn()
	e := m.Costs(step, b)
	if m.Rank != 0 {
		e.WireBytes = 0
		e.StorageBytes = 0
	}
	return e, err
}
