// Package route is the per-step backend scheduler that operationalizes the
// SC16 paper's core question — "what does in situ cost, and when should you
// stage or go post hoc?" Instead of only *reporting* those costs (the
// experiment harnesses) or *predicting* them (internal/perfmodel), the
// router acts on them: every simulation step it scores the three dispatch
// routes the paper compares —
//
//   - in situ: the analysis runs inside the simulation's step loop
//     (catalyst/libsim-style), paying compute latency but no wire or disk;
//   - in transit: the step ships over the staging fabric to an analysis
//     endpoint (ADIOS/FlexPath-style), paying wire bytes to move compute
//     off the critical path;
//   - post hoc: the step is written to storage and analyzed by a replay
//     (VTK-file-style), paying storage bytes and read-back latency;
//
// against a declared budget, and dispatches the step to the cheapest
// feasible route. Estimates blend a perfmodel prior with EWMA-smoothed
// observations (internal/metrics.EWMA), so the router both starts sensible
// and adapts when the workload shifts mid-run.
//
// The package is a deterministic kernel (enforced by gosenseilint): it never
// reads a clock, never consults the global rand source, and keys every
// decision on the step counter plus explicitly injected observations — which
// is what makes router decisions replayable under a faultline schedule and
// scriptable by the routetest harness.
package route

import (
	"fmt"
	"strings"
)

// Backend identifies one dispatch route for an analysis step.
type Backend int

const (
	// InSitu runs the analysis inside the simulation's step loop.
	InSitu Backend = iota
	// InTransit ships the step over the staging fabric to an endpoint.
	InTransit
	// PostHoc writes the step to storage for replayed analysis.
	PostHoc
	// NumBackends bounds Backend values; useful for per-backend arrays.
	NumBackends
)

var backendNames = [NumBackends]string{"insitu", "intransit", "posthoc"}

// String returns the canonical lowercase name.
func (b Backend) String() string {
	if b < 0 || b >= NumBackends {
		return fmt.Sprintf("backend(%d)", int(b))
	}
	return backendNames[b]
}

// ParseBackend decodes a canonical backend name.
func ParseBackend(s string) (Backend, error) {
	for b, n := range backendNames {
		if s == n {
			return Backend(b), nil
		}
	}
	return 0, fmt.Errorf("route: unknown backend %q (want %s)", s, strings.Join(backendNames[:], ", "))
}

// Estimate is the cost of running one analysis step on one backend: the
// latency added to the simulation's critical path, the bytes that cross the
// staging wire, and the bytes that land on storage. Zero fields are free
// dimensions (in situ moves no bytes; in transit stores none).
type Estimate struct {
	// Seconds of step latency on the simulation's critical path.
	Seconds float64
	// WireBytes crossing the staging fabric for the step.
	WireBytes int64
	// StorageBytes written to disk for the step.
	StorageBytes int64
}

// add returns the elementwise sum (used when a step pays for two routes,
// e.g. a failed dispatch plus its fallback).
func (e Estimate) add(o Estimate) Estimate {
	return Estimate{
		Seconds:      e.Seconds + o.Seconds,
		WireBytes:    e.WireBytes + o.WireBytes,
		StorageBytes: e.StorageBytes + o.StorageBytes,
	}
}

// Budget declares the per-step resource ceilings a route must respect. A
// zero field is an unlimited dimension.
type Budget struct {
	// MaxStepSeconds caps the analysis latency added to one step.
	MaxStepSeconds float64
	// MaxWireBytes caps the staging-fabric bytes of one step.
	MaxWireBytes int64
	// MaxStorageBytes caps the storage bytes of one step.
	MaxStorageBytes int64
}

// Violations counts the budget dimensions e exceeds (0 to 3).
func (b Budget) Violations(e Estimate) int {
	n := 0
	if b.MaxStepSeconds > 0 && e.Seconds > b.MaxStepSeconds {
		n++
	}
	if b.MaxWireBytes > 0 && e.WireBytes > b.MaxWireBytes {
		n++
	}
	if b.MaxStorageBytes > 0 && e.StorageBytes > b.MaxStorageBytes {
		n++
	}
	return n
}

// Feasible reports whether e fits inside every budgeted dimension.
func (b Budget) Feasible(e Estimate) bool { return b.Violations(e) == 0 }

// Overage is the normalized total by which e exceeds the budget: the sum
// over violated dimensions of (cost/cap - 1). Zero when feasible. The router
// minimizes this when no route is feasible at all.
func (b Budget) Overage(e Estimate) float64 {
	var v float64
	if b.MaxStepSeconds > 0 && e.Seconds > b.MaxStepSeconds {
		v += e.Seconds/b.MaxStepSeconds - 1
	}
	if b.MaxWireBytes > 0 && e.WireBytes > b.MaxWireBytes {
		v += float64(e.WireBytes)/float64(b.MaxWireBytes) - 1
	}
	if b.MaxStorageBytes > 0 && e.StorageBytes > b.MaxStorageBytes {
		v += float64(e.StorageBytes)/float64(b.MaxStorageBytes) - 1
	}
	return v
}

// Decision is one step's routing outcome, the unit of the decision log.
type Decision struct {
	// Step the decision routes.
	Step int
	// Backend chosen for the step.
	Backend Backend
	// Switched is set when Backend differs from the previous step's.
	Switched bool
	// Forced is set when the switch ignored the dwell clock: the current
	// backend predicted a budget violation or was reported failed.
	Forced bool
	// Reason is a short human-readable explanation ("dwell", "cheapest",
	// "budget", "failed", "probe", ...).
	Reason string
	// Predicted is the blended prior/posterior estimate per backend at
	// decision time (the scores the choice was made from).
	Predicted [NumBackends]Estimate
}

// String renders one decision-log line.
func (d Decision) String() string {
	mark := " "
	if d.Switched {
		mark = "*"
	}
	return fmt.Sprintf("step=%-4d route=%-9s%s %-8s insitu=%.3gs intransit=%.3gs/%dB posthoc=%.3gs/%dB",
		d.Step, d.Backend, mark, d.Reason,
		d.Predicted[InSitu].Seconds,
		d.Predicted[InTransit].Seconds, d.Predicted[InTransit].WireBytes,
		d.Predicted[PostHoc].Seconds, d.Predicted[PostHoc].StorageBytes)
}

// FormatDecisions renders a decision log, one line per decision.
func FormatDecisions(ds []Decision) string {
	lines := make([]string, len(ds))
	for i, d := range ds {
		lines[i] = d.String()
	}
	return strings.Join(lines, "\n")
}
