package world

import (
	"encoding/binary"
	"fmt"

	"gosensei/internal/fabric"
)

// Registry is the rendezvous point a launcher hosts: it accepts exactly one
// registration per rank of a world, confirms each placement with a Welcome,
// and — once the world is complete — broadcasts the rank -> listener-address
// table so the ranks can mesh directly. The registry then has no further
// role; it closes every registration connection and can be discarded.
type Registry struct {
	ls    fabric.Listener
	id    uint64
	epoch uint32
	size  int
}

// NewRegistry listens for registrations on network/addr (use "127.0.0.1:0"
// for an ephemeral TCP port).
func NewRegistry(network, addr string, id uint64, epoch uint32, size int) (*Registry, error) {
	if size <= 0 {
		return nil, fmt.Errorf("world: registry needs a positive size, got %d", size)
	}
	ls, err := fabric.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("world: registry listen: %w", err)
	}
	return &Registry{ls: ls, id: id, epoch: epoch, size: size}, nil
}

// Addr returns the registry's listener address — what workers pass as
// Config.Registry.
func (r *Registry) Addr() string { return r.ls.Addr().String() }

// Close releases the listener. Serve closes it on return; Close exists for
// callers that abandon a registry without serving it.
func (r *Registry) Close() error { return r.ls.Close() }

// Serve accepts registrations until every rank is present, broadcasts the
// address book, and returns the rank-indexed listener addresses. A
// registration from the wrong world, wrong epoch, out-of-range rank, or an
// already-claimed rank is refused (connection closed) without failing the
// world — that is the straggler-from-a-previous-launch case the epoch field
// exists for. Serve blocks until the world assembles or the listener is
// closed; bound it by closing the listener from a watchdog if needed.
func (r *Registry) Serve() ([]string, error) {
	defer func() { _ = r.ls.Close() }() // single-use rendezvous

	addrs := make([]string, r.size)
	conns := make([]fabric.Conn, r.size)
	defer func() {
		for _, c := range conns {
			if c != nil {
				_ = c.Close() // best-effort teardown of a completed rendezvous
			}
		}
	}()

	for have := 0; have < r.size; {
		conn, err := r.ls.Accept()
		if err != nil {
			return nil, fmt.Errorf("world: registry accept: %w", err)
		}
		h, _, err := fabric.AcceptHello(conn)
		if err != nil {
			_ = conn.Close()
			continue // a garbage or version-incompatible dialer is not fatal
		}
		rank := int(h.Rank)
		if h.Role != fabric.RoleRank || h.WorldID != r.id || h.WorldEpoch != r.epoch ||
			h.WorldSize != uint32(r.size) || rank < 0 || rank >= r.size ||
			conns[rank] != nil || h.PeerAddr == "" {
			_ = conn.Close()
			continue
		}
		// Welcome immediately — the dialer's handshake deadline must not wait
		// for the rest of the world to arrive.
		if err := fabric.SendWelcome(conn, fabric.Welcome{
			WorldID:    r.id,
			WorldEpoch: r.epoch,
			PeerRank:   uint32(rank),
		}, h.Version); err != nil {
			_ = conn.Close()
			continue
		}
		addrs[rank] = h.PeerAddr
		conns[rank] = conn
		have++
	}

	payload := appendWorldInfo(nil, r.id, r.epoch, addrs)
	frame := fabric.AppendFrame(nil, fabric.FrameWorldInfo, 0, payload)
	for rank, c := range conns {
		if _, err := c.Write(frame); err != nil {
			return nil, fmt.Errorf("world: registry address book to rank %d: %w", rank, err)
		}
	}
	return addrs, nil
}

// World-info payload layout (little-endian):
//
//	world id u64 | epoch u32 | count u32 | count * (addr len u16 | addr bytes)

// appendWorldInfo encodes the FrameWorldInfo payload.
func appendWorldInfo(dst []byte, id uint64, epoch uint32, addrs []string) []byte {
	var hdr [16]byte
	le := binary.LittleEndian
	le.PutUint64(hdr[0:8], id)
	le.PutUint32(hdr[8:12], epoch)
	le.PutUint32(hdr[12:16], uint32(len(addrs)))
	dst = append(dst, hdr[:]...)
	for _, a := range addrs {
		var l [2]byte
		le.PutUint16(l[:], uint16(len(a)))
		dst = append(dst, l[:]...)
		dst = append(dst, a...)
	}
	return dst
}

// decodeWorldInfo reverses appendWorldInfo.
func decodeWorldInfo(p []byte) (id uint64, epoch uint32, addrs []string, err error) {
	le := binary.LittleEndian
	if len(p) < 16 {
		return 0, 0, nil, fmt.Errorf("world: world-info payload too short (%d bytes)", len(p))
	}
	id = le.Uint64(p[0:8])
	epoch = le.Uint32(p[8:12])
	n := int(le.Uint32(p[12:16]))
	p = p[16:]
	addrs = make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(p) < 2 {
			return 0, 0, nil, fmt.Errorf("world: world-info truncated at entry %d", i)
		}
		l := int(le.Uint16(p[0:2]))
		if len(p) < 2+l {
			return 0, 0, nil, fmt.Errorf("world: world-info entry %d claims %d bytes, %d remain", i, l, len(p)-2)
		}
		addrs = append(addrs, string(p[2:2+l]))
		p = p[2+l:]
	}
	if len(p) != 0 {
		return 0, 0, nil, fmt.Errorf("world: world-info has %d trailing bytes", len(p))
	}
	return id, epoch, addrs, nil
}
