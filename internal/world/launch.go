package world

import (
	"fmt"
	"sync"

	"gosensei/internal/mpi"
)

// Launch assembles an n-rank world with every rank hosted by a goroutine of
// this process — the in-process twin of the cmd/gosensei-run N-process
// launch, and the shape the contract tests and benchmarks use. It hosts the
// registry, joins n workers over cfg.Network, runs fn on each rank's
// communicator, exchanges goodbyes, and returns the per-rank errors
// (all nil on success).
//
// cfg supplies the world identity and per-rank options; Rank and Registry
// are filled in per worker. Worlds sharing a loopback namespace must use
// distinct (ID, Epoch) pairs, since loopback listener names derive from
// them.
func Launch(n int, cfg Config, fn func(c *mpi.Comm) error) []error {
	errs := make([]error, n)
	reg, err := NewRegistry(cfg.Network, registryAddr(cfg), cfg.ID, cfg.Epoch, n)
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	regErr := make(chan error, 1)
	go func() {
		_, err := reg.Serve()
		regErr <- err
	}()

	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := cfg
			c.Rank, c.Size, c.Registry = rank, n, reg.Addr()
			w, err := Join(c)
			if err != nil {
				errs[rank] = err
				return
			}
			errs[rank] = w.Run(fn)
			if cerr := w.Close(); cerr != nil && errs[rank] == nil {
				errs[rank] = cerr
			}
		}(rank)
	}
	wg.Wait()
	// If a worker died before registering, Serve is still blocked in Accept;
	// closing the listener unblocks it (harmless if Serve already finished).
	_ = reg.Close()
	if err := <-regErr; err != nil {
		for i := range errs {
			if errs[i] == nil {
				errs[i] = fmt.Errorf("world: registry: %w", err)
			}
		}
	}
	return errs
}

// registryAddr picks the registry's listener address for Launch.
func registryAddr(cfg Config) string {
	if cfg.Network == "tcp" {
		return "127.0.0.1:0"
	}
	return fmt.Sprintf("world-%d-e%d-registry", cfg.ID, cfg.Epoch)
}
