package world

import (
	"fmt"
	"testing"

	"gosensei/internal/mpi"
)

// benchCollective times fn (one collective round per call) on every rank of
// an np-rank world over the given transport, excluding world assembly and
// shutdown from the timed region. "proc" is the in-process goroutine
// transport (mpi.Run); "loopback" and "tcp" are cross-process-shaped worlds
// over pipes and real sockets. The proc-vs-tcp delta is the wire cost of a
// collective round — what BENCH_8.json records.
func benchCollective(b *testing.B, transport string, np int, fn func(c *mpi.Comm) error) {
	b.Helper()
	ready := make(chan struct{})
	start := make(chan struct{})
	finished := make(chan struct{})
	rank := func(c *mpi.Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			close(ready)
		}
		<-start
		for i := 0; i < b.N; i++ {
			if err := fn(c); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			close(finished)
		}
		return nil
	}
	errc := make(chan []error, 1)
	go func() {
		if transport == "proc" {
			err := mpi.Run(np, rank)
			errc <- []error{err}
		} else {
			errc <- Launch(np, testBenchConfig(transport), rank)
		}
	}()
	<-ready
	b.ResetTimer()
	close(start)
	<-finished
	b.StopTimer()
	for _, err := range <-errc {
		if err != nil {
			b.Fatal(err)
		}
	}
}

func testBenchConfig(transport string) Config {
	return Config{Network: transport, ID: 9000 + worldIDs.Add(1), Epoch: 1}
}

// BenchmarkWorldAllreduce measures one Allreduce round per op: "small" (64
// float64, recursive doubling) isolates per-message latency; "large" (16384
// float64, Rabenseifner) adds bandwidth.
func BenchmarkWorldAllreduce(b *testing.B) {
	for _, size := range []struct {
		name  string
		elems int
	}{{"small", 64}, {"large", 16384}} {
		for _, transport := range []string{"proc", "loopback", "tcp"} {
			for _, np := range []int{2, 4, 8} {
				b.Run(fmt.Sprintf("%s/%s/P%d", size.name, transport, np), func(b *testing.B) {
					elems := size.elems
					benchCollective(b, transport, np, func(c *mpi.Comm) error {
						send := make([]float64, elems)
						for i := range send {
							send[i] = float64(c.Rank() + i)
						}
						recv := make([]float64, elems)
						return mpi.Allreduce(c, send, recv, mpi.OpSum)
					})
				})
			}
		}
	}
}

// BenchmarkWorldBarrier is the pure synchronization floor: no payload, just
// the dissemination rounds.
func BenchmarkWorldBarrier(b *testing.B) {
	for _, transport := range []string{"proc", "loopback", "tcp"} {
		for _, np := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/P%d", transport, np), func(b *testing.B) {
				benchCollective(b, transport, np, func(c *mpi.Comm) error {
					return c.Barrier()
				})
			})
		}
	}
}
