package world

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gosensei/internal/faultline"
	"gosensei/internal/mpi"
)

// The faultline world plan is the production FaultHook.
var _ FaultHook = (*faultline.WorldPlan)(nil)

// worldIDs hands out process-unique world identities so loopback listener
// names never collide across parallel tests.
var worldIDs atomic.Uint64

func testConfig(network string) Config {
	return Config{
		Network:     network,
		ID:          1000 + worldIDs.Add(1),
		Epoch:       1,
		JoinTimeout: 20 * time.Second,
		RecvTimeout: 20 * time.Second,
	}
}

// launch runs fn on every rank of an n-rank world over network and fails the
// test on any rank error.
func launch(t *testing.T, network string, n int, fn func(c *mpi.Comm) error) {
	t.Helper()
	for rank, err := range Launch(n, testConfig(network), fn) {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// TestPointToPoint exercises the raw envelope path: POD payloads in both
// directions, tag matching, and the gob fallback for pointer-carrying types.
func TestPointToPoint(t *testing.T) {
	for _, network := range []string{"loopback", "tcp"} {
		t.Run(network, func(t *testing.T) {
			launch(t, network, 2, func(c *mpi.Comm) error {
				if c.Rank() == 0 {
					mpi.Send(c, 1, 7, []float64{1.5, -2.25, 3.75})
					got, src, err := mpi.Recv[string](c, 1, 8)
					if err != nil {
						return err
					}
					if src != 1 || len(got) != 2 || got[0] != "staging" || got[1] != "world" {
						return fmt.Errorf("rank 0 got %v from %d", got, src)
					}
				} else {
					got, src, err := mpi.Recv[float64](c, 0, 7)
					if err != nil {
						return err
					}
					if src != 0 || len(got) != 3 || got[1] != -2.25 {
						return fmt.Errorf("rank 1 got %v from %d", got, src)
					}
					mpi.Send(c, 0, 8, []string{"staging", "world"})
				}
				return nil
			})
		})
	}
}

// TestRecvTypeMismatch pins the decode error when the receiver's element
// type disagrees with the envelope.
func TestRecvTypeMismatch(t *testing.T) {
	errs := Launch(2, testConfig("loopback"), func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			mpi.Send(c, 1, 3, []int32{1, 2})
			return nil
		}
		_, _, err := mpi.Recv[float32](c, 0, 3)
		if err == nil || !strings.Contains(err.Error(), "type mismatch") {
			return fmt.Errorf("want type mismatch error, got %v", err)
		}
		return nil
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// collectiveWorkout runs the full collective families on one communicator —
// both Allreduce algorithms (the vector length straddles the Rabenseifner
// crossover), segmented Bcast, Gather(v)/Scatter, Allgather(v), Alltoall,
// Scan, Barrier — and verifies every result against closed forms.
func collectiveWorkout(c *mpi.Comm) error {
	n, r := c.Size(), c.Rank()

	// Allreduce, short vector: recursive doubling.
	short := []float64{float64(r + 1), float64(2 * (r + 1))}
	recv := make([]float64, 2)
	if err := mpi.Allreduce(c, short, recv, mpi.OpSum); err != nil {
		return fmt.Errorf("allreduce short: %w", err)
	}
	tri := float64(n * (n + 1) / 2)
	if recv[0] != tri || recv[1] != 2*tri {
		return fmt.Errorf("allreduce short: got %v, want [%g %g]", recv, tri, 2*tri)
	}

	// Allreduce, long vector: Rabenseifner (reduce-scatter + allgather),
	// 3000 float64 = 24000 bytes > the 8KiB crossover.
	long := make([]float64, 3000)
	for i := range long {
		long[i] = float64(r+1) * float64(i%17)
	}
	longRecv := make([]float64, len(long))
	if err := mpi.Allreduce(c, long, longRecv, mpi.OpSum); err != nil {
		return fmt.Errorf("allreduce long: %w", err)
	}
	for i := range longRecv {
		want := tri * float64(i%17)
		if longRecv[i] != want {
			return fmt.Errorf("allreduce long[%d]: got %g, want %g", i, longRecv[i], want)
		}
	}

	// Bcast, past the 64KiB pipeline segment size so the binomial tree
	// actually pipelines: 10k float64 = 80KB.
	wide := make([]float64, 10000)
	if r == 0 {
		for i := range wide {
			wide[i] = math.Sqrt(float64(i))
		}
	}
	if err := mpi.Bcast(c, wide, 0); err != nil {
		return fmt.Errorf("bcast: %w", err)
	}
	for i := 0; i < len(wide); i += 997 {
		if wide[i] != math.Sqrt(float64(i)) {
			return fmt.Errorf("bcast[%d]: got %g", i, wide[i])
		}
	}

	// Gatherv (ragged) at a non-zero root.
	root := (n - 1) % n
	mine := make([]int32, r+1)
	for i := range mine {
		mine[i] = int32(r*100 + i)
	}
	parts, err := mpi.Gatherv(c, mine, root)
	if err != nil {
		return fmt.Errorf("gatherv: %w", err)
	}
	if r == root {
		for src, p := range parts {
			if len(p) != src+1 || p[0] != int32(src*100) {
				return fmt.Errorf("gatherv from %d: %v", src, p)
			}
		}
	}

	// Scatter from the same root.
	var scatterParts [][]int64
	if r == root {
		scatterParts = make([][]int64, n)
		for i := range scatterParts {
			scatterParts[i] = []int64{int64(i) * 7, int64(i) * 7}
		}
	}
	part, err := mpi.Scatter(c, scatterParts, root)
	if err != nil {
		return fmt.Errorf("scatter: %w", err)
	}
	if len(part) != 2 || part[0] != int64(r)*7 {
		return fmt.Errorf("scatter: rank %d got %v", r, part)
	}

	// Allgather (uniform) + Alltoall + Scan.
	all, err := mpi.Allgather(c, []int32{int32(r)})
	if err != nil {
		return fmt.Errorf("allgather: %w", err)
	}
	for i, v := range all {
		if v != int32(i) {
			return fmt.Errorf("allgather[%d]: got %d", i, v)
		}
	}
	outParts := make([][]int32, n)
	for i := range outParts {
		outParts[i] = []int32{int32(r*1000 + i)}
	}
	inParts, err := mpi.Alltoall(c, outParts)
	if err != nil {
		return fmt.Errorf("alltoall: %w", err)
	}
	for src, p := range inParts {
		if len(p) != 1 || p[0] != int32(src*1000+r) {
			return fmt.Errorf("alltoall from %d: %v", src, p)
		}
	}
	scanRecv := make([]float64, 1)
	if err := mpi.Scan(c, []float64{float64(r + 1)}, scanRecv, mpi.OpSum); err != nil {
		return fmt.Errorf("scan: %w", err)
	}
	if want := float64((r + 1) * (r + 2) / 2); scanRecv[0] != want {
		return fmt.Errorf("scan: got %g, want %g", scanRecv[0], want)
	}

	return c.Barrier()
}

// TestCollectivesLoopback runs the full collective workout across world
// sizes, including non-powers-of-two (the binomial/Rabenseifner remainder
// paths), over in-process pipes.
func TestCollectivesLoopback(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("P%d", n), func(t *testing.T) {
			t.Parallel()
			launch(t, "loopback", n, collectiveWorkout)
		})
	}
}

// TestCollectivesTCP runs the same workout over real sockets.
func TestCollectivesTCP(t *testing.T) {
	for _, n := range []int{3, 4} {
		n := n
		t.Run(fmt.Sprintf("P%d", n), func(t *testing.T) {
			launch(t, "tcp", n, collectiveWorkout)
		})
	}
}

// splitFingerprint is one rank's view of a Split: the sub-communicator
// placement plus a sub-collective result, enough to detect any divergence in
// rank mapping or routing between transports.
func splitFingerprint(c *mpi.Comm) (string, error) {
	// Three groups by color = rank % 3; reversed key order within a group.
	sub, err := c.Split(c.Rank()%3, -c.Rank())
	if err != nil {
		return "", err
	}
	sum := make([]int64, 1)
	if err := mpi.Allreduce(sub, []int64{int64(c.Rank() + 1)}, sum, mpi.OpSum); err != nil {
		return "", err
	}
	// Split the sub-communicator again: the ctx-derivation must stay unique
	// and deterministic one level down, too.
	leaf, err := sub.Split(sub.Rank()%2, sub.Rank())
	if err != nil {
		return "", err
	}
	leafIDs, err := mpi.Allgather(leaf, []int32{int32(c.Rank())})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("world=%d sub=%d/%d sum=%d leaf=%d/%d members=%v",
		c.Rank(), sub.Rank(), sub.Size(), sum[0], leaf.Rank(), leaf.Size(), leafIDs), nil
}

// TestSplitContract is the cross-transport contract: the same color/key
// function must produce identical sub-communicator rank maps — and identical
// sub-collective results — whether the world is goroutine ranks (proc),
// in-process pipes (loopback), or real sockets (tcp).
func TestSplitContract(t *testing.T) {
	const n = 8
	gather := func(run func(fn func(c *mpi.Comm) error) error) ([]string, error) {
		prints := make([]string, n)
		err := run(func(c *mpi.Comm) error {
			fp, err := splitFingerprint(c)
			if err != nil {
				return err
			}
			prints[c.Rank()] = fp
			return nil
		})
		return prints, err
	}

	proc, err := gather(func(fn func(c *mpi.Comm) error) error {
		return mpi.Run(n, fn)
	})
	if err != nil {
		t.Fatalf("proc: %v", err)
	}
	for _, network := range []string{"loopback", "tcp"} {
		got, err := gather(func(fn func(c *mpi.Comm) error) error {
			for rank, e := range Launch(n, testConfig(network), fn) {
				if e != nil {
					return fmt.Errorf("rank %d: %w", rank, e)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", network, err)
		}
		for r := range proc {
			if got[r] != proc[r] {
				t.Errorf("%s rank %d diverges from proc:\n  proc: %s\n  %s: %s",
					network, r, proc[r], network, got[r])
			}
		}
	}
}

// killAt is a test FaultHook: kill the rank at its op-th wire send.
type killAt struct {
	rank int
	op   int
	n    atomic.Int64
}

func (k *killAt) BeforeSend(rank int) (string, bool) {
	if rank != k.rank {
		return "", false
	}
	if k.n.Add(1) == int64(k.op) {
		return fmt.Sprintf("test:world.rankkill(rank=%d,op=%d)", k.rank, k.op), true
	}
	return "", false
}

// TestRankDeathPoisonsPeers kills rank 1 mid-collective and verifies the
// surviving ranks fail fast with a peer-death error (mailbox poisoning, not
// the deadlock timeout) while the dying rank surfaces the repro token.
func TestRankDeathPoisonsPeers(t *testing.T) {
	cfg := testConfig("loopback")
	cfg.RecvTimeout = time.Minute // far beyond the test deadline: failure must not come from here
	hook := &killAt{rank: 1, op: 2}
	cfg.Hook = hook

	start := time.Now()
	errs := Launch(4, cfg, func(c *mpi.Comm) error {
		recv := make([]float64, 1)
		for step := 0; step < 50; step++ {
			if err := mpi.Allreduce(c, []float64{1}, recv, mpi.OpSum); err != nil {
				return err
			}
		}
		return nil
	})
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "world.rankkill") {
		t.Errorf("rank 1: want rankkill token in error, got %v", errs[1])
	}
	survivors := 0
	for _, r := range []int{0, 2, 3} {
		if errs[r] != nil {
			survivors++
			if !strings.Contains(errs[r].Error(), "died") && !strings.Contains(errs[r].Error(), "closed") {
				t.Errorf("rank %d: want peer-death error, got %v", r, errs[r])
			}
		}
	}
	if survivors == 0 {
		t.Error("no surviving rank observed the death")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("death took %v to propagate; poisoning should fail fast", elapsed)
	}
}

// TestStragglerRefused verifies the epoch check: a rank from a previous
// incarnation is refused by the registry and cannot join the new world.
func TestStragglerRefused(t *testing.T) {
	cfg := testConfig("loopback")
	reg, err := NewRegistry(cfg.Network, registryAddr(cfg), cfg.ID, cfg.Epoch, 2)
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() {
		_, err := reg.Serve()
		served <- err
	}()

	stale := cfg
	stale.Rank, stale.Size, stale.Registry = 0, 2, reg.Addr()
	stale.Epoch = cfg.Epoch - 1 // previous incarnation
	stale.JoinTimeout = 2 * time.Second
	if _, err := Join(stale); err == nil {
		t.Error("stale-epoch rank joined the new world")
	}

	_ = reg.Close()
	<-served
}

// TestWorldInfoCodec round-trips and fault-checks the address-book payload.
func TestWorldInfoCodec(t *testing.T) {
	addrs := []string{"127.0.0.1:4001", "", "world-9-e2-rank-2"}
	p := appendWorldInfo(nil, 42, 7, addrs)
	id, epoch, got, err := decodeWorldInfo(p)
	if err != nil || id != 42 || epoch != 7 {
		t.Fatalf("decode: id=%d epoch=%d err=%v", id, epoch, err)
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Errorf("addr[%d]: got %q, want %q", i, got[i], addrs[i])
		}
	}
	for cut := 1; cut < len(p); cut += 5 {
		if _, _, _, err := decodeWorldInfo(p[:cut]); err == nil && cut < len(p) {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	if _, _, _, err := decodeWorldInfo(append(p, 0)); err == nil {
		t.Error("trailing byte not detected")
	}
}

// TestSingleRankWorld: a world of one needs no registry, no wire, and no
// goodbye partner.
func TestSingleRankWorld(t *testing.T) {
	w, err := Join(Config{Network: "loopback", Rank: 0, Size: 1, ID: worldIDs.Add(1), Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *mpi.Comm) error {
		recv := make([]float64, 1)
		if err := mpi.Allreduce(c, []float64{3}, recv, mpi.OpSum); err != nil {
			return err
		}
		if recv[0] != 3 {
			return fmt.Errorf("got %g", recv[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
