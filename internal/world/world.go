// Package world runs an mpi communicator across OS processes (and, in
// principle, machines) over internal/fabric connections — the sharding step
// that turns the paper's simulated P-scaling into measured P-scaling: every
// rank becomes a real process, and the binomial/ring/Rabenseifner collective
// schedules in internal/mpi execute their actual communication patterns over
// TCP.
//
// Topology: a tiny registry (usually hosted by the launcher, cmd/gosensei-
// run) accepts one registration per rank — a version-3 fabric Hello carrying
// the world identity (id, epoch, size), the claimed rank, and the rank's own
// listener address — answers each immediately with a Welcome confirming the
// placement, and, once all N ranks are present, broadcasts the complete
// rank -> address table (FrameWorldInfo). The ranks then mesh directly:
// rank i dials every rank j < i and accepts from every j > i, so each pair
// shares exactly one connection, authenticated by the same Hello/Welcome
// exchange. Point-to-point sends travel as FrameEnvelope frames; a clean
// shutdown exchanges FrameEOS with every peer, so a raw EOF is always a
// peer death and poisons the local mailbox (mpi.World.Fail) instead of
// waiting out the deadlock timeout.
//
// The same code runs over real sockets ("tcp") and the in-process loopback
// pipes ("loopback"), which is how the contract tests assert that a
// collective's result is bit-identical across transports.
package world

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gosensei/internal/fabric"
	"gosensei/internal/mpi"
)

// DefaultJoinTimeout bounds how long Join waits for the rest of the world
// to register, and Close waits for peers' EOS.
const DefaultJoinTimeout = 30 * time.Second

// FaultHook is the world-domain fault seam, consulted once per wire send by
// the hosting rank. A kill answer aborts the rank: connections close
// abruptly (no EOS, so peers observe a genuine death) and the rank panics
// with the returned token. Implemented by faultline's WorldPlan.
type FaultHook interface {
	// BeforeSend observes the rank's next wire send and returns the
	// fired-fault repro token and true when the rank must die now.
	BeforeSend(rank int) (token string, kill bool)
}

// Config describes one rank's membership in a world.
type Config struct {
	// Network selects the fabric: "tcp" or "loopback".
	Network string
	// Registry is the registry address to dial (host:port for tcp, the
	// registry's loopback name otherwise).
	Registry string
	// ID and Epoch identify the world incarnation; every member and the
	// registry must agree, so stragglers from a previous launch are refused.
	ID    uint64
	Epoch uint32
	// Rank and Size place this process in the world.
	Rank, Size int
	// JoinTimeout bounds the wait for the world to assemble (and for peers'
	// EOS at Close); 0 means DefaultJoinTimeout.
	JoinTimeout time.Duration
	// RecvTimeout overrides mpi's deadlock-detection timeout when > 0.
	RecvTimeout time.Duration
	// Faults is the mpi-domain injector (delay/dup/reorder/stall/crash),
	// applied to wire sends exactly as the in-process runtime applies it to
	// mailbox puts.
	Faults mpi.FaultInjector
	// Hook is the world-domain fault seam (rankkill); nil disables it.
	Hook FaultHook
	// WrapConn, when set, decorates every mesh connection (keyed by the
	// peer's rank) — the faultline conn-wrapper seam.
	WrapConn func(rank int, c fabric.Conn) fabric.Conn
}

// World is one process's membership: the mesh of peer connections plus the
// mpi world it feeds. It implements mpi.Transport.
type World struct {
	cfg  Config
	mw   *mpi.World
	comm *mpi.Comm
	// peersMu guards slot writes during meshing against a concurrent
	// teardown from an early-failing pump; steady-state Send reads need no
	// lock because Join's completion orders them after every write.
	peersMu sync.Mutex
	peers   []*peer // indexed by world rank; nil at cfg.Rank

	pumps    sync.WaitGroup
	shutdown atomic.Bool // Close in progress: read errors are expected
	failed   atomic.Bool
}

// peer is one mesh connection. The mutex serializes whole-frame writes; the
// scratch buffers keep the steady-state encode path allocation-free.
type peer struct {
	rank int
	mu   sync.Mutex
	conn fabric.Conn
	env  []byte
	buf  []byte
	seq  uint32
}

// send encodes env and writes it as one frame.
func (p *peer) send(env *mpi.Envelope) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		return fmt.Errorf("world: connection to rank %d is closed", p.rank)
	}
	p.env = mpi.AppendEnvelope(p.env[:0], env)
	p.buf = fabric.AppendFrame(p.buf[:0], fabric.FrameEnvelope, p.seq, p.env)
	p.seq++
	//lint:ignore lock-blocking the per-peer mutex exists to serialize whole-frame writes; nothing else is ever taken under it and the read pump never takes it, so the PR 3 lock-cycle shape cannot form (DESIGN.md 4.11)
	_, err := p.conn.Write(p.buf)
	return err
}

// sendEOS writes the clean-shutdown frame.
func (p *peer) sendEOS() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		return fmt.Errorf("world: connection to rank %d is closed", p.rank)
	}
	p.buf = fabric.AppendFrame(p.buf[:0], fabric.FrameEOS, p.seq, nil)
	p.seq++
	//lint:ignore lock-blocking same single-purpose write mutex as peer.send (DESIGN.md 4.11)
	_, err := p.conn.Write(p.buf)
	return err
}

// close tears the connection down; safe to call repeatedly.
func (p *peer) close() {
	p.mu.Lock()
	c := p.conn
	p.conn = nil
	p.mu.Unlock()
	if c != nil {
		_ = c.Close() // already failing or done; nothing is reading the result
	}
}

// Join assembles this rank's membership: listen for peers, register with the
// registry, receive the address book, and mesh with every peer. It returns
// once all Size-1 connections are up and pumping.
func Join(cfg Config) (*World, error) {
	if cfg.Size <= 0 || cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("world: invalid rank %d of %d", cfg.Rank, cfg.Size)
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = DefaultJoinTimeout
	}
	w := &World{cfg: cfg, peers: make([]*peer, cfg.Size)}
	var opts []mpi.Option
	if cfg.RecvTimeout > 0 {
		opts = append(opts, mpi.WithRecvTimeout(cfg.RecvTimeout))
	}
	if cfg.Faults != nil {
		opts = append(opts, mpi.WithFaults(cfg.Faults))
	}
	w.mw, w.comm = mpi.NewWorld(cfg.Rank, cfg.Size, w, opts...)
	if cfg.Size == 1 {
		return w, nil // a world of one has no wire
	}

	ls, err := fabric.Listen(cfg.Network, w.listenAddr())
	if err != nil {
		return nil, fmt.Errorf("world: rank %d listen: %w", cfg.Rank, err)
	}
	defer func() { _ = ls.Close() }() // mesh is fully connected before Join returns

	addrs, err := w.register(ls.Addr().String())
	if err != nil {
		return nil, err
	}

	// Mesh: accept the higher ranks while dialing the lower ones, so no
	// pairwise ordering can deadlock the 5s handshake windows.
	errc := make(chan error, 2)
	go func() { errc <- w.acceptPeers(ls) }()
	go func() { errc <- w.dialPeers(addrs) }()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			w.closePeers()
			return nil, err
		}
	}
	return w, nil
}

// listenAddr picks the rank's listener address: an ephemeral TCP port, or a
// collision-free loopback name derived from the world identity.
func (w *World) listenAddr() string {
	if w.cfg.Network == "tcp" {
		return "127.0.0.1:0"
	}
	return fmt.Sprintf("world-%d-e%d-rank-%d", w.cfg.ID, w.cfg.Epoch, w.cfg.Rank)
}

// register announces this rank to the registry and waits for the address
// book naming every member.
func (w *World) register(selfAddr string) ([]string, error) {
	cfg := w.cfg
	conn, err := fabric.Dial(cfg.Network, cfg.Registry)
	if err != nil {
		return nil, fmt.Errorf("world: rank %d dial registry: %w", cfg.Rank, err)
	}
	defer func() { _ = conn.Close() }() // the registry conn dies after the address book
	welcome, fr, err := fabric.DialHello(conn, fabric.Hello{
		Role:       fabric.RoleRank,
		Rank:       uint32(cfg.Rank),
		WorldID:    cfg.ID,
		WorldEpoch: cfg.Epoch,
		WorldSize:  uint32(cfg.Size),
		PeerAddr:   selfAddr,
	})
	if err != nil {
		return nil, fmt.Errorf("world: rank %d register: %w", cfg.Rank, err)
	}
	if welcome.WorldID != cfg.ID || welcome.WorldEpoch != cfg.Epoch || int(welcome.PeerRank) != cfg.Rank {
		return nil, fmt.Errorf("world: registry confirmed world %d epoch %d rank %d, want %d/%d/%d",
			welcome.WorldID, welcome.WorldEpoch, welcome.PeerRank, cfg.ID, cfg.Epoch, cfg.Rank)
	}
	// The address book arrives once the last rank registers; give the whole
	// world the join window to show up.
	if err := conn.SetReadDeadline(time.Now().Add(cfg.JoinTimeout)); err != nil {
		return nil, fmt.Errorf("world: rank %d arm join deadline: %w", cfg.Rank, err)
	}
	typ, _, payload, err := fr.Next()
	if err != nil {
		return nil, fmt.Errorf("world: rank %d await address book: %w", cfg.Rank, err)
	}
	if typ != fabric.FrameWorldInfo {
		return nil, fmt.Errorf("world: rank %d expected world-info, got %s", cfg.Rank, typ)
	}
	id, epoch, addrs, err := decodeWorldInfo(payload)
	if err != nil {
		return nil, err
	}
	if id != cfg.ID || epoch != cfg.Epoch || len(addrs) != cfg.Size {
		return nil, fmt.Errorf("world: address book names world %d epoch %d size %d, want %d/%d/%d",
			id, epoch, len(addrs), cfg.ID, cfg.Epoch, cfg.Size)
	}
	return addrs, nil
}

// acceptPeers accepts one mesh connection from every higher rank.
func (w *World) acceptPeers(ls fabric.Listener) error {
	cfg := w.cfg
	seen := make(map[int]bool)
	for have := 0; have < cfg.Size-1-cfg.Rank; {
		conn, err := ls.Accept()
		if err != nil {
			return fmt.Errorf("world: rank %d accept peer: %w", cfg.Rank, err)
		}
		h, fr, err := fabric.AcceptHello(conn)
		if err != nil {
			_ = conn.Close()
			return fmt.Errorf("world: rank %d peer handshake: %w", cfg.Rank, err)
		}
		from := int(h.Rank)
		if h.Role != fabric.RoleRank || h.WorldID != cfg.ID || h.WorldEpoch != cfg.Epoch ||
			from <= cfg.Rank || from >= cfg.Size || seen[from] {
			// A straggler from another incarnation (or a confused dialer):
			// refuse it without failing the world.
			_ = conn.Close()
			continue
		}
		if err := fabric.SendWelcome(conn, fabric.Welcome{WorldID: cfg.ID, WorldEpoch: cfg.Epoch, PeerRank: uint32(from)}, h.Version); err != nil {
			_ = conn.Close()
			return fmt.Errorf("world: rank %d welcome peer %d: %w", cfg.Rank, from, err)
		}
		seen[from] = true
		w.addPeer(from, conn, fr)
		have++
	}
	return nil
}

// dialPeers connects to every lower rank from the address book.
func (w *World) dialPeers(addrs []string) error {
	cfg := w.cfg
	for j := 0; j < cfg.Rank; j++ {
		conn, err := fabric.Dial(cfg.Network, addrs[j])
		if err != nil {
			return fmt.Errorf("world: rank %d dial rank %d: %w", cfg.Rank, j, err)
		}
		welcome, fr, err := fabric.DialHello(conn, fabric.Hello{
			Role:       fabric.RoleRank,
			Rank:       uint32(cfg.Rank),
			WorldID:    cfg.ID,
			WorldEpoch: cfg.Epoch,
			WorldSize:  uint32(cfg.Size),
		})
		if err != nil {
			_ = conn.Close()
			return fmt.Errorf("world: rank %d handshake with rank %d: %w", cfg.Rank, j, err)
		}
		if welcome.WorldID != cfg.ID || welcome.WorldEpoch != cfg.Epoch || int(welcome.PeerRank) != cfg.Rank {
			_ = conn.Close()
			return fmt.Errorf("world: rank %d confirmed as world %d epoch %d rank %d by rank %d, want %d/%d/%d",
				cfg.Rank, welcome.WorldID, welcome.WorldEpoch, welcome.PeerRank, j, cfg.ID, cfg.Epoch, cfg.Rank)
		}
		w.addPeer(j, conn, fr)
	}
	return nil
}

// addPeer installs a meshed connection and starts its read pump.
func (w *World) addPeer(rank int, conn fabric.Conn, fr *fabric.FrameReader) {
	if w.cfg.WrapConn != nil {
		// NOTE: fr has already buffered from the raw conn during the
		// handshake; wrapping only affects writes and future reads the
		// wrapper chooses to intercept.
		conn = w.cfg.WrapConn(rank, conn)
	}
	w.peersMu.Lock()
	w.peers[rank] = &peer{rank: rank, conn: conn}
	w.peersMu.Unlock()
	w.pumps.Add(1)
	go w.pump(rank, fr)
}

// pump decodes one peer's incoming frames into the local mailbox. It exits
// on the peer's EOS (clean) or any error (peer death -> fail the world,
// unless we are shutting down ourselves).
func (w *World) pump(rank int, fr *fabric.FrameReader) {
	defer w.pumps.Done()
	for {
		typ, _, payload, err := fr.Next()
		if err != nil {
			if !w.shutdown.Load() {
				w.fail(fmt.Errorf("world: rank %d died (connection from rank %d: %v)", rank, w.cfg.Rank, err))
			}
			return
		}
		switch typ {
		case fabric.FrameEnvelope:
			env, derr := mpi.DecodeEnvelope(payload)
			if derr != nil {
				w.fail(fmt.Errorf("world: envelope from rank %d: %w", rank, derr))
				return
			}
			if derr := w.mw.Deliver(&env); derr != nil {
				w.fail(derr)
				return
			}
		case fabric.FrameEOS:
			return
		default:
			// Unknown control traffic is ignored, the same forward-
			// compatibility stance the staging endpoint takes.
		}
	}
}

// fail poisons the local mailbox and tears down every connection so blocked
// sends unblock; the first failure wins.
func (w *World) fail(err error) {
	if !w.failed.CompareAndSwap(false, true) {
		return
	}
	w.mw.Fail(err)
	w.closePeers()
}

func (w *World) closePeers() {
	w.peersMu.Lock()
	peers := make([]*peer, len(w.peers))
	copy(peers, w.peers)
	w.peersMu.Unlock()
	for _, p := range peers {
		if p != nil {
			p.close()
		}
	}
}

// Comm returns the world communicator for the hosted rank.
func (w *World) Comm() *mpi.Comm { return w.comm }

// Run executes f as the hosted rank, converting a panic (rank crash, fault
// injection, transport failure) into an error the caller can surface — the
// same recovery contract mpi.Run gives goroutine ranks.
func (w *World) Run(f func(c *mpi.Comm) error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("world: rank %d panicked: %v", w.cfg.Rank, p)
		}
	}()
	return f(w.comm)
}

// Send implements mpi.Transport: route the envelope to its peer connection.
func (w *World) Send(env *mpi.Envelope) error {
	if w.cfg.Hook != nil {
		if token, kill := w.cfg.Hook.BeforeSend(w.cfg.Rank); kill {
			// Die abruptly: no EOS, connections torn down mid-protocol, so
			// peers observe a genuine rank death.
			w.shutdown.Store(true)
			w.closePeers()
			panic("faultline: fired " + token)
		}
	}
	if env.WDst < 0 || env.WDst >= len(w.peers) || w.peers[env.WDst] == nil {
		return fmt.Errorf("world: no connection to rank %d", env.WDst)
	}
	return w.peers[env.WDst].send(env)
}

// Close implements mpi.Transport: exchange EOS with every peer, bounded by
// the join timeout, then tear the mesh down. Call it after the rank's work
// is done; a non-nil error means some peer never said goodbye.
func (w *World) Close() error {
	w.shutdown.Store(true)
	var firstErr error
	for _, p := range w.peers {
		if p == nil {
			continue
		}
		if err := p.sendEOS(); err != nil && firstErr == nil && !w.failed.Load() {
			firstErr = fmt.Errorf("world: rank %d goodbye to rank %d: %w", w.cfg.Rank, p.rank, err)
		}
	}
	done := make(chan struct{})
	go func() {
		w.pumps.Wait()
		close(done)
	}()
	timeout := w.cfg.JoinTimeout
	if timeout <= 0 {
		timeout = DefaultJoinTimeout
	}
	select {
	case <-done:
	case <-time.After(timeout):
		if firstErr == nil {
			firstErr = fmt.Errorf("world: rank %d timed out waiting for peer goodbyes", w.cfg.Rank)
		}
	}
	w.closePeers()
	return firstErr
}
