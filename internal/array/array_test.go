package array

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	a := New[float64]("data", 3, 5)
	if a.Tuples() != 5 || a.Components() != 3 || a.Layout() != AOS {
		t.Fatalf("shape: tuples=%d comps=%d layout=%v", a.Tuples(), a.Components(), a.Layout())
	}
	for i := 0; i < 5; i++ {
		for c := 0; c < 3; c++ {
			if a.At(i, c) != 0 {
				t.Fatalf("not zero at (%d,%d)", i, c)
			}
		}
	}
}

func TestWrapAOSZeroCopy(t *testing.T) {
	buf := []float64{1, 2, 3, 4, 5, 6}
	a := WrapAOS("v", 2, buf)
	if a.Tuples() != 3 {
		t.Fatalf("tuples=%d", a.Tuples())
	}
	// Mutation through the wrapper is visible in the simulation buffer.
	a.Set(1, 1, 99)
	if buf[3] != 99 {
		t.Fatal("wrapper did not alias the buffer (AOS)")
	}
	// Mutation of the buffer is visible through the wrapper.
	buf[0] = -7
	if a.At(0, 0) != -7 {
		t.Fatal("buffer mutation invisible through wrapper (AOS)")
	}
}

func TestWrapSOAZeroCopy(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{4, 5, 6}
	a := WrapSOA("v", x, y)
	if a.Layout() != SOA || a.Components() != 2 || a.Tuples() != 3 {
		t.Fatalf("shape wrong: %v %d %d", a.Layout(), a.Components(), a.Tuples())
	}
	a.Set(2, 0, 42)
	if x[2] != 42 {
		t.Fatal("wrapper did not alias plane")
	}
	y[0] = -1
	if a.At(0, 1) != -1 {
		t.Fatal("plane mutation invisible")
	}
}

func TestAOSSOAEquivalence(t *testing.T) {
	// Property: an AOS array and an SOA array filled with the same tuples
	// agree element-wise under At, Value, Tuple, Range, and Magnitude.
	f := func(vals []float64) bool {
		n := len(vals) / 3
		if n == 0 {
			return true
		}
		vals = vals[:n*3]
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
		}
		aos := WrapAOS("a", 3, vals)
		planes := make([][]float64, 3)
		for c := range planes {
			planes[c] = make([]float64, n)
			for i := 0; i < n; i++ {
				planes[c][i] = vals[i*3+c]
			}
		}
		soa := WrapSOA("a", planes...)
		for i := 0; i < n; i++ {
			for c := 0; c < 3; c++ {
				if aos.At(i, c) != soa.At(i, c) {
					return false
				}
			}
			if aos.Magnitude(i) != soa.Magnitude(i) {
				return false
			}
		}
		for c := 0; c < 3; c++ {
			alo, ahi := aos.Range(c)
			slo, shi := soa.Range(c)
			if alo != slo || ahi != shi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(14))}); err != nil {
		t.Fatal(err)
	}
}

func TestToAOSCopies(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{3, 4}
	soa := WrapSOA("v", x, y)
	aos := soa.ToAOS()
	if aos.Layout() != AOS {
		t.Fatal("not AOS")
	}
	want := []float64{1, 3, 2, 4}
	for i, w := range want {
		if aos.RawAOS()[i] != w {
			t.Fatalf("aos=%v", aos.RawAOS())
		}
	}
	// It is a copy: mutating the source must not change it.
	x[0] = 100
	if aos.At(0, 0) != 1 {
		t.Fatal("ToAOS aliased an SOA source")
	}
	// ToAOS of an AOS array returns the same object (still zero-copy).
	if aos.ToAOS() != aos {
		t.Fatal("ToAOS of AOS array should be identity")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := WrapAOS("v", 1, []float64{1, 2, 3})
	b := a.Clone()
	b.SetValue(0, 0, 50)
	if a.At(0, 0) != 1 {
		t.Fatal("clone aliased original")
	}
	if b.Name() != "v" || b.Tuples() != 3 {
		t.Fatalf("clone metadata wrong: %s %d", b.Name(), b.Tuples())
	}
	s := WrapSOA("s", []int32{1}, []int32{2})
	sc := s.Clone()
	sc.SetValue(0, 1, 9)
	if s.At(0, 1) != 2 {
		t.Fatal("SOA clone aliased original")
	}
}

func TestDataTypes(t *testing.T) {
	if dt := New[float64]("", 1, 1).DataType(); dt != Float64 {
		t.Fatalf("float64 -> %v", dt)
	}
	if dt := New[float32]("", 1, 1).DataType(); dt != Float32 {
		t.Fatalf("float32 -> %v", dt)
	}
	if dt := New[int64]("", 1, 1).DataType(); dt != Int64 {
		t.Fatalf("int64 -> %v", dt)
	}
	if dt := New[int32]("", 1, 1).DataType(); dt != Int32 {
		t.Fatalf("int32 -> %v", dt)
	}
	if dt := New[uint8]("", 1, 1).DataType(); dt != Uint8 {
		t.Fatalf("uint8 -> %v", dt)
	}
}

func TestByteSize(t *testing.T) {
	if n := New[float64]("", 3, 10).ByteSize(); n != 240 {
		t.Fatalf("float64 bytes=%d", n)
	}
	if n := New[uint8]("", 1, 7).ByteSize(); n != 7 {
		t.Fatalf("uint8 bytes=%d", n)
	}
}

func TestRangeMagnitude(t *testing.T) {
	a := WrapAOS("v", 2, []float64{3, 4, 0, 0, -6, 8})
	lo, hi := a.Range(-1)
	if lo != 0 || hi != 10 {
		t.Fatalf("magnitude range = [%v, %v]", lo, hi)
	}
	lo, hi = a.Range(0)
	if lo != -6 || hi != 3 {
		t.Fatalf("comp0 range = [%v, %v]", lo, hi)
	}
}

func TestRangeEmpty(t *testing.T) {
	a := New[float64]("", 1, 0)
	lo, hi := a.Range(0)
	if lo != 0 || hi != 0 {
		t.Fatalf("empty range = [%v, %v]", lo, hi)
	}
}

func TestTupleCopy(t *testing.T) {
	a := WrapSOA("v", []float64{1, 2}, []float64{3, 4}, []float64{5, 6})
	out := make([]float64, 3)
	a.Tuple(1, out)
	if out[0] != 2 || out[1] != 4 || out[2] != 6 {
		t.Fatalf("tuple=%v", out)
	}
}

func TestRawAccessors(t *testing.T) {
	aos := WrapAOS("a", 1, []float64{1})
	if aos.RawAOS() == nil || aos.RawSOA() != nil {
		t.Fatal("AOS raw accessors wrong")
	}
	soa := WrapSOA("s", []float64{1})
	if soa.RawSOA() == nil || soa.RawAOS() != nil {
		t.Fatal("SOA raw accessors wrong")
	}
}

func TestWrapAOSBadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WrapAOS("v", 3, []float64{1, 2, 3, 4})
}

func TestWrapSOAMismatchedPlanesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WrapSOA("v", []float64{1, 2}, []float64{1})
}

func TestSetValueConversion(t *testing.T) {
	a := New[int32]("", 1, 1)
	a.SetValue(0, 0, 7.9)
	if a.At(0, 0) != 7 { // conversion truncates
		t.Fatalf("got %d", a.At(0, 0))
	}
}

func BenchmarkAtAOS(b *testing.B) {
	a := New[float64]("", 3, 1024)
	b.ReportAllocs()
	var s float64
	for i := 0; i < b.N; i++ {
		s += a.At(i%1024, i%3)
	}
	_ = s
}

func BenchmarkAtSOA(b *testing.B) {
	planes := [][]float64{make([]float64, 1024), make([]float64, 1024), make([]float64, 1024)}
	a := WrapSOA("", planes...)
	b.ReportAllocs()
	var s float64
	for i := 0; i < b.N; i++ {
		s += a.At(i%1024, i%3)
	}
	_ = s
}

type myFloat float64

func TestDataTypeNamedUnderlying(t *testing.T) {
	// Named types classify by underlying kind (the ~constraint).
	a := New[myFloat]("", 1, 1)
	if a.DataType() != Float64 {
		t.Fatalf("named float64 type -> %v", a.DataType())
	}
}

func TestSetNameAndString(t *testing.T) {
	a := New[float64]("old", 1, 1)
	a.SetName("new")
	if a.Name() != "new" {
		t.Fatal("rename lost")
	}
	for d, want := range map[DataType]string{
		Float64: "float64", Float32: "float32", Int64: "int64",
		Int32: "int32", Uint8: "uint8",
	} {
		if d.String() != want {
			t.Fatalf("%v != %s", d, want)
		}
	}
	if AOS.String() != "AOS" || SOA.String() != "SOA" {
		t.Fatal("layout strings")
	}
	if Float64.Size() != 8 || Uint8.Size() != 1 || Int32.Size() != 4 {
		t.Fatal("sizes")
	}
}

func TestNewInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New[float64]("", 0, 4)
}
