// Package array implements the typed data arrays of the reproduction's
// VTK-like data model.
//
// The SC16 SENSEI paper's key enabling mechanism is an enhancement to the VTK
// data model that lets multi-component arrays use arbitrary memory layouts —
// both array-of-structures (AOS, interleaved: xyzxyz...) and
// structure-of-arrays (SOA, planar: xxx... yyy... zzz...) — so that
// simulation buffers can be handed to analysis code with **zero copies**.
// This package reproduces that mechanism literally: WrapAOS and WrapSOA alias
// the caller's slices, and mutations through either view are visible through
// the other. The experiments that show "negligible overhead" depend on this
// being real aliasing, not simulated.
package array

import (
	"fmt"
	"math"
	"unsafe"
)

// DataType identifies the element type of an Array.
type DataType int

// Supported element types.
const (
	Float64 DataType = iota
	Float32
	Int64
	Int32
	Uint8
)

func (d DataType) String() string {
	switch d {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	case Int64:
		return "int64"
	case Int32:
		return "int32"
	case Uint8:
		return "uint8"
	}
	return fmt.Sprintf("DataType(%d)", int(d))
}

// Size returns the element size in bytes.
func (d DataType) Size() int64 {
	switch d {
	case Float64, Int64:
		return 8
	case Float32, Int32:
		return 4
	case Uint8:
		return 1
	}
	return 0
}

// Layout identifies the memory layout of a multi-component Array.
type Layout int

// Memory layouts.
const (
	// AOS interleaves components: t0c0 t0c1 ... t1c0 t1c1 ...
	AOS Layout = iota
	// SOA stores each component contiguously in its own plane.
	SOA
)

func (l Layout) String() string {
	if l == AOS {
		return "AOS"
	}
	return "SOA"
}

// Element constrains the element types storable in a Typed array.
type Element interface {
	~float64 | ~float32 | ~int64 | ~int32 | ~uint8
}

// Array is the layout- and type-erased view used by analysis code that does
// not care about the concrete element type. Values are exposed as float64.
type Array interface {
	// Name returns the array's name (e.g. "data", "velocity").
	Name() string
	// SetName renames the array.
	SetName(string)
	// Components returns the number of components per tuple.
	Components() int
	// Tuples returns the number of tuples.
	Tuples() int
	// DataType returns the element type.
	DataType() DataType
	// Layout returns the memory layout.
	Layout() Layout
	// ByteSize returns the total payload size in bytes.
	ByteSize() int64
	// Value returns component comp of tuple i, converted to float64.
	Value(i, comp int) float64
	// SetValue stores v (converted to the element type) at (i, comp).
	SetValue(i, comp int, v float64)
	// Range returns the [min, max] of component comp; if comp is negative it
	// returns the range of the L2 magnitude over all components.
	Range(comp int) (min, max float64)
	// Clone returns a deep copy with the same layout.
	Clone() Array
}

// Typed is a concrete array of element type T. It holds either an AOS buffer
// or SOA planes, in both cases possibly aliasing caller-owned memory.
type Typed[T Element] struct {
	name  string
	comps int
	lay   Layout
	aos   []T   // AOS: len == tuples*comps
	soa   [][]T // SOA: comps slices of len tuples
}

// New allocates a zero-filled AOS array.
func New[T Element](name string, comps, tuples int) *Typed[T] {
	if comps <= 0 || tuples < 0 {
		panic(fmt.Sprintf("array: invalid shape comps=%d tuples=%d", comps, tuples))
	}
	return &Typed[T]{name: name, comps: comps, lay: AOS, aos: make([]T, comps*tuples)}
}

// WrapAOS wraps an existing interleaved buffer without copying. The caller
// retains ownership; mutations are visible both ways. len(data) must be a
// multiple of comps.
func WrapAOS[T Element](name string, comps int, data []T) *Typed[T] {
	if comps <= 0 || len(data)%comps != 0 {
		panic(fmt.Sprintf("array: AOS buffer length %d not a multiple of comps %d", len(data), comps))
	}
	return &Typed[T]{name: name, comps: comps, lay: AOS, aos: data}
}

// WrapSOA wraps existing per-component planes without copying. All planes
// must have equal length.
func WrapSOA[T Element](name string, planes ...[]T) *Typed[T] {
	if len(planes) == 0 {
		panic("array: WrapSOA requires at least one plane")
	}
	n := len(planes[0])
	for i, p := range planes {
		if len(p) != n {
			panic(fmt.Sprintf("array: SOA plane %d has length %d, want %d", i, len(p), n))
		}
	}
	return &Typed[T]{name: name, comps: len(planes), lay: SOA, soa: planes}
}

// Name returns the array's name.
func (a *Typed[T]) Name() string { return a.name }

// SetName renames the array.
func (a *Typed[T]) SetName(n string) { a.name = n }

// Components returns the number of components per tuple.
func (a *Typed[T]) Components() int { return a.comps }

// Tuples returns the number of tuples.
func (a *Typed[T]) Tuples() int {
	if a.lay == AOS {
		return len(a.aos) / a.comps
	}
	return len(a.soa[0])
}

// DataType returns the element type of the array. It is derived from the
// element size and integer-ness so that named types (~float64 etc.) classify
// by their underlying kind.
func (a *Typed[T]) DataType() DataType {
	var z T
	size := unsafe.Sizeof(z)
	isInt := T(3)/T(2) == T(1) // integer division truncates
	switch {
	case size == 8 && isInt:
		return Int64
	case size == 8:
		return Float64
	case size == 4 && isInt:
		return Int32
	case size == 4:
		return Float32
	default:
		return Uint8
	}
}

// Layout returns the memory layout.
func (a *Typed[T]) Layout() Layout { return a.lay }

// ByteSize returns the payload size in bytes.
func (a *Typed[T]) ByteSize() int64 {
	return int64(a.Tuples()) * int64(a.comps) * a.DataType().Size()
}

// At returns component comp of tuple i with no conversion.
func (a *Typed[T]) At(i, comp int) T {
	if a.lay == AOS {
		return a.aos[i*a.comps+comp]
	}
	return a.soa[comp][i]
}

// Set stores v at (i, comp).
func (a *Typed[T]) Set(i, comp int, v T) {
	if a.lay == AOS {
		a.aos[i*a.comps+comp] = v
	} else {
		a.soa[comp][i] = v
	}
}

// Value implements Array.
func (a *Typed[T]) Value(i, comp int) float64 { return float64(a.At(i, comp)) }

// SetValue implements Array.
func (a *Typed[T]) SetValue(i, comp int, v float64) { a.Set(i, comp, T(v)) }

// Tuple copies tuple i into out, which must have length >= Components.
func (a *Typed[T]) Tuple(i int, out []T) {
	if a.lay == AOS {
		copy(out, a.aos[i*a.comps:(i+1)*a.comps])
		return
	}
	for c := 0; c < a.comps; c++ {
		out[c] = a.soa[c][i]
	}
}

// RawAOS returns the underlying interleaved buffer, or nil for SOA arrays.
// The returned slice aliases the array's storage.
func (a *Typed[T]) RawAOS() []T {
	if a.lay == AOS {
		return a.aos
	}
	return nil
}

// RawSOA returns the underlying planes, or nil for AOS arrays.
func (a *Typed[T]) RawSOA() [][]T {
	if a.lay == SOA {
		return a.soa
	}
	return nil
}

// Range implements Array. For comp < 0 it returns the range of the Euclidean
// magnitude across components (used for "velocity magnitude" pseudocolors).
func (a *Typed[T]) Range(comp int) (lo, hi float64) {
	n := a.Tuples()
	if n == 0 {
		return 0, 0
	}
	val := func(i int) float64 {
		if comp >= 0 {
			return float64(a.At(i, comp))
		}
		s := 0.0
		for c := 0; c < a.comps; c++ {
			v := float64(a.At(i, c))
			s += v * v
		}
		return math.Sqrt(s)
	}
	lo = val(0)
	hi = lo
	for i := 1; i < n; i++ {
		v := val(i)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Magnitude returns the Euclidean norm of tuple i across all components.
func (a *Typed[T]) Magnitude(i int) float64 {
	s := 0.0
	for c := 0; c < a.comps; c++ {
		v := float64(a.At(i, c))
		s += v * v
	}
	return math.Sqrt(s)
}

// Clone implements Array: a deep copy preserving layout.
func (a *Typed[T]) Clone() Array {
	out := &Typed[T]{name: a.name, comps: a.comps, lay: a.lay}
	if a.lay == AOS {
		out.aos = make([]T, len(a.aos))
		copy(out.aos, a.aos)
	} else {
		out.soa = make([][]T, len(a.soa))
		for i, p := range a.soa {
			out.soa[i] = make([]T, len(p))
			copy(out.soa[i], p)
		}
	}
	return out
}

// ToAOS returns an AOS-layout copy of the array (or the array itself if it is
// already AOS). Infrastructure adaptors that cannot consume SOA use this; the
// copy is what the paper's non-zero-copy paths pay for.
func (a *Typed[T]) ToAOS() *Typed[T] {
	if a.lay == AOS {
		return a
	}
	out := New[T](a.name, a.comps, a.Tuples())
	for i := 0; i < a.Tuples(); i++ {
		for c := 0; c < a.comps; c++ {
			out.Set(i, c, a.At(i, c))
		}
	}
	return out
}
