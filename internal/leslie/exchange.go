package leslie

import (
	"fmt"
	"math"

	"gosensei/internal/mpi"
)

// periodicAxis reports whether an axis has periodic boundaries: x and z are
// periodic, y has slip walls.
func periodicAxis(ax int) bool { return ax != 1 }

// neighbor returns the rank adjacent along ax in direction dir (-1 or +1),
// or -1 when the face is a physical wall.
func (s *Solver) neighbor(ax, dir int) int {
	c := s.pcoord
	c[ax] += dir
	if c[ax] < 0 || c[ax] >= s.pdims[ax] {
		if !periodicAxis(ax) {
			return -1
		}
		c[ax] = (c[ax] + s.pdims[ax]) % s.pdims[ax]
	}
	return c[0] + s.pdims[0]*(c[1]+s.pdims[1]*c[2])
}

const tagGhostBase = 200

// ExchangeGhosts fills the one-cell ghost layer on every face: periodic or
// inter-rank faces exchange owned boundary layers; y walls mirror the
// interior with the normal momentum flipped (slip condition).
func (s *Solver) ExchangeGhosts() error {
	for ax := 0; ax < 3; ax++ {
		lo := s.neighbor(ax, -1)
		hi := s.neighbor(ax, +1)
		// Pack owned boundary layers.
		loFace := s.packFace(ax, 0)
		hiFace := s.packFace(ax, s.n[ax]-1)
		// Self-neighbor (single rank along a periodic axis): copy directly.
		if lo == s.Comm.Rank() && hi == s.Comm.Rank() {
			s.unpackGhost(ax, -1, hiFace)
			s.unpackGhost(ax, +1, loFace)
			continue
		}
		tagUp := tagGhostBase + ax*2 // messages traveling toward +ax
		tagDown := tagGhostBase + ax*2 + 1
		if hi >= 0 {
			mpi.Send(s.Comm, hi, tagUp, hiFace)
		}
		if lo >= 0 {
			mpi.Send(s.Comm, lo, tagDown, loFace)
		}
		if lo >= 0 {
			data, _, err := mpi.Recv[float64](s.Comm, lo, tagUp)
			if err != nil {
				return fmt.Errorf("leslie: ghost exchange ax %d lo: %w", ax, err)
			}
			s.unpackGhost(ax, -1, data)
		} else {
			s.applyWall(ax, -1)
		}
		if hi >= 0 {
			data, _, err := mpi.Recv[float64](s.Comm, hi, tagDown)
			if err != nil {
				return fmt.Errorf("leslie: ghost exchange ax %d hi: %w", ax, err)
			}
			s.unpackGhost(ax, +1, data)
		} else {
			s.applyWall(ax, +1)
		}
	}
	return nil
}

// faceSize returns the cell count of a face orthogonal to ax.
func (s *Solver) faceSize(ax int) int {
	switch ax {
	case 0:
		return s.n[1] * s.n[2]
	case 1:
		return s.n[0] * s.n[2]
	default:
		return s.n[0] * s.n[1]
	}
}

// packFace serializes the owned layer at local index `layer` along ax for
// all conserved variables.
func (s *Solver) packFace(ax, layer int) []float64 {
	fs := s.faceSize(ax)
	out := make([]float64, fs*nvar)
	pos := 0
	s.forFace(ax, func(a, b int) {
		var id int
		switch ax {
		case 0:
			id = s.idx(layer, a, b)
		case 1:
			id = s.idx(a, layer, b)
		default:
			id = s.idx(a, b, layer)
		}
		for v := 0; v < nvar; v++ {
			out[pos] = s.U[v][id]
			pos++
		}
	})
	return out
}

// unpackGhost writes a received face into the ghost layer on side dir.
func (s *Solver) unpackGhost(ax, dir int, data []float64) {
	layer := -1
	if dir > 0 {
		layer = s.n[ax]
	}
	pos := 0
	s.forFace(ax, func(a, b int) {
		var id int
		switch ax {
		case 0:
			id = s.idx(layer, a, b)
		case 1:
			id = s.idx(a, layer, b)
		default:
			id = s.idx(a, b, layer)
		}
		for v := 0; v < nvar; v++ {
			s.U[v][id] = data[pos]
			pos++
		}
	})
}

// applyWall fills a wall-side ghost layer with the slip condition: mirror
// the adjacent interior cell and flip the wall-normal momentum.
func (s *Solver) applyWall(ax, dir int) {
	ghost := -1
	inner := 0
	if dir > 0 {
		ghost = s.n[ax]
		inner = s.n[ax] - 1
	}
	normal := ax + 1 // conserved index of the normal momentum
	s.forFace(ax, func(a, b int) {
		var gid, iid int
		switch ax {
		case 0:
			gid, iid = s.idx(ghost, a, b), s.idx(inner, a, b)
		case 1:
			gid, iid = s.idx(a, ghost, b), s.idx(a, inner, b)
		default:
			gid, iid = s.idx(a, b, ghost), s.idx(a, b, inner)
		}
		for v := 0; v < nvar; v++ {
			s.U[v][gid] = s.U[v][iid]
		}
		s.U[normal][gid] = -s.U[normal][gid]
	})
}

// forFace iterates the two in-face axes of a face orthogonal to ax.
func (s *Solver) forFace(ax int, f func(a, b int)) {
	var na, nb int
	switch ax {
	case 0:
		na, nb = s.n[1], s.n[2]
	case 1:
		na, nb = s.n[0], s.n[2]
	default:
		na, nb = s.n[0], s.n[1]
	}
	for b := 0; b < nb; b++ {
		for a := 0; a < na; a++ {
			f(a, b)
		}
	}
}

// TotalMass integrates rho over the global domain — conserved exactly by
// the scheme (periodic x/z, slip y), which the tests verify.
func (s *Solver) TotalMass() (float64, error) {
	cellVol := s.dx[0] * s.dx[1] * s.dx[2]
	local := 0.0
	for k := 0; k < s.n[2]; k++ {
		for j := 0; j < s.n[1]; j++ {
			for i := 0; i < s.n[0]; i++ {
				local += s.U[0][s.idx(i, j, k)]
			}
		}
	}
	local *= cellVol
	out := make([]float64, 1)
	if err := mpi.Allreduce(s.Comm, []float64{local}, out, mpi.OpSum); err != nil {
		return 0, err
	}
	return out[0], nil
}

// VorticityMagnitude computes |curl u| at every owned cell using central
// differences over the (already exchanged) ghosted velocity field. This is
// the derived quantity the AVF-LESLIE SENSEI adaptor exposes.
func (s *Solver) VorticityMagnitude() []float64 {
	out := make([]float64, s.LocalCells())
	vel := func(id, comp int) float64 { return s.U[comp+1][id] / s.U[0][id] }
	strides := [3]int{1, s.n[0] + 2, (s.n[0] + 2) * (s.n[1] + 2)}
	pos := 0
	for k := 0; k < s.n[2]; k++ {
		for j := 0; j < s.n[1]; j++ {
			for i := 0; i < s.n[0]; i++ {
				id := s.idx(i, j, k)
				d := func(comp, ax int) float64 {
					return (vel(id+strides[ax], comp) - vel(id-strides[ax], comp)) / (2 * s.dx[ax])
				}
				ox := d(2, 1) - d(1, 2) // dw/dy - dv/dz
				oy := d(0, 2) - d(2, 0) // du/dz - dw/dx
				oz := d(1, 0) - d(0, 1) // dv/dx - du/dy
				out[pos] = sqrt3(ox, oy, oz)
				pos++
			}
		}
	}
	return out
}

func sqrt3(a, b, c float64) float64 {
	return math.Sqrt(a*a + b*b + c*c)
}
