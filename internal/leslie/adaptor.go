package leslie

import (
	"fmt"

	"gosensei/internal/array"
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/metrics"
)

// DataAdaptor exposes the TML solver through the SENSEI interface. As the
// paper describes the AVF-LESLIE instrumentation, the adaptor "calculates
// vorticity magnitude and exposes data array slices (to remove ghost
// cells)": primitive fields wrap solver memory views, while vorticity is a
// derived array computed on demand.
type DataAdaptor struct {
	core.BaseDataAdaptor
	S *Solver
	// Memory, when set, accounts for derived-array allocations.
	Memory *metrics.Tracker

	mesh      *grid.ImageData
	vorticity []float64 // cached per step
}

// NewDataAdaptor wraps a solver.
func NewDataAdaptor(s *Solver) *DataAdaptor { return &DataAdaptor{S: s} }

// Update points the adaptor at the solver's current step.
func (d *DataAdaptor) Update() { d.SetStep(d.S.StepIndex(), d.S.Time()) }

// Mesh implements core.DataAdaptor: the local block as image data with the
// physical cell size; ghosts are excluded (the arrays below carry owned
// cells only).
func (d *DataAdaptor) Mesh(structureOnly bool) (grid.Dataset, error) {
	if d.mesh == nil {
		n := d.S.LocalDims()
		off := d.S.GlobalOffset()
		img := grid.NewImageData(grid.Extent{
			off[0], off[0] + n[0],
			off[1], off[1] + n[1],
			off[2], off[2] + n[2],
		})
		img.Spacing = d.S.dx
		d.mesh = img
	}
	return d.mesh, nil
}

// AddArray implements core.DataAdaptor. "vorticity" is derived on demand;
// "density" and "pressure" are extracted (the solver's ghosted layout
// prevents a direct wrap, so these are the paper's "data array slices").
func (d *DataAdaptor) AddArray(mesh grid.Dataset, assoc grid.Association, name string) error {
	if assoc != grid.CellData {
		return fmt.Errorf("leslie: only cell arrays are exposed, not %s %q", assoc, name)
	}
	img, ok := mesh.(*grid.ImageData)
	if !ok {
		return fmt.Errorf("leslie: mesh is %T", mesh)
	}
	switch name {
	case "vorticity":
		if d.vorticity == nil {
			if err := d.S.ExchangeGhosts(); err != nil {
				return err
			}
			d.vorticity = d.S.VorticityMagnitude()
			if d.Memory != nil {
				d.Memory.Alloc("leslie/vorticity", int64(len(d.vorticity))*8)
			}
		}
		img.Attributes(grid.CellData).Add(array.WrapAOS(name, 1, d.vorticity))
		return nil
	case "density", "pressure":
		vals := make([]float64, d.S.LocalCells())
		pos := 0
		for k := 0; k < d.S.n[2]; k++ {
			for j := 0; j < d.S.n[1]; j++ {
				for i := 0; i < d.S.n[0]; i++ {
					rho, _, _, _, p := d.S.primitive(d.S.idx(i, j, k))
					if name == "density" {
						vals[pos] = rho
					} else {
						vals[pos] = p
					}
					pos++
				}
			}
		}
		if d.Memory != nil {
			d.Memory.Alloc("leslie/"+name, int64(len(vals))*8)
		}
		img.Attributes(grid.CellData).Add(array.WrapAOS(name, 1, vals))
		return nil
	}
	return fmt.Errorf("leslie: no cell array %q (have vorticity, density, pressure)", name)
}

// ArrayNames implements core.DataAdaptor.
func (d *DataAdaptor) ArrayNames(assoc grid.Association) ([]string, error) {
	if assoc == grid.CellData {
		return []string{"vorticity", "density", "pressure"}, nil
	}
	return nil, nil
}

// ReleaseData implements core.DataAdaptor.
func (d *DataAdaptor) ReleaseData() error {
	d.mesh = nil
	d.vorticity = nil
	if d.Memory != nil {
		d.Memory.FreeAll("leslie/vorticity")
		d.Memory.FreeAll("leslie/density")
		d.Memory.FreeAll("leslie/pressure")
	}
	return nil
}
