// Package leslie implements the AVF-LESLIE proxy of this reproduction: a 3D
// compressible-flow finite-volume solver on a Cartesian grid simulating a
// temporally evolving planar mixing layer (TML) — the workload of the
// paper's §4.2.2 Titan study.
//
// Substitution note (see DESIGN.md): AVF-LESLIE solves the reactive
// multi-species compressible Navier-Stokes equations; this proxy solves the
// single-species compressible Euler equations with a Rusanov (local
// Lax-Friedrichs) flux and explicit time stepping. What the paper measures —
// solver cost per step versus in situ rendering cost, ghost-cell handling,
// vorticity-magnitude extraction, strong scaling — depends on the solver's
// structure (stencil sweeps + face exchanges per step), which is preserved,
// not on chemistry.
//
// The mixing layer: two streams slide past each other with a tanh velocity
// profile; seeded perturbations roll the layer up into vortex braids that
// break down toward turbulence. Periodic boundaries in x and z, slip walls
// in y.
package leslie

import (
	"fmt"
	"math"

	"gosensei/internal/grid"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
)

// Gamma is the ratio of specific heats (diatomic ideal gas).
const Gamma = 1.4

// nvar is the number of conserved variables: rho, rho*u, rho*v, rho*w, E.
const nvar = 5

// Config describes one TML run.
type Config struct {
	// GlobalCells is the global cell count per axis.
	GlobalCells [3]int
	// Domain is the physical size per axis (the paper uses 4pi x 4pi x 2pi).
	Domain [3]float64
	// CFL is the Courant number for the adaptive step (0 < CFL < 1).
	CFL float64
	// MachShear is the velocity of each stream in units of the sound speed.
	MachShear float64
	// ShearThickness is the initial vorticity thickness delta.
	ShearThickness float64
	// PerturbAmp seeds the instability.
	PerturbAmp float64
}

// DefaultConfig returns the TML setup scaled down from the paper's 1025^3.
func DefaultConfig(cells int) Config {
	return Config{
		GlobalCells:    [3]int{cells, cells, cells},
		Domain:         [3]float64{4 * math.Pi, 4 * math.Pi, 2 * math.Pi},
		CFL:            0.4,
		MachShear:      0.3,
		ShearThickness: 0.5,
		PerturbAmp:     0.02,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	for ax := 0; ax < 3; ax++ {
		if c.GlobalCells[ax] < 2 {
			return fmt.Errorf("leslie: axis %d needs >= 2 cells, got %d", ax, c.GlobalCells[ax])
		}
		if c.Domain[ax] <= 0 {
			return fmt.Errorf("leslie: axis %d domain must be positive", ax)
		}
	}
	if c.CFL <= 0 || c.CFL >= 1 {
		return fmt.Errorf("leslie: CFL must be in (0,1), got %v", c.CFL)
	}
	return nil
}

// Solver is the per-rank state: a slab-decomposed block with one ghost layer
// on every face, holding the five conserved fields.
type Solver struct {
	Comm *mpi.Comm
	Cfg  Config

	// Process grid and this rank's coordinates within it.
	pdims  [3]int
	pcoord [3]int
	// Local owned cells per axis and global offset (in cells).
	n   [3]int
	off [3]int
	// dx is the cell size per axis.
	dx [3]float64

	// U holds conserved variables with ghosts: U[v][(k)(nyg)(nxg) + ...]
	// where nxg = n[0]+2 etc.
	U [nvar][]float64

	step int
	time float64
	mem  *metrics.Tracker
}

// NewSolver decomposes the domain and applies the TML initial condition.
func NewSolver(c *mpi.Comm, cfg Config, mem *metrics.Tracker) (*Solver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mem == nil {
		mem = metrics.NewTracker()
	}
	px, py, pz := grid.Dims3(c.Size())
	s := &Solver{Comm: c, Cfg: cfg, pdims: [3]int{px, py, pz}, mem: mem}
	r := c.Rank()
	s.pcoord = [3]int{r % px, (r / px) % py, r / (px * py)}
	for ax := 0; ax < 3; ax++ {
		total := cfg.GlobalCells[ax]
		parts := s.pdims[ax]
		base := total / parts
		rem := total % parts
		i := s.pcoord[ax]
		s.n[ax] = base
		if i < rem {
			s.n[ax]++
		}
		s.off[ax] = i*base + min(i, rem)
		if s.n[ax] < 1 {
			return nil, fmt.Errorf("leslie: axis %d: %d cells cannot feed %d ranks", ax, total, parts)
		}
		s.dx[ax] = cfg.Domain[ax] / float64(total)
	}
	tot := (s.n[0] + 2) * (s.n[1] + 2) * (s.n[2] + 2)
	for v := 0; v < nvar; v++ {
		s.U[v] = make([]float64, tot)
	}
	mem.Alloc("leslie/fields", int64(nvar*tot)*8)
	s.applyInitialCondition()
	return s, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// idx converts local cell coordinates (including ghosts at -1 and n) to a
// linear index into the ghosted arrays.
func (s *Solver) idx(i, j, k int) int {
	nxg := s.n[0] + 2
	nyg := s.n[1] + 2
	return (k+1)*nxg*nyg + (j+1)*nxg + (i + 1)
}

// CellCenter returns the physical position of owned cell (i, j, k).
func (s *Solver) CellCenter(i, j, k int) (x, y, z float64) {
	return (float64(s.off[0]+i) + 0.5) * s.dx[0],
		(float64(s.off[1]+j) + 0.5) * s.dx[1],
		(float64(s.off[2]+k) + 0.5) * s.dx[2]
}

// applyInitialCondition sets the tanh shear profile with seeded
// perturbations; pressure is uniform so the sound speed is 1.
func (s *Solver) applyInitialCondition() {
	Ly := s.Cfg.Domain[1]
	delta := s.Cfg.ShearThickness
	uShear := s.Cfg.MachShear // sound speed is 1 at rho=1, p=1/Gamma
	p0 := 1.0 / Gamma
	for k := 0; k < s.n[2]; k++ {
		for j := 0; j < s.n[1]; j++ {
			for i := 0; i < s.n[0]; i++ {
				x, y, z := s.CellCenter(i, j, k)
				yc := y - Ly/2
				u := uShear * math.Tanh(2*yc/delta)
				// Seed the Kelvin-Helmholtz roll-up with the most unstable
				// streamwise mode plus a weaker oblique mode.
				envelope := math.Exp(-(yc / delta) * (yc / delta))
				v := s.Cfg.PerturbAmp * envelope *
					(math.Sin(2*math.Pi*x/s.Cfg.Domain[0]) + 0.5*math.Sin(4*math.Pi*x/s.Cfg.Domain[0]+2*math.Pi*z/s.Cfg.Domain[2]))
				w := 0.5 * s.Cfg.PerturbAmp * envelope * math.Sin(2*math.Pi*z/s.Cfg.Domain[2])
				rho := 1.0
				id := s.idx(i, j, k)
				s.U[0][id] = rho
				s.U[1][id] = rho * u
				s.U[2][id] = rho * v
				s.U[3][id] = rho * w
				s.U[4][id] = p0/(Gamma-1) + 0.5*rho*(u*u+v*v+w*w)
			}
		}
	}
}

// StepIndex returns the number of completed steps.
func (s *Solver) StepIndex() int { return s.step }

// Time returns the simulation time.
func (s *Solver) Time() float64 { return s.time }

// LocalCells returns this rank's owned cell count.
func (s *Solver) LocalCells() int { return s.n[0] * s.n[1] * s.n[2] }

// LocalDims returns the owned cells per axis.
func (s *Solver) LocalDims() [3]int { return s.n }

// GlobalOffset returns the rank's cell offset per axis.
func (s *Solver) GlobalOffset() [3]int { return s.off }

// Free releases the tracked field memory.
func (s *Solver) Free() { s.mem.FreeAll("leslie/fields") }

// primitive extracts (rho, u, v, w, p) at a linear index.
func (s *Solver) primitive(id int) (rho, u, v, w, p float64) {
	rho = s.U[0][id]
	inv := 1 / rho
	u = s.U[1][id] * inv
	v = s.U[2][id] * inv
	w = s.U[3][id] * inv
	kin := 0.5 * rho * (u*u + v*v + w*w)
	p = (Gamma - 1) * (s.U[4][id] - kin)
	return
}

// MaxWaveSpeed returns the global maximum |u|+c for the CFL condition.
func (s *Solver) MaxWaveSpeed() (float64, error) {
	local := 0.0
	for k := 0; k < s.n[2]; k++ {
		for j := 0; j < s.n[1]; j++ {
			for i := 0; i < s.n[0]; i++ {
				rho, u, v, w, p := s.primitive(s.idx(i, j, k))
				if rho <= 0 || p <= 0 {
					return 0, fmt.Errorf("leslie: non-physical state at (%d,%d,%d): rho=%v p=%v", i, j, k, rho, p)
				}
				c := math.Sqrt(Gamma * p / rho)
				m := math.Max(math.Abs(u), math.Max(math.Abs(v), math.Abs(w))) + c
				if m > local {
					local = m
				}
			}
		}
	}
	out := make([]float64, 1)
	if err := mpi.Allreduce(s.Comm, []float64{local}, out, mpi.OpMax); err != nil {
		return 0, err
	}
	return out[0], nil
}

// Step advances one explicit Euler step sized by the CFL condition. It
// performs one ghost exchange, then a dimension-by-dimension Rusanov flux
// update.
func (s *Solver) Step() error {
	if err := s.ExchangeGhosts(); err != nil {
		return err
	}
	smax, err := s.MaxWaveSpeed()
	if err != nil {
		return err
	}
	dmin := math.Min(s.dx[0], math.Min(s.dx[1], s.dx[2]))
	dt := s.Cfg.CFL * dmin / smax

	tot := len(s.U[0])
	var dU [nvar][]float64
	for v := 0; v < nvar; v++ {
		dU[v] = make([]float64, tot)
	}
	strides := [3]int{1, s.n[0] + 2, (s.n[0] + 2) * (s.n[1] + 2)}
	for ax := 0; ax < 3; ax++ {
		lam := dt / s.dx[ax]
		st := strides[ax]
		for k := 0; k < s.n[2]; k++ {
			for j := 0; j < s.n[1]; j++ {
				for i := 0; i < s.n[0]; i++ {
					id := s.idx(i, j, k)
					var fl, fr [nvar]float64
					s.rusanov(id-st, id, ax, &fl)
					s.rusanov(id, id+st, ax, &fr)
					for v := 0; v < nvar; v++ {
						dU[v][id] -= lam * (fr[v] - fl[v])
					}
				}
			}
		}
	}
	for v := 0; v < nvar; v++ {
		u := s.U[v]
		d := dU[v]
		for k := 0; k < s.n[2]; k++ {
			for j := 0; j < s.n[1]; j++ {
				base := s.idx(0, j, k)
				for i := 0; i < s.n[0]; i++ {
					u[base+i] += d[base+i]
				}
			}
		}
	}
	s.step++
	s.time += dt
	return nil
}

// rusanov computes the local Lax-Friedrichs flux between cells l and r along
// axis ax.
func (s *Solver) rusanov(l, r, ax int, out *[nvar]float64) {
	rhoL, uL, vL, wL, pL := s.primitive(l)
	rhoR, uR, vR, wR, pR := s.primitive(r)
	velL := [3]float64{uL, vL, wL}
	velR := [3]float64{uR, vR, wR}
	var fL, fR [nvar]float64
	eulerFlux(rhoL, velL, pL, s.U[4][l], ax, &fL)
	eulerFlux(rhoR, velR, pR, s.U[4][r], ax, &fR)
	cL := math.Sqrt(Gamma * math.Max(pL, 1e-12) / math.Max(rhoL, 1e-12))
	cR := math.Sqrt(Gamma * math.Max(pR, 1e-12) / math.Max(rhoR, 1e-12))
	alpha := math.Max(math.Abs(velL[ax])+cL, math.Abs(velR[ax])+cR)
	UL := [nvar]float64{s.U[0][l], s.U[1][l], s.U[2][l], s.U[3][l], s.U[4][l]}
	UR := [nvar]float64{s.U[0][r], s.U[1][r], s.U[2][r], s.U[3][r], s.U[4][r]}
	for v := 0; v < nvar; v++ {
		out[v] = 0.5*(fL[v]+fR[v]) - 0.5*alpha*(UR[v]-UL[v])
	}
}

// eulerFlux fills the inviscid flux along axis ax.
func eulerFlux(rho float64, vel [3]float64, p, E float64, ax int, f *[nvar]float64) {
	un := vel[ax]
	f[0] = rho * un
	f[1] = rho * vel[0] * un
	f[2] = rho * vel[1] * un
	f[3] = rho * vel[2] * un
	f[ax+1] += p
	f[4] = (E + p) * un
}
