package leslie

import (
	"math"
	"testing"

	_ "gosensei/internal/analysis" // register the histogram factory
	"gosensei/internal/core"
	"gosensei/internal/grid"
	"gosensei/internal/metrics"
	"gosensei/internal/mpi"
)

func smallConfig() Config {
	c := DefaultConfig(12)
	return c
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.CFL = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("CFL >= 1 accepted")
	}
	bad = good
	bad.GlobalCells[0] = 1
	if err := bad.Validate(); err == nil {
		t.Error("1-cell axis accepted")
	}
	bad = good
	bad.Domain[2] = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero domain accepted")
	}
}

func TestInitialConditionShape(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		s, err := NewSolver(c, smallConfig(), nil)
		if err != nil {
			return err
		}
		// Bottom stream flows -x, top stream flows +x.
		_, uBot, _, _, _ := s.primitive(s.idx(0, 0, 0))
		_, uTop, _, _, _ := s.primitive(s.idx(0, s.n[1]-1, 0))
		if uBot >= 0 || uTop <= 0 {
			t.Errorf("shear profile wrong: uBot=%v uTop=%v", uBot, uTop)
		}
		// Positive density and pressure everywhere.
		for k := 0; k < s.n[2]; k++ {
			for j := 0; j < s.n[1]; j++ {
				for i := 0; i < s.n[0]; i++ {
					rho, _, _, _, p := s.primitive(s.idx(i, j, k))
					if rho <= 0 || p <= 0 {
						t.Fatalf("bad state at (%d,%d,%d)", i, j, k)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMassConservation(t *testing.T) {
	err := mpi.Run(4, func(c *mpi.Comm) error {
		s, err := NewSolver(c, smallConfig(), nil)
		if err != nil {
			return err
		}
		m0, err := s.TotalMass()
		if err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			if err := s.Step(); err != nil {
				return err
			}
		}
		m1, err := s.TotalMass()
		if err != nil {
			return err
		}
		if rel := math.Abs(m1-m0) / m0; rel > 1e-12 {
			t.Errorf("mass drifted by %.3e", rel)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStability(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		s, err := NewSolver(c, smallConfig(), nil)
		if err != nil {
			return err
		}
		for i := 0; i < 20; i++ {
			if err := s.Step(); err != nil {
				return err
			}
		}
		if s.Time() <= 0 || s.StepIndex() != 20 {
			t.Errorf("step=%d time=%v", s.StepIndex(), s.Time())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestParallelMatchesSerial is the decisive ghost-exchange test: the same
// problem on 1 rank and on 8 ranks must produce bitwise-comparable fields.
func TestParallelMatchesSerial(t *testing.T) {
	cfg := smallConfig()
	steps := 4

	// Serial reference.
	ref := make(map[[3]int][5]float64)
	err := mpi.Run(1, func(c *mpi.Comm) error {
		s, err := NewSolver(c, cfg, nil)
		if err != nil {
			return err
		}
		for i := 0; i < steps; i++ {
			if err := s.Step(); err != nil {
				return err
			}
		}
		for k := 0; k < s.n[2]; k++ {
			for j := 0; j < s.n[1]; j++ {
				for i := 0; i < s.n[0]; i++ {
					id := s.idx(i, j, k)
					ref[[3]int{i, j, k}] = [5]float64{s.U[0][id], s.U[1][id], s.U[2][id], s.U[3][id], s.U[4][id]}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	err = mpi.Run(8, func(c *mpi.Comm) error {
		s, err := NewSolver(c, cfg, nil)
		if err != nil {
			return err
		}
		for i := 0; i < steps; i++ {
			if err := s.Step(); err != nil {
				return err
			}
		}
		off := s.GlobalOffset()
		for k := 0; k < s.n[2]; k++ {
			for j := 0; j < s.n[1]; j++ {
				for i := 0; i < s.n[0]; i++ {
					id := s.idx(i, j, k)
					want := ref[[3]int{off[0] + i, off[1] + j, off[2] + k}]
					got := [5]float64{s.U[0][id], s.U[1][id], s.U[2][id], s.U[3][id], s.U[4][id]}
					for v := 0; v < 5; v++ {
						if math.Abs(got[v]-want[v]) > 1e-10 {
							t.Errorf("rank %d cell (%d,%d,%d) var %d: got %v want %v",
								c.Rank(), off[0]+i, off[1]+j, off[2]+k, v, got[v], want[v])
							return nil
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVorticityConcentratedInShearLayer(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		s, err := NewSolver(c, smallConfig(), nil)
		if err != nil {
			return err
		}
		if err := s.ExchangeGhosts(); err != nil {
			return err
		}
		vort := s.VorticityMagnitude()
		// Mean vorticity in the center band must exceed the band near the
		// walls: the tanh layer concentrates du/dy at y = Ly/2.
		n := s.LocalDims()
		band := func(jlo, jhi int) float64 {
			sum, cnt := 0.0, 0
			for k := 0; k < n[2]; k++ {
				for j := jlo; j < jhi; j++ {
					for i := 0; i < n[0]; i++ {
						sum += vort[k*n[0]*n[1]+j*n[0]+i]
						cnt++
					}
				}
			}
			return sum / float64(cnt)
		}
		center := band(n[1]/2-1, n[1]/2+1)
		edge := band(0, 2)
		if center < 5*edge {
			t.Errorf("vorticity not concentrated: center=%v edge=%v", center, edge)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLayerGrowsOverTime(t *testing.T) {
	// The TML evolves: kinetic energy in the v component (initially tiny
	// seeded noise) must grow as the instability rolls up.
	err := mpi.Run(2, func(c *mpi.Comm) error {
		s, err := NewSolver(c, smallConfig(), nil)
		if err != nil {
			return err
		}
		vEnergy := func() (float64, error) {
			local := 0.0
			for k := 0; k < s.n[2]; k++ {
				for j := 0; j < s.n[1]; j++ {
					for i := 0; i < s.n[0]; i++ {
						_, _, v, _, _ := s.primitive(s.idx(i, j, k))
						local += v * v
					}
				}
			}
			out := make([]float64, 1)
			if err := mpi.Allreduce(c, []float64{local}, out, mpi.OpSum); err != nil {
				return 0, err
			}
			return out[0], nil
		}
		e0, err := vEnergy()
		if err != nil {
			return err
		}
		for i := 0; i < 30; i++ {
			if err := s.Step(); err != nil {
				return err
			}
		}
		e1, err := vEnergy()
		if err != nil {
			return err
		}
		if c.Rank() == 0 && e1 <= e0 {
			t.Errorf("instability did not grow: e0=%v e1=%v", e0, e1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAdaptorExposesArrays(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		mem := metrics.NewTracker()
		s, err := NewSolver(c, smallConfig(), nil)
		if err != nil {
			return err
		}
		if err := s.Step(); err != nil {
			return err
		}
		d := NewDataAdaptor(s)
		d.Memory = mem
		d.Update()
		if d.TimeStep() != 1 {
			t.Errorf("step=%d", d.TimeStep())
		}
		mesh, err := d.Mesh(false)
		if err != nil {
			return err
		}
		for _, name := range []string{"vorticity", "density", "pressure"} {
			if err := d.AddArray(mesh, grid.CellData, name); err != nil {
				return err
			}
			a := mesh.Attributes(grid.CellData).Get(name)
			if a == nil || a.Tuples() != s.LocalCells() {
				t.Errorf("array %q wrong", name)
			}
		}
		if err := d.AddArray(mesh, grid.CellData, "temperature"); err == nil {
			t.Error("unknown array accepted")
		}
		if err := d.AddArray(mesh, grid.PointData, "vorticity"); err == nil {
			t.Error("point association accepted")
		}
		names, _ := d.ArrayNames(grid.CellData)
		if len(names) != 3 {
			t.Errorf("names=%v", names)
		}
		if err := d.ReleaseData(); err != nil {
			return err
		}
		if mem.Current() != 0 {
			t.Errorf("derived arrays leaked: %s", mem.Breakdown())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAdaptorMeshExtentsTile(t *testing.T) {
	// The per-rank mesh extents must tile the global domain (cells owned
	// exactly once).
	err := mpi.Run(6, func(c *mpi.Comm) error {
		s, err := NewSolver(c, smallConfig(), nil)
		if err != nil {
			return err
		}
		d := NewDataAdaptor(s)
		mesh, err := d.Mesh(false)
		if err != nil {
			return err
		}
		cells := int64(mesh.NumberOfCells())
		out := make([]int64, 1)
		if err := mpi.Allreduce(c, []int64{cells}, out, mpi.OpSum); err != nil {
			return err
		}
		if out[0] != 12*12*12 {
			t.Errorf("cells sum=%d", out[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWithSENSEIBridgeAndHistogram(t *testing.T) {
	// End-to-end: the proxy instrumented once, analyzed via the bridge.
	err := mpi.Run(2, func(c *mpi.Comm) error {
		s, err := NewSolver(c, smallConfig(), nil)
		if err != nil {
			return err
		}
		b := core.NewBridge(c, nil, nil)
		doc := []byte(`<sensei><analysis type="histogram" array="vorticity" bins="8"/></sensei>`)
		if err := core.ConfigureFromXML(b, doc); err != nil {
			return err
		}
		d := NewDataAdaptor(s)
		for i := 0; i < 3; i++ {
			if err := s.Step(); err != nil {
				return err
			}
			d.Update()
			if _, err := b.Execute(d); err != nil {
				return err
			}
		}
		return b.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
}
