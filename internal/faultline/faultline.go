// Package faultline is a seeded, schedule-driven fault injector for the
// repo's four substrates: the in-process MPI runtime (internal/mpi), the
// staging wire (internal/fabric), the file-I/O model (internal/iosim), and
// the cross-process world layer (internal/world).
//
// The discipline is deterministic-simulation testing in the Jepsen /
// FoundationDB tradition: every fault a run experiences is named by a
// compact, human-readable schedule string
//
//	<seed>:<domain>.<kind>(k=v,...);<domain>.<kind>(...)
//
// that parses back to the identical schedule, so any failure observed under
// injection is replayed — not re-rolled — by exporting
// GOSENSEI_FAULT_SCHEDULE=<seed:spec> and re-running the test. Schedules are
// either written by hand or drawn from a seeded generator (Generate), and a
// running schedule records which faults actually fired (Trace) so two
// replays of the same schedule can be diffed.
//
// Faults are indexed by deterministic per-rank counters (the n-th message on
// an edge, the n-th write on a connection, the n-th block-file attempt), not
// by wall-clock time, which is what makes a schedule replayable. The hooks
// in the substrates are nil-checked pointers: a world, connection, or writer
// with no injector configured takes the exact pre-faultline code path.
//
// Tolerated vs fatal: every fault kind except mpi.crash and world.rankkill
// is tolerated by contract — the stack must produce bit-identical analysis
// results under it (the metamorphic property the end-to-end suite asserts).
// mpi.crash and world.rankkill are fatal by contract: the run must fail, but
// it must fail identically on every replay — rankkill is the cross-process
// twin of crash, killing a whole rank process (no EOS, connections torn down
// mid-protocol) so peers exercise the death-detection path.
package faultline

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// kindArgs names every fault kind and the canonical order of its integer
// arguments. Durations are milliseconds ("ms"); counters are 1-based.
var kindArgs = map[string][]string{
	// mpi: per-edge message faults (msg = 1-based message index on the
	// src->dst world-rank edge) and per-rank op faults (op = 1-based send
	// count of the rank).
	"mpi.delay":   {"src", "dst", "msg", "ms"}, // sender sleeps before delivery
	"mpi.dup":     {"src", "dst", "msg"},       // message delivered twice
	"mpi.reorder": {"src", "dst", "msg"},       // jumps ahead of other senders' queued messages
	"mpi.stall":   {"rank", "op", "ms"},        // rank sleeps before its op-th send
	"mpi.crash":   {"rank", "op"},              // rank panics at its op-th send (FATAL)

	// fabric: per-writer-rank connection faults, indexed by cumulative
	// counters that keep counting across reconnects.
	"fabric.kill":      {"rank", "write"},      // conn closed at the write-th write
	"fabric.short":     {"rank", "write"},      // half the frame hits the wire, then the conn dies
	"fabric.blackhole": {"rank", "write", "n"}, // n writes vanish "successfully", then the conn dies
	"fabric.hsdrop":    {"rank", "dial"},       // the dial-th handshake is dropped
	"fabric.blackout":  {"rank", "read", "ms"}, // the read-th read stalls for ms

	// world: cross-process rank faults, indexed by the rank's 1-based wire
	// send count (sends to a rank's own mailbox stay local and do not
	// count, so op indices are transport-level and replayable).
	"world.rankkill": {"rank", "op"}, // rank dies at its op-th wire send (FATAL)

	// io: per-rank block-file faults, indexed by cumulative attempt
	// counters (retries count as attempts).
	"io.enospc":    {"rank", "op", "n"},  // n consecutive write attempts fail like a full OST
	"io.shortread": {"rank", "op"},       // the op-th read attempt sees a truncated file
	"io.fsync":     {"rank", "op", "ms"}, // the op-th write attempt stalls for ms (fsync spike)
}

// Fault is one injected event. Args follow the canonical order in kindArgs.
type Fault struct {
	Domain string // "mpi", "fabric", "io"
	Kind   string // e.g. "delay", "kill", "enospc"
	Args   []int
}

// Name returns the qualified kind, e.g. "mpi.delay".
func (f Fault) Name() string { return f.Domain + "." + f.Kind }

// Fatal reports whether the fault is fatal by contract: the run is expected
// to fail (deterministically) rather than tolerate it.
func (f Fault) Fatal() bool {
	return f.Name() == "mpi.crash" || f.Name() == "world.rankkill"
}

// arg returns the named argument; it panics on an unknown name, which is a
// programming error (Parse validates every fault against kindArgs).
func (f Fault) arg(name string) int {
	for i, n := range kindArgs[f.Name()] {
		if n == name {
			return f.Args[i]
		}
	}
	panic(fmt.Sprintf("faultline: fault %s has no argument %q", f.Name(), name))
}

// String renders the canonical form, e.g. "mpi.delay(src=0,dst=1,msg=3,ms=2)".
func (f Fault) String() string {
	var b strings.Builder
	b.WriteString(f.Name())
	b.WriteByte('(')
	for i, n := range kindArgs[f.Name()] {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(f.Args[i]))
	}
	b.WriteByte(')')
	return b.String()
}

// Schedule is a seed plus an ordered fault list. The zero fault list is a
// valid (fault-free) schedule.
type Schedule struct {
	Seed   int64
	Faults []Fault
}

// String renders the canonical "<seed>:<fault>;<fault>" form; Parse is its
// exact inverse, so String output is the replay token tests print on
// failure.
func (s *Schedule) String() string {
	parts := make([]string, len(s.Faults))
	for i, f := range s.Faults {
		parts[i] = f.String()
	}
	return strconv.FormatInt(s.Seed, 10) + ":" + strings.Join(parts, ";")
}

// Fatal reports whether any fault in the schedule is fatal by contract.
func (s *Schedule) Fatal() bool {
	for _, f := range s.Faults {
		if f.Fatal() {
			return true
		}
	}
	return false
}

// Parse decodes a canonical schedule string. It is strict: argument names
// must appear in canonical order, so Parse(s.String()) round-trips and two
// textually different schedules are genuinely different.
func Parse(spec string) (*Schedule, error) {
	seedStr, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("faultline: schedule %q has no seed separator ':'", spec)
	}
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("faultline: schedule seed %q: %w", seedStr, err)
	}
	s := &Schedule{Seed: seed}
	if rest == "" {
		return s, nil
	}
	for _, part := range strings.Split(rest, ";") {
		f, err := parseFault(part)
		if err != nil {
			return nil, err
		}
		s.Faults = append(s.Faults, f)
	}
	return s, nil
}

func parseFault(part string) (Fault, error) {
	name, argsStr, ok := strings.Cut(part, "(")
	if !ok || !strings.HasSuffix(argsStr, ")") {
		return Fault{}, fmt.Errorf("faultline: fault %q: want name(args)", part)
	}
	argsStr = strings.TrimSuffix(argsStr, ")")
	names, known := kindArgs[name]
	if !known {
		return Fault{}, fmt.Errorf("faultline: unknown fault kind %q", name)
	}
	domain, kind, _ := strings.Cut(name, ".")
	f := Fault{Domain: domain, Kind: kind}
	fields := strings.Split(argsStr, ",")
	if len(fields) != len(names) {
		return Fault{}, fmt.Errorf("faultline: fault %q: want %d args %v, got %d", part, len(names), names, len(fields))
	}
	for i, field := range fields {
		k, v, ok := strings.Cut(field, "=")
		if !ok || k != names[i] {
			return Fault{}, fmt.Errorf("faultline: fault %q: arg %d must be %s=<int>", part, i, names[i])
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return Fault{}, fmt.Errorf("faultline: fault %q: arg %s: %w", part, k, err)
		}
		if n < 0 {
			return Fault{}, fmt.Errorf("faultline: fault %q: arg %s must be non-negative", part, k)
		}
		f.Args = append(f.Args, n)
	}
	return f, nil
}

// Menu bounds what Generate may draw: which substrates to hit and the
// geometry (world size, step count) that keeps generated counter indices in
// the range a pipeline actually reaches — a fault indexed past the run's
// last event never fires, which is legal but useless.
type Menu struct {
	MPI, Fabric, IO bool
	// Ranks is the world size (>= 2 when MPI is enabled: edge faults need
	// two distinct ranks). Steps is the pipeline's step count.
	Ranks, Steps int
	// MaxFaults caps the faults per schedule; 0 means 4. Generate draws
	// between 2 and MaxFaults.
	MaxFaults int
}

// Generate draws a seeded, tolerated-only schedule from the menu: same seed
// and menu, same schedule, on every platform. Fatal kinds (mpi.crash,
// world.rankkill) are never generated — they are for hand-written schedules
// that assert deterministic failure.
func Generate(seed int64, m Menu) *Schedule {
	if m.Ranks < 2 || m.Steps < 1 {
		panic(fmt.Sprintf("faultline: menu needs ranks>=2 and steps>=1, got ranks=%d steps=%d", m.Ranks, m.Steps))
	}
	var kinds []string
	if m.MPI {
		kinds = append(kinds, "mpi.delay", "mpi.dup", "mpi.reorder", "mpi.stall")
	}
	if m.Fabric {
		kinds = append(kinds, "fabric.kill", "fabric.short", "fabric.blackhole", "fabric.hsdrop", "fabric.blackout")
	}
	if m.IO {
		kinds = append(kinds, "io.enospc", "io.shortread", "io.fsync")
	}
	if len(kinds) == 0 {
		panic("faultline: menu enables no fault domain")
	}
	maxFaults := m.MaxFaults
	if maxFaults == 0 {
		maxFaults = 4
	}
	if maxFaults < 2 {
		maxFaults = 2
	}
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(maxFaults-1)
	s := &Schedule{Seed: seed}
	for i := 0; i < n; i++ {
		s.Faults = append(s.Faults, genFault(rng, kinds[rng.Intn(len(kinds))], m))
	}
	return s
}

func genFault(rng *rand.Rand, name string, m Menu) Fault {
	domain, kind, _ := strings.Cut(name, ".")
	f := Fault{Domain: domain, Kind: kind}
	// Argument ranges are chosen so the pipeline's cumulative counters
	// always pass the generated index (every fault fires exactly once):
	// each rank sends well over Steps messages per run, each fabric conn
	// sees at least Hello + Steps data frames + EOS writes and as many
	// reads (Welcome + one Release per message), and each io rank makes at
	// least Steps write and read attempts.
	rank := rng.Intn(m.Ranks)
	switch name {
	case "mpi.delay":
		dst := (rank + 1 + rng.Intn(m.Ranks-1)) % m.Ranks
		f.Args = []int{rank, dst, 1 + rng.Intn(m.Steps*4), 1 + rng.Intn(3)}
	case "mpi.dup", "mpi.reorder":
		dst := (rank + 1 + rng.Intn(m.Ranks-1)) % m.Ranks
		f.Args = []int{rank, dst, 1 + rng.Intn(m.Steps*4)}
	case "mpi.stall":
		f.Args = []int{rank, 1 + rng.Intn(m.Steps*4), 1 + rng.Intn(3)}
	case "fabric.kill", "fabric.short":
		f.Args = []int{rank, 2 + rng.Intn(m.Steps+1)}
	case "fabric.blackhole":
		f.Args = []int{rank, 2 + rng.Intn(m.Steps), 1 + rng.Intn(2)}
	case "fabric.hsdrop":
		f.Args = []int{rank, 1}
	case "fabric.blackout":
		f.Args = []int{rank, 1 + rng.Intn(m.Steps+1), 1 + rng.Intn(5)}
	case "io.enospc":
		f.Args = []int{rank, 1 + rng.Intn(m.Steps), 1 + rng.Intn(2)}
	case "io.shortread":
		f.Args = []int{rank, 1 + rng.Intn(m.Steps)}
	case "io.fsync":
		f.Args = []int{rank, 1 + rng.Intn(m.Steps), 1 + rng.Intn(5)}
	default:
		panic("faultline: genFault: unknown kind " + name)
	}
	return f
}
