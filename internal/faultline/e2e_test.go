// The metamorphic end-to-end suite: the oscillator -> analysis pipeline must
// produce bit-identical results under any tolerated fault schedule, and fatal
// schedules must fail identically on every replay.
//
// Every failure below prints a one-line GOSENSEI_FAULT_SCHEDULE=<seed:spec>
// token; exporting it re-runs the identical schedule:
//
//	GOSENSEI_FAULT_SCHEDULE='7:fabric.kill(rank=0,write=3)' \
//	    go test -run TestMetamorphic ./internal/faultline/
//
// GOSENSEI_FAULT_N overrides the number of generated schedules per test.
//
// This is an external test package: faultline imports mpi/fabric/iosim, and
// the pipeline here additionally pulls in adios and oscillator, which import
// mpi themselves.
package faultline_test

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gosensei/internal/adios"
	"gosensei/internal/analysis"
	"gosensei/internal/core"
	"gosensei/internal/fabric"
	"gosensei/internal/faultline"
	"gosensei/internal/grid"
	"gosensei/internal/iosim"
	"gosensei/internal/mpi"
	"gosensei/internal/oscillator"
)

const (
	e2eWriters = 2
	e2eSteps   = 3
	e2eDepth   = 2
	e2eBins    = 8
)

func e2eConfig() oscillator.Config {
	return oscillator.Config{
		GlobalCells: [3]int{8, 8, 8},
		DT:          0.1,
		Steps:       e2eSteps,
		Oscillators: oscillator.DefaultDeck(8),
	}
}

// faultf fails the test with the schedule's replay token first on the line,
// so any failure in this suite is reproducible by copy-paste.
func faultf(t *testing.T, s *faultline.Schedule, format string, args ...any) {
	t.Helper()
	t.Fatalf("GOSENSEI_FAULT_SCHEDULE='%s' replays this failure; %s", s, fmt.Sprintf(format, args...))
}

// e2eSchedules returns the schedules a metamorphic test runs: the single
// schedule named by GOSENSEI_FAULT_SCHEDULE when set (the replay path),
// otherwise GOSENSEI_FAULT_N (default 6) generated from consecutive seeds.
func e2eSchedules(t *testing.T, m faultline.Menu) []*faultline.Schedule {
	t.Helper()
	if spec := os.Getenv("GOSENSEI_FAULT_SCHEDULE"); spec != "" {
		s, err := faultline.Parse(spec)
		if err != nil {
			t.Fatalf("GOSENSEI_FAULT_SCHEDULE: %v", err)
		}
		return []*faultline.Schedule{s}
	}
	n := 6
	if v := os.Getenv("GOSENSEI_FAULT_N"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k < 1 {
			t.Fatalf("GOSENSEI_FAULT_N=%q: want a positive integer", v)
		}
		n = k
	}
	out := make([]*faultline.Schedule, n)
	for i := range out {
		out[i] = faultline.Generate(int64(i+1), m)
	}
	return out
}

func renderHist(r *analysis.HistogramResult) string {
	return fmt.Sprintf("step=%d min=%.17g max=%.17g counts=%v", r.Step, r.Min, r.Max, r.Counts)
}

// histRecorder runs after the histogram in the endpoint bridge and snapshots
// its per-step result, building the canonical output string the metamorphic
// property compares.
type histRecorder struct {
	h     *analysis.Histogram
	lines []string
}

func (r *histRecorder) Execute(core.DataAdaptor) (bool, error) {
	if r.h != nil && r.h.Last != nil {
		r.lines = append(r.lines, renderHist(r.h.Last))
	}
	return true, nil
}

func (r *histRecorder) Finalize() error { return nil }

// stagingRun drives the full in transit pipeline — oscillator writers ->
// FlexPath fabric -> endpoint histogram — under a fault schedule, returning
// the canonical analysis output and the schedule's fired-fault trace. Fabric
// options select the wire variant (codec preference, extract negotiation);
// every variant must produce the same canonical output.
func stagingRun(sched *faultline.Schedule, fabOpts ...adios.FabricOption) (string, []string, error) {
	run := sched.Start()
	cfg := e2eConfig()
	fab := adios.NewFabricNM(e2eWriters, 1, e2eDepth, fabOpts...)
	if fp := run.FabricPlan(); fp != nil {
		fab.SetConnWrapper(fp.WrapConn)
	}
	writerOpts := []mpi.Option{mpi.WithRecvTimeout(60 * time.Second)}
	if p := run.NewMPIPlan(); p != nil {
		writerOpts = append(writerOpts, mpi.WithFaults(p))
	}

	rec := &histRecorder{}
	var wg sync.WaitGroup
	var writerErr, endpointErr error
	var res *adios.EndpointResult
	wg.Add(2)
	go func() {
		defer wg.Done()
		writerErr = mpi.Run(e2eWriters, func(c *mpi.Comm) error {
			s, err := oscillator.NewSim(c, cfg, nil)
			if err != nil {
				return err
			}
			w := adios.NewWriter(c, &adios.FlexPathTransport{Fabric: fab})
			b := core.NewBridge(c, nil, nil)
			b.AddAnalysis("adios", w)
			d := oscillator.NewDataAdaptor(s)
			for i := 0; i < cfg.Steps; i++ {
				if err := s.Step(); err != nil {
					return err
				}
				d.Update()
				if _, err := b.Execute(d); err != nil {
					return err
				}
			}
			return b.Finalize()
		}, writerOpts...)
	}()
	go func() {
		defer wg.Done()
		res, endpointErr = adios.RunEndpoint(fab, func(b *core.Bridge) error {
			h := analysis.NewHistogram(b.Comm, "data", grid.CellData, e2eBins)
			rec.h = h
			b.AddAnalysis("histogram", h)
			b.AddAnalysis("record", rec)
			return nil
		}, mpi.WithRecvTimeout(60*time.Second))
	}()
	wg.Wait()
	_ = fab.Close()
	if writerErr != nil {
		return "", run.TraceLines(), fmt.Errorf("writer group: %w", writerErr)
	}
	if endpointErr != nil {
		return "", run.TraceLines(), fmt.Errorf("endpoint group: %w", endpointErr)
	}
	out := fmt.Sprintf("steps=%d\n%s", res.Steps, strings.Join(rec.lines, "\n"))
	return out, run.TraceLines(), nil
}

// posthocRun drives the post hoc pipeline — oscillator writers -> per-rank
// block files -> reduced reader group -> histogram — under a fault schedule.
// The canonical output includes a hash of every file on disk, so a retried
// write that corrupted or dropped a block cannot go unnoticed.
func posthocRun(dir string, sched *faultline.Schedule) (string, []string, error) {
	run := sched.Start()
	prev := iosim.SetFaults(nil)
	if p := run.IOPlan(); p != nil {
		iosim.SetFaults(p)
	}
	defer iosim.SetFaults(prev)

	cfg := e2eConfig()
	err := mpi.Run(e2eWriters, func(c *mpi.Comm) error {
		s, err := oscillator.NewSim(c, cfg, nil)
		if err != nil {
			return err
		}
		d := oscillator.NewDataAdaptor(s)
		for i := 0; i < cfg.Steps; i++ {
			if err := s.Step(); err != nil {
				return err
			}
			d.Update()
			mesh, err := d.Mesh(false)
			if err != nil {
				return err
			}
			if err := d.AddArray(mesh, grid.CellData, "data"); err != nil {
				return err
			}
			if _, err := iosim.WriteBlockFile(dir, c.Rank(), mesh.(*grid.ImageData), s.StepIndex(), s.Time()); err != nil {
				return err
			}
			_ = d.ReleaseData()
		}
		return nil
	})
	if err != nil {
		return "", run.TraceLines(), fmt.Errorf("write phase: %w", err)
	}

	steps, err := iosim.ListSteps(dir)
	if err != nil {
		return "", run.TraceLines(), err
	}
	var lines []string
	err = mpi.Run(1, func(c *mpi.Comm) error {
		h := analysis.NewHistogram(c, "data", grid.CellData, e2eBins)
		for _, step := range steps {
			mb := &grid.MultiBlock{}
			for r := 0; r < e2eWriters; r++ {
				img, _, _, err := iosim.ReadBlockFile(dir, step, r)
				if err != nil {
					return err
				}
				mb.Blocks = append(mb.Blocks, img)
			}
			res, err := h.Compute(step, mb)
			if err != nil {
				return err
			}
			lines = append(lines, renderHist(res))
		}
		return nil
	})
	if err != nil {
		return "", run.TraceLines(), fmt.Errorf("read phase: %w", err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", run.TraceLines(), err
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", run.TraceLines(), err
		}
		lines = append(lines, fmt.Sprintf("%s sha256=%x", name, sha256.Sum256(data)))
	}
	return strings.Join(lines, "\n"), run.TraceLines(), nil
}

// TestMetamorphicStaging asserts the tolerated-fault contract on the in
// transit path: N seeded schedules of mpi and fabric faults, each producing
// endpoint analysis output bit-identical to the fault-free run.
func TestMetamorphicStaging(t *testing.T) {
	clean, trace, err := stagingRun(&faultline.Schedule{Seed: 0})
	if err != nil {
		t.Fatalf("fault-free pipeline: %v", err)
	}
	if len(trace) != 0 {
		t.Fatalf("fault-free run has a trace: %v", trace)
	}
	if got := strings.Count(clean, "step="); got != e2eSteps {
		t.Fatalf("fault-free run recorded %d steps, want %d:\n%s", got, e2eSteps, clean)
	}
	menu := faultline.Menu{MPI: true, Fabric: true, Ranks: e2eWriters, Steps: e2eSteps}
	for _, sched := range e2eSchedules(t, menu) {
		sched := sched
		t.Run(fmt.Sprintf("seed=%d", sched.Seed), func(t *testing.T) {
			out, _, err := stagingRun(sched)
			if err != nil {
				faultf(t, sched, "pipeline failed under tolerated faults: %v", err)
			}
			if out != clean {
				faultf(t, sched, "output diverged from fault-free run\nclean:\n%s\nfaulty:\n%s", clean, out)
			}
		})
	}
}

// TestMetamorphicStagingVariants extends the metamorphic property across the
// negotiated wire variants: delta and flate codecs, and extract shipping,
// each compared against the RAW fault-free run — so the codec layer, the
// reconnect retransmit path, and the writer-side histogram reduction must
// all be invisible to the analysis. A hand-written kill schedule pins the
// hardest case deterministically: both writers lose their connection mid-run,
// reconnect, and must replay pending steps with the negotiated codec and a
// reset delta chain (the restarted endpoint has no previous-step reference).
func TestMetamorphicStagingVariants(t *testing.T) {
	clean, _, err := stagingRun(&faultline.Schedule{Seed: 0})
	if err != nil {
		t.Fatalf("fault-free raw pipeline: %v", err)
	}
	extractSpec := fabric.ExtractSpec{
		Kind:  fabric.ExtractHistogram,
		Assoc: uint8(grid.CellData),
		Bins:  uint32(e2eBins),
		Array: "data",
	}
	variants := []struct {
		name string
		opts []adios.FabricOption
	}{
		{"flate", []adios.FabricOption{adios.WithCodecs(fabric.CodecFlate)}},
		{"delta", []adios.FabricOption{adios.WithCodecs(fabric.CodecDelta)}},
		{"extract-delta", []adios.FabricOption{
			adios.WithExtract(extractSpec), adios.WithCodecs(fabric.CodecDelta)}},
	}
	menu := faultline.Menu{MPI: true, Fabric: true, Ranks: e2eWriters, Steps: e2eSteps}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			out, trace, err := stagingRun(&faultline.Schedule{Seed: 0}, v.opts...)
			if err != nil {
				t.Fatalf("fault-free %s pipeline: %v", v.name, err)
			}
			if len(trace) != 0 {
				t.Fatalf("fault-free run has a trace: %v", trace)
			}
			if out != clean {
				t.Fatalf("fault-free %s output diverged from raw staging\nraw:\n%s\n%s:\n%s",
					v.name, clean, v.name, out)
			}
			kill, err := faultline.Parse("17:fabric.kill(rank=0,write=3);fabric.kill(rank=1,write=4)")
			if err != nil {
				t.Fatal(err)
			}
			out, trace, err = stagingRun(kill, v.opts...)
			if err != nil {
				faultf(t, kill, "%s pipeline failed across reconnects: %v", v.name, err)
			}
			if !reflect.DeepEqual(trace, []string{
				"fabric.kill(rank=0,write=3) x1",
				"fabric.kill(rank=1,write=4) x1",
			}) {
				faultf(t, kill, "kills did not both fire (trace %v) — reconnect not exercised", trace)
			}
			if out != clean {
				faultf(t, kill, "%s output diverged across reconnects\nraw clean:\n%s\nfaulty:\n%s",
					v.name, clean, out)
			}
			for _, sched := range e2eSchedules(t, menu) {
				sched := sched
				t.Run(fmt.Sprintf("seed=%d", sched.Seed), func(t *testing.T) {
					out, _, err := stagingRun(sched, v.opts...)
					if err != nil {
						faultf(t, sched, "%s pipeline failed under tolerated faults: %v", v.name, err)
					}
					if out != clean {
						faultf(t, sched, "%s output diverged from raw fault-free run\nclean:\n%s\nfaulty:\n%s",
							v.name, clean, out)
					}
				})
			}
		})
	}
}

// TestMetamorphicPosthoc asserts the same contract on the post hoc path: io
// faults (ENOSPC retries, short reads, fsync spikes) must leave both the
// histogram results and the block files on disk bit-identical.
func TestMetamorphicPosthoc(t *testing.T) {
	clean, trace, err := posthocRun(t.TempDir(), &faultline.Schedule{Seed: 0})
	if err != nil {
		t.Fatalf("fault-free pipeline: %v", err)
	}
	if len(trace) != 0 {
		t.Fatalf("fault-free run has a trace: %v", trace)
	}
	menu := faultline.Menu{IO: true, Ranks: e2eWriters, Steps: e2eSteps}
	for _, sched := range e2eSchedules(t, menu) {
		sched := sched
		t.Run(fmt.Sprintf("seed=%d", sched.Seed), func(t *testing.T) {
			out, _, err := posthocRun(t.TempDir(), sched)
			if err != nil {
				faultf(t, sched, "pipeline failed under tolerated faults: %v", err)
			}
			if out != clean {
				faultf(t, sched, "output diverged from fault-free run\nclean:\n%s\nfaulty:\n%s", clean, out)
			}
		})
	}
}

// TestReproStringReplayIdentical pins the replay contract end to end: a
// schedule reconstructed from its own String() drives a second run whose
// analysis output AND fired-fault trace are identical to the first — the
// printed repro token really does re-run the same failure.
func TestReproStringReplayIdentical(t *testing.T) {
	spec := "11:fabric.kill(rank=0,write=3);fabric.hsdrop(rank=1,dial=1);mpi.stall(rank=1,op=2,ms=1)"
	s1, err := faultline.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s1.String() != spec {
		t.Fatalf("String() = %q, want %q", s1.String(), spec)
	}
	out1, tr1, err := stagingRun(s1)
	if err != nil {
		faultf(t, s1, "first run: %v", err)
	}
	s2, err := faultline.Parse(s1.String())
	if err != nil {
		t.Fatal(err)
	}
	out2, tr2, err := stagingRun(s2)
	if err != nil {
		faultf(t, s2, "replay run: %v", err)
	}
	if out1 != out2 {
		faultf(t, s1, "replay output diverged\nfirst:\n%s\nreplay:\n%s", out1, out2)
	}
	if !reflect.DeepEqual(tr1, tr2) {
		faultf(t, s1, "replay trace diverged\nfirst: %v\nreplay: %v", tr1, tr2)
	}
	// The pipeline's geometry guarantees all three faults fire exactly once:
	// every writer dials at least once, makes >= 5 wire writes, and sends >=
	// 2 mpi messages (one advance allreduce per step).
	want := []string{
		"fabric.hsdrop(rank=1,dial=1) x1",
		"fabric.kill(rank=0,write=3) x1",
		"mpi.stall(rank=1,op=2,ms=1) x1",
	}
	if !reflect.DeepEqual(tr1, want) {
		faultf(t, s1, "trace = %v, want %v", tr1, want)
	}
	// And the tolerated contract holds for the hand-written schedule too.
	clean, _, err := stagingRun(&faultline.Schedule{Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if out1 != clean {
		faultf(t, s1, "output diverged from fault-free run\nclean:\n%s\nfaulty:\n%s", clean, out1)
	}
}

// TestReproStringReplayIdenticalPosthoc is the io-domain twin: replaying a
// schedule of write/read faults yields identical histograms, identical file
// hashes, and an identical trace.
func TestReproStringReplayIdenticalPosthoc(t *testing.T) {
	spec := "13:io.enospc(rank=0,op=2,n=1);io.shortread(rank=1,op=1);io.fsync(rank=0,op=1,ms=2)"
	s1, err := faultline.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	out1, tr1, err := posthocRun(t.TempDir(), s1)
	if err != nil {
		faultf(t, s1, "first run: %v", err)
	}
	s2, err := faultline.Parse(s1.String())
	if err != nil {
		t.Fatal(err)
	}
	out2, tr2, err := posthocRun(t.TempDir(), s2)
	if err != nil {
		faultf(t, s2, "replay run: %v", err)
	}
	if out1 != out2 {
		faultf(t, s1, "replay output diverged\nfirst:\n%s\nreplay:\n%s", out1, out2)
	}
	if !reflect.DeepEqual(tr1, tr2) {
		faultf(t, s1, "replay trace diverged\nfirst: %v\nreplay: %v", tr1, tr2)
	}
	want := []string{
		"io.enospc(rank=0,op=2,n=1) x1",
		"io.fsync(rank=0,op=1,ms=2) x1",
		"io.shortread(rank=1,op=1) x1",
	}
	if !reflect.DeepEqual(tr1, want) {
		faultf(t, s1, "trace = %v, want %v", tr1, want)
	}
}

// TestFatalScheduleFailsIdentically pins the fatal contract: an mpi.crash
// schedule must make the run fail — and fail the same way, with the same
// trace, on every replay.
func TestFatalScheduleFailsIdentically(t *testing.T) {
	sched, err := faultline.Parse("9:mpi.crash(rank=0,op=2)")
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Fatal() {
		t.Fatal("schedule must classify as fatal")
	}
	runOnce := func() (string, []string) {
		run := sched.Start()
		err := mpi.Run(2, func(c *mpi.Comm) error {
			for i := 0; i < e2eSteps; i++ {
				if c.Rank() == 0 {
					mpi.Send(c, 1, 7, []int{i})
				} else if _, _, err := mpi.Recv[int](c, 0, 7); err != nil {
					return err
				}
			}
			return nil
		}, mpi.WithFaults(run.NewMPIPlan()), mpi.WithRecvTimeout(2*time.Second))
		if err == nil {
			faultf(t, sched, "fatal schedule did not fail the run")
		}
		// The panic error embeds a stack dump whose goroutine ids vary;
		// the first line is the deterministic part.
		msg, _, _ := strings.Cut(err.Error(), "\n")
		return msg, run.TraceLines()
	}
	msg1, tr1 := runOnce()
	msg2, tr2 := runOnce()
	if !strings.Contains(msg1, "mpi.crash(rank=0,op=2)") {
		faultf(t, sched, "failure does not name the injected fault: %s", msg1)
	}
	if msg1 != msg2 {
		faultf(t, sched, "replay failed differently\nfirst:  %s\nreplay: %s", msg1, msg2)
	}
	want := []string{"mpi.crash(rank=0,op=2) x1"}
	if !reflect.DeepEqual(tr1, want) || !reflect.DeepEqual(tr2, want) {
		faultf(t, sched, "traces = %v / %v, want %v", tr1, tr2, want)
	}
}
