// Metamorphic route-independence: a routed oscillator -> histogram pipeline
// whose router tours all three backends must produce analysis output
// bit-identical to the fault-free static in situ baseline — under any
// tolerated fault schedule — and the router's decision log must replay
// identically on every run (decisions key on step counters and scripted
// costs, never wall time). Failures print the decision log alongside the
// GOSENSEI_FAULT_SCHEDULE repro token.
package faultline_test

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"gosensei/internal/adios"
	"gosensei/internal/analysis"
	"gosensei/internal/core"
	"gosensei/internal/faultline"
	"gosensei/internal/grid"
	"gosensei/internal/iosim"
	"gosensei/internal/mpi"
	"gosensei/internal/oscillator"
	"gosensei/internal/route"
	"gosensei/internal/route/routetest"
)

const (
	routeWriters = 2
	routeSteps   = 8
	routeBins    = 8
)

func routeConfig() oscillator.Config {
	return oscillator.Config{
		GlobalCells: [3]int{8, 8, 8},
		DT:          0.1,
		Steps:       routeSteps,
		Oscillators: oscillator.DefaultDeck(8),
	}
}

// routeTourCosts scripts the router's cost stream so it deterministically
// tours all three backends: in situ is cheapest for steps 0-1, balloons at
// step 2 pushing the router onto in transit at step 3, which in turn
// balloons at step 5 pushing it post hoc at step 6. Pure in (step, backend):
// the decision log is identical on every run, faults or not.
func routeTourCosts(step int, b route.Backend) route.Estimate {
	cheap, dear := route.Estimate{Seconds: 1.0}, route.Estimate{Seconds: 5.0}
	switch b {
	case route.InSitu:
		if step < 2 {
			return cheap
		}
		return dear
	case route.InTransit:
		if step < 5 {
			return cheap
		}
		return dear
	default: // post hoc
		return cheap
	}
}

// routeRouter builds the rank-0 router for the tour: immediate posterior
// tracking (Alpha 1), a weak prior, a one-step dwell, and a thin margin, so
// the scripted cost shifts translate into switches within one step of
// detection.
func routeRouter() *route.Router {
	prior := [route.NumBackends]route.Estimate{
		route.InSitu:    {Seconds: 1.0},
		route.InTransit: {Seconds: 1.0},
		route.PostHoc:   {Seconds: 1.0},
	}
	return route.New(route.Config{
		Eligible:     []route.Backend{route.InSitu, route.InTransit, route.PostHoc},
		Start:        route.InSitu,
		MinDwell:     1,
		SwitchMargin: 0.1,
		Alpha:        1,
		PriorWeight:  1,
	}, prior)
}

// seqAnalysis runs a fixed sequence of adaptors as one (histogram, then its
// recorder, on the in situ route).
type seqAnalysis []core.AnalysisAdaptor

func (s seqAnalysis) Execute(d core.DataAdaptor) (bool, error) {
	for _, a := range s {
		if cont, err := a.Execute(d); err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

func (s seqAnalysis) Finalize() error {
	var firstErr error
	for _, a := range s {
		if err := a.Finalize(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// routedRun drives the routed pipeline under a fault schedule: oscillator
// writers whose bridge holds one core.Routed analysis with all three routes
// populated (in situ histogram, adios/FlexPath writer, iosim histogram
// replay), plus the staging endpoint. It returns the canonical analysis
// output (all steps' histogram lines, in step order, wherever they were
// computed) and the router's decision log.
func routedRun(dir string, sched *faultline.Schedule) (string, string, error) {
	run := sched.Start()
	prev := iosim.SetFaults(nil)
	if p := run.IOPlan(); p != nil {
		iosim.SetFaults(p)
	}
	defer iosim.SetFaults(prev)

	cfg := routeConfig()
	fab := adios.NewFabricNM(routeWriters, 1, e2eDepth)
	if fp := run.FabricPlan(); fp != nil {
		fab.SetConnWrapper(fp.WrapConn)
	}
	writerOpts := []mpi.Option{mpi.WithRecvTimeout(60 * time.Second)}
	if p := run.NewMPIPlan(); p != nil {
		writerOpts = append(writerOpts, mpi.WithFaults(p))
	}

	var (
		writerLines []string // in situ + post hoc lines, rank 0 only
		decisions   string
		endRec      = &histRecorder{}
	)
	var wg sync.WaitGroup
	var writerErr, endpointErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		writerErr = mpi.Run(routeWriters, func(c *mpi.Comm) error {
			s, err := oscillator.NewSim(c, cfg, nil)
			if err != nil {
				return err
			}
			var r *route.Router
			if c.Rank() == 0 {
				r = routeRouter()
			}
			rt := core.NewRouted(c, r, &routetest.ScriptMeter{Rank: c.Rank(), Costs: routeTourCosts})

			h := analysis.NewHistogram(c, "data", grid.CellData, routeBins)
			insituRec := &histRecorder{h: h}
			rt.SetRoute(route.InSitu, seqAnalysis{h, insituRec})
			rt.SetRoute(route.InTransit, adios.NewWriter(c, &adios.FlexPathTransport{Fabric: fab}))
			replay := iosim.NewHistogramReplay(c, dir, "data", grid.CellData, routeBins)
			rt.SetRoute(route.PostHoc, replay)

			b := core.NewBridge(c, nil, nil)
			b.AddAnalysis("routed", rt)
			d := oscillator.NewDataAdaptor(s)
			for i := 0; i < cfg.Steps; i++ {
				if err := s.Step(); err != nil {
					return err
				}
				d.Update()
				if _, err := b.Execute(d); err != nil {
					return err
				}
			}
			if err := b.Finalize(); err != nil {
				return err
			}
			if c.Rank() == 0 {
				writerLines = append(writerLines, insituRec.lines...)
				for _, res := range replay.Results {
					writerLines = append(writerLines, renderHist(res))
				}
				decisions = route.FormatDecisions(r.Decisions())
			}
			return nil
		}, writerOpts...)
	}()
	go func() {
		defer wg.Done()
		_, endpointErr = adios.RunEndpoint(fab, func(b *core.Bridge) error {
			h := analysis.NewHistogram(b.Comm, "data", grid.CellData, routeBins)
			endRec.h = h
			b.AddAnalysis("histogram", h)
			b.AddAnalysis("record", endRec)
			return nil
		}, mpi.WithRecvTimeout(60*time.Second))
	}()
	wg.Wait()
	_ = fab.Close()
	if writerErr != nil {
		return "", decisions, fmt.Errorf("writer group: %w", writerErr)
	}
	if endpointErr != nil {
		return "", decisions, fmt.Errorf("endpoint group: %w", endpointErr)
	}

	lines := append(append([]string{}, writerLines...), endRec.lines...)
	sort.Slice(lines, func(i, j int) bool { return lineStep(lines[i]) < lineStep(lines[j]) })
	return strings.Join(lines, "\n"), decisions, nil
}

// lineStep parses the step index from a renderHist line.
func lineStep(line string) int {
	var step int
	fmt.Sscanf(line, "step=%d", &step)
	return step
}

// insituBaseline runs the fault-free static in situ pipeline: every step's
// histogram computed inside the writers' bridge.
func insituBaseline() (string, error) {
	cfg := routeConfig()
	rec := &histRecorder{}
	err := mpi.Run(routeWriters, func(c *mpi.Comm) error {
		s, err := oscillator.NewSim(c, cfg, nil)
		if err != nil {
			return err
		}
		h := analysis.NewHistogram(c, "data", grid.CellData, routeBins)
		if c.Rank() == 0 {
			rec.h = h
		}
		b := core.NewBridge(c, nil, nil)
		b.AddAnalysis("histogram", h)
		if c.Rank() == 0 {
			b.AddAnalysis("record", rec)
		}
		d := oscillator.NewDataAdaptor(s)
		for i := 0; i < cfg.Steps; i++ {
			if err := s.Step(); err != nil {
				return err
			}
			d.Update()
			if _, err := b.Execute(d); err != nil {
				return err
			}
		}
		return b.Finalize()
	}, mpi.WithRecvTimeout(60*time.Second))
	if err != nil {
		return "", err
	}
	return strings.Join(rec.lines, "\n"), nil
}

// routeSchedules mirrors e2eSchedules with the issue's count of 5 generated
// schedules (GOSENSEI_FAULT_SCHEDULE still replays a single one).
func routeSchedules(t *testing.T, m faultline.Menu) []*faultline.Schedule {
	t.Helper()
	if spec := os.Getenv("GOSENSEI_FAULT_SCHEDULE"); spec != "" {
		s, err := faultline.Parse(spec)
		if err != nil {
			t.Fatalf("GOSENSEI_FAULT_SCHEDULE: %v", err)
		}
		return []*faultline.Schedule{s}
	}
	out := make([]*faultline.Schedule, 5)
	for i := range out {
		out[i] = faultline.Generate(int64(i+1), m)
	}
	return out
}

// TestMetamorphicRouteIndependence is the route-independence property: the
// routed pipeline's analysis output — with the router touring in situ, in
// transit, and post hoc mid-run — is bit-identical to the fault-free static
// in situ baseline, under the fault-free schedule and under 5 seeded
// tolerated fault schedules spanning mpi, fabric, and io faults. The
// decision log must also be identical across every run: routing is keyed on
// step counters and scripted costs, so faults may delay steps but can never
// change where they were routed.
func TestMetamorphicRouteIndependence(t *testing.T) {
	baseline, err := insituBaseline()
	if err != nil {
		t.Fatalf("static in situ baseline: %v", err)
	}
	if got := strings.Count(baseline, "step="); got != routeSteps {
		t.Fatalf("baseline recorded %d steps, want %d:\n%s", got, routeSteps, baseline)
	}

	cleanOut, cleanDec, err := routedRun(t.TempDir(), &faultline.Schedule{Seed: 0})
	if err != nil {
		t.Fatalf("fault-free routed pipeline: %v\ndecision log:\n%s", err, cleanDec)
	}
	if cleanOut != baseline {
		t.Fatalf("routed output diverged from static in situ baseline\nbaseline:\n%s\nrouted:\n%s\ndecision log:\n%s",
			baseline, cleanOut, cleanDec)
	}
	// The tour must actually have toured: all three backends appear.
	for _, b := range []route.Backend{route.InSitu, route.InTransit, route.PostHoc} {
		if !strings.Contains(cleanDec, "route="+b.String()) {
			t.Fatalf("decision log never routed %v:\n%s", b, cleanDec)
		}
	}

	menu := faultline.Menu{MPI: true, Fabric: true, IO: true, Ranks: routeWriters, Steps: routeSteps}
	for _, sched := range routeSchedules(t, menu) {
		sched := sched
		t.Run(fmt.Sprintf("seed=%d", sched.Seed), func(t *testing.T) {
			out, dec, err := routedRun(t.TempDir(), sched)
			if err != nil {
				faultf(t, sched, "routed pipeline failed under tolerated faults: %v\ndecision log:\n%s", err, dec)
			}
			if out != baseline {
				faultf(t, sched, "routed output diverged from baseline\nbaseline:\n%s\nfaulty:\n%s\ndecision log:\n%s",
					baseline, out, dec)
			}
			if dec != cleanDec {
				faultf(t, sched, "decision log not schedule-replayable\nclean:\n%s\nfaulty:\n%s", cleanDec, dec)
			}
		})
	}
}
