package faultline

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gosensei/internal/iosim"
	"gosensei/internal/mpi"
)

// Trace records which faults of a running schedule actually fired and how
// often. Its rendering is a sorted multiset, independent of firing order, so
// two replays of one schedule compare equal even though goroutine
// interleavings differ between runs.
type Trace struct {
	mu   sync.Mutex
	hits map[string]int
}

func (t *Trace) hit(f Fault) {
	t.mu.Lock()
	t.hits[f.String()]++
	t.mu.Unlock()
}

// Lines returns one "fault xN" line per fired fault, sorted.
func (t *Trace) Lines() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.hits))
	for spec, n := range t.hits {
		out = append(out, fmt.Sprintf("%s x%d", spec, n))
	}
	sort.Strings(out)
	return out
}

// Run is one execution of a schedule: live per-substrate plans sharing one
// trace. Start a fresh Run per execution — plans hold counters. A nil *Run
// is the fault-free baseline: every accessor returns nil, and the substrate
// hooks treat a nil plan as "injection disabled".
type Run struct {
	Schedule *Schedule
	trace    *Trace

	mpiFaults    []Fault
	fabricFaults []Fault
	ioFaults     []Fault
	worldFaults  []Fault

	fabric *FabricPlan
	io     *IOPlan
}

// Start instantiates the schedule for one execution.
func (s *Schedule) Start() *Run {
	r := &Run{Schedule: s, trace: &Trace{hits: map[string]int{}}}
	for _, f := range s.Faults {
		switch f.Domain {
		case "mpi":
			r.mpiFaults = append(r.mpiFaults, f)
		case "fabric":
			r.fabricFaults = append(r.fabricFaults, f)
		case "io":
			r.ioFaults = append(r.ioFaults, f)
		case "world":
			r.worldFaults = append(r.worldFaults, f)
		}
	}
	if len(r.fabricFaults) > 0 {
		r.fabric = newFabricPlan(r.fabricFaults, r.trace)
	}
	if len(r.ioFaults) > 0 {
		r.io = newIOPlan(r.ioFaults, r.trace)
	}
	return r
}

// NewMPIPlan returns a fresh MPI plan, or nil when the schedule carries no
// mpi faults (or r is nil). Each mpi.Run world needs its own plan — the
// counters are per world — while all plans of one Run share the trace.
func (r *Run) NewMPIPlan() *MPIPlan {
	if r == nil || len(r.mpiFaults) == 0 {
		return nil
	}
	return &MPIPlan{
		faults: r.mpiFaults,
		trace:  r.trace,
		edges:  map[[2]int]uint64{},
		ops:    map[int]uint64{},
	}
}

// NewWorldPlan returns a fresh world plan, or nil when the schedule carries
// no world faults (or r is nil). Like MPI plans it is per-world: the send
// counters restart with each world incarnation, so a relaunch replays the
// same schedule from op 1. The returned plan implements world.FaultHook.
func (r *Run) NewWorldPlan() *WorldPlan {
	if r == nil || len(r.worldFaults) == 0 {
		return nil
	}
	return &WorldPlan{faults: r.worldFaults, trace: r.trace, ops: map[int]uint64{}}
}

// FabricPlan returns the run's fabric plan (nil when the schedule carries no
// fabric faults or r is nil). Unlike MPI plans it is a singleton: its
// counters are per writer rank and cumulative across reconnects, which is
// exactly the identity a reconnecting connection needs.
func (r *Run) FabricPlan() *FabricPlan {
	if r == nil {
		return nil
	}
	return r.fabric
}

// IOPlan returns the run's io plan (nil when the schedule carries no io
// faults or r is nil).
func (r *Run) IOPlan() *IOPlan {
	if r == nil {
		return nil
	}
	return r.io
}

// TraceLines returns the fired-fault multiset so far (nil-safe).
func (r *Run) TraceLines() []string {
	if r == nil {
		return nil
	}
	return r.trace.Lines()
}

// MPIPlan implements mpi.FaultInjector for one world. Message faults are
// indexed by the 1-based message count of a (src,dst) world-rank edge; rank
// faults by the 1-based total send count of a world rank. Both counters are
// functions of the program alone, so a fault fires at the same logical point
// on every replay regardless of goroutine scheduling.
type MPIPlan struct {
	faults []Fault
	trace  *Trace

	mu    sync.Mutex
	edges map[[2]int]uint64 // (src,dst) world ranks -> messages sent
	ops   map[int]uint64    // src world rank -> total sends
}

// BeforeSend implements mpi.FaultInjector.
func (p *MPIPlan) BeforeSend(src, dst, tag int) mpi.SendFault {
	if p == nil {
		return mpi.SendFault{}
	}
	p.mu.Lock()
	p.edges[[2]int{src, dst}]++
	seq := p.edges[[2]int{src, dst}]
	p.ops[src]++
	op := p.ops[src]
	out := mpi.SendFault{Seq: seq}
	for _, f := range p.faults {
		switch f.Kind {
		case "stall":
			if f.arg("rank") == src && uint64(f.arg("op")) == op {
				out.Stall = time.Duration(f.arg("ms")) * time.Millisecond
				p.trace.hit(f)
			}
		case "crash":
			if f.arg("rank") == src && uint64(f.arg("op")) == op {
				out.Crash = fmt.Sprintf("faultline: injected crash (%s)", f)
				p.trace.hit(f)
			}
		case "delay":
			if f.arg("src") == src && f.arg("dst") == dst && uint64(f.arg("msg")) == seq {
				out.Delay = time.Duration(f.arg("ms")) * time.Millisecond
				p.trace.hit(f)
			}
		case "dup":
			if f.arg("src") == src && f.arg("dst") == dst && uint64(f.arg("msg")) == seq {
				out.Dup = true
				p.trace.hit(f)
			}
		case "reorder":
			if f.arg("src") == src && f.arg("dst") == dst && uint64(f.arg("msg")) == seq {
				out.Reorder = true
				p.trace.hit(f)
			}
		}
	}
	p.mu.Unlock()
	return out
}

// WorldPlan implements world.FaultHook for one cross-process world. Kills
// are indexed by the 1-based wire-send count of a rank — a transport-level
// counter that matches across in-process (loopback) and N-process (tcp)
// launches of the same pipeline, so a schedule reproduced under `go test`
// fires at the same logical point inside a real worker process.
type WorldPlan struct {
	faults []Fault
	trace  *Trace

	mu  sync.Mutex
	ops map[int]uint64 // world rank -> wire sends
}

// BeforeSend implements world.FaultHook: it observes the rank's next wire
// send and returns the fired fault's repro token and true when the rank must
// die now.
func (p *WorldPlan) BeforeSend(rank int) (string, bool) {
	if p == nil {
		return "", false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ops[rank]++
	op := p.ops[rank]
	for _, f := range p.faults {
		if f.Kind == "rankkill" && f.arg("rank") == rank && uint64(f.arg("op")) == op {
			p.trace.hit(f)
			return f.String(), true
		}
	}
	return "", false
}

// IOPlan implements iosim.FaultInjector. Faults are indexed by cumulative
// per-rank attempt counters — retries count — so "n consecutive failures"
// composes with the writer's bounded retry loop: a generated schedule keeps
// n below the retry budget and the block always lands.
type IOPlan struct {
	faults []Fault
	trace  *Trace

	mu     sync.Mutex
	writes map[int]uint64 // rank -> write attempts
	reads  map[int]uint64 // rank -> read attempts
}

func newIOPlan(faults []Fault, trace *Trace) *IOPlan {
	return &IOPlan{faults: faults, trace: trace, writes: map[int]uint64{}, reads: map[int]uint64{}}
}

// BlockWrite implements iosim.FaultInjector: consulted once per block-file
// write attempt.
func (p *IOPlan) BlockWrite(rank int) iosim.FaultAction {
	if p == nil {
		return iosim.FaultAction{}
	}
	p.mu.Lock()
	p.writes[rank]++
	attempt := p.writes[rank]
	var out iosim.FaultAction
	for _, f := range p.faults {
		if f.arg("rank") != rank {
			continue
		}
		switch f.Kind {
		case "enospc":
			start, n := uint64(f.arg("op")), uint64(f.arg("n"))
			if attempt >= start && attempt < start+n {
				out.ENOSPC = true
				if attempt == start {
					p.trace.hit(f)
				}
			}
		case "fsync":
			if uint64(f.arg("op")) == attempt {
				out.Delay = time.Duration(f.arg("ms")) * time.Millisecond
				p.trace.hit(f)
			}
		}
	}
	p.mu.Unlock()
	return out
}

// BlockRead implements iosim.FaultInjector: consulted once per block-file
// read attempt.
func (p *IOPlan) BlockRead(rank int) iosim.FaultAction {
	if p == nil {
		return iosim.FaultAction{}
	}
	p.mu.Lock()
	p.reads[rank]++
	attempt := p.reads[rank]
	var out iosim.FaultAction
	for _, f := range p.faults {
		if f.Kind == "shortread" && f.arg("rank") == rank && uint64(f.arg("op")) == attempt {
			out.ShortRead = true
			p.trace.hit(f)
		}
	}
	p.mu.Unlock()
	return out
}
