package faultline

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gosensei/internal/fabric"
)

// FabricPlan injects connection-level faults into the staging wire by
// wrapping each writer's connection (fabric.ClientOptions.WrapConn). Faults
// are indexed by cumulative per-writer-rank counters — dials, writes, reads
// — that keep counting across reconnects, so a counter passes each target
// index exactly once and every fault fires at most once per run. Index
// ranges chosen within one connection epoch's traffic (see Menu) fire
// exactly once, which keeps the trace replay-identical even though the exact
// goroutine interleaving around a reconnect differs between runs.
//
// Every fault feeds the client's existing reconnect machinery: the wrapper
// kills the wrapped connection, the recv pump or write path observes the
// death, and the retry/retransmit/dedup path — the code under test — rides
// it out.
type FabricPlan struct {
	faults []Fault
	trace  *Trace

	mu     sync.Mutex
	dials  map[int]int
	writes map[int]int
	reads  map[int]int
}

func newFabricPlan(faults []Fault, trace *Trace) *FabricPlan {
	return &FabricPlan{
		faults: faults, trace: trace,
		dials: map[int]int{}, writes: map[int]int{}, reads: map[int]int{},
	}
}

// WrapConn wraps a freshly dialed writer connection; install it as the
// fabric.ClientOptions.WrapConn hook (or via the adios plumbing). Safe to
// call on a nil plan (returns conn unchanged).
func (p *FabricPlan) WrapConn(rank int, conn fabric.Conn) fabric.Conn {
	if p == nil {
		return conn
	}
	p.mu.Lock()
	p.dials[rank]++
	dial := p.dials[rank]
	drop := false
	hasFault := false
	for _, f := range p.faults {
		if f.arg("rank") != rank {
			continue
		}
		hasFault = true
		if f.Kind == "hsdrop" && f.arg("dial") == dial {
			drop = true
			p.trace.hit(f)
		}
	}
	p.mu.Unlock()
	if !hasFault {
		return conn
	}
	return &faultConn{Conn: conn, plan: p, rank: rank, dropHello: drop}
}

// faultConn decorates one connection epoch. The embedded Conn serves
// Close/addr/deadline calls; Write and Read consult the plan.
type faultConn struct {
	fabric.Conn
	plan *FabricPlan
	rank int
	// dropHello makes the first write (the Hello frame) vanish with the
	// connection: injected handshake loss. Set before the handshake starts,
	// consumed by the single-threaded dial path.
	dropHello bool
}

// writeAction classifies one write against the plan.
type writeAction int

const (
	writePass writeAction = iota
	writeKill
	writeShort
	writeSwallow      // blackhole interior: claim success, deliver nothing
	writeSwallowClose // blackhole end: swallow, then kill the conn
)

func (p *FabricPlan) writeFault(rank int) (writeAction, string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.writes[rank]++
	w := p.writes[rank]
	for _, f := range p.faults {
		if f.arg("rank") != rank {
			continue
		}
		switch f.Kind {
		case "kill":
			if f.arg("write") == w {
				p.trace.hit(f)
				return writeKill, f.String()
			}
		case "short":
			if f.arg("write") == w {
				p.trace.hit(f)
				return writeShort, f.String()
			}
		case "blackhole":
			start, n := f.arg("write"), f.arg("n")
			if w >= start && w < start+n {
				if w == start {
					p.trace.hit(f)
				}
				if w == start+n-1 {
					return writeSwallowClose, f.String()
				}
				return writeSwallow, f.String()
			}
		}
	}
	return writePass, ""
}

func (p *FabricPlan) readDelay(rank int) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reads[rank]++
	r := p.reads[rank]
	for _, f := range p.faults {
		if f.Kind == "blackout" && f.arg("rank") == rank && f.arg("read") == r {
			p.trace.hit(f)
			return time.Duration(f.arg("ms")) * time.Millisecond
		}
	}
	return 0
}

func (c *faultConn) Write(b []byte) (int, error) {
	if c.dropHello {
		c.dropHello = false
		_ = c.Conn.Close()
		return 0, errors.New("faultline: injected handshake loss")
	}
	act, spec := c.plan.writeFault(c.rank)
	switch act {
	case writeKill:
		_ = c.Conn.Close()
		return 0, fmt.Errorf("faultline: injected conn kill (%s)", spec)
	case writeShort:
		// Half the frame reaches the peer (a CRC/length violation on its
		// side), then the connection dies under the writer.
		n, _ := c.Conn.Write(b[:len(b)/2])
		_ = c.Conn.Close()
		return n, fmt.Errorf("faultline: injected short write (%s)", spec)
	case writeSwallow:
		return len(b), nil
	case writeSwallowClose:
		// The swallowed frame "succeeded" as far as the writer knows; only
		// the connection death tells it something was lost, and only the
		// release-after-execute retransmit protocol gets the data through.
		_ = c.Conn.Close()
		return len(b), nil
	default:
		return c.Conn.Write(b)
	}
}

func (c *faultConn) Read(b []byte) (int, error) {
	if d := c.plan.readDelay(c.rank); d > 0 {
		time.Sleep(d)
	}
	return c.Conn.Read(b)
}
