package faultline

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseStringRoundTrip(t *testing.T) {
	specs := []string{
		"42:mpi.delay(src=0,dst=1,msg=3,ms=2)",
		"7:mpi.dup(src=1,dst=0,msg=5);mpi.reorder(src=0,dst=1,msg=2)",
		"0:fabric.kill(rank=0,write=4);fabric.blackhole(rank=1,write=2,n=2)",
		"1:fabric.hsdrop(rank=0,dial=1);fabric.blackout(rank=1,read=3,ms=5);fabric.short(rank=0,write=2)",
		"99:io.enospc(rank=0,op=1,n=2);io.shortread(rank=1,op=2);io.fsync(rank=0,op=3,ms=4)",
		"-3:mpi.crash(rank=1,op=7)",
		"5:",
	}
	for _, spec := range specs {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := s.String(); got != spec {
			t.Errorf("round trip: %q -> %q", spec, got)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                                  // no seed separator
		"x:mpi.dup(src=0,dst=1,msg=1)",      // bad seed
		"1:mpi.bogus(src=0)",                // unknown kind
		"1:mpi.dup(src=0,dst=1)",            // missing arg
		"1:mpi.dup(dst=1,src=0,msg=1)",      // non-canonical order
		"1:mpi.dup(src=0,dst=1,msg=x)",      // non-integer
		"1:mpi.dup(src=0,dst=1,msg=-1)",     // negative
		"1:mpi.dup src=0",                   // no parens
		"1:mpi.dup(src=0,dst=1,msg=1,ms=1)", // extra arg
		"1:io.enospc(rank=0,op=1,n=1);x",    // trailing junk fault
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
}

func TestGenerateIsDeterministicAndRoundTrips(t *testing.T) {
	m := Menu{MPI: true, Fabric: true, IO: true, Ranks: 2, Steps: 3}
	for seed := int64(0); seed < 200; seed++ {
		a := Generate(seed, m)
		b := Generate(seed, m)
		if a.String() != b.String() {
			t.Fatalf("seed %d: generation not deterministic:\n%s\n%s", seed, a, b)
		}
		if len(a.Faults) < 2 || len(a.Faults) > 4 {
			t.Fatalf("seed %d: %d faults outside [2,4]", seed, len(a.Faults))
		}
		if a.Fatal() {
			t.Fatalf("seed %d: generated schedule contains a fatal fault: %s", seed, a)
		}
		back, err := Parse(a.String())
		if err != nil {
			t.Fatalf("seed %d: Parse(Generate.String): %v", seed, err)
		}
		if !reflect.DeepEqual(a, back) {
			t.Fatalf("seed %d: parse-back mismatch:\n%#v\n%#v", seed, a, back)
		}
	}
}

func TestGenerateCoversEveryEnabledKind(t *testing.T) {
	m := Menu{MPI: true, Fabric: true, IO: true, Ranks: 2, Steps: 3}
	seen := map[string]bool{}
	for seed := int64(0); seed < 500; seed++ {
		for _, f := range Generate(seed, m).Faults {
			seen[f.Name()] = true
		}
	}
	for kind := range kindArgs {
		if kind == "mpi.crash" || kind == "world.rankkill" {
			if seen[kind] {
				t.Fatalf("generator produced the fatal kind %s", kind)
			}
			continue
		}
		if !seen[kind] {
			t.Errorf("500 seeds never produced kind %s", kind)
		}
	}
}

func TestFatalClassification(t *testing.T) {
	s, err := Parse("1:mpi.stall(rank=0,op=1,ms=1);mpi.crash(rank=1,op=2)")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Fatal() {
		t.Error("schedule with mpi.crash must be Fatal")
	}
	if s.Faults[0].Fatal() || !s.Faults[1].Fatal() {
		t.Error("only mpi.crash is fatal")
	}
}

func TestTraceLinesSortedMultiset(t *testing.T) {
	tr := &Trace{hits: map[string]int{}}
	f1, _ := parseFault("mpi.dup(src=0,dst=1,msg=2)")
	f2, _ := parseFault("fabric.kill(rank=0,write=3)")
	tr.hit(f2)
	tr.hit(f1)
	tr.hit(f2)
	want := []string{"fabric.kill(rank=0,write=3) x2", "mpi.dup(src=0,dst=1,msg=2) x1"}
	if got := tr.Lines(); !reflect.DeepEqual(got, want) {
		t.Errorf("Lines() = %v, want %v", got, want)
	}
}

func TestRunPlansNilWhenDomainEmpty(t *testing.T) {
	s, err := Parse("3:mpi.dup(src=0,dst=1,msg=2)")
	if err != nil {
		t.Fatal(err)
	}
	r := s.Start()
	if r.NewMPIPlan() == nil {
		t.Error("mpi plan must exist for an mpi schedule")
	}
	if r.FabricPlan() != nil || r.IOPlan() != nil {
		t.Error("fabric/io plans must be nil when the schedule has no such faults")
	}
	if r.NewWorldPlan() != nil {
		t.Error("world plan must be nil when the schedule has no world faults")
	}
	var nilRun *Run
	if nilRun.NewMPIPlan() != nil || nilRun.FabricPlan() != nil || nilRun.IOPlan() != nil ||
		nilRun.NewWorldPlan() != nil || nilRun.TraceLines() != nil {
		t.Error("nil *Run accessors must all return nil")
	}
}

func TestWorldPlanRankkill(t *testing.T) {
	s, err := Parse("9:world.rankkill(rank=1,op=3)")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Fatal() {
		t.Error("world.rankkill schedule must classify as fatal")
	}
	r := s.Start()
	p := r.NewWorldPlan()
	if p == nil {
		t.Fatal("world plan missing for a world schedule")
	}
	// Other ranks' sends never fire, and the victim's counter is 1-based:
	// ops 1 and 2 survive, op 3 kills.
	for i := 0; i < 10; i++ {
		if token, kill := p.BeforeSend(0); kill || token != "" {
			t.Fatalf("rank 0 send %d: unexpected kill %q", i+1, token)
		}
	}
	for op := 1; op <= 2; op++ {
		if _, kill := p.BeforeSend(1); kill {
			t.Fatalf("rank 1 op %d: killed early", op)
		}
	}
	token, kill := p.BeforeSend(1)
	if !kill || token != "world.rankkill(rank=1,op=3)" {
		t.Fatalf("rank 1 op 3: kill=%v token=%q", kill, token)
	}
	lines := r.TraceLines()
	if len(lines) != 1 || lines[0] != "world.rankkill(rank=1,op=3) x1" {
		t.Errorf("trace: %v", lines)
	}
	// A nil plan (fault-free baseline) is inert.
	var nilPlan *WorldPlan
	if token, kill := nilPlan.BeforeSend(1); kill || token != "" {
		t.Error("nil world plan must be inert")
	}
}

func TestMPIPlanCountersAndTrace(t *testing.T) {
	s, err := Parse("1:mpi.dup(src=0,dst=1,msg=2);mpi.stall(rank=1,op=1,ms=1);mpi.crash(rank=0,op=3)")
	if err != nil {
		t.Fatal(err)
	}
	r := s.Start()
	p := r.NewMPIPlan()
	if f := p.BeforeSend(0, 1, 9); f.Dup || f.Seq != 1 {
		t.Fatalf("msg 1 on edge 0->1: got %+v", f)
	}
	if f := p.BeforeSend(0, 1, 9); !f.Dup || f.Seq != 2 {
		t.Fatalf("msg 2 on edge 0->1 must dup: got %+v", f)
	}
	if f := p.BeforeSend(1, 0, 9); f.Stall == 0 {
		t.Fatalf("rank 1 op 1 must stall: got %+v", f)
	}
	if f := p.BeforeSend(0, 1, 9); f.Crash == "" || !strings.Contains(f.Crash, "mpi.crash(rank=0,op=3)") {
		t.Fatalf("rank 0 op 3 must crash: got %+v", f)
	}
	// A second world's plan restarts the counters but shares the trace.
	p2 := r.NewMPIPlan()
	if f := p2.BeforeSend(0, 1, 9); f.Dup || f.Seq != 1 {
		t.Fatalf("fresh plan must restart edge counters: got %+v", f)
	}
	want := []string{
		"mpi.crash(rank=0,op=3) x1",
		"mpi.dup(src=0,dst=1,msg=2) x1",
		"mpi.stall(rank=1,op=1,ms=1) x1",
	}
	if got := r.TraceLines(); !reflect.DeepEqual(got, want) {
		t.Errorf("trace = %v, want %v", got, want)
	}
}

func TestIOPlanAttemptIndexing(t *testing.T) {
	s, err := Parse("1:io.enospc(rank=0,op=2,n=2);io.fsync(rank=1,op=1,ms=3);io.shortread(rank=0,op=1)")
	if err != nil {
		t.Fatal(err)
	}
	p := s.Start().IOPlan()
	if a := p.BlockWrite(0); a.ENOSPC {
		t.Error("rank 0 write attempt 1 must pass")
	}
	if a := p.BlockWrite(0); !a.ENOSPC {
		t.Error("rank 0 write attempt 2 must fail")
	}
	if a := p.BlockWrite(0); !a.ENOSPC {
		t.Error("rank 0 write attempt 3 must fail (n=2)")
	}
	if a := p.BlockWrite(0); a.ENOSPC {
		t.Error("rank 0 write attempt 4 must pass again")
	}
	if a := p.BlockWrite(1); a.Delay == 0 {
		t.Error("rank 1 write attempt 1 must carry the fsync delay")
	}
	if a := p.BlockRead(0); !a.ShortRead {
		t.Error("rank 0 read attempt 1 must be short")
	}
	if a := p.BlockRead(0); a.ShortRead {
		t.Error("rank 0 read attempt 2 must pass")
	}
}

// TestGeneratedArgRangesStayInBounds pins the generator's promise that the
// indices it draws are reachable by a Ranks x Steps pipeline (see the
// comment in genFault); the e2e suite relies on it for exactly-once traces.
func TestGeneratedArgRangesStayInBounds(t *testing.T) {
	m := Menu{MPI: true, Fabric: true, IO: true, Ranks: 3, Steps: 4}
	for seed := int64(0); seed < 300; seed++ {
		for _, f := range Generate(seed, m).Faults {
			for i, name := range kindArgs[f.Name()] {
				v := f.Args[i]
				switch name {
				case "src", "dst", "rank":
					if v < 0 || v >= m.Ranks {
						t.Fatalf("seed %d: %s: %s=%d out of rank range", seed, f, name, v)
					}
				case "msg", "op":
					if v < 1 || v > m.Steps*4 {
						t.Fatalf("seed %d: %s: %s=%d out of range", seed, f, name, v)
					}
				case "write", "read", "dial", "n", "ms":
					if v < 1 || v > m.Steps+2 {
						t.Fatalf("seed %d: %s: %s=%d out of range", seed, f, name, v)
					}
				}
			}
			if f.Name() == "mpi.delay" || f.Name() == "mpi.dup" || f.Name() == "mpi.reorder" {
				if f.arg("src") == f.arg("dst") {
					t.Fatalf("seed %d: %s: self-edge", seed, f)
				}
			}
		}
	}
}
