package fabric

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// chaosConn kills, truncates, or swallows writes at scripted cumulative
// write indices — a miniature of internal/faultline's conn wrapper, local to
// this package so the WrapConn seam is tested where it lives.
type chaosConn struct {
	Conn
	script *chaosScript
}

type chaosScript struct {
	mu     sync.Mutex
	writes int
	kill   map[int]bool // write index -> close the conn instead
	short  map[int]bool // write index -> half the bytes, then close
	eat    map[int]bool // write index -> pretend success, then close
}

func (s *chaosScript) wrap(rank int, c Conn) Conn { return &chaosConn{Conn: c, script: s} }

func (c *chaosConn) Write(b []byte) (int, error) {
	s := c.script
	s.mu.Lock()
	s.writes++
	w := s.writes
	kill, short, eat := s.kill[w], s.short[w], s.eat[w]
	s.mu.Unlock()
	switch {
	case kill:
		_ = c.Conn.Close()
		return 0, errors.New("chaos: killed")
	case short:
		n, _ := c.Conn.Write(b[:len(b)/2])
		_ = c.Conn.Close()
		return n, errors.New("chaos: short write")
	case eat:
		_ = c.Conn.Close()
		return len(b), nil
	default:
		return c.Conn.Write(b)
	}
}

// TestClientWrapConnRidesOutInjectedDeaths drives one writer through a
// scripted kill, a short write, and a swallowed-then-dead write; the hub
// must still see every step exactly once, in order, byte-identical — the
// retransmit/dedup path doing its job against injected failures.
func TestClientWrapConnRidesOutInjectedDeaths(t *testing.T) {
	addr := t.Name()
	hub := startHub(t, addr, 1, 1, 2)
	defer func() { _ = hub.Close() }()

	script := &chaosScript{
		// Write 1 is the first Hello. Data writes follow; each reconnect
		// inserts another Hello and retransmits, shifting later indices —
		// which is fine, the indices just name "the Nth frame this writer
		// ever put on the wire".
		kill:  map[int]bool{3: true},
		short: map[int]bool{6: true},
		eat:   map[int]bool{9: true},
	}
	o := loopbackClient(addr, 0, 1, 1, 2)
	o.WrapConn = script.wrap
	c := DialWriter(o)

	const steps = 8
	done := make(chan error, 1)
	go func() {
		for step := 0; step < steps; step++ {
			if err := c.Send(step, []byte(fmt.Sprintf("step %d payload", step))); err != nil {
				done <- err
				return
			}
		}
		if err := c.SendEOS(); err != nil {
			done <- err
			return
		}
		done <- c.Drain(10 * time.Second)
	}()

	for step := 0; step < steps; step++ {
		select {
		case d := <-hub.Deliveries(0):
			if d.EOS {
				t.Fatalf("EOS before step %d", step)
			}
			want := fmt.Sprintf("step %d payload", step)
			if d.Step != step || string(d.Payload) != want {
				t.Fatalf("delivery step %d payload %q, want step %d %q", d.Step, d.Payload, step, want)
			}
			d.Release()
		case <-time.After(15 * time.Second):
			t.Fatalf("no delivery for step %d", step)
		}
	}
	d := <-hub.Deliveries(0)
	if !d.EOS {
		t.Fatalf("expected EOS, got step %d", d.Step)
	}
	d.Release()
	if err := <-done; err != nil {
		t.Fatalf("writer: %v", err)
	}
	if got := c.Stats().Reconnects.Value(); got < 3 {
		t.Fatalf("reconnects = %d, want >= 3 (one per injected death)", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestClientWrapConnHandshakeLoss drops the first Hello on the floor; the
// dial path must retry within the window and the stream must be unharmed.
func TestClientWrapConnHandshakeLoss(t *testing.T) {
	addr := t.Name()
	hub := startHub(t, addr, 1, 1, 1)
	defer func() { _ = hub.Close() }()

	script := &chaosScript{kill: map[int]bool{1: true}} // first Hello dies
	o := loopbackClient(addr, 0, 1, 1, 1)
	o.WrapConn = script.wrap
	c := DialWriter(o)

	go func() {
		d := <-hub.Deliveries(0)
		d.Release()
	}()
	if err := c.Send(0, []byte("hello after loss")); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
