package fabric

import (
	"fmt"
	"time"

	"gosensei/internal/metrics"
)

// Stats instruments one side of the fabric with internal/metrics counters.
// All fields are safe for concurrent update from the send/recv pumps; a nil
// *Stats disables accounting (every method tolerates nil).
type Stats struct {
	BytesIn, BytesOut   metrics.Counter
	FramesIn, FramesOut metrics.Counter
	// Retransmits counts frames resent after a reconnect; Reconnects counts
	// successful re-establishments (the first connect is not a reconnect).
	Retransmits, Reconnects metrics.Counter
	// Heartbeats counts completed heartbeat round trips;
	// HeartbeatRTTNanos accumulates their total round-trip time, so
	// mean RTT = HeartbeatRTTNanos / Heartbeats.
	Heartbeats        metrics.Counter
	HeartbeatRTTNanos metrics.Counter
}

// CountIn tallies one received frame.
func (s *Stats) CountIn(payloadLen int) {
	if s == nil {
		return
	}
	s.FramesIn.Inc()
	s.BytesIn.Add(int64(payloadLen) + frameHeaderSize)
}

// CountOut tallies one sent frame.
func (s *Stats) CountOut(frameLen int) {
	if s == nil {
		return
	}
	s.FramesOut.Inc()
	s.BytesOut.Add(int64(frameLen))
}

// countHeartbeat tallies one completed heartbeat round trip.
func (s *Stats) countHeartbeat(rtt time.Duration) {
	if s == nil {
		return
	}
	s.Heartbeats.Inc()
	s.HeartbeatRTTNanos.Add(int64(rtt))
}

// MeanHeartbeatRTT returns the average heartbeat round trip, or zero before
// the first heartbeat completes.
func (s *Stats) MeanHeartbeatRTT() time.Duration {
	if s == nil {
		return 0
	}
	n := s.Heartbeats.Value()
	if n == 0 {
		return 0
	}
	return time.Duration(s.HeartbeatRTTNanos.Value() / n)
}

// Summary renders the counters for end-of-run reports.
func (s *Stats) Summary() string {
	if s == nil {
		return "fabric: no stats"
	}
	return fmt.Sprintf("frames in/out %d/%d, bytes in/out %d/%d, retransmits %d, reconnects %d, heartbeat rtt %s (%d beats)",
		s.FramesIn.Value(), s.FramesOut.Value(),
		s.BytesIn.Value(), s.BytesOut.Value(),
		s.Retransmits.Value(), s.Reconnects.Value(),
		s.MeanHeartbeatRTT(), s.Heartbeats.Value())
}
