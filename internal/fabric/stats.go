package fabric

import (
	"fmt"
	"time"

	"gosensei/internal/metrics"
)

// Stats instruments one side of the fabric with internal/metrics counters.
// All fields are safe for concurrent update from the send/recv pumps; a nil
// *Stats disables accounting (every method tolerates nil).
type Stats struct {
	BytesIn, BytesOut   metrics.Counter
	FramesIn, FramesOut metrics.Counter
	// Retransmits counts frames resent after a reconnect; Reconnects counts
	// successful re-establishments (the first connect is not a reconnect).
	Retransmits, Reconnects metrics.Counter
	// Heartbeats counts completed heartbeat round trips;
	// HeartbeatRTTNanos accumulates their total round-trip time, so
	// mean RTT = HeartbeatRTTNanos / Heartbeats.
	Heartbeats        metrics.Counter
	HeartbeatRTTNanos metrics.Counter
	// The bytes-on-wire odometer: for every data frame, DataBytesLogical
	// accumulates the plain (pre-codec) payload size and DataBytesWire the
	// payload size that actually crossed the wire, so
	// 1 - Wire/Logical is the bandwidth reduction the negotiated codec or
	// extract bought. With CodecRaw and no extract the two columns match.
	DataBytesLogical metrics.Counter
	DataBytesWire    metrics.Counter
}

// CountIn tallies one received frame.
func (s *Stats) CountIn(payloadLen int) {
	if s == nil {
		return
	}
	s.FramesIn.Inc()
	s.BytesIn.Add(int64(payloadLen) + frameHeaderSize)
}

// CountOut tallies one sent frame.
func (s *Stats) CountOut(frameLen int) {
	if s == nil {
		return
	}
	s.FramesOut.Inc()
	s.BytesOut.Add(int64(frameLen))
}

// CountData advances the bytes-on-wire odometer for one data frame:
// logical is the plain payload size, wire what was actually framed.
func (s *Stats) CountData(logical, wire int) {
	if s == nil {
		return
	}
	s.DataBytesLogical.Add(int64(logical))
	s.DataBytesWire.Add(int64(wire))
}

// WireReduction reports the fraction of logical data bytes the codec or
// extract kept off the wire (0 when nothing was saved or nothing was sent).
func (s *Stats) WireReduction() float64 {
	if s == nil {
		return 0
	}
	logical := s.DataBytesLogical.Value()
	if logical == 0 {
		return 0
	}
	r := 1 - float64(s.DataBytesWire.Value())/float64(logical)
	if r < 0 {
		return 0
	}
	return r
}

// countHeartbeat tallies one completed heartbeat round trip.
func (s *Stats) countHeartbeat(rtt time.Duration) {
	if s == nil {
		return
	}
	s.Heartbeats.Inc()
	s.HeartbeatRTTNanos.Add(int64(rtt))
}

// MeanHeartbeatRTT returns the average heartbeat round trip, or zero before
// the first heartbeat completes.
func (s *Stats) MeanHeartbeatRTT() time.Duration {
	if s == nil {
		return 0
	}
	n := s.Heartbeats.Value()
	if n == 0 {
		return 0
	}
	return time.Duration(s.HeartbeatRTTNanos.Value() / n)
}

// Summary renders the counters for end-of-run reports.
func (s *Stats) Summary() string {
	if s == nil {
		return "fabric: no stats"
	}
	return fmt.Sprintf("frames in/out %d/%d, bytes in/out %d/%d, data bytes %d logical / %d wire (%.1f%% reduction), retransmits %d, reconnects %d, heartbeat rtt %s (%d beats)",
		s.FramesIn.Value(), s.FramesOut.Value(),
		s.BytesIn.Value(), s.BytesOut.Value(),
		s.DataBytesLogical.Value(), s.DataBytesWire.Value(), 100*s.WireReduction(),
		s.Retransmits.Value(), s.Reconnects.Value(),
		s.MeanHeartbeatRTT(), s.Heartbeats.Value())
}
