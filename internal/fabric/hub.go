package fabric

import (
	"fmt"
	"sync"
	"time"
)

// ReaderOf maps a writer rank to the endpoint rank that consumes its
// stream in an M:N fan-in — the contiguous block distribution the
// in-process fabric has always used.
func ReaderOf(writer, writers, readers int) int {
	return writer * readers / writers
}

// Delivery is one staged message handed to an endpoint reader. The caller
// must invoke Release once the message has been consumed (for data, once
// the analysis executed the step): releasing returns the writer's credit
// and advances the cumulative release watermark a reconnecting writer
// prunes its retransmit buffer against. Releasing only after execution is
// what makes an endpoint kill lossless — an unexecuted step is never
// acknowledged, so the writer still holds it.
type Delivery struct {
	Writer  int
	Step    int
	Payload []byte
	EOS     bool
	release func()
}

// Release acknowledges the delivery back to its writer. Idempotent.
func (d *Delivery) Release() {
	if d.release != nil {
		d.release()
		d.release = nil
	}
}

// HubOptions configures the endpoint side of the fabric.
type HubOptions struct {
	// Writers/Readers/Depth are the group geometry; a dialing writer whose
	// Hello disagrees is refused.
	Writers, Readers, Depth int
	// ReadTimeout bounds silence from a writer before its connection is
	// retired (the writer's heartbeats keep a healthy connection under it).
	// 0 disables, the loopback default.
	ReadTimeout time.Duration
	// Stats receives the hub's counters; nil allocates a private set.
	Stats *Stats
	// Codecs is the endpoint's codec preference, most preferred first; the
	// first entry a writer's Hello mask supports wins. Nil or no match
	// negotiates raw (which is also what a version-1 writer gets).
	Codecs []uint8
	// Extract, when non-nil, asks extract-capable writers to ship this
	// reduced product instead of full containers. Writers that did not
	// advertise HelloExtractCapable still ship containers.
	Extract *ExtractSpec
}

// hubWriter is the per-writer-rank connection and sequence state. The
// state outlives any one connection: lastReleased is what makes reconnect
// exactly-once (re-sent frames at or below it are re-acked, not
// re-delivered), and lastDelivered suppresses duplicates still in flight
// to the analysis.
type hubWriter struct {
	rank int

	mu            sync.Mutex
	conn          Conn
	scratch       []byte
	lastDelivered uint32
	lastReleased  uint32
}

// Hub accepts writer connections and fans their streams in to per-reader
// delivery queues. Each queue is sized writers-of-reader x depth, the
// credit bound, so the serve loops never block on a slow consumer — the
// backpressure point is the writer's exhausted credits, exactly the
// FlexPath queue-depth semantics.
type Hub struct {
	o      HubOptions
	stats  *Stats
	lis    Listener
	queues []chan Delivery

	mu       sync.Mutex
	writers  map[int]*hubWriter
	advanced int
	closed   bool
}

// NewHub starts serving on lis. Geometry must satisfy writers >= readers
// >= 1 and depth >= 1 (the fabric's standing invariant); violations panic
// as they do in the in-process constructor.
func NewHub(lis Listener, o HubOptions) *Hub {
	if o.Writers < 1 || o.Readers < 1 || o.Writers < o.Readers || o.Depth < 1 {
		panic(fmt.Sprintf("fabric: invalid hub geometry %d writers, %d readers, depth %d",
			o.Writers, o.Readers, o.Depth))
	}
	if o.Stats == nil {
		o.Stats = &Stats{}
	}
	h := &Hub{
		o:       o,
		stats:   o.Stats,
		lis:     lis,
		queues:  make([]chan Delivery, o.Readers),
		writers: make(map[int]*hubWriter),
	}
	for r := range h.queues {
		n := 0
		for w := 0; w < o.Writers; w++ {
			if ReaderOf(w, o.Writers, o.Readers) == r {
				n++
			}
		}
		h.queues[r] = make(chan Delivery, n*o.Depth)
	}
	go h.acceptLoop()
	return h
}

// Stats returns the hub's counters.
func (h *Hub) Stats() *Stats { return h.stats }

// Deliveries returns the delivery queue for one endpoint reader rank.
func (h *Hub) Deliveries(reader int) <-chan Delivery {
	return h.queues[reader]
}

// Advanced reports the highest step any writer has published metadata for.
func (h *Hub) Advanced() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.advanced
}

// Close stops accepting and drops every writer connection. Queued
// deliveries remain readable.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	writers := make([]*hubWriter, 0, len(h.writers))
	for _, st := range h.writers {
		writers = append(writers, st)
	}
	h.mu.Unlock()
	err := h.lis.Close()
	for _, st := range writers {
		st.mu.Lock()
		if st.conn != nil {
			_ = st.conn.Close()
			st.conn = nil
		}
		st.mu.Unlock()
	}
	return err
}

func (h *Hub) acceptLoop() {
	for {
		conn, err := h.lis.Accept()
		if err != nil {
			return
		}
		go h.serve(conn)
	}
}

// writer returns (creating on first use) the persistent state for a rank.
func (h *Hub) writer(rank int) *hubWriter {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.writers[rank]
	if st == nil {
		st = &hubWriter{rank: rank}
		h.writers[rank] = st
	}
	return st
}

// serve drives one writer connection: validate the handshake, grant
// credits, then pump frames until the connection dies. A second connection
// for the same rank (the reconnect case) displaces the old one.
func (h *Hub) serve(conn Conn) {
	hello, fr, err := AcceptHello(conn)
	if err != nil {
		_ = conn.Close()
		return
	}
	if hello.Role != RoleWriter ||
		int(hello.Writers) != h.o.Writers ||
		int(hello.Readers) != h.o.Readers ||
		int(hello.Depth) != h.o.Depth ||
		int(hello.Rank) >= h.o.Writers {
		_ = conn.Close()
		return
	}
	rank := int(hello.Rank)
	st := h.writer(rank)
	// Negotiate the bandwidth reduction for this connection: codec from the
	// endpoint's preference intersected with the writer's advertised mask,
	// extract only if the writer declared it can compute one.
	codec := chooseCodec(h.o.Codecs, hello.Codecs)
	welcome := Welcome{Credits: uint32(h.o.Depth), Codec: codec}
	if h.o.Extract != nil && hello.Flags&HelloExtractCapable != 0 {
		welcome.Extract = *h.o.Extract
	}
	// The Welcome must be the first frame the dialer sees, and every write
	// on a connection must be serialized under st.mu — so send it while
	// holding st.mu and only then publish st.conn. Otherwise a concurrent
	// releaseUpTo for an old delivery could put a Release on the new
	// connection before (or interleaved with) the Welcome, failing the
	// reconnecting writer's handshake. The write is bounded by the
	// handshake deadline AcceptHello installed.
	st.mu.Lock()
	old := st.conn
	welcome.Released = st.lastReleased
	//lint:ignore lock-blocking Welcome-before-publish: the Welcome must hit the wire under st.mu or a concurrent releaseUpTo could interleave a Release before it on the fresh connection; bounded by the AcceptHello handshake deadline (DESIGN.md §4.7)
	if err := SendWelcome(conn, welcome, hello.Version); err != nil {
		st.mu.Unlock()
		_ = conn.Close()
		return
	}
	st.conn = conn
	st.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	reader := ReaderOf(rank, h.o.Writers, h.o.Readers)
	// Per-connection decoder state: the delta chain is scoped to one
	// connection, so a reconnect starts fresh (and the writer's first frame
	// on the new connection is a keyframe).
	dec := newCodecDecoder(codec, MaxPayload)
	defer dec.close()

	for {
		if h.o.ReadTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(h.o.ReadTimeout)); err != nil {
				break
			}
		}
		typ, seq, payload, err := fr.Next()
		if err != nil {
			break
		}
		h.stats.CountIn(len(payload))
		switch typ {
		case FrameHeartbeat:
			// Echo the probe's timestamp back so the writer measures RTT.
			st.writeFrame(h.stats, FrameHeartbeatAck, seq, payload)
		case FrameAdvance:
			h.mu.Lock()
			if int(seq) > h.advanced {
				h.advanced = int(seq)
			}
			h.mu.Unlock()
			st.writeFrame(h.stats, FrameAdvanceAck, seq, nil)
		case FrameData, FrameEOS:
			// Decode BEFORE the dedup branches: on a reconnect the frames in
			// the (lastReleased, lastDelivered] window are retransmitted but
			// not re-delivered, yet each one must still advance this
			// connection's delta chain or every later frame is undecodable.
			var step int
			var container []byte
			if typ == FrameData {
				var perr error
				if dec != nil {
					var cid uint8
					var key bool
					var body []byte
					step, cid, key, body, perr = SplitCodedStepPayload(payload)
					if perr == nil && cid != codec {
						perr = fmt.Errorf("fabric: frame codec %s, negotiated %s", CodecName(cid), CodecName(codec))
					}
					if perr == nil {
						container, perr = dec.decode(body, key)
					}
					if perr == nil {
						h.stats.CountData(8+len(container), len(payload))
					}
				} else {
					step, container, perr = SplitStepPayload(payload)
					if perr == nil {
						h.stats.CountData(len(payload), len(payload))
					}
				}
				if perr != nil {
					// A frame that passed the CRC but fails the codec is a
					// protocol breach or lost chain state; drop the
					// connection — the writer redials and the fresh epoch
					// keyframes.
					h.retire(st, conn)
					return
				}
			}
			st.mu.Lock()
			if seq <= st.lastReleased {
				// Retransmit of a message the analysis already consumed
				// (the release was lost with the old connection): re-ack.
				rel := st.lastReleased
				st.mu.Unlock()
				st.writeFrame(h.stats, FrameRelease, rel, nil)
				continue
			}
			if seq <= st.lastDelivered {
				// Duplicate still queued for the analysis; it will be
				// released when that copy is consumed.
				st.mu.Unlock()
				continue
			}
			st.lastDelivered = seq
			st.mu.Unlock()
			d := Delivery{Writer: rank, EOS: typ == FrameEOS}
			if typ == FrameData {
				d.Step = step
				d.Payload = append([]byte(nil), container...)
			}
			relSeq := seq
			d.release = func() { st.releaseUpTo(h.stats, relSeq) }
			// Queue capacity equals the credit bound, so this never blocks
			// for a well-behaved writer.
			h.queues[reader] <- d
		}
	}
	h.retire(st, conn)
}

// retire closes conn and clears it from the writer state if still current.
func (h *Hub) retire(st *hubWriter, conn Conn) {
	_ = conn.Close()
	st.mu.Lock()
	if st.conn == conn {
		st.conn = nil
	}
	st.mu.Unlock()
}

// releaseUpTo advances the cumulative release watermark and tells the
// writer, returning its credit. Safe if the connection is gone — the
// watermark rides back in the next handshake's Welcome.
func (st *hubWriter) releaseUpTo(stats *Stats, seq uint32) {
	st.mu.Lock()
	if seq > st.lastReleased {
		st.lastReleased = seq
	}
	rel := st.lastReleased
	st.mu.Unlock()
	st.writeFrame(stats, FrameRelease, rel, nil)
}

// writeFrame encodes and writes one control frame on the current
// connection, if any; a write failure retires the connection (the writer
// will redial and recover state from the Welcome).
func (st *hubWriter) writeFrame(stats *Stats, typ FrameType, seq uint32, payload []byte) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.conn == nil {
		return
	}
	st.scratch = AppendFrame(st.scratch[:0], typ, seq, payload)
	if err := st.conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		_ = st.conn.Close()
		st.conn = nil
		return
	}
	//lint:ignore lock-blocking st.mu serializes all writes on this hub-side connection (the Welcome-first invariant depends on that); the write is deadline-bounded (10s) and failure retires the conn rather than blocking (DESIGN.md §4.7)
	if _, err := st.conn.Write(st.scratch); err != nil {
		_ = st.conn.Close()
		st.conn = nil
		return
	}
	stats.CountOut(len(st.scratch))
}
