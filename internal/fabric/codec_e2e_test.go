package fabric

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
	"time"
)

// smoothPayload builds a step payload resembling a staged container:
// float64 fields that drift a little between steps, which is what the delta
// codec exploits.
func smoothPayload(step, n int) []byte {
	b := make([]byte, 8*n)
	for i := 0; i < n; i++ {
		v := math.Sin(float64(i)*0.01) + float64(step)*1e-6
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

// TestNegotiatedCodecStaging stages steps through every codec and asserts
// the deliveries are bit-identical to what was sent, and that the odometer
// records a genuine wire reduction for the compressing codecs.
func TestNegotiatedCodecStaging(t *testing.T) {
	for _, codec := range []uint8{CodecRaw, CodecFlate, CodecDelta} {
		codec := codec
		t.Run(CodecName(codec), func(t *testing.T) {
			addr := t.Name()
			lis, err := Listen("loopback", addr)
			if err != nil {
				t.Fatalf("listen: %v", err)
			}
			hub := NewHub(lis, HubOptions{Writers: 1, Readers: 1, Depth: 2, Codecs: []uint8{codec}})
			defer func() { _ = hub.Close() }()
			c := DialWriter(loopbackClient(addr, 0, 1, 1, 2))
			defer func() { _ = c.Close() }()

			got, _, err := c.Negotiated()
			if err != nil {
				t.Fatalf("negotiated: %v", err)
			}
			if got != codec {
				t.Fatalf("negotiated %s, hub prefers %s", CodecName(got), CodecName(codec))
			}

			const steps = 5
			payloads := make([][]byte, steps)
			for s := 0; s < steps; s++ {
				payloads[s] = smoothPayload(s, 4096)
				if err := c.Send(s, payloads[s]); err != nil {
					t.Fatalf("send %d: %v", s, err)
				}
				d := <-hub.Deliveries(0)
				if d.Step != s || !bytes.Equal(d.Payload, payloads[s]) {
					t.Fatalf("step %d: delivery differs from what was sent", s)
				}
				d.Release()
			}
			if err := c.Drain(5 * time.Second); err != nil {
				t.Fatalf("drain: %v", err)
			}
			st := c.Stats()
			logical, wire := st.DataBytesLogical.Value(), st.DataBytesWire.Value()
			if logical == 0 || wire == 0 {
				t.Fatalf("odometer not advanced: logical %d wire %d", logical, wire)
			}
			if codec == CodecRaw && logical != wire {
				t.Fatalf("raw: logical %d != wire %d", logical, wire)
			}
			// Flate alone barely moves float64 payloads (random mantissa
			// bytes); the reduction claim is the delta codec's, whose
			// XOR+shuffle turns the drift between steps into zero runs.
			if codec == CodecDelta && wire >= logical {
				t.Fatalf("delta: no reduction (logical %d, wire %d)", logical, wire)
			}
			// Both odometers must agree end to end.
			hs := hub.Stats()
			if hs.DataBytesLogical.Value() != logical || hs.DataBytesWire.Value() != wire {
				t.Fatalf("hub odometer %d/%d, client %d/%d",
					hs.DataBytesLogical.Value(), hs.DataBytesWire.Value(), logical, wire)
			}
		})
	}
}

// TestDeltaCodecRidesOutEndpointRestart is the delta-chain reset contract:
// an endpoint dies mid-chain holding an unreleased step, and after the
// reconnect the retransmits must decode bit-identical on the restarted
// endpoint — which has no previous-step reference, so the writer's fresh
// epoch must keyframe first.
func TestDeltaCodecRidesOutEndpointRestart(t *testing.T) {
	addr := t.Name()
	newDeltaHub := func() *Hub {
		lis, err := Listen("loopback", addr)
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		return NewHub(lis, HubOptions{Writers: 1, Readers: 1, Depth: 2, Codecs: []uint8{CodecDelta}})
	}
	hub := newDeltaHub()
	c := DialWriter(loopbackClient(addr, 0, 1, 1, 2))
	defer func() { _ = c.Close() }()

	payloads := make([][]byte, 4)
	for i := range payloads {
		payloads[i] = smoothPayload(i, 2048)
	}

	// Steps 0 and 1 flow normally (1+ is a delta frame); step 1 is
	// delivered but never executed — the endpoint dies holding it.
	for s := 0; s < 2; s++ {
		if err := c.Send(s, payloads[s]); err != nil {
			t.Fatalf("send %d: %v", s, err)
		}
	}
	d := <-hub.Deliveries(0)
	if !bytes.Equal(d.Payload, payloads[0]) {
		t.Fatal("step 0 delivery differs")
	}
	d.Release()
	if err := c.Drain(5 * time.Second); err == nil {
		// step 1 may still be pending; only step 0's release matters here.
		_ = err
	}
	<-hub.Deliveries(0) // step 1 accepted, not released
	if err := hub.Close(); err != nil {
		t.Fatalf("hub close: %v", err)
	}

	// Restarted endpoint: fresh decoder, no reference. Step 1 retransmits
	// (re-encoded as a keyframe by the fresh writer epoch), then new steps
	// continue the new chain.
	hub2 := newDeltaHub()
	defer func() { _ = hub2.Close() }()
	d = <-hub2.Deliveries(0)
	if d.Step != 1 || !bytes.Equal(d.Payload, payloads[1]) {
		t.Fatalf("after restart: step %d, payload identical=%v", d.Step, bytes.Equal(d.Payload, payloads[1]))
	}
	d.Release()
	for s := 2; s < 4; s++ {
		if err := c.Send(s, payloads[s]); err != nil {
			t.Fatalf("send %d after restart: %v", s, err)
		}
		d = <-hub2.Deliveries(0)
		if d.Step != s || !bytes.Equal(d.Payload, payloads[s]) {
			t.Fatalf("step %d after restart differs", s)
		}
		d.Release()
	}
	if err := c.Drain(5 * time.Second); err != nil {
		t.Fatalf("final drain: %v", err)
	}
	if got := c.Stats().Reconnects.Value(); got != 1 {
		t.Errorf("reconnects = %d, want 1", got)
	}
}

// TestExtractNegotiation: the hub hands its extract spec only to writers
// that declared the capability.
func TestExtractNegotiation(t *testing.T) {
	addr := t.Name()
	lis, err := Listen("loopback", addr)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	spec := ExtractSpec{Kind: ExtractHistogram, Assoc: 1, Bins: 32, Array: "data"}
	hub := NewHub(lis, HubOptions{Writers: 2, Readers: 1, Depth: 1, Codecs: []uint8{CodecFlate}, Extract: &spec})
	defer func() { _ = hub.Close() }()

	capable := loopbackClient(addr, 0, 2, 1, 1)
	capable.ExtractCapable = true
	c0 := DialWriter(capable)
	defer func() { _ = c0.Close() }()
	_, ext, err := c0.Negotiated()
	if err != nil {
		t.Fatalf("negotiated: %v", err)
	}
	if ext != spec {
		t.Fatalf("capable writer got extract %+v, want %+v", ext, spec)
	}

	c1 := DialWriter(loopbackClient(addr, 1, 2, 1, 1))
	defer func() { _ = c1.Close() }()
	_, ext, err = c1.Negotiated()
	if err != nil {
		t.Fatalf("negotiated: %v", err)
	}
	if ext.Kind != ExtractNone {
		t.Fatalf("incapable writer got extract %+v", ext)
	}
}

// TestHandshakeV1Interop pins the tolerant decode of version-1 payload
// lengths: an old peer's short Hello/Welcome must parse to raw-only
// semantics, and a current acceptor answers a v1 dialer with the short
// Welcome it can parse.
func TestHandshakeV1Interop(t *testing.T) {
	// Hand-craft the 21-byte v1 hello.
	v1 := make([]byte, helloV1Len)
	le := binary.LittleEndian
	le.PutUint32(v1[0:4], 1)
	v1[4] = byte(RoleWriter)
	le.PutUint32(v1[5:9], 3)   // rank
	le.PutUint32(v1[9:13], 4)  // writers
	le.PutUint32(v1[13:17], 2) // readers
	le.PutUint32(v1[17:21], 5) // depth
	h, err := decodeHello(v1)
	if err != nil {
		t.Fatalf("decode v1 hello: %v", err)
	}
	if h.Version != 1 || h.Rank != 3 || h.Writers != 4 || h.Readers != 2 || h.Depth != 5 {
		t.Fatalf("v1 hello decoded to %+v", h)
	}
	if h.Codecs != 1<<CodecRaw || h.Flags != 0 {
		t.Fatalf("v1 hello implies codecs %b flags %b, want raw-only", h.Codecs, h.Flags)
	}
	if got := chooseCodec([]uint8{CodecDelta, CodecFlate}, h.Codecs); got != CodecRaw {
		t.Fatalf("negotiation with v1 peer picked %s, want raw", CodecName(got))
	}

	// Hand-craft the 12-byte v1 welcome.
	w1 := make([]byte, welcomeV1Len)
	le.PutUint32(w1[0:4], 1)
	le.PutUint32(w1[4:8], 7)
	le.PutUint32(w1[8:12], 9)
	w, err := decodeWelcome(w1)
	if err != nil {
		t.Fatalf("decode v1 welcome: %v", err)
	}
	if w.Credits != 7 || w.Released != 9 || w.Codec != CodecRaw || w.Extract.Kind != ExtractNone {
		t.Fatalf("v1 welcome decoded to %+v", w)
	}

	// A current acceptor answering a v1 dialer emits the short payload.
	lis, err := Listen("loopback", t.Name())
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer func() { _ = lis.Close() }()
	go func() {
		server, aerr := lis.Accept()
		if aerr != nil {
			return
		}
		_ = SendWelcome(server, Welcome{Credits: 2, Codec: CodecDelta}, 1)
		_ = server.Close()
	}()
	client, err := Dial("loopback", t.Name())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = client.Close() }()
	fr := NewFrameReader(client, MaxPayload)
	typ, _, payload, err := fr.Next()
	if err != nil || typ != FrameWelcome {
		t.Fatalf("read welcome: %v (%s)", err, typ)
	}
	if len(payload) != welcomeV1Len {
		t.Fatalf("welcome to v1 peer is %d bytes, want %d", len(payload), welcomeV1Len)
	}
	w, err = decodeWelcome(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if w.Version != 1 || w.Codec != CodecRaw {
		t.Fatalf("v1 peer would see %+v", w)
	}

	// Current round trip preserves the extract spec.
	full := Welcome{Version: ProtocolVersion, Credits: 1, Released: 2, Codec: CodecDelta,
		Extract: ExtractSpec{Kind: ExtractSlice, Assoc: 1, Bins: 0, Axis: 2, Coord: 0.5, Array: "velocity"}}
	w, err = decodeWelcome(appendWelcome(nil, full))
	if err != nil {
		t.Fatalf("decode v2 welcome: %v", err)
	}
	if w != full {
		t.Fatalf("v2 welcome round trip: %+v != %+v", w, full)
	}
}
