package fabric

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
)

// Wire codecs. A codec transforms each staged step payload before it is
// framed, trading writer/endpoint CPU for bytes on the wire — the
// bandwidth-limiting knob the Catalyst-ADIOS2 hybrid work applies during in
// transit analysis. The codec is negotiated per connection in the
// Hello/Welcome handshake (the endpoint picks from the writer's advertised
// set) and applies to FrameData payloads only; control frames are tiny and
// stay raw.
//
//   - CodecRaw: identity — the protocol-version-1 wire format.
//   - CodecFlate: stdlib DEFLATE over the payload. Stateless per frame.
//   - CodecDelta: XOR against the previous step's payload (bit-level deltas
//     of float64 fields evolve slowly for smooth data), then a byte-shuffle
//     transpose with stride 8 (grouping the exponent/mantissa byte planes of
//     consecutive float64s, which turns near-zero XOR residue into long zero
//     runs), then DEFLATE. Stateful: the first frame of a connection — and
//     the first retransmit after a reconnect — is a keyframe encoding the
//     full payload, because the previous-step reference dies with the
//     connection (an endpoint restart loses its decoder state).
const (
	CodecRaw uint8 = iota
	CodecFlate
	CodecDelta

	codecMax = CodecDelta
)

// AllCodecs is the capability mask a current-version peer advertises.
const AllCodecs uint32 = 1<<CodecRaw | 1<<CodecFlate | 1<<CodecDelta

// Codec decode errors, distinguishable by errors.Is.
var (
	ErrCodecTooLarge = errors.New("fabric: coded payload inflates past limit")
	ErrCodecChain    = errors.New("fabric: delta frame without matching reference")
	ErrCodecUnknown  = errors.New("fabric: unknown codec")
)

// CodecName renders a codec ID for flags and reports.
func CodecName(id uint8) string {
	switch id {
	case CodecRaw:
		return "raw"
	case CodecFlate:
		return "flate"
	case CodecDelta:
		return "delta"
	}
	return fmt.Sprintf("codec(%d)", id)
}

// ParseCodec reverses CodecName for CLI flags.
func ParseCodec(name string) (uint8, error) {
	switch name {
	case "raw":
		return CodecRaw, nil
	case "flate":
		return CodecFlate, nil
	case "delta":
		return CodecDelta, nil
	}
	return 0, fmt.Errorf("%w %q (want raw|flate|delta)", ErrCodecUnknown, name)
}

// chooseCodec picks the first endpoint preference the writer's advertised
// mask supports; raw is the universal fallback (a version-1 peer advertises
// nothing and negotiates raw).
func chooseCodec(pref []uint8, offered uint32) uint8 {
	for _, id := range pref {
		if id <= codecMax && offered&(1<<id) != 0 {
			return id
		}
	}
	return CodecRaw
}

// shuffle8 writes the stride-8 byte transpose of src into dst[:len(src)]:
// byte j of float64 i lands in plane j. The tail (len % 8) is copied
// verbatim. dst must not alias src.
func shuffle8(dst, src []byte) {
	n := len(src) &^ 7
	g := n / 8
	for i := 0; i < g; i++ {
		b := src[i*8 : i*8+8]
		dst[i] = b[0]
		dst[g+i] = b[1]
		dst[2*g+i] = b[2]
		dst[3*g+i] = b[3]
		dst[4*g+i] = b[4]
		dst[5*g+i] = b[5]
		dst[6*g+i] = b[6]
		dst[7*g+i] = b[7]
	}
	copy(dst[n:], src[n:])
}

// unshuffle8 inverts shuffle8.
func unshuffle8(dst, src []byte) {
	n := len(src) &^ 7
	g := n / 8
	for i := 0; i < g; i++ {
		b := dst[i*8 : i*8+8]
		b[0] = src[i]
		b[1] = src[g+i]
		b[2] = src[2*g+i]
		b[3] = src[3*g+i]
		b[4] = src[4*g+i]
		b[5] = src[5*g+i]
		b[6] = src[6*g+i]
		b[7] = src[7*g+i]
	}
	copy(dst[n:], src[n:])
}

// appendWriter is the flate sink: an append-only slice the pooled buffers
// back. Write never fails.
type appendWriter struct{ b []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// codecEncoder is the writer-side per-connection codec state. Not safe for
// concurrent use; the client serializes encodes under its write lock, which
// also pins chain order to wire order.
type codecEncoder struct {
	id      uint8
	prev    []byte // previous step's plain payload (CodecDelta)
	work    []byte // xor + shuffle staging
	out     appendWriter
	fw      *flate.Writer
	started bool
}

// newCodecEncoder builds the state for one connection epoch; id CodecRaw
// returns nil (no transform, no state).
func newCodecEncoder(id uint8) *codecEncoder {
	if id == CodecRaw {
		return nil
	}
	e := &codecEncoder{id: id}
	e.prev = payloadBufs.Get(0)
	e.work = payloadBufs.Get(0)
	e.out.b = payloadBufs.Get(0)
	fw, err := flate.NewWriter(&e.out, flate.BestSpeed)
	if err != nil {
		panic(fmt.Sprintf("fabric: flate.NewWriter(BestSpeed): %v", err)) // impossible: valid level
	}
	e.fw = fw
	return e
}

// close returns the encoder's buffers to the pool. The encoder must not be
// used afterwards.
func (e *codecEncoder) close() {
	if e == nil {
		return
	}
	payloadBufs.Put(e.prev)
	payloadBufs.Put(e.work)
	payloadBufs.Put(e.out.b)
	e.prev, e.work, e.out.b = nil, nil, nil
}

// encode transforms one step payload, returning the coded body and whether
// this frame is a keyframe (full payload, delta chain reset). The returned
// slice is valid until the next encode.
func (e *codecEncoder) encode(payload []byte) (body []byte, keyframe bool, err error) {
	if cap(e.work) < len(payload) {
		e.work = append(e.work[:0], make([]byte, len(payload))...)
	}
	e.work = e.work[:len(payload)]

	src := payload
	keyframe = true
	if e.id == CodecDelta {
		if e.started && len(e.prev) == len(payload) {
			keyframe = false
			for i := range payload {
				e.work[i] = payload[i] ^ e.prev[i]
			}
			src = e.work
		}
		e.prev = append(e.prev[:0], payload...)
		e.started = true

		// Shuffle in place is impossible (transpose), so stage through work
		// when the XOR already lives there.
		if &src[0] == &e.work[0] && len(src) > 0 {
			// XOR residue is in work; shuffle into a second region appended
			// past it so neither aliases.
			need := 2 * len(payload)
			if cap(e.work) < need {
				grown := payloadBufs.Get(need)
				grown = append(grown, e.work...)
				payloadBufs.Put(e.work)
				e.work = grown
			}
			e.work = e.work[:need]
			shuffle8(e.work[len(payload):], e.work[:len(payload)])
			src = e.work[len(payload):]
		} else if len(src) > 0 {
			shuffle8(e.work, src)
			src = e.work[:len(payload)]
		}
	}

	e.out.b = e.out.b[:0]
	e.fw.Reset(&e.out)
	if _, err := e.fw.Write(src); err != nil {
		return nil, false, fmt.Errorf("fabric: codec compress: %w", err)
	}
	if err := e.fw.Close(); err != nil {
		return nil, false, fmt.Errorf("fabric: codec flush: %w", err)
	}
	return e.out.b, keyframe, nil
}

// codecDecoder is the endpoint-side per-connection codec state.
type codecDecoder struct {
	id   uint8
	max  int // plain payload bound (ErrCodecTooLarge past it)
	prev []byte
	infl []byte // inflate output (shuffled bytes)
	out  []byte // unshuffled plain payload
	br   *bytes.Reader
	fr   io.ReadCloser
}

// newCodecDecoder builds the state for one accepted connection; id CodecRaw
// returns nil. max bounds the decoded payload (<= 0 selects MaxPayload).
func newCodecDecoder(id uint8, max int) *codecDecoder {
	if id == CodecRaw {
		return nil
	}
	if max <= 0 {
		max = MaxPayload
	}
	d := &codecDecoder{id: id, max: max, br: bytes.NewReader(nil)}
	d.prev = payloadBufs.Get(0)
	d.infl = payloadBufs.Get(0)
	d.out = payloadBufs.Get(0)
	d.fr = flate.NewReader(d.br)
	return d
}

// close returns the decoder's buffers to the pool.
func (d *codecDecoder) close() {
	if d == nil {
		return
	}
	payloadBufs.Put(d.prev)
	payloadBufs.Put(d.infl)
	payloadBufs.Put(d.out)
	d.prev, d.infl, d.out = nil, nil, nil
}

// decode reverses encode for one frame. Corrupt bodies, chain breaks
// (non-keyframe without a matching reference), and payloads inflating past
// the bound all return errors without over-allocating: the inflate buffer
// grows only as decompressed bytes actually materialize, never from any
// length claimed by the (attacker-controlled) body. The returned slice is
// valid until the next decode.
func (d *codecDecoder) decode(body []byte, keyframe bool) ([]byte, error) {
	d.br.Reset(body)
	if err := d.fr.(flate.Resetter).Reset(d.br, nil); err != nil {
		return nil, fmt.Errorf("fabric: codec reset: %w", err)
	}
	d.infl = d.infl[:0]
	for {
		if len(d.infl) == cap(d.infl) {
			step := cap(d.infl)
			if step < 4<<10 {
				step = 4 << 10
			}
			if step > growStep {
				step = growStep
			}
			if len(d.infl)+step > d.max+1 {
				step = d.max + 1 - len(d.infl)
			}
			d.infl = append(d.infl, make([]byte, step)...)[:len(d.infl)]
		}
		n, err := d.fr.Read(d.infl[len(d.infl):cap(d.infl)])
		d.infl = d.infl[:len(d.infl)+n]
		if len(d.infl) > d.max {
			return nil, fmt.Errorf("%w: > %d bytes", ErrCodecTooLarge, d.max)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("fabric: codec inflate: %w", err)
		}
	}

	if d.id == CodecFlate {
		return d.infl, nil
	}

	// CodecDelta: unshuffle, then XOR against the reference for non-keyframes.
	if cap(d.out) < len(d.infl) {
		d.out = append(d.out[:0], make([]byte, len(d.infl))...)
	}
	d.out = d.out[:len(d.infl)]
	unshuffle8(d.out, d.infl)
	if !keyframe {
		if len(d.prev) != len(d.out) {
			return nil, fmt.Errorf("%w: have %d-byte reference, frame is %d bytes", ErrCodecChain, len(d.prev), len(d.out))
		}
		for i := range d.out {
			d.out[i] ^= d.prev[i]
		}
	}
	d.prev = append(d.prev[:0], d.out...)
	return d.out, nil
}
