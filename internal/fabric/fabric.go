// Package fabric is the transport layer of the in transit staging path: a
// from-scratch TCP wire carrying length-prefixed, CRC-protected binary
// frames between a simulation (writer) process and an analysis (endpoint)
// process, matching the paper's §4.1.4 ADIOS/FlexPath deployment where the
// two halves are separate executables connected over the interconnect.
//
// The same code path runs over two interchangeable byte streams behind the
// Conn/Listener interfaces:
//
//   - "tcp": real sockets, so writer and endpoint run as distinct OS
//     processes (even on distinct machines);
//   - "loopback": an in-process synchronous pipe, so every test and the
//     single-process tools stay deterministic while still exercising the
//     full framing, handshake, credit, and release machinery.
//
// Protocol summary (see DESIGN.md §5 for the full state machine):
//
//   - Every frame is `len | type | seq | crc32 | payload` (frame.go); a
//     versioned Hello/Welcome handshake opens each connection
//     (handshake.go).
//   - Flow control is credit-based: the endpoint grants `depth` credits at
//     handshake and returns one Release per consumed message, so a writer
//     blocks exactly when the endpoint's queue depth is exhausted — the
//     FlexPath backpressure the paper's Fig. 8 timings include.
//   - A dropped endpoint is survivable: the writer keeps every unreleased
//     message, redials with seeded exponential backoff + jitter
//     (backoff.go), and retransmits; the endpoint deduplicates by sequence
//     number. This reproduces FlexPath's reconnect-a-recompiled-endpoint-
//     mid-run capability.
//   - Heartbeats bound failure detection and measure link RTT; every frame
//     and byte in or out is tallied in Stats (stats.go) with
//     internal/metrics counters.
package fabric

import (
	"fmt"
	"io"
	"net"
	"time"
)

// Conn is one bidirectional byte stream between a writer and an endpoint.
// It is satisfied by net.Conn; the loopback implementation provides the
// same deadline semantics in-process.
type Conn interface {
	io.Reader
	io.Writer
	Close() error
	LocalAddr() net.Addr
	RemoteAddr() net.Addr
	SetDeadline(t time.Time) error
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// Listener accepts fabric connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() net.Addr
}

// Listen opens a listener on the given network: "tcp" binds a real socket
// (addr like "127.0.0.1:0"), "loopback" registers an in-process name.
func Listen(network, addr string) (Listener, error) {
	switch network {
	case "tcp":
		l, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("fabric: listen %s %s: %w", network, addr, err)
		}
		return &tcpListener{l}, nil
	case "loopback":
		return listenLoopback(addr)
	default:
		return nil, fmt.Errorf("fabric: unknown network %q", network)
	}
}

// Dial opens one connection to a listener. Callers wanting resilience use
// a Backoff loop around Dial (the staging Client does this internally).
func Dial(network, addr string) (Conn, error) {
	switch network {
	case "tcp":
		c, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			return nil, fmt.Errorf("fabric: dial %s %s: %w", network, addr, err)
		}
		return c, nil
	case "loopback":
		return dialLoopback(addr)
	default:
		return nil, fmt.Errorf("fabric: unknown network %q", network)
	}
}

// tcpListener adapts net.Listener to the fabric Listener interface.
type tcpListener struct {
	l net.Listener
}

// Accept implements Listener.
func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Close implements Listener.
func (t *tcpListener) Close() error { return t.l.Close() }

// Addr implements Listener.
func (t *tcpListener) Addr() net.Addr { return t.l.Addr() }
