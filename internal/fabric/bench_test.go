package fabric

import (
	"fmt"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

// benchAddrSeq keeps loopback names unique across benchmark iterations
// (the registry frees a name only on listener close).
var benchAddrSeq atomic.Int64

// benchWire stands up a 1-writer/1-reader hub+client pair on the given
// network and returns them with a cleanup function.
func benchWire(b *testing.B, network string, depth, payload int) (*Client, *Hub, func()) {
	b.Helper()
	addr := fmt.Sprintf("bench-%d", benchAddrSeq.Add(1))
	if network == "tcp" {
		addr = "127.0.0.1:0"
	}
	lis, err := Listen(network, addr)
	if err != nil {
		b.Fatalf("listen: %v", err)
	}
	if network == "tcp" {
		addr = lis.Addr().String()
	}
	hub := NewHub(lis, HubOptions{Writers: 1, Readers: 1, Depth: depth})
	c := DialWriter(ClientOptions{
		Network: network, Addr: addr,
		Rank: 0, Writers: 1, Readers: 1, Depth: depth,
		HeartbeatInterval: -1,
		RetryWindow:       30 * time.Second,
	})
	_ = payload
	return c, hub, func() {
		_ = c.Close()
		_ = hub.Close()
	}
}

// benchStaging measures sustained one-way staging throughput: the writer
// pushes fixed-size steps as fast as flow control admits while the
// endpoint side releases every delivery immediately (an infinitely fast
// analysis). ns/op is the per-step wire cost; with SetBytes the harness
// also reports MB/s.
func benchStaging(b *testing.B, network string, depth, payload int) {
	c, hub, done := benchWire(b, network, depth, payload)
	defer done()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case d := <-hub.Deliveries(0):
				d.Release()
			case <-stop:
				return
			}
		}
	}()
	buf := make([]byte, payload)
	b.SetBytes(int64(payload))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(i, buf); err != nil {
			b.Fatalf("send %d: %v", i, err)
		}
	}
	if err := c.Drain(30 * time.Second); err != nil {
		b.Fatalf("drain: %v", err)
	}
	b.StopTimer()
	close(stop)
}

func BenchmarkStagingLoopbackDepth1(b *testing.B) { benchStaging(b, "loopback", 1, 1<<20) }
func BenchmarkStagingLoopbackDepth4(b *testing.B) { benchStaging(b, "loopback", 4, 1<<20) }
func BenchmarkStagingTCPDepth1(b *testing.B)      { benchStaging(b, "tcp", 1, 1<<20) }
func BenchmarkStagingTCPDepth4(b *testing.B)      { benchStaging(b, "tcp", 4, 1<<20) }

// benchAdvance measures the step-boundary round trip (Advance → ack) with
// an empty pipeline, reporting the p99 over all iterations — the latency a
// simulation pays at every step boundary in the paper's time-division
// model.
func benchAdvance(b *testing.B, network string) {
	c, hub, done := benchWire(b, network, 1, 0)
	defer done()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case d := <-hub.Deliveries(0):
				d.Release()
			case <-stop:
				return
			}
		}
	}()
	samples := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := c.Advance(i); err != nil {
			b.Fatalf("advance %d: %v", i, err)
		}
		samples = append(samples, time.Since(t0))
	}
	b.StopTimer()
	close(stop)
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	p99 := samples[len(samples)*99/100]
	b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
}

func BenchmarkAdvanceLoopback(b *testing.B) { benchAdvance(b, "loopback") }
func BenchmarkAdvanceTCP(b *testing.B)      { benchAdvance(b, "tcp") }

// BenchmarkReconnectRecovery measures the writer's recovery time after an
// endpoint restart: from killing a hub holding one unreleased step to the
// restarted hub delivering the retransmission. Dominated by the redial
// backoff schedule, not the wire.
func BenchmarkReconnectRecovery(b *testing.B) {
	addr := fmt.Sprintf("bench-reconnect-%d", benchAddrSeq.Add(1))
	lis, err := Listen("loopback", addr)
	if err != nil {
		b.Fatalf("listen: %v", err)
	}
	hub := NewHub(lis, HubOptions{Writers: 1, Readers: 1, Depth: 2})
	c := DialWriter(ClientOptions{
		Network: "loopback", Addr: addr,
		Rank: 0, Writers: 1, Readers: 1, Depth: 2,
		HeartbeatInterval: -1,
		RetryWindow:       30 * time.Second,
	})
	defer func() { _ = c.Close() }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(i, []byte("in flight")); err != nil {
			b.Fatalf("send %d: %v", i, err)
		}
		<-hub.Deliveries(0) // delivered, never released: dies with the hub
		if err := hub.Close(); err != nil {
			b.Fatalf("hub close: %v", err)
		}
		lis, err = Listen("loopback", addr)
		if err != nil {
			b.Fatalf("re-listen: %v", err)
		}
		hub = NewHub(lis, HubOptions{Writers: 1, Readers: 1, Depth: 2})
		d := <-hub.Deliveries(0) // retransmission arrives
		d.Release()
	}
	b.StopTimer()
	_ = hub.Close()
}
