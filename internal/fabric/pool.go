package fabric

import "sync"

// BufPool recycles payload-scale scratch buffers across connection epochs.
// Get hands out a zero-length slice with at least the requested capacity;
// Put returns a buffer to the pool. A buffer handed to Put belongs to the
// pool again — retaining or reading it afterwards races with the next Get
// (gosenseilint's ownership rule enforces this, the same contract as
// mpi.SendOwned buffers).
type BufPool struct {
	p sync.Pool
}

// Get returns an empty slice with capacity >= capacity, reusing a pooled
// buffer when one is large enough.
func (p *BufPool) Get(capacity int) []byte {
	if v := p.p.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= capacity {
			return b[:0]
		}
	}
	return make([]byte, 0, capacity)
}

// Put returns b's backing storage to the pool. The caller must not touch b
// afterwards.
func (p *BufPool) Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	p.p.Put(&b)
}

// payloadBufs is the shared pool behind the codec states' working buffers:
// one connection epoch's encoder/decoder borrows its delta/shuffle/compress
// scratch here and returns it when the connection dies, so steady-state
// staging allocates nothing per step and reconnects recycle instead of
// growing fresh multi-MB buffers.
var payloadBufs BufPool
