package fabric

import (
	"bytes"
	"io"
	"testing"
)

// FuzzFrameDecode hammers the frame decoder with arbitrary byte streams:
// whatever arrives, it must return frames or errors — never panic — and a
// truncated stream with an inflated claimed length must not balloon the
// payload buffer past what actually arrived.
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendFrame(nil, FrameData, 1, []byte("a staged step")))
	f.Add(AppendFrame(nil, FrameEOS, 9, nil))
	f.Add(AppendFrame(nil, FrameSteer, 0, AppendSteerPayload(nil, "iso", 0.5)))
	two := AppendFrame(nil, FrameAdvance, 3, nil)
	f.Add(AppendFrame(two, FrameRelease, 3, nil))
	trunc := AppendFrame(nil, FrameData, 2, bytes.Repeat([]byte("x"), 256))
	f.Add(trunc[:len(trunc)-17])
	corrupt := AppendFrame(nil, FrameData, 4, []byte("to be corrupted"))
	corrupt[len(corrupt)-1] ^= 0xFF
	f.Add(corrupt)
	huge := AppendFrame(nil, FrameData, 5, nil)
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0xFF
	f.Add(huge)
	// Version-3 handshake payloads: a world-membership hello (with peer
	// address), one whose claimed address length disagrees with the
	// payload, and a welcome carrying the world tail.
	v3 := appendHello(nil, Hello{Version: ProtocolVersion, Role: RoleRank, Rank: 2,
		WorldID: 77001, WorldEpoch: 2, WorldSize: 4, PeerAddr: "127.0.0.1:4001"})
	f.Add(AppendFrame(nil, FrameHello, 6, v3))
	badAddr := append([]byte(nil), v3...)
	badAddr[45], badAddr[46] = 0xFF, 0x7F // addr length 32767 >> actual
	f.Add(AppendFrame(nil, FrameHello, 7, badAddr))
	f.Add(AppendFrame(nil, FrameWelcome, 8, appendWelcome(nil,
		Welcome{Version: ProtocolVersion, WorldID: 77001, WorldEpoch: 2, PeerRank: 2})))

	const maxPayload = 1 << 16
	f.Fuzz(func(t *testing.T, stream []byte) {
		fr := NewFrameReader(bytes.NewReader(stream), maxPayload)
		for {
			typ, _, payload, err := fr.Next()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF &&
					len(err.Error()) == 0 {
					t.Fatalf("empty error text")
				}
				break
			}
			if typ == 0 || typ > frameTypeMax {
				t.Fatalf("decoder returned invalid type %d without error", typ)
			}
			if len(payload) > maxPayload {
				t.Fatalf("payload %d exceeds configured max %d", len(payload), maxPayload)
			}
			// Control payloads must decode or error, never panic.
			switch typ {
			case FrameData:
				_, _, _ = SplitStepPayload(payload)
			case FrameSteer:
				_, _, _ = DecodeSteerPayload(payload)
			case FrameHello:
				_, _ = decodeHello(payload)
			case FrameWelcome:
				_, _ = decodeWelcome(payload)
			}
		}
		if cap(fr.buf) > maxPayload {
			t.Fatalf("reader buffer grew to %d, past the %d max", cap(fr.buf), maxPayload)
		}
	})
}

// FuzzCodecDecode hammers the wire-codec decoder with arbitrary compressed
// bodies: corrupt DEFLATE streams, truncations, and bodies inflating past
// the configured bound must all return errors — never panic — and the
// inflate buffer must never balloon past the bound regardless of what the
// (attacker-controlled) stream claims or contains.
func FuzzCodecDecode(f *testing.F) {
	// Seed with real encoder output: keyframes and mid-chain deltas for
	// both compressing codecs, plus corrupt and truncated variants.
	step0 := make([]byte, 1024)
	step1 := make([]byte, 1024)
	for i := range step0 {
		step0[i] = byte(i * 7)
		step1[i] = byte(i*7 + i/64) // small drift, like consecutive steps
	}
	for _, id := range []uint8{CodecFlate, CodecDelta} {
		enc := newCodecEncoder(id)
		b0, _, err := enc.encode(step0)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(id, true, append([]byte(nil), b0...))
		b1, key1, err := enc.encode(step1)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(id, key1, append([]byte(nil), b1...))
		corrupt := append([]byte(nil), b1...)
		corrupt[len(corrupt)/2] ^= 0x40
		f.Add(id, key1, corrupt)
		f.Add(id, true, b0[:len(b0)/2])
		enc.close()
	}
	f.Add(uint8(CodecFlate), true, []byte{})

	f.Fuzz(func(t *testing.T, id uint8, keyframe bool, body []byte) {
		if id != CodecFlate {
			id = CodecDelta
		}
		const max = 1 << 16
		d := newCodecDecoder(id, max)
		defer d.close()
		// Two passes: the second decodes with a previous-step reference in
		// place (when the first succeeded), covering the delta-XOR path.
		for pass := 0; pass < 2; pass++ {
			out, err := d.decode(body, keyframe)
			if err == nil && len(out) > max {
				t.Fatalf("decoded %d bytes past the %d bound", len(out), max)
			}
			if cap(d.infl) > max+growStep {
				t.Fatalf("inflate buffer grew to %d, past the %d bound", cap(d.infl), max)
			}
		}
	})
}
