package fabric

import (
	"bytes"
	"io"
	"testing"
)

// FuzzFrameDecode hammers the frame decoder with arbitrary byte streams:
// whatever arrives, it must return frames or errors — never panic — and a
// truncated stream with an inflated claimed length must not balloon the
// payload buffer past what actually arrived.
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendFrame(nil, FrameData, 1, []byte("a staged step")))
	f.Add(AppendFrame(nil, FrameEOS, 9, nil))
	f.Add(AppendFrame(nil, FrameSteer, 0, AppendSteerPayload(nil, "iso", 0.5)))
	two := AppendFrame(nil, FrameAdvance, 3, nil)
	f.Add(AppendFrame(two, FrameRelease, 3, nil))
	trunc := AppendFrame(nil, FrameData, 2, bytes.Repeat([]byte("x"), 256))
	f.Add(trunc[:len(trunc)-17])
	corrupt := AppendFrame(nil, FrameData, 4, []byte("to be corrupted"))
	corrupt[len(corrupt)-1] ^= 0xFF
	f.Add(corrupt)
	huge := AppendFrame(nil, FrameData, 5, nil)
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0xFF
	f.Add(huge)

	const maxPayload = 1 << 16
	f.Fuzz(func(t *testing.T, stream []byte) {
		fr := NewFrameReader(bytes.NewReader(stream), maxPayload)
		for {
			typ, _, payload, err := fr.Next()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF &&
					len(err.Error()) == 0 {
					t.Fatalf("empty error text")
				}
				break
			}
			if typ == 0 || typ > frameTypeMax {
				t.Fatalf("decoder returned invalid type %d without error", typ)
			}
			if len(payload) > maxPayload {
				t.Fatalf("payload %d exceeds configured max %d", len(payload), maxPayload)
			}
			// Control payloads must decode or error, never panic.
			switch typ {
			case FrameData:
				_, _, _ = SplitStepPayload(payload)
			case FrameSteer:
				_, _, _ = DecodeSteerPayload(payload)
			case FrameHello:
				_, _ = decodeHello(payload)
			case FrameWelcome:
				_, _ = decodeWelcome(payload)
			}
		}
		if cap(fr.buf) > maxPayload {
			t.Fatalf("reader buffer grew to %d, past the %d max", cap(fr.buf), maxPayload)
		}
	})
}
