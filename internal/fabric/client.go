package fabric

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClientClosed is returned by operations on a closed Client.
var ErrClientClosed = errors.New("fabric: client closed")

// ClientOptions configures one writer-side connection to a staging endpoint.
type ClientOptions struct {
	// Network/Addr locate the endpoint ("tcp" + host:port, or "loopback" +
	// name).
	Network, Addr string
	// Rank is this writer's rank; Writers/Readers/Depth are the group
	// geometry the endpoint must agree with.
	Rank, Writers, Readers, Depth int
	// HeartbeatInterval paces keepalive probes; 0 selects 500ms, negative
	// disables heartbeats (the loopback default — an in-process pipe cannot
	// silently die).
	HeartbeatInterval time.Duration
	// ReadTimeout bounds silence from the endpoint before the connection is
	// declared dead; 0 derives 8x the heartbeat interval (or no timeout when
	// heartbeats are disabled).
	ReadTimeout time.Duration
	// RetryWindow bounds how long a disconnected writer keeps redialing
	// before giving up — the ride-out budget for an endpoint restart.
	// 0 selects 15s.
	RetryWindow time.Duration
	// Backoff schedules redial delays; nil seeds a default from Rank.
	Backoff *Backoff
	// Stats receives the connection's counters; nil allocates a private set.
	Stats *Stats
	// Codecs is the bitmask of codec IDs (1 << id) advertised in the Hello;
	// 0 advertises AllCodecs. The endpoint picks one per connection and
	// every data frame on that connection is encoded with it.
	Codecs uint32
	// ExtractCapable advertises that the caller can compute negotiated
	// extracts and ship the reduced product instead of full containers.
	ExtractCapable bool
	// WrapConn, when set, decorates every freshly dialed connection before
	// the handshake — the fault-injection seam (internal/faultline wraps
	// conns here to kill, truncate, or stall traffic deterministically).
	// Nil leaves connections untouched.
	WrapConn func(rank int, conn Conn) Conn
}

// pendingFrame is one credit-consuming message awaiting release; it is the
// retransmit unit after a reconnect.
type pendingFrame struct {
	typ     FrameType
	seq     uint32
	payload []byte
}

// advanceWait tracks one outstanding Advance round trip.
type advanceWait struct {
	step uint32
	done chan struct{}
}

// Client is the writer side of the staging fabric. Send blocks when the
// endpoint's queue depth is exhausted (credit flow control); a dead
// connection is redialed with backoff and unreleased messages are
// retransmitted, so the writer rides out an endpoint restart without
// losing steps. All methods are safe for concurrent use, though the
// staging writer protocol is sequential (Send*, Advance, then Drain/Close).
type Client struct {
	o           ClientOptions
	hbInterval  time.Duration
	readTimeout time.Duration
	retryWindow time.Duration
	backoff     *Backoff
	stats       *Stats

	mu         sync.Mutex
	cond       *sync.Cond
	conn       Conn
	pending    []pendingFrame
	nextSeq    uint32
	credits    int
	adv        *advanceWait
	connected  bool // a handshake has succeeded at least once
	installing bool // a reconnect is retransmitting; Send/Advance must wait
	closed     bool
	fatal      error
	broken     chan struct{} // kicks the run loop when the conn dies
	codec      uint8         // negotiated codec for the current connection
	extract    ExtractSpec   // negotiated extract (Kind == ExtractNone: none)
	epoch      uint64        // bumped per successful (re)connect

	// wmu serializes conn writes and guards wscratch. It is never acquired
	// while c.mu is held and c.mu is never held across a blocking
	// conn.Write: the recv pump must always be able to take c.mu to process
	// a Release, or a synchronous transport (net.Pipe) deadlocks — the
	// endpoint blocks writing the Release we are not reading while we block
	// writing the data it is not reading.
	wmu      sync.Mutex
	wscratch []byte
	// enc is the per-connection-epoch codec state, touched only under wmu:
	// the write lock's acquisition order IS the wire order, so encoding
	// under it pins the delta chain to frame order. Pending messages store
	// PLAIN payloads and are re-encoded at (re)transmit time — after a
	// reconnect the fresh encoder keyframes first, which is exactly the
	// delta-chain reset a restarted endpoint needs.
	enc      *codecEncoder
	encEpoch uint64
	cscratch []byte // coded-payload staging, under wmu
}

// DialWriter creates a client. Connection is lazy: the first Send/Advance
// blocks until the handshake grants credits, and dial failures inside the
// retry window are retried transparently.
func DialWriter(o ClientOptions) *Client {
	c := &Client{
		o:           o,
		hbInterval:  o.HeartbeatInterval,
		readTimeout: o.ReadTimeout,
		retryWindow: o.RetryWindow,
		backoff:     o.Backoff,
		stats:       o.Stats,
		broken:      make(chan struct{}, 1),
	}
	c.cond = sync.NewCond(&c.mu)
	if c.hbInterval == 0 {
		c.hbInterval = 500 * time.Millisecond
	}
	if c.readTimeout == 0 && c.hbInterval > 0 {
		c.readTimeout = 8 * c.hbInterval
	}
	if c.retryWindow == 0 {
		c.retryWindow = 15 * time.Second
	}
	if c.backoff == nil {
		c.backoff = NewBackoff(int64(o.Rank) + 1)
	}
	if c.stats == nil {
		c.stats = &Stats{}
	}
	go c.run()
	if c.hbInterval > 0 {
		go c.heartbeatLoop()
	}
	return c
}

// Stats returns the client's counters.
func (c *Client) Stats() *Stats { return c.stats }

// Negotiated blocks until the first handshake completes (or the client
// dies) and reports the codec and extract the endpoint chose. Reconnects to
// the same endpoint renegotiate but the answer is stable for a fixed hub
// configuration, so callers may shape their payloads around it for the
// whole run.
func (c *Client) Negotiated() (codec uint8, extract ExtractSpec, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.connected && c.fatal == nil && !c.closed {
		c.cond.Wait()
	}
	if c.fatal != nil {
		return 0, ExtractSpec{}, c.fatal
	}
	if !c.connected && c.closed {
		return 0, ExtractSpec{}, ErrClientClosed
	}
	return c.codec, c.extract, nil
}

// Send stages one step's container. It blocks while the endpoint's queue
// depth is exhausted (no credits) and returns only on a closed client or a
// connection declared unrecoverable (retry window exhausted). The payload
// is copied, so the caller may reuse its buffer.
func (c *Client) Send(step int, container []byte) error {
	p := AppendStepPayload(make([]byte, 0, 8+len(container)), step, container)
	return c.sendMsg(FrameData, p)
}

// SendEOS stages the end-of-stream marker. Like a data message it consumes
// a credit: EOS occupies a queue slot at the endpoint, as the in-process
// channel fabric always modeled.
func (c *Client) SendEOS() error {
	return c.sendMsg(FrameEOS, nil)
}

func (c *Client) sendMsg(typ FrameType, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for (c.credits == 0 || c.installing) && c.fatal == nil && !c.closed {
		c.cond.Wait()
	}
	if c.fatal != nil {
		return c.fatal
	}
	if c.closed {
		return ErrClientClosed
	}
	c.credits--
	c.nextSeq++
	seq := c.nextSeq
	c.pending = append(c.pending, pendingFrame{typ: typ, seq: seq, payload: payload})
	if c.conn != nil {
		// A write failure is not a Send failure: the message is pending and
		// will be retransmitted after the reconnect.
		_ = c.writeFrameLocked(typ, seq, payload)
	}
	return nil
}

// Advance publishes step metadata and waits for the endpoint's
// acknowledgement — the adios::advance exchange of the paper's Fig. 8,
// here a real round trip on the wire.
func (c *Client) Advance(step int) error {
	c.mu.Lock()
	for (c.adv != nil || c.installing) && c.fatal == nil && !c.closed {
		c.cond.Wait()
	}
	if c.fatal != nil {
		err := c.fatal
		c.mu.Unlock()
		return err
	}
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	done := make(chan struct{})
	c.adv = &advanceWait{step: uint32(step), done: done}
	if c.conn != nil {
		_ = c.writeFrameLocked(FrameAdvance, uint32(step), nil)
	}
	c.mu.Unlock()

	timeout := c.retryWindow + c.readTimeout + 5*time.Second
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
		c.mu.Lock()
		err := c.fatal
		c.mu.Unlock()
		return err
	case <-timer.C:
		c.mu.Lock()
		if c.adv != nil && c.adv.done == done {
			c.adv = nil
			c.cond.Broadcast()
		}
		c.mu.Unlock()
		return fmt.Errorf("fabric: advance step %d not acknowledged within %v", step, timeout)
	}
}

// Drain blocks until every sent message has been released by the endpoint
// (consumed by the analysis), or the timeout expires.
func (c *Client) Drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	wake := time.AfterFunc(timeout, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer wake.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.pending) > 0 {
		if c.fatal != nil {
			return c.fatal
		}
		if c.closed {
			return fmt.Errorf("%w with %d unreleased messages", ErrClientClosed, len(c.pending))
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("fabric: drain timed out after %v with %d unreleased messages", timeout, len(c.pending))
		}
		c.cond.Wait()
	}
	return nil
}

// Pending reports the number of sent-but-unreleased messages (the
// writer-side buffer an endpoint restart is ridden out with).
func (c *Client) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Close tears the connection down. Messages not yet released are dropped;
// call Drain first for a clean shutdown.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
	if c.adv != nil {
		close(c.adv.done)
		c.adv = nil
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	select {
	case c.broken <- struct{}{}:
	default:
	}
	// Return the codec buffers to the pool; wmu guarantees no write is
	// mid-encode. A racing write that re-keys the state afterwards leaks a
	// buffer set to the GC, which is harmless.
	c.wmu.Lock()
	c.enc.close()
	c.enc = nil
	c.wmu.Unlock()
	return nil
}

// run is the connection-lifecycle loop: (re)establish, then wait for the
// recv pump to report death, forever until closed or the retry window is
// exhausted.
func (c *Client) run() {
	for {
		c.mu.Lock()
		if c.closed || c.fatal != nil {
			c.mu.Unlock()
			return
		}
		needConn := c.conn == nil
		c.mu.Unlock()
		if needConn {
			if err := c.connect(); err != nil {
				c.mu.Lock()
				if c.fatal == nil {
					c.fatal = err
				}
				if c.adv != nil {
					close(c.adv.done)
					c.adv = nil
				}
				c.cond.Broadcast()
				c.mu.Unlock()
				return
			}
		}
		<-c.broken
	}
}

// connect dials and handshakes inside the retry window, then installs the
// connection: prune messages the endpoint already released, restore
// credits, retransmit the rest, and start the recv pump.
func (c *Client) connect() error {
	start := time.Now()
	var lastErr error
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrClientClosed
		}
		c.mu.Unlock()
		conn, err := Dial(c.o.Network, c.o.Addr)
		if err == nil {
			if c.o.WrapConn != nil {
				conn = c.o.WrapConn(c.o.Rank, conn)
			}
			var w Welcome
			var fr *FrameReader
			codecs := c.o.Codecs
			if codecs == 0 {
				codecs = AllCodecs
			}
			var flags uint32
			if c.o.ExtractCapable {
				flags |= HelloExtractCapable
			}
			w, fr, err = DialHello(conn, Hello{
				Role:    RoleWriter,
				Rank:    uint32(c.o.Rank),
				Writers: uint32(c.o.Writers),
				Readers: uint32(c.o.Readers),
				Depth:   uint32(c.o.Depth),
				Codecs:  codecs,
				Flags:   flags,
			})
			if err == nil {
				c.install(conn, fr, w)
				return nil
			}
			_ = conn.Close()
		}
		lastErr = err
		if time.Since(start) >= c.retryWindow {
			return fmt.Errorf("fabric: writer %d could not reach %s %s within %v: %w",
				c.o.Rank, c.o.Network, c.o.Addr, c.retryWindow, lastErr)
		}
		time.Sleep(c.backoff.Delay(attempt))
	}
}

func (c *Client) install(conn Conn, fr *FrameReader, w Welcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		_ = conn.Close()
		return
	}
	// Prune everything the endpoint consumed before the connection dropped
	// (its Welcome carries the cumulative released sequence).
	for len(c.pending) > 0 && c.pending[0].seq <= w.Released {
		c.pending = c.pending[1:]
	}
	c.credits = int(w.Credits) - len(c.pending)
	if c.credits < 0 {
		c.credits = 0
	}
	c.conn = conn
	c.codec = w.Codec
	c.extract = w.Extract
	c.epoch++ // writeFrameLocked rebuilds the codec state for the new epoch
	reconnect := c.connected
	c.connected = true
	if reconnect {
		c.stats.Reconnects.Inc()
	}
	// writeFrameLocked drops c.mu around each blocking write, so with the
	// conn and credits published a concurrent Send could otherwise race a
	// newer sequence onto the wire between retransmits — and the hub's
	// cumulative dedup would then swallow the late older retransmits
	// without delivering them. installing holds Send/Advance in their wait
	// loops until every retransmit is out.
	c.installing = true
	// The recv pump must be reading BEFORE the retransmits go out: the
	// endpoint can start releasing as soon as the first retransmit is
	// consumed, and on a synchronous transport an unread Release write
	// stalls the endpoint's serve loop — which then stops reading our
	// remaining retransmits, a distributed deadlock until the write
	// deadline. Releases during the loop only reslice c.pending (the range
	// snapshot below stays valid) and freed credits stay gated behind
	// installing; a re-sent already-released frame is re-acked, not
	// re-delivered.
	go c.recvPump(conn, fr)
	retransmits := c.pending
	for _, p := range retransmits {
		if err := c.writeFrameLocked(p.typ, p.seq, p.payload); err != nil {
			break
		}
		if reconnect {
			c.stats.Retransmits.Inc()
		}
	}
	if c.adv != nil && c.conn != nil {
		_ = c.writeFrameLocked(FrameAdvance, c.adv.step, nil)
	}
	c.installing = false
	c.cond.Broadcast()
}

// writeFrameLocked encodes and writes one frame. c.mu must be held on
// entry and is held again on return, but it is RELEASED around the
// blocking write itself (see the wmu comment on Client): callers must not
// assume state is unchanged across the call. Sequential callers (the
// staging writer protocol) still see frames hit the wire in program
// order. On a write failure the connection is declared broken (the run
// loop redials).
func (c *Client) writeFrameLocked(typ FrameType, seq uint32, payload []byte) error {
	conn := c.conn
	if conn == nil {
		return fmt.Errorf("fabric: not connected")
	}
	codec := c.codec
	epoch := c.epoch
	deadline := 10 * time.Second
	if c.readTimeout > deadline {
		deadline = c.readTimeout
	}
	c.mu.Unlock()
	c.wmu.Lock()
	logical, wire := 0, 0
	var encErr error
	if typ == FrameData && codec != CodecRaw {
		// Re-key the codec state when the connection epoch moved: the old
		// delta chain died with the old connection, and the restarted
		// endpoint holds no reference — the first frame of the new state is
		// a keyframe. A write racing a concurrent reconnect may rebuild the
		// state for a conn that is already dead; that only costs an extra
		// keyframe on the next live write, never a broken chain, because
		// every rebuild starts with a self-contained frame.
		if c.enc == nil || c.encEpoch != epoch || c.enc.id != codec {
			c.enc.close()
			c.enc = newCodecEncoder(codec)
			c.encEpoch = epoch
		}
		step, container, serr := SplitStepPayload(payload)
		if serr == nil {
			var body []byte
			var key bool
			body, key, encErr = c.enc.encode(container)
			if encErr == nil {
				c.cscratch = AppendCodedStepPayload(c.cscratch[:0], step, codec, key, body)
				c.wscratch = AppendFrame(c.wscratch[:0], typ, seq, c.cscratch)
				logical, wire = len(payload), len(c.cscratch)
			}
		} else {
			encErr = serr
		}
	}
	if (typ != FrameData || codec == CodecRaw) && encErr == nil {
		c.wscratch = AppendFrame(c.wscratch[:0], typ, seq, payload)
		if typ == FrameData {
			logical, wire = len(payload), len(payload)
		}
	}
	n := len(c.wscratch)
	err := encErr
	if err == nil {
		err = conn.SetWriteDeadline(time.Now().Add(deadline))
	}
	if err == nil {
		//lint:ignore lock-blocking c.wmu is the dedicated write-serialization lock, held here with c.mu RELEASED; the write is deadline-bounded and the recv pump never takes wmu, so a stalled peer cannot reproduce the PR 3 deadlock (DESIGN.md §4.7)
		_, err = conn.Write(c.wscratch)
	}
	c.wmu.Unlock()
	c.mu.Lock()
	if err != nil {
		c.breakConnLocked(conn)
		return err
	}
	c.stats.CountOut(n)
	if typ == FrameData {
		c.stats.CountData(logical, wire)
	}
	return nil
}

// breakConnLocked retires a dead connection and kicks the run loop;
// c.mu must be held.
func (c *Client) breakConnLocked(conn Conn) {
	if conn != nil {
		_ = conn.Close()
	}
	if c.conn == conn {
		c.conn = nil
	}
	select {
	case c.broken <- struct{}{}:
	default:
	}
}

// recvPump reads releases, advance acks, and heartbeat acks until the
// connection dies.
func (c *Client) recvPump(conn Conn, fr *FrameReader) {
	for {
		if c.readTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(c.readTimeout)); err != nil {
				break
			}
		}
		typ, seq, payload, err := fr.Next()
		if err != nil {
			break
		}
		c.stats.CountIn(len(payload))
		switch typ {
		case FrameRelease:
			c.handleRelease(seq)
		case FrameAdvanceAck:
			c.handleAdvanceAck(seq)
		case FrameHeartbeatAck:
			if len(payload) == 8 {
				sent := int64(binary.LittleEndian.Uint64(payload))
				c.stats.countHeartbeat(time.Duration(time.Now().UnixNano() - sent))
			}
		}
	}
	c.mu.Lock()
	c.breakConnLocked(conn)
	c.mu.Unlock()
}

// handleRelease frees every pending message up to the cumulative sequence,
// returning their credits — this is what unblocks a backpressured Send.
func (c *Client) handleRelease(upTo uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for len(c.pending) > 0 && c.pending[0].seq <= upTo {
		c.pending = c.pending[1:]
		n++
	}
	if n > 0 {
		c.credits += n
		c.cond.Broadcast()
	}
}

func (c *Client) handleAdvanceAck(step uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.adv != nil && c.adv.step == step {
		close(c.adv.done)
		c.adv = nil
		c.cond.Broadcast()
	}
}

// heartbeatLoop probes the endpoint at the configured interval. The ack
// carries the probe's timestamp back, yielding an RTT sample; sustained
// silence trips the read deadline and forces a reconnect.
func (c *Client) heartbeatLoop() {
	t := time.NewTicker(c.hbInterval)
	defer t.Stop()
	for range t.C {
		c.mu.Lock()
		if c.closed || c.fatal != nil {
			c.mu.Unlock()
			return
		}
		if c.conn != nil {
			var p [8]byte
			binary.LittleEndian.PutUint64(p[:], uint64(time.Now().UnixNano()))
			_ = c.writeFrameLocked(FrameHeartbeat, 0, p[:])
		}
		c.mu.Unlock()
	}
}
