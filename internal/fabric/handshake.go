package fabric

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// ProtocolVersion is bumped on any incompatible wire change; both halves of
// the handshake carry it — the FlexPath property that a recompiled endpoint
// can rejoin a run only if it still speaks the writer's protocol.
//
// Version 2 (PR 6) extends the exchange with bandwidth-reduction
// negotiation: the Hello advertises the writer's codec set and extract
// capability, the Welcome answers with the codec the endpoint chose and an
// optional extract specification. Version-1 peers are still accepted —
// their shorter payloads decode to "raw, no extract" — but the fallback is
// acceptor-driven: a current dialer talking to a genuinely old acceptor is
// refused (the old acceptor rejects the longer Hello), while a current
// acceptor welcomes an old dialer at version-1 semantics.
//
// Version 3 (PR 8) extends the exchange with cross-process MPI world
// membership: the Hello carries the world identity a RoleRank peer is
// joining (world id, epoch, size) plus the peer's own listener address for
// the mesh, and the Welcome echoes the world identity with the rank the
// registry assigned. Older peers keep working under the same acceptor-driven
// rule: a v1/v2 dialer's shorter Hello decodes to "no world" and is answered
// with the payload shape (and echoed version) it can parse.
const ProtocolVersion = 3

// minProtocolVersion is the oldest peer version still accepted.
const minProtocolVersion = 1

// Role identifies what a dialing peer is.
type Role uint8

// The peer roles. Writers stage steps under credit flow control; viewers
// attach to a live hub for frames and steering; ranks are members of a
// cross-process MPI world registering with its registry or meshing with a
// peer rank (internal/world).
const (
	RoleWriter Role = 1
	RoleViewer Role = 2
	RoleRank   Role = 3
)

// Hello flag bits.
const (
	// HelloExtractCapable marks a writer that can compute negotiated
	// extracts (histogram, slice) locally and ship the reduced product in
	// place of the full container.
	HelloExtractCapable uint32 = 1 << 0
)

// Extract kinds carried in a Welcome's ExtractSpec.
const (
	ExtractNone uint8 = iota
	ExtractHistogram
	ExtractSlice
)

// ExtractSpec describes the reduced product an endpoint wants in place of
// full staged containers — the Catalyst-ADIOS2 "reduce before the wire"
// pattern. Kind selects the product; the remaining fields parameterize it
// (Bins and Array/Assoc for histograms; Axis, Coord, Array for slices).
type ExtractSpec struct {
	Kind  uint8
	Assoc uint8
	Bins  uint32
	Axis  uint32
	Coord float64
	Array string
}

// Hello is the dialer's half of the handshake: who it is and, for writers,
// the group geometry it believes it is joining, plus the bandwidth-reduction
// capabilities it offers. The acceptor validates the geometry so a
// misconfigured writer fails loudly at connect rather than silently
// misrouting blocks.
type Hello struct {
	Version uint32
	Role    Role
	Rank    uint32
	Writers uint32
	Readers uint32
	Depth   uint32
	// Codecs is the bitmask of codec IDs the dialer can encode (1 << id);
	// a version-1 peer implicitly offers only CodecRaw.
	Codecs uint32
	// Flags carries Hello* capability bits.
	Flags uint32
	// The version-3 world-membership fields, meaningful for RoleRank peers
	// (zero otherwise): the identity of the world being joined — id, epoch
	// (incremented per relaunch so stragglers from a previous incarnation
	// are refused), and expected size — plus the dialer's own listener
	// address, which the registry redistributes so ranks can mesh directly.
	WorldID    uint64
	WorldEpoch uint32
	WorldSize  uint32
	PeerAddr   string
}

// Welcome is the acceptor's half: the credit grant, the highest sequence
// number already released (so a reconnecting dialer can prune its
// retransmit buffer), and the negotiated bandwidth reduction — the codec
// every subsequent data frame on this connection must use, and the extract
// the endpoint wants instead of full containers (Kind == ExtractNone ships
// containers).
type Welcome struct {
	Version  uint32
	Credits  uint32
	Released uint32
	Codec    uint8
	Extract  ExtractSpec
	// The version-3 world-membership answer for RoleRank peers: the world
	// identity echoed back and the rank the registry confirmed. Zero for
	// staging/viewer handshakes.
	WorldID    uint64
	WorldEpoch uint32
	PeerRank   uint32
}

const (
	helloV1Len = 4 + 1 + 4 + 4 + 4 + 4
	helloV2Len = helloV1Len + 4 + 4
	// helloV3Len is the fixed prefix; the peer listener address follows.
	helloV3Len   = helloV2Len + 8 + 4 + 4 + 2
	welcomeV1Len = 4 + 4 + 4
	// welcomeV2Len is the fixed prefix; the extract array name follows.
	welcomeV2Len = welcomeV1Len + 1 + 1 + 1 + 4 + 4 + 8 + 2
	// welcomeV3Tail is the world-membership suffix after the array name.
	welcomeV3Tail = 8 + 4 + 4
)

// appendHello encodes a Hello payload (current version).
func appendHello(dst []byte, h Hello) []byte {
	var b [helloV3Len]byte
	le := binary.LittleEndian
	le.PutUint32(b[0:4], h.Version)
	b[4] = byte(h.Role)
	le.PutUint32(b[5:9], h.Rank)
	le.PutUint32(b[9:13], h.Writers)
	le.PutUint32(b[13:17], h.Readers)
	le.PutUint32(b[17:21], h.Depth)
	le.PutUint32(b[21:25], h.Codecs)
	le.PutUint32(b[25:29], h.Flags)
	le.PutUint64(b[29:37], h.WorldID)
	le.PutUint32(b[37:41], h.WorldEpoch)
	le.PutUint32(b[41:45], h.WorldSize)
	le.PutUint16(b[45:47], uint16(len(h.PeerAddr)))
	dst = append(dst, b[:]...)
	return append(dst, h.PeerAddr...)
}

// decodeHello reverses appendHello, tolerating the version-1 and version-2
// lengths (whose missing fields decode to raw-only / no world membership).
func decodeHello(p []byte) (Hello, error) {
	if len(p) != helloV1Len && len(p) != helloV2Len && len(p) < helloV3Len {
		return Hello{}, fmt.Errorf("fabric: hello payload %d bytes, want %d, %d, or >= %d", len(p), helloV1Len, helloV2Len, helloV3Len)
	}
	le := binary.LittleEndian
	h := Hello{
		Version: le.Uint32(p[0:4]),
		Role:    Role(p[4]),
		Rank:    le.Uint32(p[5:9]),
		Writers: le.Uint32(p[9:13]),
		Readers: le.Uint32(p[13:17]),
		Depth:   le.Uint32(p[17:21]),
		Codecs:  1 << CodecRaw,
	}
	if len(p) >= helloV2Len {
		h.Codecs = le.Uint32(p[21:25])
		h.Flags = le.Uint32(p[25:29])
	}
	if len(p) >= helloV3Len {
		h.WorldID = le.Uint64(p[29:37])
		h.WorldEpoch = le.Uint32(p[37:41])
		h.WorldSize = le.Uint32(p[41:45])
		addrLen := int(le.Uint16(p[45:47]))
		if len(p) != helloV3Len+addrLen {
			return Hello{}, fmt.Errorf("fabric: hello payload %d bytes, want %d for %d-byte peer address", len(p), helloV3Len+addrLen, addrLen)
		}
		h.PeerAddr = string(p[helloV3Len : helloV3Len+addrLen])
	}
	return h, nil
}

// appendWelcomeV2 encodes the version-2 Welcome shape: fixed prefix plus
// extract array name, no world membership.
func appendWelcomeV2(dst []byte, w Welcome) []byte {
	var b [welcomeV2Len]byte
	le := binary.LittleEndian
	le.PutUint32(b[0:4], w.Version)
	le.PutUint32(b[4:8], w.Credits)
	le.PutUint32(b[8:12], w.Released)
	b[12] = w.Codec
	b[13] = w.Extract.Kind
	b[14] = w.Extract.Assoc
	le.PutUint32(b[15:19], w.Extract.Bins)
	le.PutUint32(b[19:23], w.Extract.Axis)
	le.PutUint64(b[23:31], math.Float64bits(w.Extract.Coord))
	le.PutUint16(b[31:33], uint16(len(w.Extract.Array)))
	dst = append(dst, b[:]...)
	return append(dst, w.Extract.Array...)
}

// appendWelcome encodes a Welcome payload (current version): the v2 shape
// with the world-membership tail.
func appendWelcome(dst []byte, w Welcome) []byte {
	dst = appendWelcomeV2(dst, w)
	var b [welcomeV3Tail]byte
	le := binary.LittleEndian
	le.PutUint64(b[0:8], w.WorldID)
	le.PutUint32(b[8:12], w.WorldEpoch)
	le.PutUint32(b[12:16], w.PeerRank)
	return append(dst, b[:]...)
}

// decodeWelcome reverses appendWelcome, tolerating the version-1 length
// (which decodes to raw, no extract) and the version-2 length (no world
// membership).
func decodeWelcome(p []byte) (Welcome, error) {
	le := binary.LittleEndian
	if len(p) == welcomeV1Len {
		return Welcome{
			Version:  le.Uint32(p[0:4]),
			Credits:  le.Uint32(p[4:8]),
			Released: le.Uint32(p[8:12]),
			Codec:    CodecRaw,
		}, nil
	}
	if len(p) < welcomeV2Len {
		return Welcome{}, fmt.Errorf("fabric: welcome payload %d bytes, want %d or >= %d", len(p), welcomeV1Len, welcomeV2Len)
	}
	nameLen := int(le.Uint16(p[31:33]))
	if len(p) != welcomeV2Len+nameLen && len(p) != welcomeV2Len+nameLen+welcomeV3Tail {
		return Welcome{}, fmt.Errorf("fabric: welcome payload %d bytes, want %d or %d for %d-byte extract array", len(p), welcomeV2Len+nameLen, welcomeV2Len+nameLen+welcomeV3Tail, nameLen)
	}
	w := Welcome{
		Version:  le.Uint32(p[0:4]),
		Credits:  le.Uint32(p[4:8]),
		Released: le.Uint32(p[8:12]),
		Codec:    p[12],
		Extract: ExtractSpec{
			Kind:  p[13],
			Assoc: p[14],
			Bins:  le.Uint32(p[15:19]),
			Axis:  le.Uint32(p[19:23]),
			Coord: math.Float64frombits(le.Uint64(p[23:31])),
			Array: string(p[33 : 33+nameLen]),
		},
	}
	if len(p) == welcomeV2Len+nameLen+welcomeV3Tail {
		tail := p[welcomeV2Len+nameLen:]
		w.WorldID = le.Uint64(tail[0:8])
		w.WorldEpoch = le.Uint32(tail[8:12])
		w.PeerRank = le.Uint32(tail[12:16])
	}
	return w, nil
}

// versionAccepted reports whether a peer's protocol version is one this
// build interoperates with.
func versionAccepted(v uint32) bool {
	return v >= minProtocolVersion && v <= ProtocolVersion
}

// handshakeTimeout bounds each half of the exchange.
const handshakeTimeout = 5 * time.Second

// DialHello sends Hello and waits for Welcome on a fresh connection — the
// dialer's half of the handshake. The Version field is filled in. The
// returned FrameReader must be reused for subsequent reads on c (it may
// have buffered past the handshake).
func DialHello(c Conn, h Hello) (Welcome, *FrameReader, error) {
	h.Version = ProtocolVersion
	if err := c.SetDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return Welcome{}, nil, fmt.Errorf("fabric: handshake deadline: %w", err)
	}
	frame := AppendFrame(nil, FrameHello, 0, appendHello(nil, h))
	if _, err := c.Write(frame); err != nil {
		return Welcome{}, nil, fmt.Errorf("fabric: send hello: %w", err)
	}
	fr := NewFrameReader(c, MaxPayload)
	typ, _, payload, err := fr.Next()
	if err != nil {
		return Welcome{}, nil, fmt.Errorf("fabric: await welcome: %w", err)
	}
	if typ != FrameWelcome {
		return Welcome{}, nil, fmt.Errorf("fabric: expected welcome, got %s", typ)
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		return Welcome{}, nil, err
	}
	if !versionAccepted(w.Version) {
		return Welcome{}, nil, fmt.Errorf("fabric: protocol version mismatch: peer %d, ours %d", w.Version, ProtocolVersion)
	}
	if w.Codec != CodecRaw && h.Codecs&(1<<w.Codec) == 0 {
		return Welcome{}, nil, fmt.Errorf("fabric: endpoint chose unoffered codec %s", CodecName(w.Codec))
	}
	if err := c.SetDeadline(time.Time{}); err != nil {
		return Welcome{}, nil, fmt.Errorf("fabric: clear deadline: %w", err)
	}
	return w, fr, nil
}

// AcceptHello reads the Hello from a freshly accepted connection. The
// caller validates it and answers with SendWelcome (or closes). The
// returned FrameReader must be reused for subsequent reads on c (it may
// have buffered past the handshake).
func AcceptHello(c Conn) (Hello, *FrameReader, error) {
	if err := c.SetDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return Hello{}, nil, fmt.Errorf("fabric: handshake deadline: %w", err)
	}
	fr := NewFrameReader(c, MaxPayload)
	typ, _, payload, err := fr.Next()
	if err != nil {
		return Hello{}, nil, fmt.Errorf("fabric: await hello: %w", err)
	}
	if typ != FrameHello {
		return Hello{}, nil, fmt.Errorf("fabric: expected hello, got %s", typ)
	}
	h, err := decodeHello(payload)
	if err != nil {
		return Hello{}, nil, err
	}
	if !versionAccepted(h.Version) {
		return Hello{}, nil, fmt.Errorf("fabric: protocol version mismatch: peer %d, ours %d", h.Version, ProtocolVersion)
	}
	return h, fr, nil
}

// SendWelcome completes the server half of the handshake and clears the
// handshake deadline. The Version field is filled in; peerVersion is the
// dialer's Hello version, so an older dialer receives the payload shape —
// and the echoed version — it can parse: version 1 gets the short
// credits-only payload (necessarily raw / no extract), version 2 the
// codec/extract payload without the world tail (necessarily no world
// membership — joining a world requires both halves at version 3).
func SendWelcome(c Conn, w Welcome, peerVersion uint32) error {
	w.Version = ProtocolVersion
	var payload []byte
	switch {
	case peerVersion < 2:
		w.Version = peerVersion // a v1 dialer rejects any other version
		var b [welcomeV1Len]byte
		le := binary.LittleEndian
		le.PutUint32(b[0:4], w.Version)
		le.PutUint32(b[4:8], w.Credits)
		le.PutUint32(b[8:12], w.Released)
		payload = b[:]
	case peerVersion < 3:
		w.Version = peerVersion // a v2 dialer rejects version 3
		payload = appendWelcomeV2(nil, w)
	default:
		payload = appendWelcome(nil, w)
	}
	frame := AppendFrame(nil, FrameWelcome, 0, payload)
	if _, err := c.Write(frame); err != nil {
		return fmt.Errorf("fabric: send welcome: %w", err)
	}
	if err := c.SetDeadline(time.Time{}); err != nil {
		return fmt.Errorf("fabric: clear deadline: %w", err)
	}
	return nil
}
