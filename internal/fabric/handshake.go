package fabric

import (
	"encoding/binary"
	"fmt"
	"time"
)

// ProtocolVersion is bumped on any incompatible wire change; both halves of
// the handshake carry it and a mismatch refuses the connection — the
// FlexPath property that a recompiled endpoint can rejoin a run only if it
// still speaks the writer's protocol.
const ProtocolVersion = 1

// Role identifies what a dialing peer is.
type Role uint8

// The peer roles. Writers stage steps under credit flow control; viewers
// attach to a live hub for frames and steering.
const (
	RoleWriter Role = 1
	RoleViewer Role = 2
)

// Hello is the dialer's half of the handshake: who it is and, for writers,
// the group geometry it believes it is joining. The acceptor validates the
// geometry so a misconfigured writer fails loudly at connect rather than
// silently misrouting blocks.
type Hello struct {
	Version uint32
	Role    Role
	Rank    uint32
	Writers uint32
	Readers uint32
	Depth   uint32
}

// Welcome is the acceptor's half: the credit grant and, after a reconnect,
// the highest sequence number already released so the dialer can prune its
// retransmit buffer.
type Welcome struct {
	Version  uint32
	Credits  uint32
	Released uint32
}

const (
	helloPayloadLen   = 4 + 1 + 4 + 4 + 4 + 4
	welcomePayloadLen = 4 + 4 + 4
)

// appendHello encodes a Hello payload.
func appendHello(dst []byte, h Hello) []byte {
	var b [helloPayloadLen]byte
	le := binary.LittleEndian
	le.PutUint32(b[0:4], h.Version)
	b[4] = byte(h.Role)
	le.PutUint32(b[5:9], h.Rank)
	le.PutUint32(b[9:13], h.Writers)
	le.PutUint32(b[13:17], h.Readers)
	le.PutUint32(b[17:21], h.Depth)
	return append(dst, b[:]...)
}

// decodeHello reverses appendHello.
func decodeHello(p []byte) (Hello, error) {
	if len(p) != helloPayloadLen {
		return Hello{}, fmt.Errorf("fabric: hello payload %d bytes, want %d", len(p), helloPayloadLen)
	}
	le := binary.LittleEndian
	return Hello{
		Version: le.Uint32(p[0:4]),
		Role:    Role(p[4]),
		Rank:    le.Uint32(p[5:9]),
		Writers: le.Uint32(p[9:13]),
		Readers: le.Uint32(p[13:17]),
		Depth:   le.Uint32(p[17:21]),
	}, nil
}

// appendWelcome encodes a Welcome payload.
func appendWelcome(dst []byte, w Welcome) []byte {
	var b [welcomePayloadLen]byte
	le := binary.LittleEndian
	le.PutUint32(b[0:4], w.Version)
	le.PutUint32(b[4:8], w.Credits)
	le.PutUint32(b[8:12], w.Released)
	return append(dst, b[:]...)
}

// decodeWelcome reverses appendWelcome.
func decodeWelcome(p []byte) (Welcome, error) {
	if len(p) != welcomePayloadLen {
		return Welcome{}, fmt.Errorf("fabric: welcome payload %d bytes, want %d", len(p), welcomePayloadLen)
	}
	le := binary.LittleEndian
	return Welcome{
		Version:  le.Uint32(p[0:4]),
		Credits:  le.Uint32(p[4:8]),
		Released: le.Uint32(p[8:12]),
	}, nil
}

// handshakeTimeout bounds each half of the exchange.
const handshakeTimeout = 5 * time.Second

// DialHello sends Hello and waits for Welcome on a fresh connection — the
// dialer's half of the handshake. The Version field is filled in. The
// returned FrameReader must be reused for subsequent reads on c (it may
// have buffered past the handshake).
func DialHello(c Conn, h Hello) (Welcome, *FrameReader, error) {
	h.Version = ProtocolVersion
	if err := c.SetDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return Welcome{}, nil, fmt.Errorf("fabric: handshake deadline: %w", err)
	}
	frame := AppendFrame(nil, FrameHello, 0, appendHello(nil, h))
	if _, err := c.Write(frame); err != nil {
		return Welcome{}, nil, fmt.Errorf("fabric: send hello: %w", err)
	}
	fr := NewFrameReader(c, MaxPayload)
	typ, _, payload, err := fr.Next()
	if err != nil {
		return Welcome{}, nil, fmt.Errorf("fabric: await welcome: %w", err)
	}
	if typ != FrameWelcome {
		return Welcome{}, nil, fmt.Errorf("fabric: expected welcome, got %s", typ)
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		return Welcome{}, nil, err
	}
	if w.Version != ProtocolVersion {
		return Welcome{}, nil, fmt.Errorf("fabric: protocol version mismatch: peer %d, ours %d", w.Version, ProtocolVersion)
	}
	if err := c.SetDeadline(time.Time{}); err != nil {
		return Welcome{}, nil, fmt.Errorf("fabric: clear deadline: %w", err)
	}
	return w, fr, nil
}

// AcceptHello reads the Hello from a freshly accepted connection. The
// caller validates it and answers with SendWelcome (or closes). The
// returned FrameReader must be reused for subsequent reads on c (it may
// have buffered past the handshake).
func AcceptHello(c Conn) (Hello, *FrameReader, error) {
	if err := c.SetDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return Hello{}, nil, fmt.Errorf("fabric: handshake deadline: %w", err)
	}
	fr := NewFrameReader(c, MaxPayload)
	typ, _, payload, err := fr.Next()
	if err != nil {
		return Hello{}, nil, fmt.Errorf("fabric: await hello: %w", err)
	}
	if typ != FrameHello {
		return Hello{}, nil, fmt.Errorf("fabric: expected hello, got %s", typ)
	}
	h, err := decodeHello(payload)
	if err != nil {
		return Hello{}, nil, err
	}
	if h.Version != ProtocolVersion {
		return Hello{}, nil, fmt.Errorf("fabric: protocol version mismatch: peer %d, ours %d", h.Version, ProtocolVersion)
	}
	return h, fr, nil
}

// SendWelcome completes the server half of the handshake and clears the
// handshake deadline. The Version field is filled in.
func SendWelcome(c Conn, w Welcome) error {
	w.Version = ProtocolVersion
	frame := AppendFrame(nil, FrameWelcome, 0, appendWelcome(nil, w))
	if _, err := c.Write(frame); err != nil {
		return fmt.Errorf("fabric: send welcome: %w", err)
	}
	if err := c.SetDeadline(time.Time{}); err != nil {
		return fmt.Errorf("fabric: clear deadline: %w", err)
	}
	return nil
}
