package fabric

import (
	"math/rand"
	"time"
)

// Backoff computes reconnect delays: exponential growth from Base to Max
// with multiplicative jitter drawn from a seeded source, so a writer group
// whose endpoint died does not redial in lockstep, and so tests replaying
// the same seed see the same schedule.
type Backoff struct {
	// Base is the first delay; Max caps the exponential growth.
	Base, Max time.Duration
	// Jitter in [0,1) scales each delay by a random factor in
	// [1-Jitter, 1+Jitter).
	Jitter float64
	rng    *rand.Rand
}

// NewBackoff returns the fabric's default schedule (10ms base, 1s cap, 50%
// jitter) seeded deterministically — seed with the writer rank so each
// member of a group jitters differently but reproducibly.
func NewBackoff(seed int64) *Backoff {
	return &Backoff{
		Base:   10 * time.Millisecond,
		Max:    time.Second,
		Jitter: 0.5,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Delay returns the wait before the given retry attempt (0-based).
func (b *Backoff) Delay(attempt int) time.Duration {
	d := b.Base
	for i := 0; i < attempt && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 && b.rng != nil {
		f := 1 + b.Jitter*(2*b.rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	if d < 0 {
		d = b.Base
	}
	return d
}
