package fabric

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"
)

// --- framing ---

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("the staged container bytes")
	frame := AppendFrame(nil, FrameData, 42, payload)
	fr := NewFrameReader(bytes.NewReader(frame), 0)
	typ, seq, got, err := fr.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if typ != FrameData || seq != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("got %s seq %d payload %q", typ, seq, got)
	}
	if _, _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want clean EOF at frame boundary, got %v", err)
	}
}

func TestFrameReaderReusesBuffer(t *testing.T) {
	var stream []byte
	stream = AppendFrame(stream, FrameData, 1, bytes.Repeat([]byte("a"), 1000))
	stream = AppendFrame(stream, FrameData, 2, bytes.Repeat([]byte("b"), 500))
	fr := NewFrameReader(bytes.NewReader(stream), 0)
	_, _, p1, err := fr.Next()
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	first := &p1[0]
	_, _, p2, err := fr.Next()
	if err != nil {
		t.Fatalf("second: %v", err)
	}
	if &p2[0] != first {
		t.Fatalf("payload buffer not reused across frames")
	}
}

func TestFrameDecodeCorruption(t *testing.T) {
	base := AppendFrame(nil, FrameData, 7, []byte("payload bytes"))

	t.Run("flipped payload bit", func(t *testing.T) {
		f := append([]byte(nil), base...)
		f[frameHeaderSize+3] ^= 0x10
		_, _, _, err := NewFrameReader(bytes.NewReader(f), 0).Next()
		if !errors.Is(err, ErrFrameChecksum) {
			t.Fatalf("want checksum error, got %v", err)
		}
	})
	t.Run("flipped type bit", func(t *testing.T) {
		f := append([]byte(nil), base...)
		f[4] = byte(FrameEOS)
		_, _, _, err := NewFrameReader(bytes.NewReader(f), 0).Next()
		if !errors.Is(err, ErrFrameChecksum) {
			t.Fatalf("want checksum error, got %v", err)
		}
	})
	t.Run("invalid type", func(t *testing.T) {
		f := append([]byte(nil), base...)
		f[4] = 0xEE
		_, _, _, err := NewFrameReader(bytes.NewReader(f), 0).Next()
		if !errors.Is(err, ErrFrameType) {
			t.Fatalf("want type error, got %v", err)
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		f := append([]byte(nil), base...)
		f[0], f[1], f[2], f[3] = 0xFF, 0xFF, 0xFF, 0x7F
		_, _, _, err := NewFrameReader(bytes.NewReader(f), 1<<16).Next()
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("want too-large error, got %v", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		_, _, _, err := NewFrameReader(bytes.NewReader(base[:5]), 0).Next()
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("want unexpected EOF, got %v", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		_, _, _, err := NewFrameReader(bytes.NewReader(base[:len(base)-4]), 0).Next()
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("want unexpected EOF, got %v", err)
		}
	})
}

// A truncated stream claiming a huge payload must not allocate the claimed
// size: the reader grows its buffer only as bytes arrive.
func TestFrameDecodeTruncationDoesNotOverAllocate(t *testing.T) {
	f := AppendFrame(nil, FrameData, 1, bytes.Repeat([]byte("x"), 64))
	f[0], f[1], f[2], f[3] = 0x00, 0x00, 0x00, 0x08 // claim 128 MiB
	fr := NewFrameReader(bytes.NewReader(f), MaxPayload)
	if _, _, _, err := fr.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("want unexpected EOF, got %v", err)
	}
	if cap(fr.buf) > 2*growStep {
		t.Fatalf("reader allocated %d bytes for a truncated stream", cap(fr.buf))
	}
}

func TestSteerPayloadRoundTrip(t *testing.T) {
	p := AppendSteerPayload(nil, "iso-value", 0.75)
	name, value, err := DecodeSteerPayload(p)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if name != "iso-value" || value != 0.75 {
		t.Fatalf("got %q=%v", name, value)
	}
	if _, _, err := DecodeSteerPayload(p[:len(p)-1]); err == nil {
		t.Fatalf("truncated steer payload decoded")
	}
}

// --- handshake ---

func TestHandshakeVersionMismatch(t *testing.T) {
	lis, err := Listen("loopback", t.Name())
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer func() { _ = lis.Close() }()
	go func() {
		conn, aerr := lis.Accept()
		if aerr != nil {
			return
		}
		// Hand-roll a hello with a bogus version.
		h := appendHello(nil, Hello{Version: 99, Role: RoleWriter})
		_, _ = conn.Write(AppendFrame(nil, FrameHello, 0, h))
		_ = conn.Close()
	}()
	conn, err := Dial("loopback", t.Name())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = conn.Close() }()
	if _, _, err := AcceptHello(conn); err == nil {
		t.Fatalf("version 99 hello accepted")
	}
}

// --- loopback registry ---

func TestLoopbackDuplicateAndUnknown(t *testing.T) {
	lis, err := Listen("loopback", t.Name())
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	if _, err := Listen("loopback", t.Name()); err == nil {
		t.Fatalf("duplicate loopback name accepted")
	}
	if err := lis.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Name is free again after close — the endpoint-restart path.
	lis2, err := Listen("loopback", t.Name())
	if err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
	defer func() { _ = lis2.Close() }()
	if _, err := Dial("loopback", "no-such-endpoint"); err == nil {
		t.Fatalf("dial of unknown loopback name succeeded")
	}
}

// --- backoff ---

func TestBackoffDeterministicAndBounded(t *testing.T) {
	a, b := NewBackoff(7), NewBackoff(7)
	for i := 0; i < 12; i++ {
		da, db := a.Delay(i), b.Delay(i)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da < 0 || da > time.Duration(1.5*float64(time.Second)) {
			t.Fatalf("attempt %d: delay %v out of bounds", i, da)
		}
	}
	if NewBackoff(1).Delay(0) == NewBackoff(2).Delay(0) &&
		NewBackoff(1).Delay(1) == NewBackoff(2).Delay(1) &&
		NewBackoff(1).Delay(2) == NewBackoff(2).Delay(2) {
		t.Fatalf("different seeds produced identical schedules")
	}
}

// --- client <-> hub ---

// loopbackClient returns options for a deterministic in-process client:
// heartbeats off, generous retry window.
func loopbackClient(addr string, rank, writers, readers, depth int) ClientOptions {
	return ClientOptions{
		Network: "loopback", Addr: addr,
		Rank: rank, Writers: writers, Readers: readers, Depth: depth,
		HeartbeatInterval: -1,
		RetryWindow:       10 * time.Second,
	}
}

func startHub(t *testing.T, addr string, writers, readers, depth int) *Hub {
	t.Helper()
	lis, err := Listen("loopback", addr)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return NewHub(lis, HubOptions{Writers: writers, Readers: readers, Depth: depth})
}

func TestClientHubStagingFanIn(t *testing.T) {
	addr := t.Name()
	hub := startHub(t, addr, 2, 1, 2)
	defer func() { _ = hub.Close() }()

	clients := []*Client{
		DialWriter(loopbackClient(addr, 0, 2, 1, 2)),
		DialWriter(loopbackClient(addr, 1, 2, 1, 2)),
	}
	for w, c := range clients {
		for step := 0; step < 3; step++ {
			payload := []byte(fmt.Sprintf("writer %d step %d", w, step))
			if err := c.Send(step, payload); err != nil {
				t.Fatalf("writer %d send step %d: %v", w, step, err)
			}
			if err := c.Advance(step); err != nil {
				t.Fatalf("writer %d advance step %d: %v", w, step, err)
			}
			// Consume so depth 2 never blocks the loop.
			d := <-hub.Deliveries(0)
			want := fmt.Sprintf("writer %d step %d", d.Writer, d.Step)
			if string(d.Payload) != want {
				t.Fatalf("delivery %q, want %q", d.Payload, want)
			}
			d.Release()
		}
	}
	if hub.Advanced() != 2 {
		t.Fatalf("advanced = %d, want 2", hub.Advanced())
	}
	for w, c := range clients {
		if err := c.SendEOS(); err != nil {
			t.Fatalf("writer %d eos: %v", w, err)
		}
	}
	eos := 0
	for eos < 2 {
		d := <-hub.Deliveries(0)
		if !d.EOS {
			t.Fatalf("unexpected non-EOS delivery from writer %d", d.Writer)
		}
		d.Release()
		eos++
	}
	for w, c := range clients {
		if err := c.Drain(5 * time.Second); err != nil {
			t.Fatalf("writer %d drain: %v", w, err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("writer %d close: %v", w, err)
		}
	}
}

// With depth 1, a second Send must block until the endpoint releases the
// first delivery — the FlexPath backpressure contract on the wire.
func TestClientBackpressure(t *testing.T) {
	addr := t.Name()
	hub := startHub(t, addr, 1, 1, 1)
	defer func() { _ = hub.Close() }()
	c := DialWriter(loopbackClient(addr, 0, 1, 1, 1))
	defer func() { _ = c.Close() }()

	if err := c.Send(0, []byte("first")); err != nil {
		t.Fatalf("send 0: %v", err)
	}
	var secondDone atomic.Bool
	sent := make(chan error, 1)
	go func() {
		err := c.Send(1, []byte("second"))
		secondDone.Store(true)
		sent <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if secondDone.Load() {
		t.Fatalf("second send completed while queue depth was exhausted")
	}
	d := <-hub.Deliveries(0)
	d.Release()
	if err := <-sent; err != nil {
		t.Fatalf("second send: %v", err)
	}
	d = <-hub.Deliveries(0)
	if string(d.Payload) != "second" {
		t.Fatalf("delivery %q", d.Payload)
	}
	d.Release()
}

// Kill the endpoint with unreleased messages in flight, restart it at the
// same address, and verify the writer retransmits and the run completes —
// the endpoint-reconnect-mid-run property.
func TestClientRidesOutEndpointRestart(t *testing.T) {
	addr := t.Name()
	hub := startHub(t, addr, 1, 1, 2)
	c := DialWriter(loopbackClient(addr, 0, 1, 1, 2))
	defer func() { _ = c.Close() }()

	// Step 0 is delivered and released (consumed by the analysis).
	if err := c.Send(0, []byte("step 0")); err != nil {
		t.Fatalf("send 0: %v", err)
	}
	d := <-hub.Deliveries(0)
	d.Release()
	if err := c.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Step 1 is delivered but never executed; the endpoint dies holding it.
	if err := c.Send(1, []byte("step 1")); err != nil {
		t.Fatalf("send 1: %v", err)
	}
	<-hub.Deliveries(0) // accepted, not released
	if err := hub.Close(); err != nil {
		t.Fatalf("hub close: %v", err)
	}

	// The restarted endpoint has fresh state; the writer must retransmit
	// the unreleased step and continue.
	hub2 := startHub(t, addr, 1, 1, 2)
	defer func() { _ = hub2.Close() }()
	d = <-hub2.Deliveries(0)
	if d.Step != 1 || string(d.Payload) != "step 1" {
		t.Fatalf("after restart got step %d payload %q", d.Step, d.Payload)
	}
	d.Release()
	if err := c.Send(2, []byte("step 2")); err != nil {
		t.Fatalf("send 2 after restart: %v", err)
	}
	d = <-hub2.Deliveries(0)
	if d.Step != 2 {
		t.Fatalf("step %d after restart, want 2", d.Step)
	}
	d.Release()
	if err := c.Drain(5 * time.Second); err != nil {
		t.Fatalf("final drain: %v", err)
	}
	if got := c.Stats().Reconnects.Value(); got != 1 {
		t.Errorf("reconnects = %d, want 1", got)
	}
	if got := c.Stats().Retransmits.Value(); got < 1 {
		t.Errorf("retransmits = %d, want >= 1", got)
	}
}

// Sends racing a reconnect must never jump ahead of the retransmits: a
// newer sequence on the wire before an older one makes the hub's
// cumulative dedup swallow the older retransmit without delivering it,
// and the step is lost forever (Drain times out). The race needs
// depth > pending at reconnect so a Send can grab a restored credit
// while the install loop is still retransmitting; iterate to vary the
// interleaving.
func TestSendDuringReconnectKeepsOrder(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		addr := fmt.Sprintf("%s-%d", t.Name(), iter)
		hub := startHub(t, addr, 1, 1, 4)
		c := DialWriter(loopbackClient(addr, 0, 1, 1, 4))

		// Two steps on the wire, delivered but never released: the endpoint
		// dies holding them, with two credits still free.
		for step := 0; step < 2; step++ {
			if err := c.Send(step, []byte(fmt.Sprintf("step %d", step))); err != nil {
				t.Fatalf("iter %d: send %d: %v", iter, step, err)
			}
		}
		if err := hub.Close(); err != nil {
			t.Fatalf("iter %d: hub close: %v", iter, err)
		}

		// Restart the endpoint and immediately send more steps, so the new
		// Sends race the install/retransmit of steps 0 and 1.
		hub2 := startHub(t, addr, 1, 1, 4)
		sendErr := make(chan error, 1)
		go func() {
			for step := 2; step < 6; step++ {
				if err := c.Send(step, []byte(fmt.Sprintf("step %d", step))); err != nil {
					sendErr <- err
					return
				}
			}
			sendErr <- nil
		}()

		for want := 0; want < 6; want++ {
			select {
			case d := <-hub2.Deliveries(0):
				if d.Step != want {
					t.Fatalf("iter %d: delivery step %d, want %d (reordered across reconnect)", iter, d.Step, want)
				}
				d.Release()
			case <-time.After(5 * time.Second):
				t.Fatalf("iter %d: step %d never delivered (lost in reconnect)", iter, want)
			}
		}
		if err := <-sendErr; err != nil {
			t.Fatalf("iter %d: concurrent send: %v", iter, err)
		}
		if err := c.Drain(5 * time.Second); err != nil {
			t.Fatalf("iter %d: drain: %v", iter, err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("iter %d: close: %v", iter, err)
		}
		if err := hub2.Close(); err != nil {
			t.Fatalf("iter %d: hub2 close: %v", iter, err)
		}
	}
}

// A writer whose endpoint never comes back must fail Send once the retry
// window is exhausted, not hang forever.
func TestClientRetryWindowExhausted(t *testing.T) {
	c := DialWriter(ClientOptions{
		Network: "loopback", Addr: "never-listening",
		Rank: 0, Writers: 1, Readers: 1, Depth: 1,
		HeartbeatInterval: -1,
		RetryWindow:       100 * time.Millisecond,
		Backoff:           &Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond},
	})
	defer func() { _ = c.Close() }()
	done := make(chan error, 1)
	go func() { done <- c.Send(0, []byte("doomed")) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("send succeeded with no endpoint")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("send did not fail after the retry window expired")
	}
}

// Heartbeats over TCP: RTT samples accumulate and the mean is positive.
func TestHeartbeatRTTOverTCP(t *testing.T) {
	lis, err := Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hub := NewHub(lis, HubOptions{Writers: 1, Readers: 1, Depth: 1})
	defer func() { _ = hub.Close() }()
	c := DialWriter(ClientOptions{
		Network: "tcp", Addr: lis.Addr().String(),
		Rank: 0, Writers: 1, Readers: 1, Depth: 1,
		HeartbeatInterval: 5 * time.Millisecond,
		RetryWindow:       5 * time.Second,
	})
	defer func() { _ = c.Close() }()
	if err := c.Send(0, []byte("tcp step")); err != nil {
		t.Fatalf("send: %v", err)
	}
	d := <-hub.Deliveries(0)
	if string(d.Payload) != "tcp step" {
		t.Fatalf("delivery %q", d.Payload)
	}
	d.Release()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Heartbeats.Value() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d heartbeats completed", c.Stats().Heartbeats.Value())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if c.Stats().MeanHeartbeatRTT() <= 0 {
		t.Fatalf("mean heartbeat RTT = %v", c.Stats().MeanHeartbeatRTT())
	}
}
