package fabric

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"os"
	"strings"
	"testing"
)

// goldenPayloads reads testdata/handshake.golden into label -> bytes.
func goldenPayloads(t *testing.T) map[string][]byte {
	t.Helper()
	raw, err := os.ReadFile("testdata/handshake.golden")
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		label, hexStr, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("golden line %q has no separator", line)
		}
		b, err := hex.DecodeString(hexStr)
		if err != nil {
			t.Fatalf("golden line %q: %v", label, err)
		}
		out[label] = b
	}
	return out
}

// helloV2Bytes hand-rolls the version-2 Hello encoding — what a pre-world
// peer puts on the wire. Kept in test code (the production encoder only
// emits v3) so the acceptor's tolerance is tested against the real old
// layout, not against whatever the current encoder happens to produce.
func helloV2Bytes(h Hello) []byte {
	b := make([]byte, helloV2Len)
	le := binary.LittleEndian
	le.PutUint32(b[0:4], h.Version)
	b[4] = byte(h.Role)
	le.PutUint32(b[5:9], h.Rank)
	le.PutUint32(b[9:13], h.Writers)
	le.PutUint32(b[13:17], h.Readers)
	le.PutUint32(b[17:21], h.Depth)
	le.PutUint32(b[21:25], h.Codecs)
	le.PutUint32(b[25:29], h.Flags)
	return b
}

// TestHandshakeGolden pins the wire bytes of every handshake generation:
// the current encoders must reproduce the v3 (and answered-down v1/v2)
// fixtures exactly, and the decoder must accept all six and recover the
// encoded fields. A mismatch is a silent wire-format break.
func TestHandshakeGolden(t *testing.T) {
	golden := goldenPayloads(t)

	v3Hello := Hello{
		Version: 3, Role: RoleRank, Rank: 2, Codecs: 1,
		WorldID: 77001, WorldEpoch: 2, WorldSize: 4, PeerAddr: "127.0.0.1:4001",
	}
	if got := appendHello(nil, v3Hello); !bytes.Equal(got, golden["hello-v3"]) {
		t.Errorf("hello-v3 encoding drifted:\n got %x\nwant %x", got, golden["hello-v3"])
	}
	v2Hello := Hello{Version: 2, Role: RoleWriter, Rank: 3, Writers: 8, Readers: 2, Depth: 4, Codecs: 7, Flags: 1}
	if got := helloV2Bytes(v2Hello); !bytes.Equal(got, golden["hello-v2"]) {
		t.Errorf("hello-v2 fixture encoder drifted:\n got %x\nwant %x", got, golden["hello-v2"])
	}

	v3Welcome := Welcome{Version: 3, WorldID: 77001, WorldEpoch: 2, PeerRank: 2}
	if got := appendWelcome(nil, v3Welcome); !bytes.Equal(got, golden["welcome-v3"]) {
		t.Errorf("welcome-v3 encoding drifted:\n got %x\nwant %x", got, golden["welcome-v3"])
	}
	v2Welcome := Welcome{
		Version: 2, Credits: 4, Released: 7, Codec: 2,
		Extract: ExtractSpec{Kind: 1, Assoc: 1, Bins: 32, Coord: 0.5, Array: "data"},
	}
	if got := appendWelcomeV2(nil, v2Welcome); !bytes.Equal(got, golden["welcome-v2"]) {
		t.Errorf("welcome-v2 encoding drifted:\n got %x\nwant %x", got, golden["welcome-v2"])
	}

	// Decode side: every generation must come back with its fields intact.
	for label, want := range map[string]Hello{
		"hello-v1": {Version: 1, Role: RoleWriter, Rank: 3, Writers: 8, Readers: 2, Depth: 4, Codecs: 1 << CodecRaw},
		"hello-v2": v2Hello,
		"hello-v3": v3Hello,
	} {
		got, err := decodeHello(golden[label])
		if err != nil {
			t.Errorf("%s: %v", label, err)
		} else if got != want {
			t.Errorf("%s decoded %+v, want %+v", label, got, want)
		}
	}
	for label, want := range map[string]Welcome{
		"welcome-v1": {Version: 1, Credits: 4, Codec: CodecRaw},
		"welcome-v2": v2Welcome,
		"welcome-v3": v3Welcome,
	} {
		got, err := decodeWelcome(golden[label])
		if err != nil {
			t.Errorf("%s: %v", label, err)
		} else if got != want {
			t.Errorf("%s decoded %+v, want %+v", label, got, want)
		}
	}
}

// dialRaw connects to name and returns the conn plus a frame reader.
func dialRaw(t *testing.T, name string) (Conn, *FrameReader) {
	t.Helper()
	conn, err := Dial("loopback", name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn, NewFrameReader(conn, 0)
}

// TestHandshakeV2DialerFallback is the downgrade contract: a version-2
// dialer (pre-world wire format) hitting a version-3 acceptor must receive
// a Welcome in the exact v2 shape — v2 version number, no world tail — so
// its strict pre-world decoder keeps working.
func TestHandshakeV2DialerFallback(t *testing.T) {
	lis, err := Listen("loopback", t.Name())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = lis.Close() }()

	acceptErr := make(chan error, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			acceptErr <- err
			return
		}
		defer func() { _ = conn.Close() }()
		h, _, err := AcceptHello(conn)
		if err != nil {
			acceptErr <- err
			return
		}
		// The acceptor answers a welcome carrying v3-only state; the
		// version-aware encoder must strip it for the v2 peer.
		acceptErr <- SendWelcome(conn, Welcome{
			Credits: 4, Codec: CodecRaw,
			WorldID: 99, WorldEpoch: 9, PeerRank: 1,
		}, h.Version)
	}()

	conn, fr := dialRaw(t, t.Name())
	hello := helloV2Bytes(Hello{Version: 2, Role: RoleWriter, Writers: 1, Readers: 1, Depth: 2, Codecs: 1})
	if _, err := conn.Write(AppendFrame(nil, FrameHello, 0, hello)); err != nil {
		t.Fatal(err)
	}
	typ, _, payload, err := fr.Next()
	if err != nil || typ != FrameWelcome {
		t.Fatalf("welcome read: typ=%v err=%v", typ, err)
	}
	if err := <-acceptErr; err != nil {
		t.Fatalf("acceptor: %v", err)
	}
	// Exact v2 shape: fixed prefix + empty array name, no 16-byte tail.
	if len(payload) != welcomeV2Len {
		t.Fatalf("welcome payload %d bytes, want the v2 length %d (no world tail)", len(payload), welcomeV2Len)
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		t.Fatal(err)
	}
	if w.Version != 2 {
		t.Errorf("welcome version %d, want echoed-down 2", w.Version)
	}
	if w.WorldID != 0 || w.WorldEpoch != 0 || w.PeerRank != 0 {
		t.Errorf("world membership leaked into a v2 welcome: %+v", w)
	}
	if w.Credits != 4 {
		t.Errorf("credits %d, want 4", w.Credits)
	}
}

// TestHandshakeV1DialerFallback: same contract one generation further back —
// a version-1 dialer gets the 12-byte v1 welcome.
func TestHandshakeV1DialerFallback(t *testing.T) {
	lis, err := Listen("loopback", t.Name())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = lis.Close() }()

	acceptErr := make(chan error, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			acceptErr <- err
			return
		}
		defer func() { _ = conn.Close() }()
		h, _, err := AcceptHello(conn)
		if err != nil {
			acceptErr <- err
			return
		}
		acceptErr <- SendWelcome(conn, Welcome{Credits: 2}, h.Version)
	}()

	conn, fr := dialRaw(t, t.Name())
	hello := helloV2Bytes(Hello{Version: 1, Role: RoleWriter, Writers: 1, Readers: 1, Depth: 2})[:helloV1Len]
	if _, err := conn.Write(AppendFrame(nil, FrameHello, 0, hello)); err != nil {
		t.Fatal(err)
	}
	typ, _, payload, err := fr.Next()
	if err != nil || typ != FrameWelcome {
		t.Fatalf("welcome read: typ=%v err=%v", typ, err)
	}
	if err := <-acceptErr; err != nil {
		t.Fatalf("acceptor: %v", err)
	}
	if len(payload) != welcomeV1Len {
		t.Fatalf("welcome payload %d bytes, want the v1 length %d", len(payload), welcomeV1Len)
	}
}

// TestHandshakeWorldFieldsRoundTrip drives a full v3 exchange through
// DialHello/AcceptHello/SendWelcome and checks the world membership arrives
// intact in both directions.
func TestHandshakeWorldFieldsRoundTrip(t *testing.T) {
	lis, err := Listen("loopback", t.Name())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = lis.Close() }()

	type acceptResult struct {
		h   Hello
		err error
	}
	got := make(chan acceptResult, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			got <- acceptResult{err: err}
			return
		}
		defer func() { _ = conn.Close() }()
		h, _, err := AcceptHello(conn)
		if err != nil {
			got <- acceptResult{err: err}
			return
		}
		err = SendWelcome(conn, Welcome{WorldID: h.WorldID, WorldEpoch: h.WorldEpoch, PeerRank: h.Rank}, h.Version)
		got <- acceptResult{h: h, err: err}
	}()

	conn, err := Dial("loopback", t.Name())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	w, _, err := DialHello(conn, Hello{
		Role: RoleRank, Rank: 3, WorldID: 555, WorldEpoch: 6, WorldSize: 8,
		PeerAddr: "world-555-e6-rank-3",
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-got
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.h.Role != RoleRank || res.h.Rank != 3 || res.h.WorldID != 555 ||
		res.h.WorldEpoch != 6 || res.h.WorldSize != 8 || res.h.PeerAddr != "world-555-e6-rank-3" {
		t.Errorf("hello arrived mangled: %+v", res.h)
	}
	if w.Version != ProtocolVersion || w.WorldID != 555 || w.WorldEpoch != 6 || w.PeerRank != 3 {
		t.Errorf("welcome arrived mangled: %+v", w)
	}
}
