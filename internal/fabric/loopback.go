package fabric

import (
	"fmt"
	"net"
	"sync"
)

// The loopback network: named in-process rendezvous points. Dialing a
// registered name yields one end of a synchronous duplex pipe whose other
// end pops out of the listener's Accept — the same byte-stream contract as
// a TCP socket (including deadlines, via net.Pipe), with none of the
// kernel. Tests and the single-process tools run the identical framing,
// credit, and reconnect code over it, deterministically.
var loopback = struct {
	mu        sync.Mutex
	listeners map[string]*loopbackListener
}{listeners: map[string]*loopbackListener{}}

// loopbackAddr names a loopback endpoint.
type loopbackAddr string

// Network implements net.Addr.
func (loopbackAddr) Network() string { return "loopback" }

// String implements net.Addr.
func (a loopbackAddr) String() string { return string(a) }

// loopbackListener queues dialed connections for Accept.
type loopbackListener struct {
	name    string
	pending chan Conn
	mu      sync.Mutex
	closed  bool
	done    chan struct{}
}

func listenLoopback(name string) (Listener, error) {
	loopback.mu.Lock()
	defer loopback.mu.Unlock()
	if _, ok := loopback.listeners[name]; ok {
		return nil, fmt.Errorf("fabric: loopback name %q already listening", name)
	}
	l := &loopbackListener{
		name:    name,
		pending: make(chan Conn, 16),
		done:    make(chan struct{}),
	}
	loopback.listeners[name] = l
	return l, nil
}

func dialLoopback(name string) (Conn, error) {
	loopback.mu.Lock()
	l := loopback.listeners[name]
	loopback.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("fabric: no loopback listener %q", name)
	}
	client, server := net.Pipe()
	select {
	case l.pending <- server:
	case <-l.done:
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("fabric: loopback listener %q closed", name)
	}
	// Re-check after winning the race into the queue: Close drains pending,
	// but an enqueue landing after that drain would strand both pipe ends
	// until the handshake deadline. If the listener closed, fail fast —
	// closing our ends aborts any handshake a racing Accept started.
	select {
	case <-l.done:
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("fabric: loopback listener %q closed", name)
	default:
	}
	return client, nil
}

// Accept implements Listener.
func (l *loopbackListener) Accept() (Conn, error) {
	select {
	case c := <-l.pending:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("fabric: loopback listener %q closed", l.name)
	}
}

// Close implements Listener: unregisters the name and wakes blocked
// Accept/Dial calls.
func (l *loopbackListener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	close(l.done)
	// Drain conns that were queued but never accepted so their dialers
	// don't block until the handshake deadline and the pipe ends don't leak.
drain:
	for {
		select {
		case c := <-l.pending:
			_ = c.Close()
		default:
			break drain
		}
	}
	loopback.mu.Lock()
	if loopback.listeners[l.name] == l {
		delete(loopback.listeners, l.name)
	}
	loopback.mu.Unlock()
	return nil
}

// Addr implements Listener.
func (l *loopbackListener) Addr() net.Addr { return loopbackAddr(l.name) }
