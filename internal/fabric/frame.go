package fabric

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Wire frame layout (all little-endian):
//
//	offset 0  uint32  payload length
//	offset 4  uint8   frame type
//	offset 5  uint32  sequence number
//	offset 9  uint32  CRC-32 (IEEE) over type, sequence, and payload
//	offset 13 payload
//
// The CRC covers everything after the length so a flipped bit anywhere in
// the frame body is detected; the length itself is validated by bounds
// (MaxPayload) before any allocation, so a corrupt length cannot make the
// reader over-allocate.
const (
	frameHeaderSize = 13

	// MaxPayload bounds a single frame. A staged step for the largest
	// configurations in the paper's scaling study is tens of MB; 256 MiB
	// leaves headroom without letting a corrupt length exhaust memory.
	MaxPayload = 256 << 20
)

// FrameType discriminates the staging protocol's messages.
type FrameType uint8

// The protocol's frame types. Hello/Welcome open a connection; Data/EOS
// carry the stream (and consume credits); Advance publishes step metadata;
// Release returns credits; Steer carries viewer steering; Heartbeat pairs
// bound failure detection and measure RTT.
const (
	FrameHello FrameType = 1 + iota
	FrameWelcome
	FrameData
	FrameEOS
	FrameAdvance
	FrameAdvanceAck
	FrameRelease
	FrameSteer
	FrameHeartbeat
	FrameHeartbeatAck
	// FrameEnvelope carries one mpi point-to-point message between ranks of
	// a cross-process world (internal/world); the payload is an
	// mpi.Envelope.
	FrameEnvelope
	// FrameWorldInfo is the registry's address book: after every rank of a
	// world has registered, each receives the full rank -> listener-address
	// table and meshes up directly.
	FrameWorldInfo

	frameTypeMax = FrameWorldInfo
)

// String implements fmt.Stringer for diagnostics.
func (t FrameType) String() string {
	names := [...]string{"invalid", "hello", "welcome", "data", "eos", "advance",
		"advance-ack", "release", "steer", "heartbeat", "heartbeat-ack",
		"envelope", "world-info"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// Frame decode errors, distinguishable by errors.Is.
var (
	ErrFrameTooLarge = errors.New("fabric: frame exceeds payload limit")
	ErrFrameChecksum = errors.New("fabric: frame checksum mismatch")
	ErrFrameType     = errors.New("fabric: invalid frame type")
)

// AppendFrame appends one encoded frame to dst and returns the extended
// slice. The destination buffer is reusable across frames (dst[:0]), which
// keeps the per-frame send path allocation-free once the scratch buffer has
// grown to the working payload size.
func AppendFrame(dst []byte, typ FrameType, seq uint32, payload []byte) []byte {
	le := binary.LittleEndian
	var hdr [frameHeaderSize]byte
	le.PutUint32(hdr[0:4], uint32(len(payload)))
	hdr[4] = byte(typ)
	le.PutUint32(hdr[5:9], seq)
	crc := crc32.ChecksumIEEE(hdr[4:9])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	le.PutUint32(hdr[9:13], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// FrameOverhead is the framing cost prepended to every payload: the
// length/type/seq/CRC header SealFrame fills in.
const FrameOverhead = frameHeaderSize

// SealFrame writes the frame header for a payload built in place. The
// caller reserves FrameOverhead bytes at the front of buf, appends the
// payload after them, and seals once — the zero-copy alternative to
// AppendFrame for fan-out paths that encode one immutable frame and write
// it to many connections. buf[FrameOverhead:] is the payload; the sealed
// buf is exactly what AppendFrame(nil, typ, seq, payload) would produce.
func SealFrame(buf []byte, typ FrameType, seq uint32) {
	if len(buf) < frameHeaderSize {
		panic("fabric: SealFrame buffer smaller than the reserved header")
	}
	le := binary.LittleEndian
	payload := buf[frameHeaderSize:]
	le.PutUint32(buf[0:4], uint32(len(payload)))
	buf[4] = byte(typ)
	le.PutUint32(buf[5:9], seq)
	crc := crc32.ChecksumIEEE(buf[4:9])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	le.PutUint32(buf[9:13], crc)
}

// FrameReader decodes frames from a byte stream, reusing one payload
// buffer across calls. It never allocates more than maxPayload bytes and
// never trusts the claimed length further than the bytes that actually
// arrive: the payload buffer grows in bounded steps as data is read, so a
// truncated stream with a huge claimed length cannot balloon memory.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
	max int
}

// NewFrameReader wraps r. maxPayload <= 0 selects MaxPayload.
func NewFrameReader(r io.Reader, maxPayload int) *FrameReader {
	if maxPayload <= 0 {
		maxPayload = MaxPayload
	}
	return &FrameReader{r: bufio.NewReaderSize(r, 64<<10), max: maxPayload}
}

// growStep bounds each payload-buffer growth increment.
const growStep = 1 << 20

// Next reads one frame. The returned payload slice is valid only until the
// following Next call. Truncation yields io.ErrUnexpectedEOF (or io.EOF at
// a clean frame boundary); corruption yields ErrFrameChecksum,
// ErrFrameTooLarge, or ErrFrameType.
func (f *FrameReader) Next() (FrameType, uint32, []byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(f.r, hdr[0:1]); err != nil {
		return 0, 0, nil, err // clean EOF between frames stays io.EOF
	}
	if _, err := io.ReadFull(f.r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, err
	}
	le := binary.LittleEndian
	length := int(le.Uint32(hdr[0:4]))
	typ := FrameType(hdr[4])
	seq := le.Uint32(hdr[5:9])
	wantCRC := le.Uint32(hdr[9:13])
	if typ == 0 || typ > frameTypeMax {
		return 0, 0, nil, fmt.Errorf("%w: %d", ErrFrameType, hdr[4])
	}
	if length > f.max {
		return 0, 0, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, length, f.max)
	}
	// Read the payload in bounded increments, growing the reusable buffer
	// only as bytes actually arrive.
	read := 0
	for read < length {
		n := length - read
		if n > growStep {
			n = growStep
		}
		if read+n > len(f.buf) {
			if read+n <= cap(f.buf) {
				f.buf = f.buf[:read+n]
			} else {
				grown := make([]byte, read+n)
				copy(grown, f.buf[:read])
				f.buf = grown
			}
		}
		if _, err := io.ReadFull(f.r, f.buf[read:read+n]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, 0, nil, err
		}
		read += n
	}
	payload := f.buf[:length]
	crc := crc32.ChecksumIEEE(hdr[4:9])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if crc != wantCRC {
		return 0, 0, nil, fmt.Errorf("%w: %s frame seq %d", ErrFrameChecksum, typ, seq)
	}
	return typ, seq, payload, nil
}

// Control-payload codecs. These are the staging control messages the frame
// types carry; all fixed-width fields are little-endian.

// AppendStepPayload prefixes a staged BP container with its step number —
// the FrameData payload layout.
func AppendStepPayload(dst []byte, step int, container []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(int64(step)))
	dst = append(dst, hdr[:]...)
	return append(dst, container...)
}

// SplitStepPayload reverses AppendStepPayload. The returned container
// aliases p.
func SplitStepPayload(p []byte) (step int, container []byte, err error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("fabric: data payload too short (%d bytes)", len(p))
	}
	return int(int64(binary.LittleEndian.Uint64(p[:8]))), p[8:], nil
}

// Coded data payloads. When the handshake negotiates a codec other than
// raw, every FrameData payload switches from the legacy step+container
// layout to step(8) + codec ID(1) + flags(1) + coded body, so a decoder can
// verify it is applying the negotiated transform and knows whether the
// frame is a keyframe (self-contained) or a delta against the previous
// step.
const (
	codedStepHeader = 10
	// codedKeyframe marks a frame that decodes without a previous-step
	// reference — the delta-chain reset a reconnect replays with.
	codedKeyframe uint8 = 1 << 0
)

// AppendCodedStepPayload builds a coded FrameData payload.
func AppendCodedStepPayload(dst []byte, step int, codec uint8, keyframe bool, body []byte) []byte {
	var hdr [codedStepHeader]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(int64(step)))
	hdr[8] = codec
	if keyframe {
		hdr[9] = codedKeyframe
	}
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// SplitCodedStepPayload reverses AppendCodedStepPayload. The returned body
// aliases p.
func SplitCodedStepPayload(p []byte) (step int, codec uint8, keyframe bool, body []byte, err error) {
	if len(p) < codedStepHeader {
		return 0, 0, false, nil, fmt.Errorf("fabric: coded data payload too short (%d bytes)", len(p))
	}
	return int(int64(binary.LittleEndian.Uint64(p[:8]))), p[8], p[9]&codedKeyframe != 0, p[codedStepHeader:], nil
}

// AppendSteerPayload encodes a steering command — the FrameSteer payload.
func AppendSteerPayload(dst []byte, name string, value float64) []byte {
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(len(name)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, name...)
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], math.Float64bits(value))
	return append(dst, v[:]...)
}

// DecodeSteerPayload reverses AppendSteerPayload.
func DecodeSteerPayload(p []byte) (name string, value float64, err error) {
	if len(p) < 2 {
		return "", 0, fmt.Errorf("fabric: steer payload too short (%d bytes)", len(p))
	}
	n := int(binary.LittleEndian.Uint16(p[:2]))
	if len(p) != 2+n+8 {
		return "", 0, fmt.Errorf("fabric: steer payload length %d, want %d", len(p), 2+n+8)
	}
	return string(p[2 : 2+n]), math.Float64frombits(binary.LittleEndian.Uint64(p[2+n:])), nil
}
