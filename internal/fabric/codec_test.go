package fabric

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodecNames(t *testing.T) {
	for _, id := range []uint8{CodecRaw, CodecFlate, CodecDelta} {
		got, err := ParseCodec(CodecName(id))
		if err != nil || got != id {
			t.Fatalf("ParseCodec(CodecName(%d)) = %d, %v", id, got, err)
		}
	}
	if _, err := ParseCodec("zstd"); !errors.Is(err, ErrCodecUnknown) {
		t.Fatalf("ParseCodec(zstd) err = %v, want ErrCodecUnknown", err)
	}
}

func TestChooseCodec(t *testing.T) {
	cases := []struct {
		pref    []uint8
		offered uint32
		want    uint8
	}{
		{[]uint8{CodecDelta, CodecFlate}, AllCodecs, CodecDelta},
		{[]uint8{CodecDelta, CodecFlate}, 1 << CodecFlate, CodecFlate},
		{[]uint8{CodecDelta}, 1 << CodecRaw, CodecRaw}, // v1 peer: nothing offered beyond raw
		{[]uint8{CodecDelta}, 0, CodecRaw},
		{nil, AllCodecs, CodecRaw},
		{[]uint8{200, CodecFlate}, AllCodecs, CodecFlate}, // unknown preference skipped
	}
	for i, c := range cases {
		if got := chooseCodec(c.pref, c.offered); got != c.want {
			t.Fatalf("case %d: chooseCodec(%v, %b) = %d, want %d", i, c.pref, c.offered, got, c.want)
		}
	}
}

func TestShuffle8RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, n := range []int{0, 1, 7, 8, 9, 16, 64, 100, 1023} {
		src := make([]byte, n)
		rng.Read(src)
		sh := make([]byte, n)
		back := make([]byte, n)
		shuffle8(sh, src)
		unshuffle8(back, sh)
		if !bytes.Equal(back, src) {
			t.Fatalf("n=%d: unshuffle(shuffle(x)) != x", n)
		}
	}
}

// TestCodecRoundTripProperty: a chain of steps through one encoder decodes
// bit-identical through one decoder, for every codec and for payload shapes
// including non-multiple-of-8 lengths, size changes mid-chain (forcing a
// keyframe), and empty steps.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, id := range []uint8{CodecFlate, CodecDelta} {
			enc := newCodecEncoder(id)
			dec := newCodecDecoder(id, 0)
			steps := 1 + rng.Intn(6)
			size := rng.Intn(4096)
			field := make([]float64, 512)
			for i := range field {
				field[i] = rng.NormFloat64()
			}
			for s := 0; s < steps; s++ {
				if rng.Intn(4) == 0 {
					size = rng.Intn(4096) // shape change: chain must keyframe
				}
				payload := make([]byte, size)
				// Smooth-ish content: slowly evolving float64 bit patterns,
				// like consecutive oscillator steps.
				for i := 0; i+8 <= size; i += 8 {
					field[(i/8)%len(field)] += rng.NormFloat64() * 1e-3
					v := math.Float64bits(field[(i/8)%len(field)])
					for b := 0; b < 8; b++ {
						payload[i+b] = byte(v >> (8 * b))
					}
				}
				body, key, err := enc.encode(payload)
				if err != nil {
					t.Logf("encode: %v", err)
					return false
				}
				if s == 0 && !key {
					t.Log("first frame was not a keyframe")
					return false
				}
				got, err := dec.decode(body, key)
				if err != nil {
					t.Logf("decode: %v", err)
					return false
				}
				if !bytes.Equal(got, payload) {
					t.Logf("step %d (codec %s, %d bytes): round trip differs", s, CodecName(id), size)
					return false
				}
			}
			enc.close()
			dec.close()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}

// TestCodecKeyframeResetsChain models the reconnect path: a fresh decoder
// (endpoint restart) can only resume from a keyframe, and the encoder
// produces one when asked to restart its epoch.
func TestCodecKeyframeResetsChain(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	payloads := make([][]byte, 4)
	for i := range payloads {
		payloads[i] = make([]byte, 256)
		rng.Read(payloads[i])
	}

	enc := newCodecEncoder(CodecDelta)
	defer enc.close()
	dec := newCodecDecoder(CodecDelta, 0)
	for i := 0; i < 2; i++ {
		body, key, err := enc.encode(payloads[i])
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && key {
			t.Fatal("steady-state frame unexpectedly keyframed")
		}
		if _, err := dec.decode(body, key); err != nil {
			t.Fatal(err)
		}
	}
	dec.close()

	// Endpoint dies. A new decoder must reject the continuation of the old
	// chain...
	dec2 := newCodecDecoder(CodecDelta, 0)
	defer dec2.close()
	body, key, err := enc.encode(payloads[2])
	if err != nil {
		t.Fatal(err)
	}
	if key {
		t.Fatal("expected a delta frame to demonstrate the chain break")
	}
	if _, err := dec2.decode(body, key); !errors.Is(err, ErrCodecChain) {
		t.Fatalf("decode of mid-chain delta on fresh decoder: err = %v, want ErrCodecChain", err)
	}

	// ...and accept a fresh epoch: new encoder state → keyframe first.
	enc2 := newCodecEncoder(CodecDelta)
	defer enc2.close()
	for i, p := range payloads {
		body, key, err := enc2.encode(p)
		if err != nil {
			t.Fatal(err)
		}
		if (i == 0) != key {
			t.Fatalf("frame %d keyframe = %v", i, key)
		}
		got, err := dec2.decode(body, key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: round trip differs after epoch reset", i)
		}
	}
}

// TestCodecDecodeBound: a body claiming (or actually holding) more than the
// configured payload bound errors out without materializing the excess.
func TestCodecDecodeBound(t *testing.T) {
	enc := newCodecEncoder(CodecFlate)
	defer enc.close()
	big := make([]byte, 1<<20) // zeros: compresses to ~1KB
	body, key, err := enc.encode(big)
	if err != nil {
		t.Fatal(err)
	}
	const max = 64 << 10
	dec := newCodecDecoder(CodecFlate, max)
	defer dec.close()
	if _, err := dec.decode(body, key); !errors.Is(err, ErrCodecTooLarge) {
		t.Fatalf("decode err = %v, want ErrCodecTooLarge", err)
	}
	if cap(dec.infl) > max+growStep {
		t.Fatalf("inflate buffer grew to %d, far past the %d bound", cap(dec.infl), max)
	}
}

// TestCodecDecodeCorrupt: bit flips in compressed bodies produce errors,
// never panics.
func TestCodecDecodeCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	enc := newCodecEncoder(CodecDelta)
	defer enc.close()
	payload := make([]byte, 2048)
	rng.Read(payload)
	body, key, err := enc.encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		mut := append([]byte(nil), body...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		dec := newCodecDecoder(CodecDelta, 1<<20)
		got, err := dec.decode(mut, key)
		if err == nil && !bytes.Equal(got, payload) {
			// A flip the checksum-free flate stream tolerates may decode to
			// different bytes; that layer's integrity comes from the frame
			// CRC. It must simply not panic or over-allocate.
			if len(got) > 1<<20 {
				t.Fatalf("mutation %d: decoded %d bytes past bound", i, len(got))
			}
		}
		dec.close()
	}
}
