package lint

import (
	"go/types"
	"testing"
)

// computeMayblockFacts loads the mayblock fixture and runs the fixpoint the
// way Run does.
func computeMayblockFacts(t *testing.T) (*Package, *Facts) {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir("testdata/src/mayblock", "fixture/mayblock")
	if err != nil {
		t.Fatalf("load mayblock fixture: %v", err)
	}
	return pkg, ComputeFacts(l, []*Package{pkg}, DefaultConfig())
}

// fixtureFunc resolves a package-level function of the fixture by name.
func fixtureFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("fixture function %s not found", name)
	}
	return fn
}

// TestMayBlockSeeds pins the seed set: each direct blocking operation marks
// its function, with the reason naming the operation.
func TestMayBlockSeeds(t *testing.T) {
	pkg, facts := computeMayblockFacts(t)
	seeds := map[string]string{
		"RecvSeed":          "channel receive",
		"SendSeed":          "channel send",
		"RangeSeed":         "range over channel",
		"SelectSeed":        "select without default",
		"SleepSeed":         "time.Sleep",
		"CondWaitSeed":      "sync.Cond.Wait",
		"WaitGroupSeed":     "sync.WaitGroup.Wait",
		"NetWriteSeed":      "net Write",
		"IfaceConnLikeSeed": "conn-like c.Write",
	}
	for name, wantWhy := range seeds {
		why, blocks := facts.MayBlock(fixtureFunc(t, pkg, name))
		if !blocks {
			t.Errorf("%s: not marked may-block, want seed %q", name, wantWhy)
			continue
		}
		if why != wantWhy {
			t.Errorf("%s: reason = %q, want %q", name, why, wantWhy)
		}
	}
}

// TestMayBlockExclusions pins what must NOT be marked: defaulted selects,
// go-spawned blocking work, calls through non-conn-like interfaces, calls
// to function-typed variables, and pure code.
func TestMayBlockExclusions(t *testing.T) {
	pkg, facts := computeMayblockFacts(t)
	for _, name := range []string{
		"SelectDefaultClean", // default clause makes the select a poll
		"SpawnOnly",          // go f(): the spawner does not block
		"SpawnLitOnly",       // go func(){...}(): same
		"IfaceNonConnClean",  // non-conn-like interface: conservatism boundary
		"FuncVarClean",       // no static callee
		"Pure",
	} {
		if why, blocks := facts.MayBlock(fixtureFunc(t, pkg, name)); blocks {
			t.Errorf("%s: marked may-block (%q), want clean", name, why)
		}
	}
}

// TestMayBlockTransitive pins propagation along call edges, with the reason
// naming the callee that carries the blocking operation.
func TestMayBlockTransitive(t *testing.T) {
	pkg, facts := computeMayblockFacts(t)
	why1, ok1 := facts.MayBlock(fixtureFunc(t, pkg, "Transitive1"))
	if !ok1 || why1 != "calls fixture/mayblock.RecvSeed" {
		t.Errorf("Transitive1 = (%q, %v), want one-hop propagation from RecvSeed", why1, ok1)
	}
	why2, ok2 := facts.MayBlock(fixtureFunc(t, pkg, "Transitive2"))
	if !ok2 || why2 != "calls fixture/mayblock.Transitive1" {
		t.Errorf("Transitive2 = (%q, %v), want two-hop propagation through Transitive1", why2, ok2)
	}
}

// TestMayBlockDecl pins the Func->FuncDecl mapping the goroutine-leak rule
// uses to analyze `go f()` spawn targets.
func TestMayBlockDecl(t *testing.T) {
	pkg, facts := computeMayblockFacts(t)
	fn := fixtureFunc(t, pkg, "RecvSeed")
	decl := facts.Decl(fn)
	if decl == nil {
		t.Fatal("Decl(RecvSeed) = nil, want the fixture declaration")
	}
	if decl.Name.Name != "RecvSeed" {
		t.Errorf("Decl(RecvSeed).Name = %s", decl.Name.Name)
	}
	if facts.Decl(nil) != nil {
		t.Error("Decl(nil) should be nil")
	}
}
