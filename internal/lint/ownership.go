package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RuleOwnership flags uses of a buffer after its ownership left the
// function: a slice passed to mpi.SendOwned/SendRecvOwned belongs to the
// receiver, a framebuffer after Release belongs to the pool, and a slice
// handed to fabric's BufPool.Put belongs to the codec pool — the next Get
// may already be writing over it. Either way the memory may be concurrently
// overwritten, which corrupts results silently — the exact aliasing class
// PR 1's pool tests guard dynamically.
const RuleOwnership = "ownership"

// OwnershipAnalyzer builds the ownership rule.
func OwnershipAnalyzer() *Analyzer {
	return &Analyzer{
		Name: RuleOwnership,
		Doc:  "forbid touching a buffer after mpi.SendOwned/SendRecvOwned, Framebuffer.Release, or fabric BufPool.Put gave it away",
		Run:  runOwnership,
	}
}

// giveInfo records how and where a variable was given away.
type giveInfo struct {
	what string // "mpi.SendOwned", "mpi.SendRecvOwned", "Release", or "BufPool.Put"
	line int
}

// ownWalker performs a lexical walk of one function body: statements are
// processed in source order, a give taints the variable's object, an
// assignment to the bare variable kills the taint, and any read or
// element-write of a tainted variable is a finding. Loop bodies are walked
// twice so a give at the bottom of an iteration catches the use at the top
// of the next one; `reported` dedupes the second pass.
type ownWalker struct {
	pass     *Pass
	given    map[types.Object]giveInfo
	reported map[token.Pos]bool
}

func runOwnership(p *Pass) {
	if p.Pkg.Path == p.Cfg.MPIPkg {
		return // the runtime itself implements the transfer
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				w := &ownWalker{pass: p, given: map[types.Object]giveInfo{}, reported: map[token.Pos]bool{}}
				w.stmts(body.List)
			}
			return true
		})
	}
}

func (w *ownWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

// branch walks a conditional block. When the block terminates (return,
// panic, break/continue/goto), the execution that performed its gives and
// kills never reaches the code after the conditional, so the walker's taint
// state is restored — this is what keeps the ubiquitous
// `if err != nil { fb.Release(); return }` pattern clean.
func (w *ownWalker) branch(list []ast.Stmt) {
	if !terminates(list) {
		w.stmts(list)
		return
	}
	saved := make(map[types.Object]giveInfo, len(w.given))
	for k, v := range w.given {
		saved[k] = v
	}
	w.stmts(list)
	w.given = saved
}

// terminates reports whether a statement list always transfers control away
// from the code that follows it.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	case *ast.LabeledStmt:
		return terminates([]ast.Stmt{s.Stmt})
	}
	return false
}

func (w *ownWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.expr(rhs)
		}
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				// Rebinding the variable replaces the given buffer; the
				// taint dies with the old value.
				if obj := w.objOf(id); obj != nil {
					delete(w.given, obj)
				}
				continue
			}
			// x[i] = v or x.F = v writes through the given buffer: a use.
			w.useOf(lhs)
			w.expr(indexesOf(lhs))
		}
	case *ast.IncDecStmt:
		// x++ reads the old value before writing: a use either way.
		w.useOf(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
					for _, name := range vs.Names {
						if obj := w.pass.Pkg.Info.Defs[name]; obj != nil {
							delete(w.given, obj)
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		w.branch(s.Body.List)
		if s.Else != nil {
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				w.branch(blk.List)
			} else {
				w.stmt(s.Else)
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		// Two passes: catch wrap-around uses of a buffer given late in the
		// previous iteration (unless the loop top rebinds it first).
		w.stmts(s.Body.List)
		if s.Post != nil {
			w.stmt(s.Post)
		}
		w.stmts(s.Body.List)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.stmts(s.Body.List)
		w.stmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e)
				}
				w.branch(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branch(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm)
				}
				w.stmts(cc.Body)
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.GoStmt:
		w.expr(s.Call)
	case *ast.DeferStmt:
		w.expr(s.Call)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	}
}

// expr checks every identifier in e against the current taints, then applies
// any gives e performs. Scanning before tainting keeps a give's own
// arguments clean while a second give of the same variable still trips.
func (w *ownWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// The closure's free variables are uses at creation time; its
			// own gives are analyzed when runOwnership visits the literal.
			w.scanUses(n)
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			w.checkIdent(id)
		}
		return true
	})
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := calleeFromPkg(w.pass.Pkg.Info, call, w.pass.Cfg.MPIPkg); ok {
			if (name == "SendOwned" || name == "SendRecvOwned") && len(call.Args) >= 4 {
				w.give(call.Args[3], "mpi."+name)
			}
			return true
		}
		if recv, ok := methodOn(w.pass.Pkg.Info, call, w.pass.Cfg.RenderPkg, "Framebuffer", "Release"); ok {
			w.give(recv, "Release")
		}
		// BufPool.Put gives its ARGUMENT to the pool (the receiver is the
		// pool itself and stays usable).
		if _, ok := methodOn(w.pass.Pkg.Info, call, w.pass.Cfg.FabricPkg, "BufPool", "Put"); ok && len(call.Args) == 1 {
			w.give(call.Args[0], "BufPool.Put")
		}
		return true
	})
}

// scanUses reports tainted identifiers anywhere under n without processing
// gives or kills.
func (w *ownWalker) scanUses(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			w.checkIdent(id)
		}
		return true
	})
}

func (w *ownWalker) checkIdent(id *ast.Ident) {
	obj := w.pass.Pkg.Info.Uses[id]
	if obj == nil {
		return
	}
	info, tainted := w.given[obj]
	if !tainted || w.reported[id.Pos()] {
		return
	}
	w.reported[id.Pos()] = true
	w.pass.Reportf(id.Pos(), "%s used after %s gave its buffer away (line %d); the owner may already be overwriting it", id.Name, info.what, info.line)
}

// useOf flags the root variable of a compound lvalue when tainted.
func (w *ownWalker) useOf(e ast.Expr) {
	root := rootIdent(e)
	if root == nil {
		if sel, ok := e.(*ast.SelectorExpr); ok {
			root = rootIdent(sel.X)
		}
	}
	if root != nil {
		w.checkIdent(root)
	}
}

// give taints the object behind expr (when it is a variable, possibly
// sliced or indexed) as given away.
func (w *ownWalker) give(expr ast.Expr, what string) {
	root := rootIdent(expr)
	if root == nil {
		return
	}
	obj := w.objOf(root)
	if obj == nil {
		return
	}
	if _, ok := obj.(*types.Var); !ok {
		return
	}
	w.given[obj] = giveInfo{what: what, line: w.pass.Fset.Position(expr.Pos()).Line}
}

func (w *ownWalker) objOf(id *ast.Ident) types.Object {
	if obj := w.pass.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return w.pass.Pkg.Info.Defs[id]
}

// indexesOf returns the index expression of an index lvalue so its reads are
// still scanned (x[i] reads i even though x is the write target).
func indexesOf(e ast.Expr) ast.Expr {
	if ix, ok := e.(*ast.IndexExpr); ok {
		return ix.Index
	}
	return nil
}
