package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// moduleScanOnce shares one full-module scan between the cleanliness and
// runtime-budget tests, so tier 1 pays for the source-importer load once.
var moduleScanOnce struct {
	sync.Once
	res *Result
	err error
}

func moduleScan(t *testing.T) *Result {
	t.Helper()
	moduleScanOnce.Do(func() {
		moduleScanOnce.res, moduleScanOnce.err = RunModule("../..")
	})
	if moduleScanOnce.err != nil {
		t.Fatalf("RunModule: %v", moduleScanOnce.err)
	}
	return moduleScanOnce.res
}

// TestModuleIsLintClean is the enforcement point: running the full suite
// over the whole module must report zero unsuppressed diagnostics, so any
// new violation fails `go test ./...` (tier 1), not just `make lint`.
func TestModuleIsLintClean(t *testing.T) {
	res := moduleScan(t)
	for _, d := range res.Diagnostics {
		t.Errorf("%s", d.String())
	}
	// Guard against the scan silently shrinking (e.g. a loader regression
	// skipping directories would make "zero findings" meaningless).
	if res.Packages < 30 || res.Files < 60 {
		t.Errorf("suspiciously small scan: %d packages, %d files", res.Packages, res.Files)
	}
	if res.Suppressed == 0 {
		t.Errorf("expected at least one suppressed finding (the tree carries documented //lint:ignore directives)")
	}
	// The concurrency rules must be present in the scan: each carries
	// documented suppressions in the fabric/live wire paths, so a per-rule
	// zero here means the rule silently stopped running.
	if rc := res.PerRule[RuleLockBlocking]; rc.Suppressed == 0 {
		t.Errorf("lock-blocking: no suppressed findings — the rule (or its suppressions) went missing")
	}
}

// TestLintRuntimeBudget pins the scan cost: the three interprocedural
// concurrency rules (and the may-block fixpoint behind them) must stay
// under 2x the BENCH_2 baseline of the five-rule suite (2.17s wall), per
// the v3 acceptance criteria recorded in BENCH_7.json. One retry absorbs
// CI scheduling noise; two consecutive misses are a real regression.
func TestLintRuntimeBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates the scan ~5x; the budget is pinned for normal builds (BENCH_7.json)")
	}
	const budget = 2 * 2170 * time.Millisecond
	res := moduleScan(t)
	elapsed := res.Elapsed
	if elapsed >= budget {
		fresh, err := RunModule("../..")
		if err != nil {
			t.Fatalf("RunModule (retry): %v", err)
		}
		elapsed = fresh.Elapsed
	}
	if elapsed >= budget {
		t.Errorf("module scan took %s, budget %s (2x BENCH_2 baseline); the may-block fixpoint or a new rule regressed scan cost", elapsed.Round(time.Millisecond), budget)
	}
}

// TestWriteFormats checks the two CLI output encodings.
func TestWriteFormats(t *testing.T) {
	diags := []Diagnostic{
		{File: "a/b.go", Line: 3, Col: 2, Rule: "ownership", Message: "boom"},
	}
	var text bytes.Buffer
	if err := WriteText(&text, diags); err != nil {
		t.Fatal(err)
	}
	if got, want := strings.TrimSpace(text.String()), "a/b.go:3: [ownership] boom"; got != want {
		t.Errorf("WriteText = %q, want %q", got, want)
	}
	var js bytes.Buffer
	if err := WriteJSON(&js, diags); err != nil {
		t.Fatal(err)
	}
	var decoded []Diagnostic
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if len(decoded) != 1 || decoded[0] != diags[0] {
		t.Errorf("JSON round-trip = %+v, want %+v", decoded, diags)
	}
}
