package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestModuleIsLintClean is the enforcement point: running the full suite
// over the whole module must report zero unsuppressed diagnostics, so any
// new violation fails `go test ./...` (tier 1), not just `make lint`.
func TestModuleIsLintClean(t *testing.T) {
	res, err := RunModule("../..")
	if err != nil {
		t.Fatalf("RunModule: %v", err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("%s", d.String())
	}
	// Guard against the scan silently shrinking (e.g. a loader regression
	// skipping directories would make "zero findings" meaningless).
	if res.Packages < 30 || res.Files < 60 {
		t.Errorf("suspiciously small scan: %d packages, %d files", res.Packages, res.Files)
	}
	if res.Suppressed == 0 {
		t.Errorf("expected at least one suppressed finding (the tree carries documented //lint:ignore directives)")
	}
}

// TestWriteFormats checks the two CLI output encodings.
func TestWriteFormats(t *testing.T) {
	diags := []Diagnostic{
		{File: "a/b.go", Line: 3, Col: 2, Rule: "ownership", Message: "boom"},
	}
	var text bytes.Buffer
	if err := WriteText(&text, diags); err != nil {
		t.Fatal(err)
	}
	if got, want := strings.TrimSpace(text.String()), "a/b.go:3: [ownership] boom"; got != want {
		t.Errorf("WriteText = %q, want %q", got, want)
	}
	var js bytes.Buffer
	if err := WriteJSON(&js, diags); err != nil {
		t.Fatal(err)
	}
	var decoded []Diagnostic
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if len(decoded) != 1 || decoded[0] != diags[0] {
		t.Errorf("JSON round-trip = %+v, want %+v", decoded, diags)
	}
}
