package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
)

// Diagnostic is one finding: a rule violation at a source position.
type Diagnostic struct {
	File    string `json:"file"` // module-relative path
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the canonical "file:line: [rule] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Rule, d.Message)
}

// sortDiagnostics orders findings by file, line, column, then rule, so output
// is stable across runs and map-iteration order never leaks into reports.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// WriteText prints one diagnostic per line in the canonical form.
func WriteText(w io.Writer, ds []Diagnostic) error {
	for _, d := range ds {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON prints the findings as a JSON array (for -json and tooling).
func WriteJSON(w io.Writer, ds []Diagnostic) error {
	if ds == nil {
		ds = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ds)
}

// relPosition converts a token position to a module-relative Diagnostic
// location; paths outside the module root stay absolute.
func relPosition(root string, pos token.Position) (file string, line, col int) {
	file = pos.Filename
	if root != "" {
		if r, err := filepath.Rel(root, pos.Filename); err == nil && !filepath.IsAbs(r) {
			file = filepath.ToSlash(r)
		}
	}
	return file, pos.Line, pos.Column
}
