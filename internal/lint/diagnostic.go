package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
)

// Diagnostic is one finding: a rule violation at a source position.
type Diagnostic struct {
	File    string `json:"file"` // module-relative path
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the canonical "file:line: [rule] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Rule, d.Message)
}

// sortDiagnostics orders findings by file, line, column, then rule, so output
// is stable across runs and map-iteration order never leaks into reports.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// WriteText prints one diagnostic per line in the canonical form.
func WriteText(w io.Writer, ds []Diagnostic) error {
	for _, d := range ds {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON prints the findings as a JSON array (for -json and tooling).
func WriteJSON(w io.Writer, ds []Diagnostic) error {
	if ds == nil {
		ds = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ds)
}

// WriteRuleStats prints a per-rule findings/suppressions summary as JSON —
// the payload behind `gosenseilint -rule-stats` and the `make lint-stats`
// CI artifact. Rules that never fired are included at zero so the artifact
// always lists the full suite.
func WriteRuleStats(w io.Writer, res *Result) error {
	rules := map[string]RuleCount{}
	for _, a := range Analyzers() {
		rules[a.Name] = res.PerRule[a.Name]
	}
	for name, rc := range res.PerRule {
		rules[name] = rc // RuleIgnore and anything else outside Analyzers()
	}
	summary := struct {
		Packages  int                  `json:"packages"`
		Files     int                  `json:"files"`
		ElapsedMS int64                `json:"elapsed_ms"`
		Rules     map[string]RuleCount `json:"rules"` // keys sorted by encoding/json
	}{res.Packages, res.Files, res.Elapsed.Milliseconds(), rules}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(summary)
}

// relPosition converts a token position to a module-relative Diagnostic
// location; paths outside the module root stay absolute.
func relPosition(root string, pos token.Position) (file string, line, col int) {
	file = pos.Filename
	if root != "" {
		if r, err := filepath.Rel(root, pos.Filename); err == nil && !filepath.IsAbs(r) {
			file = filepath.ToSlash(r)
		}
	}
	return file, pos.Line, pos.Column
}
