// Package lint is gosensei's repo-specific static-analysis suite. It
// enforces, on every `go test ./...`, the sharp-edged invariants the hot
// path depends on and convention alone cannot protect:
//
//   - nondeterminism: the deterministic kernels (oscillator, render,
//     compositing, analysis, parallel) must not read clocks, use the global
//     math/rand source, or let map iteration order feed outputs — the
//     paper's Table 2 / Figure 5 measurements are reproduced bit-identically
//     only because these packages are pure functions of their inputs.
//   - ownership: a buffer passed to mpi.SendOwned/SendRecvOwned, a
//     framebuffer after Release, or a buffer returned to a fabric.BufPool
//     via Put belongs to someone else; touching it again in the same
//     function is a use-after-give.
//   - worker-independence: parallel.For/MapChunks bodies (and their n/grain
//     chunking arguments) must not depend on the worker count, or results
//     stop being byte-identical across thread budgets.
//   - mpi-tag-hygiene: message tags outside internal/mpi must be named
//     constants, keeping cross-subsystem tag collisions greppable.
//   - unchecked-close: the I/O writers the paper's I/O-cost experiments
//     depend on must not drop Close/Flush/Write errors.
//   - lock-blocking: no mutex held across an operation the interprocedural
//     may-block summary (mayblock.go) marks — the staging-client deadlock
//     class PR 3 debugged at runtime.
//   - goroutine-leak: spawned loops need a reachable exit; time.After in
//     loops, time.Tick, and unstopped NewTimer/NewTicker results leak.
//   - waitgroup-hygiene: wg.Add before `go`, lexical Add/Done arity
//     agreement, and no sync types passed by value.
//
// Findings can be suppressed with `//lint:ignore <rule> <reason>` on the
// offending line or the line above; a suppression without a reason is
// itself a finding. The suite is stdlib-only (go/ast, go/parser, go/token,
// go/types) — see DESIGN.md's invariant catalog for the rationale behind
// each rule.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"time"
)

// Config scopes the rules. Paths are import paths (exact or prefix for
// *Pkgs fields) and module-relative file suffixes for ClockAllowedFiles.
type Config struct {
	// DeterministicPkgs are the kernel packages where the nondeterminism
	// rule applies.
	DeterministicPkgs []string
	// ClockAllowedFiles are module-relative files inside deterministic
	// packages that may read clocks: the timing/metrics layers that report
	// durations without affecting computed bytes.
	ClockAllowedFiles []string
	// IOWriterPkgs are the packages where dropped Close/Flush/Write errors
	// are findings.
	IOWriterPkgs []string
	// MPIPkg, RenderPkg, ParallelPkg, FabricPkg locate the packages whose
	// contracts the ownership, tag, and worker rules enforce.
	MPIPkg      string
	RenderPkg   string
	ParallelPkg string
	FabricPkg   string
	// LockAllowedFuncs is the per-package allowlist of the lock-blocking
	// rule: fully-qualified functions (types.Func.FullName form, e.g.
	// "(*gosensei/internal/fabric.Client).writeFrameLocked") documented to
	// RELEASE the caller's lock internally before blocking. Calls to them
	// while holding a lock are not findings; their own bodies are still
	// analyzed lexically.
	LockAllowedFuncs []string
	// BlockingFuncs are extra may-block seeds (types.Func.FullName form,
	// e.g. "(gosensei/internal/mpi.Transport).Send"): calls to them are
	// treated as blocking by the interprocedural summary even when they
	// resolve through interface dispatch, which the conn-like heuristic
	// alone cannot see. This is how contract interfaces whose
	// implementations block on the wire (a cross-process transport) are
	// taught to the concurrency rules.
	BlockingFuncs []string
}

// DefaultConfig returns the scoping for the gosensei module itself.
func DefaultConfig() *Config {
	const m = "gosensei"
	return &Config{
		DeterministicPkgs: []string{
			m + "/internal/oscillator",
			m + "/internal/render",
			m + "/internal/compositing",
			m + "/internal/analysis",
			m + "/internal/parallel",
			// Routing decisions must replay bit-identically under fault
			// schedules: the router and its harness are clock- and rand-free
			// by contract (costs arrive via StepMeter observations).
			m + "/internal/route",
		},
		// WritePNG times the serial encode (the paper's rank-0 bottleneck)
		// and returns the duration for the metrics layer; pixels are
		// unaffected, so its clock reads are legitimate.
		ClockAllowedFiles: []string{"internal/render/png.go"},
		IOWriterPkgs: []string{
			m + "/internal/iosim",
			m + "/internal/adios",
			m + "/internal/extracts",
			m + "/internal/catalyst",
			m + "/internal/libsim",
			m + "/internal/render",
			m + "/internal/fabric",
			m + "/internal/live",
			m + "/internal/world",
			m + "/cmd/posthoc",
			m + "/cmd/endpoint",
			m + "/cmd/gosensei-run",
			m + "/cmd/live-load",
		},
		MPIPkg:      m + "/internal/mpi",
		RenderPkg:   m + "/internal/render",
		ParallelPkg: m + "/internal/parallel",
		FabricPkg:   m + "/internal/fabric",
		// writeFrameLocked's contract (documented at its declaration) is to
		// drop c.mu around the blocking conn write and retake it; callers
		// holding c.mu are the intended use, not the PR 3 deadlock shape.
		LockAllowedFuncs: []string{
			"(*" + m + "/internal/fabric.Client).writeFrameLocked",
		},
		// Transport.Send is an interface contract: the in-process mailbox
		// delivery is cheap, but the cross-process implementation writes
		// framed envelopes to a fabric conn, so every call site must be
		// treated as a wire write that can park the goroutine.
		BlockingFuncs: []string{
			"(" + m + "/internal/mpi.Transport).Send",
		},
	}
}

// Analyzer is one rule: a name and a function run once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pass)
}

// Pass hands an analyzer one package plus reporting plumbing and the
// module-wide interprocedural facts.
type Pass struct {
	Fset  *token.FileSet
	Pkg   *Package
	Cfg   *Config
	Facts *Facts
	root  string // module root for relative paths
	out   *[]Diagnostic
	rule  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	file, line, col := relPosition(p.root, position)
	*p.out = append(*p.out, Diagnostic{
		File: file, Line: line, Col: col, Rule: p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full rule suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondeterminismAnalyzer(),
		OwnershipAnalyzer(),
		WorkerIndependenceAnalyzer(),
		TagHygieneAnalyzer(),
		UncheckedCloseAnalyzer(),
		LockBlockingAnalyzer(),
		GoroutineLeakAnalyzer(),
		WaitgroupHygieneAnalyzer(),
	}
}

// Result is the outcome of a suite run.
type Result struct {
	// Diagnostics are the unsuppressed findings, sorted.
	Diagnostics []Diagnostic
	// Suppressed counts findings silenced by a valid //lint:ignore.
	Suppressed int
	// PerRule breaks findings and suppressions down by rule name — the
	// `make lint-stats` CI artifact.
	PerRule map[string]RuleCount
	// Files and Packages are scan-volume stats for benchmarking.
	Files    int
	Packages int
	// Elapsed is the wall time of the run (load + analyze).
	Elapsed time.Duration
}

// RuleCount is one rule's finding/suppression tally.
type RuleCount struct {
	Findings   int `json:"findings"`
	Suppressed int `json:"suppressed"`
}

// Run executes the given analyzers over the packages, applying suppressions
// found in their sources. Malformed suppressions are reported under the
// "ignore" rule.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer, cfg *Config) *Result {
	start := time.Now()
	var raw []Diagnostic
	sup := newSuppressionIndex()
	res := &Result{Packages: len(pkgs), PerRule: map[string]RuleCount{}}
	facts := ComputeFacts(l, pkgs, cfg)
	for _, pkg := range pkgs {
		res.Files += len(pkg.Files) + len(pkg.TestFiles)
		for _, f := range append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...) {
			dirs, malformed := parseIgnores(l.Fset, f, l.ModuleRoot)
			raw = append(raw, malformed...)
			file := l.Fset.Position(f.Pos()).Filename
			rel, _, _ := relPosition(l.ModuleRoot, token.Position{Filename: file})
			for _, d := range dirs {
				sup.add(rel, d)
			}
		}
		for _, a := range analyzers {
			pass := &Pass{Fset: l.Fset, Pkg: pkg, Cfg: cfg, Facts: facts, root: l.ModuleRoot, out: &raw, rule: a.Name}
			a.Run(pass)
		}
	}
	for _, d := range raw {
		rc := res.PerRule[d.Rule]
		if d.Rule != RuleIgnore && sup.suppresses(d) {
			res.Suppressed++
			rc.Suppressed++
			res.PerRule[d.Rule] = rc
			continue
		}
		rc.Findings++
		res.PerRule[d.Rule] = rc
		res.Diagnostics = append(res.Diagnostics, d)
	}
	sortDiagnostics(res.Diagnostics)
	res.Elapsed = time.Since(start)
	return res
}

// RunModule loads the module rooted at (or above) root and runs the full
// suite with the default configuration.
func RunModule(root string) (*Result, error) {
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	pkgs, err := l.LoadModule()
	if err != nil {
		return nil, err
	}
	res := Run(l, pkgs, Analyzers(), DefaultConfig())
	res.Elapsed = time.Since(start)
	return res, nil
}

// --- shared AST/type helpers used by several rules ---

// importedPkgPath resolves an identifier to the import path of the package
// it names, or "" when it is not a package name.
func importedPkgPath(info *types.Info, id *ast.Ident) string {
	if obj, ok := info.Uses[id].(*types.PkgName); ok {
		return obj.Imported().Path()
	}
	return ""
}

// calleeFromPkg matches call expressions of the form pkg.Fn(...) or
// pkg.Fn[T](...) where pkg's import path is pkgPath, returning the function
// name.
func calleeFromPkg(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	fun := call.Fun
	// Unwrap explicit generic instantiation: pkg.Fn[T] / pkg.Fn[K, V].
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ix.X
	case *ast.IndexListExpr:
		fun = ix.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if importedPkgPath(info, id) != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// methodOn matches method calls x.M(...) whose method is declared on the
// named type typeName in package pkgPath, returning the receiver expression.
func methodOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName, method string) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil, false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return nil, false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != typeName {
		return nil, false
	}
	return sel.X, true
}

// pkgInScope reports whether path matches any entry (exact or as a path
// prefix followed by "/").
func pkgInScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

// rootIdent peels slice/index/star/paren expressions down to a base
// identifier: x, x[i], x[:n], (*x), (x) all yield x.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}
