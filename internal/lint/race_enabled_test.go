//go:build race

package lint

// raceEnabled lets TestLintRuntimeBudget skip under the race detector,
// whose instrumentation inflates the scan ~5x past the non-race budget
// BENCH_7.json pins.
const raceEnabled = true
