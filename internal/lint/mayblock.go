package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file computes the interprocedural may-block summary the concurrency
// rules (lock-blocking, goroutine-leak, waitgroup-hygiene) share: a fixpoint
// over the module's static call graph answering "can calling this function
// park the goroutine indefinitely?".
//
// Seeds — operations that block by themselves:
//
//   - channel send, channel receive, range over a channel;
//   - select without a default clause;
//   - time.Sleep;
//   - sync.Cond.Wait and sync.WaitGroup.Wait;
//   - Read/Write/Accept methods declared in package net;
//   - Read/Write/Accept calls through a conn-like interface (its method set
//     has LocalAddr or Accept: net.Conn, net.Listener, and the fabric's Conn
//     and Listener wrappers);
//   - calls to functions listed in Config.BlockingFuncs (matched by
//     types.Func.FullName, including interface methods such as
//     mpi.Transport.Send, whose cross-process implementation is a framed
//     conn write).
//
// The last bullet is the interface conservatism boundary: a call through a
// conn-like interface is assumed blocking regardless of the dynamic
// implementation — even a loopback net.Pipe write blocks until the peer
// reads, which is exactly how PR 3's distributed deadlock manifested. Calls
// through NON-conn-like interfaces (io.Reader over a bytes.Reader, analysis
// adaptors) and calls to function-typed variables are assumed non-blocking:
// treating every indirect call as blocking would drown the rules in noise.
// Mutex.Lock itself is deliberately not a seed — nested locking is a lock-
// ordering question, not the lock-vs-blocking-call interleaving these rules
// police.
//
// Propagation: a function that (transitively) calls a may-block function may
// block. Function literals count toward their enclosing function EXCEPT when
// they are the operand of a `go` statement — spawned work does not block the
// spawner. Bodies come from every package the loader has type-checked, so
// the summary is module-wide even when a single package is analyzed.

// blockingIfaceMethods are the method names treated as blocking on net types
// and conn-like interfaces.
var blockingIfaceMethods = map[string]bool{
	"Read": true, "Write": true, "Accept": true,
}

// Facts is the module-wide interprocedural knowledge computed once per Run
// and handed to every Pass.
type Facts struct {
	// mayBlock maps a function to a short human-readable reason ("channel
	// receive", "calls gosensei/internal/mpi.Recv") when it may block.
	mayBlock map[*types.Func]string
	// decls maps module functions to their declarations, letting syntactic
	// rules (goroutine-leak) find the body behind `go f()`.
	decls map[*types.Func]*ast.FuncDecl
	// seeds holds Config.BlockingFuncs as a FullName set, consulted per
	// call site alongside the built-in seed classification.
	seeds map[string]bool
}

// MayBlock reports whether fn may block, with the reason recorded during the
// fixpoint.
func (f *Facts) MayBlock(fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	// Generic instantiations share the origin's body.
	if o := fn.Origin(); o != nil {
		fn = o
	}
	why, ok := f.mayBlock[fn]
	return why, ok
}

// Decl returns the module declaration of fn, if the loader saw one.
func (f *Facts) Decl(fn *types.Func) *ast.FuncDecl {
	if fn == nil {
		return nil
	}
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return f.decls[fn]
}

// funcSummary is the per-function input to the fixpoint.
type funcSummary struct {
	fn      *types.Func
	seed    string // non-empty: blocks by itself
	seedPos token.Pos
	callees []*types.Func
}

// ComputeFacts builds the may-block summary over pkgs plus every other
// package the loader has already type-checked (so fixture packages see the
// real module bodies behind their imports). cfg contributes the configured
// BlockingFuncs seeds; nil means no extra seeds.
func ComputeFacts(l *Loader, pkgs []*Package, cfg *Config) *Facts {
	seeds := map[string]bool{}
	if cfg != nil {
		for _, name := range cfg.BlockingFuncs {
			seeds[name] = true
		}
	}
	seen := map[string]bool{}
	var all []*Package
	for _, p := range pkgs {
		if !seen[p.Path] {
			seen[p.Path] = true
			all = append(all, p)
		}
	}
	for _, p := range l.cache {
		if !seen[p.Path] {
			seen[p.Path] = true
			all = append(all, p)
		}
	}

	facts := &Facts{mayBlock: map[*types.Func]string{}, decls: map[*types.Func]*ast.FuncDecl{}, seeds: seeds}
	var sums []*funcSummary
	for _, p := range all {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				facts.decls[fn] = fd
				s := &funcSummary{fn: fn}
				collectBlocking(p.Info, fd.Body, s, seeds)
				sums = append(sums, s)
			}
		}
	}

	// Fixpoint: seed, then propagate along call edges until stable. The
	// graph is small (one node per module function), so a quadratic sweep
	// converges in a handful of passes.
	for _, s := range sums {
		if s.seed != "" {
			facts.mayBlock[s.fn] = s.seed
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			if _, done := facts.mayBlock[s.fn]; done {
				continue
			}
			for _, callee := range s.callees {
				if _, blocks := facts.mayBlock[callee]; blocks {
					facts.mayBlock[s.fn] = "calls " + callee.FullName()
					changed = true
					break
				}
			}
		}
	}
	return facts
}

// collectBlocking walks one function body recording direct seeds and static
// callees. Function literals are folded into the enclosing function unless
// they are go-spawned.
func collectBlocking(info *types.Info, body ast.Node, s *funcSummary, seeds map[string]bool) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// The spawned call runs on another goroutine; only its operands
			// are evaluated synchronously.
			for _, a := range n.Call.Args {
				ast.Inspect(a, walk)
			}
			return false
		case *ast.SendStmt:
			s.record("channel send", n.Pos())
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.record("channel receive", n.Pos())
			}
		case *ast.RangeStmt:
			if isChanType(info, n.X) {
				s.record("range over channel", n.Pos())
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				s.record("select without default", n.Pos())
			}
			// Walk the clause bodies but not the comm statements: with a
			// default those sends/receives are non-blocking, without one the
			// select itself is already the seed.
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, st := range cc.Body {
						ast.Inspect(st, walk)
					}
				}
			}
			return false
		case *ast.CallExpr:
			if why, ok := directBlockingCall(info, n, seeds); ok {
				s.record(why, n.Pos())
			} else if fn := staticCallee(info, n); fn != nil {
				s.callees = append(s.callees, fn)
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

func (s *funcSummary) record(why string, pos token.Pos) {
	if s.seed == "" {
		s.seed, s.seedPos = why, pos
	}
}

// directBlockingCall reports whether call is a blocking seed by itself (not
// counting module callees resolved through the summary). seeds is the
// configured BlockingFuncs set, matched against the callee's FullName.
func directBlockingCall(info *types.Info, call *ast.CallExpr, seeds map[string]bool) (string, bool) {
	if name, ok := calleeFromPkg(info, call, "time"); ok && name == "Sleep" {
		return "time.Sleep", true
	}
	if len(seeds) > 0 {
		if fn := seedCallee(info, call); fn != nil && seeds[fn.FullName()] {
			return "configured seed " + fn.FullName(), true
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "sync":
		if name == "Wait" {
			// Covers both sync.Cond.Wait and sync.WaitGroup.Wait (promoted
			// or direct).
			recv := selection.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Name() == "Cond" {
				return "sync.Cond.Wait", true
			}
			return "sync." + recvTypeName(selection) + ".Wait", true
		}
		return "", false
	case "net":
		if blockingIfaceMethods[name] {
			return "net " + name, true
		}
		return "", false
	}
	if blockingIfaceMethods[name] {
		if _, isIface := selection.Recv().Underlying().(*types.Interface); isIface && isConnLike(info, sel.X) {
			return "conn-like " + exprText(sel.X) + "." + name, true
		}
	}
	return "", false
}

// recvTypeName names the receiver's defined type for messages, or "Locker".
func recvTypeName(selection *types.Selection) string {
	t := selection.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return "Locker"
}

// seedCallee resolves the called *types.Func for BlockingFuncs matching.
// Unlike staticCallee it also resolves interface-method calls — configured
// seeds exist precisely to name interface contracts (mpi.Transport.Send)
// whose dynamic implementations block on the wire.
func seedCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := call.Fun
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ix.X
	case *ast.IndexListExpr:
		fun = ix.X
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if selection, ok := info.Selections[fun]; ok {
			fn, _ := selection.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// staticCallee resolves a call to the *types.Func it statically invokes:
// package-level functions (generic or not) and concrete methods. Interface
// method calls and function-typed variables return nil — the former are
// handled by directBlockingCall's conservatism, the latter are assumed
// non-blocking.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := call.Fun
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ix.X
	case *ast.IndexListExpr:
		fun = ix.X
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if selection, ok := info.Selections[fun]; ok {
			if selection.Kind() != types.MethodVal {
				return nil
			}
			if _, isIface := selection.Recv().Underlying().(*types.Interface); isIface {
				return nil
			}
			if fn, ok := selection.Obj().(*types.Func); ok {
				return fn.Origin()
			}
			return nil
		}
		// Qualified call: pkg.Fn.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// isChanType reports whether e's type is a channel.
func isChanType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// selectHasDefault reports whether a select statement has a default clause.
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// callMayBlock is the per-call-site query the lock-blocking rule uses: it
// classifies one call as blocking either directly (seed) or through the
// summary. sync.Cond.Wait is excluded — Wait releases the lock it is
// conditioned on, which is the one sanctioned way to block under a mutex.
func callMayBlock(info *types.Info, facts *Facts, call *ast.CallExpr) (string, bool) {
	if why, ok := directBlockingCall(info, call, facts.seeds); ok {
		if why == "sync.Cond.Wait" {
			return "", false
		}
		return why, true
	}
	fn := staticCallee(info, call)
	if fn == nil {
		return "", false
	}
	if why, ok := facts.MayBlock(fn); ok {
		return fn.Name() + " (may block: " + why + ")", true
	}
	return "", false
}
