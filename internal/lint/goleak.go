package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RuleGoroutineLeak flags goroutine and timer shapes that leak quietly:
//
//   - a go-spawned function whose body contains an infinite `for` (or a
//     range over a channel) with no exit path — no return, no break out of
//     the loop, no panic/os.Exit — the goroutine outlives every caller and
//     pins its stack and captures forever (the PR 3 loopback dial hang was
//     this shape: a redial loop with no done check);
//   - time.After inside a loop: each iteration allocates a timer that is
//     only reclaimed when it fires, an unbounded-growth classic in recv
//     pumps with per-message timeouts (hoist a time.NewTimer and Reset it);
//   - time.Tick anywhere: the returned ticker can never be stopped;
//   - time.NewTimer/time.NewTicker whose timer neither reaches a Stop call
//     nor escapes the function (returned, stored, or passed on — someone
//     else's responsibility, like mpi's timer pool).
//
// All checks are lexical and scoped to one function; a timer stopped by a
// helper the timer is passed to counts as escaped, not leaked.
const RuleGoroutineLeak = "goroutine-leak"

// GoroutineLeakAnalyzer builds the goroutine-leak rule.
func GoroutineLeakAnalyzer() *Analyzer {
	return &Analyzer{
		Name: RuleGoroutineLeak,
		Doc:  "forbid exit-less goroutine loops, time.After in loops, and unstopped timers/tickers",
		Run:  runGoroutineLeak,
	}
}

func runGoroutineLeak(p *Pass) {
	// Pass 1: collect spawn targets — function literals directly under `go`,
	// and declared functions the summary can map back to a body.
	spawnedLits := map[*ast.FuncLit]bool{}
	spawnedDecls := map[*ast.FuncDecl]bool{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				spawnedLits[lit] = true
				return true
			}
			if fn := staticCallee(p.Pkg.Info, gs.Call); fn != nil {
				if decl := p.Facts.Decl(fn); decl != nil {
					spawnedDecls[decl] = true
				}
			}
			return true
		})
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					if spawnedDecls[n] {
						checkGoroutineLoops(p, n.Body)
					}
					checkTimerHygiene(p, n.Body)
				}
			case *ast.FuncLit:
				if spawnedLits[n] {
					checkGoroutineLoops(p, n.Body)
				}
			}
			return true
		})
	}
	checkTimerCalls(p)
}

// checkGoroutineLoops reports infinite loops with no exit path in a spawned
// body. Nested function literals are skipped — if they are themselves
// spawned they are checked on their own, and otherwise their control flow
// belongs to whoever calls them.
func checkGoroutineLoops(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch loop := n.(type) {
		case *ast.ForStmt:
			if loop.Cond == nil && !loopExits(loop.Body) {
				p.Reportf(loop.Pos(), "goroutine loop has no exit path (no return, break, or terminal call); add a done/closed-channel case or the goroutine leaks for the process lifetime")
			}
		case *ast.RangeStmt:
			if isChanType(p.Pkg.Info, loop.X) && !loopExits(loop.Body) && !isCloseOwnedChan(p, loop.X) {
				p.Reportf(loop.Pos(), "goroutine ranges over a channel with no exit path and no visible close of %s; if the channel is never closed the goroutine leaks", exprText(loop.X))
			}
		}
		return true
	})
}

// isCloseOwnedChan reports whether some non-test file in the package closes
// the channel expression's root object — a ranged channel that the package
// itself closes has an exit path the loop body does not show.
func isCloseOwnedChan(p *Pass, ch ast.Expr) bool {
	root := rootIdent(ch)
	var obj types.Object
	if root != nil {
		obj = p.Pkg.Info.Uses[root]
	}
	closed := false
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if closed {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "close" {
				return true
			}
			if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if obj != nil {
				if argRoot := rootIdent(call.Args[0]); argRoot != nil && p.Pkg.Info.Uses[argRoot] == obj {
					closed = true
				}
				return true
			}
			// Field/selector channels (st.ch) degrade to a textual match.
			if exprText(call.Args[0]) == exprText(ch) {
				closed = true
			}
			return true
		})
	}
	return closed
}

// loopExits reports whether a loop body contains a statement that leaves the
// loop: a return, a break or goto binding to the loop (breaks captured by
// nested for/switch/select bind tighter and do not count, labeled breaks
// conservatively do), a panic, or a terminal call like os.Exit.
func loopExits(body *ast.BlockStmt) bool {
	exits := false
	var walk func(n ast.Node, breakable bool) // breakable: an unlabeled break here binds to an inner construct
	walkStmts := func(list []ast.Stmt, breakable bool) {
		for _, s := range list {
			walk(s, breakable)
		}
	}
	walk = func(n ast.Node, breakable bool) {
		if exits || n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			exits = true
		case *ast.BranchStmt:
			switch n.Tok {
			case token.BREAK:
				if !breakable || n.Label != nil {
					exits = true
				}
			case token.GOTO:
				exits = true
			}
		case *ast.ExprStmt:
			if isTerminalCall(n.X) {
				exits = true
			}
		case *ast.ForStmt:
			walk(n.Init, breakable)
			walk(n.Post, breakable)
			walkStmts(n.Body.List, true)
		case *ast.RangeStmt:
			walkStmts(n.Body.List, true)
		case *ast.SwitchStmt:
			walk(n.Init, breakable)
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body, true)
				}
			}
		case *ast.TypeSwitchStmt:
			walk(n.Init, breakable)
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body, true)
				}
			}
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkStmts(cc.Body, true)
				}
			}
		case *ast.IfStmt:
			walk(n.Init, breakable)
			walkStmts(n.Body.List, breakable)
			walk(n.Else, breakable)
		case *ast.BlockStmt:
			walkStmts(n.List, breakable)
		case *ast.LabeledStmt:
			walk(n.Stmt, breakable)
		case *ast.FuncLit:
			// A nested literal's return exits the literal, not the loop.
		case *ast.GoStmt, *ast.DeferStmt:
			// Spawned/deferred work cannot exit the loop.
		}
	}
	walkStmts(body.List, false)
	return exits
}

// isTerminalCall matches panic(...) and the process-terminating calls that
// count as loop exits.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			switch id.Name {
			case "os":
				return fun.Sel.Name == "Exit"
			case "runtime":
				return fun.Sel.Name == "Goexit"
			case "log":
				return fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"
			}
		}
	}
	return false
}

// checkTimerCalls flags time.After inside loops and time.Tick anywhere.
func checkTimerCalls(p *Pass) {
	for _, f := range p.Pkg.Files {
		var walk func(n ast.Node, inLoop bool)
		walkList := func(list []ast.Stmt, inLoop bool) {
			for _, s := range list {
				walk(s, inLoop)
			}
		}
		walk = func(n ast.Node, inLoop bool) {
			if n == nil {
				return
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if name, ok := calleeFromPkg(p.Pkg.Info, call, "time"); ok {
					switch {
					case name == "Tick":
						p.Reportf(call.Pos(), "time.Tick leaks its ticker (no Stop handle); use time.NewTicker with defer t.Stop()")
					case name == "After" && inLoop:
						p.Reportf(call.Pos(), "time.After in a loop allocates an unstoppable timer per iteration; hoist a time.NewTimer outside the loop and Reset it")
					}
				}
			}
			switch s := n.(type) {
			case *ast.ForStmt:
				walk(s.Init, inLoop)
				walk(s.Cond, inLoop)
				walk(s.Post, inLoop)
				walkList(s.Body.List, true)
			case *ast.RangeStmt:
				walk(s.X, inLoop)
				walkList(s.Body.List, true)
			default:
				// Generic descent preserving inLoop, one level at a time.
				children := childNodes(n)
				for _, c := range children {
					walk(c, inLoop)
				}
			}
		}
		walk(f, false)
	}
}

// childNodes returns the direct AST children of n, so checkTimerCalls can
// descend one level while keeping explicit control of loop entries.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	depth := 0
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			depth--
			return true
		}
		depth++
		if depth == 1 {
			return true // n itself
		}
		out = append(out, m)
		// Skipping children suppresses the pop callback; rebalance here.
		depth--
		return false
	})
	return out
}

// checkTimerHygiene flags NewTimer/NewTicker results that are neither
// stopped nor escape the declaring function.
func checkTimerHygiene(p *Pass, body *ast.BlockStmt) {
	type timer struct {
		obj  types.Object
		pos  token.Pos
		kind string
	}
	var timers []timer
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := calleeFromPkg(p.Pkg.Info, call, "time")
		if !ok || (name != "NewTimer" && name != "NewTicker") {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := p.Pkg.Info.Defs[id]
		if obj == nil {
			obj = p.Pkg.Info.Uses[id]
		}
		if obj != nil {
			timers = append(timers, timer{obj: obj, pos: call.Pos(), kind: "time." + name})
		}
		return true
	})
	if len(timers) == 0 {
		return
	}
	for _, t := range timers {
		stopped, escaped := false, false
		ast.Inspect(body, func(n ast.Node) bool {
			if stopped || escaped {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok || (p.Pkg.Info.Uses[id] != t.obj) {
				return true
			}
			parent := identParent(body, id)
			if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
				if sel.Sel.Name == "Stop" {
					stopped = true
				}
				return true // t.C, t.Reset: plain uses
			}
			if _, ok := parent.(*ast.AssignStmt); ok {
				return true // reassignment of the variable itself
			}
			// Any other appearance — call argument, return value, composite
			// literal, field store, channel send — hands the timer to code
			// this function cannot see; responsibility moved with it.
			escaped = true
			return true
		})
		if !stopped && !escaped {
			p.Reportf(t.pos, "%s result is never stopped and never leaves the function; the timer leaks — add defer t.Stop()", t.kind)
		}
	}
}

// identParent finds the immediate parent node of id within root.
func identParent(root ast.Node, id *ast.Ident) ast.Node {
	var parent ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if parent != nil || n == nil {
			return false
		}
		for _, c := range childNodes(n) {
			if c == ast.Node(id) {
				parent = n
				return false
			}
		}
		return true
	})
	return parent
}
