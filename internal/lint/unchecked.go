package lint

import (
	"go/ast"
	"go/types"
)

// RuleUncheckedClose flags dropped errors from Close/Flush/Write on the I/O
// writer packages. The paper's I/O-cost experiments (Sec. 4's VTK
// multi-file and ADIOS paths) are only meaningful if written bytes actually
// reach storage: a Close error on a buffered file is the last chance to
// learn a write was lost, and `defer f.Close()` on a file being written
// silently discards exactly that. An explicit `_ = f.Close()` on an
// already-failing path is allowed — the drop is visible and greppable.
const RuleUncheckedClose = "unchecked-close"

// droppedErrorMethods are the method names whose dropped errors are
// findings. CloseWrite/CloseRead are the half-close pair on TCP
// connections; since the fabric moved staging onto real sockets a dropped
// half-close error hides a torn connection just like a dropped Close.
var droppedErrorMethods = map[string]bool{
	"Close": true, "Flush": true, "Write": true, "Sync": true,
	"CloseWrite": true, "CloseRead": true,
}

// deadlineMethods are flagged only on connection-like receivers (net.Conn,
// net.Listener, and the fabric's wrappers): a dropped SetDeadline error
// means the timeout silently never armed, and the failure it was guarding
// against becomes a hang.
var deadlineMethods = map[string]bool{
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

// UncheckedCloseAnalyzer builds the unchecked-close rule.
func UncheckedCloseAnalyzer() *Analyzer {
	return &Analyzer{
		Name: RuleUncheckedClose,
		Doc:  "forbid dropping Close/Flush/Write/deadline errors in the I/O writer packages",
		Run:  runUncheckedClose,
	}
}

func runUncheckedClose(p *Pass) {
	if !pkgInScope(p.Pkg.Path, p.Cfg.IOWriterPkgs) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			kind := ""
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call, kind = s.Call, "defer "
			case *ast.GoStmt:
				call, kind = s.Call, "go "
			}
			if call == nil {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch {
			case droppedErrorMethods[name]:
				// always in scope
			case deadlineMethods[name] && isConnLike(p.Pkg.Info, sel.X):
				// deadline setters matter only on connections
			default:
				return true
			}
			if !returnsError(p.Pkg.Info, call) {
				return true
			}
			if isInMemorySink(p.Pkg.Info, sel.X) {
				return true // bytes.Buffer/strings.Builder writes cannot fail
			}
			p.Reportf(call.Pos(), "%s%s.%s() error dropped; on the I/O path a lost error means silently lost bytes (check it, or `_ =` it on an already-failing path)", kind, exprText(sel.X), sel.Sel.Name)
			return true
		})
	}
}

// returnsError reports whether the call's (possibly multi-valued) result
// includes a final error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// isInMemorySink reports whether the receiver is a *bytes.Buffer,
// *strings.Builder, or hash.Hash variant — in-memory accumulators whose
// Write methods are documented to never return an error.
func isInMemorySink(info *types.Info, recv ast.Expr) bool {
	tv, ok := info.Types[recv]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	switch {
	case pkg == "bytes" && name == "Buffer":
		return true
	case pkg == "strings" && name == "Builder":
		return true
	case pkg == "hash" && (name == "Hash" || name == "Hash32" || name == "Hash64"):
		return true
	}
	return false
}

// isConnLike reports whether the receiver behaves like a network
// connection or listener: its method set (or its pointer's) includes
// LocalAddr (net.Conn and the fabric Conn interface) or Accept
// (net.Listener and the fabric Listener interface).
func isConnLike(info *types.Info, recv ast.Expr) bool {
	tv, ok := info.Types[recv]
	if !ok {
		return false
	}
	for _, t := range []types.Type{tv.Type, types.NewPointer(tv.Type)} {
		ms := types.NewMethodSet(t)
		for i := 0; i < ms.Len(); i++ {
			switch ms.At(i).Obj().Name() {
			case "LocalAddr", "Accept":
				return true
			}
		}
	}
	return false
}

// exprText renders simple receiver expressions for messages; anything
// complex degrades to its outermost identifier.
func exprText(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprText(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprText(v.Fun) + "(...)"
	case *ast.ParenExpr:
		return "(" + exprText(v.X) + ")"
	case *ast.StarExpr:
		return "*" + exprText(v.X)
	case *ast.IndexExpr:
		return exprText(v.X) + "[...]"
	default:
		return "x"
	}
}
