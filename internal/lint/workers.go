package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// RuleWorkerIndependence flags parallel.For/MapChunks invocations whose
// results could depend on the worker count: the body closure captures the
// workers argument (or a variable data-flow-connected to it), or the n/grain
// chunking arguments mention it. Chunk boundaries and per-chunk work must be
// functions of the problem size only, or output stops being byte-identical
// across thread budgets — the invariant the determinism test suite checks
// dynamically at 1/2/8 workers.
const RuleWorkerIndependence = "worker-independence"

// WorkerIndependenceAnalyzer builds the worker-independence rule.
func WorkerIndependenceAnalyzer() *Analyzer {
	return &Analyzer{
		Name: RuleWorkerIndependence,
		Doc:  "forbid parallel.For/MapChunks bodies and chunking from depending on the worker count",
		Run:  runWorkerIndependence,
	}
}

func runWorkerIndependence(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkWorkerCalls(p, fn.Body)
		}
	}
}

// checkWorkerCalls inspects one function body for parallel.For/MapChunks
// calls and validates each against the assignments preceding it.
func checkWorkerCalls(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := calleeFromPkg(p.Pkg.Info, call, p.Cfg.ParallelPkg)
		if !ok || (name != "For" && name != "MapChunks") || len(call.Args) != 4 {
			return true
		}
		forbidden := workerTaintSet(p, body, call)
		if len(forbidden) == 0 {
			return true
		}
		// n and grain define the chunk boundaries; they must not mention the
		// worker count at all.
		for _, arg := range []struct {
			i    int
			name string
		}{{1, "n"}, {2, "grain"}} {
			if key, pos := firstMention(p, call.Args[arg.i], forbidden); key != "" {
				p.Reportf(pos, "parallel.%s %s argument depends on the worker count (%s); chunk boundaries must be a function of the problem size only", name, arg.name, key)
			}
		}
		if lit, ok := call.Args[3].(*ast.FuncLit); ok {
			if key, pos := firstMention(p, lit.Body, forbidden); key != "" {
				p.Reportf(pos, "parallel.%s body captures the worker count (%s); chunk results must be byte-identical at any worker count", name, key)
			}
		}
		return true
	})
}

// taintKey names one worker-count-carrying value: a bare variable
// ("v:<id>") or a selector path rooted at a variable ("v:<id>.Field").
// Paths keep `spec.Workers` forbidden without banning every use of `spec`.
type taintKey = string

// workerTaintSet seeds taint from the call's workers argument, then closes
// it over the enclosing function's assignments in both directions: values
// assigned FROM a tainted value are worker-derived, and values that flow
// INTO a tainted variable carry the worker count too.
func workerTaintSet(p *Pass, body *ast.BlockStmt, call *ast.CallExpr) map[taintKey]bool {
	forbidden := map[taintKey]bool{}
	for _, k := range mentionKeys(p, call.Args[0]) {
		forbidden[k] = true
	}
	if len(forbidden) == 0 {
		return forbidden
	}
	type edge struct{ lhs, rhs []taintKey }
	var edges []edge
	ast.Inspect(body, func(n ast.Node) bool {
		if n == call {
			// Assignments inside the call (its body literal) are what the
			// mention scan judges; they must not create taint edges, or the
			// report would name the written output instead of the captured
			// worker count.
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			// The result of a parallel.For/MapChunks call is worker-
			// independent by contract (that is the invariant this rule
			// enforces), so `parts := parallel.MapChunks(workers, ...)` must
			// not create a taint edge from its own arguments to parts.
			e := edge{lhs: mentionKeys(p, as.Lhs[i]), rhs: mentionKeysOutsideParallel(p, as.Rhs[i])}
			if len(e.lhs) > 0 && len(e.rhs) > 0 {
				edges = append(edges, e)
			}
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			if anyKey(forbidden, e.rhs) && !allKeys(forbidden, e.lhs) {
				for _, k := range e.lhs {
					forbidden[k] = true
				}
				changed = true
			}
			if anyKey(forbidden, e.lhs) && !allKeys(forbidden, e.rhs) {
				for _, k := range e.rhs {
					forbidden[k] = true
				}
				changed = true
			}
		}
	}
	return forbidden
}

func anyKey(set map[taintKey]bool, ks []taintKey) bool {
	for _, k := range ks {
		if set[k] {
			return true
		}
	}
	return false
}

func allKeys(set map[taintKey]bool, ks []taintKey) bool {
	for _, k := range ks {
		if !set[k] {
			return false
		}
	}
	return true
}

// mentionKeysOutsideParallel is mentionKeys minus any subtree that is a
// parallel.For/MapChunks call, whose value is worker-independent.
func mentionKeysOutsideParallel(p *Pass, n ast.Node) []taintKey {
	var keys []taintKey
	seen := map[taintKey]bool{}
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if name, ok := calleeFromPkg(p.Pkg.Info, call, p.Cfg.ParallelPkg); ok && (name == "For" || name == "MapChunks") {
				return false
			}
		}
		switch m := m.(type) {
		case *ast.SelectorExpr:
			if k := selectorKey(p, m); k != "" {
				if !seen[k] {
					seen[k] = true
					keys = append(keys, k)
				}
				return false
			}
		case *ast.Ident:
			if k := varKey(p, m); k != "" && !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		return true
	})
	return keys
}

// mentionKeys extracts the taint keys an expression mentions: every
// variable identifier, plus every selector chain rooted at one. For a chain
// only the path key is produced — mentioning spec.Workers does not mention
// bare spec.
func mentionKeys(p *Pass, n ast.Node) []taintKey {
	var keys []taintKey
	seen := map[taintKey]bool{}
	add := func(k taintKey) {
		if k != "" && !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.SelectorExpr:
			if k := selectorKey(p, m); k != "" {
				add(k)
				return false // consumed the whole chain
			}
			return true
		case *ast.Ident:
			add(varKey(p, m))
		}
		return true
	})
	return keys
}

// varKey returns the key of a variable identifier, "" otherwise.
func varKey(p *Pass, id *ast.Ident) taintKey {
	obj := p.Pkg.Info.Uses[id]
	if obj == nil {
		obj = p.Pkg.Info.Defs[id]
	}
	if v, ok := obj.(*types.Var); ok && !v.IsField() {
		return "v:" + strconv.Itoa(int(v.Pos()))
	}
	return ""
}

// selectorKey returns the path key of an ident-rooted field chain like
// spec.Workers or s.cfg.Workers, "" when the chain is not ident-rooted.
func selectorKey(p *Pass, sel *ast.SelectorExpr) taintKey {
	var fields []string
	e := ast.Expr(sel)
	for {
		s, ok := e.(*ast.SelectorExpr)
		if !ok {
			break
		}
		fields = append([]string{s.Sel.Name}, fields...)
		e = s.X
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	root := varKey(p, id)
	if root == "" {
		return ""
	}
	k := root
	for _, f := range fields {
		k += "." + f
	}
	return k
}

// firstMention returns the first forbidden key mentioned under n (with its
// position), or "".
func firstMention(p *Pass, n ast.Node, forbidden map[taintKey]bool) (taintKey, token.Pos) {
	var hitKey taintKey
	var hitPos token.Pos
	ast.Inspect(n, func(m ast.Node) bool {
		if hitKey != "" {
			return false
		}
		switch m := m.(type) {
		case *ast.SelectorExpr:
			if k := selectorKey(p, m); k != "" {
				if forbidden[k] {
					hitKey, hitPos = renderKey(p, m), m.Pos()
				}
				return false
			}
			return true
		case *ast.Ident:
			if k := varKey(p, m); k != "" && forbidden[k] {
				hitKey, hitPos = m.Name, m.Pos()
			}
		}
		return true
	})
	return hitKey, hitPos
}

// renderKey prints a selector chain as source-ish text for the message.
func renderKey(p *Pass, sel *ast.SelectorExpr) string {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name + "." + sel.Sel.Name
	}
	if inner, ok := sel.X.(*ast.SelectorExpr); ok {
		return renderKey(p, inner) + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}
