package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// RuleLockBlocking flags a sync.Mutex/RWMutex held across an operation that
// may block indefinitely: a channel send/receive, a select without default,
// time.Sleep, a conn write, or any call the interprocedural may-block
// summary marks. This is the exact distributed-deadlock class the PR 3
// review closed — the client held its state lock across a blocking
// conn.Write while the recv pump needed the same lock to process the
// Release that would have unblocked the peer. A blocked critical section
// stalls every other goroutine that needs the lock, and on a synchronous
// transport two such sections deadlock each other permanently.
//
// sync.Cond.Wait is exempt (Wait releases its lock — that is the sanctioned
// way to block under a mutex), and functions listed in
// Config.LockAllowedFuncs (documented to release the caller's lock
// internally, like fabric's writeFrameLocked) may be called under a lock.
// Intentional blocking-under-lock sites — deadline-bounded writes under a
// dedicated write-serialization mutex — carry reasoned //lint:ignore
// suppressions, cataloged in DESIGN.md §4.7.
const RuleLockBlocking = "lock-blocking"

// LockBlockingAnalyzer builds the lock-blocking rule.
func LockBlockingAnalyzer() *Analyzer {
	return &Analyzer{
		Name: RuleLockBlocking,
		Doc:  "forbid holding a mutex across channel operations or may-block calls",
		Run:  runLockBlocking,
	}
}

// lockStateMethods classifies the sync mutex methods that change the
// walker's held-lock state; true acquires, false releases.
var lockStateMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
	"Unlock": false, "RUnlock": false,
}

func runLockBlocking(p *Pass) {
	allowed := map[string]bool{}
	for _, name := range p.Cfg.LockAllowedFuncs {
		allowed[name] = true
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				w := &lockWalker{
					pass: p, allowed: allowed,
					held:     map[string]int{},
					reported: map[token.Pos]bool{},
				}
				w.stmts(body.List)
			}
			return true
		})
	}
}

// lockWalker performs a lexical walk of one function body tracking which
// mutexes are held, with the same terminating-branch restore the ownership
// rule uses (an `if closed { mu.Unlock(); return }` arm must not clear the
// lock for the code after it). Locks are keyed by the textual receiver of
// the Lock call ("c.mu", "wmu"); the value is the acquiring line. Loop
// bodies are walked twice so a lock still held at the bottom of an
// iteration covers blocking operations at the top of the next; `reported`
// dedupes the second pass.
type lockWalker struct {
	pass     *Pass
	allowed  map[string]bool
	held     map[string]int
	reported map[token.Pos]bool
}

func (w *lockWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

// branch walks a conditional block, restoring lock state afterwards when the
// block always transfers control away.
func (w *lockWalker) branch(list []ast.Stmt) {
	if !terminates(list) {
		w.stmts(list)
		return
	}
	saved := make(map[string]int, len(w.held))
	for k, v := range w.held {
		saved[k] = v
	}
	w.stmts(list)
	w.held = saved
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, acquire, ok := w.lockStateCall(call); ok {
				if acquire {
					w.held[key] = w.pass.Fset.Position(call.Pos()).Line
				} else {
					delete(w.held, key)
				}
				return
			}
		}
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.expr(rhs)
		}
		for _, lhs := range s.Lhs {
			w.expr(lhs)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		w.branch(s.Body.List)
		if s.Else != nil {
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				w.branch(blk.List)
			} else {
				w.stmt(s.Else)
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.stmts(s.Body.List)
		if s.Post != nil {
			w.stmt(s.Post)
		}
		w.stmts(s.Body.List)
	case *ast.RangeStmt:
		if isChanType(w.pass.Pkg.Info, s.X) {
			w.blockingOp(s.Pos(), "a range over a channel")
		}
		w.expr(s.X)
		w.stmts(s.Body.List)
		w.stmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e)
				}
				w.branch(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branch(cc.Body)
			}
		}
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			w.blockingOp(s.Pos(), "a select without default")
		}
		// The comm operations are covered by the select classification
		// above; clause bodies run after the select fires, lock state
		// intact.
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.branch(cc.Body)
			}
		}
	case *ast.SendStmt:
		w.blockingOp(s.Arrow, "a channel send")
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.GoStmt:
		// Spawning never blocks; only the operands are evaluated here.
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	case *ast.DeferStmt:
		// Deferred calls run at return, where the lock state is whatever the
		// exit path left; a lexical walk cannot say more, so defers neither
		// report nor mutate (defer mu.Unlock() keeps the lock held for the
		// body, which is exactly the state the walker already has).
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	}
}

// expr scans an expression for blocking operations and lock-state method
// calls nested in sub-expressions.
func (w *lockWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal's body runs when called, not here; it is analyzed as
			// its own scope by runLockBlocking.
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.blockingOp(n.Pos(), "a channel receive")
			}
		case *ast.CallExpr:
			if _, _, isLockCall := w.lockStateCall(n); isLockCall {
				return true // state handled at statement level; never blocks
			}
			if why, blocks := callMayBlock(w.pass.Pkg.Info, w.pass.Facts, n); blocks {
				if fn := staticCallee(w.pass.Pkg.Info, n); fn == nil || !w.allowed[fn.FullName()] {
					w.blockingOp(n.Pos(), "a call to "+why)
				}
			}
		}
		return true
	}
	ast.Inspect(e, walk)
}

// lockStateCall matches x.Lock()/x.Unlock() and variants on sync mutexes
// (including promoted methods of embedded mutexes), returning the lock key
// and whether the call acquires.
func (w *lockWalker) lockStateCall(call *ast.CallExpr) (key string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	acquire, known := lockStateMethods[sel.Sel.Name]
	if !known {
		return "", false, false
	}
	selection, isSelection := w.pass.Pkg.Info.Selections[sel]
	if !isSelection || selection.Kind() != types.MethodVal {
		return "", false, false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	return exprText(sel.X), acquire, true
}

// blockingOp reports pos as a blocking operation when any lock is held.
func (w *lockWalker) blockingOp(pos token.Pos, what string) {
	if len(w.held) == 0 || w.reported[pos] {
		return
	}
	w.reported[pos] = true
	keys := make([]string, 0, len(w.held))
	for k := range w.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.pass.Reportf(pos, "%s held across %s; a blocked goroutine here stalls every %s critical section (the PR 3 deadlock class) — move the blocking operation outside the lock or suppress with a reason if the wait is bounded and intentional",
		strings.Join(keys, ", "), what, keys[0])
}
