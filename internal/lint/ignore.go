package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	rule   string
	reason string
	pos    token.Position // position of the comment itself
	target int            // line the directive suppresses
	used   bool
}

const ignorePrefix = "lint:ignore"

// RuleIgnore is the rule name under which malformed //lint:ignore directives
// are themselves reported; a suppression without a written reason is a
// finding, not a free pass.
const RuleIgnore = "ignore"

// parseIgnores extracts //lint:ignore directives from a file. A directive on
// its own line suppresses the next line; a trailing directive suppresses its
// own line. Directives missing a rule or a reason are returned as
// diagnostics instead.
func parseIgnores(fset *token.FileSet, f *ast.File, root string) (dirs []*ignoreDirective, malformed []Diagnostic) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			pos := fset.Position(c.Pos())
			end := fset.Position(c.End())
			rule, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if rule == "" || reason == "" {
				file, line, col := relPosition(root, pos)
				malformed = append(malformed, Diagnostic{
					File: file, Line: line, Col: col, Rule: RuleIgnore,
					Message: "//lint:ignore needs a rule and a written reason: //lint:ignore <rule> <reason>",
				})
				continue
			}
			target := end.Line
			if !commentTrailsCode(fset, f, c) {
				target = end.Line + 1
			}
			dirs = append(dirs, &ignoreDirective{rule: rule, reason: reason, pos: pos, target: target})
		}
	}
	return dirs, malformed
}

// commentTrailsCode reports whether c shares its line with code (a trailing
// comment) rather than standing on a line of its own: some non-comment node
// starts or ends on the comment's line, before the comment.
func commentTrailsCode(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	trails := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || trails {
			return false
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup:
			return false
		case *ast.File:
			return true
		}
		if fset.Position(n.Pos()).Line == line && n.Pos() < c.Pos() {
			trails = true
			return false
		}
		if fset.Position(n.End()).Line == line && n.End() <= c.Pos() {
			trails = true
			return false
		}
		// Only descend into subtrees that can reach the line.
		return fset.Position(n.Pos()).Line <= line && fset.Position(n.End()).Line >= line
	})
	return trails
}

// suppressionIndex matches diagnostics against ignore directives, keyed by
// file and target line.
type suppressionIndex struct {
	byFileLine map[string][]*ignoreDirective
}

func newSuppressionIndex() *suppressionIndex {
	return &suppressionIndex{byFileLine: map[string][]*ignoreDirective{}}
}

func (s *suppressionIndex) add(file string, d *ignoreDirective) {
	s.byFileLine[file] = append(s.byFileLine[file], d)
}

// suppresses reports whether a directive covers the diagnostic and marks the
// directive used.
func (s *suppressionIndex) suppresses(d Diagnostic) bool {
	for _, dir := range s.byFileLine[d.File] {
		if dir.target == d.Line && dir.rule == d.Rule {
			dir.used = true
			return true
		}
	}
	return false
}
