package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// RuleNondeterminism flags clock reads, global math/rand use, and
// order-sensitive map iteration inside the deterministic kernel packages.
const RuleNondeterminism = "nondeterminism"

// clockFuncs are the package-level time functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededRandFuncs are the math/rand package-level functions that construct
// explicitly seeded generators rather than touching the global source; they
// are the sanctioned way to get randomness in a deterministic kernel.
var seededRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// quickFuncs are the testing/quick entry points that take a *quick.Config;
// calling them with a nil config (or one without a Rand) draws a wall-clock
// seed, so a failing property cannot be replayed.
var quickFuncs = map[string]bool{"Check": true, "CheckEqual": true}

// NondeterminismAnalyzer builds the nondeterminism rule.
func NondeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: RuleNondeterminism,
		Doc:  "forbid clock reads, global math/rand, and output-feeding map ranges in deterministic kernels",
		Run:  runNondeterminism,
	}
}

func runNondeterminism(p *Pass) {
	runNondetTestFiles(p)
	if !pkgInScope(p.Pkg.Path, p.Cfg.DeterministicPkgs) {
		return
	}
	for _, f := range p.Pkg.Files {
		file := p.Fset.Position(f.Pos()).Filename
		clockOK := false
		for _, allowed := range p.Cfg.ClockAllowedFiles {
			if strings.HasSuffix(file, allowed) {
				clockOK = true
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkVariableSleep(p, n)
			case *ast.SelectorExpr:
				id, ok := n.X.(*ast.Ident)
				if !ok {
					return true
				}
				switch importedPkgPath(p.Pkg.Info, id) {
				case "time":
					if clockFuncs[n.Sel.Name] && !clockOK {
						p.Reportf(n.Pos(), "time.%s in deterministic kernel package %s; results must be pure functions of the inputs (move timing to the metrics layer)", n.Sel.Name, p.Pkg.Path)
					}
				case "math/rand", "math/rand/v2":
					if !seededRandFuncs[n.Sel.Name] {
						p.Reportf(n.Pos(), "global math/rand.%s in deterministic kernel package %s; use rand.New(rand.NewSource(seed)) so results are reproducible", n.Sel.Name, p.Pkg.Path)
					}
				}
			case *ast.RangeStmt:
				checkMapRange(p, f, n)
			}
			return true
		})
	}
}

// checkVariableSleep flags time.Sleep with a non-constant duration inside a
// deterministic kernel package. A constant sleep is already suspect but at
// least reproducible; a duration computed at runtime (backoff, jitter, a
// measured elapsed time) couples the kernel's behavior to scheduling and
// clock state, which is exactly the nondeterminism these packages exclude.
// ClockAllowedFiles does not exempt this: the metrics layer may read clocks,
// but nothing in a kernel package should pace itself.
func checkVariableSleep(p *Pass, call *ast.CallExpr) {
	name, ok := calleeFromPkg(p.Pkg.Info, call, "time")
	if !ok || name != "Sleep" || len(call.Args) != 1 {
		return
	}
	tv, ok := p.Pkg.Info.Types[call.Args[0]]
	if ok && tv.Value == nil {
		p.Reportf(call.Pos(), "time.Sleep with a non-constant duration in deterministic kernel package %s; runtime-computed pacing makes results depend on the scheduler — delete the sleep or move it out of the kernel", p.Pkg.Path)
	}
}

// runNondetTestFiles covers _test.go files, which are parsed but never
// type-checked (external test packages cannot be), so everything here is
// syntactic: identifiers are resolved through each file's import table and a
// local rebinding of a package name would evade the checks — acceptable for
// test hygiene. Two classes of findings:
//
//   - in the deterministic kernel packages, the same clock and global
//     math/rand bans as production code (ClockAllowedFiles still exempts):
//     a flaky test of a pure kernel is as bad as an impure kernel;
//   - in EVERY package, quick.Check/CheckEqual with a nil config or a
//     &quick.Config{...} literal missing a Rand key — the implicit
//     wall-clock seed means a property-test failure cannot be replayed,
//     exactly the bug class faultline's repro tokens exist to kill.
func runNondetTestFiles(p *Pass) {
	inKernel := pkgInScope(p.Pkg.Path, p.Cfg.DeterministicPkgs)
	for _, f := range p.Pkg.TestFiles {
		file := p.Fset.Position(f.Pos()).Filename
		clockOK := false
		for _, allowed := range p.Cfg.ClockAllowedFiles {
			if strings.HasSuffix(file, allowed) {
				clockOK = true
			}
		}
		imports := fileImportNames(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkQuickConfig(p, imports, n)
			case *ast.SelectorExpr:
				if !inKernel {
					return true
				}
				id, ok := n.X.(*ast.Ident)
				if !ok {
					return true
				}
				switch imports[id.Name] {
				case "time":
					if clockFuncs[n.Sel.Name] && !clockOK {
						p.Reportf(n.Pos(), "time.%s in a test of deterministic kernel package %s; tests must replay bit-identically — derive inputs from fixed seeds", n.Sel.Name, p.Pkg.Path)
					}
				case "math/rand", "math/rand/v2":
					if !seededRandFuncs[n.Sel.Name] {
						p.Reportf(n.Pos(), "global math/rand.%s in a test of deterministic kernel package %s; use rand.New(rand.NewSource(seed)) so failures replay", n.Sel.Name, p.Pkg.Path)
					}
				}
			}
			return true
		})
	}
}

// checkQuickConfig flags quick.Check/CheckEqual calls whose config argument
// is nil or a &quick.Config{...} literal with no Rand key. Configs built in
// variables are syntactically undecidable and are left alone.
func checkQuickConfig(p *Pass, imports map[string]string, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !quickFuncs[sel.Sel.Name] {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || imports[id.Name] != "testing/quick" || len(call.Args) == 0 {
		return
	}
	cfg := call.Args[len(call.Args)-1]
	if lit, ok := cfg.(*ast.Ident); ok && lit.Name == "nil" {
		p.Reportf(cfg.Pos(), "quick.%s with a nil config draws a wall-clock seed; pass &quick.Config{Rand: rand.New(rand.NewSource(seed))} so failures replay", sel.Sel.Name)
		return
	}
	un, ok := cfg.(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return
	}
	composite, ok := un.X.(*ast.CompositeLit)
	if !ok {
		return
	}
	for _, elt := range composite.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if k, ok := kv.Key.(*ast.Ident); ok && k.Name == "Rand" {
				return
			}
		}
	}
	p.Reportf(cfg.Pos(), "quick.%s config has no Rand, so the seed comes from the wall clock; set Rand: rand.New(rand.NewSource(seed)) so failures replay", sel.Sel.Name)
}

// fileImportNames maps each local package identifier in f to the import path
// it binds — the syntactic stand-in for types.Info in unchecked test files.
// Dot and blank imports bind no identifier and are skipped.
func fileImportNames(f *ast.File) map[string]string {
	out := make(map[string]string, len(f.Imports))
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				continue
			}
			name = imp.Name.Name
		}
		out[name] = path
	}
	return out
}

// checkMapRange flags `for k := range m` over a map when the loop body feeds
// an order-sensitive output: an append to an outer slice (element order
// follows iteration order), an mpi send (message order), or a scalar
// update of an outer variable (`sum += v`, `last = v`, `n++` — accumulation
// order). Indexed writes (`out[k] = v`) touch disjoint cells per key and
// stay order-independent, so they are not flagged. Map iteration order is
// randomized per run, so any flagged flow breaks bit-identical output.
func checkMapRange(p *Pass, f *ast.File, rng *ast.RangeStmt) {
	tv, ok := p.Pkg.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	outer := func(id *ast.Ident) bool {
		obj := p.Pkg.Info.Uses[id]
		if obj == nil {
			return false
		}
		// Declared before the range statement begins => outlives the loop.
		return obj.Pos() < rng.Pos()
	}
	var sink ast.Node
	var detail string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && isBuiltinAppend(p, id) {
				// flag when the destination is an outer slice.
				if len(n.Args) > 0 {
					root := rootIdent(n.Args[0])
					// The sanctioned fix is collect-then-sort: appending the
					// keys in random order is fine when a later sort call
					// erases that order before anyone reads the slice.
					if root != nil && outer(root) && !sortedLater(p, f, rng, p.Pkg.Info.Uses[root]) {
						sink, detail = n, "appends to "+root.Name
					}
				}
			}
			if name, ok := calleeFromPkg(p.Pkg.Info, n, p.Cfg.MPIPkg); ok && strings.HasPrefix(name, "Send") {
				sink, detail = n, "sends an mpi message"
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				if _, isIndex := lhs.(*ast.IndexExpr); isIndex {
					continue // per-key cell writes are order-independent
				}
				root := rootIdent(lhs)
				if root == nil {
					if sel, ok := lhs.(*ast.SelectorExpr); ok {
						root = rootIdent(sel.X)
					}
				}
				if root == nil || !outer(root) {
					continue
				}
				// `out = append(out, …)` is the append sink in assignment
				// clothing; it gets the same collect-then-sort exemption as
				// the bare append case below.
				if i < len(n.Rhs) && isSelfAppend(p, n.Rhs[i], root) {
					if !sortedLater(p, f, rng, p.Pkg.Info.Uses[root]) {
						sink, detail = n, "appends to "+root.Name
					}
					continue
				}
				sink, detail = n, "updates "+root.Name
			}
		case *ast.IncDecStmt:
			if root := rootIdent(n.X); root != nil && outer(root) {
				sink, detail = n, "updates "+root.Name
			}
		}
		return true
	})
	if sink != nil {
		p.Reportf(rng.Pos(), "map iteration order feeds an output (%s); collect and sort the keys first so results are order-independent", detail)
	}
}

// isSelfAppend reports whether rhs is `append(root, …)` for the builtin
// append.
func isSelfAppend(p *Pass, rhs ast.Expr, root *ast.Ident) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || !isBuiltinAppend(p, id) {
		return false
	}
	dst := rootIdent(call.Args[0])
	return dst != nil && p.Pkg.Info.Uses[dst] == p.Pkg.Info.Uses[root]
}

// isBuiltinAppend reports whether id resolves to the builtin append (a
// *types.Builtin in Uses, not a shadowing local).
func isBuiltinAppend(p *Pass, id *ast.Ident) bool {
	if id.Name != "append" {
		return false
	}
	obj := p.Pkg.Info.Uses[id]
	if obj == nil {
		return true // parser-only fallback
	}
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// sortedLater reports whether obj is passed to a sort or slices call after
// the range loop ends — the collect-then-sort idiom. The append order is
// random, but the subsequent sort erases it before anyone reads the slice.
func sortedLater(p *Pass, f *ast.File, rng *ast.RangeStmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		switch importedPkgPath(p.Pkg.Info, id) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if mid, isID := m.(*ast.Ident); isID && p.Pkg.Info.Uses[mid] == obj {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}
