package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// RuleNondeterminism flags clock reads, global math/rand use, and
// order-sensitive map iteration inside the deterministic kernel packages.
const RuleNondeterminism = "nondeterminism"

// clockFuncs are the package-level time functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededRandFuncs are the math/rand package-level functions that construct
// explicitly seeded generators rather than touching the global source; they
// are the sanctioned way to get randomness in a deterministic kernel.
var seededRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// NondeterminismAnalyzer builds the nondeterminism rule.
func NondeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: RuleNondeterminism,
		Doc:  "forbid clock reads, global math/rand, and output-feeding map ranges in deterministic kernels",
		Run:  runNondeterminism,
	}
}

func runNondeterminism(p *Pass) {
	if !pkgInScope(p.Pkg.Path, p.Cfg.DeterministicPkgs) {
		return
	}
	for _, f := range p.Pkg.Files {
		file := p.Fset.Position(f.Pos()).Filename
		clockOK := false
		for _, allowed := range p.Cfg.ClockAllowedFiles {
			if strings.HasSuffix(file, allowed) {
				clockOK = true
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				id, ok := n.X.(*ast.Ident)
				if !ok {
					return true
				}
				switch importedPkgPath(p.Pkg.Info, id) {
				case "time":
					if clockFuncs[n.Sel.Name] && !clockOK {
						p.Reportf(n.Pos(), "time.%s in deterministic kernel package %s; results must be pure functions of the inputs (move timing to the metrics layer)", n.Sel.Name, p.Pkg.Path)
					}
				case "math/rand", "math/rand/v2":
					if !seededRandFuncs[n.Sel.Name] {
						p.Reportf(n.Pos(), "global math/rand.%s in deterministic kernel package %s; use rand.New(rand.NewSource(seed)) so results are reproducible", n.Sel.Name, p.Pkg.Path)
					}
				}
			case *ast.RangeStmt:
				checkMapRange(p, f, n)
			}
			return true
		})
	}
}

// checkMapRange flags `for k := range m` over a map when the loop body feeds
// an order-sensitive output: an append to an outer slice (element order
// follows iteration order), an mpi send (message order), or a scalar
// update of an outer variable (`sum += v`, `last = v`, `n++` — accumulation
// order). Indexed writes (`out[k] = v`) touch disjoint cells per key and
// stay order-independent, so they are not flagged. Map iteration order is
// randomized per run, so any flagged flow breaks bit-identical output.
func checkMapRange(p *Pass, f *ast.File, rng *ast.RangeStmt) {
	tv, ok := p.Pkg.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	outer := func(id *ast.Ident) bool {
		obj := p.Pkg.Info.Uses[id]
		if obj == nil {
			return false
		}
		// Declared before the range statement begins => outlives the loop.
		return obj.Pos() < rng.Pos()
	}
	var sink ast.Node
	var detail string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && isBuiltinAppend(p, id) {
				// flag when the destination is an outer slice.
				if len(n.Args) > 0 {
					root := rootIdent(n.Args[0])
					// The sanctioned fix is collect-then-sort: appending the
					// keys in random order is fine when a later sort call
					// erases that order before anyone reads the slice.
					if root != nil && outer(root) && !sortedLater(p, f, rng, p.Pkg.Info.Uses[root]) {
						sink, detail = n, "appends to "+root.Name
					}
				}
			}
			if name, ok := calleeFromPkg(p.Pkg.Info, n, p.Cfg.MPIPkg); ok && strings.HasPrefix(name, "Send") {
				sink, detail = n, "sends an mpi message"
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				if _, isIndex := lhs.(*ast.IndexExpr); isIndex {
					continue // per-key cell writes are order-independent
				}
				root := rootIdent(lhs)
				if root == nil {
					if sel, ok := lhs.(*ast.SelectorExpr); ok {
						root = rootIdent(sel.X)
					}
				}
				if root == nil || !outer(root) {
					continue
				}
				// `out = append(out, …)` is the append sink in assignment
				// clothing; it gets the same collect-then-sort exemption as
				// the bare append case below.
				if i < len(n.Rhs) && isSelfAppend(p, n.Rhs[i], root) {
					if !sortedLater(p, f, rng, p.Pkg.Info.Uses[root]) {
						sink, detail = n, "appends to "+root.Name
					}
					continue
				}
				sink, detail = n, "updates "+root.Name
			}
		case *ast.IncDecStmt:
			if root := rootIdent(n.X); root != nil && outer(root) {
				sink, detail = n, "updates "+root.Name
			}
		}
		return true
	})
	if sink != nil {
		p.Reportf(rng.Pos(), "map iteration order feeds an output (%s); collect and sort the keys first so results are order-independent", detail)
	}
}

// isSelfAppend reports whether rhs is `append(root, …)` for the builtin
// append.
func isSelfAppend(p *Pass, rhs ast.Expr, root *ast.Ident) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || !isBuiltinAppend(p, id) {
		return false
	}
	dst := rootIdent(call.Args[0])
	return dst != nil && p.Pkg.Info.Uses[dst] == p.Pkg.Info.Uses[root]
}

// isBuiltinAppend reports whether id resolves to the builtin append (a
// *types.Builtin in Uses, not a shadowing local).
func isBuiltinAppend(p *Pass, id *ast.Ident) bool {
	if id.Name != "append" {
		return false
	}
	obj := p.Pkg.Info.Uses[id]
	if obj == nil {
		return true // parser-only fallback
	}
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// sortedLater reports whether obj is passed to a sort or slices call after
// the range loop ends — the collect-then-sort idiom. The append order is
// random, but the subsequent sort erases it before anyone reads the slice.
func sortedLater(p *Pass, f *ast.File, rng *ast.RangeStmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		switch importedPkgPath(p.Pkg.Info, id) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if mid, isID := m.(*ast.Ident); isID && p.Pkg.Info.Uses[mid] == obj {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}
