// Package workers exercises the worker-independence rule: parallel.For and
// MapChunks bodies and chunking must not depend on the worker count.
package workers

import "gosensei/internal/parallel"

// Config mirrors the render specs that carry a worker count.
type Config struct {
	Workers int
	N       int
}

// CaptureArg captures the workers argument directly in the body.
func CaptureArg(workers, n int, out []int) {
	parallel.For(workers, n, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = workers // want worker-independence
		}
	})
}

// CaptureDerived captures a variable data-flow-connected to the count.
func CaptureDerived(cfg Config, out []int) {
	w := cfg.Workers
	stride := w * 2
	parallel.For(w, cfg.N, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = stride // want worker-independence
		}
	})
}

// GrainFromWorkers derives the chunk size from the worker count, so chunk
// boundaries move with the thread budget.
func GrainFromWorkers(workers, n int, out []int) {
	parallel.For(workers, n, n/workers, func(lo, hi int) { // want worker-independence
		for i := lo; i < hi; i++ {
			out[i] = i
		}
	})
}

// SelectorPath flags cfg.Workers in the body without banning cfg itself:
// cfg.N stays usable.
func SelectorPath(cfg Config, out []int) {
	parallel.For(cfg.Workers, cfg.N, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = cfg.N + cfg.Workers // want worker-independence
		}
	})
}

// Clean depends only on the problem size.
func Clean(cfg Config, out []float64) {
	parallel.For(cfg.Workers, cfg.N, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float64(i) * 0.5
		}
	})
}

// CleanMapChunks returns per-chunk partials in chunk order; the result of
// the call itself is worker-independent by contract and must not taint vals.
func CleanMapChunks(cfg Config, vals []float64) []float64 {
	parts := parallel.MapChunks(cfg.Workers, len(vals), 64, func(_, lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += vals[i]
		}
		return s
	})
	return parts
}
