// Package unchecked exercises the unchecked-close rule: dropped Close,
// Flush, and Write errors in an I/O writer package.
package unchecked

import (
	"bufio"
	"bytes"
	"hash/crc32"
	"os"
)

// DroppedClose loses the error where a buffered write failure surfaces.
func DroppedClose(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	f.Close() // want unchecked-close
	return nil
}

// DeferredClose drops the error just as silently as a bare call.
func DeferredClose(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want unchecked-close
	_, err = f.Write(data)
	return err
}

// DroppedWriteAndFlush ignores short writes and flush failures.
func DroppedWriteAndFlush(w *bufio.Writer, data []byte) {
	w.Write(data) // want unchecked-close
	w.Flush()     // want unchecked-close
}

// CheckedClose handles every error path; `_ =` is the sanctioned explicit
// drop when an earlier error already wins.
func CheckedClose(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// InMemoryIsClean: bytes.Buffer and hash writers never fail, so dropping
// their results is fine.
func InMemoryIsClean(data []byte) uint32 {
	var buf bytes.Buffer
	buf.Write(data)
	h := crc32.NewIEEE()
	h.Write(data)
	return h.Sum32()
}
