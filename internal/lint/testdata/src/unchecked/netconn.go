// netconn exercises the connection-oriented extensions of the
// unchecked-close rule: half-close errors and deadline setters on
// conn-like receivers.
package unchecked

import (
	"net"
	"time"
)

// DroppedHalfClose loses the shutdown errors that report a torn
// connection.
func DroppedHalfClose(c *net.TCPConn) {
	c.CloseWrite() // want unchecked-close
	c.CloseRead()  // want unchecked-close
}

// DroppedDeadline never learns the timeout failed to arm: the hang it was
// guarding against comes back.
func DroppedDeadline(c net.Conn, l net.Listener, deadline time.Time) {
	c.SetDeadline(deadline)      // want unchecked-close
	c.SetReadDeadline(deadline)  // want unchecked-close
	c.SetWriteDeadline(deadline) // want unchecked-close
	defer l.Close()              // want unchecked-close
}

// CheckedConn handles or explicitly drops every connection error.
func CheckedConn(c net.Conn, data []byte, deadline time.Time) error {
	if err := c.SetWriteDeadline(deadline); err != nil {
		return err
	}
	if _, err := c.Write(data); err != nil {
		_ = c.Close()
		return err
	}
	return c.Close()
}

// deadlineHolder is NOT conn-like (no LocalAddr/Accept), so its deadline
// setter stays out of scope even though the name matches.
type deadlineHolder struct{}

func (deadlineHolder) SetDeadline(time.Time) error { return nil }

// NonConnDeadlineIsClean shows the receiver gate: deadline methods on
// arbitrary types are not findings.
func NonConnDeadlineIsClean(h deadlineHolder, deadline time.Time) {
	h.SetDeadline(deadline)
}
