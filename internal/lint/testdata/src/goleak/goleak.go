// Package goleak is the golden fixture for the goroutine-leak rule:
// go-spawned loops with no exit path, time.After armed per iteration,
// time.Tick's unstoppable ticker, and NewTimer/NewTicker results that are
// neither stopped nor handed to anyone. The clean functions pin the
// exemptions: done-channel cases, breaks that bind to the loop, channels
// the package itself closes, and timers that escape the function.
package goleak

import "time"

// LeakyForever spawns a receive loop with no way out: the goroutine pins
// its stack and the channel for the process lifetime.
func LeakyForever(ch chan int) {
	go func() {
		for { // want goroutine-leak
			<-ch
		}
	}()
}

// LeakySelectLoop: neither select case leaves the loop.
func LeakySelectLoop(a, b chan int) {
	go func() {
		for { // want goroutine-leak
			select {
			case <-a:
			case <-b:
			}
		}
	}()
}

// InnerBreakDoesNotExit: the break binds to the select, not the for — the
// classic for-select typo.
func InnerBreakDoesNotExit(a chan int) {
	go func() {
		for { // want goroutine-leak
			select {
			case <-a:
				break
			}
		}
	}()
}

// CleanWithDone has a done case that returns.
func CleanWithDone(ch chan int, done chan struct{}) {
	go func() {
		for {
			select {
			case <-ch:
			case <-done:
				return
			}
		}
	}()
}

// CleanWithBreak: a top-level break leaves the loop.
func CleanWithBreak(ch chan int) {
	go func() {
		for {
			v, ok := <-ch
			if !ok {
				break
			}
			_ = v
		}
	}()
}

// LeakyRange ranges a parameter channel no one in this package closes.
func LeakyRange(ch chan int) {
	go func() {
		for range ch { // want goroutine-leak
		}
	}()
}

// Source owns its channel and closes it in Stop, so ranging it has an exit
// path the loop body does not show.
type Source struct{ ch chan int }

// Start drains the source until Stop closes the channel.
func (s *Source) Start() {
	go func() {
		for range s.ch {
		}
	}()
}

// Stop ends the Start goroutine.
func (s *Source) Stop() { close(s.ch) }

// pump is a declared spawn target: the summary maps `go pump(ch)` back to
// this body and finds the exit-less loop here.
func pump(ch chan int) {
	for { // want goroutine-leak
		<-ch
	}
}

// StartPump spawns the declared function rather than a literal.
func StartPump(ch chan int) {
	go pump(ch)
}

// AfterInLoop arms a fresh unstoppable timer every iteration — the
// unbounded-growth classic in recv pumps with per-message timeouts.
func AfterInLoop(ch chan int, quit chan struct{}) {
	go func() {
		for {
			select {
			case <-ch:
			case <-time.After(time.Second): // want goroutine-leak
			case <-quit:
				return
			}
		}
	}()
}

// TickLeaks: time.Tick hands back a channel with no Stop handle at all.
func TickLeaks() <-chan time.Time {
	return time.Tick(time.Second) // want goroutine-leak
}

// TickerNeverStopped drains a few ticks and drops the ticker on the floor.
func TickerNeverStopped(n int) {
	t := time.NewTicker(time.Millisecond) // want goroutine-leak
	for i := 0; i < n; i++ {
		<-t.C
	}
}

// TickerStopped is the hygienic version.
func TickerStopped(n int) {
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	for i := 0; i < n; i++ {
		<-t.C
	}
}

// NewDeadline escapes: the caller owns the timer and its Stop.
func NewDeadline(d time.Duration) *time.Timer {
	t := time.NewTimer(d)
	return t
}

// PassedToHelper escapes through a call argument; stopDeadline's Stop
// counts even though this function never names it.
func PassedToHelper(d time.Duration) {
	t := time.NewTimer(d)
	stopDeadline(t)
}

func stopDeadline(t *time.Timer) {
	if !t.Stop() {
		<-t.C
	}
}
