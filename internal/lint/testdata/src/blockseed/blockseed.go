// Package blockseed is the golden fixture for Config.BlockingFuncs: a call
// through mpi.Transport.Send — interface dispatch the conn-like heuristic
// cannot see — must count as a blocking seed, both directly under a lock and
// transitively through a module wrapper, while a plain mailbox-style method
// of the same name on a concrete local type stays unlisted and clean.
package blockseed

import (
	"sync"

	"gosensei/internal/mpi"
)

// Shipper guards a cross-process transport with a mutex — the exact shape
// the configured seed exists to police.
type Shipper struct {
	mu   sync.Mutex
	tr   mpi.Transport
	next uint64
}

// ShipLocked sends while holding the lock: the configured seed fires at the
// interface call site itself.
func (s *Shipper) ShipLocked(env *mpi.Envelope) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Send(env) // want lock-blocking
}

// forward wraps the transport send; the fixpoint must mark it may-block so
// callers inherit the seed.
func forward(tr mpi.Transport, env *mpi.Envelope) error {
	return tr.Send(env)
}

// ShipViaWrapper blocks transitively through forward.
func (s *Shipper) ShipViaWrapper(env *mpi.Envelope) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return forward(s.tr, env) // want lock-blocking
}

// ShipAfterUnlock takes the lock only for the sequence bump and sends
// outside the critical section: no finding.
func (s *Shipper) ShipAfterUnlock(env *mpi.Envelope) error {
	s.mu.Lock()
	env.Seq = s.next
	s.next++
	s.mu.Unlock()
	return s.tr.Send(env)
}

// localBox is a concrete type whose Send is a plain slice append — same
// method name as the seed, different FullName, so it must stay clean.
type localBox struct {
	envs []*mpi.Envelope
}

func (b *localBox) Send(env *mpi.Envelope) error {
	b.envs = append(b.envs, env)
	return nil
}

// StashLocked appends under the lock through the concrete method: the seed
// set matches FullNames, not bare method names, so this is not a finding.
func (s *Shipper) StashLocked(b *localBox, env *mpi.Envelope) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return b.Send(env)
}
