// Package ownership exercises the use-after-give rule for buffers handed to
// mpi.SendOwned/SendRecvOwned and framebuffers after Release.
package ownership

import (
	"gosensei/internal/mpi"
	"gosensei/internal/render"
)

const tagA = 900

// ReuseAfterSendOwned hands buf to the receiver, then writes into it.
func ReuseAfterSendOwned(c *mpi.Comm, buf []float32) {
	mpi.SendOwned(c, 1, tagA, buf)
	buf[0] = 1 // want ownership
}

// ReadAfterSendRecvOwned reads buf after the exchange consumed it.
func ReadAfterSendRecvOwned(c *mpi.Comm, buf []float32) float32 {
	got, err := mpi.SendRecvOwned(c, 1, tagA, buf, 1, tagA)
	if err != nil {
		return 0
	}
	return got[0] + buf[1] // want ownership
}

// UseAfterRelease reads a framebuffer the pool may already have recycled.
func UseAfterRelease(fb *render.Framebuffer) int {
	fb.Release()
	return fb.W // want ownership
}

// LoopWraparound gives at the bottom of an iteration and reads at the top of
// the next; the repeated give is itself a second use.
func LoopWraparound(c *mpi.Comm, buf []float32) {
	for i := 0; i < 2; i++ {
		_ = buf[0]                     // want ownership
		mpi.SendOwned(c, 1, tagA, buf) // want ownership
	}
}

// RebindIsClean: reassignment replaces the given buffer, killing the taint.
func RebindIsClean(c *mpi.Comm, buf []float32) float32 {
	mpi.SendOwned(c, 1, tagA, buf)
	buf = make([]float32, 4)
	return buf[0]
}

// TerminatingBranchIsClean mirrors the adaptors' error paths: the release
// only happens on an execution that never reaches the later use.
func TerminatingBranchIsClean(fb *render.Framebuffer, fail bool) int {
	if fail {
		fb.Release()
		return 0
	}
	return fb.W
}

// SendCopyIsClean: plain Send copies the data; reuse is the contract.
func SendCopyIsClean(c *mpi.Comm, buf []float32) {
	mpi.Send(c, 1, tagA, buf)
	buf[0] = 1
}

// ReacquireIsClean mirrors compositing: release, then rebind from the pool.
func ReacquireIsClean(fb *render.Framebuffer) *render.Framebuffer {
	fb.Release()
	fb = render.AcquireFramebuffer(8, 8)
	return fb
}
