// Package ownership exercises the use-after-give rule for buffers handed to
// mpi.SendOwned/SendRecvOwned, framebuffers after Release, and codec-pool
// buffers after fabric's BufPool.Put.
package ownership

import (
	"gosensei/internal/fabric"
	"gosensei/internal/mpi"
	"gosensei/internal/render"
)

const tagA = 900

// ReuseAfterSendOwned hands buf to the receiver, then writes into it.
func ReuseAfterSendOwned(c *mpi.Comm, buf []float32) {
	mpi.SendOwned(c, 1, tagA, buf)
	buf[0] = 1 // want ownership
}

// ReadAfterSendRecvOwned reads buf after the exchange consumed it.
func ReadAfterSendRecvOwned(c *mpi.Comm, buf []float32) float32 {
	got, err := mpi.SendRecvOwned(c, 1, tagA, buf, 1, tagA)
	if err != nil {
		return 0
	}
	return got[0] + buf[1] // want ownership
}

// UseAfterRelease reads a framebuffer the pool may already have recycled.
func UseAfterRelease(fb *render.Framebuffer) int {
	fb.Release()
	return fb.W // want ownership
}

// LoopWraparound gives at the bottom of an iteration and reads at the top of
// the next; the repeated give is itself a second use.
func LoopWraparound(c *mpi.Comm, buf []float32) {
	for i := 0; i < 2; i++ {
		_ = buf[0]                     // want ownership
		mpi.SendOwned(c, 1, tagA, buf) // want ownership
	}
}

// RebindIsClean: reassignment replaces the given buffer, killing the taint.
func RebindIsClean(c *mpi.Comm, buf []float32) float32 {
	mpi.SendOwned(c, 1, tagA, buf)
	buf = make([]float32, 4)
	return buf[0]
}

// TerminatingBranchIsClean mirrors the adaptors' error paths: the release
// only happens on an execution that never reaches the later use.
func TerminatingBranchIsClean(fb *render.Framebuffer, fail bool) int {
	if fail {
		fb.Release()
		return 0
	}
	return fb.W
}

// SendCopyIsClean: plain Send copies the data; reuse is the contract.
func SendCopyIsClean(c *mpi.Comm, buf []float32) {
	mpi.Send(c, 1, tagA, buf)
	buf[0] = 1
}

// ReacquireIsClean mirrors compositing: release, then rebind from the pool.
func ReacquireIsClean(fb *render.Framebuffer) *render.Framebuffer {
	fb.Release()
	fb = render.AcquireFramebuffer(8, 8)
	return fb
}

// ReadAfterPoolPut reads a buffer the codec pool may already have handed to
// another connection epoch.
func ReadAfterPoolPut(p *fabric.BufPool, buf []byte) byte {
	p.Put(buf)
	return buf[0] // want ownership
}

// WriteAfterPoolPut scribbles over a returned buffer — the race that would
// corrupt another connection's delta reference silently.
func WriteAfterPoolPut(p *fabric.BufPool, buf []byte) {
	p.Put(buf[:4])
	buf[0] = 1 // want ownership
}

// PoolReacquireIsClean mirrors the codec encoders' grow path: return the
// small buffer, then rebind from the pool.
func PoolReacquireIsClean(p *fabric.BufPool, buf []byte) []byte {
	p.Put(buf)
	buf = p.Get(64)
	return buf[:0]
}

// PoolPutTerminatingBranchIsClean mirrors the connection-teardown paths: the
// Put happens only on an execution that never reaches the later use.
func PoolPutTerminatingBranchIsClean(p *fabric.BufPool, buf []byte, dead bool) int {
	if dead {
		p.Put(buf)
		return 0
	}
	return len(buf)
}
