// Package tags exercises the mpi-tag-hygiene rule: raw integer literals as
// message tags outside internal/mpi.
package tags

import "gosensei/internal/mpi"

const tagData = 700

// tagOf derives tags from a named base: allowed.
func tagOf(axis int) int { return tagData + axis }

func LiteralSend(c *mpi.Comm, buf []float64) {
	mpi.Send(c, 1, 7, buf) // want mpi-tag-hygiene
}

func LiteralRecv(c *mpi.Comm) {
	_, _, _ = mpi.Recv[float64](c, 0, 7) // want mpi-tag-hygiene
}

func LiteralSendOwned(c *mpi.Comm, buf []float64) {
	mpi.SendOwned(c, 1, (9), buf) // want mpi-tag-hygiene
}

func LiteralSendRecv(c *mpi.Comm, buf []float64) {
	_, _ = mpi.SendRecv(c, 1, tagData, buf, 1, 11) // want mpi-tag-hygiene
}

func NamedIsClean(c *mpi.Comm, buf []float64) {
	mpi.Send(c, 1, tagData, buf)
	mpi.Send(c, 1, tagOf(2), buf)
	_, _, _ = mpi.Recv[float64](c, 0, mpi.AnyTag)
}

// tagTooHigh is a named constant, so it passes the literal check — but its
// value sits in the collective engine's reserved space.
const tagTooHigh = 1<<28 + 5

func ReservedNamed(c *mpi.Comm, buf []float64) {
	mpi.Send(c, 1, tagTooHigh, buf) // want mpi-tag-hygiene
}

func ReservedExpr(c *mpi.Comm) {
	_, _, _ = mpi.Recv[float64](c, 0, tagData+1<<28) // want mpi-tag-hygiene
}

func ReservedSendRecv(c *mpi.Comm, buf []float64) {
	_, _ = mpi.SendRecv(c, 1, tagTooHigh, buf, 1, tagData) // want mpi-tag-hygiene
}

// JustBelowReservedIsClean: the last tag below the reserved space is fine.
func JustBelowReservedIsClean(c *mpi.Comm, buf []float64) {
	mpi.SendOwned(c, 1, tagData+1<<27, buf)
}

// RuntimeValueIsClean: non-constant tags cannot be judged at compile time.
func RuntimeValueIsClean(c *mpi.Comm, buf []float64, dynamic int) {
	mpi.Send(c, 1, dynamic, buf)
}
