// Package tags exercises the mpi-tag-hygiene rule: raw integer literals as
// message tags outside internal/mpi.
package tags

import "gosensei/internal/mpi"

const tagData = 700

// tagOf derives tags from a named base: allowed.
func tagOf(axis int) int { return tagData + axis }

func LiteralSend(c *mpi.Comm, buf []float64) {
	mpi.Send(c, 1, 7, buf) // want mpi-tag-hygiene
}

func LiteralRecv(c *mpi.Comm) {
	_, _, _ = mpi.Recv[float64](c, 0, 7) // want mpi-tag-hygiene
}

func LiteralSendOwned(c *mpi.Comm, buf []float64) {
	mpi.SendOwned(c, 1, (9), buf) // want mpi-tag-hygiene
}

func LiteralSendRecv(c *mpi.Comm, buf []float64) {
	_, _ = mpi.SendRecv(c, 1, tagData, buf, 1, 11) // want mpi-tag-hygiene
}

func NamedIsClean(c *mpi.Comm, buf []float64) {
	mpi.Send(c, 1, tagData, buf)
	mpi.Send(c, 1, tagOf(2), buf)
	_, _, _ = mpi.Recv[float64](c, 0, mpi.AnyTag)
}
