// Package wghygiene is the golden fixture for the waitgroup-hygiene rule:
// wg.Add inside the spawned goroutine (racing the spawner's Wait), lexical
// Add/Done arity mismatches, and sync state passed by value. The clean
// functions pin the exemptions: Add-before-go, waitgroups local to the
// goroutine, runtime-sized Adds, and waitgroups handed to helpers.
package wghygiene

import "sync"

// ByValueWaitGroup copies the counter; the caller Waits on an original the
// callee never Dones.
func ByValueWaitGroup(wg sync.WaitGroup) { // want waitgroup-hygiene
	wg.Done()
}

// ByValueMutex locks a private copy; the caller's original stays unlocked.
func ByValueMutex(mu sync.Mutex) { // want waitgroup-hygiene
	mu.Lock()
	mu.Unlock()
}

// ReturnsOnce copies the Once out; Do on the copy re-runs.
func ReturnsOnce() sync.Once { // want waitgroup-hygiene
	var o sync.Once
	return o
}

// PointerParam is the correct shape.
func PointerParam(wg *sync.WaitGroup) {
	wg.Wait()
}

// AddInsideGoroutine: the spawner's Wait can observe a zero counter before
// any goroutine is scheduled and return while work is still in flight.
func AddInsideGoroutine(n int, ch chan int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want waitgroup-hygiene
			defer wg.Done()
			<-ch
		}()
	}
	wg.Wait()
}

// Pool pins the field-receiver variant: p.wg outlives every literal.
type Pool struct{ wg sync.WaitGroup }

// Spawn adds from inside the goroutine on a struct-held waitgroup.
func (p *Pool) Spawn(ch chan int) {
	go func() {
		p.wg.Add(1) // want waitgroup-hygiene
		defer p.wg.Done()
		<-ch
	}()
}

// LocalToGoroutine: the waitgroup is declared inside the literal, so its
// Add races nothing outside.
func LocalToGoroutine(jobs []func()) {
	go func() {
		var wg sync.WaitGroup
		for _, j := range jobs {
			wg.Add(1)
			go func(fn func()) {
				defer wg.Done()
				fn()
			}(j)
		}
		wg.Wait()
	}()
}

// AddTwoDoneOnce: Wait hangs on the never-Done remainder.
func AddTwoDoneOnce(ch chan int) {
	var wg sync.WaitGroup
	wg.Add(2) // want waitgroup-hygiene
	go func() {
		defer wg.Done()
		<-ch
	}()
	wg.Wait()
}

// DoneWithoutAdd has more Dones than Adds: the counter goes negative and
// Done panics.
func DoneWithoutAdd(ch chan int) {
	var wg sync.WaitGroup
	wg.Add(1) // want waitgroup-hygiene
	go func() {
		defer wg.Done()
		<-ch
	}()
	go func() {
		defer wg.Done()
		<-ch
	}()
	wg.Wait()
}

// AddMatchesDone is balanced.
func AddMatchesDone(ch chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ch
	}()
	wg.Wait()
}

// RuntimeSizedAdd: the count is not lexically decidable, so the rule stays
// quiet.
func RuntimeSizedAdd(n int, ch chan int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			<-ch
		}()
	}
	wg.Wait()
}

// helperDone receives the waitgroup, so arity moved out of the caller's
// sight.
func helperDone(wg *sync.WaitGroup) { wg.Done() }

// EscapedToHelper hands the waitgroup to a helper; the lexical count no
// longer covers every Done and the rule stays quiet.
func EscapedToHelper(ch chan int) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		<-ch
	}()
	go helperDone(&wg)
	wg.Wait()
}
